(* lvmctl: command-line driver for the LVM reproduction.

   Subcommands run individual paper experiments with custom parameters,
   TimeWarp simulations, TPC-A, and the synthetic state-saving workload.
   Every command routes its output through one formatter, and the
   workload commands take [--metrics human|json|csv] to append merged
   counters and histograms from every machine the run created. *)

open Cmdliner

let ppf = Format.std_formatter

(* {1 Shared options} *)

let format_conv =
  Arg.enum
    (List.map
       (fun f -> (Lvm_obs.Sink.format_to_string f, f))
       Lvm_obs.Sink.all_formats)

let metrics_arg =
  Arg.(value
       & opt (some format_conv) None
       & info [ "metrics" ] ~docv:"FMT"
           ~doc:"Emit counters and histograms from every machine the \
                 command created, in $(docv) format (human, json or csv).")

(* Run [f] under an ambient collector and emit its metrics afterwards. *)
let with_metrics ?label format f =
  let result = Lvm_experiments.Report.with_metrics ?label ppf ~format f in
  Format.pp_print_flush ppf ();
  result

(* {1 experiments} *)

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps for a fast run.")

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Format.fprintf ppf "%-14s %s@." e.Lvm_experiments.Experiments.id
          e.Lvm_experiments.Experiments.description)
      Lvm_experiments.Experiments.all;
    Format.pp_print_flush ppf ()
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.")
    Term.(const run $ const ())

let exp_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (see $(b,lvmctl list)).")
  in
  let run id quick metrics =
    match Lvm_experiments.Experiments.find id with
    | Some e ->
      with_metrics ~label:id metrics (fun () ->
          e.Lvm_experiments.Experiments.run ~quick ppf);
      `Ok ()
    | None -> `Error (false, "unknown experiment " ^ id)
  in
  Cmd.v (Cmd.info "exp" ~doc:"Run one table/figure reproduction experiment.")
    Term.(ret (const run $ id_arg $ quick_arg $ metrics_arg))

let all_cmd =
  let run quick metrics =
    with_metrics ~label:"all" metrics (fun () ->
        Lvm_experiments.Experiments.run_all ~quick ppf)
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every reproduction experiment.")
    Term.(const run $ quick_arg $ metrics_arg)

(* {1 sim} *)

let strategy_conv =
  let parse = function
    | "lvm" -> Ok Lvm_sim.State_saving.Lvm_based
    | "copy" -> Ok Lvm_sim.State_saving.Copy_based
    | "page-protect" -> Ok Lvm_sim.State_saving.Page_protect
    | s -> Error (`Msg ("unknown strategy " ^ s))
  in
  Arg.conv (parse, fun ppf s ->
      Format.pp_print_string ppf (Lvm_sim.State_saving.to_string s))

let sim_cmd =
  let schedulers =
    Arg.(value & opt int 4 & info [ "schedulers" ] ~doc:"Scheduler count.")
  in
  let objects =
    Arg.(value & opt int 16 & info [ "objects" ] ~doc:"Simulation objects.")
  in
  let population =
    Arg.(value & opt int 12 & info [ "population" ] ~doc:"Initial events.")
  in
  let end_time =
    Arg.(value & opt int 500 & info [ "end-time" ] ~doc:"Virtual end time.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PHOLD seed.") in
  let strategy =
    Arg.(value & opt strategy_conv Lvm_sim.State_saving.Lvm_based
         & info [ "strategy" ] ~doc:"State saving: lvm or copy.")
  in
  let workload =
    Arg.(value
         & opt (enum [ ("phold", `Phold); ("queueing", `Queueing) ]) `Phold
         & info [ "workload" ] ~doc:"Simulation model: phold or queueing.")
  in
  let engine_kind =
    Arg.(value
         & opt (enum [ ("optimistic", `Optimistic);
                       ("conservative", `Conservative) ]) `Optimistic
         & info [ "engine" ] ~doc:"optimistic (TimeWarp) or conservative.")
  in
  let cpus =
    Arg.(value & opt int 1
         & info [ "cpus" ]
             ~doc:"Machine CPUs (optimistic engine only): schedulers share \
                   one multi-CPU kernel, pinned round-robin.")
  in
  let run schedulers objects population end_time seed strategy workload
      engine_kind cpus metrics =
    if cpus <= 0 then `Error (false, "--cpus must be positive")
    else begin
    let app, inject_tw, inject_cons, name =
      match workload with
      | `Phold ->
        ( Lvm_sim.Phold.app ~objects ~seed (),
          (fun e ->
            Lvm_sim.Phold.inject_population e ~objects ~population ~seed),
          (fun e ->
            for i = 0 to population - 1 do
              let h = Lvm_sim.Phold.hash seed i 17 23 in
              Lvm_sim.Conservative.inject e ~time:(1 + (h mod 10))
                ~dst:(h / 16 mod objects) ~payload:(h land 0xFFFF)
            done),
          "PHOLD" )
      | `Queueing ->
        ( Lvm_sim.Queueing.app ~stations:objects ~seed,
          (fun e ->
            Lvm_sim.Queueing.inject_customers e ~stations:objects
              ~customers:population ~seed),
          (fun e ->
            for c = 0 to population - 1 do
              let h = Lvm_sim.Phold.hash seed c 3 5 in
              Lvm_sim.Conservative.inject e ~time:(1 + (h mod 8))
                ~dst:(h / 8 mod objects) ~payload:(c land 0xFFFF)
            done),
          "queueing network" )
    in
    with_metrics ~label:"sim" metrics (fun () ->
        match engine_kind with
        | `Conservative ->
          let e =
            Lvm_sim.Conservative.create ~n_schedulers:schedulers ~app ()
          in
          inject_cons e;
          let r = Lvm_sim.Conservative.run e ~end_time in
          Format.fprintf ppf
            "%s (conservative): %d schedulers, %d objects, %d tokens, \
             end-time %d@."
            name schedulers objects population end_time;
          Format.fprintf ppf "  events processed   %d@."
            r.Lvm_sim.Conservative.events_processed;
          Format.fprintf ppf "  barrier steps      %d@."
            r.Lvm_sim.Conservative.steps;
          Format.fprintf ppf "  elapsed (cycles)   %d@."
            r.Lvm_sim.Conservative.elapsed_cycles;
          Format.fprintf ppf "  busy (cycles)      %d@."
            r.Lvm_sim.Conservative.busy_cycles
        | `Optimistic ->
          let engine =
            Lvm_sim.Timewarp.create ~cpus ~n_schedulers:schedulers ~strategy
              ~app ()
          in
          inject_tw engine;
          let r = Lvm_sim.Timewarp.run engine ~end_time in
          Format.fprintf ppf
            "%s: %d schedulers, %d objects, %d tokens, end-time %d (%s%s)@."
            name schedulers objects population end_time
            (Lvm_sim.State_saving.to_string strategy)
            (if cpus = 1 then ""
             else Printf.sprintf ", %d cpus" cpus);
          Format.fprintf ppf "  committed events   %d@."
            r.Lvm_sim.Timewarp.total_events_committed;
          Format.fprintf ppf "  processed events   %d@."
            r.Lvm_sim.Timewarp.total_events_processed;
          Format.fprintf ppf "  rollbacks          %d@."
            r.Lvm_sim.Timewarp.total_rollbacks;
          Format.fprintf ppf "  stragglers         %d@."
            r.Lvm_sim.Timewarp.total_stragglers;
          Format.fprintf ppf "  anti-messages      %d@."
            r.Lvm_sim.Timewarp.total_anti_messages;
          Format.fprintf ppf "  elapsed (cycles)   %d@."
            r.Lvm_sim.Timewarp.elapsed_cycles;
          Format.fprintf ppf "  efficiency         %.1f%%@."
            (100.
             *. float_of_int r.Lvm_sim.Timewarp.total_events_committed
             /. float_of_int (max 1 r.Lvm_sim.Timewarp.total_events_processed)));
    `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Run a simulation (PHOLD or queueing) over LVM.")
    Term.(ret (const run $ schedulers $ objects $ population $ end_time $ seed
          $ strategy $ workload $ engine_kind $ cpus $ metrics_arg))

(* {1 tpca} *)

let run_tpca ~txns ~store =
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in
  let bank =
    Lvm_tpc.Bank.layout ~branches:4 ~tellers:40 ~accounts:400 ~history:256
  in
  let size = Lvm_tpc.Bank.segment_bytes bank in
  let name, s =
    match store with
    | `Rvm -> ("RVM", Lvm_tpc.Tpca.rvm_store (Lvm_rvm.Rvm.make Lvm_rvm.Rvm.Config.default k sp ~size))
    | `Rlvm ->
      ("RLVM", Lvm_tpc.Tpca.rlvm_store (Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size))
  in
  Lvm_tpc.Tpca.setup s bank;
  let r = Lvm_tpc.Tpca.run s bank ~txns in
  Format.fprintf ppf
    "TPC-A on %s: %d txns, %.0f tps, %.0f cycles/txn, invariant %b@." name
    r.Lvm_tpc.Tpca.txns r.Lvm_tpc.Tpca.tps r.Lvm_tpc.Tpca.cycles_per_txn
    (Lvm_tpc.Tpca.balance_invariant s bank)

let tpca_cmd =
  let txns =
    Arg.(value & opt int 500 & info [ "txns" ] ~doc:"Transactions to run.")
  in
  let store =
    Arg.(value & opt (enum [ ("rvm", `Rvm); ("rlvm", `Rlvm) ]) `Rlvm
         & info [ "store" ] ~doc:"Recoverable store: rvm or rlvm.")
  in
  let run txns store metrics =
    with_metrics ~label:"tpca" metrics (fun () -> run_tpca ~txns ~store)
  in
  Cmd.v (Cmd.info "tpca" ~doc:"Run the TPC-A debit-credit benchmark.")
    Term.(const run $ txns $ store $ metrics_arg)

(* {1 synthetic} *)

let run_synthetic ~events ~c ~s ~w strategy =
  let p = { Lvm_sim.Synthetic.default_params with
            Lvm_sim.Synthetic.events; c; s; w } in
  let r = Lvm_sim.Synthetic.run p strategy in
  Format.fprintf ppf
    "synthetic (%s): %.2f cycles/event, %d overloads, %d log records, \
     %d protect faults@."
    (Lvm_sim.State_saving.to_string strategy)
    r.Lvm_sim.Synthetic.per_event r.Lvm_sim.Synthetic.overloads
    r.Lvm_sim.Synthetic.log_records r.Lvm_sim.Synthetic.protect_faults;
  if strategy = Lvm_sim.State_saving.Lvm_based then
    Format.fprintf ppf "speedup over copy-based: %.2f@."
      (Lvm_sim.Synthetic.speedup p)

let synthetic_cmd =
  let events =
    Arg.(value & opt int 2000 & info [ "events" ] ~doc:"Events to process.")
  in
  let c =
    Arg.(value & opt int 512
         & info [ "compute" ] ~doc:"Compute cycles per event (c).")
  in
  let s =
    Arg.(value & opt int 64
         & info [ "object-bytes" ] ~doc:"Object size in bytes (s).")
  in
  let w =
    Arg.(value & opt int 2 & info [ "writes" ] ~doc:"Writes per event (w).")
  in
  let strategy =
    Arg.(value & opt strategy_conv Lvm_sim.State_saving.Lvm_based
         & info [ "strategy" ] ~doc:"lvm, copy or page-protect.")
  in
  let run events c s w strategy metrics =
    with_metrics ~label:"synthetic" metrics (fun () ->
        run_synthetic ~events ~c ~s ~w strategy)
  in
  Cmd.v
    (Cmd.info "synthetic"
       ~doc:"Run the Section 4.3 synthetic simulation workload.")
    Term.(const run $ events $ c $ s $ w $ strategy $ metrics_arg)

(* {1 crashsweep} *)

let crashsweep_cmd =
  let points =
    Arg.(value & opt int 200
         & info [ "points" ] ~doc:"Crash points swept over the workload.")
  in
  let torn =
    Arg.(value & opt int 24
         & info [ "torn" ] ~doc:"Torn-write points (WAL appends torn).")
  in
  let txns =
    Arg.(value & opt int 12
         & info [ "txns" ] ~doc:"Transactions in the swept workload.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Sweep seed.") in
  let cpus =
    Arg.(value & opt int 1
         & info [ "cpus" ]
             ~doc:"Machine CPUs per swept run (workload runs on CPU 0).")
  in
  let group =
    Arg.(value & opt int 1
         & info [ "group" ]
             ~doc:"Group-commit batch size for the RLVM under test \
                   (1 forces the WAL on every commit).")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:"Sweep a sharded store with cross-shard two-phase \
                   commits instead of the single-store TPC-A workload.")
  in
  let show_trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print the deterministic per-run recovery trace.")
  in
  let split =
    Arg.(value & flag
         & info [ "split" ]
             ~doc:"Sweep the shard-move (split/merge) protocol instead: a \
                   scripted split + merge schedule crashed at every point, \
                   including inside the cutover force itself.")
  in
  let cutover =
    Arg.(value & opt int 2
         & info [ "cutover" ]
             ~doc:"With $(b,--split): crash points injected at the \
                   split-cutover fault site.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead.")
  in
  let run points torn txns seed cpus group shards split cutover show_trace
      json =
    if cpus <= 0 then `Error (false, "--cpus must be positive")
    else if group <= 0 then `Error (false, "--group must be positive")
    else if shards <= 0 then `Error (false, "--shards must be positive")
    else begin
    (* the split sweep needs a move target; default to two shards *)
    let shards = if split && shards = 1 then 2 else shards in
    let o =
      if split then
        Lvm_tpc.Crash_sweep.run_split ~seed ~points ~torn_points:torn
          ~cutover_points:cutover ~shards ()
      else
        Lvm_tpc.Crash_sweep.run ~seed ~txns ~points ~torn_points:torn ~cpus
          ~group ~shards ()
    in
    let kind = if split then "splitsweep" else "crashsweep" in
    if json then begin
      let open Lvm_tools.Output_stream.Envelope in
      emit ~kind ppf
        [ ("seed", Int seed); ("txns", Int txns); ("cpus", Int cpus);
          ("group", Int group); ("shards", Int shards);
          ("split", Int (Bool.to_int split));
          ("points", Int o.Lvm_tpc.Crash_sweep.points);
          ("crashed", Int o.Lvm_tpc.Crash_sweep.crashed);
          ("completed", Int o.Lvm_tpc.Crash_sweep.completed);
          ("torn", Int o.Lvm_tpc.Crash_sweep.torn);
          ("failures",
           List
             (List.map (fun f -> String f) o.Lvm_tpc.Crash_sweep.failures))
        ]
    end
    else begin
      Format.fprintf ppf
        "%s (%d cpu%s, group %d%s): %d points (%d crashed, %d \
         completed, %d torn tails), %d failures@."
        (if split then "split sweep" else "crash sweep")
        cpus
        (if cpus = 1 then "" else "s")
        group
        (if shards = 1 then "" else Printf.sprintf ", %d shards" shards)
        o.Lvm_tpc.Crash_sweep.points o.Lvm_tpc.Crash_sweep.crashed
        o.Lvm_tpc.Crash_sweep.completed o.Lvm_tpc.Crash_sweep.torn
        (List.length o.Lvm_tpc.Crash_sweep.failures);
      List.iter
        (fun f -> Format.fprintf ppf "FAIL: %s@." f)
        o.Lvm_tpc.Crash_sweep.failures
    end;
    if show_trace then Format.fprintf ppf "%s" o.Lvm_tpc.Crash_sweep.trace;
    Format.pp_print_flush ppf ();
    if o.Lvm_tpc.Crash_sweep.failures <> [] then exit 1;
    `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "crashsweep"
       ~doc:"Crash a transactional RLVM workload at every swept point, \
             recover, and check crash-consistency invariants.")
    Term.(ret (const run $ points $ torn $ txns $ seed $ cpus $ group
          $ shards $ split $ cutover $ show_trace $ json))

(* {1 logstats} *)

(* A seeded, skewed logged-write workload: most writes hammer a small hot
   set of words, the rest scatter — exactly the redundancy pattern the
   Section 2.7 analysis exists to expose. *)
let run_logstats ~writes ~hot ~seed ~limit ~codec ~coalesce ~txn ~json =
  let page = Lvm_machine.Addr.page_size in
  let k = Lvm_vm.Kernel.create ~codec ~coalesce_depth:coalesce () in
  let sp = Lvm_vm.Kernel.create_space k in
  let seg = Lvm_vm.Kernel.create_segment k ~size:(4 * page) in
  let region = Lvm_vm.Kernel.create_region k seg in
  let log = Lvm_log.create k ~size:(4 * page) in
  let ls = Lvm_log.segment log in
  Lvm_vm.Kernel.set_region_log k region (Some ls);
  let base = Lvm_vm.Kernel.bind k sp region in
  let words = 4 * page / 4 in
  let rng = Random.State.make [| seed |] in
  let txns = ref 0 in
  for i = 0 to writes - 1 do
    Lvm_log.reserve log ~bytes:Lvm_machine.Log_record.bytes ~max_pages:max_int;
    let off =
      if Random.State.int rng 100 < 80 then 4 * Random.State.int rng hot
      else 4 * Random.State.int rng words
    in
    Lvm_vm.Kernel.write_word k sp (base + off) i;
    (* every [txn] writes is a commit boundary: a hard sync drains the
       coalescing buffer, exactly what a transaction commit does *)
    if (i + 1) mod txn = 0 then begin
      Lvm_vm.Kernel.sync_log k ls;
      incr txns
    end
  done;
  Lvm_vm.Kernel.sync_log k ls;
  if writes mod txn <> 0 then incr txns;
  let s = Lvm_tools.Log_stats.summarize k ~watched:seg ~log:ls in
  let top = Lvm_tools.Log_stats.top_rewritten ~limit k ~watched:seg ~log:ls in
  let ring = Lvm_log.stats log in
  let d = Lvm_tools.Log_stats.diet k ~log ~txns:!txns in
  if json then begin
    let open Lvm_tools.Output_stream.Envelope in
    emit ~kind:"logstats" ppf
      [ ("records", Int s.Lvm_tools.Log_stats.records);
        ("distinct_locations",
         Int s.Lvm_tools.Log_stats.distinct_locations);
        ("redundant", Int s.Lvm_tools.Log_stats.redundant);
        ("redundancy_ratio",
         Float s.Lvm_tools.Log_stats.redundancy_ratio);
        ("top_rewritten",
         List
           (List.map
              (fun (off, n) ->
                Obj [ ("offset", Int off); ("writes", Int n) ])
              top));
        ("log",
         Obj
           [ ("extents", Int ring.Lvm_log.extents);
             ("extent_pages", Int ring.Lvm_log.extent_pages);
             ("write_pos", Int ring.Lvm_log.write_pos);
             ("capacity", Int ring.Lvm_log.capacity);
             ("utilization_pct", Int ring.Lvm_log.utilization_pct);
             ("switches", Int ring.Lvm_log.switches);
             ("sealed_bytes", Int d.Lvm_tools.Log_stats.sealed_bytes);
             ("active_bytes", Int d.Lvm_tools.Log_stats.active_bytes) ]);
        ("diet",
         Obj
           [ ("codec",
              String
                (match d.Lvm_tools.Log_stats.version with
                | Lvm_machine.Log_record.V0 -> "v0"
                | Lvm_machine.Log_record.V1 -> "v1"));
             ("txns", Int d.Lvm_tools.Log_stats.txns);
             ("bytes_per_txn", Float d.Lvm_tools.Log_stats.bytes_per_txn);
             ("absorbed", Int d.Lvm_tools.Log_stats.absorbed);
             ("flushed", Int d.Lvm_tools.Log_stats.flushed);
             ("absorption_ratio",
              Float d.Lvm_tools.Log_stats.absorption_ratio);
             ("records_raw", Int d.Lvm_tools.Log_stats.raw);
             ("records_run", Int d.Lvm_tools.Log_stats.run);
             ("records_delta", Int d.Lvm_tools.Log_stats.delta);
             ("records_pad", Int d.Lvm_tools.Log_stats.pad);
             ("bytes_logical", Int d.Lvm_tools.Log_stats.bytes_logical);
             ("bytes_encoded", Int d.Lvm_tools.Log_stats.bytes_encoded) ]) ]
  end
  else begin
    Format.fprintf ppf
      "log analysis: %d records, %d distinct locations, %d redundant \
       (%.1f%%)@."
      s.Lvm_tools.Log_stats.records s.Lvm_tools.Log_stats.distinct_locations
      s.Lvm_tools.Log_stats.redundant
      (100. *. s.Lvm_tools.Log_stats.redundancy_ratio);
    Format.fprintf ppf
      "log ring: %d extents of %d page(s), write_pos %d/%d (%d%% full), \
       %d extent switch(es), %d B sealed / %d B active@."
      ring.Lvm_log.extents ring.Lvm_log.extent_pages ring.Lvm_log.write_pos
      ring.Lvm_log.capacity ring.Lvm_log.utilization_pct
      ring.Lvm_log.switches d.Lvm_tools.Log_stats.sealed_bytes
      d.Lvm_tools.Log_stats.active_bytes;
    Format.fprintf ppf
      "record stream: %s, %.1f bytes/txn over %d txn(s)@."
      (match d.Lvm_tools.Log_stats.version with
      | Lvm_machine.Log_record.V0 -> "v0 (16 B fixed records)"
      | Lvm_machine.Log_record.V1 -> "v1 (versioned codec)")
      d.Lvm_tools.Log_stats.bytes_per_txn d.Lvm_tools.Log_stats.txns;
    (match d.Lvm_tools.Log_stats.version with
    | Lvm_machine.Log_record.V0 -> ()
    | Lvm_machine.Log_record.V1 ->
      Format.fprintf ppf
        "  records: %d raw, %d run, %d delta, %d pad; %d logical B -> %d \
         encoded B (%.1f%% saved)@."
        d.Lvm_tools.Log_stats.raw d.Lvm_tools.Log_stats.run
        d.Lvm_tools.Log_stats.delta d.Lvm_tools.Log_stats.pad
        d.Lvm_tools.Log_stats.bytes_logical
        d.Lvm_tools.Log_stats.bytes_encoded
        (if d.Lvm_tools.Log_stats.bytes_logical = 0 then 0.
         else
           100.
           *. (1.
               -. float_of_int d.Lvm_tools.Log_stats.bytes_encoded
                  /. float_of_int d.Lvm_tools.Log_stats.bytes_logical)));
    if d.Lvm_tools.Log_stats.absorbed + d.Lvm_tools.Log_stats.flushed > 0 then
      Format.fprintf ppf
        "  coalescing: %d absorbed / %d flushed (%.1f%% absorption)@."
        d.Lvm_tools.Log_stats.absorbed d.Lvm_tools.Log_stats.flushed
        (100. *. d.Lvm_tools.Log_stats.absorption_ratio);
    Format.fprintf ppf "top rewritten offsets:@.";
    List.iter
      (fun (off, n) -> Format.fprintf ppf "  +0x%04x  %4d writes@." off n)
      top
  end;
  Format.pp_print_flush ppf ()

let logstats_cmd =
  let writes =
    Arg.(value & opt int 2000
         & info [ "writes" ] ~doc:"Logged writes to generate.")
  in
  let hot =
    Arg.(value & opt int 32
         & info [ "hot" ] ~doc:"Hot-set size in words (takes 80% of writes).")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Workload seed.")
  in
  let limit =
    Arg.(value & opt int 10
         & info [ "limit" ] ~doc:"Top rewritten offsets to report.")
  in
  let codec =
    Arg.(value & opt (enum [ ("v0", Lvm_machine.Log_record.V0);
                             ("v1", Lvm_machine.Log_record.V1) ])
           Lvm_machine.Log_record.V0
         & info [ "codec" ]
             ~doc:"Record-stream codec: $(b,v0) (16-byte fixed records) \
                   or $(b,v1) (versioned, run/delta-compressed).")
  in
  let coalesce =
    Arg.(value & opt int 0
         & info [ "coalesce" ]
             ~doc:"Logger write-coalescing buffer depth in records \
                   (0: off).")
  in
  let txn =
    Arg.(value & opt int 100
         & info [ "txn" ]
             ~doc:"Writes per transaction: every $(docv) writes the log \
                   is hard-synced (a commit boundary, draining the \
                   coalescing buffer).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead.")
  in
  let run writes hot seed limit codec coalesce txn json =
    if writes <= 0 then `Error (false, "--writes must be positive")
    else if hot <= 0 then `Error (false, "--hot must be positive")
    else if coalesce < 0 then `Error (false, "--coalesce must be >= 0")
    else if txn <= 0 then `Error (false, "--txn must be positive")
    else begin
      run_logstats ~writes ~hot ~seed ~limit ~codec ~coalesce ~txn ~json;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "logstats"
       ~doc:"Run a skewed logged-write workload and report the Section \
             2.7 redundancy analysis, the logging-bandwidth diet \
             (codec/coalescing) counters, and the extent-ring state.")
    Term.(ret (const run $ writes $ hot $ seed $ limit $ codec $ coalesce
          $ txn $ json))

(* {1 trace} *)

(* A small logged-write workload exercising most event types: first-touch
   page faults, logging faults, log extension and default-page
   absorption, and a deferred-copy reset. *)
let trace_writes () =
  let open Lvm.Api in
  let page = Lvm_machine.Addr.page_size in
  let k = create Config.default in
  let space = address_space k in
  let seg = std_segment k ~size:(4 * page) in
  let region = std_region k seg in
  let ls = log_segment k ~size:(2 * page) in
  log k region ls;
  let base = bind k space region in
  for i = 0 to 1023 do
    write_word k space ~vaddr:(base + (i mod 1024 * 4)) i;
    if i = 700 then extend_log k ls ~pages:4
  done;
  sync_log k ls;
  let src = std_segment k ~size:page in
  let dst = std_segment k ~size:page in
  source_segment k ~dst ~src;
  let r2 = std_region k dst in
  let b2 = bind k space r2 in
  write_word k space ~vaddr:b2 1;
  reset_deferred_copy k space ~start:b2 ~len:page

let trace_phold () =
  let app = Lvm_sim.Phold.app ~objects:8 ~seed:11 () in
  let e =
    Lvm_sim.Timewarp.create ~n_schedulers:2
      ~strategy:Lvm_sim.State_saving.Lvm_based ~app ()
  in
  Lvm_sim.Phold.inject_population e ~objects:8 ~population:8 ~seed:11;
  ignore (Lvm_sim.Timewarp.run e ~end_time:300)

let trace_cmd =
  let workload_arg =
    Arg.(required
         & pos 0
             (some
                (enum
                   [ ("writes", `Writes); ("synthetic", `Synthetic);
                     ("tpca", `Tpca); ("phold", `Phold) ]))
             None
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workload to trace: writes, synthetic, tpca or phold.")
  in
  let format_arg =
    Arg.(value
         & opt format_conv Lvm_obs.Sink.Human
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Trace output format: human, json (JSON-lines) or csv.")
  in
  let run workload format metrics =
    let (), collector =
      Lvm_obs.Collector.with_collector (fun () ->
          match workload with
          | `Writes -> trace_writes ()
          | `Synthetic ->
            run_synthetic ~events:500 ~c:512 ~s:64 ~w:2
              Lvm_sim.State_saving.Lvm_based
          | `Tpca -> run_tpca ~txns:100 ~store:`Rlvm
          | `Phold -> trace_phold ())
    in
    List.iteri
      (fun i trace ->
        if Lvm_obs.Trace.total trace > 0 then begin
          if format = Lvm_obs.Sink.Human then
            Format.fprintf ppf "-- machine %d --@." i;
          Lvm_obs.Sink.emit_trace format ppf trace
        end)
      (Lvm_obs.Collector.traces collector);
    Lvm_experiments.Report.metrics ~label:"trace" ppf ~format:metrics
      collector;
    Format.pp_print_flush ppf ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a workload and dump its structured event trace.")
    Term.(const run $ workload_arg $ format_arg $ metrics_arg)

(* {1 store} *)

let store_cmd =
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~doc:"RLVM shards (one worker CPU each).")
  in
  let txns =
    Arg.(value & opt int 400 & info [ "txns" ] ~doc:"Transactions to run.")
  in
  let cross =
    Arg.(value & opt int 20
         & info [ "cross" ]
             ~doc:"Percentage of transactions spanning two shards \
                   (two-phase commit).")
  in
  let writes =
    Arg.(value & opt int 4
         & info [ "writes" ] ~doc:"Writes per transaction.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload seed.")
  in
  let group =
    Arg.(value & opt int 1
         & info [ "group" ] ~doc:"Per-shard group-commit batch size.")
  in
  let compute =
    Arg.(value & opt int 400
         & info [ "compute" ]
             ~doc:"Application compute cycles per transaction.")
  in
  let zipf =
    Arg.(value & opt (some float) None
         & info [ "zipf" ] ~docv:"THETA"
             ~doc:"Draw keys from a Zipf($(docv)) distribution, hottest \
                   ranks clustered on shard 0, instead of uniformly.")
  in
  let split =
    Arg.(value & flag
         & info [ "split" ]
             ~doc:"Enable dynamic shard splitting: the driver consults the \
                   load-aware splitter and moves hot buckets mid-run.")
  in
  let rate =
    Arg.(value & opt float 0.
         & info [ "rate" ] ~docv:"TOKENS"
             ~doc:"Token-bucket admission: $(docv) transactions admitted \
                   per thousand shard-CPU cycles (0 disables the gate).")
  in
  let open_gap =
    Arg.(value & opt (some int) None
         & info [ "open" ] ~docv:"GAP"
             ~doc:"Open-loop arrivals with mean inter-arrival gap $(docv) \
                   cycles and periodic bursts, instead of the closed loop.")
  in
  let queue_cap =
    Arg.(value & opt (some int) None
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"With $(b,--open): drop an arrival whose home shard \
                   already queues $(docv) transactions.")
  in
  let read_heavy =
    Arg.(value & flag
         & info [ "read-heavy" ]
             ~doc:"95/5 read-heavy mix: 95% of the operations are \
                   single-key reads drawn from the key distribution, \
                   served by the shard workers unless \
                   $(b,--snapshot-readers) moves them off.")
  in
  let snap_readers =
    Arg.(value & opt (some int) None
         & info [ "snapshot-readers" ] ~docv:"N"
             ~doc:"Serve the reads from log-derived MVCC snapshots on \
                   $(docv) virtual readers instead of the shard worker \
                   CPUs.")
  in
  let as_of =
    Arg.(value & opt (some int) None
         & info [ "as-of" ] ~docv:"TS"
             ~doc:"After the run, acquire a time-travel snapshot at \
                   commit timestamp $(docv) and probe a few keys \
                   through it.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead.")
  in
  let run shards txns cross writes seed group compute zipf split rate
      open_gap queue_cap read_heavy snap_readers as_of json metrics =
    if shards <= 0 then `Error (false, "--shards must be positive")
    else if txns <= 0 then `Error (false, "--txns must be positive")
    else if cross < 0 || cross > 100 then
      `Error (false, "--cross must be a percentage")
    else if rate < 0. then `Error (false, "--rate must be non-negative")
    else if (match snap_readers with Some n -> n <= 0 | None -> false) then
      `Error (false, "--snapshot-readers must be positive")
    else begin
      with_metrics ~label:"store" metrics (fun () ->
          let st =
            Lvm_store.Store.create
              { Lvm_store.Store.Config.default with
                shards; group; compute; admission_rate = rate }
          in
          let dist =
            match zipf with
            | Some theta -> Lvm_store.Workload.Zipfian { theta }
            | None -> Lvm_store.Workload.Uniform
          in
          let arrival =
            match open_gap with
            | Some mean_gap ->
              Lvm_store.Workload.Open
                { mean_gap; burst_every = 64; burst_len = 16;
                  burst_gap = max 1 (mean_gap / 8) }
            | None -> Lvm_store.Workload.Closed
          in
          let r =
            Lvm_store.Workload.run st
              { Lvm_store.Workload.default with
                txns; cross_pct = cross; writes_per_txn = writes; seed;
                dist; arrival; queue_cap;
                split =
                  (if split then Some Lvm_store.Workload.default_split
                   else None);
                read_pct = (if read_heavy then 95 else 0);
                read_mode =
                  (match snap_readers with
                  | Some _ -> Lvm_store.Workload.Snapshot
                  | None -> Lvm_store.Workload.Worker);
                readers = Option.value snap_readers ~default:1 }
          in
          (* The time-travel probe: a handful of evenly spaced keys read
             through a snapshot pinned at the requested timestamp. *)
          let asof_probe =
            Option.map
              (fun ts ->
                match Lvm_store.Store.Snapshot.as_of st ~ts with
                | Error e -> (ts, Error (Lvm.Lvm_error.to_string e))
                | Ok snap ->
                  let keys =
                    (Lvm_store.Store.config st).Lvm_store.Store.Config.keys
                  in
                  let n = min 8 keys in
                  let vals =
                    List.init n (fun i ->
                        let key = i * (max 1 (keys / n)) in
                        ( key,
                          match Lvm_store.Store.Snapshot.read snap key with
                          | Ok v -> v
                          | Error _ -> -1 ))
                  in
                  Lvm_store.Store.Snapshot.release snap;
                  (ts, Ok vals))
              as_of
          in
          if json then begin
            let open Lvm_tools.Output_stream.Envelope in
            emit ~kind:"store" ppf
              [ ("shards", Int shards); ("txns", Int txns);
                ("cross_pct", Int cross); ("seed", Int seed);
                ("group", Int group);
                ("zipf", Float (Option.value zipf ~default:0.));
                ("rate", Float rate);
                ("executed", Int r.Lvm_store.Workload.executed);
                ("reads", Int r.Lvm_store.Workload.reads);
                ("read_mode",
                 String (match snap_readers with
                        | Some _ -> "snapshot"
                        | None -> "worker"));
                ("cross", Int r.Lvm_store.Workload.cross);
                ("shed", Int r.Lvm_store.Workload.shed);
                ("failed", Int r.Lvm_store.Workload.failed);
                ("requeued", Int r.Lvm_store.Workload.requeued);
                ("moved", Int r.Lvm_store.Workload.moved);
                ("dropped", Int r.Lvm_store.Workload.dropped);
                ("splits", Int r.Lvm_store.Workload.splits);
                ("merges", Int r.Lvm_store.Workload.merges);
                ("wall_cycles", Int r.Lvm_store.Workload.wall_cycles);
                ("cycles_per_txn", Float r.Lvm_store.Workload.cycles_per_txn);
                ("per_shard",
                 List
                   (Array.to_list
                      (Array.mapi
                         (fun i (s : Lvm_store.Workload.shard_stat) ->
                           Obj
                             [ ("shard", Int i); ("txns", Int s.txns);
                               ("cycles", Int s.cycles) ])
                         r.Lvm_store.Workload.per_shard)));
                ("as_of",
                 match asof_probe with
                 | None -> Null
                 | Some (ts, Error e) ->
                   Obj [ ("ts", Int ts); ("error", String e) ]
                 | Some (ts, Ok vals) ->
                   Obj
                     [ ("ts", Int ts);
                       ("values",
                        List
                          (List.map
                             (fun (key, v) ->
                               Obj [ ("key", Int key); ("value", Int v) ])
                             vals)) ]) ]
          end
          else begin
            Format.fprintf ppf
              "store: %d shard(s), %d txns executed (%d cross-shard), %d \
               shed, %d failed, %d requeued@."
              shards r.Lvm_store.Workload.executed r.Lvm_store.Workload.cross
              r.Lvm_store.Workload.shed r.Lvm_store.Workload.failed
              r.Lvm_store.Workload.requeued;
            if r.Lvm_store.Workload.reads > 0 then
              Format.fprintf ppf "%d reads served (%s)@."
                r.Lvm_store.Workload.reads
                (match snap_readers with
                | Some n -> Printf.sprintf "snapshot mode, %d readers" n
                | None -> "worker mode");
            if r.Lvm_store.Workload.moved > 0
               || r.Lvm_store.Workload.dropped > 0
               || r.Lvm_store.Workload.splits > 0
               || r.Lvm_store.Workload.merges > 0 then
              Format.fprintf ppf
                "splits %d, merges %d, %d moved-key requeues, %d arrivals \
                 dropped@."
                r.Lvm_store.Workload.splits r.Lvm_store.Workload.merges
                r.Lvm_store.Workload.moved r.Lvm_store.Workload.dropped;
            Format.fprintf ppf "wall %d cycles, %.1f cycles/txn@."
              r.Lvm_store.Workload.wall_cycles
              r.Lvm_store.Workload.cycles_per_txn;
            Array.iteri
              (fun i (s : Lvm_store.Workload.shard_stat) ->
                Format.fprintf ppf "  shard %d: %d txns, %d cpu cycles@." i
                  s.txns s.cycles)
              r.Lvm_store.Workload.per_shard;
            match asof_probe with
            | None -> ()
            | Some (ts, Error e) ->
              Format.fprintf ppf "as-of %d: %s@." ts e
            | Some (ts, Ok vals) ->
              Format.fprintf ppf "as-of %d:%t@." ts (fun ppf ->
                  List.iter
                    (fun (key, v) -> Format.fprintf ppf " %d=%d" key v)
                    vals)
          end);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:"Run the sharded transactional store under a seeded workload \
             (closed or open loop, uniform or Zipfian, optionally with \
             dynamic shard splitting), report per-shard throughput, and \
             optionally serve a read-heavy mix from log-derived MVCC \
             snapshots.")
    Term.(ret (const run $ shards $ txns $ cross $ writes $ seed $ group
          $ compute $ zipf $ split $ rate $ open_gap $ queue_cap
          $ read_heavy $ snap_readers $ as_of $ json $ metrics_arg))

(* {1 fams} *)

let fams_cmd =
  let size =
    Arg.(value & opt int 8192
         & info [ "size" ] ~doc:"Mapped region size in bytes.")
  in
  let snaps =
    Arg.(value & opt int 32 & info [ "snaps" ] ~doc:"Snapshots to take.")
  in
  let writes =
    Arg.(value & opt int 8
         & info [ "writes" ] ~doc:"Plain word writes per snapshot.")
  in
  let group =
    Arg.(value & opt int 1
         & info [ "group" ] ~doc:"Snapshot-boundary group-commit batch.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload seed.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead.")
  in
  let run size snaps writes group seed json metrics =
    if size <= 0 || size mod 8 <> 0 then
      `Error (false, "--size must be a positive multiple of 8")
    else if snaps <= 0 then `Error (false, "--snaps must be positive")
    else if writes <= 0 then `Error (false, "--writes must be positive")
    else if group <= 0 then `Error (false, "--group must be positive")
    else begin
      let module Fams = Lvm_fams in
      let exception Failed of Lvm.Lvm_error.t in
      let check = function Ok v -> v | Error e -> raise (Failed e) in
      match
        with_metrics ~label:"fams" metrics (fun () ->
            let k = Lvm_vm.Kernel.create ~frames:512 () in
            let sp = Lvm_vm.Kernel.create_space k in
            let f =
              check (Fams.map { Fams.Config.default with group } k sp ~size)
            in
            let words = size / 8 in
            let spans = ref 0 and bytes = ref 0 and forces = ref 0 in
            let t0 = Lvm_vm.Kernel.time k in
            for s = 0 to snaps - 1 do
              for w = 0 to writes - 1 do
                let off = (((s * writes) + w) * 7 + seed) mod words * 8 in
                check (Fams.write_word f ~off ((s * writes) + w))
              done;
              let rep = check (Fams.snapshot f) in
              spans := !spans + rep.Fams.spans;
              bytes := !bytes + rep.Fams.bytes;
              if rep.Fams.forced then incr forces
            done;
            check (Fams.flush f);
            let wall = Lvm_vm.Kernel.time k - t0 in
            if json then begin
              let open Lvm_tools.Output_stream.Envelope in
              emit ~kind:"fams" ppf
                [ ("size", Int size); ("snaps", Int snaps);
                  ("writes", Int writes); ("group", Int group);
                  ("seed", Int seed); ("wall_cycles", Int wall);
                  ("cycles_per_snapshot",
                   Float (float_of_int wall /. float_of_int snaps));
                  ("spans", Int !spans); ("bytes", Int !bytes);
                  ("forces", Int !forces) ]
            end
            else begin
              Format.fprintf ppf
                "fams: %d snapshot(s) of %d write(s) over %d bytes \
                 (group %d)@."
                snaps writes size group;
              Format.fprintf ppf
                "wall %d cycles, %.1f cycles/snapshot; %d span(s), %d \
                 byte(s) persisted, %d force(s)@."
                wall
                (float_of_int wall /. float_of_int snaps)
                !spans !bytes !forces
            end)
      with
      | () -> `Ok ()
      | exception Failed e -> `Error (false, Lvm.Lvm_error.to_string e)
    end
  in
  Cmd.v
    (Cmd.info "fams"
       ~doc:"Run a plain-write + snapshot workload through the \
             failure-atomic snapshot API and report persistence costs.")
    Term.(ret (const run $ size $ snaps $ writes $ group $ seed $ json
          $ metrics_arg))

(* {1 repl} *)

(* Seeded transport-fault profiles for the replication scenario. *)
let repl_profile ~seed name =
  let open Lvm_fault in
  let inj site trigger fault = { Plan.site; trigger; fault } in
  let frame = Fault.Net_frame and ack = Fault.Net_ack in
  let injections =
    match name with
    | `None -> []
    | `Drop ->
      [ inj frame (Plan.With_probability 0.15) Fault.Net_drop;
        inj ack (Plan.With_probability 0.10) Fault.Net_drop ]
    | `Delay ->
      [ inj frame (Plan.With_probability 0.15) (Fault.Net_delay { ticks = 3 });
        inj frame (Plan.With_probability 0.08) Fault.Net_dup;
        inj ack (Plan.With_probability 0.10) (Fault.Net_delay { ticks = 2 }) ]
    | `Reorder ->
      [ inj frame (Plan.With_probability 0.15) Fault.Net_reorder;
        inj frame (Plan.With_probability 0.05) Fault.Net_dup;
        inj ack (Plan.With_probability 0.08) Fault.Net_reorder ]
    | `Chaos ->
      [ inj frame (Plan.With_probability 0.08) Fault.Net_drop;
        inj frame (Plan.With_probability 0.08) (Fault.Net_delay { ticks = 2 });
        inj frame (Plan.With_probability 0.05) Fault.Net_dup;
        inj frame (Plan.With_probability 0.05) Fault.Net_reorder;
        inj ack (Plan.With_probability 0.08) Fault.Net_drop ]
  in
  if injections = [] then None else Some (Plan.create ~seed injections)

let repl_cmd =
  let module Repl = Lvm_repl in
  let replicas =
    Arg.(value & opt int 2
         & info [ "replicas" ] ~doc:"Standby replicas shipped to.")
  in
  let txns =
    Arg.(value & opt int 24
         & info [ "txns" ] ~doc:"Transactions committed on the primary.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"Workload and fault-plan seed.")
  in
  let profile =
    Arg.(value
         & opt
             (enum
                [ ("none", `None); ("drop", `Drop); ("delay", `Delay);
                  ("reorder", `Reorder); ("chaos", `Chaos) ])
             `Chaos
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"Transport-fault profile: none, drop, delay, reorder \
                   or chaos.")
  in
  let kill_at =
    Arg.(value & opt (some int) None
         & info [ "kill-at" ] ~docv:"K"
             ~doc:"Fail-stop the primary after transaction $(docv) \
                   (default: txns/2) and promote a standby.")
  in
  let no_kill =
    Arg.(value & flag
         & info [ "no-kill" ]
             ~doc:"Skip the failover: just replicate the workload and \
                   converge.")
  in
  let sweep =
    Arg.(value & flag
         & info [ "sweep" ]
             ~doc:"Run the seeded replication crash sweep instead of one \
                   scenario (see also $(b,--kill-points), \
                   $(b,--fault-only)).")
  in
  let kill_points =
    Arg.(value & opt int 84
         & info [ "kill-points" ]
             ~doc:"Sweep schedules that fail-stop the primary mid-stream.")
  in
  let fault_only =
    Arg.(value & opt int 16
         & info [ "fault-only" ]
             ~doc:"Sweep schedules that only stress the transport.")
  in
  let show_trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print the deterministic per-schedule sweep trace.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead.")
  in
  let run_sweep ~seed ~txns ~kill_points ~fault_only ~replicas ~show_trace
      ~json =
    let o =
      Lvm_tpc.Crash_sweep.run_repl ~seed ~txns ~kill_points ~fault_only
        ~replicas ()
    in
    if json then begin
      let open Lvm_tools.Output_stream.Envelope in
      emit ~kind:"replsweep" ppf
        [ ("seed", Int seed); ("txns", Int txns);
          ("replicas", Int replicas);
          ("points", Int o.Lvm_tpc.Crash_sweep.points);
          ("failovers", Int o.Lvm_tpc.Crash_sweep.crashed);
          ("fault_only", Int o.Lvm_tpc.Crash_sweep.completed);
          ("resynced", Int o.Lvm_tpc.Crash_sweep.torn);
          ("failures",
           List
             (List.map (fun f -> String f) o.Lvm_tpc.Crash_sweep.failures))
        ]
    end
    else begin
      Format.fprintf ppf
        "repl sweep (%d replica%s): %d schedules (%d failovers, %d \
         fault-only, %d resynced), %d failures@."
        replicas
        (if replicas = 1 then "" else "s")
        o.Lvm_tpc.Crash_sweep.points o.Lvm_tpc.Crash_sweep.crashed
        o.Lvm_tpc.Crash_sweep.completed o.Lvm_tpc.Crash_sweep.torn
        (List.length o.Lvm_tpc.Crash_sweep.failures);
      List.iter
        (fun f -> Format.fprintf ppf "FAIL: %s@." f)
        o.Lvm_tpc.Crash_sweep.failures
    end;
    if show_trace then Format.fprintf ppf "%s" o.Lvm_tpc.Crash_sweep.trace;
    Format.pp_print_flush ppf ();
    if o.Lvm_tpc.Crash_sweep.failures <> [] then exit 1
  in
  let run_scenario ~replicas ~txns ~seed ~profile ~kill_at ~no_kill ~json
      ~metrics =
    with_metrics ~label:"repl" metrics (fun () ->
        let plan = repl_profile ~seed profile in
        let cl = Repl.create ?plan { Repl.Config.default with replicas } in
        let keys = Repl.keys cl in
        let rng = Random.State.make [| seed |] in
        let commit j =
          let k1 = Random.State.int rng keys in
          let k2 = Random.State.int rng keys in
          match
            Repl.exec cl
              ~writes:[ (k1, (j * 100) + 1); (k2, (j * 100) + 2) ]
          with
          | Ok () -> Repl.step ~ticks:3 cl
          | Error e -> failwith (Lvm.Lvm_error.to_string e)
        in
        let kill = if no_kill then None
          else Some (match kill_at with Some k -> k | None -> txns / 2) in
        let promo = ref None in
        for j = 0 to txns - 1 do
          commit j;
          match kill with
          | Some k when j = k ->
            Repl.step ~ticks:2 cl;
            Repl.kill_primary cl;
            Repl.step ~ticks:4 cl;
            promo := Some (Repl.promote cl)
          | _ -> ()
        done;
        let converged = Repl.sync cl in
        let s = Repl.stats cl in
        if json then begin
          let open Lvm_tools.Output_stream.Envelope in
          let promo_fields =
            match !promo with
            | None -> [ ("failover", Obj [ ("killed", Int 0) ]) ]
            | Some p ->
              [ ("failover",
                 Obj
                   [ ("killed", Int 1);
                     ("new_primary", Int p.Repl.new_primary);
                     ("new_epoch", Int p.Repl.new_epoch);
                     ("applied_bytes", Int p.Repl.applied_bytes);
                     ("folded_bytes", Int p.Repl.folded_bytes);
                     ("failover_ticks", Int p.Repl.failover_ticks) ]) ]
          in
          emit ~kind:"repl" ppf
            ([ ("replicas", Int replicas); ("txns", Int txns);
               ("seed", Int seed); ("converged", Int (Bool.to_int converged));
               ("epoch", Int s.Repl.s_epoch);
               ("stream_end", Int s.Repl.s_stream_end);
               ("base", Int s.Repl.s_base);
               ("min_acked", Int s.Repl.s_min_acked);
               ("frames_sent", Int s.Repl.frames_sent);
               ("frames_dropped", Int s.Repl.frames_dropped);
               ("retransmits", Int s.Repl.retransmits);
               ("resyncs", Int s.Repl.resyncs);
               ("fenced", Int s.Repl.fenced) ]
            @ promo_fields)
        end
        else begin
          Format.fprintf ppf "repl: %d replica(s), %d txns, seed %d@."
            replicas txns seed;
          (match !promo with
          | None -> ()
          | Some p ->
            Format.fprintf ppf "failover: %s@." (Repl.promotion_to_string p));
          Format.fprintf ppf "%s@." (Repl.stats_to_string s);
          Format.fprintf ppf "converged: %b@." converged
        end;
        Format.pp_print_flush ppf ();
        if not converged then exit 1)
  in
  let run replicas txns seed profile kill_at no_kill sweep kill_points
      fault_only show_trace json metrics =
    if replicas <= 0 then `Error (false, "--replicas must be positive")
    else if txns <= 0 then `Error (false, "--txns must be positive")
    else if sweep then begin
      if kill_points < 0 || fault_only < 0 || kill_points + fault_only = 0
      then `Error (false, "--kill-points/--fault-only must cover >= 1 \
                           schedule")
      else begin
        run_sweep ~seed ~txns ~kill_points ~fault_only ~replicas ~show_trace
          ~json;
        `Ok ()
      end
    end
    else begin
      run_scenario ~replicas ~txns ~seed ~profile ~kill_at ~no_kill ~json
        ~metrics;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "repl"
       ~doc:"Replicate a transactional workload to hot standbys over a \
             faulty transport, optionally failing over mid-stream; \
             $(b,--sweep) runs the seeded failover crash sweep.")
    Term.(ret (const run $ replicas $ txns $ seed $ profile $ kill_at
          $ no_kill $ sweep $ kill_points $ fault_only $ show_trace $ json
          $ metrics_arg))

let main =
  Cmd.group
    (Cmd.info "lvmctl" ~version:"1.0.0"
       ~doc:"Logged Virtual Memory (SOSP '95) reproduction driver.")
    [ list_cmd; exp_cmd; all_cmd; sim_cmd; tpca_cmd; synthetic_cmd;
      crashsweep_cmd; logstats_cmd; store_cmd; fams_cmd; repl_cmd;
      trace_cmd ]

let () = exit (Cmd.eval main)
