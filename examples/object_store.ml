(* A memory-mapped persistent object store (the paper's Section 1 OODB
   motivation): "Object-oriented database management systems can use
   logged virtual memory to log updates to the objects mapped into a
   virtual memory region. The resulting redo log in combination with
   checkpointing can be used to implement transaction atomicity and
   recoverability efficiently."

   The database file is a demand-paged backed segment mapped into the
   address space; object updates are ordinary stores, logged by hardware;
   a checkpointer applies the redo log to the file image. After a crash,
   remapping the file in a fresh kernel shows exactly the checkpointed
   updates. Run with:

     dune exec examples/object_store.exe *)

open Lvm_vm

let db_size = 8 * Lvm_machine.Addr.page_size

(* the durable "database file" *)
let db_file = Backing_store.create ~size:db_size

let open_db k sp =
  let seg = Kernel.create_segment ~backing:db_file k ~size:db_size in
  let region = Kernel.create_region k seg in
  let ls =
    Kernel.create_log_segment k ~size:(16 * Lvm_machine.Addr.page_size)
  in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  (seg, ls, base)

(* Checkpoint: apply the redo log to the file image (only the words that
   changed cross to the "disk"), then truncate it. *)
let checkpoint k seg ls =
  let applied = ref 0 in
  Lvm.Log_reader.iter k ls ~f:(fun ~off:_ r ->
      match Lvm.Log_reader.locate k r with
      | Some (s, off) when Segment.id s = Segment.id seg ->
        Backing_store.write_word db_file ~off r.Lvm_machine.Log_record.value;
        incr applied
      | Some _ | None -> ());
  Lvm_log.truncate (Lvm_log.of_segment k ls)
    ~keep_from:(Lvm.Log_reader.length k ls);
  !applied

let () =
  (* session 1: populate some objects and checkpoint *)
  let () =
    let k = Kernel.create () in
    let sp = Kernel.create_space k in
    let seg, ls, base = open_db k sp in
    Printf.printf "session 1: database mapped at 0x%x\n" base;
    for obj = 0 to 9 do
      Kernel.write_word k sp (base + (obj * 64)) (1000 + obj)
    done;
    let n = checkpoint k seg ls in
    Printf.printf "checkpointed %d logged updates into the file image\n" n;
    (* post-checkpoint updates that will be lost in the crash *)
    Kernel.write_word k sp base 666;
    Printf.printf "one more update (not checkpointed)... then the machine \
                   dies\n"
  in
  (* session 2: a fresh kernel maps the same file *)
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let _seg, _ls, base = open_db k sp in
  Printf.printf "session 2: remapped the database file\n";
  Printf.printf "object 0 = %d (checkpointed value, not the lost 666)\n"
    (Kernel.read_word k sp base);
  Printf.printf "object 9 = %d\n" (Kernel.read_word k sp (base + (9 * 64)));
  assert (Kernel.read_word k sp base = 1000);
  assert (Kernel.read_word k sp (base + (9 * 64)) = 1009);
  (* demand paging at work: only touched pages were faulted in *)
  Printf.printf "page faults so far in session 2: %d (of %d file pages)\n"
    (Kernel.perf k).Lvm_machine.Perf.page_faults
    (db_size / Lvm_machine.Addr.page_size)
