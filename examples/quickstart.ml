(* Quickstart: the paper's Section 2.2 example, in OCaml.

   Create a segment, map it through a region, attach a log segment, and
   watch the hardware log every write. Run with:

     dune exec examples/quickstart.exe *)

let () =
  (* Boot a machine and its VM kernel. *)
  let k = Lvm.Api.create Lvm.Api.Config.default in
  let space = Lvm.Api.address_space k in

  (* Segment * seg_a = new StdSegment(size);
     Region * reg_r = new StdRegion(seg_a); *)
  let seg_a = Lvm.Api.std_segment k ~size:8192 in
  let reg_r = Lvm.Api.std_region k seg_a in

  (* LogSegment * ls = new LogSegment();
     reg_r->log(ls); *)
  let ls = Lvm.Api.log_segment k in
  Lvm.Api.log k reg_r ls;

  (* reg_r->bind(as); *)
  let base = Lvm.Api.bind k space reg_r in
  Printf.printf "logged region bound at 0x%x\n" base;

  (* Ordinary stores; the logger records each one off the critical path. *)
  Lvm.Api.write_word k space ~vaddr:(base + 0x10) 42;
  Lvm.Api.write_word k space ~vaddr:(base + 0x20) 1995;
  Lvm.Api.write_word k space ~vaddr:(base + 0x10) 43;

  Printf.printf "data: [0x10]=%d [0x20]=%d\n"
    (Lvm.Api.read_word k space ~vaddr:(base + 0x10))
    (Lvm.Api.read_word k space ~vaddr:(base + 0x20));

  (* Read the log back: one 16-byte record per write, in order. *)
  Printf.printf "log has %d records:\n" (Lvm.Log_reader.record_count k ls);
  Lvm.Log_reader.iter k ls ~f:(fun ~off:_ r ->
      match Lvm.Log_reader.locate k r with
      | Some (_, seg_off) ->
        Printf.printf "  t=%-6d seg+0x%-4x <- %d\n"
          r.Lvm_machine.Log_record.timestamp seg_off
          r.Lvm_machine.Log_record.value
      | None -> assert false);

  (* Logging costs almost nothing on the writing processor: *)
  let t0 = Lvm.Api.time k in
  Lvm.Api.write_word k space ~vaddr:(base + 0x30) 7;
  Printf.printf "a logged write cost the CPU %d cycles\n"
    (Lvm.Api.time k - t0)
