(* Memory-mapped persistent objects over RLVM (the paper's Section 2.5).

   A tiny bank whose accounts live in recoverable logged virtual memory:
   ordinary stores inside transactions are durable after commit, aborted
   transactions vanish, and a crash loses nothing committed — with no
   set_range annotations anywhere. Run with:

     dune exec examples/persistent_bank.exe *)

let account_off i = i * 4

let () =
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in
  let bank = Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:4096 in
  let balance i = Lvm_rvm.Rlvm.read_word bank ~off:(account_off i) in
  let set i v = Lvm_rvm.Rlvm.write_word bank ~off:(account_off i) v in
  let transfer ~from_ ~to_ ~amount =
    Lvm_rvm.Rlvm.begin_txn bank;
    set from_ (balance from_ - amount);
    set to_ (balance to_ + amount);
    Lvm_rvm.Rlvm.commit bank
  in

  (* open two accounts *)
  Lvm_rvm.Rlvm.begin_txn bank;
  set 0 1000;
  set 1 500;
  Lvm_rvm.Rlvm.commit bank;
  Printf.printf "opened: alice=%d bob=%d\n" (balance 0) (balance 1);

  transfer ~from_:0 ~to_:1 ~amount:250;
  Printf.printf "after transfer: alice=%d bob=%d\n" (balance 0) (balance 1);

  (* an aborted transaction leaves no trace *)
  Lvm_rvm.Rlvm.begin_txn bank;
  set 0 0;
  set 1 0;
  Printf.printf "mid-heist: alice=%d bob=%d\n" (balance 0) (balance 1);
  Lvm_rvm.Rlvm.abort bank;
  Printf.printf "heist aborted: alice=%d bob=%d\n" (balance 0) (balance 1);

  (* a crash mid-transaction recovers the last committed state *)
  Lvm_rvm.Rlvm.begin_txn bank;
  set 0 (balance 0 - 999);
  Printf.printf "power fails mid-withdrawal...\n";
  Lvm_rvm.Rlvm.crash_and_recover bank;
  Printf.printf "recovered: alice=%d bob=%d (sum %d, as committed)\n"
    (balance 0) (balance 1)
    (balance 0 + balance 1);
  assert (balance 0 + balance 1 = 1500)
