(* lvmctl: command-line driver for the LVM reproduction.

   Subcommands run individual paper experiments with custom parameters,
   TimeWarp simulations, TPC-A, and the synthetic state-saving workload. *)

open Cmdliner

let ppf = Format.std_formatter

(* {1 experiments} *)

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps for a fast run.")

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-14s %s\n" e.Lvm_experiments.Experiments.id
          e.Lvm_experiments.Experiments.description)
      Lvm_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.")
    Term.(const run $ const ())

let exp_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (see $(b,lvmctl list)).")
  in
  let run id quick =
    match Lvm_experiments.Experiments.find id with
    | Some e ->
      e.Lvm_experiments.Experiments.run ~quick ppf;
      Format.pp_print_flush ppf ();
      `Ok ()
    | None -> `Error (false, "unknown experiment " ^ id)
  in
  Cmd.v (Cmd.info "exp" ~doc:"Run one table/figure reproduction experiment.")
    Term.(ret (const run $ id_arg $ quick_arg))

let all_cmd =
  let run quick =
    Lvm_experiments.Experiments.run_all ~quick ppf;
    Format.pp_print_flush ppf ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every reproduction experiment.")
    Term.(const run $ quick_arg)

(* {1 sim} *)

let strategy_conv =
  let parse = function
    | "lvm" -> Ok Lvm_sim.State_saving.Lvm_based
    | "copy" -> Ok Lvm_sim.State_saving.Copy_based
    | "page-protect" -> Ok Lvm_sim.State_saving.Page_protect
    | s -> Error (`Msg ("unknown strategy " ^ s))
  in
  Arg.conv (parse, fun ppf s ->
      Format.pp_print_string ppf (Lvm_sim.State_saving.to_string s))

let sim_cmd =
  let schedulers =
    Arg.(value & opt int 4 & info [ "schedulers" ] ~doc:"Scheduler count.")
  in
  let objects =
    Arg.(value & opt int 16 & info [ "objects" ] ~doc:"Simulation objects.")
  in
  let population =
    Arg.(value & opt int 12 & info [ "population" ] ~doc:"Initial events.")
  in
  let end_time =
    Arg.(value & opt int 500 & info [ "end-time" ] ~doc:"Virtual end time.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PHOLD seed.") in
  let strategy =
    Arg.(value & opt strategy_conv Lvm_sim.State_saving.Lvm_based
         & info [ "strategy" ] ~doc:"State saving: lvm or copy.")
  in
  let workload =
    Arg.(value
         & opt (enum [ ("phold", `Phold); ("queueing", `Queueing) ]) `Phold
         & info [ "workload" ] ~doc:"Simulation model: phold or queueing.")
  in
  let engine_kind =
    Arg.(value
         & opt (enum [ ("optimistic", `Optimistic);
                       ("conservative", `Conservative) ]) `Optimistic
         & info [ "engine" ] ~doc:"optimistic (TimeWarp) or conservative.")
  in
  let run schedulers objects population end_time seed strategy workload
      engine_kind =
    let app, inject_tw, inject_cons, name =
      match workload with
      | `Phold ->
        ( Lvm_sim.Phold.app ~objects ~seed (),
          (fun e ->
            Lvm_sim.Phold.inject_population e ~objects ~population ~seed),
          (fun e ->
            for i = 0 to population - 1 do
              let h = Lvm_sim.Phold.hash seed i 17 23 in
              Lvm_sim.Conservative.inject e ~time:(1 + (h mod 10))
                ~dst:(h / 16 mod objects) ~payload:(h land 0xFFFF)
            done),
          "PHOLD" )
      | `Queueing ->
        ( Lvm_sim.Queueing.app ~stations:objects ~seed,
          (fun e ->
            Lvm_sim.Queueing.inject_customers e ~stations:objects
              ~customers:population ~seed),
          (fun e ->
            for c = 0 to population - 1 do
              let h = Lvm_sim.Phold.hash seed c 3 5 in
              Lvm_sim.Conservative.inject e ~time:(1 + (h mod 8))
                ~dst:(h / 8 mod objects) ~payload:(c land 0xFFFF)
            done),
          "queueing network" )
    in
    match engine_kind with
    | `Conservative ->
      let e = Lvm_sim.Conservative.create ~n_schedulers:schedulers ~app () in
      inject_cons e;
      let r = Lvm_sim.Conservative.run e ~end_time in
      Printf.printf
        "%s (conservative): %d schedulers, %d objects, %d tokens, end-time          %d\n"
        name schedulers objects population end_time;
      Printf.printf "  events processed   %d\n"
        r.Lvm_sim.Conservative.events_processed;
      Printf.printf "  barrier steps      %d\n" r.Lvm_sim.Conservative.steps;
      Printf.printf "  elapsed (cycles)   %d\n"
        r.Lvm_sim.Conservative.elapsed_cycles;
      Printf.printf "  busy (cycles)      %d\n"
        r.Lvm_sim.Conservative.busy_cycles
    | `Optimistic ->
      let engine =
        Lvm_sim.Timewarp.create ~n_schedulers:schedulers ~strategy ~app ()
      in
      inject_tw engine;
      let r = Lvm_sim.Timewarp.run engine ~end_time in
      Printf.printf
        "%s: %d schedulers, %d objects, %d tokens, end-time %d (%s)\n" name
        schedulers objects population end_time
        (Lvm_sim.State_saving.to_string strategy);
      Printf.printf "  committed events   %d\n" r.Lvm_sim.Timewarp.total_events_committed;
      Printf.printf "  processed events   %d\n" r.Lvm_sim.Timewarp.total_events_processed;
      Printf.printf "  rollbacks          %d\n" r.Lvm_sim.Timewarp.total_rollbacks;
      Printf.printf "  stragglers         %d\n" r.Lvm_sim.Timewarp.total_stragglers;
      Printf.printf "  anti-messages      %d\n" r.Lvm_sim.Timewarp.total_anti_messages;
      Printf.printf "  elapsed (cycles)   %d\n" r.Lvm_sim.Timewarp.elapsed_cycles;
      Printf.printf "  efficiency         %.1f%%\n"
        (100.
         *. float_of_int r.Lvm_sim.Timewarp.total_events_committed
         /. float_of_int (max 1 r.Lvm_sim.Timewarp.total_events_processed))
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Run a simulation (PHOLD or queueing) over LVM.")
    Term.(const run $ schedulers $ objects $ population $ end_time $ seed
          $ strategy $ workload $ engine_kind)

(* {1 tpca} *)

let tpca_cmd =
  let txns =
    Arg.(value & opt int 500 & info [ "txns" ] ~doc:"Transactions to run.")
  in
  let store =
    Arg.(value & opt (enum [ ("rvm", `Rvm); ("rlvm", `Rlvm) ]) `Rlvm
         & info [ "store" ] ~doc:"Recoverable store: rvm or rlvm.")
  in
  let run txns store =
    let k = Lvm_vm.Kernel.create () in
    let sp = Lvm_vm.Kernel.create_space k in
    let bank =
      Lvm_tpc.Bank.layout ~branches:4 ~tellers:40 ~accounts:400 ~history:256
    in
    let size = Lvm_tpc.Bank.segment_bytes bank in
    let name, s =
      match store with
      | `Rvm -> ("RVM", Lvm_tpc.Tpca.rvm_store (Lvm_rvm.Rvm.create k sp ~size))
      | `Rlvm ->
        ("RLVM", Lvm_tpc.Tpca.rlvm_store (Lvm_rvm.Rlvm.create k sp ~size))
    in
    Lvm_tpc.Tpca.setup s bank;
    let r = Lvm_tpc.Tpca.run s bank ~txns in
    Printf.printf "TPC-A on %s: %d txns, %.0f tps, %.0f cycles/txn, \
                   invariant %b\n"
      name r.Lvm_tpc.Tpca.txns r.Lvm_tpc.Tpca.tps r.Lvm_tpc.Tpca.cycles_per_txn
      (Lvm_tpc.Tpca.balance_invariant s bank)
  in
  Cmd.v (Cmd.info "tpca" ~doc:"Run the TPC-A debit-credit benchmark.")
    Term.(const run $ txns $ store)

(* {1 synthetic} *)

let synthetic_cmd =
  let events =
    Arg.(value & opt int 2000 & info [ "events" ] ~doc:"Events to process.")
  in
  let c =
    Arg.(value & opt int 512
         & info [ "compute" ] ~doc:"Compute cycles per event (c).")
  in
  let s =
    Arg.(value & opt int 64
         & info [ "object-bytes" ] ~doc:"Object size in bytes (s).")
  in
  let w =
    Arg.(value & opt int 2 & info [ "writes" ] ~doc:"Writes per event (w).")
  in
  let strategy =
    Arg.(value & opt strategy_conv Lvm_sim.State_saving.Lvm_based
         & info [ "strategy" ] ~doc:"lvm, copy or page-protect.")
  in
  let run events c s w strategy =
    let p = { Lvm_sim.Synthetic.default_params with
              Lvm_sim.Synthetic.events; c; s; w } in
    let r = Lvm_sim.Synthetic.run p strategy in
    Printf.printf
      "synthetic (%s): %.2f cycles/event, %d overloads, %d log records, \
       %d protect faults\n"
      (Lvm_sim.State_saving.to_string strategy)
      r.Lvm_sim.Synthetic.per_event r.Lvm_sim.Synthetic.overloads
      r.Lvm_sim.Synthetic.log_records r.Lvm_sim.Synthetic.protect_faults;
    if strategy = Lvm_sim.State_saving.Lvm_based then
      Printf.printf "speedup over copy-based: %.2f\n"
        (Lvm_sim.Synthetic.speedup p)
  in
  Cmd.v
    (Cmd.info "synthetic"
       ~doc:"Run the Section 4.3 synthetic simulation workload.")
    Term.(const run $ events $ c $ s $ w $ strategy)

let main =
  Cmd.group
    (Cmd.info "lvmctl" ~version:"1.0.0"
       ~doc:"Logged Virtual Memory (SOSP '95) reproduction driver.")
    [ list_cmd; exp_cmd; all_cmd; sim_cmd; tpca_cmd; synthetic_cmd ]

let () = exit (Cmd.eval main)
