open Lvm_machine

type t = { image : Bytes.t }

let create ~size =
  if size <= 0 then invalid_arg "Backing_store.create: size must be positive";
  { image = Bytes.make (Addr.align_up size ~alignment:Addr.page_size) '\000' }

let size t = Bytes.length t.image
let pages t = size t / Addr.page_size

let check_page t page =
  if page < 0 || page >= pages t then
    invalid_arg "Backing_store: page out of range"

let read_page t ~page =
  check_page t page;
  Bytes.sub t.image (page * Addr.page_size) Addr.page_size

let write_page t ~page bytes =
  check_page t page;
  if Bytes.length bytes <> Addr.page_size then
    invalid_arg "Backing_store.write_page: need exactly one page";
  Bytes.blit bytes 0 t.image (page * Addr.page_size) Addr.page_size

let read_word t ~off =
  if off < 0 || off + 4 > size t then invalid_arg "Backing_store.read_word";
  Int32.to_int (Bytes.get_int32_le t.image off) land 0xFFFFFFFF

let write_word t ~off v =
  if off < 0 || off + 4 > size t then invalid_arg "Backing_store.write_word";
  Bytes.set_int32_le t.image off (Int32.of_int (v land 0xFFFFFFFF))
