(** Li/Appel-style virtual-memory checkpointing (Section 5.1).

    The paper describes the Li and Appel mechanism — write-protect the
    region at checkpoint time, copy each page into the checkpoint on its
    first-write fault, and restore by {e re-mapping} the modified pages to
    their checkpoint copies — and notes it "would be relatively
    straightforward to extend our implementation to provide their form of
    checkpointing and allow the applications to choose". This module is
    that extension.

    Contrast with deferred copy: restore here is a cheap per-modified-page
    remap, but every checkpoint pays a write-protection sweep and every
    first write to a page costs a protection fault plus a page copy — and
    there is no per-write log, so rollback granularity is the checkpoint,
    not the write (the limitation Section 5.1 stresses). *)

type t

val manager : Kernel.t -> t
(** One manager per kernel: it owns the kernel's write-protection fault
    handler and dispatches faults to the checkpoints registered below.
    Creating a second manager for the same kernel is an error. *)

type checkpointed

val attach : t -> space:Address_space.t -> Region.t -> checkpointed
(** Bring a bound region under checkpoint control. The region's pages are
    materialized eagerly so protection sweeps cover them all. *)

val checkpoint : checkpointed -> unit
(** Establish a new checkpoint: discard saved pages from the previous
    epoch and write-protect the region. *)

val restore : checkpointed -> unit
(** Roll the region back to the last checkpoint by remapping each
    modified page to its saved copy (no data copying), then re-protect.
    A region restored without any intervening writes is a no-op. *)

val modified_pages : checkpointed -> int
(** Pages copied (faulted) since the last checkpoint. *)

val faults_taken : checkpointed -> int
(** Total protection faults fielded for this region. *)
