(** Regions: contiguous virtual address ranges mapping a segment.

    A region maps [size] bytes of a segment starting at [seg_offset] and
    can be bound to an address space at a page-aligned virtual address. A
    region is {e logged} when a log segment has been declared for it
    (Table 1, [Region::log]); logging can also be dynamically enabled and
    disabled without touching the program (Section 2.7). *)

type t

val make : id:int -> segment:Segment.t -> seg_offset:int -> size:int -> t
(** Internal constructor used by the kernel. [seg_offset] must be
    page-aligned, and [seg_offset + size] must fit in the segment. *)

val id : t -> int
val segment : t -> Segment.t
val seg_offset : t -> int
val size : t -> int
val pages : t -> int

val log : t -> Segment.t option
(** This region's log segment, if one has been declared. *)

val set_log : t -> Segment.t option -> unit

val logging_enabled : t -> bool
(** Dynamic switch: a region with a log segment only logs while enabled. *)

val set_logging_enabled : t -> bool -> unit

val is_logged : t -> bool
(** [log] present and logging enabled. *)

val binding : t -> (int * int) option
(** [(address-space id, base virtual address)] when bound. *)

val set_binding : t -> (int * int) option -> unit

val write_protected : t -> bool
(** Whole-region write protection (the Li/Appel checkpointing baseline,
    Section 5.1, takes a fault on the first write to each page). *)

val set_write_protected : t -> bool -> unit

val seg_page_of_vaddr : t -> base:int -> vaddr:int -> int
(** Segment page index backing [vaddr], given the region's bound [base]. *)
