(** Backing store for demand-paged segments.

    The paper positions LVM alongside ordinary virtual memory structuring
    — "attaching the logging to a memory region also fits with application
    structuring required with mapped files" — and its motivating OODB use
    maps persistent objects into memory. This module is the paging store
    behind such segments: a page-granular image that survives the kernel,
    so a segment can be paged out under memory pressure and a new mapping
    can reload the same data (the mapped-file pattern).

    Timing: page transfers are charged by the kernel as paging I/O
    ({!Lvm_machine.Cycles.page_in}/[page_out]); this module only stores
    bytes. *)

type t

val create : size:int -> t
(** A zero-filled image of [size] bytes (rounded up to whole pages). *)

val size : t -> int
val pages : t -> int

val read_page : t -> page:int -> Bytes.t
(** A copy of the 4 KB page image. *)

val write_page : t -> page:int -> Bytes.t -> unit

val read_word : t -> off:int -> int
(** Direct image inspection (tests and checkers). *)

val write_word : t -> off:int -> int -> unit
