lib/vm/backing_store.mli: Bytes
