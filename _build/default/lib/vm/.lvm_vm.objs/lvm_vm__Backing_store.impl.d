lib/vm/backing_store.ml: Addr Bytes Int32 Lvm_machine
