lib/vm/segment.mli: Backing_store Lvm_machine
