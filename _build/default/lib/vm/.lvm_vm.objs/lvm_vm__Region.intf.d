lib/vm/region.mli: Segment
