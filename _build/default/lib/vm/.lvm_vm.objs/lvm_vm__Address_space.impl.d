lib/vm/address_space.ml: Addr Hashtbl List Lvm_machine Region
