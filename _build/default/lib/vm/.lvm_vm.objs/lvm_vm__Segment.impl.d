lib/vm/segment.ml: Addr Array Backing_store Logger Lvm_machine Printf
