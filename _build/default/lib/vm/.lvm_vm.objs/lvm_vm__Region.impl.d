lib/vm/region.ml: Addr Lvm_machine Segment
