lib/vm/kernel.ml: Addr Address_space Array Backing_store Bytes Cycles Hashtbl L1_cache List Logger Lvm_machine Machine Perf Physmem Region Segment
