lib/vm/protect_checkpoint.mli: Address_space Kernel Region
