lib/vm/kernel.mli: Address_space Backing_store Lvm_machine Region Segment
