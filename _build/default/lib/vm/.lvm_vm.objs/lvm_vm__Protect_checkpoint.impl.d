lib/vm/protect_checkpoint.ml: Addr Address_space Hashtbl Kernel List Lvm_machine Machine Physmem Region
