(** PHOLD: the standard synthetic workload for optimistic simulators.

    A fixed population of event tokens bounces between objects; each event
    updates a few state words (counter, checksum, rolling hash) and
    forwards the token to a pseudo-random object at a pseudo-random future
    time. All randomness is a pure hash of event content, so the committed
    execution — and the final state vector — is identical for any number
    of schedulers, which the sequential-equivalence tests rely on. *)

val app :
  ?object_words:int -> ?max_delay:int -> ?compute:int -> ?locality_pct:int ->
  objects:int -> seed:int -> unit -> Scheduler.app
(** [object_words >= 4] (default 8); [compute] is the modelled CPU work
    per event in cycles (default 200); [locality_pct] is the percentage of
    events an object sends to itself (default 0, fully uniform — higher
    locality means fewer cross-scheduler stragglers). *)

val inject_population :
  Timewarp.t -> objects:int -> population:int -> seed:int -> unit
(** Seed the engine with [population] initial token events. *)

val hash : int -> int -> int -> int -> int
(** The content hash used for all PHOLD randomness (30-bit result). *)
