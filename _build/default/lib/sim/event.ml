type t = {
  time : int;
  dst : int;
  payload : int;
  src : int;
  send_time : int;
  uid : int;
}

type sign = Positive | Negative
type msg = { sign : sign; event : t }

let compare a b =
  let c = Int.compare a.time b.time in
  if c <> 0 then c
  else
    let c = Int.compare a.src b.src in
    if c <> 0 then c
    else
      let c = Int.compare a.send_time b.send_time in
      if c <> 0 then c
      else
        let c = Int.compare a.dst b.dst in
        if c <> 0 then c
        else
          let c = Int.compare a.payload b.payload in
          if c <> 0 then c else Int.compare a.uid b.uid

let anti event = { sign = Negative; event }
let positive event = { sign = Positive; event }

let pp ppf e =
  Format.fprintf ppf "@[<h>ev{t=%d %d->%d pay=%d uid=%d}@]" e.time e.src e.dst
    e.payload e.uid
