type t = Copy_based | Lvm_based | Page_protect | No_saving

let to_string = function
  | Copy_based -> "copy-based"
  | Lvm_based -> "lvm"
  | Page_protect -> "page-protect"
  | No_saving -> "no-saving"

let pp ppf t = Format.pp_print_string ppf (to_string t)
