lib/sim/timewarp.mli: Lvm_machine Scheduler State_saving
