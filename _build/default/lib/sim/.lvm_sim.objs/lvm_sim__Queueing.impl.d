lib/sim/queueing.ml: Phold Scheduler Timewarp
