lib/sim/phold.mli: Scheduler Timewarp
