lib/sim/queueing.mli: Scheduler Timewarp
