lib/sim/synthetic.mli: Lvm_machine State_saving
