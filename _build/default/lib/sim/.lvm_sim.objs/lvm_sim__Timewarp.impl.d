lib/sim/timewarp.ml: Array Event List Scheduler
