lib/sim/state_saving.mli: Format
