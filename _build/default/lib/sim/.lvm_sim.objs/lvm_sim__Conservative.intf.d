lib/sim/conservative.mli: Scheduler
