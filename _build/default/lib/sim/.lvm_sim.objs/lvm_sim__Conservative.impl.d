lib/sim/conservative.ml: Array Event List Lvm_vm Scheduler State_saving
