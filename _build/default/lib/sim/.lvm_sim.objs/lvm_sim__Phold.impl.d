lib/sim/phold.ml: Scheduler Timewarp
