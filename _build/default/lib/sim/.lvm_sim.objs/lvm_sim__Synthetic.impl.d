lib/sim/synthetic.ml: Addr Kernel Log_record Logger Lvm_machine Lvm_vm Machine Option Perf Segment State_saving
