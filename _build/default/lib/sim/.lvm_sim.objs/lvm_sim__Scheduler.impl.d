lib/sim/scheduler.ml: Addr Address_space Event Event_queue Kernel List Log_record Lvm Lvm_machine Lvm_vm Machine Option Region Segment State_saving
