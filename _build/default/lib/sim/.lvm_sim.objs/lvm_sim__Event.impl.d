lib/sim/event.ml: Format Int
