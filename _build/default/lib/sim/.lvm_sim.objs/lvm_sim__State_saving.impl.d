lib/sim/state_saving.ml: Format
