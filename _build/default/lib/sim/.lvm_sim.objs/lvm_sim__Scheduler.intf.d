lib/sim/scheduler.mli: Event Lvm_machine Lvm_vm State_saving
