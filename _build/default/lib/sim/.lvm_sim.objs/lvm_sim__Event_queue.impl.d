lib/sim/event_queue.ml: Event Option Seq Set
