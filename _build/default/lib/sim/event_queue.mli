(** Pending-event set of a scheduler: ordered by {!Event.compare}, with
    removal by unique id for anti-message annihilation. *)

type t

val empty : t
val is_empty : t -> bool
val size : t -> int
val add : t -> Event.t -> t
val min : t -> Event.t option
val remove_min : t -> t

val remove_uid : t -> uid:int -> (Event.t * t) option
(** Remove the event with the given uid, if present. *)

val min_time : t -> int option
val to_list : t -> Event.t list
(** Ascending order. *)
