module S = Set.Make (struct
  type t = Event.t

  let compare = Event.compare
end)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let size = S.cardinal
let add t e = S.add e t
let min t = S.min_elt_opt t
let remove_min t = match S.min_elt_opt t with None -> t | Some e -> S.remove e t

let remove_uid t ~uid =
  match S.to_seq t |> Seq.find (fun e -> e.Event.uid = uid) with
  | None -> None
  | Some e -> Some (e, S.remove e t)

let min_time t = Option.map (fun e -> e.Event.time) (S.min_elt_opt t)
let to_list t = S.elements t
