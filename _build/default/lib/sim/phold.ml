(* See phold.mli. Randomness is a pure hash of event content so that the
   committed execution is identical for every scheduler count. *)

let hash a b c d =
  (* 64-bit mix (splitmix-style), folded to 30 bits *)
  let m = 0x2545F4914F6CDD1D in
  let h = ref ((a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE3D)
               lxor (d * 0x27D4EB2F)) in
  h := (!h lxor (!h lsr 33)) * m;
  h := (!h lxor (!h lsr 29)) * m;
  (!h lxor (!h lsr 32)) land 0x3FFFFFFF

let app ?(object_words = 8) ?(max_delay = 20) ?(compute = 200)
    ?(locality_pct = 0) ~objects ~seed () =
  if objects <= 0 then invalid_arg "Phold.app: objects must be positive";
  if object_words < 4 then invalid_arg "Phold.app: need at least 4 words";
  if locality_pct < 0 || locality_pct > 100 then
    invalid_arg "Phold.app: locality_pct must be a percentage";
  {
    Scheduler.n_objects = objects;
    object_words;
    init_word = (fun ~obj ~word -> if word = 0 then obj else 0);
    handle =
      (fun ctx ~payload ->
        ctx.Scheduler.compute compute;
        (* state update: an event counter, a payload checksum and a
           rolling mix over a few words *)
        let count = ctx.Scheduler.read 1 in
        ctx.Scheduler.write 1 (count + 1);
        let sum = ctx.Scheduler.read 2 in
        ctx.Scheduler.write 2 ((sum + payload) land 0xFFFFFFF);
        let mix = ctx.Scheduler.read 3 in
        ctx.Scheduler.write 3
          (hash mix payload ctx.Scheduler.now ctx.Scheduler.self
           land 0xFFFFFFF);
        (* forward the token *)
        let h =
          hash seed ctx.Scheduler.self payload ctx.Scheduler.now
        in
        (* spatial locality: most events stay on their object *)
        let dst =
          if h / 7 mod 100 < locality_pct then ctx.Scheduler.self
          else h mod objects
        in
        let delay = 1 + (h / objects mod max_delay) in
        let payload' = hash h payload 1 2 land 0xFFFF in
        ctx.Scheduler.send ~dst ~delay ~payload:payload')
  }

let inject_population engine ~objects ~population ~seed =
  for i = 0 to population - 1 do
    let h = hash seed i 17 23 in
    Timewarp.inject engine
      ~time:(1 + (h mod 10))
      ~dst:(h / 16 mod objects)
      ~payload:(h land 0xFFFF)
  done
