(** State-saving strategies for rollback support (Sections 2.4 and 4.3).

    - [Copy_based]: the conventional TimeWarp implementation — copy the
      affected object's state before processing each event; rollback
      restores the copies in reverse order.
    - [Lvm_based]: logged virtual memory — the working region is logged
      and the checkpoint segment is its deferred-copy source; rollback is
      [reset_deferred_copy] plus roll-forward from the log.
    - [Page_protect]: the Li/Appel virtual-memory checkpointing baseline —
      write-protect the region at each checkpoint and copy each page on
      its first-write fault (Section 5.1; provides checkpoints, not
      logging, so rollback granularity is the checkpoint interval). *)

type t =
  | Copy_based
  | Lvm_based
  | Page_protect
  | No_saving
      (** No rollback support at all — only valid under an engine that
          never rolls back (the conservative baseline). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
