(** The paper's "simulated" simulation (Section 4.3, Figures 7 and 8).

    A single scheduler processes synthetic events, each of which performs
    [c] compute cycles and [w] four-byte writes into an object of [s]
    bytes, under one of the state-saving strategies. No rollbacks occur:
    the measurement isolates the forward-progress cost of state saving,
    exactly as the paper's elapsed-time runs do (rollback, GVT advance and
    log truncation are excluded; CULT is assumed to run asynchronously on
    another processor, so the log is recycled out of band).

    - Copy-based saving copies the s-byte object before every event.
    - LVM saving writes an LVT marker and lets the logger record the
      event's writes; low [c] with high [w] overloads the logger FIFOs,
      reproducing the overflow cliff the paper notes.
    - Page-protect saving (Li/Appel, Section 5.1) write-protects the
      region every [checkpoint_interval] events and copies each page on
      its first-write fault. *)

type params = {
  events : int;
  c : int;  (** Compute cycles per event. *)
  s : int;  (** Object size in bytes (word multiple). *)
  w : int;  (** Four-byte writes per event. *)
  objects : int;  (** Objects touched round-robin. *)
  checkpoint_interval : int;  (** Page-protect mode only. *)
}

val default_params : params
(** 2000 events, c=512, s=64, w=2, 64 objects, interval 50. *)

type run_result = {
  cycles : int;
  per_event : float;
  overloads : int;
  log_records : int;
  protect_faults : int;
}

val run :
  ?hw:Lvm_machine.Logger.hw -> params -> State_saving.t -> run_result

val speedup : ?hw:Lvm_machine.Logger.hw -> params -> float
(** Elapsed-time ratio copy-based / LVM — the y-axis of Figures 7/8. *)
