(** Simulation events and messages.

    Events are totally ordered by receive time with a deterministic,
    content-based tie-break so that optimistic executions commit the same
    schedule as a sequential run regardless of interleaving. Anti-messages
    (TimeWarp cancellation) carry the unique id of the positive event they
    annihilate. *)

type t = {
  time : int;  (** Receive virtual time. *)
  dst : int;  (** Global destination object id. *)
  payload : int;
  src : int;  (** Sending object id, or -1 for initial events. *)
  send_time : int;
  uid : int;  (** Engine-unique id, shared by an event and its anti. *)
}

type sign = Positive | Negative

type msg = { sign : sign; event : t }

val compare : t -> t -> int
(** Order by (time, src, send_time, dst, payload, uid): deterministic
    under any delivery interleaving of distinct events. *)

val anti : t -> msg
val positive : t -> msg
val pp : Format.formatter -> t -> unit
