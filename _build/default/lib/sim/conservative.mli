(** A conservative (barrier-synchronous) simulation engine.

    The paper frames optimistic execution as speculative work done
    "as an alternative to going idle waiting for the bottleneck process,
    as would occur in conservative simulation" (Section 2.4). This engine
    is that alternative: schedulers only process events at the current
    global minimum time and barrier-synchronize between steps — no
    rollback, no state saving, but every processor idles up to the
    slowest one each step.

    It reuses {!Scheduler.app}, so any workload runs under either engine
    and must produce the identical committed state (the engines' results
    are compared in tests and in the optimism ablation). *)

type result = {
  events_processed : int;
  steps : int;  (** Barrier rounds executed. *)
  elapsed_cycles : int;
      (** Wall-clock: every barrier advances all processors to the
          slowest one. *)
  busy_cycles : int;  (** Sum of useful (non-idle) cycles. *)
}

type t

val create :
  ?barrier_cost:int -> n_schedulers:int -> app:Scheduler.app -> unit -> t
(** [barrier_cost] (default 800 cycles) is charged to every processor at
    each synchronization step: the global-minimum computation and barrier
    messaging that conservative engines pay in place of rollback. *)

val inject : t -> time:int -> dst:int -> payload:int -> unit
val run : t -> end_time:int -> result
val read_state : t -> obj:int -> word:int -> int
val state_vector : t -> int array
