(** A closed tandem queueing network over TimeWarp.

    A second simulation application (besides {!Phold}) in the style of the
    discrete-event models the paper's Section 2.4 targets: [stations]
    single-server FIFO queues arranged in a ring, with a fixed population
    of customers flowing through them. Each station keeps its queue
    length, busy flag, served count and a rolling checksum in logged
    state, so rollback correctness is visible in the final state vector.

    Event payloads encode (kind, customer): an [Arrival] either seizes the
    idle server — scheduling its own [Service] completion — or joins the
    queue; a [Service] completion dispatches the customer to the next
    station and starts the next queued customer if any. All service and
    transfer times are content-hashed, so the committed execution is
    identical for any scheduler count. *)

val app : stations:int -> seed:int -> Scheduler.app

val inject_customers : Timewarp.t -> stations:int -> customers:int ->
  seed:int -> unit

(** State-word indices for result inspection. *)

val queue_len_word : int
val busy_word : int
val served_word : int
val checksum_word : int

val total_served : Timewarp.t -> stations:int -> int
val customers_present : Timewarp.t -> stations:int -> int
(** Customers currently queued or in service across all stations (the
    rest are in flight as events). *)
