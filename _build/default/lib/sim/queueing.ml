let queue_len_word = 1
let busy_word = 2
let served_word = 3
let checksum_word = 4

let arrival = 0
let service = 1
let kind payload = payload lsr 16
let customer payload = payload land 0xFFFF
let payload ~kind:k ~customer:c = (k lsl 16) lor (c land 0xFFFF)

let app ~stations ~seed =
  if stations <= 0 then invalid_arg "Queueing.app: stations";
  {
    Scheduler.n_objects = stations;
    object_words = 6;
    init_word = (fun ~obj ~word -> if word = 0 then obj else 0);
    handle =
      (fun ctx ~payload:p ->
        ctx.Scheduler.compute 150;
        let self = ctx.Scheduler.self in
        let now = ctx.Scheduler.now in
        let cust = customer p in
        let service_time c =
          1 + (Phold.hash seed self c now mod 12)
        in
        if kind p = arrival then begin
          if ctx.Scheduler.read busy_word = 0 then begin
            ctx.Scheduler.write busy_word 1;
            ctx.Scheduler.send ~dst:self ~delay:(service_time cust)
              ~payload:(payload ~kind:service ~customer:cust)
          end
          else
            ctx.Scheduler.write queue_len_word
              (ctx.Scheduler.read queue_len_word + 1)
        end
        else begin
          (* service completion: account, forward the customer, start the
             next one if the queue is non-empty *)
          ctx.Scheduler.write served_word
            (ctx.Scheduler.read served_word + 1);
          ctx.Scheduler.write checksum_word
            (Phold.hash (ctx.Scheduler.read checksum_word) self cust now
             land 0xFFFFFF);
          let next = (self + 1) mod stations in
          ctx.Scheduler.send ~dst:next
            ~delay:(1 + (Phold.hash seed next cust now mod 4))
            ~payload:(payload ~kind:arrival ~customer:cust);
          let q = ctx.Scheduler.read queue_len_word in
          if q > 0 then begin
            ctx.Scheduler.write queue_len_word (q - 1);
            (* the next customer's identity is content-derived *)
            let c' = Phold.hash self cust now q land 0xFFFF in
            ctx.Scheduler.send ~dst:self ~delay:(service_time c')
              ~payload:(payload ~kind:service ~customer:c')
          end
          else ctx.Scheduler.write busy_word 0
        end);
  }

let inject_customers engine ~stations ~customers ~seed =
  for c = 0 to customers - 1 do
    let h = Phold.hash seed c 3 5 in
    Timewarp.inject engine
      ~time:(1 + (h mod 8))
      ~dst:(h / 8 mod stations)
      ~payload:(payload ~kind:arrival ~customer:c)
  done

let sum_word engine ~stations ~word =
  let total = ref 0 in
  for s = 0 to stations - 1 do
    total := !total + Timewarp.read_state engine ~obj:s ~word
  done;
  !total

let total_served engine ~stations = sum_word engine ~stations ~word:served_word

let customers_present engine ~stations =
  sum_word engine ~stations ~word:queue_len_word
  + sum_word engine ~stations ~word:busy_word
