type result = {
  events_processed : int;
  steps : int;
  elapsed_cycles : int;
  busy_cycles : int;
}

type t = {
  scheds : Scheduler.t array;
  app : Scheduler.app;
  next_uid : int ref;
  barrier_cost : int;
}

let create ?(barrier_cost = 800) ~n_schedulers ~app () =
  let next_uid = ref 0 in
  let fresh_uid () =
    let u = !next_uid in
    incr next_uid;
    u
  in
  let scheds =
    Array.init n_schedulers (fun id ->
        Scheduler.create ~id ~n_schedulers
          ~strategy:State_saving.No_saving ~app ~fresh_uid ())
  in
  { scheds; app; next_uid; barrier_cost }

let sched_of t obj = t.scheds.(obj mod Array.length t.scheds)

let inject t ~time ~dst ~payload =
  if dst < 0 || dst >= t.app.n_objects then
    invalid_arg "Conservative.inject: unknown object";
  let uid = !(t.next_uid) in
  incr t.next_uid;
  Scheduler.enqueue (sched_of t dst)
    { Event.time; dst; payload; src = -1; send_time = 0; uid }

let deliver t =
  Array.iter
    (fun s ->
      List.iter
        (fun (dst, msg) -> Scheduler.receive t.scheds.(dst) msg)
        (Scheduler.drain_outbox s))
    t.scheds

let global_min t =
  Array.fold_left
    (fun acc s ->
      match Scheduler.min_pending_time s with
      | None -> acc
      | Some m -> min acc m)
    max_int t.scheds

let run t ~end_time =
  let steps = ref 0 in
  let busy = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    deliver t;
    let now = global_min t in
    if now >= end_time then continue_ := false
    else begin
      incr steps;
      (* every scheduler may safely process exactly the events at [now]:
         all future events are at least one delay unit later *)
      Array.iter
        (fun s ->
          let before = Scheduler.time s in
          let rec drain () =
            match Scheduler.min_pending_time s with
            | Some m when m = now ->
              ignore (Scheduler.step s ~horizon:now);
              drain ()
            | Some _ | None -> ()
          in
          drain ();
          busy := !busy + (Scheduler.time s - before))
        t.scheds;
      (* barrier: idle every processor up to the slowest one, then charge
         the synchronization itself (global-minimum exchange) *)
      let frontier =
        Array.fold_left (fun acc s -> max acc (Scheduler.time s)) 0 t.scheds
      in
      Array.iter
        (fun s ->
          let lag = frontier - Scheduler.time s in
          Lvm_vm.Kernel.compute (Scheduler.kernel s) (lag + t.barrier_cost))
        t.scheds
    end
  done;
  {
    events_processed =
      Array.fold_left
        (fun acc s -> acc + (Scheduler.stats s).Scheduler.events_processed)
        0 t.scheds;
    steps = !steps;
    elapsed_cycles =
      Array.fold_left (fun acc s -> max acc (Scheduler.time s)) 0 t.scheds;
    busy_cycles = !busy;
  }

let read_state t ~obj ~word = Scheduler.read_state (sched_of t obj) ~obj ~word

let state_vector t =
  Array.init
    (t.app.n_objects * t.app.object_words)
    (fun i ->
      let obj = i / t.app.object_words in
      let word = i mod t.app.object_words in
      read_state t ~obj ~word)
