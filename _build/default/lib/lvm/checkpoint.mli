(** Checkpointing, rollback and CULT over logged segments.

    The simulation pattern of Section 2.4: a working segment is logged and
    has a checkpoint segment as its deferred-copy source. Rolling back
    means [reset_deferred_copy] followed by re-applying logged updates up
    to the target point; advancing the checkpoint means applying logged
    updates older than a cutoff to the checkpoint segment and truncating
    the log — checkpoint update and log truncation, CULT. *)

type kernel = Lvm_vm.Kernel.t
type segment = Lvm_vm.Segment.t

val apply_record :
  kernel -> target:segment -> off:int -> Lvm_machine.Log_record.t -> unit
(** Write the record's value at byte offset [off] of [target], charged as
    an ordinary cached (unlogged) write. *)

val roll_forward :
  kernel -> log:segment -> from:int ->
  apply:(off:int -> Lvm_machine.Log_record.t -> [ `Continue | `Stop ]) -> int
(** Scan records from byte offset [from], charging timed record reads, and
    hand each to [apply] until it answers [`Stop] or the log ends. Returns
    the byte offset of the first unconsumed record (the [`Stop] record is
    not consumed). *)

val rollback :
  kernel -> space:Lvm_vm.Address_space.t -> working:segment ->
  working_region:Lvm_vm.Region.t -> base:int -> log:segment ->
  upto:(Lvm_machine.Log_record.t -> bool) -> unit
(** Roll the working segment back: disable the region's logging, reset the
    deferred copy over the region's range, re-apply logged updates while
    [upto record] holds, truncate the abandoned log suffix, re-enable
    logging. [base] is the region's bound address in [space]. *)

val cult :
  kernel -> working:segment -> checkpoint:segment -> log:segment ->
  upto:(Lvm_machine.Log_record.t -> bool) -> int
(** Checkpoint update and log truncation: apply each leading record
    satisfying [upto] to the checkpoint segment at the offset the record
    names in the working segment, then truncate the consumed prefix.
    Returns the number of records applied. *)

val cult_all : kernel -> working:segment -> checkpoint:segment ->
  log:segment -> int
(** CULT with no cutoff: fold the entire log into the checkpoint. *)
