lib/lvm/log_reader.mli: Lvm_machine Lvm_vm
