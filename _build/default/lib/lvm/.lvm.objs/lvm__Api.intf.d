lib/lvm/api.mli: Lvm_machine Lvm_vm
