lib/lvm/arena.mli: Lvm_vm
