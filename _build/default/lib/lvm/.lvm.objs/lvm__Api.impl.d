lib/lvm/api.ml: Address_space Kernel Lvm_machine Lvm_vm Region Segment
