lib/lvm/log_reader.ml: Addr Bytes Int32 Kernel List Log_record Logger Lvm_machine Lvm_vm Machine Region Segment
