lib/lvm/checkpoint.mli: Lvm_machine Lvm_vm
