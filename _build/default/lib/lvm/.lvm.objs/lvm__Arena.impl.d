lib/lvm/arena.ml: Addr Kernel Lvm_machine Lvm_vm Region Segment
