lib/lvm/checkpoint.ml: Kernel Log_reader Log_record Lvm_machine Lvm_vm Machine Region Segment
