(** Object placement in logged and unlogged regions (Section 2.7).

    LVM attaches logging to memory regions, so "a given data type can be
    instantiated in both logged and unlogged memory regions" — the paper
    suggests an overloaded [new] operator choosing the region per
    instance. This module is that allocator: two bump arenas, one over a
    logged region and one over an unlogged region, with allocation
    returning the object's virtual address. Allocate rollback-worthy or
    persistent objects in the logged arena and scratch state in the
    unlogged one; only the former generate log records. *)

type t

val create :
  ?logged_bytes:int -> ?unlogged_bytes:int -> Lvm_vm.Kernel.t ->
  Lvm_vm.Address_space.t -> t
(** Arenas default to 16 pages each; the logged arena's log segment is
    created automatically (16 pages, extendable via {!log}). *)

val log : t -> Lvm_vm.Segment.t
(** The logged arena's log segment. *)

val logged_region : t -> Lvm_vm.Region.t
val unlogged_region : t -> Lvm_vm.Region.t

exception Arena_full

val alloc : t -> logged:bool -> words:int -> int
(** Allocate a word-aligned object, returning its virtual address.
    @raise Arena_full when the chosen arena is exhausted. *)

val allocated_words : t -> logged:bool -> int

val reset : t -> logged:bool -> unit
(** Drop every object in the arena (bump allocators free in bulk). The
    logged arena's log is not touched — records describe history, and
    truncation is the client's policy. *)

val is_logged_addr : t -> int -> bool
(** Whether a virtual address lies in the logged arena — the audit-style
    placement check. *)
