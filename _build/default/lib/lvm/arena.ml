open Lvm_machine
open Lvm_vm

exception Arena_full

type side = {
  region : Region.t;
  base : int;
  bytes : int;
  mutable next : int; (* bump pointer, bytes from base *)
}

type t = {
  logged : side;
  unlogged : side;
  ls : Segment.t;
}

let make_side k space ~bytes ~log =
  let seg = Kernel.create_segment k ~size:bytes in
  let region = Kernel.create_region k seg in
  (match log with
  | Some ls -> Kernel.set_region_log k region (Some ls)
  | None -> ());
  let base = Kernel.bind k space region in
  { region; base; bytes = Segment.size seg; next = 0 }

let create ?(logged_bytes = 16 * Addr.page_size)
    ?(unlogged_bytes = 16 * Addr.page_size) k space =
  let ls = Kernel.create_log_segment k ~size:(16 * Addr.page_size) in
  {
    logged = make_side k space ~bytes:logged_bytes ~log:(Some ls);
    unlogged = make_side k space ~bytes:unlogged_bytes ~log:None;
    ls;
  }

let log t = t.ls
let logged_region t = t.logged.region
let unlogged_region t = t.unlogged.region
let side t ~logged = if logged then t.logged else t.unlogged

let alloc t ~logged ~words =
  if words <= 0 then invalid_arg "Arena.alloc: words must be positive";
  let s = side t ~logged in
  let bytes = words * Addr.word_size in
  if s.next + bytes > s.bytes then raise Arena_full;
  let addr = s.base + s.next in
  s.next <- s.next + bytes;
  addr

let allocated_words t ~logged = (side t ~logged).next / Addr.word_size
let reset t ~logged = (side t ~logged).next <- 0

let is_logged_addr t addr =
  addr >= t.logged.base && addr < t.logged.base + t.logged.bytes
