(** The logged-virtual-memory application program interface.

    This is the OCaml rendering of the paper's C++ interface (Table 1).
    The example from Section 2.2, creating a logged region:

    {[
      let k = Api.boot () in
      let space = Api.address_space k in
      let seg_a = Api.std_segment k ~size in        (* new StdSegment(size) *)
      let reg_r = Api.std_region k seg_a in         (* new StdRegion(seg_a) *)
      let ls = Api.log_segment k in                 (* new LogSegment() *)
      Api.log k reg_r ls;                           (* reg_r->log(ls) *)
      let base = Api.bind k space reg_r in          (* reg_r->bind(as) *)
      Api.write_word k space (base + 16) 42         (* logged automatically *)
    ]} *)

type kernel = Lvm_vm.Kernel.t
type segment = Lvm_vm.Segment.t
type region = Lvm_vm.Region.t
type address_space = Lvm_vm.Address_space.t

val boot :
  ?hw:Lvm_machine.Logger.hw -> ?frames:int -> ?log_entries:int -> unit ->
  kernel
(** Bring up a machine and its VM kernel. [hw] selects the prototype bus
    logger (default) or the on-chip design of Section 4.6. *)

val address_space : kernel -> address_space
(** Create an address space ([thisProcess()->addressSpace()] analogue). *)

(** {1 Standard virtual memory functions (Table 1, part 1)} *)

val std_segment :
  ?manager:(segment -> int -> unit) -> kernel -> size:int -> segment
(** [new StdSegment(size)]; [manager] is the user-level page-fill hook
    (the SegmentMan argument). *)

val std_region : ?seg_offset:int -> ?size:int -> kernel -> segment -> region
(** [new StdRegion(segment)]. *)

val bind : kernel -> address_space -> ?vaddr:int -> region -> int
(** [Region::bind(as, virtAddr)], returning the bound base address. *)

(** {1 Extensions for logging (Table 1, part 2)} *)

val log_segment :
  ?mode:Lvm_machine.Logger.mode -> ?size:int -> kernel -> segment
(** [new LogSegment()]. Initial capacity defaults to 16 pages; extend in
    advance of the logger reaching the end with {!extend_log}. *)

val log : kernel -> region -> segment -> unit
(** [Region::log(ls)]: log records for all writes to the region appear in
    [ls]. *)

val unlog : kernel -> region -> unit
val set_logging : kernel -> region -> bool -> unit
val extend_log : kernel -> segment -> pages:int -> unit
val sync_log : kernel -> segment -> unit

(** {1 Extensions for deferred copy (Table 1, part 3)} *)

val source_segment : ?offset:int -> kernel -> dst:segment -> src:segment ->
  unit
(** [Segment::sourceSegment(source, offset)]. *)

val reset_deferred_copy : kernel -> address_space -> start:int -> len:int ->
  unit
(** [AddressSpace::resetDeferredCopy(start, end)]. *)

(** {1 Access} *)

val read_word : kernel -> address_space -> int -> int
val write_word : kernel -> address_space -> int -> int -> unit
val read : kernel -> address_space -> vaddr:int -> size:int -> int
val write : kernel -> address_space -> vaddr:int -> size:int -> int -> unit
val compute : kernel -> int -> unit
val time : kernel -> int
