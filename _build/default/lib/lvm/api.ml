open Lvm_vm

type kernel = Kernel.t
type segment = Segment.t
type region = Region.t
type address_space = Address_space.t

let boot ?hw ?frames ?log_entries () = Kernel.create ?hw ?frames ?log_entries ()
let address_space k = Kernel.create_space k
let std_segment ?manager k ~size = Kernel.create_segment ?manager k ~size
let std_region ?seg_offset ?size k segment =
  Kernel.create_region ?seg_offset ?size k segment

let bind k space ?vaddr region = Kernel.bind k space ?vaddr region

let log_segment ?mode ?(size = 16 * Lvm_machine.Addr.page_size) k =
  Kernel.create_log_segment ?mode k ~size

let log k region ls = Kernel.set_region_log k region (Some ls)
let unlog k region = Kernel.set_region_log k region None
let set_logging k region enabled = Kernel.set_logging_enabled k region enabled
let extend_log k ls ~pages = Kernel.extend_log k ls ~pages
let sync_log k ls = Kernel.sync_log k ls

let source_segment ?(offset = 0) k ~dst ~src =
  Kernel.declare_source k ~dst ~src ~offset

let reset_deferred_copy k space ~start ~len =
  Kernel.reset_deferred_copy k space ~start ~len

let read_word k space vaddr = Kernel.read_word k space vaddr
let write_word k space vaddr v = Kernel.write_word k space vaddr v
let read k space ~vaddr ~size = Kernel.read k space ~vaddr ~size
let write k space ~vaddr ~size v = Kernel.write k space ~vaddr ~size v
let compute k c = Kernel.compute k c
let time k = Kernel.time k
