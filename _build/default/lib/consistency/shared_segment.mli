(** Update propagation for write-shared memory (Section 2.6).

    A producer updates a shared segment inside acquire/release sections; on
    release the updates must be sent to a consumer replica. Two protocols
    are implemented:

    - [Twin_diff] — the Munin mechanism: pages are write-protected on
      acquire; the first write to a page faults and makes a twin copy; on
      release each twinned page is compared word by word against its twin
      and the differences are transmitted.
    - [Log_based] — log-based consistency: the producer's region is
      logged, so the updates are already identified; release just streams
      the log records to the consumer and truncates.
    - [Snooped] — log-based coherence in hardware: a second snoop on the
      bus watches the logging traffic and updates the replica in place,
      so consistency costs the producer nothing beyond logging itself.

    Transmission is modelled as a per-message overhead plus a per-word
    wire cost charged to the producer's processor. The consumer replica is
    updated in place so tests can check both protocols produce identical
    replicas; the interesting outputs are the release-time cycles and the
    words transmitted. *)

type protocol =
  | Twin_diff
  | Log_based
  | Snooped
      (** The hardware-coherence variant of Section 2.6: a consistency
          snoop monitors the logging bus traffic and applies each record
          to the replica as it passes — zero added cost on the producer
          and nothing left to do at release. *)

type t

type release_stats = {
  words_sent : int;
  messages : int;
  release_cycles : int;  (** Producer cycles spent in this release. *)
}

val create :
  Lvm_vm.Kernel.t -> Lvm_vm.Address_space.t -> size:int -> protocol -> t

val protocol : t -> protocol

val acquire : t -> unit
(** Begin a write section (re-protects pages under [Twin_diff]). *)

val write_word : t -> off:int -> int -> unit
(** Producer store inside the section. *)

val read_word : t -> off:int -> int
(** Producer-side read. *)

val stream : t -> release_stats
(** Propagate the updates logged so far {e without} ending the section
    (Section 2.6: logging "facilitates streaming the updates to the
    consumers so that the time for processing on lock release ... is
    reduced" to little more than synchronization). Only meaningful under
    [Log_based]; twin/diff cannot stream — differences are only known at
    release — so this returns empty stats there. *)

val release : t -> release_stats
(** Propagate the section's remaining updates to the consumer replica. *)

val consumer_word : t -> off:int -> int
(** Consumer replica contents (untimed). *)

val replica_consistent : t -> bool
(** Whether the consumer replica equals the producer segment (valid after
    a release with no further writes). *)
