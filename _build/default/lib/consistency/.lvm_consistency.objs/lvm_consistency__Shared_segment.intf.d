lib/consistency/shared_segment.mli: Lvm_vm
