lib/consistency/shared_segment.ml: Addr Address_space Kernel List Log_record Logger Lvm Lvm_machine Lvm_vm Machine Option Region Segment
