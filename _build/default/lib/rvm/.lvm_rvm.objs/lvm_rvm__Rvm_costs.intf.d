lib/rvm/rvm_costs.mli:
