lib/rvm/rvm_costs.ml:
