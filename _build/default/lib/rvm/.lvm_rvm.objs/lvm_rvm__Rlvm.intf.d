lib/rvm/rlvm.mli: Lvm_vm Ramdisk
