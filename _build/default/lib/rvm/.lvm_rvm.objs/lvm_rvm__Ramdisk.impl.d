lib/rvm/ramdisk.ml: Bytes Kernel List Lvm_vm Rvm_costs
