lib/rvm/rvm.ml: Address_space Bytes Char Kernel List Lvm_vm Ramdisk Rvm_costs Segment
