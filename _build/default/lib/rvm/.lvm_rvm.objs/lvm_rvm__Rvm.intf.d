lib/rvm/rvm.mli: Lvm_vm Ramdisk
