lib/rvm/rlvm.ml: Addr Address_space Bytes Char Int32 Kernel Log_record Lvm Lvm_machine Lvm_vm Ramdisk Region Rvm_costs Segment
