lib/rvm/ramdisk.mli: Bytes Lvm_vm
