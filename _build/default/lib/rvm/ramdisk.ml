open Lvm_vm

type entry =
  | Data of { txn : int; off : int; bytes : Bytes.t }
  | Commit of { txn : int }

type t = {
  k : Kernel.t;
  image : Bytes.t;
  mutable wal : entry list; (* newest first *)
  mutable wal_bytes : int;
}

let create k ~size =
  if size <= 0 then invalid_arg "Ramdisk.create: size must be positive";
  { k; image = Bytes.make size '\000'; wal = []; wal_bytes = 0 }

let size t = Bytes.length t.image

let image_read t ~off ~len =
  if off < 0 || off + len > size t then invalid_arg "Ramdisk.image_read";
  Bytes.sub t.image off len

let words bytes = (bytes + 3) / 4

let entry_bytes = function
  | Data { bytes; _ } -> Bytes.length bytes + 12
  | Commit _ -> 8

let wal_append t entry =
  (match entry with
  | Data { off; bytes; _ } ->
    if off < 0 || off + Bytes.length bytes > size t then
      invalid_arg "Ramdisk.wal_append: entry outside image"
  | Commit _ -> ());
  let len = entry_bytes entry in
  Kernel.compute t.k (Rvm_costs.disk_op_overhead
                      + (words len * Rvm_costs.disk_per_word));
  t.wal <- entry :: t.wal;
  t.wal_bytes <- t.wal_bytes + len

let wal_force t = Kernel.compute t.k Rvm_costs.commit_force
let wal_bytes t = t.wal_bytes
let entry_count t = List.length t.wal

let should_truncate t = t.wal_bytes > Rvm_costs.truncate_threshold_bytes

let committed_txns wal =
  List.filter_map (function Commit { txn } -> Some txn | Data _ -> None) wal

let apply_committed image wal =
  (* [wal] is newest-first; apply in append order. *)
  let committed = committed_txns wal in
  List.iter
    (function
      | Data { txn; off; bytes } when List.mem txn committed ->
        Bytes.blit bytes 0 image off (Bytes.length bytes)
      | Data _ | Commit _ -> ())
    (List.rev wal)

let truncate t =
  let applied_words =
    List.fold_left (fun acc e -> acc + words (entry_bytes e)) 0 t.wal
  in
  Kernel.compute t.k (Rvm_costs.truncate_base
                      + (applied_words * Rvm_costs.truncate_per_word));
  let committed = committed_txns t.wal in
  let uncommitted =
    List.filter
      (function Data { txn; _ } -> not (List.mem txn committed)
              | Commit _ -> false)
      t.wal
  in
  apply_committed t.image t.wal;
  t.wal <- uncommitted;
  t.wal_bytes <- List.fold_left (fun a e -> a + entry_bytes e) 0 uncommitted

let recovered_image t =
  let image = Bytes.copy t.image in
  apply_committed image t.wal;
  image
