(** Cost constants for the recoverable-memory implementations.

    The paper measures Coda RVM on the same 25 MHz prototype (Table 3): a
    single recoverable write costs 3515 cycles in RVM and about 16 cycles
    in RLVM, and TPC-A over a RAM disk runs at 418 vs 552 transactions per
    second. Only about 25% of RVM's CPU time is inside the transaction;
    the rest is commit and log truncation, which LVM does not reduce.

    The constants below charge RVM's bookkeeping (set_range hashing,
    allocation, old-value copies, redo-record construction) and the shared
    commit/truncation machinery so that those four published numbers are
    reproduced by the machine's cycle accounting. *)

val set_range_overhead : int
(** CPU cycles of [set_range] bookkeeping before any copying: range-table
    lookup and insertion, allocation of the undo node. *)

val undo_copy_per_word : int
(** Cycles per word to save the old value for abort. *)

val redo_record_overhead : int
(** Cycles to construct the in-memory redo record for one range at write
    time (the "adding a record of the write to the log" part of the
    single-write cost). *)

val redo_copy_per_word : int
(** Cycles per word to capture new values into the redo record. *)

val rvm_write_overhead : int
(** Library-call overhead of an RVM recoverable store beyond the memory
    write itself. *)

val rvm_commit_per_range : int
(** Commit-time cost per declared range: walking the range table and
    marshaling the redo record (RVM only; RLVM has no range table). *)

val rlvm_write_overhead : int
(** Library-call overhead of an RLVM recoverable store: a bounds check and
    the store; the logging itself is free (Section 2.5). *)

val disk_op_overhead : int
(** RAM-disk driver overhead per write-ahead-log append. *)

val disk_per_word : int
(** Cycles per word transferred to the RAM disk. *)

val commit_force : int
(** Fixed cost of forcing the commit record: writing the commit entry,
    synchronizing the RAM-disk log, transaction bookkeeping. *)

val truncate_threshold_bytes : int
(** WAL size beyond which the library truncates (applies the log to the
    disk image). *)

val truncate_base : int
(** Fixed cost of one truncation pass. *)

val truncate_per_word : int
(** Cycles per WAL word applied to the image during truncation. *)
