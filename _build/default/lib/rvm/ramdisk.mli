(** RAM-disk backing store for recoverable memory.

    Holds the persistent image of a recoverable segment plus a write-ahead
    log of redo records. The TPC-A measurements in the paper use a RAM
    disk to hold the log (Table 3), so "disk" operations here are charged
    as driver overhead plus per-word memory copies rather than I/O
    latencies.

    Crash semantics for testing: {!crash} discards nothing here — the RAM
    disk {e is} the durable store — while the in-memory recoverable
    segment is considered lost; {!recovered_image} reconstructs the
    durable state as of the last committed transaction. *)

type t

type entry =
  | Data of { txn : int; off : int; bytes : Bytes.t }
      (** Redo record: new value of [bytes] at image offset [off]. *)
  | Commit of { txn : int }

val create : Lvm_vm.Kernel.t -> size:int -> t
(** An all-zero image of [size] bytes. *)

val size : t -> int

val image_read : t -> off:int -> len:int -> Bytes.t
(** Untimed image read (used at mapping and recovery time). *)

val wal_append : t -> entry -> unit
(** Append a redo or commit entry, charging driver overhead and the copy. *)

val wal_force : t -> unit
(** Force the log: the fixed commit-synchronization cost. *)

val wal_bytes : t -> int

val should_truncate : t -> bool
(** The WAL has grown past the truncation threshold. *)

val truncate : t -> unit
(** Apply all committed entries to the image and clear the log, charging
    truncation costs. Uncommitted entries are preserved (there is at most
    one open transaction). *)

val recovered_image : t -> Bytes.t
(** The image with every {e committed} WAL entry applied — what recovery
    after a crash reconstructs. Untimed (recovery time is not part of any
    reproduced measurement). *)

val entry_count : t -> int
