type t = {
  branches : int;
  tellers : int;
  accounts : int;
  history : int;
}

let record_bytes = 16

let layout ~branches ~tellers ~accounts ~history =
  if branches <= 0 || tellers <= 0 || accounts <= 0 || history <= 0 then
    invalid_arg "Bank.layout: all counts must be positive";
  { branches; tellers; accounts; history }

let segment_bytes t =
  (t.branches + t.tellers + t.accounts + t.history) * record_bytes

let branches t = t.branches
let tellers t = t.tellers
let accounts t = t.accounts
let branch_off t i = (i mod t.branches) * record_bytes
let teller_off t i = (t.branches + (i mod t.tellers)) * record_bytes

let account_off t i =
  (t.branches + t.tellers + (i mod t.accounts)) * record_bytes

let history_off t i =
  (t.branches + t.tellers + t.accounts + (i mod t.history)) * record_bytes

(* balance is the second word of a record *)
let branch_balance_off t i = branch_off t i + 4
let teller_balance_off t i = teller_off t i + 4
let account_balance_off t i = account_off t i + 4
let teller_branch t i = i mod t.tellers mod t.branches
