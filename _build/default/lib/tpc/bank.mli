(** TPC-A bank schema layout inside a recoverable segment.

    The classic debit-credit schema: branches, tellers, accounts — each a
    four-word record whose second word is the balance — plus a ring of
    four-word history entries. All offsets are byte offsets into the
    recoverable segment. *)

type t

val record_bytes : int
(** Bytes per branch/teller/account/history record (16). *)

val layout : branches:int -> tellers:int -> accounts:int -> history:int -> t
(** History is the entry capacity of the ring. *)

val segment_bytes : t -> int
val branches : t -> int
val tellers : t -> int
val accounts : t -> int

val branch_balance_off : t -> int -> int
val teller_balance_off : t -> int -> int
val account_balance_off : t -> int -> int

val history_off : t -> int -> int
(** Base offset of history slot [i mod capacity]. *)

val teller_branch : t -> int -> int
(** The branch a teller belongs to (tellers are striped over branches). *)
