lib/tpc/tpca.mli: Bank Lvm_rvm Lvm_vm
