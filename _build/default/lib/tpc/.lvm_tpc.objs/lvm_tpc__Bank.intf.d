lib/tpc/bank.mli:
