lib/tpc/tpca.ml: Bank Kernel Lvm_machine Lvm_rvm Lvm_vm Random
