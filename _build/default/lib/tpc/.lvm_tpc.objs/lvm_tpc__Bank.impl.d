lib/tpc/bank.ml:
