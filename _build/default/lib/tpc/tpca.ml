open Lvm_vm

type store = {
  begin_txn : unit -> unit;
  annotate : off:int -> len:int -> unit;
  read_word : off:int -> int;
  write_word : off:int -> int -> unit;
  commit : unit -> unit;
  kernel : Kernel.t;
}

let rvm_store r =
  {
    begin_txn = (fun () -> Lvm_rvm.Rvm.begin_txn r);
    annotate = (fun ~off ~len -> Lvm_rvm.Rvm.set_range r ~off ~len);
    read_word = (fun ~off -> Lvm_rvm.Rvm.read_word r ~off);
    write_word = (fun ~off v -> Lvm_rvm.Rvm.write_word r ~off v);
    commit = (fun () -> Lvm_rvm.Rvm.commit r);
    kernel = Lvm_rvm.Rvm.kernel r;
  }

let rlvm_store r =
  {
    begin_txn = (fun () -> Lvm_rvm.Rlvm.begin_txn r);
    annotate = (fun ~off:_ ~len:_ -> ());
    read_word = (fun ~off -> Lvm_rvm.Rlvm.read_word r ~off);
    write_word = (fun ~off v -> Lvm_rvm.Rlvm.write_word r ~off v);
    commit = (fun () -> Lvm_rvm.Rlvm.commit r);
    kernel = Lvm_rvm.Rlvm.kernel r;
  }

type result = {
  txns : int;
  cycles : int;
  tps : float;
  cycles_per_txn : float;
}

(* sign-extend a 32-bit stored balance *)
let signed v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let setup store bank =
  store.begin_txn ();
  let zero off =
    store.annotate ~off ~len:4;
    store.write_word ~off 0
  in
  for b = 0 to Bank.branches bank - 1 do
    zero (Bank.branch_balance_off bank b)
  done;
  for tl = 0 to Bank.tellers bank - 1 do
    zero (Bank.teller_balance_off bank tl)
  done;
  for a = 0 to Bank.accounts bank - 1 do
    zero (Bank.account_balance_off bank a)
  done;
  store.commit ()

(* One debit-credit transaction: the application-logic cycles (parsing the
   request, validation) are charged as compute. *)
let transaction store bank ~rng ~history_slot =
  let teller = Random.State.int rng (Bank.tellers bank) in
  let account = Random.State.int rng (Bank.accounts bank) in
  let branch = Bank.teller_branch bank teller in
  let delta = Random.State.int rng 1999 - 999 in
  store.begin_txn ();
  Kernel.compute store.kernel 300;
  let update off =
    let v = signed (store.read_word ~off) in
    store.annotate ~off ~len:4;
    store.write_word ~off (v + delta)
  in
  update (Bank.account_balance_off bank account);
  update (Bank.teller_balance_off bank teller);
  update (Bank.branch_balance_off bank branch);
  let h = Bank.history_off bank history_slot in
  store.annotate ~off:h ~len:Bank.record_bytes;
  store.write_word ~off:h account;
  store.write_word ~off:(h + 4) teller;
  store.write_word ~off:(h + 8) branch;
  store.write_word ~off:(h + 12) (delta land 0xFFFFFFFF);
  store.commit ()

let run ?(seed = 42) store bank ~txns =
  let rng = Random.State.make [| seed |] in
  let t0 = Kernel.time store.kernel in
  for i = 0 to txns - 1 do
    transaction store bank ~rng ~history_slot:i
  done;
  let cycles = Kernel.time store.kernel - t0 in
  let cycles_per_txn = float_of_int cycles /. float_of_int txns in
  {
    txns;
    cycles;
    tps = float_of_int Lvm_machine.Cycles.cpu_mhz *. 1e6 /. cycles_per_txn;
    cycles_per_txn;
  }

let sum store ~n ~off_of =
  let rec go acc i =
    if i = n then acc else go (acc + signed (store.read_word ~off:(off_of i))) (i + 1)
  in
  go 0 0

let total_balance store bank =
  sum store ~n:(Bank.accounts bank)
    ~off_of:(Bank.account_balance_off bank)

let balance_invariant store bank =
  let a = total_balance store bank in
  let t =
    sum store ~n:(Bank.tellers bank) ~off_of:(Bank.teller_balance_off bank)
  in
  let b =
    sum store ~n:(Bank.branches bank) ~off_of:(Bank.branch_balance_off bank)
  in
  a = t && t = b
