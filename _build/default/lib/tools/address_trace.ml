open Lvm_machine

type entry = { addr : int; size : int; timestamp : int }
type histogram = (int * int) list

let of_log k ls =
  List.filter_map
    (fun (r : Log_record.t) ->
      if r.Log_record.pre_image then None
      else
        Some
          { addr = r.Log_record.addr; size = r.Log_record.size;
            timestamp = r.Log_record.timestamp })
    (Lvm.Log_reader.to_list k ls)

let page_histogram k ls =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let page = Addr.page_number e.addr in
      Hashtbl.replace counts page
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts page)))
    (of_log k ls);
  Hashtbl.fold (fun page n acc -> (page, n) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let hottest_page k ls =
  match page_histogram k ls with [] -> None | h :: _ -> Some h

let write_rate k ls =
  match of_log k ls with
  | [] | [ _ ] -> None
  | first :: _ as entries ->
    let last = List.nth entries (List.length entries - 1) in
    let span = last.timestamp - first.timestamp in
    if span <= 0 then None
    else
      Some (float_of_int (List.length entries) *. 1000. /. float_of_int span)
