open Lvm_machine
open Lvm_vm

(* One write of the debuggee: the offset of its ordinary record in the
   log, plus the offset of its pre-image record when the hardware was
   recording old values (Section 4.6). *)
type write = { record_off : int; pre_image_off : int option }

type t = {
  k : Kernel.t;
  space : Address_space.t;
  working : Segment.t;
  region : Region.t;
  base : int;
  log : Segment.t;
  writes : write array;
  mutable position : int; (* writes applied *)
}

let index_writes k log =
  let pending_pre = ref None in
  let acc = ref [] in
  Lvm.Log_reader.iter k log ~f:(fun ~off r ->
      if r.Log_record.pre_image then pending_pre := Some off
      else begin
        acc := { record_off = off; pre_image_off = !pending_pre } :: !acc;
        pending_pre := None
      end);
  Array.of_list (List.rev !acc)

let create k ~space ~working ~region ~base ~log =
  Kernel.set_logging_enabled k region false;
  let writes = index_writes k log in
  { k; space; working; region; base; log; writes;
    position = Array.length writes }

let length t = Array.length t.writes
let position t = t.position

let locate_in_working t r =
  match Lvm.Log_reader.locate t.k r with
  | Some (seg, off) when Segment.id seg = Segment.id t.working -> Some off
  | Some _ | None -> None

let apply t ~record_off =
  let r = Lvm.Log_reader.read_at_timed t.k t.log ~off:record_off in
  match locate_in_working t r with
  | Some off -> Lvm.Checkpoint.apply_record t.k ~target:t.working ~off r
  | None -> ()

let replay t ~writes =
  Kernel.reset_deferred_copy t.k t.space ~start:t.base
    ~len:(Region.size t.region);
  for i = 0 to writes - 1 do
    apply t ~record_off:t.writes.(i).record_off
  done

let seek t n =
  if n < 0 || n > length t then invalid_arg "Reverse_exec.seek: out of range";
  if n <> t.position then begin
    (* seeking forward needs no reset; backward replays a shorter prefix
       unless every step has a pre-image to undo with *)
    if n > t.position then
      for i = t.position to n - 1 do
        apply t ~record_off:t.writes.(i).record_off
      done
    else begin
      let undoable =
        let rec check i =
          i < n || (t.writes.(i).pre_image_off <> None && check (i - 1))
        in
        check (t.position - 1)
      in
      if undoable then
        (* constant work per step: apply the recorded old values in
           reverse order (Section 4.6's reverse-execution payoff) *)
        for i = t.position - 1 downto n do
          match t.writes.(i).pre_image_off with
          | Some off -> apply t ~record_off:off
          | None -> assert false
        done
      else replay t ~writes:n
    end;
    t.position <- n
  end

let step_back t =
  if t.position = 0 then false
  else begin
    seek t (t.position - 1);
    true
  end

let step_forward t =
  if t.position = length t then false
  else begin
    seek t (t.position + 1);
    true
  end

let detach t =
  seek t (length t);
  Kernel.set_logging_enabled t.k t.region true

let record_at t i =
  if i < 0 || i >= length t then invalid_arg "Reverse_exec.record_at";
  Lvm.Log_reader.read_at t.k t.log ~off:t.writes.(i).record_off
