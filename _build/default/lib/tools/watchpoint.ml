open Lvm_vm

type hit = {
  record_index : int;
  off : int;
  value : int;
  size : int;
  timestamp : int;
}

let overlaps ~off ~len ~roff ~rsize = roff < off + len && off < roff + rsize

let hits k ~log ~watched ~off ~len =
  let acc =
    Lvm.Log_reader.fold k log ~init:[] ~f:(fun acc ~off:rec_off r ->
        match
          if r.Lvm_machine.Log_record.pre_image then None
          else Lvm.Log_reader.locate k r
        with
        | Some (seg, roff)
          when Segment.id seg = Segment.id watched
               && overlaps ~off ~len ~roff ~rsize:r.Lvm_machine.Log_record.size
          ->
          {
            record_index = rec_off / Lvm_machine.Log_record.bytes;
            off = roff;
            value = r.Lvm_machine.Log_record.value;
            size = r.Lvm_machine.Log_record.size;
            timestamp = r.Lvm_machine.Log_record.timestamp;
          }
          :: acc
        | Some _ | None -> acc)
  in
  List.rev acc

let last_writer k ~log ~watched ~off =
  match List.rev (hits k ~log ~watched ~off ~len:4) with
  | [] -> None
  | h :: _ -> Some h

let first_corruption k ~log ~watched ~off ~expected =
  List.find_opt
    (fun h -> h.off = off && h.value <> expected)
    (hits k ~log ~watched ~off ~len:4)
