open Lvm_vm

type snapshot = {
  seg : Segment.t;
  image : Bytes.t; (* contents at snapshot time *)
  log_start : int; (* log record byte offset at snapshot time *)
}

let read_seg_byte k seg off = Kernel.seg_read_raw k seg ~off ~size:1

let snapshot k seg =
  let n = Segment.size seg in
  { seg;
    image = Bytes.init n (fun off -> Char.chr (read_seg_byte k seg off));
    log_start = 0 }

(* Replay every logged write since the snapshot onto a copy of the
   snapshot image; any word where the replayed image disagrees with the
   segment's current contents was modified by an unlogged write. *)
let unlogged_changes k ~log snap =
  let replayed = Bytes.copy snap.image in
  Lvm.Log_reader.iter k log ~f:(fun ~off:rec_off r ->
      if rec_off >= snap.log_start
         && not r.Lvm_machine.Log_record.pre_image
      then
        match Lvm.Log_reader.locate k r with
        | Some (seg, off) when Segment.id seg = Segment.id snap.seg -> (
          let v = r.Lvm_machine.Log_record.value in
          match r.Lvm_machine.Log_record.size with
          | 1 -> Bytes.set replayed off (Char.chr (v land 0xFF))
          | 2 -> Bytes.set_uint16_le replayed off (v land 0xFFFF)
          | _ -> Bytes.set_int32_le replayed off (Int32.of_int v))
        | Some _ | None -> ());
  let bad = ref [] in
  let words = Bytes.length snap.image / 4 in
  for w = words - 1 downto 0 do
    let off = w * 4 in
    let current = Kernel.seg_read_raw k snap.seg ~off ~size:4 in
    let expected =
      Int32.to_int (Bytes.get_int32_le replayed off) land 0xFFFFFFFF
    in
    if current <> expected then bad := off :: !bad
  done;
  !bad

let verify k ~log snap = unlogged_changes k ~log snap = []
