(** Data watchpoints over a log segment.

    The paper's debugger use case (Section 1): logging the writes of a
    program under test lets the debugger determine when data was
    erroneously overwritten, without any breakpointing overhead on the
    program itself — the log is scanned after the fact. *)

type hit = {
  record_index : int;  (** Position in the log (0-based record number). *)
  off : int;  (** Byte offset within the watched segment. *)
  value : int;
  size : int;
  timestamp : int;
}

val hits :
  Lvm_vm.Kernel.t -> log:Lvm_vm.Segment.t -> watched:Lvm_vm.Segment.t ->
  off:int -> len:int -> hit list
(** Every logged write that touched [watched[off, off+len)], oldest
    first. *)

val last_writer :
  Lvm_vm.Kernel.t -> log:Lvm_vm.Segment.t -> watched:Lvm_vm.Segment.t ->
  off:int -> hit option
(** The most recent write to the word at [off], i.e. "who overwrote
    this?". *)

val first_corruption :
  Lvm_vm.Kernel.t -> log:Lvm_vm.Segment.t -> watched:Lvm_vm.Segment.t ->
  off:int -> expected:int -> hit option
(** The first write to [off] whose value differs from [expected] — the
    canary-style query for finding when a location was clobbered. *)
