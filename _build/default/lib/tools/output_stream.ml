open Lvm_machine
open Lvm_vm

type kind = Indexed | Direct

type t = {
  k : Kernel.t;
  space : Address_space.t;
  kind : kind;
  seg : Segment.t;
  ls : Segment.t;
  base : int;
  size : int;
  mutable cursor : int; (* producer position, bytes *)
  mutable consumed : int; (* indexed mode: bytes already consumed *)
}

let create kind ?(log_pages = 16) k space ~size =
  let seg = Kernel.create_segment k ~size in
  let region = Kernel.create_region k seg in
  let mode, log_size =
    match kind with
    | Indexed -> (Logger.Indexed, log_pages * Addr.page_size)
    | Direct -> (Logger.Direct_mapped, Segment.size seg)
  in
  let ls = Kernel.create_log_segment ~mode k ~size:log_size in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k space region in
  { k; space; kind; seg; ls; base; size; cursor = 0; consumed = 0 }

let create_indexed k space ~size ~log_pages =
  create Indexed ~log_pages k space ~size

let create_direct k space ~size = create Direct k space ~size

let emit_at t ~off v =
  if off < 0 || off + 4 > t.size then invalid_arg "Output_stream.emit_at";
  Kernel.write_word t.k t.space (t.base + off) v

let emit t v =
  emit_at t ~off:t.cursor v;
  t.cursor <- (t.cursor + Addr.word_size) mod t.size

let consume t =
  if t.kind <> Indexed then
    invalid_arg "Output_stream.consume: indexed mode only";
  Kernel.sync_log t.k t.ls;
  let available = Segment.write_pos t.ls in
  let values = ref [] in
  let off = ref t.consumed in
  while !off + Addr.word_size <= available do
    let paddr = Kernel.paddr_of t.k t.ls ~off:!off in
    values :=
      Physmem.read_word (Machine.mem (Kernel.machine t.k)) paddr :: !values;
    off := !off + Addr.word_size
  done;
  t.consumed <- !off;
  List.rev !values

let mirror_word t ~off =
  if t.kind <> Direct then
    invalid_arg "Output_stream.mirror_word: direct-mapped mode only";
  Kernel.sync_log t.k t.ls;
  Kernel.seg_read_raw t.k t.ls ~off ~size:4
