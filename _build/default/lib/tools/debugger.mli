(** Dynamic attach/detach debugging (Sections 1 and 2.7).

    A separate program such as a debugger can dynamically modify the
    memory regions used by a program to cause them to log updates, with no
    change to the program binary, and later detach again. While attached,
    the write history of any location can be queried, canary corruption
    located, and the state updates of the debuggee monitored. *)

type t

val attach : ?log_pages:int -> Lvm_vm.Kernel.t -> Lvm_vm.Region.t -> t
(** Start logging an unlogged region. @raise Invalid_argument if the
    region already has a log. *)

val detach : t -> unit
(** Stop logging and drop the debugger's log segment association. *)

val region : t -> Lvm_vm.Region.t
val log : t -> Lvm_vm.Segment.t

val history : t -> off:int -> (int * int) list
(** [(timestamp, value)] writes to the watched word, oldest first. *)

val writes_observed : t -> int

val watch :
  t -> off:int -> len:int -> Watchpoint.hit list
(** All hits in a byte range of the debuggee's segment. *)

val find_corruption : t -> off:int -> expected:int -> Watchpoint.hit option
