(** Reverse execution for debugging (Section 1).

    "A program is allowed to run until it fails, and then backed up or
    reverse-executed until the problem is located." Given a checkpoint
    segment (the deferred-copy source of the debuggee's working segment)
    and the log of writes since that checkpoint, any intermediate state
    can be reconstructed: reset to the checkpoint and replay a prefix of
    the log, so stepping backwards is replaying one write fewer.

    When the on-chip logger was recording old values (Section 4.6's
    pre-image option, [Machine.create ~record_old_values:true]), backward
    steps instead apply the recorded pre-images in reverse — constant
    work per step, no reset or replay. Positions count {e writes}; the
    interleaved pre-image records are handled internally. *)

type t

val create :
  Lvm_vm.Kernel.t -> space:Lvm_vm.Address_space.t ->
  working:Lvm_vm.Segment.t -> region:Lvm_vm.Region.t -> base:int ->
  log:Lvm_vm.Segment.t -> t
(** Take control of a stopped debuggee whose [working] segment is logged
    to [log] and deferred-copied from its checkpoint. Indexes the log;
    position [n] below means "after the first [n] writes". *)

val length : t -> int
(** Number of writes captured at attach time. *)

val position : t -> int
(** Current replay position in writes; starts at [length] (the failure
    state). *)

val seek : t -> int -> unit
(** Materialize the state after exactly [n] writes. Seeking backwards
    applies pre-images in reverse when available, otherwise resets and
    replays the shorter prefix; writes are never re-logged because region
    logging is disabled while attached. *)

val step_back : t -> bool
(** [seek (position - 1)]; false at position 0. *)

val step_forward : t -> bool

val detach : t -> unit
(** Restore the failure state (position = length) and re-enable
    logging. *)

val record_at : t -> int -> Lvm_machine.Log_record.t
(** The [i]-th write's record (0-based), for inspecting what the next
    forward step would store. *)
