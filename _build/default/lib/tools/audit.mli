(** Audit code for object placement (Section 2.7).

    LVM asks the programmer to place each object in the right region
    rather than annotate every write; the paper notes that "misplacement
    of objects in regions can be detected by audit code in most cases".
    This module is that audit: snapshot a segment, run the program, and
    compare the segment's changes against the log — a change the log
    cannot explain is a write that bypassed logging (an object placed in
    an unlogged region, or a window where logging was disabled). *)

type snapshot

val snapshot : Lvm_vm.Kernel.t -> Lvm_vm.Segment.t -> snapshot
(** Capture the segment's current contents (untimed — the auditor runs
    out-of-band, like a debugger). *)

val unlogged_changes :
  Lvm_vm.Kernel.t -> log:Lvm_vm.Segment.t -> snapshot -> int list
(** Word offsets where the segment's current contents differ from the
    snapshot with every logged write since the snapshot replayed on top —
    i.e. modifications that escaped the log. Sorted ascending. *)

val verify : Lvm_vm.Kernel.t -> log:Lvm_vm.Segment.t -> snapshot -> bool
(** No unlogged changes. *)
