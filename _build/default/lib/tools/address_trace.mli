(** Address traces from logs (Section 1): "a detailed address trace of a
    program, which can be useful for detecting and isolating performance
    problems or as input to memory system simulators." *)

type entry = { addr : int; size : int; timestamp : int }

val of_log : Lvm_vm.Kernel.t -> Lvm_vm.Segment.t -> entry list
(** The write-address trace recorded in a log segment, oldest first. *)

type histogram = (int * int) list
(** [(page number, write count)] pairs, descending by count. *)

val page_histogram : Lvm_vm.Kernel.t -> Lvm_vm.Segment.t -> histogram

val hottest_page : Lvm_vm.Kernel.t -> Lvm_vm.Segment.t -> (int * int) option

val write_rate :
  Lvm_vm.Kernel.t -> Lvm_vm.Segment.t -> float option
(** Mean writes per 1000 timestamp ticks over the trace's span, or [None]
    for traces too short to have a span. *)
