open Lvm_vm

type t = {
  k : Kernel.t;
  region : Region.t;
  ls : Segment.t;
}

let attach ?(log_pages = 64) k region =
  if Region.log region <> None then
    invalid_arg "Debugger.attach: region is already logged";
  let ls =
    Kernel.create_log_segment k ~size:(log_pages * Lvm_machine.Addr.page_size)
  in
  Kernel.set_region_log k region (Some ls);
  { k; region; ls }

let detach t = Kernel.set_region_log t.k t.region None
let region t = t.region
let log t = t.ls

let watch t ~off ~len =
  Watchpoint.hits t.k ~log:t.ls ~watched:(Region.segment t.region) ~off ~len

let history t ~off =
  List.map
    (fun (h : Watchpoint.hit) -> (h.Watchpoint.timestamp, h.Watchpoint.value))
    (watch t ~off ~len:4)

let writes_observed t = Lvm.Log_reader.record_count t.k t.ls

let find_corruption t ~off ~expected =
  Watchpoint.first_corruption t.k ~log:t.ls
    ~watched:(Region.segment t.region) ~off ~expected
