open Lvm_vm

type summary = {
  records : int;
  distinct_locations : int;
  redundant : int;
  redundancy_ratio : float;
}

let counts k ~watched ~log =
  let table = Hashtbl.create 64 in
  let records = ref 0 in
  Lvm.Log_reader.iter k log ~f:(fun ~off:_ r ->
      if not r.Lvm_machine.Log_record.pre_image then
        match Lvm.Log_reader.locate k r with
        | Some (seg, off) when Segment.id seg = Segment.id watched ->
          incr records;
          Hashtbl.replace table off
            (1 + Option.value ~default:0 (Hashtbl.find_opt table off))
        | Some _ | None -> ());
  (table, !records)

let summarize k ~watched ~log =
  let table, records = counts k ~watched ~log in
  let distinct_locations = Hashtbl.length table in
  let redundant = records - distinct_locations in
  {
    records;
    distinct_locations;
    redundant;
    redundancy_ratio =
      (if records = 0 then 0. else float_of_int redundant /. float_of_int records);
  }

let top_rewritten ?(limit = 10) k ~watched ~log =
  let table, _ = counts k ~watched ~log in
  Hashtbl.fold (fun off n acc -> (off, n) :: acc) table []
  |> List.filter (fun (_, n) -> n > 1)
  |> List.sort (fun (o1, a) (o2, b) ->
         match compare b a with 0 -> compare o1 o2 | c -> c)
  |> List.filteri (fun i _ -> i < limit)
