lib/tools/reverse_exec.ml: Address_space Array Kernel List Log_record Lvm Lvm_machine Lvm_vm Region Segment
