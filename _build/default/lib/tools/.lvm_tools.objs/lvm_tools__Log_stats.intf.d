lib/tools/log_stats.mli: Lvm_vm
