lib/tools/output_stream.ml: Addr Address_space Kernel List Logger Lvm_machine Lvm_vm Machine Physmem Segment
