lib/tools/log_stats.ml: Hashtbl List Lvm Lvm_machine Lvm_vm Option Segment
