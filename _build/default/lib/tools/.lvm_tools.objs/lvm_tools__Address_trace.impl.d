lib/tools/address_trace.ml: Addr Hashtbl List Log_record Lvm Lvm_machine Option
