lib/tools/debugger.mli: Lvm_vm Watchpoint
