lib/tools/audit.ml: Bytes Char Int32 Kernel Lvm Lvm_machine Lvm_vm Segment
