lib/tools/reverse_exec.mli: Lvm_machine Lvm_vm
