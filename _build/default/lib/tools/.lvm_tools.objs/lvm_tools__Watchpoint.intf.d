lib/tools/watchpoint.mli: Lvm_vm
