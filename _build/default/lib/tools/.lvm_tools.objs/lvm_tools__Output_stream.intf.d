lib/tools/output_stream.mli: Lvm_vm
