lib/tools/address_trace.mli: Lvm_vm
