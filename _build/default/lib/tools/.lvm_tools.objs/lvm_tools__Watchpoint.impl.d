lib/tools/watchpoint.ml: List Lvm Lvm_machine Lvm_vm Segment
