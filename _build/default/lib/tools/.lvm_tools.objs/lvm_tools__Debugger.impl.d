lib/tools/debugger.ml: Kernel List Lvm Lvm_machine Lvm_vm Region Segment Watchpoint
