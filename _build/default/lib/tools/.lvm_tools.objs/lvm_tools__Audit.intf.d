lib/tools/audit.mli: Lvm_vm
