(** Log analysis for performance tuning (Section 2.7).

    LVM performance suffers when applications "repeatedly write the same
    location when only the last write is of interest"; the paper notes
    that "the logs provide the information required to identify and
    eliminate these redundant writes." This module is that analysis:
    quantify redundancy in a log and point at the worst offenders so
    rapidly-changing temporaries can be moved out of logged regions. *)

type summary = {
  records : int;  (** Ordinary write records (pre-images excluded). *)
  distinct_locations : int;
  redundant : int;  (** Writes that were later overwritten, i.e. only the
                        last write per location is of interest. *)
  redundancy_ratio : float;  (** [redundant / records], 0 for empty logs. *)
}

val summarize :
  Lvm_vm.Kernel.t -> watched:Lvm_vm.Segment.t -> log:Lvm_vm.Segment.t ->
  summary
(** Analyze the writes that landed in [watched]. *)

val top_rewritten :
  ?limit:int -> Lvm_vm.Kernel.t -> watched:Lvm_vm.Segment.t ->
  log:Lvm_vm.Segment.t -> (int * int) list
(** The most-overwritten byte offsets as [(offset, write count)],
    descending, at most [limit] (default 10) — candidates for moving into
    an unlogged region (e.g. an {!Lvm.Arena} scratch arena). *)
