type t = {
  buf : int array; (* ring of drain times *)
  capacity : int;
  mutable head : int; (* index of oldest entry *)
  mutable len : int;
  mutable last_drain : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Fifo.create: capacity must be positive";
  { buf = Array.make capacity 0; capacity; head = 0; len = 0; last_drain = 0 }

let capacity t = t.capacity

let drain_until t ~now =
  while t.len > 0 && t.buf.(t.head) <= now do
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1
  done

let occupancy t ~now =
  drain_until t ~now;
  t.len

let push t ~drain_time =
  if t.len >= t.capacity then invalid_arg "Fifo.push: overflow";
  t.buf.((t.head + t.len) mod t.capacity) <- drain_time;
  t.len <- t.len + 1;
  if drain_time > t.last_drain then t.last_drain <- drain_time

let last_drain_time t = t.last_drain
let head_drain_time t = if t.len = 0 then None else Some t.buf.(t.head)

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.last_drain <- 0
