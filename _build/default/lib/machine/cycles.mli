(** Cycle-cost model of the ParaDiGM prototype.

    All performance results in the paper are reported in 25 MHz CPU cycles
    (one cycle is 40 ns). The constants below reproduce Table 2 of the paper
    exactly and calibrate the secondary costs (fault handling, overload
    recovery, deferred-copy reset) so that the derived results land in the
    paper's bands: logger overload onset near one logged write per ~27
    compute cycles, [reset_deferred_copy] vs [bcopy] crossover near 2/3
    dirty, and an overload penalty above 30,000 cycles. *)

val cpu_mhz : int
(** CPU clock in MHz (25). *)

val timestamp_divider : int
(** The logger timestamps records with a 6.25 MHz counter, i.e. the CPU
    cycle count divided by this (4). *)

(** {1 Table 2: basic machine operations} *)

val word_write_through_total : int
(** Total CPU cycles for a word write in write-through mode (6). *)

val word_write_through_bus : int
(** Bus cycles occupied by a word write-through (5). *)

val cache_block_write_total : int
(** Total cycles to transfer a 16-byte first-level cache block over the
    bus (9). Used for write-backs and line fills. *)

val cache_block_write_bus : int
(** Bus cycles of a cache block transfer (8). *)

val log_record_dma_total : int
(** Total logger cycles to DMA one 16-byte log record to memory (18). *)

val log_record_dma_bus : int
(** Bus cycles of a log-record DMA (8). *)

(** {1 First-level cache} *)

val l1_hit : int
(** Cycles for a first-level cache hit (read or write-back-mode write). *)

val l1_fill_total : int
(** Total cycles to fill a first-level line from the second-level cache;
    same bus transaction as a block write. *)

val l1_fill_bus : int

(** {1 Logger internals} *)

val logger_lookup : int
(** Logger cycles to look up the page mapping table and log table and to
    form a 16-byte record, before the DMA proper. Together with
    {!log_record_dma_total} this sets the logger's per-record service time
    and hence the overload onset (Section 4.5.3). *)

val wt_logger_interference : int
(** Extra CPU cycles a logged write pays when the logger is still
    draining earlier records: bus-arbitration interference that makes
    bursts of logged writes slower per write (Figure 10). *)

val logger_fifo_capacity : int
(** Entries held by the logger FIFOs (819). *)

val logger_fifo_threshold : int
(** Occupancy at which the logger raises the overload interrupt (512). *)

val overload_suspend : int
(** Kernel cycles to field the overload interrupt and suspend every process
    that might be generating log data, plus the later resume. The total
    overload penalty is this plus the FIFO drain time; the paper reports
    more than 30,000 cycles per overload event (Section 4.5.3). *)

val logging_fault : int
(** Kernel cycles to service a logging fault (page-mapping-table reload or
    log-table extension, Section 3.2). *)

val page_fault : int
(** Kernel cycles to service an ordinary page fault, excluding any I/O. *)

val context_switch : int
(** Kernel cycles to switch address spaces, including unloading logger
    table state belonging to the outgoing process (Section 3.1.2). *)

val page_in : int
(** Kernel cycles to fill a frame from a segment's backing store (paging
    I/O on a RAM-disk-class device, excluding rotational latency). *)

val page_out : int
(** Kernel cycles to write a frame back to the backing store. *)

val page_remap : int
(** Kernel cycles to re-point one page mapping (the Li/Appel restore
    primitive: reset the mapping to the checkpoint copy, Section 5.1). *)

val write_protect_fault : int
(** Kernel cycles for a write-protection fault, used by the Li/Appel
    page-protect checkpointing baseline (Section 5.1: over 3,000 cycles
    including completing the write and logging the data). *)

(** {1 Deferred copy (Section 3.3)} *)

val dc_reset_per_page : int
(** Cycles per page of [reset_deferred_copy] spent checking the per-page
    dirty bit and re-pointing the software mapping. *)

val dc_reset_per_dirty_line : int
(** Cycles per second-level cache line of a dirty page: reset the line's
    source address and invalidate it if modified. 256 lines per page. *)

val bcopy_per_word : int
(** Amortized CPU cycles per word of [bcopy] between two segments resident
    in the second-level cache (read miss stream plus write stream). *)

val bcopy_base : int
(** Fixed per-call overhead of [bcopy]. *)
