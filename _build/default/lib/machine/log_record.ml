type t = {
  addr : int;
  value : int;
  size : int;
  timestamp : int;
  pre_image : bool;
}

let bytes = 16
let pre_image_flag = 0x100

let encode_bytes buf ~pos t =
  Bytes.set_int32_le buf pos (Int32.of_int (t.addr land 0xFFFFFFFF));
  Bytes.set_int32_le buf (pos + 4) (Int32.of_int (t.value land 0xFFFFFFFF));
  Bytes.set_int32_le buf (pos + 8)
    (Int32.of_int
       ((t.size land 0xFF) lor (if t.pre_image then pre_image_flag else 0)));
  Bytes.set_int32_le buf (pos + 12) (Int32.of_int (t.timestamp land 0xFFFFFFFF))

let decode_bytes buf ~pos =
  let word off = Int32.to_int (Bytes.get_int32_le buf (pos + off)) land 0xFFFFFFFF in
  let size_field = word 8 in
  { addr = word 0; value = word 4; size = size_field land 0xFF;
    timestamp = word 12; pre_image = size_field land pre_image_flag <> 0 }

let scratch = Bytes.create bytes

let encode_to mem ~paddr t =
  encode_bytes scratch ~pos:0 t;
  Physmem.blit_of_bytes mem scratch ~pos:0 ~dst:paddr ~len:bytes

let decode_from mem ~paddr =
  Physmem.blit_to_bytes mem ~src:paddr scratch ~pos:0 ~len:bytes;
  decode_bytes scratch ~pos:0

let equal a b =
  a.addr = b.addr && a.value = b.value && a.size = b.size
  && a.timestamp = b.timestamp && a.pre_image = b.pre_image

let pp ppf t =
  Format.fprintf ppf "{addr=0x%x value=0x%x size=%d ts=%d%s}" t.addr t.value
    t.size t.timestamp (if t.pre_image then " pre" else "")
