(** The 16-byte log record wire format produced by the logger hardware.

    A record holds the data address written, the value written there, the
    size of the write, and a timestamp from the logger's 6.25 MHz counter
    (Section 3.1). Records are DMA'ed into log segment pages back to back,
    earlier writes at lower offsets, so user code reads logs by parsing
    this format straight out of memory. *)

type t = {
  addr : int;  (** Data address written. Physical in the prototype logger;
                   virtual with on-chip logging (Section 4.6). *)
  value : int;  (** Value written (low [8 * size] bits significant). *)
  size : int;  (** Write size in bytes: 1, 2 or 4. *)
  timestamp : int;  (** 6.25 MHz counter value, i.e. CPU cycles / 4. *)
  pre_image : bool;
      (** Section 4.6's optional extension: when the on-chip logger is
          configured to record "the memory data before the write", each
          store emits a flagged pre-image record (carrying the old value)
          immediately before the ordinary record. Pre-images enable
          constant-time reverse execution; every state-reconstruction
          reader must skip them. Encoded as bit 8 of the size word. *)
}

val bytes : int
(** Size of an encoded record (16). *)

val encode_to : Physmem.t -> paddr:int -> t -> unit
(** Store the record at physical address [paddr]. *)

val decode_from : Physmem.t -> paddr:int -> t
(** Parse the record at physical address [paddr]. *)

val encode_bytes : Bytes.t -> pos:int -> t -> unit
val decode_bytes : Bytes.t -> pos:int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
