type t = {
  store : Bytes.t;
  frames : int;
  mutable free : int list;
  mutable free_count : int;
}

exception Out_of_frames

let create ~frames =
  if frames <= 0 then invalid_arg "Physmem.create: frames must be positive";
  let free = List.init frames (fun i -> i) in
  { store = Bytes.make (frames * Addr.page_size) '\000'; frames; free;
    free_count = frames }

let frames t = t.frames
let bytes t = Bytes.length t.store
let frames_free t = t.free_count

let zero_frame t fn =
  Bytes.fill t.store (fn * Addr.page_size) Addr.page_size '\000'

let alloc_frame t =
  match t.free with
  | [] -> raise Out_of_frames
  | fn :: rest ->
    t.free <- rest;
    t.free_count <- t.free_count - 1;
    zero_frame t fn;
    fn

let alloc_frames t n = List.init n (fun _ -> alloc_frame t)

let free_frame t fn =
  if fn < 0 || fn >= t.frames then invalid_arg "Physmem.free_frame";
  t.free <- fn :: t.free;
  t.free_count <- t.free_count + 1

let check t paddr len =
  if paddr < 0 || paddr + len > Bytes.length t.store then
    invalid_arg
      (Printf.sprintf "Physmem: address 0x%x+%d out of range" paddr len)

let read_word t paddr =
  check t paddr 4;
  Int32.to_int (Bytes.get_int32_le t.store paddr) land 0xFFFFFFFF

let write_word t paddr v =
  check t paddr 4;
  Bytes.set_int32_le t.store paddr (Int32.of_int (v land 0xFFFFFFFF))

let read_byte t paddr =
  check t paddr 1;
  Char.code (Bytes.get t.store paddr)

let write_byte t paddr v =
  check t paddr 1;
  Bytes.set t.store paddr (Char.chr (v land 0xFF))

let read_half t paddr =
  check t paddr 2;
  Bytes.get_uint16_le t.store paddr

let write_half t paddr v =
  check t paddr 2;
  Bytes.set_uint16_le t.store paddr (v land 0xFFFF)

let read_sized t paddr ~size =
  match size with
  | 1 -> read_byte t paddr
  | 2 -> read_half t paddr
  | 4 -> read_word t paddr
  | _ -> invalid_arg "Physmem.read_sized: size must be 1, 2 or 4"

let write_sized t paddr ~size v =
  match size with
  | 1 -> write_byte t paddr v
  | 2 -> write_half t paddr v
  | 4 -> write_word t paddr v
  | _ -> invalid_arg "Physmem.write_sized: size must be 1, 2 or 4"

let blit t ~src ~dst ~len =
  check t src len;
  check t dst len;
  Bytes.blit t.store src t.store dst len

let blit_to_bytes t ~src buf ~pos ~len =
  check t src len;
  Bytes.blit t.store src buf pos len

let blit_of_bytes t buf ~pos ~dst ~len =
  check t dst len;
  Bytes.blit buf pos t.store dst len
