let word_size = 4
let page_size = 4096
let line_size = 16
let words_per_page = page_size / word_size
let lines_per_page = page_size / line_size
let words_per_line = line_size / word_size
let page_number addr = addr lsr 12
let page_base addr = addr land lnot (page_size - 1)
let page_offset addr = addr land (page_size - 1)
let line_base addr = addr land lnot (line_size - 1)
let line_number addr = addr lsr 4
let addr_of_page pn = pn lsl 12
let is_word_aligned addr = addr land (word_size - 1) = 0
let is_page_aligned addr = addr land (page_size - 1) = 0

let align_up n ~alignment =
  assert (alignment > 0 && alignment land (alignment - 1) = 0);
  (n + alignment - 1) land lnot (alignment - 1)

let pages_spanning bytes = (bytes + page_size - 1) / page_size
let pp ppf addr = Format.fprintf ppf "0x%x" addr
