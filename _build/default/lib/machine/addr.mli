(** Address arithmetic for the simulated machine.

    Addresses are byte addresses represented as non-negative [int]s. The
    machine uses 4-byte words and 4-kilobyte pages, matching the ParaDiGM
    prototype described in the paper (Section 3.1). *)

val word_size : int
(** Bytes per machine word (4). *)

val page_size : int
(** Bytes per page (4096). *)

val line_size : int
(** Bytes per first-level cache line (16). *)

val words_per_page : int
val lines_per_page : int
val words_per_line : int

val page_number : int -> int
(** [page_number addr] is the page number containing byte address [addr]. *)

val page_base : int -> int
(** [page_base addr] is the byte address of the start of [addr]'s page. *)

val page_offset : int -> int
(** [page_offset addr] is [addr]'s offset within its page. *)

val line_base : int -> int
(** [line_base addr] is the byte address of the start of [addr]'s line. *)

val line_number : int -> int
(** [line_number addr] is the global line index containing [addr]. *)

val addr_of_page : int -> int
(** [addr_of_page pn] is the base byte address of page number [pn]. *)

val is_word_aligned : int -> bool
val is_page_aligned : int -> bool

val align_up : int -> alignment:int -> int
(** [align_up n ~alignment] rounds [n] up to a multiple of [alignment],
    which must be a power of two. *)

val pages_spanning : int -> int
(** [pages_spanning bytes] is the number of pages needed to hold [bytes]. *)

val pp : Format.formatter -> int -> unit
(** Hexadecimal address printer. *)
