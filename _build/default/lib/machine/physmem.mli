(** Simulated physical memory: a flat array of 4-kilobyte page frames with a
    simple free-frame allocator.

    All values are 32-bit machine words stored little-endian; reads and
    writes of bytes, halfwords and words are supported because log records
    carry a size field. This module charges no cycles — timing belongs to
    the cache, bus and logger models. *)

type t

val create : frames:int -> t
(** [create ~frames] makes a memory of [frames] 4 KB page frames, all free. *)

val frames : t -> int
val bytes : t -> int

exception Out_of_frames

val alloc_frame : t -> int
(** Allocate a free frame and return its frame (page) number. The frame is
    zero-filled. @raise Out_of_frames when none is free. *)

val alloc_frames : t -> int -> int list
(** Allocate [n] frames. *)

val free_frame : t -> int -> unit
(** Return a frame to the free list. Freeing a free frame is an error. *)

val frames_free : t -> int

(** {1 Access by physical byte address} *)

val read_word : t -> int -> int
(** [read_word t paddr] reads the 32-bit word at word-aligned [paddr].
    The result is in \[0, 2{^32}). *)

val write_word : t -> int -> int -> unit
(** [write_word t paddr v] stores the low 32 bits of [v] at [paddr]. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_half : t -> int -> int
val write_half : t -> int -> int -> unit

val read_sized : t -> int -> size:int -> int
(** [read_sized t paddr ~size] reads [size] bytes (1, 2 or 4). *)

val write_sized : t -> int -> size:int -> int -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Raw byte copy inside physical memory (no cycle accounting). *)

val blit_to_bytes : t -> src:int -> Bytes.t -> pos:int -> len:int -> unit
val blit_of_bytes : t -> Bytes.t -> pos:int -> dst:int -> len:int -> unit

val zero_frame : t -> int -> unit
(** Zero-fill the given frame number. *)
