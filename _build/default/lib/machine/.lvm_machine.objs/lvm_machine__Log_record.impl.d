lib/machine/log_record.ml: Bytes Format Int32 Physmem
