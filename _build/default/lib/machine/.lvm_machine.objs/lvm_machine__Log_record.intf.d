lib/machine/log_record.mli: Bytes Format Physmem
