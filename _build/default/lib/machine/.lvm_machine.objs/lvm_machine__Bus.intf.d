lib/machine/bus.mli: Perf
