lib/machine/l1_cache.ml: Addr Array Bus Cycles Perf
