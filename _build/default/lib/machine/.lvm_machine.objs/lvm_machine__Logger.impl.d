lib/machine/logger.ml: Addr Array Bus Cycles Fifo Log_record Perf Physmem
