lib/machine/physmem.ml: Addr Bytes Char Int32 List Printf
