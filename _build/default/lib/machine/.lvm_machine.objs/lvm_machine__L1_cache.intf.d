lib/machine/l1_cache.mli: Bus Perf
