lib/machine/cycles.mli:
