lib/machine/physmem.mli: Bytes
