lib/machine/machine.ml: Addr Bus Cycles Deferred_cache L1_cache Logger Perf Physmem
