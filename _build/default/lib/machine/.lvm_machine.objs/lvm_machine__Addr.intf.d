lib/machine/addr.mli: Format
