lib/machine/fifo.ml: Array
