lib/machine/deferred_cache.mli: Perf Physmem
