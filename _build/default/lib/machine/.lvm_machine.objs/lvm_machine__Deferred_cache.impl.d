lib/machine/deferred_cache.ml: Addr Bytes Cycles Hashtbl List Perf Physmem
