lib/machine/machine.mli: Bus Deferred_cache L1_cache Logger Perf Physmem
