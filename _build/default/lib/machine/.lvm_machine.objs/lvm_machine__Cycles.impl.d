lib/machine/cycles.ml:
