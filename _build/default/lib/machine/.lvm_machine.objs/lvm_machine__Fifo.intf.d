lib/machine/fifo.mli:
