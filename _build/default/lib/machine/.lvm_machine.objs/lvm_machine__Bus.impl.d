lib/machine/bus.ml: Perf
