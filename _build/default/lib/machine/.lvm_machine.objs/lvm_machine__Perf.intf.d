lib/machine/perf.mli: Format
