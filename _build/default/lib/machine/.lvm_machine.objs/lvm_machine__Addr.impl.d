lib/machine/addr.ml: Format
