lib/machine/logger.mli: Bus Perf Physmem
