(** Bounded FIFO with timestamped drain, modelling the logger's hardware
    FIFOs.

    Each entry carries the cycle at which the logger finishes servicing it
    (its drain time). Occupancy at a given instant is the number of entries
    whose drain time is still in the future, which is exactly what the
    hardware threshold comparator sees. *)

type t

val create : capacity:int -> t

val capacity : t -> int

val drain_until : t -> now:int -> unit
(** Drop every entry whose drain time is at or before [now]. *)

val occupancy : t -> now:int -> int
(** Entries still queued at time [now] (drains first). *)

val push : t -> drain_time:int -> unit
(** Enqueue an entry that the logger will finish servicing at
    [drain_time]. @raise Invalid_argument if the FIFO is physically full
    (more than [capacity] undrained entries), which the logger must prevent
    via its overload interrupt. *)

val last_drain_time : t -> int
(** Drain time of the most recently pushed entry, or 0 if none was ever
    pushed. This is when the FIFO becomes empty if nothing else arrives. *)

val head_drain_time : t -> int option
(** Drain time of the oldest still-queued entry, if any. *)

val clear : t -> unit
