(** Figure 7: LVM versus copy-based checkpointing in the "simulated"
    simulation.

    Speedup (copy-based elapsed time / LVM elapsed time) as a function of
    compute cycles per event [c], for the paper's four curves
    (w,s) ∈ {(1,32), (2,64), (4,128), (8,256)}. The paper reports speedups
    from a few percent at large [c] up to large factors at small [c],
    biggest for large objects, with LVM's advantage collapsing at small
    [c] and large [w] when the logger overloads. *)

type point = { c : int; speedup : float; lvm_overloads : int }
type curve = { w : int; s : int; points : point list }

val measure : ?events:int -> ?cs:int list -> unit -> curve list
val run : quick:bool -> Format.formatter -> unit
