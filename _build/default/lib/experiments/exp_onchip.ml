open Lvm_machine

type point = {
  c : int;
  prototype_per_iter : float;
  onchip_per_iter : float;
  prototype_overloads : int;
  onchip_overloads : int;
}

let default_cs = [ 0; 10; 20; 30; 60; 120; 240; 480 ]

let measure ?(iterations = 10_000) ?(cs = default_cs) () =
  List.map
    (fun c ->
      let proto =
        Writes_loop.run ~hw:Logger.Prototype ~iterations ~c ~unlogged:0
          ~logged:1 ()
      in
      let onchip =
        Writes_loop.run ~hw:Logger.On_chip ~iterations ~c ~unlogged:0
          ~logged:1 ()
      in
      {
        c;
        prototype_per_iter = Writes_loop.per_iteration proto;
        onchip_per_iter = Writes_loop.per_iteration onchip;
        prototype_overloads = proto.Writes_loop.overloads;
        onchip_overloads = onchip.Writes_loop.overloads;
      })
    cs

let run ~quick ppf =
  Report.section ppf "Ablation A: Prototype vs On-chip Logging (Section 4.6)";
  let points =
    measure
      ~iterations:(if quick then 3000 else 10_000)
      ~cs:(if quick then [ 0; 30; 240 ] else default_cs)
      ()
  in
  Report.table ppf
    ~header:
      [ "compute cycles"; "prototype (cyc/iter)"; "on-chip (cyc/iter)";
        "prototype overloads"; "on-chip overloads" ]
    (List.map
       (fun p ->
         [
           Report.fi p.c;
           Report.ff p.prototype_per_iter;
           Report.ff p.onchip_per_iter;
           Report.fi p.prototype_overloads;
           Report.fi p.onchip_overloads;
         ])
       points);
  Report.note ppf
    "on-chip logging never takes the overload interrupt; the cost of a \
     logged write approaches that of an unlogged write-through, as \
     Section 4.6 argues."
