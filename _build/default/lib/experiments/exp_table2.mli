(** Table 2: basic machine performance.

    Word write-through 6 cycles (5 bus), cache block write 9 cycles (8
    bus), log-record DMA 18 cycles (8 bus). Measured by issuing each
    operation on an otherwise idle machine and reading the cycle and
    bus-occupancy deltas. *)

type measurement = { op : string; total : int; bus : int }

val measure : unit -> measurement list

val run : quick:bool -> Format.formatter -> unit
