open Lvm_vm
open Lvm_consistency

type row = {
  writes : int;
  spread_pages : int;
  twin_release : int;
  log_release : int;
  snoop_release : int;
  twin_words : int;
  log_words : int;
}

let patterns =
  [ (1, 1); (4, 1); (16, 1); (64, 1); (4, 4); (16, 4); (64, 4); (256, 4);
    (1024, 4) ]

let one_pattern ~segment_kb ~writes ~spread_pages =
  let run protocol =
    let k = Kernel.create () in
    let sp = Kernel.create_space k in
    let t = Shared_segment.create k sp ~size:(segment_kb * 1024) protocol in
    Shared_segment.acquire t;
    for i = 0 to writes - 1 do
      let page = i mod spread_pages in
      let word = i / spread_pages mod (Lvm_machine.Addr.words_per_page - 1)
      in
      Shared_segment.write_word t
        ~off:((page * Lvm_machine.Addr.page_size) + (word * 4))
        (i + 1)
    done;
    let s = Shared_segment.release t in
    assert (Shared_segment.replica_consistent t);
    s
  in
  let twin = run Shared_segment.Twin_diff in
  let log = run Shared_segment.Log_based in
  let snoop = run Shared_segment.Snooped in
  {
    writes;
    spread_pages;
    twin_release = twin.Shared_segment.release_cycles;
    log_release = log.Shared_segment.release_cycles;
    snoop_release = snoop.Shared_segment.release_cycles;
    twin_words = twin.Shared_segment.words_sent;
    log_words = log.Shared_segment.words_sent;
  }

let measure ?(segment_kb = 32) () =
  List.map
    (fun (writes, spread_pages) -> one_pattern ~segment_kb ~writes ~spread_pages)
    patterns

let run ~quick:_ ppf =
  Report.section ppf
    "Ablation C: Log-based Consistency vs Munin Twin/Diff (Section 2.6)";
  let rows = measure () in
  Report.table ppf
    ~header:
      [ "writes"; "pages"; "twin/diff release"; "log-based release";
        "snooped release"; "twin words"; "log words" ]
    (List.map
       (fun r ->
         [
           Report.fi r.writes;
           Report.fi r.spread_pages;
           Report.fi r.twin_release;
           Report.fi r.log_release;
           Report.fi r.snoop_release;
           Report.fi r.twin_words;
           Report.fi r.log_words;
         ])
       rows);
  Report.note ppf
    "log-based consistency wins when updates are sparse relative to the \
     page; twin/diff catches up only when most of a page is rewritten \
     (it can even send fewer words when a location is overwritten \
     repeatedly, the tradeoff Section 2.6 notes). The snooped variant \
     (consistency from the logging bus traffic alone) makes release \
     almost free."
