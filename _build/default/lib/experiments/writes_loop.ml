open Lvm_machine
open Lvm_vm

type result = {
  iterations : int;
  cycles : int;
  overloads : int;
  overload_cycles : int;
}

let seg_bytes = 256 * 1024
let log_pages = 128

let run ?hw ~iterations ~c ~unlogged ~logged () =
  let k = Kernel.create ?hw ~frames:512 () in
  let sp = Kernel.create_space k in
  (* unlogged target *)
  let useg = Kernel.create_segment k ~size:seg_bytes in
  let uregion = Kernel.create_region k useg in
  let ubase = Kernel.bind k sp uregion in
  (* logged target *)
  let lseg = Kernel.create_segment k ~size:seg_bytes in
  let lregion = Kernel.create_region k lseg in
  let ls = Kernel.create_log_segment k ~size:(log_pages * Addr.page_size) in
  Kernel.set_region_log k lregion (Some ls);
  let lbase = Kernel.bind k sp lregion in
  (* fault all pages in ahead of the measurement *)
  for p = 0 to (seg_bytes / Addr.page_size) - 1 do
    ignore (Kernel.read_word k sp (ubase + (p * Addr.page_size)));
    ignore (Kernel.read_word k sp (lbase + (p * Addr.page_size)))
  done;
  Logger.flush (Machine.logger (Kernel.machine k));
  let perf = Kernel.perf k in
  Perf.reset perf;
  let upos = ref 0 and lpos = ref 0 in
  let recycle_at = (log_pages - 8) * Addr.page_size in
  let records = ref 0 in
  let t0 = Kernel.time k in
  for i = 0 to iterations - 1 do
    Kernel.compute k c;
    for _ = 1 to unlogged do
      Kernel.write_word k sp (ubase + !upos) i;
      upos := (!upos + Addr.word_size) mod seg_bytes
    done;
    for _ = 1 to logged do
      Kernel.write_word k sp (lbase + !lpos) i;
      lpos := (!lpos + Addr.word_size) mod seg_bytes;
      incr records
    done;
    if !records * Log_record.bytes >= recycle_at then begin
      Kernel.sync_log k ls;
      Kernel.truncate_log_suffix k ls ~new_end:0;
      records := 0
    end
  done;
  let cycles = Kernel.time k - t0 in
  Logger.complete_pending (Machine.logger (Kernel.machine k));
  {
    iterations;
    cycles;
    overloads = perf.Perf.overloads;
    overload_cycles = perf.Perf.overload_cycles;
  }

let per_write r ~c ~writes_per_iter =
  float_of_int (r.cycles - (c * r.iterations))
  /. float_of_int (r.iterations * writes_per_iter)

let per_iteration r = float_of_int r.cycles /. float_of_int r.iterations
