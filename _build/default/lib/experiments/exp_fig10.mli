(** Figure 10: CPU cost of logged writes.

    Cycles per write for clusters of 2, 4 and 8 writes per iteration, with
    and without logging, as compute cycles per iteration vary. For small
    [c] the logger is overloaded and logged writes are far more expensive;
    on the flat portion the difference between logged and unlogged is the
    cost of write-through, which grows with the burst size. *)

type point = { c : int; logged : float; unlogged : float }
type cluster = { writes : int; points : point list }

val measure :
  ?iterations:int -> ?cs:int list -> ?clusters:int list -> unit ->
  cluster list

val run : quick:bool -> Format.formatter -> unit
