open Lvm_sim

type point = { fraction : float; w : int; speedup : float }
type curve = { s : int; c : int; points : point list }

let curves_spec = [ (32, 256); (64, 512); (128, 1024); (256, 2048) ]
let default_fractions = [ 0.125; 0.25; 0.375; 0.5; 0.625; 0.75; 0.875; 1.0 ]

let measure ?(events = 1500) ?(fractions = default_fractions) () =
  List.map
    (fun (s, c) ->
      let points =
        List.filter_map
          (fun fraction ->
            let w =
              int_of_float (Float.round (fraction *. float_of_int s /. 4.))
            in
            if w < 1 then None
            else
              let p =
                { Synthetic.default_params with Synthetic.events; c; s; w }
              in
              Some { fraction; w; speedup = Synthetic.speedup p })
          fractions
      in
      { s; c; points })
    curves_spec

let run ~quick ppf =
  Report.section ppf "Figure 8: Effect of Number of Writes on LVM";
  let curves =
    measure
      ~events:(if quick then 500 else 1500)
      ~fractions:(if quick then [ 0.25; 0.5; 1.0 ] else default_fractions)
      ()
  in
  let fractions = List.map (fun p -> p.fraction) (List.hd curves).points in
  let header =
    "fraction written"
    :: List.map (fun cu -> Printf.sprintf "s=%d,c=%d" cu.s cu.c) curves
  in
  let rows =
    List.map
      (fun f ->
        Report.ff ~decimals:3 f
        :: List.map
             (fun cu ->
               match List.find_opt (fun p -> p.fraction = f) cu.points with
               | Some p -> Report.ff p.speedup
               | None -> "-")
             curves)
      fractions
  in
  Report.table ppf ~header rows;
  Report.note ppf
    "paper shape: speedup decreases slowly with the fraction written; \
     only near fraction 1 does write-through overhead bite."
