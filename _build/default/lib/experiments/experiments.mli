(** Registry of all reproduction experiments. *)

type t = {
  id : string;  (** Short name for the CLI, e.g. "table2". *)
  description : string;
  run : quick:bool -> Format.formatter -> unit;
}

val all : t list
val find : string -> t option
val run_all : ?quick:bool -> Format.formatter -> unit
