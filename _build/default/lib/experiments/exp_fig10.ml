type point = { c : int; logged : float; unlogged : float }
type cluster = { writes : int; points : point list }

let default_cs = [ 0; 32; 64; 128; 192; 256; 384; 512 ]
let default_clusters = [ 2; 4; 8 ]

let measure ?(iterations = 4000) ?(cs = default_cs)
    ?(clusters = default_clusters) () =
  List.map
    (fun writes ->
      let points =
        List.map
          (fun c ->
            let logged_r =
              Writes_loop.run ~iterations ~c ~unlogged:0 ~logged:writes ()
            in
            let unlogged_r =
              Writes_loop.run ~iterations ~c ~unlogged:writes ~logged:0 ()
            in
            {
              c;
              logged = Writes_loop.per_write logged_r ~c
                  ~writes_per_iter:writes;
              unlogged =
                Writes_loop.per_write unlogged_r ~c ~writes_per_iter:writes;
            })
          cs
      in
      { writes; points })
    clusters

let run ~quick ppf =
  Report.section ppf "Figure 10: CPU Cost of Logged Writes";
  let clusters =
    measure
      ~iterations:(if quick then 1000 else 4000)
      ~cs:(if quick then [ 0; 64; 256; 512 ] else default_cs)
      ()
  in
  List.iter
    (fun cl ->
      Report.subsection ppf
        (Printf.sprintf "cluster of %d writes" cl.writes);
      Report.table ppf
        ~header:
          [ "compute cycles"; "with logging (cyc/write)";
            "without logging (cyc/write)" ]
        (List.map
           (fun p ->
             [ Report.fi p.c; Report.ff p.logged; Report.ff p.unlogged ])
           cl.points))
    clusters;
  Report.note ppf
    "paper shape: overload blows up the logged cost at small c; on the \
     flat part the logged-unlogged gap is the write-through cost, \
     growing with burst size."
