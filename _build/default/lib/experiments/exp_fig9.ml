open Lvm_machine
open Lvm_vm

type point = { dirty_kb : int; reset_kcycles : float; bcopy_kcycles : float }

type curve = {
  segment_kb : int;
  points : point list;
  crossover_fraction : float option;
}

let default_fractions =
  [ 0.0; 0.125; 0.25; 0.375; 0.5; 0.625; 0.75; 0.875; 1.0 ]

let kcycles c = float_of_int c /. 1000.

let measure ?(fractions = default_fractions) ~segment_kb () =
  let size = segment_kb * 1024 in
  let pages = size / Addr.page_size in
  let frames = max 4096 ((3 * pages) + 64) in
  let k = Kernel.create ~frames () in
  let sp = Kernel.create_space k in
  let working = Kernel.create_segment k ~size in
  let ckpt = Kernel.create_segment k ~size in
  Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
  let region = Kernel.create_region k working in
  let base = Kernel.bind k sp region in
  (* measure bcopy of the whole segment once; it does not depend on how
     much is dirty *)
  let t0 = Kernel.time k in
  Machine.bcopy (Kernel.machine k)
    ~src:(Kernel.paddr_of k ckpt ~off:0)
    ~dst:(Kernel.paddr_of k working ~off:0)
    ~len:size;
  let bcopy_cycles = Kernel.time k - t0 in
  Kernel.reset_deferred_segment k working;
  let points =
    List.map
      (fun fraction ->
        let dirty_pages =
          int_of_float (Float.round (fraction *. float_of_int pages))
        in
        (* dirty the first [dirty_pages] pages with one write each *)
        for p = 0 to dirty_pages - 1 do
          Kernel.write_word k sp (base + (p * Addr.page_size)) p
        done;
        let t1 = Kernel.time k in
        Kernel.reset_deferred_copy k sp ~start:base ~len:size;
        let reset_cycles = Kernel.time k - t1 in
        {
          dirty_kb = dirty_pages * Addr.page_size / 1024;
          reset_kcycles = kcycles reset_cycles;
          bcopy_kcycles = kcycles bcopy_cycles;
        })
      fractions
  in
  (* linear interpolation of the reset-vs-bcopy crossover *)
  let crossover_fraction =
    let rec find = function
      | (f1, p1) :: ((f2, p2) :: _ as rest) ->
        if p1.reset_kcycles <= p1.bcopy_kcycles
           && p2.reset_kcycles > p2.bcopy_kcycles
        then
          let d1 = p1.bcopy_kcycles -. p1.reset_kcycles in
          let d2 = p2.reset_kcycles -. p2.bcopy_kcycles in
          Some (f1 +. ((f2 -. f1) *. d1 /. (d1 +. d2)))
        else find rest
      | _ -> None
    in
    find (List.combine fractions points)
  in
  { segment_kb; points; crossover_fraction }

let sizes_kb = [ 32; 512; 2048 ]

let run ~quick ppf =
  Report.section ppf "Figure 9: resetDeferredCopy vs bcopy";
  let sizes = if quick then [ 32; 512 ] else sizes_kb in
  List.iter
    (fun segment_kb ->
      let curve = measure ~segment_kb () in
      Report.subsection ppf
        (Printf.sprintf "%d-kilobyte segment" segment_kb);
      Report.table ppf
        ~header:[ "dirty KB"; "reset (kcycles)"; "bcopy (kcycles)" ]
        (List.map
           (fun p ->
             [
               Report.fi p.dirty_kb;
               Report.ff p.reset_kcycles;
               Report.ff p.bcopy_kcycles;
             ])
           curve.points);
      match curve.crossover_fraction with
      | Some f ->
        Format.fprintf ppf
          "crossover: reset wins below %.0f%% dirty (paper: ~67%%)@."
          (100. *. f)
      | None -> Format.fprintf ppf "no crossover in the sweep@.")
    sizes
