(** Figure 9: execution time of [resetDeferredCopy] versus [bcopy].

    For 32 KB, 512 KB and 2 MB segment pairs, the time to reset the
    deferred copy as a function of how much of the segment is dirty,
    against the flat cost of copying the whole segment with [bcopy]. The
    paper finds reset wins whenever less than about two-thirds of the
    segment is dirty. *)

type point = { dirty_kb : int; reset_kcycles : float; bcopy_kcycles : float }

type curve = {
  segment_kb : int;
  points : point list;
  crossover_fraction : float option;
      (** Dirty fraction where reset stops winning. *)
}

val measure : ?fractions:float list -> segment_kb:int -> unit -> curve
val run : quick:bool -> Format.formatter -> unit
