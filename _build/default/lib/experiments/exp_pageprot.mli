(** Ablation B (Section 5.1): log-generation technique comparison.

    Forward-progress cost per event of the synthetic simulation under the
    three state-saving techniques: copy-based (conventional TimeWarp),
    page-protect checkpointing (Li/Appel: write-protect at each
    checkpoint, fault-and-copy each first-written page), and LVM. The
    paper argues per-write page-protect logging is impractical — a write
    fault costs thousands of cycles — which is why hardware support is
    needed; the numbers here show where each technique's cost goes. *)

type row = {
  strategy : Lvm_sim.State_saving.t;
  per_event : float;
  protect_faults : int;
  overloads : int;
}

type setting = { c : int; s : int; w : int; rows : row list }

val measure : ?events:int -> ?settings:(int * int * int) list -> unit ->
  setting list

val run : quick:bool -> Format.formatter -> unit
