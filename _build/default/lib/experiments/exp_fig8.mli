(** Figure 8: effect of the number of writes on LVM performance.

    Speedup versus the fraction of the object written per event, for the
    paper's four curves (s,c) ∈ {(32,256), (64,512), (128,1024),
    (256,2048)}. The paper finds the speedup decreases only slowly as the
    fraction grows — copy-based saving is independent of the number of
    writes while LVM pays one write-through per write — with the drop
    becoming significant only as the fraction approaches one. *)

type point = { fraction : float; w : int; speedup : float }
type curve = { s : int; c : int; points : point list }

val measure : ?events:int -> ?fractions:float list -> unit -> curve list
val run : quick:bool -> Format.formatter -> unit
