(** Ablation C (Section 2.6): log-based consistency versus Munin-style
    twin/diff.

    A producer writes [writes] words spread over [spread_pages] pages of a
    write-shared segment, then releases. Twin/diff pays a protection
    fault, a page copy and a whole-page word-by-word comparison per
    touched page; log-based consistency streams exactly the logged
    updates. The paper expects log-based to win when updates are small
    relative to the consistency unit. *)

type row = {
  writes : int;
  spread_pages : int;
  twin_release : int;
  log_release : int;
  snoop_release : int;
      (** Release cycles when a hardware snoop on the logging bus keeps
          the replica coherent (Section 2.6's on-chip variant). *)
  twin_words : int;
  log_words : int;
}

val measure : ?segment_kb:int -> unit -> row list
val run : quick:bool -> Format.formatter -> unit
