(** Ablation E: checkpoint/rollback primitives compared (Sections 4.4 and
    5.1).

    For one checkpoint-modify-rollback cycle over a segment with a
    varying fraction of pages dirtied, the three mechanisms:

    - [bcopy]: copy the whole segment back (flat cost);
    - deferred copy: [resetDeferredCopy] (per-dirty-page second-level
      line sweep; checkpoint establishment is free);
    - Li/Appel page-protect: write-protect at checkpoint, fault + page
      copy on first writes, restore by remapping (restore is nearly free,
      but the faults and copies are paid up front on the mutator's
      critical path).

    The paper's point: deferred copy wins for rollback-heavy optimistic
    execution because it needs no faults, and page-protect cannot provide
    per-write logging at all. *)

type point = {
  dirty_pages : int;
  bcopy_cycles : int;
  dc_mutate_cycles : int;  (** Writing the dirty words under deferred copy. *)
  dc_restore_cycles : int;
  ppc_mutate_cycles : int;  (** Same writes, paying protection faults. *)
  ppc_restore_cycles : int;
}

val measure : ?pages:int -> ?dirty_counts:int list -> unit -> point list
val run : quick:bool -> Format.formatter -> unit
