open Lvm_sim

type row = {
  strategy : State_saving.t;
  per_event : float;
  protect_faults : int;
  overloads : int;
}

type setting = { c : int; s : int; w : int; rows : row list }

let default_settings = [ (256, 64, 2); (512, 256, 4); (2048, 256, 8) ]

let strategies =
  [ State_saving.Copy_based; State_saving.Page_protect;
    State_saving.Lvm_based ]

let measure ?(events = 2000) ?(settings = default_settings) () =
  List.map
    (fun (c, s, w) ->
      let rows =
        List.map
          (fun strategy ->
            let p = { Synthetic.default_params with Synthetic.events; c; s; w }
            in
            let r = Synthetic.run p strategy in
            {
              strategy;
              per_event = r.Synthetic.per_event;
              protect_faults = r.Synthetic.protect_faults;
              overloads = r.Synthetic.overloads;
            })
          strategies
      in
      { c; s; w; rows })
    settings

let run ~quick ppf =
  Report.section ppf
    "Ablation B: State-saving Techniques (copy vs page-protect vs LVM)";
  let settings = measure ~events:(if quick then 600 else 2000) () in
  List.iter
    (fun st ->
      Report.subsection ppf
        (Printf.sprintf "c=%d, s=%d bytes, w=%d writes/event" st.c st.s st.w);
      Report.table ppf
        ~header:
          [ "strategy"; "cycles/event"; "protect faults"; "overloads" ]
        (List.map
           (fun r ->
             [
               State_saving.to_string r.strategy;
               Report.ff r.per_event;
               Report.fi r.protect_faults;
               Report.fi r.overloads;
             ])
           st.rows))
    settings;
  Report.note ppf
    "page-protect checkpoints only (no per-write log): cheap when few \
     pages are touched per interval but gives coarse rollback; LVM has \
     the lowest steady-state overhead."
