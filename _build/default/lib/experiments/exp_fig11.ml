type point = {
  c : int;
  logged_per_iter : float;
  unlogged_per_iter : float;
  overloads_per_1000 : float;
  overload_cost : float;
}

(* fine steps around the overload threshold (~27), then the paper's
   sweep up to 630 *)
let default_cs =
  [ 0; 5; 10; 15; 20; 24; 27; 30 ] @ List.init 10 (fun i -> 60 * (i + 1))

let measure ?(iterations = 20_000) ?(cs = default_cs) () =
  List.map
    (fun c ->
      let logged = Writes_loop.run ~iterations ~c ~unlogged:0 ~logged:1 () in
      let unlogged = Writes_loop.run ~iterations ~c ~unlogged:1 ~logged:0 ()
      in
      {
        c;
        logged_per_iter = Writes_loop.per_iteration logged;
        unlogged_per_iter = Writes_loop.per_iteration unlogged;
        overloads_per_1000 =
          1000. *. float_of_int logged.Writes_loop.overloads
          /. float_of_int iterations;
        overload_cost =
          (if logged.Writes_loop.overloads = 0 then 0.
           else
             float_of_int logged.Writes_loop.overload_cycles
             /. float_of_int logged.Writes_loop.overloads);
      })
    cs

let overload_threshold_c points =
  List.find_map
    (fun p -> if p.overloads_per_1000 = 0. then Some p.c else None)
    (List.sort (fun a b -> compare a.c b.c) points)

let run ~quick ppf =
  let points =
    measure
      ~iterations:(if quick then 4000 else 20_000)
      ~cs:(if quick then [ 0; 30; 90; 210; 330; 630 ] else default_cs)
      ()
  in
  Report.section ppf "Figure 11: Total Cost of a Logged Write";
  Report.table ppf
    ~header:
      [ "compute cycles"; "with logging (cyc/iter)";
        "without logging (cyc/iter)" ]
    (List.map
       (fun p ->
         [ Report.fi p.c; Report.ff p.logged_per_iter;
           Report.ff p.unlogged_per_iter ])
       points);
  (match
     List.find_opt (fun p -> p.overload_cost > 0.) (List.rev points)
   with
  | Some p ->
    Format.fprintf ppf
      "mean overload penalty: %.0f cycles (paper: more than 30,000)@."
      p.overload_cost
  | None -> ());
  Report.section ppf "Figure 12: Overload Events";
  Report.table ppf
    ~header:[ "compute cycles"; "overloads per 1000 iterations" ]
    (List.map
       (fun p -> [ Report.fi p.c; Report.ff p.overloads_per_1000 ])
       points);
  match overload_threshold_c points with
  | Some c ->
    Format.fprintf ppf
      "overload avoided from c = %d compute cycles per logged write \
       (paper: ~27)@."
      c
  | None -> Format.fprintf ppf "overload present across the whole sweep@."
