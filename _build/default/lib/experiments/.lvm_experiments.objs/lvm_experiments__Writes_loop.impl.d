lib/experiments/writes_loop.ml: Addr Kernel Log_record Logger Lvm_machine Lvm_vm Machine Perf
