lib/experiments/exp_fig8.mli: Format
