lib/experiments/exp_fig10.ml: List Printf Report Writes_loop
