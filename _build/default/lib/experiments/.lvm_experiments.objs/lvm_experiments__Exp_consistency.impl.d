lib/experiments/exp_consistency.ml: Kernel List Lvm_consistency Lvm_machine Lvm_vm Report Shared_segment
