lib/experiments/exp_onchip.ml: List Logger Lvm_machine Report Writes_loop
