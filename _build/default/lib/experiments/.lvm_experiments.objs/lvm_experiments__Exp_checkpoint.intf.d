lib/experiments/exp_checkpoint.mli: Format
