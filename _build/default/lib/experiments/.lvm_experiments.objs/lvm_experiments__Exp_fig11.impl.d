lib/experiments/exp_fig11.ml: Format List Report Writes_loop
