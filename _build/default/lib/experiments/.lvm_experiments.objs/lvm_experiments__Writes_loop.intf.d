lib/experiments/writes_loop.mli: Lvm_machine
