lib/experiments/exp_onchip.mli: Format
