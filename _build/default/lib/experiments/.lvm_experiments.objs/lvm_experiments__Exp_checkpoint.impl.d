lib/experiments/exp_checkpoint.ml: Addr Kernel List Lvm_machine Lvm_vm Machine Protect_checkpoint Report
