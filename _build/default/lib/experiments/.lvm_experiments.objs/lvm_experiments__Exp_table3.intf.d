lib/experiments/exp_table3.mli: Format
