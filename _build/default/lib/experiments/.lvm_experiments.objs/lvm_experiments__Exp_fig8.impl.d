lib/experiments/exp_fig8.ml: Float List Lvm_sim Printf Report Synthetic
