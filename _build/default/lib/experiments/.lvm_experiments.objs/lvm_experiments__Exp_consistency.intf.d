lib/experiments/exp_consistency.mli: Format
