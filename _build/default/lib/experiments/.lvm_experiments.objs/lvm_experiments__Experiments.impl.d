lib/experiments/experiments.ml: Exp_checkpoint Exp_consistency Exp_fig10 Exp_fig11 Exp_fig7 Exp_fig8 Exp_fig9 Exp_onchip Exp_pageprot Exp_table2 Exp_table3 Exp_timewarp Format List
