lib/experiments/exp_pageprot.mli: Format Lvm_sim
