lib/experiments/exp_timewarp.mli: Format Lvm_sim
