lib/experiments/exp_fig7.ml: List Lvm_sim Printf Report State_saving Synthetic
