lib/experiments/exp_fig9.ml: Addr Float Format Kernel List Lvm_machine Lvm_vm Machine Printf Report
