lib/experiments/exp_fig9.mli: Format
