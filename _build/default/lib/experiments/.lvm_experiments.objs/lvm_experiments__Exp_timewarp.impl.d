lib/experiments/exp_timewarp.ml: Conservative List Lvm_sim Phold Report State_saving Timewarp
