lib/experiments/exp_table3.ml: Kernel Lvm_rvm Lvm_tpc Lvm_vm Report Rlvm Rvm
