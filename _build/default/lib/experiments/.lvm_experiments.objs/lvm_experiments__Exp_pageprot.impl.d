lib/experiments/exp_pageprot.ml: List Lvm_sim Printf Report State_saving Synthetic
