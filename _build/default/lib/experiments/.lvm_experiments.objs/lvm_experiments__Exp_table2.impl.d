lib/experiments/exp_table2.ml: Addr Cycles Kernel List Logger Lvm_machine Lvm_vm Machine Perf Printf Report
