lib/experiments/report.ml: Format List Option Printf String
