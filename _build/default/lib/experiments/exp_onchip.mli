(** Ablation A (Section 4.6): prototype bus logger versus on-chip logging.

    Reruns the Figure 11 loop under both hardware models. With logging
    support in the CPU's VM unit there are no FIFO overload interrupts —
    the processor stalls briefly like any write-through writer — so the
    cost of a logged write stays near the cost of an unlogged one even at
    zero compute cycles, and per-region logs log virtual addresses. *)

type point = {
  c : int;
  prototype_per_iter : float;
  onchip_per_iter : float;
  prototype_overloads : int;
  onchip_overloads : int;
}

val measure : ?iterations:int -> ?cs:int list -> unit -> point list
val run : quick:bool -> Format.formatter -> unit
