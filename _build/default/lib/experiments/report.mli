(** Formatting helpers for the experiment reports: section banners,
    aligned tables, and paper-vs-measured comparison rows. *)

val section : Format.formatter -> string -> unit
val subsection : Format.formatter -> string -> unit

val table : Format.formatter -> header:string list -> string list list -> unit
(** Render rows under a header with aligned columns. *)

val paper_row : label:string -> paper:string -> measured:string -> string list
(** A three-column comparison row for {!table} with header
    [["quantity"; "paper"; "measured"]]. *)

val comparison :
  Format.formatter -> (string * string * string) list -> unit
(** A full paper-vs-measured table from (label, paper, measured) rows. *)

val note : Format.formatter -> string -> unit

val fi : int -> string
val ff : ?decimals:int -> float -> string
