open Lvm_sim

type row = {
  schedulers : int;
  strategy : State_saving.t;
  elapsed_cycles : int;
  committed : int;
  rollbacks : int;
  matches_sequential : bool;
}

let seed = 23
let population = 16
let locality_pct = 90

let engine ~objects ~object_words ~n_schedulers ~strategy =
  let app =
    Phold.app ~objects ~object_words ~locality_pct ~seed ~compute:300 ()
  in
  let e = Timewarp.create ~n_schedulers ~strategy ~app () in
  Phold.inject_population e ~objects ~population ~seed;
  e

let conservative_engine ~objects ~object_words ~n_schedulers =
  let app =
    Phold.app ~objects ~object_words ~locality_pct ~seed ~compute:300 ()
  in
  let e = Conservative.create ~n_schedulers ~app () in
  (* replicate Phold.inject_population for the conservative engine *)
  for i = 0 to population - 1 do
    let h = Phold.hash seed i 17 23 in
    Conservative.inject e ~time:(1 + (h mod 10)) ~dst:(h / 16 mod objects)
      ~payload:(h land 0xFFFF)
  done;
  e

let measure ?(objects = 24) ?(object_words = 512) ?(end_time = 600)
    ?(scheduler_counts = [ 1; 2; 4 ]) () =
  let reference = engine ~objects ~object_words ~n_schedulers:1
      ~strategy:State_saving.Lvm_based in
  ignore (Timewarp.run reference ~end_time);
  let reference_state = Timewarp.state_vector reference in
  List.concat_map
    (fun schedulers ->
      let optimistic =
        List.map
          (fun strategy ->
            let e = engine ~objects ~object_words ~n_schedulers:schedulers
                ~strategy in
            let r = Timewarp.run e ~end_time in
            {
              schedulers;
              strategy;
              elapsed_cycles = r.Timewarp.elapsed_cycles;
              committed = r.Timewarp.total_events_committed;
              rollbacks = r.Timewarp.total_rollbacks;
              matches_sequential =
                Timewarp.state_vector e = reference_state;
            })
          [ State_saving.Copy_based; State_saving.Lvm_based ]
      in
      let conservative =
        let e =
          conservative_engine ~objects ~object_words
            ~n_schedulers:schedulers
        in
        let r = Conservative.run e ~end_time in
        {
          schedulers;
          strategy = State_saving.No_saving;
          elapsed_cycles = r.Conservative.elapsed_cycles;
          committed = r.Conservative.events_processed;
          rollbacks = 0;
          matches_sequential = Conservative.state_vector e = reference_state;
        }
      in
      conservative :: optimistic)
    scheduler_counts

let run ~quick ppf =
  Report.section ppf
    "Ablation D: TimeWarp End-to-End, LVM vs Copy-based State Saving";
  let rows =
    measure
      ~end_time:(if quick then 300 else 600)
      ~scheduler_counts:(if quick then [ 1; 4 ] else [ 1; 2; 4 ])
      ()
  in
  Report.table ppf
    ~header:
      [ "schedulers"; "strategy"; "elapsed (cycles)"; "committed";
        "rollbacks"; "matches sequential" ]
    (List.map
       (fun r ->
         [
           Report.fi r.schedulers;
           State_saving.to_string r.strategy;
           Report.fi r.elapsed_cycles;
           Report.fi r.committed;
           Report.fi r.rollbacks;
           string_of_bool r.matches_sequential;
         ])
       rows);
  Report.note ppf
    "PHOLD with 2 KB objects and 90% locality; every configuration \
     commits the identical sequential execution. 'no-saving' is the \
     conservative barrier-synchronous engine (idles at every step, never \
     rolls back); LVM removes the per-event state copies from the \
     optimistic engine's critical path, and its rollback cost is paid \
     only by schedulers running ahead (Section 2.4)."
