(** Ablation D: end-to-end TimeWarp with LVM vs copy-based state saving.

    The full optimistic engine (stragglers, anti-messages, GVT, CULT) runs
    the PHOLD workload with large objects and spatial locality — the
    sophisticated-simulation regime the paper argues for (Section 2.7) —
    under both state-saving strategies and several scheduler counts. Both
    strategies commit the identical sequential execution; the comparison
    is processor cycles. *)

type row = {
  schedulers : int;
  strategy : Lvm_sim.State_saving.t;
  elapsed_cycles : int;
  committed : int;
  rollbacks : int;
  matches_sequential : bool;
}

val measure :
  ?objects:int -> ?object_words:int -> ?end_time:int ->
  ?scheduler_counts:int list -> unit -> row list

val run : quick:bool -> Format.formatter -> unit
