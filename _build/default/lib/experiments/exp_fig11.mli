(** Figures 11 and 12: total cost of a logged write and overload events.

    One logged write per iteration (l=1, w=0), compute cycles swept over
    [0..630]: Figure 11 plots the average total cycles per iteration with
    and without logging, Figure 12 the overload events per 1000
    iterations. The paper reports each overload costs more than 30,000
    cycles — so the time per iteration {e decreases} as computation per
    loop increases — and that overload is avoided once there is no more
    than one logged write per ~27 compute cycles on average. *)

type point = {
  c : int;
  logged_per_iter : float;
  unlogged_per_iter : float;
  overloads_per_1000 : float;
  overload_cost : float;  (** Mean cycles per overload event, 0 if none. *)
}

val measure : ?iterations:int -> ?cs:int list -> unit -> point list

val overload_threshold_c : point list -> int option
(** Smallest measured [c] with no overloads. *)

val run : quick:bool -> Format.formatter -> unit
