open Lvm_machine
open Lvm_vm

type point = {
  dirty_pages : int;
  bcopy_cycles : int;
  dc_mutate_cycles : int;
  dc_restore_cycles : int;
  ppc_mutate_cycles : int;
  ppc_restore_cycles : int;
}

let one_cycle ~pages ~dirty =
  let size = pages * Addr.page_size in
  (* deferred-copy pair *)
  let k = Kernel.create ~frames:(4 * pages + 64) () in
  let sp = Kernel.create_space k in
  let working = Kernel.create_segment k ~size in
  let ckpt = Kernel.create_segment k ~size in
  Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
  let region = Kernel.create_region k working in
  let base = Kernel.bind k sp region in
  (* fault all pages in so the measured mutation is pure write cost *)
  for p = 0 to pages - 1 do
    ignore (Kernel.read_word k sp (base + (p * Addr.page_size)))
  done;
  let t0 = Kernel.time k in
  for p = 0 to dirty - 1 do
    Kernel.write_word k sp (base + (p * Addr.page_size)) p
  done;
  let dc_mutate_cycles = Kernel.time k - t0 in
  let t1 = Kernel.time k in
  Kernel.reset_deferred_copy k sp ~start:base ~len:size;
  let dc_restore_cycles = Kernel.time k - t1 in
  (* the flat alternative: copy the whole checkpoint back *)
  let t2 = Kernel.time k in
  Machine.bcopy (Kernel.machine k)
    ~src:(Kernel.paddr_of k ckpt ~off:0)
    ~dst:(Kernel.paddr_of k working ~off:0)
    ~len:size;
  let bcopy_cycles = Kernel.time k - t2 in
  (* Li/Appel page-protect on a fresh kernel *)
  let k2 = Kernel.create ~frames:(4 * pages + 64) () in
  let sp2 = Kernel.create_space k2 in
  let seg2 = Kernel.create_segment k2 ~size in
  let region2 = Kernel.create_region k2 seg2 in
  let base2 = Kernel.bind k2 sp2 region2 in
  let mgr = Protect_checkpoint.manager k2 in
  let c = Protect_checkpoint.attach mgr ~space:sp2 region2 in
  Protect_checkpoint.checkpoint c;
  let t3 = Kernel.time k2 in
  for p = 0 to dirty - 1 do
    Kernel.write_word k2 sp2 (base2 + (p * Addr.page_size)) p
  done;
  let ppc_mutate_cycles = Kernel.time k2 - t3 in
  let t4 = Kernel.time k2 in
  Protect_checkpoint.restore c;
  let ppc_restore_cycles = Kernel.time k2 - t4 in
  {
    dirty_pages = dirty;
    bcopy_cycles;
    dc_mutate_cycles;
    dc_restore_cycles;
    ppc_mutate_cycles;
    ppc_restore_cycles;
  }

let measure ?(pages = 32) ?(dirty_counts = [ 1; 2; 4; 8; 16; 32 ]) () =
  List.map (fun dirty -> one_cycle ~pages ~dirty) dirty_counts

let run ~quick ppf =
  Report.section ppf
    "Ablation E: Rollback Primitives (bcopy vs deferred copy vs \
     page-protect)";
  let points =
    measure ~dirty_counts:(if quick then [ 1; 8; 32 ] else
                             [ 1; 2; 4; 8; 16; 32 ]) ()
  in
  Report.table ppf
    ~header:
      [ "dirty pages (of 32)"; "bcopy restore"; "dc mutate"; "dc restore";
        "li/appel mutate"; "li/appel restore" ]
    (List.map
       (fun p ->
         [
           Report.fi p.dirty_pages;
           Report.fi p.bcopy_cycles;
           Report.fi p.dc_mutate_cycles;
           Report.fi p.dc_restore_cycles;
           Report.fi p.ppc_mutate_cycles;
           Report.fi p.ppc_restore_cycles;
         ])
       points);
  Report.note ppf
    "page-protect moves the cost onto the mutator (3000-cycle faults plus \
     whole-page copies per first write) and restores by remapping; \
     deferred copy keeps the mutator free and pays a per-dirty-page sweep \
     at rollback; bcopy is flat and loses except when nearly everything \
     is dirty (Figure 9)."
