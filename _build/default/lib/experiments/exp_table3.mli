(** Table 3: performance of recoverable memory with and without LVM.

    Single recoverable write: 3515 cycles under Coda-style RVM (set_range
    bookkeeping, old-value save, redo record) vs ~16 cycles under RLVM (a
    plain logged store). TPC-A over a RAM-disk log: 418 vs 552
    transactions per second — most of the gap is bounded by commit and
    log-truncation costs, which LVM does not reduce. *)

type results = {
  rvm_single_write : int;
  rlvm_single_write : int;
  rvm_tps : float;
  rlvm_tps : float;
  rvm_in_txn_fraction : float;
      (** Fraction of RVM TPC-A cycles spent inside transactions (paper:
          about 25%). *)
  rlvm_in_txn_fraction : float;  (** Paper: under 1%. *)
}

val measure : ?txns:int -> unit -> results
val run : quick:bool -> Format.formatter -> unit
