(** The Section 4.5.1 test methodology, shared by Figures 10-12 and the
    on-chip ablation: run iterations of

    + perform [c] compute cycles,
    + perform [unlogged] normal write operations,
    + perform [logged] logged write operations,

    with write addresses increasing so accesses hit in the second-level
    cache but not generally in the first-level. The log is recycled out of
    band (the kernel resets the write position when the segment nears its
    end), standing in for asynchronous CULT, so measurements reflect
    steady-state logging cost only. *)

type result = {
  iterations : int;
  cycles : int;  (** Total elapsed cycles including compute. *)
  overloads : int;
  overload_cycles : int;
}

val run :
  ?hw:Lvm_machine.Logger.hw -> iterations:int -> c:int -> unlogged:int ->
  logged:int -> unit -> result

val per_write : result -> c:int -> writes_per_iter:int -> float
(** Cycles per write with the compute time subtracted out. *)

val per_iteration : result -> float
