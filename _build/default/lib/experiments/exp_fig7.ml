open Lvm_sim

type point = { c : int; speedup : float; lvm_overloads : int }
type curve = { w : int; s : int; points : point list }

let curves_spec = [ (1, 32); (2, 64); (4, 128); (8, 256) ]
let default_cs = [ 64; 128; 256; 512; 1024; 2048; 4096; 8192 ]

let measure ?(events = 1500) ?(cs = default_cs) () =
  List.map
    (fun (w, s) ->
      let points =
        List.map
          (fun c ->
            let p = { Synthetic.default_params with Synthetic.events; c; s; w }
            in
            let copy = Synthetic.run p State_saving.Copy_based in
            let lvm = Synthetic.run p State_saving.Lvm_based in
            {
              c;
              speedup =
                float_of_int copy.Synthetic.cycles
                /. float_of_int lvm.Synthetic.cycles;
              lvm_overloads = lvm.Synthetic.overloads;
            })
          cs
      in
      { w; s; points })
    curves_spec

let run ~quick ppf =
  Report.section ppf "Figure 7: LVM vs Copy-based Checkpointing";
  let curves =
    measure
      ~events:(if quick then 500 else 1500)
      ~cs:(if quick then [ 128; 512; 2048; 8192 ] else default_cs)
      ()
  in
  let cs = List.map (fun p -> p.c) (List.hd curves).points in
  let header =
    "compute cycles"
    :: List.map (fun cu -> Printf.sprintf "w=%d,s=%d" cu.w cu.s) curves
  in
  let rows =
    List.mapi
      (fun i c ->
        Report.fi c
        :: List.map
             (fun cu ->
               let p = List.nth cu.points i in
               Report.ff p.speedup
               ^ if p.lvm_overloads > 0 then "*" else "")
             curves)
      cs
  in
  Report.table ppf ~header rows;
  Report.note ppf
    "speedup = copy-based elapsed / LVM elapsed; '*' marks logger \
     overload. Paper shape: speedup falls with c, rises with s, and \
     collapses below c~200 for w=8 where the prototype logger overflows."
