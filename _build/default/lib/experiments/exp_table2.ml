open Lvm_machine
open Lvm_vm

type measurement = { op : string; total : int; bus : int }

let measure () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:8192 in
  let region = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(8 * Addr.page_size) in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  let m = Kernel.machine k in
  let perf = Kernel.perf k in
  (* fault the page in and let everything settle *)
  Kernel.write_word k sp base 0;
  Logger.flush (Machine.logger m);
  Kernel.compute k 1000;

  (* 1. word write-through: one logged write on an idle bus *)
  let t0 = Kernel.time k and b0 = perf.Perf.bus_busy_cycles in
  Kernel.write_word k sp (base + 4) 1;
  let wt_total = Kernel.time k - t0 in
  let wt_bus_all = perf.Perf.bus_busy_cycles - b0 in
  (* the write-through occupies the bus before the logger's DMA *)
  let wt_bus = min wt_bus_all Cycles.word_write_through_bus in
  Logger.flush (Machine.logger m);
  Kernel.compute k 1000;

  (* 2. cache block write: write-back of a dirty first-level line,
     triggered by a conflicting fill 8 KB away *)
  let unlogged = Kernel.create_segment k ~size:(4 * Addr.page_size) in
  let r2 = Kernel.create_region k unlogged in
  let base2 = Kernel.bind k sp r2 in
  (* find a page whose frame conflicts in the 8 KB direct-mapped L1 with
     page 0's frame (physical distance a multiple of 8 KB) *)
  let frame0 = Kernel.paddr_of k unlogged ~off:0 / Addr.page_size in
  let conflict =
    let rec find p =
      if p >= 4 then invalid_arg "exp_table2: no conflicting frame"
      else
        let f = Kernel.paddr_of k unlogged ~off:(p * Addr.page_size)
                / Addr.page_size
        in
        if (f - frame0) mod 2 = 0 then p else find (p + 1)
    in
    find 1
  in
  (* fault both pages in (and settle) before the measured accesses *)
  ignore (Kernel.read_word k sp base2);
  ignore (Kernel.read_word k sp (base2 + (conflict * Addr.page_size)));
  Kernel.compute k 1000;
  Kernel.write_word k sp base2 1 (* dirty the line, evicting the clean
                                    conflicting line *);
  let b1 = perf.Perf.bus_busy_cycles in
  let wb0 = perf.Perf.l1_write_backs in
  let t1 = Kernel.time k in
  ignore (Kernel.read_word k sp (base2 + (conflict * Addr.page_size)));
  let evict_total = Kernel.time k - t1 in
  let evict_bus = perf.Perf.bus_busy_cycles - b1 in
  assert (perf.Perf.l1_write_backs = wb0 + 1);
  (* the measured access is write-back + fill + hit; isolate the block
     write by subtracting the known fill and hit costs *)
  let block_total = evict_total - Cycles.l1_fill_total - Cycles.l1_hit in
  let block_bus = evict_bus - Cycles.l1_fill_bus in

  (* 3. log-record DMA: service one record on an idle machine and take
     the logger's occupancy of pipeline and bus *)
  Kernel.compute k 1000;
  let b2 = perf.Perf.bus_busy_cycles in
  let t2 = Kernel.time k in
  Kernel.write_word k sp (base + 8) 2;
  let after_write = Kernel.time k in
  let drained = Logger.drained_at (Machine.logger m) in
  ignore t2;
  let dma_total = drained - after_write - Cycles.logger_lookup in
  let dma_bus =
    perf.Perf.bus_busy_cycles - b2 - Cycles.word_write_through_bus
  in
  [
    { op = "Word write-through"; total = wt_total; bus = wt_bus };
    { op = "Cache block write"; total = block_total; bus = block_bus };
    { op = "Log-record DMA"; total = dma_total; bus = dma_bus };
  ]

let paper = [ (6, 5); (9, 8); (18, 8) ]

let run ~quick:_ ppf =
  Report.section ppf "Table 2: Basic Machine Performance";
  let rows =
    List.map2
      (fun m (pt, pb) ->
        [
          m.op;
          Printf.sprintf "%d cycles / %d bus" pt pb;
          Printf.sprintf "%d cycles / %d bus" m.total m.bus;
        ])
      (measure ()) paper
  in
  Report.table ppf ~header:[ "operation"; "paper"; "measured" ] rows
