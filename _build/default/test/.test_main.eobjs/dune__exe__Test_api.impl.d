test/test_api.ml: Addr Alcotest Array Bytes Format Gen List Log_record Lvm Lvm_experiments Lvm_machine Lvm_rvm Lvm_sim Lvm_tools Lvm_tpc Lvm_vm Machine Perf Physmem QCheck QCheck_alcotest String
