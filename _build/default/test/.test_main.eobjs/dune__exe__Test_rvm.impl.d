test/test_rvm.ml: Alcotest Array Bytes Int32 List Lvm_rvm Lvm_tpc Lvm_vm Printf QCheck QCheck_alcotest Ramdisk Rlvm Rvm Rvm_costs String
