test/test_sim.ml: Alcotest Conservative Event Event_queue Format List Lvm_machine Lvm_sim Phold Printf QCheck QCheck_alcotest Queueing State_saving Synthetic Timewarp
