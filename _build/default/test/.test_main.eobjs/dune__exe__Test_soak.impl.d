test/test_soak.ml: Alcotest Array List Lvm_rvm Lvm_sim Lvm_vm Phold Queueing Random State_saving Timewarp
