test/test_vm.ml: Addr Address_space Alcotest Array Cycles Gen Kernel List Log_record Logger Lvm Lvm_machine Lvm_vm Option Perf Printf QCheck QCheck_alcotest Region Segment String
