test/test_extensions.ml: Alcotest Array Gen Kernel List Lvm Lvm_consistency Lvm_machine Lvm_tools Lvm_vm Printf Protect_checkpoint QCheck QCheck_alcotest Shared_segment
