test/test_machine.ml: Addr Alcotest Bus Bytes Cycles Deferred_cache Fifo Format L1_cache Log_record Logger Lvm_machine Machine Perf Physmem Printf QCheck QCheck_alcotest
