test/test_paging.ml: Addr Alcotest Backing_store Bytes Cycles Int32 Kernel Log_record Lvm Lvm_machine Lvm_vm Machine Perf Physmem
