test/test_determinism.ml: Alcotest Format List Lvm Lvm_machine Lvm_rvm Lvm_sim Lvm_tpc Lvm_vm Phold State_saving Synthetic Timewarp
