(* Tests for the simulated hardware: address arithmetic, physical memory,
   bus, FIFOs, caches, deferred copy and the logger. *)

open Lvm_machine

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Addr} *)

let test_addr_basics () =
  check "page_number" 3 (Addr.page_number 0x3abc);
  check "page_base" 0x3000 (Addr.page_base 0x3abc);
  check "page_offset" 0xabc (Addr.page_offset 0x3abc);
  check "line_base" 0x3ab0 (Addr.line_base 0x3abc);
  check "addr_of_page" 0x5000 (Addr.addr_of_page 5);
  check "align_up" 0x2000 (Addr.align_up 0x1001 ~alignment:0x1000);
  check "align_up exact" 0x1000 (Addr.align_up 0x1000 ~alignment:0x1000);
  check "pages_spanning" 2 (Addr.pages_spanning 4097);
  check "pages_spanning exact" 1 (Addr.pages_spanning 4096);
  check "pages_spanning zero" 0 (Addr.pages_spanning 0);
  check_bool "word aligned" true (Addr.is_word_aligned 8);
  check_bool "word unaligned" false (Addr.is_word_aligned 6);
  check_bool "page aligned" true (Addr.is_page_aligned 8192)

let prop_addr_decompose =
  QCheck.Test.make ~name:"addr = page_base + page_offset" ~count:500
    QCheck.(int_bound 0xFFFFFF)
    (fun a -> Addr.page_base a + Addr.page_offset a = a)

let prop_addr_page_roundtrip =
  QCheck.Test.make ~name:"page_number (addr_of_page p) = p" ~count:500
    QCheck.(int_bound 0xFFFF)
    (fun p -> Addr.page_number (Addr.addr_of_page p) = p)

(* {1 Physmem} *)

let test_physmem_rw () =
  let m = Physmem.create ~frames:4 in
  Physmem.write_word m 0x100 0xDEADBEEF;
  check "word" 0xDEADBEEF (Physmem.read_word m 0x100);
  Physmem.write_byte m 0x200 0xAB;
  check "byte" 0xAB (Physmem.read_byte m 0x200);
  Physmem.write_half m 0x300 0x1234;
  check "half" 0x1234 (Physmem.read_half m 0x300);
  Physmem.write_sized m 0x400 ~size:4 0x7FFFFFFF;
  check "sized word" 0x7FFFFFFF (Physmem.read_sized m 0x400 ~size:4);
  (* little-endian layout *)
  Physmem.write_word m 0x500 0x04030201;
  check "le byte 0" 1 (Physmem.read_byte m 0x500);
  check "le byte 3" 4 (Physmem.read_byte m 0x503)

let test_physmem_truncates () =
  let m = Physmem.create ~frames:1 in
  Physmem.write_byte m 0 0x1FF;
  check "byte truncated" 0xFF (Physmem.read_byte m 0);
  Physmem.write_half m 2 0x12345;
  check "half truncated" 0x2345 (Physmem.read_half m 2)

let test_physmem_alloc () =
  let m = Physmem.create ~frames:3 in
  check "free initially" 3 (Physmem.frames_free m);
  let a = Physmem.alloc_frame m in
  let b = Physmem.alloc_frame m in
  let c = Physmem.alloc_frame m in
  check_bool "frames distinct" true (a <> b && b <> c && a <> c);
  check "none free" 0 (Physmem.frames_free m);
  Alcotest.check_raises "out of frames" Physmem.Out_of_frames (fun () ->
      ignore (Physmem.alloc_frame m));
  Physmem.free_frame m b;
  check "one free" 1 (Physmem.frames_free m);
  let b' = Physmem.alloc_frame m in
  check "frame reused" b b'

let test_physmem_alloc_zeroed () =
  let m = Physmem.create ~frames:2 in
  let f = Physmem.alloc_frame m in
  Physmem.write_word m (Addr.addr_of_page f) 42;
  Physmem.free_frame m f;
  let f' = Physmem.alloc_frame m in
  check "same frame" f f';
  check "zero filled" 0 (Physmem.read_word m (Addr.addr_of_page f'))

let test_physmem_bounds () =
  let m = Physmem.create ~frames:1 in
  Alcotest.check_raises "read oob"
    (Invalid_argument "Physmem: address 0x1000+4 out of range") (fun () ->
      ignore (Physmem.read_word m 4096))

let test_physmem_blit () =
  let m = Physmem.create ~frames:2 in
  Physmem.write_word m 0 0xCAFE;
  Physmem.write_word m 4 0xF00D;
  Physmem.blit m ~src:0 ~dst:4096 ~len:8;
  check "blit word0" 0xCAFE (Physmem.read_word m 4096);
  check "blit word1" 0xF00D (Physmem.read_word m 4100)

(* {1 Bus} *)

let test_bus_fcfs () =
  let perf = Perf.create () in
  let bus = Bus.create perf in
  check "first access" 15 (Bus.access bus ~track:Bus.Cpu ~now:10 ~cycles:5);
  (* second request at t=12 waits for the track *)
  check "queued access" 23 (Bus.access bus ~track:Bus.Cpu ~now:12 ~cycles:8);
  (* request after the track is idle starts immediately *)
  check "idle access" 105 (Bus.access bus ~track:Bus.Cpu ~now:100 ~cycles:5);
  check "busy cycles counted" 18 perf.Perf.bus_busy_cycles

let test_bus_track_priority () =
  let perf = Perf.create () in
  let bus = Bus.create perf in
  (* a long backlog of low-priority DMA does not delay CPU transactions *)
  for i = 0 to 9 do
    ignore (Bus.access bus ~track:Bus.Dma ~now:(i * 2) ~cycles:8)
  done;
  check "cpu unaffected by dma backlog" 10
    (Bus.access bus ~track:Bus.Cpu ~now:5 ~cycles:5);
  check_bool "dma backlog extends its own track" true
    (Bus.free_at bus ~track:Bus.Dma > 70)

(* {1 Fifo} *)

let test_fifo_drain () =
  let f = Fifo.create ~capacity:4 in
  check "empty" 0 (Fifo.occupancy f ~now:0);
  Fifo.push f ~drain_time:10;
  Fifo.push f ~drain_time:20;
  Fifo.push f ~drain_time:30;
  check "three queued" 3 (Fifo.occupancy f ~now:5);
  check "one drained" 2 (Fifo.occupancy f ~now:10);
  check "all drained" 0 (Fifo.occupancy f ~now:100);
  check "last drain" 30 (Fifo.last_drain_time f)

let test_fifo_overflow () =
  let f = Fifo.create ~capacity:2 in
  Fifo.push f ~drain_time:10;
  Fifo.push f ~drain_time:20;
  Alcotest.check_raises "overflow" (Invalid_argument "Fifo.push: overflow")
    (fun () -> Fifo.push f ~drain_time:30)

let test_fifo_head_drain () =
  let f = Fifo.create ~capacity:4 in
  Alcotest.(check (option int)) "empty head" None (Fifo.head_drain_time f);
  Fifo.push f ~drain_time:7;
  Fifo.push f ~drain_time:9;
  Alcotest.(check (option int)) "head" (Some 7) (Fifo.head_drain_time f)

let test_fifo_wraparound () =
  let f = Fifo.create ~capacity:3 in
  for round = 0 to 9 do
    let t = (round * 100) + 50 in
    Fifo.push f ~drain_time:t;
    check "one queued" 1 (Fifo.occupancy f ~now:(t - 1));
    check "drained" 0 (Fifo.occupancy f ~now:t)
  done

(* {1 L1 cache} *)

let test_l1_hit_miss () =
  let perf = Perf.create () in
  let bus = Bus.create perf in
  let l1 = L1_cache.create bus perf in
  let t1 = L1_cache.read l1 ~now:0 ~paddr:0x100 in
  check "miss costs fill + access" (Cycles.l1_fill_total + Cycles.l1_hit) t1;
  let t2 = L1_cache.read l1 ~now:t1 ~paddr:0x104 in
  check "same-line hit is 1 cycle" (t1 + Cycles.l1_hit) t2;
  check "one miss" 1 perf.Perf.l1_misses;
  check "one hit" 1 perf.Perf.l1_hits

let test_l1_write_through_timing () =
  let perf = Perf.create () in
  let bus = Bus.create perf in
  let l1 = L1_cache.create bus perf in
  let t1 = L1_cache.write_through l1 ~now:0 ~paddr:0x100 in
  check "write-through is 6 cycles" Cycles.word_write_through_total t1;
  check "write-through counted" 1 perf.Perf.write_throughs;
  (* back-to-back write-throughs are serialized by the bus *)
  let t2 = L1_cache.write_through l1 ~now:t1 ~paddr:0x104 in
  check "second write-through" (t1 + Cycles.word_write_through_total) t2

let test_l1_write_back_dirty_eviction () =
  let perf = Perf.create () in
  let bus = Bus.create perf in
  let l1 = L1_cache.create bus perf in
  (* Write a line, then force a conflicting fill 8 KB away: the dirty
     victim must be written back before the fill. *)
  let t1 = L1_cache.write_back_mode_write l1 ~now:0 ~paddr:0x100 in
  let t2 = L1_cache.read l1 ~now:t1 ~paddr:(0x100 + 8192) in
  check "write-backs" 1 perf.Perf.l1_write_backs;
  check_bool "eviction costs extra" true
    (t2 - t1 > Cycles.l1_fill_total + Cycles.l1_hit)

let test_l1_invalidate_page () =
  let perf = Perf.create () in
  let bus = Bus.create perf in
  let l1 = L1_cache.create bus perf in
  ignore (L1_cache.read l1 ~now:0 ~paddr:0x100);
  check_bool "resident" true (L1_cache.contains_line l1 ~paddr:0x100);
  L1_cache.invalidate_page l1 ~page:0;
  check_bool "invalidated" false (L1_cache.contains_line l1 ~paddr:0x100)

(* {1 Deferred cache} *)

let dc_fixture () =
  let perf = Perf.create () in
  let mem = Physmem.create ~frames:4 in
  let dc = Deferred_cache.create mem perf in
  (mem, dc)

let test_dc_read_redirect () =
  let mem, dc = dc_fixture () in
  (* page 1 is the destination, page 0 the source *)
  Physmem.write_word mem 0x10 0xAAAA;
  Deferred_cache.map dc ~dst_page:1 ~src_addr:0;
  let r = Deferred_cache.resolve_read dc ~paddr:0x1010 in
  check "unmodified line reads source" 0x10 r;
  check "unmapped page reads itself" 0x2010
    (Deferred_cache.resolve_read dc ~paddr:0x2010)

let test_dc_write_merges_line () =
  let mem, dc = dc_fixture () in
  (* source line holds 4 words; write one word in the destination and the
     other three must come from the source. *)
  for i = 0 to 3 do
    Physmem.write_word mem (0x20 + (i * 4)) (100 + i)
  done;
  Deferred_cache.map dc ~dst_page:1 ~src_addr:0;
  Deferred_cache.note_write dc ~paddr:0x1024;
  Physmem.write_word mem 0x1024 777;
  check "written word" 777
    (Physmem.read_word mem (Deferred_cache.resolve_read dc ~paddr:0x1024));
  check "merged word 0" 100
    (Physmem.read_word mem (Deferred_cache.resolve_read dc ~paddr:0x1020));
  check "merged word 3" 103
    (Physmem.read_word mem (Deferred_cache.resolve_read dc ~paddr:0x102c))

let test_dc_dirty_and_reset () =
  let mem, dc = dc_fixture () in
  Physmem.write_word mem 0x40 123;
  Deferred_cache.map dc ~dst_page:1 ~src_addr:0;
  check_bool "clean initially" false (Deferred_cache.page_dirty dc ~dst_page:1);
  Deferred_cache.note_write dc ~paddr:0x1040;
  Physmem.write_word mem 0x1040 456;
  check_bool "dirty after write" true
    (Deferred_cache.page_dirty dc ~dst_page:1);
  let was_dirty = ref false in
  let cost = Deferred_cache.reset_page dc ~dst_page:1 ~was_dirty in
  check_bool "reset saw dirty" true !was_dirty;
  check "dirty reset cost" (Cycles.dc_reset_per_page
                            + (Addr.lines_per_page
                               * Cycles.dc_reset_per_dirty_line))
    cost;
  check "read back from source after reset" 123
    (Physmem.read_word mem (Deferred_cache.resolve_read dc ~paddr:0x1040));
  let cost_clean = Deferred_cache.reset_page dc ~dst_page:1 ~was_dirty in
  check_bool "second reset clean" false !was_dirty;
  check "clean reset cost" Cycles.dc_reset_per_page cost_clean

let test_dc_unmap () =
  let _, dc = dc_fixture () in
  Deferred_cache.map dc ~dst_page:2 ~src_addr:0;
  check_bool "mapped" true (Deferred_cache.is_mapped dc ~dst_page:2);
  Deferred_cache.unmap dc ~dst_page:2;
  check_bool "unmapped" false (Deferred_cache.is_mapped dc ~dst_page:2);
  Alcotest.(check (list int)) "no mapped pages" []
    (Deferred_cache.mapped_pages dc)

(* {1 Log record} *)

let test_log_record_roundtrip () =
  let mem = Physmem.create ~frames:1 in
  let r = { Log_record.addr = 0x1234; value = 0xBEEF; size = 4;
            timestamp = 99; pre_image = false } in
  Log_record.encode_to mem ~paddr:0x80 r;
  let r' = Log_record.decode_from mem ~paddr:0x80 in
  check_bool "roundtrip" true (Log_record.equal r r')

let prop_log_record_roundtrip =
  let gen =
    QCheck.Gen.(
      let* addr = int_bound 0xFFFFFF in
      let* value = int_bound 0xFFFFFF in
      let* size = oneofl [ 1; 2; 4 ] in
      let* timestamp = int_bound 0xFFFFFF in
      let* pre_image = bool in
      return { Log_record.addr; value; size; timestamp; pre_image })
  in
  let arb = QCheck.make ~print:(Format.asprintf "%a" Log_record.pp) gen in
  QCheck.Test.make ~name:"log record encode/decode roundtrip" ~count:300 arb
    (fun r ->
      let buf = Bytes.create Log_record.bytes in
      Log_record.encode_bytes buf ~pos:0 r;
      Log_record.equal r (Log_record.decode_bytes buf ~pos:0))

(* {1 Logger} *)

(* A miniature kernel for driving the logger directly: page [data_page] is
   logged to log index 0, whose records land in [log_page]; faults extend
   into [spare_pages]. *)
let logger_fixture ?hw ?(spare_pages = []) ~data_page ~log_page () =
  let clock = ref 0 in
  let perf = Perf.create () in
  let mem = Physmem.create ~frames:16 in
  let bus = Bus.create perf in
  let logger = Logger.create ?hw ~clock mem bus perf in
  let spare = ref spare_pages in
  Logger.load_pmt logger ~page:data_page ~log_index:0;
  Logger.set_log_entry logger ~index:0 ~mode:Logger.Normal
    ~addr:(Addr.addr_of_page log_page);
  Logger.set_fault_handler logger (function
    | Logger.Pmt_miss _ -> Logger.Drop
    | Logger.Log_addr_invalid { log_index } -> (
      match !spare with
      | [] -> Logger.Drop
      | p :: rest ->
        spare := rest;
        Logger.set_log_entry logger ~index:log_index ~mode:Logger.Normal
          ~addr:(Addr.addr_of_page p);
        Logger.Fixed));
  (clock, mem, logger, perf)

(* the pipeline is lazy: settle it before inspecting records *)
let settle = Logger.complete_pending

let test_logger_single_record () =
  let clock, mem, logger, perf =
    logger_fixture ~data_page:1 ~log_page:2 ()
  in
  clock := 400;
  Logger.snoop logger ~paddr:0x1010 ~vaddr:0x40001010 ~size:4 ~value:0xFEED;
  settle logger;
  check "one record" 1 perf.Perf.log_records;
  let r = Log_record.decode_from mem ~paddr:0x2000 in
  check "record addr is physical" 0x1010 r.Log_record.addr;
  check "record value" 0xFEED r.Log_record.value;
  check "record size" 4 r.Log_record.size;
  check "record timestamp" (400 / Cycles.timestamp_divider)
    r.Log_record.timestamp;
  (match Logger.log_entry logger ~index:0 with
  | Some (Logger.Normal, addr) -> check "log advanced" (0x2000 + 16) addr
  | _ -> Alcotest.fail "log entry should be valid")

let test_logger_sequential_records () =
  let clock, mem, logger, perf =
    logger_fixture ~data_page:1 ~log_page:2 ()
  in
  for i = 0 to 9 do
    clock := !clock + 100;
    Logger.snoop logger ~paddr:(0x1000 + (i * 4)) ~vaddr:(0x1000 + (i * 4))
      ~size:4 ~value:i
  done;
  settle logger;
  check "ten records" 10 perf.Perf.log_records;
  for i = 0 to 9 do
    let r = Log_record.decode_from mem ~paddr:(0x2000 + (i * 16)) in
    check (Printf.sprintf "record %d value" i) i r.Log_record.value;
    check (Printf.sprintf "record %d addr" i) (0x1000 + (i * 4))
      r.Log_record.addr
  done

let test_logger_virtual_addresses_on_chip () =
  let _, mem, logger, _ =
    logger_fixture ~hw:Logger.On_chip ~data_page:1 ~log_page:2 ()
  in
  (* on-chip tables are keyed by virtual page *)
  Logger.load_pmt logger ~page:(Addr.page_number 0xABCD0) ~log_index:0;
  Logger.snoop logger ~paddr:0x1010 ~vaddr:0xABCD0 ~size:4 ~value:7;
  settle logger;
  let r = Log_record.decode_from mem ~paddr:0x2000 in
  check "on-chip logs virtual address" 0xABCD0 r.Log_record.addr

let test_logger_page_crossing_fault () =
  (* Fill the log page to the brim, then one more record must fault and be
     redirected to the spare page. *)
  let clock, mem, logger, perf =
    logger_fixture ~data_page:1 ~log_page:2 ~spare_pages:[ 3 ] ()
  in
  let records_per_page = Addr.page_size / Log_record.bytes in
  for i = 0 to records_per_page - 1 do
    clock := !clock + 50;
    Logger.snoop logger ~paddr:0x1000 ~vaddr:0x1000 ~size:4 ~value:i
  done;
  settle logger;
  check "entry invalid after page crossing" 0
    (match Logger.log_entry logger ~index:0 with None -> 0 | Some _ -> 1);
  clock := !clock + 50;
  Logger.snoop logger ~paddr:0x1000 ~vaddr:0x1000 ~size:4 ~value:9999;
  settle logger;
  check "log-addr fault taken" 1 perf.Perf.logging_faults_log_addr;
  check "no records lost" 0 perf.Perf.log_records_lost;
  let r = Log_record.decode_from mem ~paddr:0x3000 in
  check "record continued on spare page" 9999 r.Log_record.value

let test_logger_pmt_miss_drop () =
  let clock, _, logger, perf = logger_fixture ~data_page:1 ~log_page:2 () in
  clock := 10;
  Logger.snoop logger ~paddr:0x5000 ~vaddr:0x5000 ~size:4 ~value:1;
  settle logger;
  check "pmt fault" 1 perf.Perf.logging_faults_pmt;
  check "record lost" 1 perf.Perf.log_records_lost;
  check "no record" 0 perf.Perf.log_records

let test_logger_pmt_conflict_eviction () =
  let clock = ref 0 in
  let perf = Perf.create () in
  let mem = Physmem.create ~frames:8 in
  let bus = Bus.create perf in
  (* Tiny PMT (4 entries) so pages 1 and 5 conflict. *)
  let logger = Logger.create ~pmt_bits:2 ~clock mem bus perf in
  Logger.load_pmt logger ~page:1 ~log_index:0;
  Alcotest.(check (option int)) "page 1 mapped" (Some 0)
    (Logger.pmt_lookup logger ~page:1);
  Logger.load_pmt logger ~page:5 ~log_index:1;
  Alcotest.(check (option int)) "page 1 evicted" None
    (Logger.pmt_lookup logger ~page:1);
  Alcotest.(check (option int)) "page 5 mapped" (Some 1)
    (Logger.pmt_lookup logger ~page:5)

let test_logger_overload () =
  (* Logged writes issued back-to-back (no compute between them) must
     eventually overload the FIFOs and charge the big suspension penalty. *)
  let clock, _, logger, perf =
    logger_fixture ~data_page:1 ~log_page:2
      ~spare_pages:[ 3; 4; 5; 6; 7; 8; 9; 10; 11 ] ()
  in
  for i = 0 to 999 do
    clock := !clock + Cycles.word_write_through_total;
    Logger.snoop logger ~paddr:0x1000 ~vaddr:0x1000 ~size:4 ~value:i
  done;
  check_bool "overloaded" true (perf.Perf.overloads >= 1);
  check_bool "overload penalty exceeds 15k cycles" true
    (perf.Perf.overload_cycles > 15_000)

let test_logger_no_overload_with_compute () =
  (* One logged write per 100 compute cycles is far below the logger's
     service rate; no overload may occur (Section 4.5.3). *)
  let clock, _, logger, perf =
    logger_fixture ~data_page:1 ~log_page:2
      ~spare_pages:[ 3; 4; 5; 6; 7; 8 ] ()
  in
  for i = 0 to 999 do
    clock := !clock + 100 + Cycles.word_write_through_total;
    Logger.snoop logger ~paddr:0x1000 ~vaddr:0x1000 ~size:4 ~value:i
  done;
  check "no overloads" 0 perf.Perf.overloads

let test_logger_disabled () =
  let clock, _, logger, perf = logger_fixture ~data_page:1 ~log_page:2 () in
  Logger.set_enabled logger false;
  clock := 10;
  Logger.snoop logger ~paddr:0x1000 ~vaddr:0x1000 ~size:4 ~value:1;
  check "no records when disabled" 0 perf.Perf.log_records;
  check "no faults when disabled" 0 perf.Perf.logging_faults_pmt

let test_logger_indexed_mode () =
  let clock, mem, logger, perf = logger_fixture ~data_page:1 ~log_page:2 () in
  Logger.set_log_entry logger ~index:0 ~mode:Logger.Indexed ~addr:0x2000;
  for i = 0 to 4 do
    clock := !clock + 50;
    Logger.snoop logger ~paddr:0x1000 ~vaddr:0x1000 ~size:4 ~value:(i * 11)
  done;
  settle logger;
  check "five records" 5 perf.Perf.log_records;
  for i = 0 to 4 do
    check
      (Printf.sprintf "indexed value %d" i)
      (i * 11)
      (Physmem.read_word mem (0x2000 + (i * 4)))
  done

let test_logger_direct_mapped_mode () =
  let clock, mem, logger, _ = logger_fixture ~data_page:1 ~log_page:2 () in
  Logger.set_log_entry logger ~index:0 ~mode:Logger.Direct_mapped ~addr:0x2000;
  clock := 50;
  Logger.snoop logger ~paddr:0x1abc ~vaddr:0x1abc ~size:4 ~value:0x42;
  settle logger;
  check "value at same offset in log page" 0x42
    (Physmem.read_word mem 0x2abc);
  (* the entry does not advance or invalidate in direct-mapped mode *)
  (match Logger.log_entry logger ~index:0 with
  | Some (Logger.Direct_mapped, addr) -> check "entry stable" 0x2000 addr
  | _ -> Alcotest.fail "entry should remain valid")

(* {1 Machine integration} *)

let machine_fixture ?hw () =
  let m = Machine.create ?hw ~frames:64 () in
  (* identity kernel: page 1 logged to index 0, log in page 2, extension
     pages 3.. allocated on demand *)
  let next_log_page = ref 3 in
  let logger = Machine.logger m in
  Logger.load_pmt logger ~page:1 ~log_index:0;
  Logger.set_log_entry logger ~index:0 ~mode:Logger.Normal
    ~addr:(Addr.addr_of_page 2);
  Logger.set_fault_handler logger (function
    | Logger.Pmt_miss _ -> Logger.Drop
    | Logger.Log_addr_invalid { log_index } ->
      let p = !next_log_page in
      incr next_log_page;
      Logger.set_log_entry logger ~index:log_index ~mode:Logger.Normal
        ~addr:(Addr.addr_of_page p);
      Logger.Fixed);
  m

let test_machine_logged_write_data_and_record () =
  let m = machine_fixture () in
  Machine.compute m 100;
  Machine.write m ~paddr:0x1040 ~size:4 ~mode:Machine.Write_through
    ~logged:true 0x1234;
  check "data written" 0x1234 (Machine.read m ~paddr:0x1040 ~size:4);
  settle (Machine.logger m);
  let r = Log_record.decode_from (Machine.mem m) ~paddr:0x2000 in
  check "record value" 0x1234 r.Log_record.value;
  check "record addr" 0x1040 r.Log_record.addr

let test_machine_logged_write_requires_write_through () =
  let m = machine_fixture () in
  Alcotest.check_raises "logged + write-back rejected"
    (Invalid_argument "Machine.write: logged pages must be write-through")
    (fun () ->
      Machine.write m ~paddr:0x1040 ~size:4 ~mode:Machine.Write_back
        ~logged:true 1)

let test_machine_write_through_slower_than_cached () =
  let m = machine_fixture () in
  (* unlogged cached writes to page 4 *)
  let t0 = Machine.time m in
  for i = 0 to 63 do
    Machine.write m ~paddr:(0x4000 + (i * 4)) ~size:4
      ~mode:Machine.Write_back ~logged:false i
  done;
  let cached = Machine.time m - t0 in
  let t1 = Machine.time m in
  for i = 0 to 63 do
    Machine.write m ~paddr:(0x1000 + (i * 4)) ~size:4
      ~mode:Machine.Write_through ~logged:true i
  done;
  let logged = Machine.time m - t1 in
  check_bool
    (Printf.sprintf "logged (%d) slower than cached (%d)" logged cached)
    true
    (logged > cached)

let test_machine_bcopy () =
  let m = machine_fixture () in
  for i = 0 to 31 do
    Machine.write_raw m ~paddr:(0x5000 + (i * 4)) ~size:4 (i * 3)
  done;
  let t0 = Machine.time m in
  Machine.bcopy m ~src:0x5000 ~dst:0x6000 ~len:128;
  check "bcopy cost" (Cycles.bcopy_base + (32 * Cycles.bcopy_per_word))
    (Machine.time m - t0);
  for i = 0 to 31 do
    check
      (Printf.sprintf "bcopy word %d" i)
      (i * 3)
      (Machine.read_raw m ~paddr:(0x6000 + (i * 4)) ~size:4)
  done

let test_machine_deferred_copy_flow () =
  let m = machine_fixture () in
  (* page 8 is a checkpoint source for destination page 9 *)
  Machine.write_raw m ~paddr:0x8010 ~size:4 111;
  Machine.dc_map m ~dst_page:9 ~src_addr:0x8000;
  check "read-through to source" 111 (Machine.read m ~paddr:0x9010 ~size:4);
  Machine.write m ~paddr:0x9010 ~size:4 ~mode:Machine.Write_back ~logged:false
    222;
  check "read modified" 222 (Machine.read m ~paddr:0x9010 ~size:4);
  check_bool "page dirty" true (Machine.dc_page_dirty m ~dst_page:9);
  Machine.dc_reset_page m ~dst_page:9;
  check "read source after reset" 111 (Machine.read m ~paddr:0x9010 ~size:4);
  check_bool "clean after reset" false (Machine.dc_page_dirty m ~dst_page:9)

let test_machine_on_chip_no_overload () =
  let m = machine_fixture ~hw:Logger.On_chip () in
  for i = 0 to 2999 do
    Machine.write m ~paddr:(0x1000 + (i * 4 mod Addr.page_size)) ~size:4
      ~mode:Machine.Write_through ~logged:true i
  done;
  settle (Machine.logger m);
  let p = Machine.perf m in
  check "no overload interrupts on-chip" 0 p.Perf.overloads;
  check "all records emitted" 3000 p.Perf.log_records

let suites =
  [
    ( "machine.addr",
      [
        Alcotest.test_case "basics" `Quick test_addr_basics;
        QCheck_alcotest.to_alcotest prop_addr_decompose;
        QCheck_alcotest.to_alcotest prop_addr_page_roundtrip;
      ] );
    ( "machine.physmem",
      [
        Alcotest.test_case "read-write" `Quick test_physmem_rw;
        Alcotest.test_case "truncation" `Quick test_physmem_truncates;
        Alcotest.test_case "allocation" `Quick test_physmem_alloc;
        Alcotest.test_case "alloc zero-fills" `Quick test_physmem_alloc_zeroed;
        Alcotest.test_case "bounds" `Quick test_physmem_bounds;
        Alcotest.test_case "blit" `Quick test_physmem_blit;
      ] );
    ( "machine.bus",
      [
        Alcotest.test_case "fcfs arbitration" `Quick test_bus_fcfs;
        Alcotest.test_case "track priority" `Quick test_bus_track_priority;
      ] );
    ( "machine.fifo",
      [
        Alcotest.test_case "drain" `Quick test_fifo_drain;
        Alcotest.test_case "overflow" `Quick test_fifo_overflow;
        Alcotest.test_case "head drain time" `Quick test_fifo_head_drain;
        Alcotest.test_case "wraparound" `Quick test_fifo_wraparound;
      ] );
    ( "machine.l1",
      [
        Alcotest.test_case "hit-miss" `Quick test_l1_hit_miss;
        Alcotest.test_case "write-through timing" `Quick
          test_l1_write_through_timing;
        Alcotest.test_case "dirty eviction" `Quick
          test_l1_write_back_dirty_eviction;
        Alcotest.test_case "invalidate page" `Quick test_l1_invalidate_page;
      ] );
    ( "machine.deferred-cache",
      [
        Alcotest.test_case "read redirection" `Quick test_dc_read_redirect;
        Alcotest.test_case "write merges line" `Quick test_dc_write_merges_line;
        Alcotest.test_case "dirty and reset" `Quick test_dc_dirty_and_reset;
        Alcotest.test_case "unmap" `Quick test_dc_unmap;
      ] );
    ( "machine.log-record",
      [
        Alcotest.test_case "roundtrip" `Quick test_log_record_roundtrip;
        QCheck_alcotest.to_alcotest prop_log_record_roundtrip;
      ] );
    ( "machine.logger",
      [
        Alcotest.test_case "single record" `Quick test_logger_single_record;
        Alcotest.test_case "sequential records" `Quick
          test_logger_sequential_records;
        Alcotest.test_case "on-chip virtual addresses" `Quick
          test_logger_virtual_addresses_on_chip;
        Alcotest.test_case "page crossing fault" `Quick
          test_logger_page_crossing_fault;
        Alcotest.test_case "pmt miss drops" `Quick test_logger_pmt_miss_drop;
        Alcotest.test_case "pmt conflict eviction" `Quick
          test_logger_pmt_conflict_eviction;
        Alcotest.test_case "overload" `Quick test_logger_overload;
        Alcotest.test_case "no overload with compute" `Quick
          test_logger_no_overload_with_compute;
        Alcotest.test_case "disabled" `Quick test_logger_disabled;
        Alcotest.test_case "indexed mode" `Quick test_logger_indexed_mode;
        Alcotest.test_case "direct-mapped mode" `Quick
          test_logger_direct_mapped_mode;
      ] );
    ( "machine.integration",
      [
        Alcotest.test_case "logged write data+record" `Quick
          test_machine_logged_write_data_and_record;
        Alcotest.test_case "logged requires write-through" `Quick
          test_machine_logged_write_requires_write_through;
        Alcotest.test_case "write-through slower than cached" `Quick
          test_machine_write_through_slower_than_cached;
        Alcotest.test_case "bcopy" `Quick test_machine_bcopy;
        Alcotest.test_case "deferred copy flow" `Quick
          test_machine_deferred_copy_flow;
        Alcotest.test_case "on-chip no overload" `Quick
          test_machine_on_chip_no_overload;
      ] );
  ]
