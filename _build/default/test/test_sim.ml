(* Tests for the optimistic simulation library: events, queues, the
   synthetic workload of Figures 7/8, and TimeWarp correctness (sequential
   equivalence, rollback, anti-messages). *)

open Lvm_sim

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Events and queues} *)

let ev ?(time = 0) ?(dst = 0) ?(payload = 0) ?(src = 0) ?(send_time = 0) uid =
  { Event.time; dst; payload; src; send_time; uid }

let test_event_order () =
  check_bool "time dominates" true
    (Event.compare (ev ~time:1 ~src:9 5) (ev ~time:2 ~src:0 1) < 0);
  check_bool "equal events" true (Event.compare (ev 3) (ev 3) = 0);
  check_bool "uid breaks ties" true (Event.compare (ev 1) (ev 2) < 0)

let prop_event_order_antisymmetric =
  let gen =
    QCheck.Gen.(
      let* time = int_bound 50 in
      let* dst = int_bound 5 in
      let* payload = int_bound 5 in
      let* src = int_bound 5 in
      let* uid = int_bound 100 in
      return { Event.time; dst; payload; src; send_time = 0; uid })
  in
  let arb = QCheck.make ~print:(Format.asprintf "%a" Event.pp) gen in
  QCheck.Test.make ~name:"event order antisymmetric" ~count:300
    (QCheck.pair arb arb) (fun (a, b) ->
      Event.compare a b = -Event.compare b a)

let test_queue_ordering () =
  let q =
    List.fold_left Event_queue.add Event_queue.empty
      [ ev ~time:5 1; ev ~time:1 2; ev ~time:3 3 ]
  in
  check "size" 3 (Event_queue.size q);
  (match Event_queue.min q with
  | Some e -> check "min is earliest" 1 e.Event.time
  | None -> Alcotest.fail "empty");
  Alcotest.(check (option int)) "min_time" (Some 1) (Event_queue.min_time q);
  let times = List.map (fun e -> e.Event.time) (Event_queue.to_list q) in
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5 ] times

let test_queue_remove_uid () =
  let q =
    List.fold_left Event_queue.add Event_queue.empty
      [ ev ~time:5 1; ev ~time:1 2 ]
  in
  (match Event_queue.remove_uid q ~uid:1 with
  | Some (e, q') ->
    check "removed event" 5 e.Event.time;
    check "one left" 1 (Event_queue.size q')
  | None -> Alcotest.fail "uid 1 should be present");
  check_bool "missing uid" true (Event_queue.remove_uid q ~uid:99 = None)

(* {1 Synthetic workload (Figures 7/8 shape)} *)

let params ?(events = 400) ?(c = 512) ?(s = 64) ?(w = 2) () =
  { Synthetic.default_params with Synthetic.events; c; s; w }

let test_synthetic_lvm_beats_copy () =
  let sp = Synthetic.speedup (params ~c:256 ~s:256 ~w:4 ()) in
  check_bool (Printf.sprintf "speedup %.2f > 1.3" sp) true (sp > 1.3)

let test_synthetic_speedup_decreases_with_c () =
  let s_small = Synthetic.speedup (params ~c:256 ~s:128 ~w:4 ()) in
  let s_large = Synthetic.speedup (params ~c:4096 ~s:128 ~w:4 ()) in
  check_bool
    (Printf.sprintf "speedup falls with compute (%.2f > %.2f)" s_small s_large)
    true (s_small > s_large);
  check_bool "large-c speedup near 1" true (s_large < 1.2 && s_large > 0.95)

let test_synthetic_speedup_grows_with_s () =
  let s32 = Synthetic.speedup (params ~c:512 ~s:32 ~w:1 ()) in
  let s256 = Synthetic.speedup (params ~c:512 ~s:256 ~w:1 ()) in
  check_bool
    (Printf.sprintf "bigger objects favor LVM (%.2f < %.2f)" s32 s256)
    true (s32 < s256)

let test_synthetic_overload_at_low_c () =
  let r =
    Synthetic.run (params ~events:2000 ~c:0 ~s:256 ~w:8 ())
      State_saving.Lvm_based
  in
  check_bool "logger overloaded" true (r.Synthetic.overloads > 0);
  let r' =
    Synthetic.run (params ~events:2000 ~c:512 ~s:256 ~w:8 ())
      State_saving.Lvm_based
  in
  check "no overload with compute" 0 r'.Synthetic.overloads

let test_synthetic_on_chip_no_overload () =
  let r =
    Synthetic.run ~hw:Lvm_machine.Logger.On_chip
      (params ~events:2000 ~c:0 ~s:256 ~w:8 ())
      State_saving.Lvm_based
  in
  check "on-chip never overloads" 0 r.Synthetic.overloads

let test_synthetic_page_protect_faults () =
  let r =
    Synthetic.run
      { (params ~events:500 ~c:256 ~s:64 ~w:2 ()) with
        Synthetic.checkpoint_interval = 100 }
      State_saving.Page_protect
  in
  check_bool "protect faults taken" true (r.Synthetic.protect_faults > 0)

let test_synthetic_records_counted () =
  let p = params ~events:100 ~c:300 ~s:64 ~w:3 () in
  let r = Synthetic.run p State_saving.Lvm_based in
  (* one marker plus w data writes per event *)
  check "records = events * (w+1)" (100 * 4) r.Synthetic.log_records

(* {1 TimeWarp} *)

let run_phold ~schedulers ~strategy ~objects ~population ~end_time =
  let app = Phold.app ~objects ~seed:7 () in
  let engine =
    Timewarp.create ~n_schedulers:schedulers ~strategy ~app ()
  in
  Phold.inject_population engine ~objects ~population ~seed:7;
  let result = Timewarp.run engine ~end_time in
  (engine, result)

let test_timewarp_sequential_baseline () =
  let _, r =
    run_phold ~schedulers:1 ~strategy:State_saving.Lvm_based ~objects:8
      ~population:6 ~end_time:150
  in
  check "no rollbacks with one scheduler" 0 r.Timewarp.total_rollbacks;
  check_bool "events committed" true (r.Timewarp.total_events_committed > 50);
  check "all processed events commit" r.Timewarp.total_events_processed
    r.Timewarp.total_events_committed

let test_timewarp_equivalence_lvm () =
  let e1, _ =
    run_phold ~schedulers:1 ~strategy:State_saving.Lvm_based ~objects:12
      ~population:8 ~end_time:200
  in
  let e4, r4 =
    run_phold ~schedulers:4 ~strategy:State_saving.Lvm_based ~objects:12
      ~population:8 ~end_time:200
  in
  Alcotest.(check (array int))
    "4-scheduler optimistic run commits the sequential execution"
    (Timewarp.state_vector e1) (Timewarp.state_vector e4);
  check_bool "4-way run committed something" true
    (r4.Timewarp.total_events_committed > 0)

let test_timewarp_equivalence_copy_vs_lvm () =
  let e_copy, _ =
    run_phold ~schedulers:3 ~strategy:State_saving.Copy_based ~objects:10
      ~population:6 ~end_time:200
  in
  let e_lvm, _ =
    run_phold ~schedulers:3 ~strategy:State_saving.Lvm_based ~objects:10
      ~population:6 ~end_time:200
  in
  Alcotest.(check (array int)) "state saving strategy is invisible"
    (Timewarp.state_vector e_copy) (Timewarp.state_vector e_lvm)

let test_timewarp_exercises_rollback () =
  (* a small batch window with many schedulers makes stragglers likely *)
  let _, r =
    run_phold ~schedulers:4 ~strategy:State_saving.Lvm_based ~objects:16
      ~population:12 ~end_time:400
  in
  check_bool
    (Printf.sprintf "rollbacks occurred (%d)" r.Timewarp.total_rollbacks)
    true
    (r.Timewarp.total_rollbacks > 0);
  check_bool "optimism overshoots" true
    (r.Timewarp.total_events_processed > r.Timewarp.total_events_committed)

let test_timewarp_event_conservation () =
  (* PHOLD conserves tokens: total committed events equal across runs *)
  let e1, r1 =
    run_phold ~schedulers:1 ~strategy:State_saving.Copy_based ~objects:9
      ~population:5 ~end_time:150
  in
  let _, r2 =
    run_phold ~schedulers:2 ~strategy:State_saving.Copy_based ~objects:9
      ~population:5 ~end_time:150
  in
  ignore e1;
  check "same committed count" r1.Timewarp.total_events_committed
    r2.Timewarp.total_events_committed;
  (* counters sum equals committed events *)
  let counter_sum = ref 0 in
  for obj = 0 to 8 do
    counter_sum := !counter_sum + Timewarp.read_state e1 ~obj ~word:1
  done;
  check "per-object counters sum to committed events"
    r1.Timewarp.total_events_committed !counter_sum

let prop_timewarp_equivalence =
  let gen =
    QCheck.Gen.(
      let* objects = int_range 4 14 in
      let* population = int_range 2 8 in
      let* schedulers = int_range 2 5 in
      let* end_time = int_range 60 250 in
      let* seed = int_bound 1000 in
      return (objects, population, schedulers, end_time, seed))
  in
  let print (o, p, s, e, seed) =
    Printf.sprintf "objects=%d pop=%d scheds=%d end=%d seed=%d" o p s e seed
  in
  QCheck.Test.make ~name:"optimistic == sequential (any shape)" ~count:15
    (QCheck.make ~print gen) (fun (objects, population, schedulers, end_time,
                                   seed) ->
      let app = Phold.app ~objects ~seed () in
      let run n strategy =
        let engine = Timewarp.create ~n_schedulers:n ~strategy ~app () in
        Phold.inject_population engine ~objects ~population ~seed;
        ignore (Timewarp.run engine ~end_time);
        Timewarp.state_vector engine
      in
      run 1 State_saving.Lvm_based = run schedulers State_saving.Lvm_based
      && run 1 State_saving.Lvm_based
         = run schedulers State_saving.Copy_based)

let suites =
  [
    ( "sim.event",
      [
        Alcotest.test_case "ordering" `Quick test_event_order;
        QCheck_alcotest.to_alcotest prop_event_order_antisymmetric;
      ] );
    ( "sim.queue",
      [
        Alcotest.test_case "ordering" `Quick test_queue_ordering;
        Alcotest.test_case "remove by uid" `Quick test_queue_remove_uid;
      ] );
    ( "sim.synthetic",
      [
        Alcotest.test_case "lvm beats copy" `Quick
          test_synthetic_lvm_beats_copy;
        Alcotest.test_case "speedup falls with c" `Quick
          test_synthetic_speedup_decreases_with_c;
        Alcotest.test_case "speedup grows with s" `Quick
          test_synthetic_speedup_grows_with_s;
        Alcotest.test_case "overload at low c" `Quick
          test_synthetic_overload_at_low_c;
        Alcotest.test_case "on-chip no overload" `Quick
          test_synthetic_on_chip_no_overload;
        Alcotest.test_case "page-protect faults" `Quick
          test_synthetic_page_protect_faults;
        Alcotest.test_case "record accounting" `Quick
          test_synthetic_records_counted;
      ] );
    ( "sim.timewarp",
      [
        Alcotest.test_case "sequential baseline" `Quick
          test_timewarp_sequential_baseline;
        Alcotest.test_case "4-way equals sequential" `Quick
          test_timewarp_equivalence_lvm;
        Alcotest.test_case "copy equals lvm" `Quick
          test_timewarp_equivalence_copy_vs_lvm;
        Alcotest.test_case "rollback exercised" `Quick
          test_timewarp_exercises_rollback;
        Alcotest.test_case "event conservation" `Quick
          test_timewarp_event_conservation;
        QCheck_alcotest.to_alcotest prop_timewarp_equivalence;
      ] );
  ]

(* {1 Queueing network (second workload)} *)

let run_queueing ~schedulers ~strategy ~stations ~customers ~end_time ~seed =
  let app = Queueing.app ~stations ~seed in
  let engine = Timewarp.create ~n_schedulers:schedulers ~strategy ~app () in
  Queueing.inject_customers engine ~stations ~customers ~seed;
  let r = Timewarp.run engine ~end_time in
  (engine, r)

let test_queueing_equivalence () =
  let e1, r1 =
    run_queueing ~schedulers:1 ~strategy:State_saving.Lvm_based ~stations:6
      ~customers:5 ~end_time:300 ~seed:3
  in
  let e3, r3 =
    run_queueing ~schedulers:3 ~strategy:State_saving.Lvm_based ~stations:6
      ~customers:5 ~end_time:300 ~seed:3
  in
  Alcotest.(check (array int)) "3-way equals sequential"
    (Timewarp.state_vector e1) (Timewarp.state_vector e3);
  check "same committed events" r1.Timewarp.total_events_committed
    r3.Timewarp.total_events_committed

let test_queueing_customer_conservation () =
  let e, _ =
    run_queueing ~schedulers:2 ~strategy:State_saving.Copy_based ~stations:5
      ~customers:4 ~end_time:250 ~seed:9
  in
  (* customers are queued, in service, or in flight as events: never more
     than the population is present at the stations *)
  let present = Queueing.customers_present e ~stations:5 in
  check_bool
    (Printf.sprintf "0 <= present (%d) <= population" present)
    true
    (present >= 0 && present <= 4);
  check_bool "work happened" true (Queueing.total_served e ~stations:5 > 10)

let test_queueing_rollbacks_occur () =
  let _, r =
    run_queueing ~schedulers:3 ~strategy:State_saving.Lvm_based ~stations:9
      ~customers:8 ~end_time:600 ~seed:5
  in
  check_bool "optimism exercised" true (r.Timewarp.total_rollbacks > 0)

let queueing_suite =
  ( "sim.queueing",
    [
      Alcotest.test_case "equivalence" `Quick test_queueing_equivalence;
      Alcotest.test_case "customer conservation" `Quick
        test_queueing_customer_conservation;
      Alcotest.test_case "rollbacks occur" `Quick test_queueing_rollbacks_occur;
    ] )

let suites = suites @ [ queueing_suite ]

(* {1 Conservative engine} *)

let test_conservative_equals_optimistic () =
  let app = Phold.app ~objects:10 ~seed:13 () in
  let cons = Conservative.create ~n_schedulers:3 ~app () in
  let opt =
    Timewarp.create ~n_schedulers:3 ~strategy:State_saving.Lvm_based ~app ()
  in
  for i = 0 to 5 do
    let h = Phold.hash 13 i 17 23 in
    let time = 1 + (h mod 10) and dst = h / 16 mod 10
    and payload = h land 0xFFFF in
    Conservative.inject cons ~time ~dst ~payload;
    Timewarp.inject opt ~time ~dst ~payload
  done;
  let rc = Conservative.run cons ~end_time:200 in
  let ro = Timewarp.run opt ~end_time:200 in
  Alcotest.(check (array int)) "conservative == optimistic"
    (Conservative.state_vector cons) (Timewarp.state_vector opt);
  check "conservative processes each event exactly once"
    ro.Timewarp.total_events_committed rc.Conservative.events_processed

let test_conservative_never_rolls_back () =
  let app = Queueing.app ~stations:6 ~seed:21 in
  let cons = Conservative.create ~n_schedulers:3 ~app () in
  Conservative.inject cons ~time:1 ~dst:0 ~payload:0;
  Conservative.inject cons ~time:2 ~dst:3 ~payload:1;
  let r = Conservative.run cons ~end_time:300 in
  check_bool "made progress" true (r.Conservative.events_processed > 20);
  check_bool "idles at barriers" true
    (r.Conservative.elapsed_cycles * 3 > r.Conservative.busy_cycles)

let test_optimism_beats_conservative_when_imbalanced () =
  (* with locality, optimistic schedulers run ahead instead of idling at
     every barrier — the paper's core argument for optimism *)
  let app = Phold.app ~objects:12 ~locality_pct:90 ~compute:400 ~seed:31 () in
  let cons = Conservative.create ~n_schedulers:4 ~app () in
  let opt =
    Timewarp.create ~n_schedulers:4 ~strategy:State_saving.Lvm_based ~app ()
  in
  for i = 0 to 7 do
    let h = Phold.hash 31 i 17 23 in
    let time = 1 + (h mod 10) and dst = h / 16 mod 12
    and payload = h land 0xFFFF in
    Conservative.inject cons ~time ~dst ~payload;
    Timewarp.inject opt ~time ~dst ~payload
  done;
  let rc = Conservative.run cons ~end_time:400 in
  let ro = Timewarp.run opt ~end_time:400 in
  Alcotest.(check (array int)) "same results"
    (Conservative.state_vector cons) (Timewarp.state_vector opt);
  check_bool
    (Printf.sprintf "optimistic faster (%d < %d)" ro.Timewarp.elapsed_cycles
       rc.Conservative.elapsed_cycles)
    true
    (ro.Timewarp.elapsed_cycles < rc.Conservative.elapsed_cycles)

let conservative_suite =
  ( "sim.conservative",
    [
      Alcotest.test_case "equals optimistic" `Quick
        test_conservative_equals_optimistic;
      Alcotest.test_case "never rolls back" `Quick
        test_conservative_never_rolls_back;
      Alcotest.test_case "optimism wins when imbalanced" `Quick
        test_optimism_beats_conservative_when_imbalanced;
    ] )

let suites = suites @ [ conservative_suite ]

(* {1 Save-slot regression}

   A plain ring allocator for copy-based saves can wrap into still-live
   slots once rollbacks waste positions, silently corrupting restores
   (found by the queueing soak). This pins the fix: a rollback-heavy
   copy-based run over many GVT epochs stays equivalent to sequential. *)

let test_copy_save_slots_survive_rollback_churn () =
  let app = Queueing.app ~stations:12 ~seed:4 in
  let run n =
    let e = Timewarp.create ~n_schedulers:n
        ~strategy:State_saving.Copy_based ~app () in
    Queueing.inject_customers e ~stations:12 ~customers:10 ~seed:4;
    let r = Timewarp.run e ~end_time:700 in
    (Timewarp.state_vector e, r.Timewarp.total_rollbacks)
  in
  let s1, _ = run 1 in
  let s4, rollbacks = run 4 in
  check_bool "run is rollback-heavy" true (rollbacks > 100);
  Alcotest.(check (array int)) "no save corruption under churn" s1 s4

let regression_suite =
  ( "sim.regressions",
    [
      Alcotest.test_case "save slots under rollback churn" `Quick
        test_copy_save_slots_survive_rollback_churn;
    ] )

let suites = suites @ [ regression_suite ]
