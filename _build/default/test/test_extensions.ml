(* Tests for the extensions the paper calls out: Li/Appel checkpointing
   as a selectable facility (Section 5.1), streaming log-based
   consistency (Section 2.6), and audit code for object placement
   (Section 2.7). *)

open Lvm_vm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  (k, sp)

(* {1 Li/Appel protect-checkpointing} *)

let ppc_fixture () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:(4 * Lvm_machine.Addr.page_size) in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp region in
  let mgr = Protect_checkpoint.manager k in
  let c = Protect_checkpoint.attach mgr ~space:sp region in
  (k, sp, base, c)

let test_ppc_checkpoint_restore () =
  let k, sp, base, c = ppc_fixture () in
  Kernel.write_word k sp base 100;
  Kernel.write_word k sp (base + 4096) 200;
  Protect_checkpoint.checkpoint c;
  Kernel.write_word k sp base 999;
  Kernel.write_word k sp (base + 8) 888;
  check "modified pages" 1 (Protect_checkpoint.modified_pages c);
  Protect_checkpoint.restore c;
  check "word restored" 100 (Kernel.read_word k sp base);
  check "second word restored" 0 (Kernel.read_word k sp (base + 8));
  check "untouched page intact" 200 (Kernel.read_word k sp (base + 4096))

let test_ppc_one_fault_per_page_per_epoch () =
  let k, sp, base, c = ppc_fixture () in
  Protect_checkpoint.checkpoint c;
  Kernel.write_word k sp base 1;
  Kernel.write_word k sp (base + 4) 2;
  Kernel.write_word k sp (base + 8) 3;
  check "single fault for the page" 1 (Protect_checkpoint.faults_taken c);
  Kernel.write_word k sp (base + 4096) 4;
  check "second page faults once" 2 (Protect_checkpoint.faults_taken c)

let test_ppc_successive_epochs () =
  let k, sp, base, c = ppc_fixture () in
  Protect_checkpoint.checkpoint c;
  Kernel.write_word k sp base 10;
  Protect_checkpoint.checkpoint c (* commits 10 as the new baseline *);
  Kernel.write_word k sp base 20;
  Protect_checkpoint.restore c;
  check "rolls back to latest checkpoint only" 10 (Kernel.read_word k sp base)

let test_ppc_restore_without_writes () =
  let k, sp, base, c = ppc_fixture () in
  Kernel.write_word k sp base 5;
  Protect_checkpoint.checkpoint c;
  Protect_checkpoint.restore c;
  check "no-op restore" 5 (Kernel.read_word k sp base)

let test_ppc_restore_is_remap_not_copy () =
  let k, sp, base, c = ppc_fixture () in
  Protect_checkpoint.checkpoint c;
  (* dirty one page *)
  Kernel.write_word k sp base 1;
  let t0 = Kernel.time k in
  Protect_checkpoint.restore c;
  let restore_cycles = Kernel.time k - t0 in
  (* a restore must cost far less than copying the page back *)
  check_bool
    (Printf.sprintf "restore (%d cycles) cheaper than a page copy (%d)"
       restore_cycles
       (Lvm_machine.Cycles.bcopy_base
        + (1024 * Lvm_machine.Cycles.bcopy_per_word)))
    true
    (restore_cycles
     < Lvm_machine.Cycles.bcopy_base
       + (1024 * Lvm_machine.Cycles.bcopy_per_word))

let prop_ppc_restore_equals_checkpoint_state =
  QCheck.Test.make ~name:"protect-checkpoint restore = checkpoint state"
    ~count:30
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 20)
           (pair (int_bound 255) (int_bound 999)))
        (list_of_size (Gen.int_range 0 20)
           (pair (int_bound 255) (int_bound 999))))
    (fun (before, after) ->
      let k, sp, base, c = ppc_fixture () in
      List.iter (fun (w, v) -> Kernel.write_word k sp (base + (w * 4)) v)
        before;
      Protect_checkpoint.checkpoint c;
      let expect = Array.make 256 0 in
      List.iter (fun (w, v) -> expect.(w) <- v) before;
      List.iter (fun (w, v) -> Kernel.write_word k sp (base + (w * 4)) v)
        after;
      Protect_checkpoint.restore c;
      let ok = ref true in
      for w = 0 to 255 do
        if Kernel.read_word k sp (base + (w * 4)) <> expect.(w) then
          ok := false
      done;
      !ok)

(* {1 Streaming consistency} *)

open Lvm_consistency

let test_streaming_reduces_release_work () =
  let k, sp = boot () in
  let t = Shared_segment.create k sp ~size:8192 Shared_segment.Log_based in
  Shared_segment.acquire t;
  for i = 0 to 63 do
    Shared_segment.write_word t ~off:(i * 8) i;
    (* stream every 16 writes, as a producer naturally would *)
    if i mod 16 = 15 then ignore (Shared_segment.stream t)
  done;
  let s = Shared_segment.release t in
  check_bool "replica consistent" true (Shared_segment.replica_consistent t);
  check "release sends only the residue" 0 s.Shared_segment.words_sent;
  (* compare to a non-streaming section of the same size *)
  Shared_segment.acquire t;
  for i = 0 to 63 do
    Shared_segment.write_word t ~off:(i * 8) (i + 1000)
  done;
  let s' = Shared_segment.release t in
  check "non-streaming release sends everything" 64
    s'.Shared_segment.words_sent;
  check_bool
    (Printf.sprintf "streamed release cheaper (%d < %d)"
       s.Shared_segment.release_cycles s'.Shared_segment.release_cycles)
    true
    (s.Shared_segment.release_cycles < s'.Shared_segment.release_cycles)

let test_streaming_noop_for_twin_diff () =
  let k, sp = boot () in
  let t = Shared_segment.create k sp ~size:8192 Shared_segment.Twin_diff in
  Shared_segment.acquire t;
  Shared_segment.write_word t ~off:0 7;
  let s = Shared_segment.stream t in
  check "twin/diff cannot stream" 0 s.Shared_segment.words_sent;
  ignore (Shared_segment.release t);
  check_bool "release still propagates" true
    (Shared_segment.consumer_word t ~off:0 = 7)

(* {1 Audit} *)

let audit_fixture () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let region = Kernel.create_region k seg in
  let ls =
    Kernel.create_log_segment k ~size:(8 * Lvm_machine.Addr.page_size)
  in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  (k, sp, seg, region, ls, base)

let test_audit_clean_program () =
  let k, sp, seg, _region, ls, base = audit_fixture () in
  let snap = Lvm_tools.Audit.snapshot k seg in
  for i = 0 to 19 do
    Kernel.write_word k sp (base + (i * 4)) (i * 7)
  done;
  check_bool "all writes logged" true (Lvm_tools.Audit.verify k ~log:ls snap)

let test_audit_detects_unlogged_write () =
  let k, sp, seg, region, ls, base = audit_fixture () in
  let snap = Lvm_tools.Audit.snapshot k seg in
  Kernel.write_word k sp base 1 (* logged *);
  Kernel.set_logging_enabled k region false;
  Kernel.write_word k sp (base + 40) 2 (* escapes the log! *);
  Kernel.set_logging_enabled k region true;
  Kernel.write_word k sp (base + 80) 3 (* logged *);
  Alcotest.(check (list int)) "exactly the unlogged offset" [ 40 ]
    (Lvm_tools.Audit.unlogged_changes k ~log:ls snap)

let test_audit_overwrite_back_is_clean () =
  (* a location overwritten back to its snapshot value by logged writes
     must not be flagged *)
  let k, sp, seg, _region, ls, base = audit_fixture () in
  Kernel.write_word k sp base 5;
  let snap = Lvm_tools.Audit.snapshot k seg in
  Kernel.write_word k sp base 9;
  Kernel.write_word k sp base 5;
  check_bool "clean" true (Lvm_tools.Audit.verify k ~log:ls snap)

let test_audit_subword_writes () =
  let k, sp, seg, _region, ls, base = audit_fixture () in
  let snap = Lvm_tools.Audit.snapshot k seg in
  Kernel.write k sp ~vaddr:(base + 13) ~size:1 0xAB;
  Kernel.write k sp ~vaddr:(base + 18) ~size:2 0x1234;
  check_bool "byte and halfword writes audited via replay" true
    (Lvm_tools.Audit.verify k ~log:ls snap)

let suites =
  [
    ( "ext.protect-checkpoint",
      [
        Alcotest.test_case "checkpoint/restore" `Quick
          test_ppc_checkpoint_restore;
        Alcotest.test_case "one fault per page" `Quick
          test_ppc_one_fault_per_page_per_epoch;
        Alcotest.test_case "successive epochs" `Quick
          test_ppc_successive_epochs;
        Alcotest.test_case "no-op restore" `Quick
          test_ppc_restore_without_writes;
        Alcotest.test_case "restore is remap" `Quick
          test_ppc_restore_is_remap_not_copy;
        QCheck_alcotest.to_alcotest prop_ppc_restore_equals_checkpoint_state;
      ] );
    ( "ext.streaming-consistency",
      [
        Alcotest.test_case "reduces release work" `Quick
          test_streaming_reduces_release_work;
        Alcotest.test_case "twin/diff cannot stream" `Quick
          test_streaming_noop_for_twin_diff;
      ] );
    ( "ext.audit",
      [
        Alcotest.test_case "clean program" `Quick test_audit_clean_program;
        Alcotest.test_case "detects unlogged write" `Quick
          test_audit_detects_unlogged_write;
        Alcotest.test_case "overwrite back" `Quick
          test_audit_overwrite_back_is_clean;
        Alcotest.test_case "sub-word writes" `Quick test_audit_subword_writes;
      ] );
  ]

(* {1 Arena placement (Section 2.7)} *)

let test_arena_placement_controls_logging () =
  let k, sp = boot () in
  let arena = Lvm.Arena.create k sp in
  let counter = Lvm.Arena.alloc arena ~logged:true ~words:2 in
  let scratch = Lvm.Arena.alloc arena ~logged:false ~words:2 in
  Kernel.write_word k sp counter 10;
  Kernel.write_word k sp scratch 999;
  Kernel.write_word k sp (counter + 4) 20;
  let values =
    List.map
      (fun (r : Lvm_machine.Log_record.t) -> r.Lvm_machine.Log_record.value)
      (Lvm.Log_reader.to_list k (Lvm.Arena.log arena))
  in
  Alcotest.(check (list int)) "only logged-arena writes recorded" [ 10; 20 ]
    values;
  check_bool "placement query" true (Lvm.Arena.is_logged_addr arena counter);
  check_bool "scratch is unlogged" false
    (Lvm.Arena.is_logged_addr arena scratch)

let test_arena_distinct_objects () =
  let k, sp = boot () in
  let arena = Lvm.Arena.create k sp in
  let a = Lvm.Arena.alloc arena ~logged:true ~words:4 in
  let b = Lvm.Arena.alloc arena ~logged:true ~words:4 in
  check "objects do not overlap" 16 (b - a);
  check "accounting" 8 (Lvm.Arena.allocated_words arena ~logged:true);
  Lvm.Arena.reset arena ~logged:true;
  check "reset reclaims" 0 (Lvm.Arena.allocated_words arena ~logged:true);
  let a' = Lvm.Arena.alloc arena ~logged:true ~words:1 in
  check "bump restarts" a a'

let test_arena_exhaustion () =
  let k, sp = boot () in
  let arena =
    Lvm.Arena.create ~logged_bytes:Lvm_machine.Addr.page_size k sp
  in
  ignore (Lvm.Arena.alloc arena ~logged:true ~words:1024);
  Alcotest.check_raises "full" Lvm.Arena.Arena_full (fun () ->
      ignore (Lvm.Arena.alloc arena ~logged:true ~words:1))

let arena_suite =
  ( "ext.arena",
    [
      Alcotest.test_case "placement controls logging" `Quick
        test_arena_placement_controls_logging;
      Alcotest.test_case "distinct objects" `Quick test_arena_distinct_objects;
      Alcotest.test_case "exhaustion" `Quick test_arena_exhaustion;
    ] )

let suites = suites @ [ arena_suite ]

(* {1 Pre-image records and constant-time reverse execution (4.6)} *)

let undo_fixture () =
  let k = Kernel.create ~hw:Lvm_machine.Logger.On_chip
      ~record_old_values:true () in
  let sp = Kernel.create_space k in
  let working = Kernel.create_segment k ~size:4096 in
  let ckpt = Kernel.create_segment k ~size:4096 in
  Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
  let region = Kernel.create_region k working in
  let ls =
    Kernel.create_log_segment k ~size:(16 * Lvm_machine.Addr.page_size)
  in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  (k, sp, working, region, ls, base)

let test_pre_image_records_emitted () =
  let k, sp, _w, _r, ls, base = undo_fixture () in
  Kernel.write_word k sp base 1;
  Kernel.write_word k sp base 2;
  let records = Lvm.Log_reader.to_list k ls in
  check "two records per write" 4 (List.length records);
  (match records with
  | [ p1; n1; p2; n2 ] ->
    check_bool "pre-image flags" true
      (p1.Lvm_machine.Log_record.pre_image
       && (not n1.Lvm_machine.Log_record.pre_image)
       && p2.Lvm_machine.Log_record.pre_image
       && not n2.Lvm_machine.Log_record.pre_image);
    check "first pre-image holds initial value" 0
      p1.Lvm_machine.Log_record.value;
    check "first write value" 1 n1.Lvm_machine.Log_record.value;
    check "second pre-image holds overwritten value" 1
      p2.Lvm_machine.Log_record.value;
    check "second write value" 2 n2.Lvm_machine.Log_record.value
  | _ -> Alcotest.fail "expected four records")

let test_pre_images_invisible_to_readers () =
  let k, sp, working, _r, ls, base = undo_fixture () in
  Kernel.write_word k sp base 7;
  Kernel.write_word k sp (base + 4) 8;
  (* watchpoints, traces and audits see one hit per write *)
  check "watchpoint sees the writes only" 1
    (List.length (Lvm_tools.Watchpoint.hits k ~log:ls ~watched:working
                    ~off:0 ~len:4));
  check "trace has two entries" 2
    (List.length (Lvm_tools.Address_trace.of_log k ls))

let test_reverse_exec_constant_time_undo () =
  let k, sp, working, region, ls, base = undo_fixture () in
  for i = 1 to 50 do
    Kernel.write_word k sp base (i * 10)
  done;
  let rx =
    Lvm_tools.Reverse_exec.create k ~space:sp ~working ~region ~base ~log:ls
  in
  check "fifty writes indexed" 50 (Lvm_tools.Reverse_exec.length rx);
  (* one backward step must cost far less than a reset + replay of the
     49-record prefix: it applies exactly one pre-image *)
  let t0 = Kernel.time k in
  ignore (Lvm_tools.Reverse_exec.step_back rx);
  let undo_cost = Kernel.time k - t0 in
  check "state stepped back" 490 (Kernel.read_word k sp base);
  check_bool
    (Printf.sprintf "undo is constant work (%d cycles)" undo_cost)
    true
    (undo_cost < 200);
  (* walk all the way back with undos, checking every state *)
  let ok = ref true in
  for expected = 48 downto 0 do
    ignore (Lvm_tools.Reverse_exec.step_back rx);
    if Kernel.read_word k sp base <> expected * 10 then ok := false
  done;
  check_bool "every undo state correct" true !ok;
  Lvm_tools.Reverse_exec.detach rx;
  check "detach restores failure state" 500 (Kernel.read_word k sp base)

let prop_undo_equals_replay =
  QCheck.Test.make ~name:"pre-image undo = prefix replay" ~count:30
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30)
           (pair (int_bound 15) (int_bound 999)))
        (int_bound 30))
    (fun (writes, pos) ->
      let k, sp, working, region, ls, base = undo_fixture () in
      List.iter (fun (w, v) -> Kernel.write_word k sp (base + (w * 4)) v)
        writes;
      let rx =
        Lvm_tools.Reverse_exec.create k ~space:sp ~working ~region ~base
          ~log:ls
      in
      let n = min pos (Lvm_tools.Reverse_exec.length rx) in
      Lvm_tools.Reverse_exec.seek rx n (* backward: uses pre-images *);
      let expect = Array.make 16 0 in
      List.iteri (fun i (w, v) -> if i < n then expect.(w) <- v) writes;
      let ok = ref true in
      for w = 0 to 15 do
        if Kernel.read_word k sp (base + (w * 4)) <> expect.(w) then
          ok := false
      done;
      !ok)

let undo_suite =
  ( "ext.pre-image-undo",
    [
      Alcotest.test_case "pre-image records emitted" `Quick
        test_pre_image_records_emitted;
      Alcotest.test_case "invisible to readers" `Quick
        test_pre_images_invisible_to_readers;
      Alcotest.test_case "constant-time undo" `Quick
        test_reverse_exec_constant_time_undo;
      QCheck_alcotest.to_alcotest prop_undo_equals_replay;
    ] )

let suites = suites @ [ undo_suite ]
