(* Band tests over the reproduction experiments: each paper table/figure
   claim is asserted against the measured values (with quick sweep sizes,
   so these run in seconds while still checking the published shapes). *)

open Lvm_experiments

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let in_band ?(tolerance = 0.10) ~paper measured =
  let lo = paper *. (1. -. tolerance) and hi = paper *. (1. +. tolerance) in
  measured >= lo && measured <= hi

(* {1 Table 2} *)

let test_table2_exact () =
  match Exp_table2.measure () with
  | [ wt; block; dma ] ->
    check "write-through total" 6 wt.Exp_table2.total;
    check "write-through bus" 5 wt.Exp_table2.bus;
    check "block write total" 9 block.Exp_table2.total;
    check "block write bus" 8 block.Exp_table2.bus;
    check "dma total" 18 dma.Exp_table2.total;
    check "dma bus" 8 dma.Exp_table2.bus
  | _ -> Alcotest.fail "expected three measurements"

(* {1 Table 3} *)

let test_table3_bands () =
  let r = Exp_table3.measure ~txns:200 () in
  check "rvm single write" 3515 r.Exp_table3.rvm_single_write;
  check "rlvm single write" 16 r.Exp_table3.rlvm_single_write;
  check_bool
    (Printf.sprintf "rvm tps %.0f within 10%% of 418" r.Exp_table3.rvm_tps)
    true
    (in_band ~paper:418. r.Exp_table3.rvm_tps);
  check_bool
    (Printf.sprintf "rlvm tps %.0f within 10%% of 552" r.Exp_table3.rlvm_tps)
    true
    (in_band ~paper:552. r.Exp_table3.rlvm_tps);
  check_bool "rvm in-txn fraction near 25%" true
    (r.Exp_table3.rvm_in_txn_fraction > 0.18
     && r.Exp_table3.rvm_in_txn_fraction < 0.32);
  check_bool "rlvm in-txn fraction near 1%" true
    (r.Exp_table3.rlvm_in_txn_fraction < 0.03)

(* {1 Figure 7} *)

let test_fig7_shape () =
  let curves = Exp_fig7.measure ~events:600 ~cs:[ 256; 1024; 8192 ] () in
  List.iter
    (fun cu ->
      (* speedup decreases with c *)
      let speeds = List.map (fun p -> p.Exp_fig7.speedup) cu.Exp_fig7.points
      in
      check_bool
        (Printf.sprintf "w=%d,s=%d monotone decreasing" cu.Exp_fig7.w
           cu.Exp_fig7.s)
        true
        (speeds = List.sort (fun a b -> compare b a) speeds);
      (* large-c speedup is a few percent *)
      let last = List.nth speeds (List.length speeds - 1) in
      check_bool "large-c speedup small but >= ~1" true
        (last > 0.98 && last < 1.15))
    curves;
  (* larger objects benefit more at moderate c *)
  let at_c256 cu = (List.hd cu.Exp_fig7.points).Exp_fig7.speedup in
  let s32 = at_c256 (List.nth curves 0) in
  let s256 = at_c256 (List.nth curves 3) in
  check_bool
    (Printf.sprintf "s=256 (%.2f) beats s=32 (%.2f) at c=256" s256 s32)
    true (s256 > s32)

let test_fig7_overload_collapse () =
  (* at small c and w=8 the logger overloads and the advantage collapses *)
  let curves = Exp_fig7.measure ~events:1200 ~cs:[ 64 ] () in
  let w8 = List.nth curves 3 in
  let p = List.hd w8.Exp_fig7.points in
  check_bool "w=8 overloads at c=64" true (p.Exp_fig7.lvm_overloads > 0);
  let w1 = List.nth curves 0 in
  let p1 = List.hd w1.Exp_fig7.points in
  check_bool
    (Printf.sprintf "overload collapses speedup (%.2f < %.2f)"
       p.Exp_fig7.speedup p1.Exp_fig7.speedup)
    true
    (p.Exp_fig7.speedup < p1.Exp_fig7.speedup)

(* {1 Figure 8} *)

let test_fig8_slow_decrease () =
  let curves = Exp_fig8.measure ~events:600 ~fractions:[ 0.125; 0.5; 1.0 ] ()
  in
  List.iter
    (fun cu ->
      match cu.Exp_fig8.points with
      | [ lo; mid; hi ] ->
        check_bool "decreasing in fraction" true
          (lo.Exp_fig8.speedup >= mid.Exp_fig8.speedup
           && mid.Exp_fig8.speedup >= hi.Exp_fig8.speedup -. 0.02);
        (* "relatively little change" between 1/8 and 1/2 *)
        check_bool
          (Printf.sprintf "slow decrease (%.2f -> %.2f)" lo.Exp_fig8.speedup
             mid.Exp_fig8.speedup)
          true
          (lo.Exp_fig8.speedup -. mid.Exp_fig8.speedup < 0.25)
      | _ -> Alcotest.fail "expected three points")
    curves

(* {1 Figure 9} *)

let test_fig9_crossover_band () =
  List.iter
    (fun segment_kb ->
      let curve = Exp_fig9.measure ~segment_kb () in
      match curve.Exp_fig9.crossover_fraction with
      | Some f ->
        check_bool
          (Printf.sprintf "%dKB crossover %.2f near 2/3" segment_kb f)
          true
          (f > 0.55 && f < 0.80)
      | None -> Alcotest.fail "no crossover found")
    [ 32; 512 ]

let test_fig9_reset_linear_in_dirty () =
  let curve = Exp_fig9.measure ~segment_kb:32
      ~fractions:[ 0.0; 0.25; 0.5; 1.0 ] () in
  match curve.Exp_fig9.points with
  | [ p0; p25; p50; p100 ] ->
    check_bool "reset at 0 dirty nearly free" true
      (p0.Exp_fig9.reset_kcycles < 0.5);
    let slope1 = p50.Exp_fig9.reset_kcycles -. p25.Exp_fig9.reset_kcycles in
    let slope2 = p100.Exp_fig9.reset_kcycles /. 2. -. slope1 in
    ignore slope2;
    check_bool "linear growth" true
      (in_band ~tolerance:0.15
         ~paper:(p100.Exp_fig9.reset_kcycles /. 4.)
         slope1);
    check_bool "bcopy flat" true
      (p0.Exp_fig9.bcopy_kcycles = p100.Exp_fig9.bcopy_kcycles)
  | _ -> Alcotest.fail "expected four points"

(* {1 Figures 10-12} *)

let test_fig10_flat_gap_grows_with_cluster () =
  let clusters = Exp_fig10.measure ~iterations:2000 ~cs:[ 512 ] () in
  let gap cl =
    let p = List.hd cl.Exp_fig10.points in
    p.Exp_fig10.logged -. p.Exp_fig10.unlogged
  in
  match clusters with
  | [ c2; c4; c8 ] ->
    check_bool "logging costs more" true (gap c2 > 0.);
    check_bool
      (Printf.sprintf "gap grows with burst (%.2f <= %.2f <= %.2f)" (gap c2)
         (gap c4) (gap c8))
      true
      (gap c2 <= gap c4 +. 0.01 && gap c4 <= gap c8 +. 0.01)
  | _ -> Alcotest.fail "expected three clusters"

let test_fig11_overload_dynamics () =
  let points = Exp_fig11.measure ~iterations:8000 ~cs:[ 0; 27; 60 ] () in
  match points with
  | [ p0; p27; p60 ] ->
    check_bool "overloads at c=0" true (p0.Exp_fig11.overloads_per_1000 > 0.);
    check_bool "no overloads at c=27" true
      (p27.Exp_fig11.overloads_per_1000 = 0.);
    check_bool
      (Printf.sprintf "overload penalty %.0f > 30k" p0.Exp_fig11.overload_cost)
      true
      (p0.Exp_fig11.overload_cost > 30_000.);
    (* the paper's counterintuitive result: per-iteration time decreases
       as computation increases through the overload regime *)
    check_bool
      (Printf.sprintf "cost falls with compute (%.1f > %.1f)"
         p0.Exp_fig11.logged_per_iter p27.Exp_fig11.logged_per_iter)
      true
      (p0.Exp_fig11.logged_per_iter > p27.Exp_fig11.logged_per_iter);
    (* out of overload, logging adds a small constant *)
    check_bool "flat-region logging overhead small" true
      (p60.Exp_fig11.logged_per_iter -. p60.Exp_fig11.unlogged_per_iter < 10.)
  | _ -> Alcotest.fail "expected three points"

(* {1 Ablations} *)

let test_onchip_never_overloads () =
  let points = Exp_onchip.measure ~iterations:4000 ~cs:[ 0; 30 ] () in
  List.iter
    (fun p ->
      check "on-chip overloads" 0 p.Exp_onchip.onchip_overloads;
      check_bool "on-chip no slower than prototype" true
        (p.Exp_onchip.onchip_per_iter
         <= p.Exp_onchip.prototype_per_iter +. 0.01))
    points;
  let p0 = List.hd points in
  check_bool "prototype overloads at c=0" true
    (p0.Exp_onchip.prototype_overloads > 0)

let test_state_saving_ranking () =
  let settings = Exp_pageprot.measure ~events:600
      ~settings:[ (512, 256, 4) ] () in
  match settings with
  | [ st ] -> (
    match st.Exp_pageprot.rows with
    | [ copy; pageprot; lvm ] ->
      check_bool "lvm cheapest" true
        (lvm.Exp_pageprot.per_event < copy.Exp_pageprot.per_event
         && lvm.Exp_pageprot.per_event < pageprot.Exp_pageprot.per_event);
      check_bool "page-protect takes faults" true
        (pageprot.Exp_pageprot.protect_faults > 0)
    | _ -> Alcotest.fail "expected three rows")
  | _ -> Alcotest.fail "expected one setting"

let test_consistency_sparse_wins () =
  let rows = Exp_consistency.measure () in
  let sparse = List.hd rows in
  check_bool "log-based much cheaper when sparse" true
    (sparse.Exp_consistency.log_release * 4
     < sparse.Exp_consistency.twin_release);
  (* the overwrite-heavy dense case can favor twin/diff (Section 2.6) *)
  let dense = List.nth rows (List.length rows - 1) in
  check_bool "dense case is twin/diff's best ratio" true
    (float_of_int dense.Exp_consistency.log_release
     /. float_of_int dense.Exp_consistency.twin_release
     > float_of_int sparse.Exp_consistency.log_release
       /. float_of_int sparse.Exp_consistency.twin_release)

let suites =
  [
    ( "experiments.table2",
      [ Alcotest.test_case "exact" `Quick test_table2_exact ] );
    ( "experiments.table3",
      [ Alcotest.test_case "bands" `Slow test_table3_bands ] );
    ( "experiments.fig7",
      [
        Alcotest.test_case "shape" `Slow test_fig7_shape;
        Alcotest.test_case "overload collapse" `Slow
          test_fig7_overload_collapse;
      ] );
    ( "experiments.fig8",
      [ Alcotest.test_case "slow decrease" `Slow test_fig8_slow_decrease ] );
    ( "experiments.fig9",
      [
        Alcotest.test_case "crossover band" `Slow test_fig9_crossover_band;
        Alcotest.test_case "reset linear" `Quick
          test_fig9_reset_linear_in_dirty;
      ] );
    ( "experiments.fig10-12",
      [
        Alcotest.test_case "burst gap" `Slow
          test_fig10_flat_gap_grows_with_cluster;
        Alcotest.test_case "overload dynamics" `Slow
          test_fig11_overload_dynamics;
      ] );
    ( "experiments.ablations",
      [
        Alcotest.test_case "on-chip never overloads" `Slow
          test_onchip_never_overloads;
        Alcotest.test_case "state-saving ranking" `Slow
          test_state_saving_ranking;
        Alcotest.test_case "consistency sparse wins" `Quick
          test_consistency_sparse_wins;
      ] );
  ]

(* {1 Ablations D & E} *)

let test_timewarp_ablation_bands () =
  let rows =
    Exp_timewarp.measure ~end_time:250 ~scheduler_counts:[ 4 ] ()
  in
  List.iter
    (fun r -> check_bool "matches sequential" true
        r.Exp_timewarp.matches_sequential)
    rows;
  let find s =
    List.find (fun r -> r.Exp_timewarp.strategy = s) rows
  in
  let conservative = find Lvm_sim.State_saving.No_saving in
  let copy = find Lvm_sim.State_saving.Copy_based in
  let lvm = find Lvm_sim.State_saving.Lvm_based in
  (* the paper's argument: optimism pays only with cheap state saving *)
  check_bool "lvm-optimistic beats conservative" true
    (lvm.Exp_timewarp.elapsed_cycles
     < conservative.Exp_timewarp.elapsed_cycles);
  check_bool "copy-optimistic loses to conservative" true
    (copy.Exp_timewarp.elapsed_cycles
     > conservative.Exp_timewarp.elapsed_cycles);
  check "same committed events" copy.Exp_timewarp.committed
    lvm.Exp_timewarp.committed

let test_checkpoint_ablation_shape () =
  let points = Exp_checkpoint.measure ~dirty_counts:[ 1; 32 ] () in
  match points with
  | [ one; all ] ->
    (* bcopy flat; dc restore linear in dirty; Li/Appel restore cheap but
       mutation expensive *)
    check "bcopy independent of dirty" one.Exp_checkpoint.bcopy_cycles
      all.Exp_checkpoint.bcopy_cycles;
    check_bool "dc restore grows with dirty" true
      (all.Exp_checkpoint.dc_restore_cycles
       > 16 * one.Exp_checkpoint.dc_restore_cycles);
    check_bool "dc beats bcopy when 1/32 dirty" true
      (one.Exp_checkpoint.dc_restore_cycles
       < one.Exp_checkpoint.bcopy_cycles);
    check_bool "bcopy beats dc when all dirty" true
      (all.Exp_checkpoint.dc_restore_cycles
       > all.Exp_checkpoint.bcopy_cycles);
    check_bool "li/appel restore is near-free" true
      (all.Exp_checkpoint.ppc_restore_cycles < 2000);
    check_bool "li/appel pays on the mutator" true
      (one.Exp_checkpoint.ppc_mutate_cycles
       > 100 * one.Exp_checkpoint.dc_mutate_cycles)
  | _ -> Alcotest.fail "expected two points"

let ablation_de_suite =
  ( "experiments.ablations-de",
    [
      Alcotest.test_case "timewarp bands" `Slow test_timewarp_ablation_bands;
      Alcotest.test_case "checkpoint shape" `Quick
        test_checkpoint_ablation_shape;
    ] )

let suites = suites @ [ ablation_de_suite ]
