(* Tests for the debugging/monitoring tools and log-based consistency. *)

open Lvm_vm
open Lvm_tools

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  (k, sp)

let logged_region ?(pages = 16) k =
  let seg = Kernel.create_segment k ~size:8192 in
  let region = Kernel.create_region k seg in
  let ls =
    Kernel.create_log_segment k ~size:(pages * Lvm_machine.Addr.page_size)
  in
  Kernel.set_region_log k region (Some ls);
  (seg, region, ls)

(* {1 Watchpoints} *)

let test_watchpoint_hits () =
  let k, sp = boot () in
  let seg, region, ls = logged_region k in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp (base + 0x10) 1;
  Kernel.write_word k sp (base + 0x20) 2;
  Kernel.write_word k sp (base + 0x10) 3;
  let hits = Watchpoint.hits k ~log:ls ~watched:seg ~off:0x10 ~len:4 in
  Alcotest.(check (list int)) "two hits, in order" [ 1; 3 ]
    (List.map (fun h -> h.Watchpoint.value) hits);
  (match Watchpoint.last_writer k ~log:ls ~watched:seg ~off:0x10 with
  | Some h ->
    check "last writer value" 3 h.Watchpoint.value;
    check "record index" 2 h.Watchpoint.record_index
  | None -> Alcotest.fail "expected a writer");
  check_bool "unwritten offset has no writer" true
    (Watchpoint.last_writer k ~log:ls ~watched:seg ~off:0x40 = None)

let test_watchpoint_range_overlap () =
  let k, sp = boot () in
  let seg, region, ls = logged_region k in
  let base = Kernel.bind k sp region in
  Kernel.write k sp ~vaddr:(base + 0x13) ~size:1 0xAB;
  let hits = Watchpoint.hits k ~log:ls ~watched:seg ~off:0x10 ~len:4 in
  check "byte write inside watched word" 1 (List.length hits);
  let hits' = Watchpoint.hits k ~log:ls ~watched:seg ~off:0x14 ~len:4 in
  check "not in adjacent word" 0 (List.length hits')

let test_watchpoint_corruption () =
  let k, sp = boot () in
  let seg, region, ls = logged_region k in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp (base + 8) 0xCAFE (* legitimate *);
  Kernel.write_word k sp (base + 8) 0xCAFE (* rewrite, same value *);
  Kernel.write_word k sp (base + 8) 0xDEAD (* the corruption *);
  match Watchpoint.first_corruption k ~log:ls ~watched:seg ~off:8
          ~expected:0xCAFE with
  | Some h ->
    check "corrupting value" 0xDEAD h.Watchpoint.value;
    check "third record" 2 h.Watchpoint.record_index
  | None -> Alcotest.fail "corruption not found"

(* {1 Debugger attach/detach} *)

let test_debugger_attach_detach () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp base 1 (* before attach: unlogged *);
  let dbg = Debugger.attach k region in
  Kernel.write_word k sp base 2;
  Kernel.write_word k sp base 3;
  Debugger.detach dbg;
  Kernel.write_word k sp base 4 (* after detach: unlogged *);
  check "observed only attached-window writes" 2 (Debugger.writes_observed dbg);
  Alcotest.(check (list int)) "history values" [ 2; 3 ]
    (List.map snd (Debugger.history dbg ~off:0));
  check "program unaffected" 4 (Kernel.read_word k sp base)

let test_debugger_rejects_logged_region () =
  let k, sp = boot () in
  let _seg, region, _ls = logged_region k in
  ignore (Kernel.bind k sp region);
  Alcotest.check_raises "already logged"
    (Invalid_argument "Debugger.attach: region is already logged") (fun () ->
      ignore (Debugger.attach k region))

(* {1 Reverse execution} *)

let test_reverse_exec_time_travel () =
  let k, sp = boot () in
  (* debuggee: logged working segment with checkpoint source *)
  let working = Kernel.create_segment k ~size:4096 in
  let ckpt = Kernel.create_segment k ~size:4096 in
  Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
  let region = Kernel.create_region k working in
  let ls = Kernel.create_log_segment k ~size:(8 * Lvm_machine.Addr.page_size)
  in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  (* run the "program": x <- 1, 2, 3 at offset 0; y <- 9 at offset 4 *)
  Kernel.write_word k sp base 1;
  Kernel.write_word k sp base 2;
  Kernel.write_word k sp (base + 4) 9;
  Kernel.write_word k sp base 3;
  let rx = Reverse_exec.create k ~space:sp ~working ~region ~base ~log:ls in
  check "length" 4 (Reverse_exec.length rx);
  check "at failure state" 3 (Kernel.read_word k sp base);
  check_bool "step back" true (Reverse_exec.step_back rx);
  check "x before last write" 2 (Kernel.read_word k sp base);
  check "y still set" 9 (Kernel.read_word k sp (base + 4));
  Reverse_exec.seek rx 1;
  check "x after first write" 1 (Kernel.read_word k sp base);
  check "y not yet written" 0 (Kernel.read_word k sp (base + 4));
  Reverse_exec.seek rx 0;
  check "initial state" 0 (Kernel.read_word k sp base);
  check_bool "cannot step back past start" false (Reverse_exec.step_back rx);
  check_bool "step forward" true (Reverse_exec.step_forward rx);
  check "forward replays first write" 1 (Kernel.read_word k sp base);
  Reverse_exec.detach rx;
  check "detach restores failure state" 3 (Kernel.read_word k sp base);
  (* logging is live again after detach *)
  Kernel.write_word k sp base 7;
  check "records appended post-detach" 5 (Lvm.Log_reader.record_count k ls)

let prop_reverse_exec_seek_consistent =
  QCheck.Test.make ~name:"seek n shows prefix-replay state" ~count:40
    QCheck.(
      pair
        (list_of_size
           (Gen.int_range 1 25)
           (pair (int_bound 15) (int_bound 99)))
        (int_bound 25))
    (fun (writes, pos) ->
      let k, sp = boot () in
      let working = Kernel.create_segment k ~size:4096 in
      let ckpt = Kernel.create_segment k ~size:4096 in
      Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
      let region = Kernel.create_region k working in
      let ls =
        Kernel.create_log_segment k ~size:(8 * Lvm_machine.Addr.page_size)
      in
      Kernel.set_region_log k region (Some ls);
      let base = Kernel.bind k sp region in
      List.iter (fun (w, v) -> Kernel.write_word k sp (base + (w * 4)) v)
        writes;
      let rx =
        Reverse_exec.create k ~space:sp ~working ~region ~base ~log:ls
      in
      let n = min pos (Reverse_exec.length rx) in
      Reverse_exec.seek rx n;
      (* model: first n writes *)
      let expect = Array.make 16 0 in
      List.iteri (fun i (w, v) -> if i < n then expect.(w) <- v) writes;
      let ok = ref true in
      for w = 0 to 15 do
        if Kernel.read_word k sp (base + (w * 4)) <> expect.(w) then
          ok := false
      done;
      !ok)

(* {1 Address traces} *)

let test_address_trace () =
  let k, sp = boot () in
  let _seg, region, ls = logged_region k in
  let base = Kernel.bind k sp region in
  (* page 0 of the segment written 3 times, page 1 once *)
  Kernel.write_word k sp base 1;
  Kernel.write_word k sp (base + 8) 2;
  Kernel.write_word k sp (base + 12) 3;
  Kernel.write_word k sp (base + 4096) 4;
  let trace = Address_trace.of_log k ls in
  check "four entries" 4 (List.length trace);
  (match Address_trace.hottest_page k ls with
  | Some (_, count) -> check "hottest page count" 3 count
  | None -> Alcotest.fail "no hottest page");
  check "histogram has two pages" 2
    (List.length (Address_trace.page_histogram k ls))

(* {1 Output streams} *)

let test_output_indexed_stream () =
  let k, sp = boot () in
  let out = Output_stream.create_indexed k sp ~size:4096 ~log_pages:4 in
  Output_stream.emit out 10;
  Output_stream.emit out 20;
  Output_stream.emit out 30;
  Alcotest.(check (list int)) "streamed values" [ 10; 20; 30 ]
    (Output_stream.consume out);
  Alcotest.(check (list int)) "consumed prefix dropped" []
    (Output_stream.consume out);
  Output_stream.emit out 40;
  Alcotest.(check (list int)) "subsequent values" [ 40 ]
    (Output_stream.consume out)

let test_output_direct_mapped () =
  let k, sp = boot () in
  let out = Output_stream.create_direct k sp ~size:8192 in
  Output_stream.emit_at out ~off:0x120 77;
  Output_stream.emit_at out ~off:0x1800 88;
  check "mirror word page 0" 77 (Output_stream.mirror_word out ~off:0x120);
  check "mirror word page 1" 88 (Output_stream.mirror_word out ~off:0x1800)

(* {1 Log-based consistency (Section 2.6)} *)

open Lvm_consistency

let consistency_fixture protocol =
  let k, sp = boot () in
  (k, Shared_segment.create k sp ~size:8192 protocol)

let exercise t =
  Shared_segment.acquire t;
  Shared_segment.write_word t ~off:0 1;
  Shared_segment.write_word t ~off:256 2;
  Shared_segment.write_word t ~off:4200 3;
  Shared_segment.release t

let test_consistency_twin_diff () =
  let _, t = consistency_fixture Shared_segment.Twin_diff in
  let s = exercise t in
  check "three words sent" 3 s.Shared_segment.words_sent;
  check "two pages => two messages" 2 s.Shared_segment.messages;
  check_bool "replica consistent" true (Shared_segment.replica_consistent t);
  check "consumer sees update" 3 (Shared_segment.consumer_word t ~off:4200)

let test_consistency_log_based () =
  let _, t = consistency_fixture Shared_segment.Log_based in
  let s = exercise t in
  check "three words sent" 3 s.Shared_segment.words_sent;
  check_bool "replica consistent" true (Shared_segment.replica_consistent t);
  check "consumer sees update" 2 (Shared_segment.consumer_word t ~off:256)

let test_consistency_multiple_sections () =
  let _, t = consistency_fixture Shared_segment.Log_based in
  ignore (exercise t);
  Shared_segment.acquire t;
  Shared_segment.write_word t ~off:0 42;
  let s = Shared_segment.release t in
  check "second section sends only its update" 1 s.Shared_segment.words_sent;
  check "consumer updated" 42 (Shared_segment.consumer_word t ~off:0);
  check_bool "replica consistent" true (Shared_segment.replica_consistent t)

let test_consistency_log_cheaper_for_sparse_updates () =
  (* one word per page across 2 pages: twin/diff pays twinning+scanning
     whole pages, log-based sends exactly the two records *)
  let _, twin = consistency_fixture Shared_segment.Twin_diff in
  let _, lg = consistency_fixture Shared_segment.Log_based in
  let run t =
    Shared_segment.acquire t;
    Shared_segment.write_word t ~off:0 1;
    Shared_segment.write_word t ~off:4096 2;
    (Shared_segment.release t).Shared_segment.release_cycles
  in
  let twin_cycles = run twin in
  let log_cycles = run lg in
  check_bool
    (Printf.sprintf "log-based release cheaper (%d < %d)" log_cycles
       twin_cycles)
    true (log_cycles < twin_cycles)

let prop_consistency_protocols_agree =
  QCheck.Test.make ~name:"twin/diff and log-based produce equal replicas"
    ~count:30
    QCheck.(
      list_of_size
        (Gen.int_range 1 40)
        (pair (int_bound 2047) (int_bound 9999)))
    (fun writes ->
      let _, twin = consistency_fixture Shared_segment.Twin_diff in
      let _, lg = consistency_fixture Shared_segment.Log_based in
      let run t =
        Shared_segment.acquire t;
        List.iter (fun (w, v) -> Shared_segment.write_word t ~off:(w * 4) v)
          writes;
        ignore (Shared_segment.release t)
      in
      run twin;
      run lg;
      Shared_segment.replica_consistent twin
      && Shared_segment.replica_consistent lg
      && List.for_all
           (fun (w, _) ->
             Shared_segment.consumer_word twin ~off:(w * 4)
             = Shared_segment.consumer_word lg ~off:(w * 4))
           writes)

let suites =
  [
    ( "tools.watchpoint",
      [
        Alcotest.test_case "hits" `Quick test_watchpoint_hits;
        Alcotest.test_case "range overlap" `Quick
          test_watchpoint_range_overlap;
        Alcotest.test_case "corruption finder" `Quick
          test_watchpoint_corruption;
      ] );
    ( "tools.debugger",
      [
        Alcotest.test_case "attach/detach" `Quick test_debugger_attach_detach;
        Alcotest.test_case "rejects logged region" `Quick
          test_debugger_rejects_logged_region;
      ] );
    ( "tools.reverse-exec",
      [
        Alcotest.test_case "time travel" `Quick test_reverse_exec_time_travel;
        QCheck_alcotest.to_alcotest prop_reverse_exec_seek_consistent;
      ] );
    ( "tools.address-trace",
      [ Alcotest.test_case "trace and histogram" `Quick test_address_trace ] );
    ( "tools.output",
      [
        Alcotest.test_case "indexed stream" `Quick test_output_indexed_stream;
        Alcotest.test_case "direct-mapped" `Quick test_output_direct_mapped;
      ] );
    ( "consistency",
      [
        Alcotest.test_case "twin/diff" `Quick test_consistency_twin_diff;
        Alcotest.test_case "log-based" `Quick test_consistency_log_based;
        Alcotest.test_case "multiple sections" `Quick
          test_consistency_multiple_sections;
        Alcotest.test_case "log cheaper when sparse" `Quick
          test_consistency_log_cheaper_for_sparse_updates;
        QCheck_alcotest.to_alcotest prop_consistency_protocols_agree;
      ] );
  ]

(* {1 Snooped coherence (Section 2.6 hardware variant)} *)

let test_snooped_replica_always_current () =
  let _, t = consistency_fixture Shared_segment.Snooped in
  Shared_segment.acquire t;
  Shared_segment.write_word t ~off:0 11;
  Shared_segment.write_word t ~off:4096 22;
  (* the replica is coherent even before release: the snoop applied the
     records as they crossed the bus *)
  check "replica current mid-section" 11
    (Shared_segment.consumer_word t ~off:0);
  let s = Shared_segment.release t in
  check_bool "replica consistent" true (Shared_segment.replica_consistent t);
  check "nothing sent at release" 0 s.Shared_segment.words_sent

let test_snooped_release_nearly_free () =
  let _, snooped = consistency_fixture Shared_segment.Snooped in
  let _, log = consistency_fixture Shared_segment.Log_based in
  let run t =
    Shared_segment.acquire t;
    for i = 0 to 63 do
      Shared_segment.write_word t ~off:(i * 8) i
    done;
    (Shared_segment.release t).Shared_segment.release_cycles
  in
  let snoop_cycles = run snooped in
  let log_cycles = run log in
  check_bool
    (Printf.sprintf "snooped release cheaper (%d < %d)" snoop_cycles
       log_cycles)
    true (snoop_cycles < log_cycles)

let snooped_suite =
  ( "consistency.snooped",
    [
      Alcotest.test_case "replica always current" `Quick
        test_snooped_replica_always_current;
      Alcotest.test_case "release nearly free" `Quick
        test_snooped_release_nearly_free;
    ] )

let suites = suites @ [ snooped_suite ]

(* {1 Log redundancy analysis (Section 2.7)} *)

let test_log_stats_redundancy () =
  let k, sp = boot () in
  let seg, region, ls = logged_region k in
  let base = Kernel.bind k sp region in
  (* a hot temporary written 5 times, two cold locations once each *)
  for i = 1 to 5 do
    Kernel.write_word k sp (base + 0x20) i
  done;
  Kernel.write_word k sp (base + 0x40) 1;
  Kernel.write_word k sp (base + 0x60) 2;
  let s = Log_stats.summarize k ~watched:seg ~log:ls in
  check "records" 7 s.Log_stats.records;
  check "distinct" 3 s.Log_stats.distinct_locations;
  check "redundant" 4 s.Log_stats.redundant;
  Alcotest.(check (list (pair int int))) "hot spot identified"
    [ (0x20, 5) ]
    (Log_stats.top_rewritten k ~watched:seg ~log:ls);
  ignore region

let test_log_stats_empty () =
  let k, sp = boot () in
  let seg, region, ls = logged_region k in
  ignore (Kernel.bind k sp region);
  let s = Log_stats.summarize k ~watched:seg ~log:ls in
  check "no records" 0 s.Log_stats.records;
  Alcotest.(check (float 0.001)) "zero ratio" 0. s.Log_stats.redundancy_ratio

let log_stats_suite =
  ( "tools.log-stats",
    [
      Alcotest.test_case "redundancy" `Quick test_log_stats_redundancy;
      Alcotest.test_case "empty log" `Quick test_log_stats_empty;
    ] )

let suites = suites @ [ log_stats_suite ]
