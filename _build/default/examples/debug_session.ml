(* Debugging with logs (the paper's Section 1 debugger use case).

   A "program" corrupts one element of an array it should not touch. The
   debugger attaches logging to the program's data region at run time (no
   recompilation), finds exactly which write clobbered the canary, and
   then reverse-executes the program to inspect the state just before the
   corruption. Run with:

     dune exec examples/debug_session.exe *)

open Lvm_vm

let () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in

  (* The debuggee: a working segment with a checkpoint for time travel. *)
  let working = Kernel.create_segment k ~size:4096 in
  let checkpoint = Kernel.create_segment k ~size:4096 in
  Kernel.declare_source k ~dst:working ~src:checkpoint ~offset:0;
  let region = Kernel.create_region k working in
  let base = Kernel.bind k sp region in

  (* The debugger attaches — from outside, with no program change. *)
  let dbg = Lvm_tools.Debugger.attach k region in

  let canary_off = 64 in
  Kernel.write_word k sp (base + canary_off) 0xCAFE;
  Printf.printf "debugger attached; canary holds 0x%x\n"
    (Kernel.read_word k sp (base + canary_off));

  (* The buggy program: walks an array and runs one element past the
     end, stomping the canary. *)
  for i = 0 to 16 do
    Kernel.write_word k sp (base + (i * 4)) (i * 100)
  done;
  Printf.printf "program ran; canary now holds %d  <- corrupted!\n"
    (Kernel.read_word k sp (base + canary_off));

  (* Who did it? Ask the log. *)
  (match Lvm_tools.Debugger.find_corruption dbg ~off:canary_off
           ~expected:0xCAFE with
  | Some hit ->
    Printf.printf
      "corruption found: record #%d wrote %d to offset 0x%x at t=%d\n"
      hit.Lvm_tools.Watchpoint.record_index hit.Lvm_tools.Watchpoint.value
      hit.Lvm_tools.Watchpoint.off hit.Lvm_tools.Watchpoint.timestamp;

    (* Reverse-execute to just before the bad write. *)
    let rx =
      Lvm_tools.Reverse_exec.create k ~space:sp ~working ~region ~base
        ~log:(Lvm_tools.Debugger.log dbg)
    in
    Lvm_tools.Reverse_exec.seek rx hit.Lvm_tools.Watchpoint.record_index;
    Printf.printf
      "rewound to just before record #%d: canary holds 0x%x again\n"
      hit.Lvm_tools.Watchpoint.record_index
      (Kernel.read_word k sp (base + canary_off));
    Printf.printf "stepping forward one write...\n";
    ignore (Lvm_tools.Reverse_exec.step_forward rx);
    Printf.printf "canary holds %d — record #%d is the culprit\n"
      (Kernel.read_word k sp (base + canary_off))
      hit.Lvm_tools.Watchpoint.record_index;
    Lvm_tools.Reverse_exec.detach rx
  | None -> print_endline "no corruption found?!");

  (* The write history of the canary word, straight from the log. *)
  Printf.printf "canary write history: %s\n"
    (String.concat ", "
       (List.map
          (fun (t, v) -> Printf.sprintf "t=%d:%d" t v)
          (Lvm_tools.Debugger.history dbg ~off:canary_off)));
  Lvm_tools.Debugger.detach dbg;
  print_endline "debugger detached; program continues unlogged"
