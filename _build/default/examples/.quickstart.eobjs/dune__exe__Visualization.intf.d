examples/visualization.mli:
