examples/shared_memory.ml: Lvm_consistency Lvm_vm Printf Shared_segment
