examples/persistent_bank.ml: Lvm_rvm Lvm_vm Printf
