examples/quickstart.mli:
