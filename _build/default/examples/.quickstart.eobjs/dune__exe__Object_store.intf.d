examples/object_store.mli:
