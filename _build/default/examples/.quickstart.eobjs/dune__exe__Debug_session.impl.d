examples/debug_session.ml: Kernel List Lvm_tools Lvm_vm Printf String
