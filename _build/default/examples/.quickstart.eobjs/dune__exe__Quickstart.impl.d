examples/quickstart.ml: Lvm Lvm_machine Printf
