examples/visualization.ml: List Lvm_tools Lvm_vm Printf String
