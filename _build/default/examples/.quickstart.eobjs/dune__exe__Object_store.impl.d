examples/object_store.ml: Backing_store Kernel Lvm Lvm_machine Lvm_vm Printf Segment
