examples/simulation.mli:
