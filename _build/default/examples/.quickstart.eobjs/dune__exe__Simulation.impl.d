examples/simulation.ml: Lvm_sim Phold Printf State_saving Timewarp
