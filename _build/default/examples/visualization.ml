(* High-performance output through logging (the paper's Section 2.6).

   A producer renders frames of a tiny "simulation" by storing samples
   into a logged output region; a separate consumer process interprets the
   indexed log stream and draws the display — the producer never blocks on
   output. A direct-mapped log then mirrors a device frame buffer. Run:

     dune exec examples/visualization.exe *)

let () =
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in

  (* Indexed mode: a bare stream of data values for the display process. *)
  let stream =
    Lvm_tools.Output_stream.create_indexed k sp ~size:4096 ~log_pages:8
  in
  print_endline "producer renders three frames of a sine-ish wave:";
  for frame = 1 to 3 do
    for x = 0 to 15 do
      let y = (frame * (x - 8) * (x - 8)) mod 9 in
      Lvm_tools.Output_stream.emit stream y
    done;
    (* the consumer (display) drains the stream asynchronously *)
    let values = Lvm_tools.Output_stream.consume stream in
    Printf.printf "frame %d: " frame;
    List.iter
      (fun v -> print_string (String.make (1 + v) '*' ^ " "))
      (List.filteri (fun i _ -> i < 8) values);
    print_newline ()
  done;

  (* Direct-mapped mode: writes land at the same offset in the log page,
     like memory-mapped device registers with no read-back support. *)
  let device = Lvm_tools.Output_stream.create_direct k sp ~size:4096 in
  Lvm_tools.Output_stream.emit_at device ~off:0x40 0xBEEF;
  Lvm_tools.Output_stream.emit_at device ~off:0x80 0xF00D;
  Printf.printf
    "device mirror: [0x40]=0x%x [0x80]=0x%x (written via mapped I/O)\n"
    (Lvm_tools.Output_stream.mirror_word device ~off:0x40)
    (Lvm_tools.Output_stream.mirror_word device ~off:0x80);

  (* The producer's cost: logged stores only, no output-path work. *)
  let t0 = Lvm_vm.Kernel.time k in
  for i = 0 to 99 do
    Lvm_tools.Output_stream.emit stream i
  done;
  Printf.printf "producer spent %d cycles emitting 100 samples (%.1f/sample)\n"
    (Lvm_vm.Kernel.time k - t0)
    (float_of_int (Lvm_vm.Kernel.time k - t0) /. 100.)
