(* Optimistic parallel simulation over LVM (the paper's Section 2.4).

   Runs the PHOLD workload on the TimeWarp engine twice — once with
   conventional copy-based state saving, once with LVM state saving — and
   shows that (a) both commit exactly the sequential execution and (b) LVM
   spends fewer processor cycles on state saving. Run with:

     dune exec examples/simulation.exe *)

open Lvm_sim

let objects = 24
let population = 16
let end_time = 800
let seed = 11

(* Sophisticated simulations keep large per-object state and exhibit
   spatial locality — that is where copy-based saving hurts and LVM
   shines (Sections 2.4 and 2.7). *)
let object_words = 512 (* 2 KB objects *)
let locality_pct = 90

let run ~n_schedulers strategy =
  let app =
    Phold.app ~objects ~object_words ~locality_pct ~seed ~compute:300 ()
  in
  let engine = Timewarp.create ~n_schedulers ~strategy ~app () in
  Phold.inject_population engine ~objects ~population ~seed;
  let r = Timewarp.run engine ~end_time in
  (engine, r)

let () =
  let copy_engine, copy_r = run ~n_schedulers:4 State_saving.Copy_based in
  let lvm_engine, lvm_r = run ~n_schedulers:4 State_saving.Lvm_based in
  let seq_engine, _ = run ~n_schedulers:1 State_saving.Lvm_based in
  Printf.printf
    "PHOLD: %d objects of %d KB, %d tokens, 4 schedulers, end-time %d\n\n"
    objects (object_words / 256) population end_time;
  let show name (r : Timewarp.result) =
    Printf.printf
      "%-12s committed %-5d processed %-5d rollbacks %-4d antimsgs %-4d \
       elapsed %d cycles\n"
      name r.Timewarp.total_events_committed r.Timewarp.total_events_processed
      r.Timewarp.total_rollbacks r.Timewarp.total_anti_messages
      r.Timewarp.elapsed_cycles
  in
  show "copy-based" copy_r;
  show "lvm" lvm_r;
  let same_as_seq e =
    Timewarp.state_vector e = Timewarp.state_vector seq_engine
  in
  Printf.printf
    "\nfinal states match the sequential run: copy=%b lvm=%b\n"
    (same_as_seq copy_engine) (same_as_seq lvm_engine);
  Printf.printf
    "state saving is invisible to results; LVM used %.1f%% of the \
     copy-based run's cycles\n"
    (100.
     *. float_of_int lvm_r.Timewarp.elapsed_cycles
     /. float_of_int copy_r.Timewarp.elapsed_cycles)
