(* Log-based consistency for write-shared memory (the paper's
   Section 2.6).

   A producer updates a shared segment inside acquire/release sections; a
   consumer holds a replica. With LVM the updates are already identified
   by the log, so the producer can stream them as it goes and release
   costs almost nothing — compare the Munin twin/diff protocol, which
   must fault, twin and diff whole pages at release. Run with:

     dune exec examples/shared_memory.exe *)

open Lvm_consistency

let () =
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in

  let run name protocol ~stream =
    let t = Shared_segment.create k sp ~size:(8 * 4096) protocol in
    Shared_segment.acquire t;
    (* sparse update pattern: one counter per page *)
    for i = 0 to 31 do
      Shared_segment.write_word t ~off:(i mod 8 * 4096) (i * 11);
      if stream && i mod 8 = 7 then ignore (Shared_segment.stream t)
    done;
    let s = Shared_segment.release t in
    assert (Shared_segment.replica_consistent t);
    Printf.printf "%-22s release took %6d cycles, sent %d words in %d msgs\n"
      name s.Shared_segment.release_cycles s.Shared_segment.words_sent
      s.Shared_segment.messages
  in
  print_endline "32 sparse updates over 8 pages, then release:";
  run "munin twin/diff" Shared_segment.Twin_diff ~stream:false;
  run "log-based" Shared_segment.Log_based ~stream:false;
  run "log-based, streaming" Shared_segment.Log_based ~stream:true;
  print_endline
    "\nlog-based consistency avoids the fault/twin/diff machinery, and\n\
     streaming leaves almost no backlog at release. twin/diff sent fewer\n\
     words here because each location was overwritten repeatedly -- the\n\
     tradeoff Section 2.6 concedes but expects to be uncommon."
