(* Argument-validation coverage: every public constructor and operation
   rejects malformed input with a meaningful error rather than corrupting
   state. *)

open Lvm_machine
open Lvm_vm

let inv msg f = Alcotest.check_raises msg (Invalid_argument msg) f

let boot () =
  let k = Kernel.create () in
  (k, Kernel.create_space k)

let test_machine_validation () =
  let m = Machine.create ~frames:2 () in
  inv "Machine.compute: negative cycles" (fun () -> Machine.compute m (-1));
  inv "Physmem.create: frames must be positive" (fun () ->
      ignore (Physmem.create ~frames:0));
  inv "Fifo.create: capacity must be positive" (fun () ->
      ignore (Fifo.create ~capacity:0));
  inv "Bus.access: negative cycles" (fun () ->
      ignore (Bus.access (Machine.bus m) ~track:Bus.Cpu ~now:0 ~cycles:(-1)));
  inv "Deferred_cache.map: source address must be line-aligned" (fun () ->
      Machine.dc_map m ~dst_page:1 ~src_addr:5);
  inv "Physmem.read_sized: size must be 1, 2 or 4" (fun () ->
      ignore (Physmem.read_sized (Machine.mem m) 0 ~size:3))

let test_logger_validation () =
  let clock = ref 0 in
  let perf = Perf.create () in
  let mem = Physmem.create ~frames:2 in
  let bus = Bus.create perf in
  inv "Logger.create: pmt_bits" (fun () ->
      ignore (Logger.create ~pmt_bits:1 ~clock mem bus perf));
  inv "Logger.create: log_entries" (fun () ->
      ignore (Logger.create ~log_entries:0 ~clock mem bus perf));
  let logger = Logger.create ~log_entries:2 ~clock mem bus perf in
  inv "Logger.load_pmt: bad log index" (fun () ->
      Logger.load_pmt logger ~page:0 ~log_index:2);
  inv "Logger.set_log_entry: bad index" (fun () ->
      Logger.set_log_entry logger ~index:(-1) ~mode:Logger.Normal ~addr:0);
  inv "Logger.log_entry: bad index" (fun () ->
      ignore (Logger.log_entry logger ~index:9))

let test_segment_region_validation () =
  let k, _sp = boot () in
  let err name e f = Alcotest.check_raises name (Error.Lvm_error e) f in
  err "Segment.make: negative size"
    (Error.Invalid { op = "Segment.make"; reason = "negative size" })
    (fun () -> ignore (Segment.make ~id:0 ~kind:Segment.Std ~size:(-4)));
  let seg = Kernel.create_segment k ~size:4096 in
  err "Segment.grow: negative page count"
    (Error.Out_of_range
       { op = "Segment.grow"; what = "page count"; value = -1 })
    (fun () -> Segment.grow seg ~pages:(-1));
  err "Region.make: size must be positive"
    (Error.Out_of_range { op = "Region.make"; what = "size"; value = 0 })
    (fun () -> ignore (Region.make ~id:1 ~segment:seg ~seg_offset:0 ~size:0));
  err "page range"
    (Error.Page_out_of_range { segment = 2; page = 7; pages = 1 })
    (fun () -> ignore (Segment.frame_of_page seg 7))

let test_kernel_validation () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let ls = Kernel.create_log_segment k ~size:4096 in
  let err name e f = Alcotest.check_raises name (Error.Lvm_error e) f in
  err "Lvm_log.of_segment on std segment"
    (Error.Not_a_log_segment
       { op = "Lvm_log.of_segment"; segment = Segment.id seg })
    (fun () -> ignore (Lvm_log.of_segment k seg));
  err "truncate keep_from"
    (Error.Out_of_range { op = "truncate_log"; what = "keep_from"; value = 99 })
    (fun () -> Lvm_log.truncate (Lvm_log.of_segment k ls) ~keep_from:99);
  err "truncate_suffix new_end"
    (Error.Out_of_range
       { op = "truncate_log_suffix"; what = "new_end"; value = 99 })
    (fun () ->
      Lvm_log.truncate_suffix (Lvm_log.of_segment k ls) ~new_end:99);
  err "Batcher group out of range"
    (Error.Out_of_range
       { op = "Lvm_log.Batcher.create"; what = "group"; value = 0 })
    (fun () ->
      ignore (Lvm_log.Batcher.create ~group:0 ~force:(fun () -> ()) ()));
  err "declare_source unaligned offset"
    (Error.Invalid
       { op = "declare_source"; reason = "offset must be page-aligned" })
    (fun () -> Kernel.declare_source k ~dst:seg ~src:seg ~offset:100);
  err "paddr_of out of segment"
    (Error.Out_of_segment { segment = Segment.id seg; off = 9999 })
    (fun () -> ignore (Kernel.paddr_of k seg ~off:9999));
  err "reset_deferred_copy negative length"
    (Error.Out_of_range
       { op = "reset_deferred_copy"; what = "len"; value = -1 })
    (fun () -> Kernel.reset_deferred_copy k sp ~start:0 ~len:(-1));
  err "bad access size"
    (Error.Bad_access_size { size = 8 })
    (fun () -> ignore (Kernel.read k sp ~vaddr:0 ~size:8));
  let store = Backing_store.create ~size:4096 in
  err "backing store too small"
    (Error.Invalid
       { op = "create_segment";
         reason = "backing store smaller than segment" })
    (fun () -> ignore (Kernel.create_segment ~backing:store k ~size:8192));
  err "sync_segment without backing"
    (Error.No_backing_store { op = "sync_segment"; segment = Segment.id seg })
    (fun () -> Kernel.sync_segment k seg)

let test_lvm_layer_validation () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  inv "Arena.alloc: words must be positive" (fun () ->
      ignore (Lvm.Arena.alloc (Lvm.Arena.create k sp) ~logged:true ~words:0));
  ignore seg

let test_sim_validation () =
  let open Lvm_sim in
  inv "Timewarp.create: batch must be positive" (fun () ->
      ignore
        (Timewarp.create ~batch:0 ~n_schedulers:1
           ~strategy:State_saving.Copy_based
           ~app:(Phold.app ~objects:2 ~seed:1 ())
           ()));
  inv "Phold.app: objects must be positive" (fun () ->
      ignore (Phold.app ~objects:0 ~seed:1 ()));
  inv "Phold.app: need at least 4 words" (fun () ->
      ignore (Phold.app ~objects:2 ~object_words:2 ~seed:1 ()));
  inv "Phold.app: locality_pct must be a percentage" (fun () ->
      ignore (Phold.app ~objects:2 ~locality_pct:150 ~seed:1 ()));
  inv "Queueing.app: stations" (fun () ->
      ignore (Queueing.app ~stations:0 ~seed:1));
  inv "Synthetic: bad parameters" (fun () ->
      ignore
        (Synthetic.run
           { Synthetic.default_params with Synthetic.events = 0 }
           State_saving.Copy_based));
  inv "Synthetic: object size must be a word multiple" (fun () ->
      ignore
        (Synthetic.run
           { Synthetic.default_params with Synthetic.s = 30 }
           State_saving.Copy_based))

let test_rvm_validation () =
  let k, sp = boot () in
  let err name e f = Alcotest.check_raises name (Error.Lvm_error e) f in
  let r = Lvm_rvm.Rvm.make Lvm_rvm.Rvm.Config.default k sp ~size:4096 in
  Lvm_rvm.Rvm.begin_txn r;
  err "Rvm.set_range: out of segment"
    (Error.Out_of_segment { segment = 2; off = 4000 })
    (fun () -> Lvm_rvm.Rvm.set_range r ~off:4000 ~len:200);
  err "Rlvm.create: size must be a positive word multiple"
    (Error.Invalid
       { op = "Rlvm.create"; reason = "size must be a positive word multiple" })
    (fun () -> ignore (Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:30));
  err "Ramdisk.create: size must be positive"
    (Error.Invalid { op = "Ramdisk.create"; reason = "size must be positive" })
    (fun () -> ignore (Lvm_rvm.Ramdisk.create k ~size:0));
  (* Satellite: the log provision is validated at creation. One worst-case
     transaction over a 64 KB segment needs more than one page of log. *)
  err "Rlvm.create: log capacity"
    (Error.Log_capacity
       { op = "Rlvm.create";
         requested = (65536 / 4 * 16) + 32;
         capacity = 4096 })
    (fun () -> ignore (Lvm_rvm.Rlvm.make { Lvm_rvm.Rlvm.Config.default with log_pages = 1 } k sp ~size:65536))

let test_consistency_validation () =
  let k, sp = boot () in
  inv "Shared_segment.create: bad size" (fun () ->
      ignore
        (Lvm_consistency.Shared_segment.create k sp ~size:30
           Lvm_consistency.Shared_segment.Log_based));
  let t =
    Lvm_consistency.Shared_segment.create k sp ~size:4096
      Lvm_consistency.Shared_segment.Log_based
  in
  inv "Shared_segment.write_word" (fun () ->
      Lvm_consistency.Shared_segment.write_word t ~off:4096 1)

(* Satellite: [Store.create] validates the whole config record with
   typed errors — not just shards/keys but the per-shard log provision
   and machine sizing too. *)
let test_store_validation () =
  let module Store = Lvm_store.Store in
  let err name e f = Alcotest.check_raises name (Error.Lvm_error e) f in
  let mk cfg = ignore (Store.create cfg) in
  let range what value =
    Error.Out_of_range { op = "Store.create"; what; value }
  in
  err "Store.create: group" (range "group" 0) (fun () ->
      mk { Store.Config.default with group = 0 });
  err "Store.create: log_pages" (range "log_pages" 0) (fun () ->
      mk { Store.Config.default with log_pages = 0 });
  err "Store.create: max_log_pages below log_pages" (range "max_log_pages" 2)
    (fun () ->
      mk { Store.Config.default with log_pages = 4; max_log_pages = Some 2 });
  err "Store.create: frames" (range "frames" (-1)) (fun () ->
      mk { Store.Config.default with frames = -1 });
  (* the ceiling equal to the provision is legal: backpressure just
     never extends *)
  ignore
    (Store.create
       { Store.Config.default with
         shards = 1; keys = 8; log_pages = 32; max_log_pages = Some 32 })

let test_tools_validation () =
  let k, sp = boot () in
  let out = Lvm_tools.Output_stream.create_indexed k sp ~size:4096
      ~log_pages:2 in
  inv "Output_stream.mirror_word: direct-mapped mode only" (fun () ->
      ignore (Lvm_tools.Output_stream.mirror_word out ~off:0));
  let direct = Lvm_tools.Output_stream.create_direct k sp ~size:4096 in
  inv "Output_stream.consume: indexed mode only" (fun () ->
      ignore (Lvm_tools.Output_stream.consume direct));
  inv "Output_stream.emit_at" (fun () ->
      Lvm_tools.Output_stream.emit_at out ~off:(-4) 1)

let suites =
  [
    ( "validation",
      [
        Alcotest.test_case "machine layer" `Quick test_machine_validation;
        Alcotest.test_case "logger" `Quick test_logger_validation;
        Alcotest.test_case "segments and regions" `Quick
          test_segment_region_validation;
        Alcotest.test_case "kernel" `Quick test_kernel_validation;
        Alcotest.test_case "lvm layer" `Quick test_lvm_layer_validation;
        Alcotest.test_case "simulation" `Quick test_sim_validation;
        Alcotest.test_case "recoverable memory" `Quick test_rvm_validation;
        Alcotest.test_case "consistency" `Quick test_consistency_validation;
        Alcotest.test_case "sharded store config" `Quick
          test_store_validation;
        Alcotest.test_case "tools" `Quick test_tools_validation;
      ] );
  ]
