open Lvm_machine
open Lvm_vm
open Lvm_fault

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* {1 Plan engine} *)

let hit plan site cycle = Plan.check plan ~site ~cycle

let test_plan_at_cycle () =
  let p =
    Plan.create
      [ { Plan.site = Fault.Cpu; trigger = Plan.At_cycle 100;
          fault = Fault.Crash } ]
  in
  check_bool "before threshold" true (hit p Fault.Cpu 50 = None);
  check_bool "wrong site ignored" true (hit p Fault.Ramdisk_write 500 = None);
  check_bool "fires at first boundary >= n" true
    (hit p Fault.Cpu 130 = Some Fault.Crash);
  (* one-shot: disarmed afterwards, so recovery cannot re-crash *)
  check_bool "disarmed afterwards" true (hit p Fault.Cpu 200 = None);
  check "occurrences counted per site" 3 (Plan.occurrences p ~site:Fault.Cpu);
  check "injected once" 1 (Plan.injected_count p)

let test_plan_at_count_and_every () =
  let p =
    Plan.create
      [ { Plan.site = Fault.Ramdisk_write; trigger = Plan.At_count 3;
          fault = Fault.Failed_write };
        { Plan.site = Fault.Log_dma; trigger = Plan.Every 2;
          fault = Fault.Dma_fail } ]
  in
  for i = 1 to 5 do
    let got = hit p Fault.Ramdisk_write (i * 10) in
    check_bool
      (Printf.sprintf "at_count occurrence %d" i)
      (i = 3)
      (got = Some Fault.Failed_write)
  done;
  let fired = ref 0 in
  for i = 1 to 6 do
    if hit p Fault.Log_dma i = Some Fault.Dma_fail then incr fired
  done;
  check "every-2 fires on 2nd, 4th, 6th" 3 !fired

let test_plan_declaration_order () =
  (* two injections at the same site and occurrence: the first declared
     wins, the second is not consumed *)
  let p =
    Plan.create
      [ { Plan.site = Fault.Cpu; trigger = Plan.At_count 1;
          fault = Fault.Dma_fail };
        { Plan.site = Fault.Cpu; trigger = Plan.At_count 2;
          fault = Fault.Fifo_overrun } ]
  in
  check_bool "first declared wins" true (hit p Fault.Cpu 1 = Some Fault.Dma_fail);
  check_bool "second fires next occurrence" true
    (hit p Fault.Cpu 2 = Some Fault.Fifo_overrun)

let test_plan_probability_deterministic () =
  let drive seed =
    let p =
      Plan.create ~seed
        [ { Plan.site = Fault.Cpu; trigger = Plan.With_probability 0.3;
            fault = Fault.Crash } ]
    in
    let fired = ref [] in
    for i = 1 to 200 do
      match Plan.check p ~site:Fault.Cpu ~cycle:i with
      | Some _ -> fired := i :: !fired
      | None -> ()
    done;
    (!fired, Plan.trace p)
  in
  let a, ta = drive 7 and b, tb = drive 7 in
  check_bool "same seed, same firings" true (a = b);
  check_str "same seed, same trace" ta tb;
  let c, _ = drive 8 in
  check_bool "some firings at p=0.3" true (List.length a > 10);
  check_bool "different seed, different firings" true (a <> c)

(* Satellite: occurrence accounting on the replication transport sites.
   Every transport fault kind is schedulable at [Net_frame]/[Net_ack],
   observable through [Plan.injected] with the right site and kind, and
   the probabilistic mix is deterministic under a fixed seed. *)
let test_plan_transport_sites () =
  let p =
    Plan.create
      [ { Plan.site = Fault.Net_frame; trigger = Plan.At_count 1;
          fault = Fault.Net_drop };
        { Plan.site = Fault.Net_frame; trigger = Plan.At_count 2;
          fault = Fault.Net_delay { ticks = 3 } };
        { Plan.site = Fault.Net_frame; trigger = Plan.At_count 3;
          fault = Fault.Net_dup };
        { Plan.site = Fault.Net_frame; trigger = Plan.At_count 4;
          fault = Fault.Net_reorder };
        { Plan.site = Fault.Net_ack; trigger = Plan.At_count 2;
          fault = Fault.Net_drop } ]
  in
  check_bool "frame occurrence 1 drops" true
    (hit p Fault.Net_frame 10 = Some Fault.Net_drop);
  check_bool "frame occurrence 2 delays" true
    (hit p Fault.Net_frame 11 = Some (Fault.Net_delay { ticks = 3 }));
  check_bool "ack occurrence 1 clean" true (hit p Fault.Net_ack 11 = None);
  check_bool "frame occurrence 3 duplicates" true
    (hit p Fault.Net_frame 12 = Some Fault.Net_dup);
  check_bool "frame occurrence 4 reorders" true
    (hit p Fault.Net_frame 13 = Some Fault.Net_reorder);
  check_bool "ack occurrence 2 drops" true
    (hit p Fault.Net_ack 14 = Some Fault.Net_drop);
  check "frame occurrences counted" 4
    (Plan.occurrences p ~site:Fault.Net_frame);
  check "ack occurrences counted" 2 (Plan.occurrences p ~site:Fault.Net_ack);
  check "five injections recorded" 5 (Plan.injected_count p);
  let sites = List.map (fun r -> r.Plan.at_site) (Plan.injected p) in
  check "frame injections attributed" 4
    (List.length (List.filter (( = ) Fault.Net_frame) sites));
  check "ack injections attributed" 1
    (List.length (List.filter (( = ) Fault.Net_ack) sites));
  check_str "site names" "net_frame/net_ack"
    (Fault.site_name Fault.Net_frame ^ "/" ^ Fault.site_name Fault.Net_ack)

let test_plan_transport_probability_deterministic () =
  let drive seed =
    let p =
      Plan.create ~seed
        [ { Plan.site = Fault.Net_frame; trigger = Plan.With_probability 0.25;
            fault = Fault.Net_drop };
          { Plan.site = Fault.Net_ack; trigger = Plan.With_probability 0.25;
            fault = Fault.Net_dup } ]
    in
    let log = Buffer.create 256 in
    for i = 1 to 300 do
      let site = if i mod 2 = 0 then Fault.Net_frame else Fault.Net_ack in
      match Plan.check p ~site ~cycle:i with
      | Some k -> Buffer.add_string log
          (Printf.sprintf "%d:%s " i (Fault.kind_name k))
      | None -> ()
    done;
    Buffer.contents log
  in
  check_str "same seed, same transport fault stream" (drive 424242)
    (drive 424242);
  check_bool "different seed, different stream" true
    (drive 424242 <> drive 424243);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let s = drive 424242 in
  check_bool "drops fire" true (contains s "net_drop");
  check_bool "dups fire" true (contains s "net_dup")

let test_plan_validation () =
  Alcotest.check_raises "non-positive threshold"
    (Invalid_argument "Plan.create: trigger threshold must be > 0") (fun () ->
      ignore
        (Plan.create
           [ { Plan.site = Fault.Cpu; trigger = Plan.At_count 0;
               fault = Fault.Crash } ]));
  Alcotest.check_raises "probability out of range"
    (Invalid_argument "Plan.create: probability must be in [0,1]") (fun () ->
      ignore
        (Plan.create
           [ { Plan.site = Fault.Cpu; trigger = Plan.With_probability 1.5;
               fault = Fault.Crash } ]))

let test_plan_trace_and_obs () =
  let obs = Lvm_obs.Ctx.create () in
  let p =
    Plan.create
      [ { Plan.site = Fault.Log_dma; trigger = Plan.At_count 2;
          fault = Fault.Dma_fail } ]
  in
  Plan.set_obs p obs;
  ignore (hit p Fault.Log_dma 10);
  ignore (hit p Fault.Log_dma 25);
  check_str "trace line" "cycle=25 site=log_dma kind=dma_fail\n" (Plan.trace p);
  (match Plan.injected p with
  | [ { Plan.at_cycle; at_site; what } ] ->
    check "record cycle" 25 at_cycle;
    check_bool "record site" true (at_site = Fault.Log_dma);
    check_bool "record kind" true (what = Fault.Dma_fail)
  | _ -> Alcotest.fail "expected exactly one injection record");
  check "obs counter bumped" 1
    (Lvm_obs.Snapshot.get (Lvm_obs.Ctx.snapshot obs) "fault.injected");
  let events =
    List.filter
      (fun { Lvm_obs.Trace.event; _ } ->
        match event with Lvm_obs.Event.Fault_injected _ -> true | _ -> false)
      (Lvm_obs.Trace.entries (Lvm_obs.Ctx.trace obs))
  in
  check "one fault_injected event" 1 (List.length events)

(* {1 Machine-level crash injection} *)

let test_machine_crash_at () =
  let m = Machine.create ~frames:16 () in
  Machine.set_fault_plan m (Some (Plan.crash_at 500));
  let crashed_at = ref (-1) in
  (try
     for i = 0 to 1000 do
       Machine.compute m 10;
       ignore (Machine.read m ~paddr:(0x1000 + (i mod 64) * 4) ~size:4)
     done
   with Fault.Crashed { cycle; site } ->
     crashed_at := cycle;
     check_bool "crash at cpu site" true (site = Fault.Cpu));
  check_bool "crashed" true (!crashed_at >= 500);
  check_bool "crashed promptly" true (!crashed_at < 600);
  (* one-shot: post-crash (recovery) work proceeds on the same machine *)
  Machine.compute m 1000;
  check_bool "no re-crash after disarm" true (Machine.time m > !crashed_at)

let logged_machine () =
  let m = Machine.create ~frames:64 () in
  let logger = Machine.logger m in
  let next_log_page = ref 3 in
  Logger.load_pmt logger ~page:1 ~log_index:0;
  Logger.set_log_entry logger ~index:0 ~mode:Logger.Normal
    ~addr:(Addr.addr_of_page 2);
  Logger.set_fault_handler logger (function
    | Logger.Pmt_miss _ -> Logger.Drop
    | Logger.Log_addr_invalid { log_index } ->
      let p = !next_log_page in
      incr next_log_page;
      Logger.set_log_entry logger ~index:log_index ~mode:Logger.Normal
        ~addr:(Addr.addr_of_page p);
      Logger.Fixed);
  m

let settle logger =
  while Logger.busy logger do
    Logger.flush logger
  done

let test_logger_dma_fail () =
  let m = logged_machine () in
  Machine.set_fault_plan m
    (Some
       (Plan.create
          [ { Plan.site = Fault.Log_dma; trigger = Plan.At_count 2;
              fault = Fault.Dma_fail } ]));
  for i = 0 to 3 do
    Machine.write m ~paddr:(0x1000 + (i * 4)) ~size:4
      ~mode:Machine.Write_through ~logged:true (100 + i)
  done;
  settle (Machine.logger m);
  let p = Machine.perf m in
  check "one record lost" 1 p.Perf.log_records_lost;
  check "other records emitted" 3 p.Perf.log_records

(* {1 WAL fault injection and recovery (tentpole acceptance)} *)

let wal_fixture () =
  let k = Kernel.create () in
  let d = Lvm_rvm.Ramdisk.create k ~size:4096 in
  (k, d)

let payload v = Bytes.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))

(* one committed txn (off 0 <- 0x11223344), then one uncommitted data
   record for txn 2 (off 8 <- v2) *)
let committed_then_open d ~v2 =
  Lvm_rvm.Ramdisk.wal_append d
    (Lvm_rvm.Ramdisk.Data { txn = 1; off = 0; bytes = payload 0x11223344 });
  Lvm_rvm.Ramdisk.wal_append d (Lvm_rvm.Ramdisk.Commit { txn = 1 });
  Lvm_rvm.Ramdisk.wal_append d
    (Lvm_rvm.Ramdisk.Data { txn = 2; off = 8; bytes = payload v2 })

let word_of image off =
  let b = Bytes.sub image off 4 in
  Char.code (Bytes.get b 0)
  lor (Char.code (Bytes.get b 1) lsl 8)
  lor (Char.code (Bytes.get b 2) lsl 16)
  lor (Char.code (Bytes.get b 3) lsl 24)

let test_wal_torn_tail_truncated () =
  let k, d = wal_fixture () in
  committed_then_open d ~v2:0x5A5A5A5A;
  Machine.set_fault_plan (Kernel.machine k)
    (Some
       (Plan.create
          [ { Plan.site = Fault.Ramdisk_write; trigger = Plan.At_count 1;
              fault = Fault.Torn_write { keep = 9 } } ]));
  (* the next append tears mid-record and the machine dies *)
  (match
     Lvm_rvm.Ramdisk.wal_append d
       (Lvm_rvm.Ramdisk.Data { txn = 2; off = 12; bytes = payload 0x77 })
   with
  | () -> Alcotest.fail "torn write should crash"
  | exception Fault.Crashed { site; _ } ->
    check_bool "crashed at ramdisk_write" true (site = Fault.Ramdisk_write));
  Machine.set_fault_plan (Kernel.machine k) None;
  let before = Lvm_rvm.Ramdisk.log_bytes d in
  let image, r = Lvm_rvm.Ramdisk.recover d in
  check_bool "torn tail detected" true (r.Lvm_rvm.Ramdisk.torn <> None);
  check_bool "torn bytes truncated" true (r.Lvm_rvm.Ramdisk.truncated_bytes > 0);
  check "intact records survive" 3 r.Lvm_rvm.Ramdisk.scanned;
  check "one committed txn" 1 r.Lvm_rvm.Ramdisk.committed;
  check "committed record replayed" 1 r.Lvm_rvm.Ramdisk.replayed;
  check "committed value durable" 0x11223344 (word_of image 0);
  check "uncommitted value invisible" 0 (word_of image 8);
  check "torn record not replayed" 0 (word_of image 12);
  check_bool "log physically repaired" true
    (Lvm_rvm.Ramdisk.log_bytes d < before);
  (* recovery is idempotent: a second scan finds a clean log *)
  let image2, r2 = Lvm_rvm.Ramdisk.recover d in
  check_bool "second recovery clean" true (r2.Lvm_rvm.Ramdisk.torn = None);
  check "second recovery truncates nothing" 0
    r2.Lvm_rvm.Ramdisk.truncated_bytes;
  check_bool "second recovery same image" true (image = image2)

let test_wal_bit_flip_detected () =
  let k, d = wal_fixture () in
  committed_then_open d ~v2:0x5A5A5A5A;
  Machine.set_fault_plan (Kernel.machine k)
    (Some
       (Plan.create
          [ { Plan.site = Fault.Ramdisk_write; trigger = Plan.At_count 1;
              fault = Fault.Bit_flip { byte = 26; bit = 3 } } ]));
  Lvm_rvm.Ramdisk.wal_append d
    (Lvm_rvm.Ramdisk.Data { txn = 2; off = 12; bytes = payload 0x77 });
  Machine.set_fault_plan (Kernel.machine k) None;
  let image, r = Lvm_rvm.Ramdisk.recover d in
  check_str "checksum catches the flip" "checksum mismatch"
    (match r.Lvm_rvm.Ramdisk.torn with Some s -> s | None -> "no");
  check_bool "corrupt record truncated" true
    (r.Lvm_rvm.Ramdisk.truncated_bytes > 0);
  check "corrupt record not replayed" 0 (word_of image 12);
  check "committed value durable" 0x11223344 (word_of image 0)

let test_wal_failed_write_lost () =
  let k, d = wal_fixture () in
  Machine.set_fault_plan (Kernel.machine k)
    (Some
       (Plan.create
          [ { Plan.site = Fault.Ramdisk_write; trigger = Plan.At_count 1;
              fault = Fault.Failed_write } ]));
  committed_then_open d ~v2:0x5A5A5A5A;
  Machine.set_fault_plan (Kernel.machine k) None;
  (* record 1 (the data record of txn 1) silently vanished; the log is
     otherwise intact, so recovery sees a clean but shorter log *)
  check "two records on disk" 2 (Lvm_rvm.Ramdisk.entry_count d);
  let image, r = Lvm_rvm.Ramdisk.recover d in
  check_bool "no torn tail" true (r.Lvm_rvm.Ramdisk.torn = None);
  check "lost record not replayed" 0 (word_of image 0)

(* {1 RLVM crash consistency and log exhaustion} *)

let rlvm_fixture ?log_pages ?max_log_pages ~size () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let d = Lvm_rvm.Rlvm.Config.default in
  let config =
    { d with
      Lvm_rvm.Rlvm.Config.log_pages =
        Option.value log_pages ~default:d.Lvm_rvm.Rlvm.Config.log_pages;
      max_log_pages }
  in
  let r = Lvm_rvm.Rlvm.make config k sp ~size in
  (k, r)

let test_rlvm_crash_mid_txn () =
  let k, r = rlvm_fixture ~size:4096 () in
  Lvm_rvm.Rlvm.begin_txn r;
  Lvm_rvm.Rlvm.write_word r ~off:0 7;
  Lvm_rvm.Rlvm.commit r;
  let crash_from = Kernel.time k + 1 in
  Machine.set_fault_plan (Kernel.machine k) (Some (Plan.crash_at crash_from));
  (match
     Lvm_rvm.Rlvm.begin_txn r;
     Lvm_rvm.Rlvm.write_word r ~off:4 9;
     Lvm_rvm.Rlvm.write_word r ~off:8 11
   with
  | () -> Alcotest.fail "expected a crash"
  | exception Fault.Crashed _ -> ());
  Machine.set_fault_plan (Kernel.machine k) None;
  let report = Lvm_rvm.Rlvm.recover r in
  check "committed txn recovered" 1 report.Lvm_rvm.Ramdisk.committed;
  check "committed word durable" 7 (Lvm_rvm.Rlvm.read_word r ~off:0);
  check "uncommitted word invisible" 0 (Lvm_rvm.Rlvm.read_word r ~off:4);
  check "uncommitted word invisible (2)" 0 (Lvm_rvm.Rlvm.read_word r ~off:8);
  (* store usable again after recovery *)
  Lvm_rvm.Rlvm.begin_txn r;
  Lvm_rvm.Rlvm.write_word r ~off:4 13;
  Lvm_rvm.Rlvm.commit r;
  check "post-recovery commit works" 13 (Lvm_rvm.Rlvm.read_word r ~off:4)

let test_rlvm_backpressure_extends_log () =
  (* minimal provision, generous ceiling: a transaction whose log traffic
     overflows the initial provision extends the log instead of absorbing *)
  let _k, r = rlvm_fixture ~log_pages:5 ~max_log_pages:12 ~size:4096 () in
  let initial = Segment.pages (Lvm_rvm.Rlvm.log_segment r) in
  Lvm_rvm.Rlvm.begin_txn r;
  for i = 0 to 1999 do
    Lvm_rvm.Rlvm.write_word r ~off:((i mod 1024) * 4) i
  done;
  Lvm_rvm.Rlvm.commit r;
  check_bool "log extended under pressure" true
    (Segment.pages (Lvm_rvm.Rlvm.log_segment r) > initial);
  check "last value committed" 1999 (Lvm_rvm.Rlvm.read_word r ~off:(975 * 4));
  check "first-pass value committed" 1023
    (Lvm_rvm.Rlvm.read_word r ~off:(1023 * 4))

let test_rlvm_log_exhaustion_typed () =
  (* same pressure, but the ceiling equals the provision: the reservation
     fails with a typed error before any record is lost *)
  let _k, r = rlvm_fixture ~log_pages:5 ~max_log_pages:5 ~size:4096 () in
  Lvm_rvm.Rlvm.begin_txn r;
  let raised = ref false in
  (try
     for i = 0 to 1999 do
       Lvm_rvm.Rlvm.write_word r ~off:((i mod 1024) * 4) i
     done
   with Error.Lvm_error (Error.Log_exhausted { pos; capacity; _ }) ->
     raised := true;
     check_bool "position within capacity" true (pos <= capacity));
  check_bool "typed exhaustion raised" true !raised;
  (* graceful degradation: abort releases the log, the store survives *)
  Lvm_rvm.Rlvm.abort r;
  Lvm_rvm.Rlvm.begin_txn r;
  Lvm_rvm.Rlvm.write_word r ~off:0 21;
  Lvm_rvm.Rlvm.commit r;
  check "store usable after exhaustion" 21 (Lvm_rvm.Rlvm.read_word r ~off:0)

let test_rlvm_forced_absorption_fails_commit () =
  let k, r = rlvm_fixture ~size:4096 () in
  (* force the kernel's log-segment provisioning to report exhaustion the
     next time the log needs a page, pushing the segment into absorption *)
  Machine.set_fault_plan (Kernel.machine k)
    (Some
       (Plan.create
          [ { Plan.site = Fault.Log_segment; trigger = Plan.Every 1;
              fault = Fault.Log_exhaust } ]));
  Lvm_rvm.Rlvm.begin_txn r;
  let failed = ref false in
  (try
     (* enough traffic to fill the first log page and demand another *)
     for i = 0 to 399 do
       Lvm_rvm.Rlvm.write_word r ~off:((i mod 1024) * 4) i
     done;
     Lvm_rvm.Rlvm.commit r
   with Error.Lvm_error (Error.Log_exhausted _) -> failed := true);
  check_bool "commit refused after absorption" true !failed;
  Machine.set_fault_plan (Kernel.machine k) None;
  Lvm_rvm.Rlvm.abort r;
  Lvm_rvm.Rlvm.begin_txn r;
  Lvm_rvm.Rlvm.write_word r ~off:0 5;
  Lvm_rvm.Rlvm.commit r;
  check "store recovers after forced exhaustion" 5
    (Lvm_rvm.Rlvm.read_word r ~off:0)

let test_rlvm_torn_at_extent_seam () =
  (* a transaction whose redo stream crosses an extent seam mid-flight,
     then a torn WAL write during commit: the crash rolls the whole
     transaction back and the torn tail is truncated — the extent
     machinery adds no new failure mode *)
  let k, r = rlvm_fixture ~log_pages:8 ~max_log_pages:8 ~size:4096 () in
  Lvm_rvm.Rlvm.begin_txn r;
  for i = 0 to 1099 do
    Lvm_rvm.Rlvm.write_word r ~off:((i mod 1024) * 4) (i + 1)
  done;
  let s = Lvm_log.stats (Lvm_rvm.Rlvm.log r) in
  check_bool "stream crossed an extent seam" true (s.Lvm_log.switches >= 1);
  Machine.set_fault_plan (Kernel.machine k)
    (Some
       (Plan.create
          [ { Plan.site = Fault.Ramdisk_write; trigger = Plan.At_count 50;
              fault = Fault.Torn_write { keep = 7 } } ]));
  (match Lvm_rvm.Rlvm.commit r with
  | () -> Alcotest.fail "torn write should crash the commit"
  | exception Fault.Crashed { site; _ } ->
    check_bool "crashed at ramdisk_write" true (site = Fault.Ramdisk_write));
  Machine.set_fault_plan (Kernel.machine k) None;
  let report = Lvm_rvm.Rlvm.recover r in
  check_bool "torn tail truncated" true
    (report.Lvm_rvm.Ramdisk.truncated_bytes > 0);
  check "no transaction committed" 0 report.Lvm_rvm.Ramdisk.committed;
  for i = 0 to 1023 do
    if Lvm_rvm.Rlvm.read_word r ~off:(i * 4) <> 0 then
      Alcotest.fail
        (Printf.sprintf "uncommitted word %d visible after recovery" i)
  done;
  Lvm_rvm.Rlvm.begin_txn r;
  Lvm_rvm.Rlvm.write_word r ~off:0 9;
  Lvm_rvm.Rlvm.commit r;
  check "store usable after seam crash" 9 (Lvm_rvm.Rlvm.read_word r ~off:0)

let test_rlvm_group_commit_recovery () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let r = Lvm_rvm.Rlvm.make { Lvm_rvm.Rlvm.Config.default with group = 4 } k sp ~size:4096 in
  check "group recorded" 4 (Lvm_rvm.Rlvm.group r);
  for i = 0 to 5 do
    Lvm_rvm.Rlvm.begin_txn r;
    Lvm_rvm.Rlvm.write_word r ~off:(i * 4) (100 + i);
    Lvm_rvm.Rlvm.commit r
  done;
  check "two commits pending behind the force" 2
    (Lvm_rvm.Rlvm.pending_commits r);
  (* crash: the unforced batch rolls back to the last forced state *)
  let report = Lvm_rvm.Rlvm.recover r in
  check "only the forced batch replays" 4 report.Lvm_rvm.Ramdisk.committed;
  for i = 0 to 3 do
    check
      (Printf.sprintf "forced commit %d durable" i)
      (100 + i)
      (Lvm_rvm.Rlvm.read_word r ~off:(i * 4))
  done;
  for i = 4 to 5 do
    check
      (Printf.sprintf "unforced commit %d rolled back" i)
      0
      (Lvm_rvm.Rlvm.read_word r ~off:(i * 4))
  done;
  (* redo the lost tail and flush: the whole batch becomes durable *)
  for i = 4 to 5 do
    Lvm_rvm.Rlvm.begin_txn r;
    Lvm_rvm.Rlvm.write_word r ~off:(i * 4) (100 + i);
    Lvm_rvm.Rlvm.commit r
  done;
  check_bool "commits pending again" true (Lvm_rvm.Rlvm.pending_commits r > 0);
  Lvm_rvm.Rlvm.flush_commits r;
  check "flush drains the batch" 0 (Lvm_rvm.Rlvm.pending_commits r);
  ignore (Lvm_rvm.Rlvm.recover r);
  for i = 0 to 5 do
    check
      (Printf.sprintf "word %d durable after flush" i)
      (100 + i)
      (Lvm_rvm.Rlvm.read_word r ~off:(i * 4))
  done

(* {1 Logger overload recovery (satellite)} *)

let overload_events m =
  List.fold_left
    (fun (enters, exits, suspended) { Lvm_obs.Trace.event; _ } ->
      match event with
      | Lvm_obs.Event.Overload_enter _ -> (enters + 1, exits, suspended)
      | Lvm_obs.Event.Overload_exit { suspended = s } ->
        (enters, exits + 1, suspended + s)
      | _ -> (enters, exits, suspended))
    (0, 0, 0)
    (Lvm_obs.Trace.entries (Lvm_obs.Ctx.trace (Machine.obs m)))

let test_overload_recovery () =
  let m = logged_machine () in
  (* back-to-back logged writes with no compute: the FIFO fills faster
     than DMA drains it and the overload interrupt fires (Fig. 11, c=0) *)
  for i = 0 to 1499 do
    Machine.write m ~paddr:(0x1000 + (i * 4 mod Addr.page_size)) ~size:4
      ~mode:Machine.Write_through ~logged:true i
  done;
  let p = Machine.perf m in
  check_bool "overloads occurred" true (p.Perf.overloads > 0);
  (* recovery: the interrupt drains the FIFOs, so occupancy is back
     below the threshold as soon as the burst ends *)
  check_bool "occupancy back below threshold" true
    (Logger.occupancy (Machine.logger m) < Cycles.logger_fifo_threshold);
  let enters, exits, suspended = overload_events m in
  check "every overload entered is exited" enters exits;
  check "Perf.overloads agrees with trace" p.Perf.overloads enters;
  (* each overload's suspension is charged exactly once: the perf total
     is the sum of the per-event suspensions *)
  check "overload cycles charged once" suspended p.Perf.overload_cycles;
  check_bool "suspension includes kernel overhead" true
    (p.Perf.overload_cycles >= p.Perf.overloads * Cycles.overload_suspend);
  (* the obs snapshot view and the raw perf record agree *)
  check "snapshot agrees with perf" p.Perf.overloads
    (Lvm_obs.Snapshot.get (Machine.snapshot m) "overloads")

let test_forced_fifo_overrun () =
  let m = logged_machine () in
  Machine.set_fault_plan m
    (Some
       (Plan.create
          [ { Plan.site = Fault.Logger_admit; trigger = Plan.At_count 1;
              fault = Fault.Fifo_overrun } ]));
  (* a single logged write: occupancy is far below the threshold, but the
     injected overrun forces the overload interrupt anyway *)
  Machine.write m ~paddr:0x1000 ~size:4 ~mode:Machine.Write_through
    ~logged:true 1;
  let p = Machine.perf m in
  check "forced overload taken" 1 p.Perf.overloads;
  check_bool "suspension charged" true
    (p.Perf.overload_cycles >= Cycles.overload_suspend);
  check "injection traced" 1
    (Lvm_obs.Snapshot.get (Machine.snapshot m) "fault.injected");
  (* recovered: the next write admits normally *)
  Machine.write m ~paddr:0x1004 ~size:4 ~mode:Machine.Write_through
    ~logged:true 2;
  check "no further overloads" 1 p.Perf.overloads

(* {1 Crash sweep smoke test} *)

let test_crash_sweep_small () =
  let o = Lvm_tpc.Crash_sweep.run ~seed:11 ~txns:4 ~points:12 ~torn_points:4 () in
  check "no invariant violations" 0 (List.length o.Lvm_tpc.Crash_sweep.failures);
  check_bool "crashes fired" true (o.Lvm_tpc.Crash_sweep.crashed > 0);
  check_bool "torn tails detected" true (o.Lvm_tpc.Crash_sweep.torn > 0);
  let o2 =
    Lvm_tpc.Crash_sweep.run ~seed:11 ~txns:4 ~points:12 ~torn_points:4 ()
  in
  check_str "two sweeps byte-identical" o.Lvm_tpc.Crash_sweep.trace
    o2.Lvm_tpc.Crash_sweep.trace

let suites =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "at-cycle one-shot" `Quick test_plan_at_cycle;
        Alcotest.test_case "at-count and every" `Quick
          test_plan_at_count_and_every;
        Alcotest.test_case "declaration order" `Quick
          test_plan_declaration_order;
        Alcotest.test_case "seeded probability deterministic" `Quick
          test_plan_probability_deterministic;
        Alcotest.test_case "transport sites accounted" `Quick
          test_plan_transport_sites;
        Alcotest.test_case "transport probability deterministic" `Quick
          test_plan_transport_probability_deterministic;
        Alcotest.test_case "validation" `Quick test_plan_validation;
        Alcotest.test_case "trace and obs" `Quick test_plan_trace_and_obs;
      ] );
    ( "fault.machine",
      [
        Alcotest.test_case "crash at cycle" `Quick test_machine_crash_at;
        Alcotest.test_case "log DMA failure" `Quick test_logger_dma_fail;
      ] );
    ( "fault.wal",
      [
        Alcotest.test_case "torn tail truncated, not replayed" `Quick
          test_wal_torn_tail_truncated;
        Alcotest.test_case "bit flip caught by checksum" `Quick
          test_wal_bit_flip_detected;
        Alcotest.test_case "failed write lost" `Quick
          test_wal_failed_write_lost;
      ] );
    ( "fault.rlvm",
      [
        Alcotest.test_case "crash mid-transaction" `Quick
          test_rlvm_crash_mid_txn;
        Alcotest.test_case "backpressure extends log" `Quick
          test_rlvm_backpressure_extends_log;
        Alcotest.test_case "log exhaustion typed error" `Quick
          test_rlvm_log_exhaustion_typed;
        Alcotest.test_case "forced absorption fails commit" `Quick
          test_rlvm_forced_absorption_fails_commit;
        Alcotest.test_case "torn write at extent seam" `Quick
          test_rlvm_torn_at_extent_seam;
        Alcotest.test_case "group commit recovery" `Quick
          test_rlvm_group_commit_recovery;
      ] );
    ( "fault.overload",
      [
        Alcotest.test_case "overload recovery accounting" `Quick
          test_overload_recovery;
        Alcotest.test_case "forced FIFO overrun" `Quick
          test_forced_fifo_overrun;
      ] );
    ( "fault.sweep",
      [ Alcotest.test_case "small sweep deterministic" `Quick
          test_crash_sweep_small ] );
  ]
