(* Observability subsystem: the counter registry and snapshot deltas,
   bounded histograms, the cycle-stamped trace ring, sink round-trips,
   and agreement between registry snapshots and the hardware Perf
   record they subsume. *)

open Lvm_obs

let check_int = Alcotest.(check int)

(* {1 Counters and snapshots} *)

let test_counter_registry () =
  let r = Counter.create () in
  let a = Counter.counter r "a" in
  let b = Counter.counter r "b" in
  Counter.incr a;
  Counter.add a 4;
  Counter.set b 7;
  check_int "a" 5 (Counter.value a);
  check_int "b" 7 (Counter.value b);
  (* find-or-create returns the same counter *)
  Counter.incr (Counter.counter r "a");
  check_int "a again" 6 (Counter.value a);
  Alcotest.(check (list (pair string int)))
    "registration order" [ ("a", 6); ("b", 7) ] (Counter.to_alist r);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Counter.add: negative increment") (fun () ->
      Counter.add a (-1));
  Counter.reset r;
  check_int "reset" 0 (Counter.value a);
  check_int "registrations kept" 2 (List.length (Counter.to_alist r))

let test_snapshot_delta () =
  let before = Snapshot.of_alist [ ("x", 3); ("y", 10) ] in
  let after = Snapshot.of_alist [ ("x", 5); ("y", 10); ("z", 2) ] in
  let d = Snapshot.delta ~before ~after in
  check_int "x" 2 (Snapshot.get d "x");
  check_int "y" 0 (Snapshot.get d "y");
  check_int "z (absent before)" 2 (Snapshot.get d "z");
  check_int "absent name is 0" 0 (Snapshot.get d "nope");
  let m = Snapshot.merge before after in
  check_int "merge sums" 8 (Snapshot.get m "x");
  check_int "merge union" 2 (Snapshot.get m "z");
  check_int "total" 17 (Snapshot.total after)

(* {1 Histograms} *)

let test_histogram () =
  let h = Histogram.create ~name:"h" ~bounds:(Histogram.pow2_bounds ~max_exp:4) in
  Alcotest.(check (array int))
    "pow2 bounds" [| 0; 1; 2; 4; 8; 16 |] (Histogram.bounds h);
  List.iter (Histogram.observe h) [ 0; 1; 3; 3; 9; 100 ];
  check_int "count" 6 (Histogram.count h);
  check_int "sum" 116 (Histogram.sum h);
  check_int "max" 100 (Histogram.max_seen h);
  (* 0 -> le:0; 1 -> le:1; 3,3 -> le:4; 9 -> le:16; 100 -> overflow *)
  Alcotest.(check (array int))
    "bucket counts" [| 1; 1; 0; 2; 0; 1; 1 |] (Histogram.counts h);
  (match List.rev (Histogram.buckets h) with
  | (None, n) :: _ -> check_int "overflow bucket" 1 n
  | _ -> Alcotest.fail "missing overflow bucket")

let test_histogram_merge () =
  let bounds = Histogram.pow2_bounds ~max_exp:3 in
  let a = Histogram.create ~name:"h" ~bounds in
  let b = Histogram.create ~name:"h" ~bounds in
  let other = Histogram.create ~name:"other" ~bounds in
  Histogram.observe a 2;
  Histogram.observe b 5;
  Histogram.observe b 2;
  Alcotest.(check bool) "mergeable" true (Histogram.mergeable a b);
  Alcotest.(check bool) "name mismatch" false (Histogram.mergeable a other);
  let m = Histogram.merge a b in
  check_int "merged count" 3 (Histogram.count m);
  check_int "merged sum" 9 (Histogram.sum m);
  check_int "merged max" 5 (Histogram.max_seen m);
  (* merge leaves the inputs untouched *)
  check_int "a untouched" 1 (Histogram.count a)

(* {1 Trace ring} *)

let test_trace_ring () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record t ~at:(i * 10)
      (Event.Page_fault { space = 0; vaddr = i })
  done;
  check_int "length bounded" 4 (Trace.length t);
  check_int "total" 6 (Trace.total t);
  check_int "dropped" 2 (Trace.dropped t);
  (match Trace.entries t with
  | { Trace.at; event = Event.Page_fault { vaddr; _ } } :: _ ->
    check_int "oldest surviving stamp" 30 at;
    check_int "oldest surviving vaddr" 3 vaddr
  | _ -> Alcotest.fail "unexpected trace shape");
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t)

(* {1 Machine integration: registry subsumes Perf} *)

(* A fixed workload touching paging, logging and the caches. *)
let workload k =
  let open Lvm_vm in
  let sp = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:8192 in
  let region = Kernel.create_region k seg in
  let ls =
    Kernel.create_log_segment k ~size:(4 * Lvm_machine.Addr.page_size)
  in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  for i = 0 to 199 do
    Kernel.write_word k sp (base + (i * 4 mod 8192)) i
  done;
  Kernel.sync_log k ls

let test_snapshot_matches_perf () =
  let k = Lvm_vm.Kernel.create () in
  let before = Lvm_vm.Kernel.snapshot k in
  workload k;
  let after = Lvm_vm.Kernel.snapshot k in
  let d = Snapshot.delta ~before ~after in
  let perf = Lvm_machine.Machine.perf (Lvm_vm.Kernel.machine k) in
  (* every perf field appears under its own name with the same value *)
  List.iter
    (fun (name, v) -> check_int ("perf field " ^ name) v (Snapshot.get d name))
    (Lvm_machine.Perf.to_alist perf);
  (* the workload really did something observable *)
  Alcotest.(check bool) "page faults happened" true
    (Snapshot.get d "page_faults" > 0);
  Alcotest.(check bool) "log records happened" true
    (Snapshot.get d "log_records" > 0);
  (* kernel-level counters ride alongside the perf fields *)
  Alcotest.(check bool) "kernel counter present" true
    (Snapshot.get d "kernel.pages_materialized" > 0)

let test_collector () =
  let (), collector =
    Collector.with_collector (fun () ->
        let k1 = Lvm_vm.Kernel.create () in
        let k2 = Lvm_vm.Kernel.create () in
        workload k1;
        workload k2)
  in
  check_int "two machines captured" 2 (List.length (Collector.ctxs collector));
  let merged = Collector.snapshot collector in
  let one = Ctx.snapshot (List.hd (Collector.ctxs collector)) in
  check_int "merged doubles identical machines"
    (2 * Snapshot.get one "log_records")
    (Snapshot.get merged "log_records");
  (* merged histograms keep per-machine observations *)
  let wait =
    List.find (fun h -> Histogram.name h = "bus.wait_cycles")
      (Collector.histograms collector)
  in
  Alcotest.(check bool) "bus waits observed" true (Histogram.count wait > 0)

(* {1 Trace determinism} *)

let render_trace k =
  Format.asprintf "%a" Trace.pp (Ctx.trace (Lvm_vm.Kernel.obs k))

let test_trace_deterministic () =
  let run () =
    let k = Lvm_vm.Kernel.create () in
    workload k;
    render_trace k
  in
  Alcotest.(check string) "byte-identical traces" (run ()) (run ())

(* {1 JSON sink round-trip}

   A minimal recursive-descent parser for the subset the sink emits:
   objects, arrays, strings without escapes, and integers (plus the
   bare word [inf] used for overflow bucket bounds). *)

type json = S of string | I of int | O of (string * json) list | A of json list

let parse_json (s : string) : json =
  let pos = ref 0 in
  let peek () = s.[!pos] in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then
      Alcotest.fail (Printf.sprintf "expected %c at %d" c !pos);
    advance ()
  in
  let rec value () =
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> S (string_lit ())
    | 'i' ->
      (* "inf" overflow bound *)
      pos := !pos + 3;
      S "inf"
    | _ -> I (int_lit ())
  and obj () =
    expect '{';
    if peek () = '}' then (advance (); O [])
    else begin
      let rec fields acc =
        let k = string_lit () in
        expect ':';
        let v = value () in
        let acc = (k, v) :: acc in
        if peek () = ',' then (advance (); fields acc)
        else (expect '}'; O (List.rev acc))
      in
      fields []
    end
  and arr () =
    expect '[';
    if peek () = ']' then (advance (); A [])
    else begin
      let rec elems acc =
        let v = value () in
        let acc = v :: acc in
        if peek () = ',' then (advance (); elems acc)
        else (expect ']'; A (List.rev acc))
      in
      elems []
    end
  and string_lit () =
    expect '"';
    let start = !pos in
    while peek () <> '"' do advance () done;
    let r = String.sub s start (!pos - start) in
    advance ();
    r
  and int_lit () =
    let start = !pos in
    if peek () = '-' then advance ();
    while !pos < String.length s && (match peek () with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    int_of_string (String.sub s start (!pos - start))
  in
  let v = value () in
  if !pos <> String.length s then Alcotest.fail "trailing JSON input";
  v

let field name = function
  | O fields -> List.assoc name fields
  | _ -> Alcotest.fail ("not an object looking up " ^ name)

let test_json_roundtrip () =
  let k = Lvm_vm.Kernel.create () in
  workload k;
  let snap = Lvm_vm.Kernel.snapshot k in
  let obs = Lvm_vm.Kernel.obs k in
  let blob =
    Sink.blob_json ~label:"test" ~histograms:(Ctx.histograms obs)
      ~trace:(Ctx.trace obs) snap
  in
  let j = parse_json (String.trim blob) in
  (match field "label" j with
  | S "test" -> ()
  | _ -> Alcotest.fail "label mismatch");
  (* counters round-trip exactly, in order *)
  (match field "counters" j with
  | O fields ->
    Alcotest.(check (list (pair string int)))
      "counters round-trip"
      (Snapshot.to_alist snap)
      (List.map
         (fun (k, v) ->
           match v with I i -> (k, i) | _ -> Alcotest.fail "non-int counter")
         fields)
  | _ -> Alcotest.fail "counters not an object");
  (* each histogram round-trips name, count and sum *)
  (match field "histograms" j with
  | A hs ->
    check_int "histogram count" (List.length (Ctx.histograms obs))
      (List.length hs);
    List.iter2
      (fun h jh ->
        (match field "name" jh with
        | S n -> Alcotest.(check string) "histogram name" (Histogram.name h) n
        | _ -> Alcotest.fail "histogram name not a string");
        (match field "count" jh with
        | I c -> check_int "histogram count field" (Histogram.count h) c
        | _ -> Alcotest.fail "histogram count not an int");
        match field "buckets" jh with
        | A buckets ->
          check_int "bucket rows"
            (Array.length (Histogram.bounds h) + 1)
            (List.length buckets)
        | _ -> Alcotest.fail "buckets not an array")
      (Ctx.histograms obs) hs
  | _ -> Alcotest.fail "histograms not an array");
  (* the trace made it through as an array of event objects *)
  match field "trace" j with
  | A entries ->
    check_int "trace entries"
      (Trace.length (Ctx.trace obs))
      (List.length entries);
    List.iter
      (fun e ->
        match (field "at" e, field "ev" e) with
        | I _, S _ -> ()
        | _ -> Alcotest.fail "malformed trace entry")
      entries
  | _ -> Alcotest.fail "trace not an array"

let test_format_names () =
  List.iter
    (fun f ->
      match Sink.format_of_string (Sink.format_to_string f) with
      | Some f' when f' = f -> ()
      | _ -> Alcotest.fail "format name does not round-trip")
    Sink.all_formats;
  Alcotest.(check bool) "unknown format rejected" true
    (Sink.format_of_string "xml" = None)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "counter registry" `Quick test_counter_registry;
        Alcotest.test_case "snapshot delta" `Quick test_snapshot_delta;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "trace ring" `Quick test_trace_ring;
        Alcotest.test_case "snapshot matches perf" `Quick
          test_snapshot_matches_perf;
        Alcotest.test_case "collector" `Quick test_collector;
        Alcotest.test_case "trace deterministic" `Quick
          test_trace_deterministic;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "format names" `Quick test_format_names;
      ] );
  ]
