(* Property-based tests over a dependency-free harness.

   The harness draws every random choice from the repository's own
   splitmix64 stream ([Lvm_fault.Splitmix]) — never the global [Random]
   state — so each case is reproducible from an integer seed. The suite
   seed comes from [LVM_TEST_SEED] (deterministic default) and the case
   count from [LVM_PROP_CASES] (default 1000); a failing case is shrunk
   by halving its size parameter, re-running the identical stream, and
   reported with everything needed to replay it. *)

open Lvm_machine
module Sm = Lvm_fault.Splitmix

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let cases = env_int "LVM_PROP_CASES" 1000
let suite_seed = env_int "LVM_TEST_SEED" 0x5eed

(* Run [prop] on [cases] cases. Each case derives its own seed from the
   suite seed, builds a fresh stream from it, and draws a size up to
   [max_size]; [prop rng size] signals failure by raising. On failure the
   size is halved (same stream!) until the property passes, and the
   smallest still-failing size is reported. *)
let check ?(max_size = 256) ?(cases = cases) name prop =
  let failing = ref None in
  (try
     for case = 0 to cases - 1 do
       let case_seed = (suite_seed * 1_000_003) + case in
       let size = 1 + Sm.int (Sm.create ~seed:case_seed) ~bound:max_size in
       let fails sz =
         match prop (Sm.create ~seed:(case_seed * 2 + 1)) sz with
         | () -> None
         | exception e -> Some (Printexc.to_string e)
       in
       match fails size with
       | None -> ()
       | Some msg ->
         let rec shrink sz msg =
           if sz <= 1 then (sz, msg)
           else
             match fails (sz / 2) with
             | Some msg' -> shrink (sz / 2) msg'
             | None -> (sz, msg)
         in
         failing := Some (case, case_seed, shrink size msg);
         raise Exit
     done
   with Exit -> ());
  match !failing with
  | None -> ()
  | Some (case, case_seed, (sz, msg)) ->
    Alcotest.fail
      (Printf.sprintf
         "%s: case %d failed at size %d: %s\n\
          reproduce with LVM_TEST_SEED=%d (case seed %d)"
         name case sz msg suite_seed case_seed)

let expect cond fmt = Printf.ksprintf (fun s -> if not cond then failwith s) fmt

(* {1 Log_record encode/decode round-trip} *)

let random_record rng =
  {
    Log_record.addr = Sm.int rng ~bound:0x40000000 * 4 mod 0x100000000;
    value =
      Int64.to_int (Int64.logand (Sm.next_u64 rng) 0xFFFFFFFFL);
    size = List.nth [ 1; 2; 4 ] (Sm.int rng ~bound:3);
    timestamp = Int64.to_int (Int64.logand (Sm.next_u64 rng) 0xFFFFFFFFL);
    pre_image = Sm.bool rng;
  }

let prop_log_record rng size =
  let mem = Physmem.create ~frames:1 in
  for _ = 1 to size do
    let r = random_record rng in
    (* through a byte buffer at a random position *)
    let pos = Sm.int rng ~bound:(256 - Log_record.bytes) in
    let buf = Bytes.make 256 '\xAA' in
    Log_record.encode_bytes buf ~pos r;
    let r' = Log_record.decode_bytes buf ~pos in
    expect (Log_record.equal r r') "bytes round-trip: %s <> %s"
      (Format.asprintf "%a" Log_record.pp r)
      (Format.asprintf "%a" Log_record.pp r');
    (* through simulated physical memory *)
    let paddr = Sm.int rng ~bound:(Addr.page_size - Log_record.bytes) in
    Log_record.encode_to mem ~paddr r;
    let r'' = Log_record.decode_from mem ~paddr in
    expect (Log_record.equal r r'') "physmem round-trip: %s <> %s"
      (Format.asprintf "%a" Log_record.pp r)
      (Format.asprintf "%a" Log_record.pp r'')
  done

(* {1 FIFO vs a naive list model}

   The ring buffer must agree with the obvious model: a front-first list
   drained from the head while the head's drain time has passed, refusing
   pushes beyond capacity. *)

let prop_fifo rng size =
  let cap = 1 + Sm.int rng ~bound:(max 1 size) in
  let f = Fifo.create ~capacity:cap in
  let model = ref [] (* front first *) in
  let max_drain = ref 0 in
  let now = ref 0 in
  let model_drain () =
    let rec go = function
      | d :: rest when d <= !now -> go rest
      | l -> l
    in
    model := go !model
  in
  for _ = 1 to 4 * size do
    now := !now + Sm.int rng ~bound:8;
    model_drain ();
    let occ = Fifo.occupancy f ~now:!now in
    expect (occ = List.length !model) "occupancy %d, model %d" occ
      (List.length !model);
    expect
      (Fifo.head_drain_time f
      = match !model with [] -> None | d :: _ -> Some d)
      "head_drain_time disagrees with model";
    expect
      (Fifo.last_drain_time f = !max_drain)
      "last_drain_time %d, model %d" (Fifo.last_drain_time f) !max_drain;
    let drain_time = !now + Sm.int rng ~bound:16 in
    if List.length !model < cap then begin
      Fifo.push f ~drain_time;
      model := !model @ [ drain_time ];
      if drain_time > !max_drain then max_drain := drain_time
    end
    else
      expect
        (match Fifo.push f ~drain_time with
        | () -> false
        | exception Invalid_argument _ -> true)
        "push beyond capacity %d did not raise" cap
  done

(* {1 Logger FIFO overload}

   Drive a standalone logger with back-to-back logged writes and check
   the hardware contract of Section 3.1 against the occupancy the
   threshold comparator sees: occupancy never exceeds the 819-entry
   capacity, and the overload interrupt fires on an admission exactly
   when occupancy has reached the 512-entry threshold. *)

let prop_logger_overload rng size =
  let clock = ref 0 in
  let perf = Perf.create () in
  let mem = Physmem.create ~frames:8 in
  let bus = Bus.create perf in
  let lg = Logger.create ~clock mem bus perf in
  (* data page 0 logs to a log page that the fault handler recycles
     forever, so the drain pipeline never runs out of log space *)
  let log_base = Addr.page_size in
  Logger.load_pmt lg ~page:0 ~log_index:0;
  Logger.set_log_entry lg ~index:0 ~mode:Logger.Normal ~addr:log_base;
  Logger.set_fault_handler lg (fun _ ->
      Logger.set_log_entry lg ~index:0 ~mode:Logger.Normal ~addr:log_base;
      Logger.Fixed);
  for i = 1 to 8 * size do
    clock := !clock + Sm.int rng ~bound:4;
    let occ = Logger.occupancy lg in
    expect
      (occ <= Cycles.logger_fifo_capacity)
      "occupancy %d exceeds capacity %d" occ Cycles.logger_fifo_capacity;
    let overloads = perf.Perf.overloads in
    Logger.snoop lg ~paddr:(4 * (i mod 1024)) ~vaddr:0 ~size:4 ~value:i;
    let fired = perf.Perf.overloads - overloads in
    if occ >= Cycles.logger_fifo_threshold then
      expect (fired = 1)
        "occupancy %d at threshold but no overload interrupt" occ
    else
      expect (fired = 0) "overload interrupt below threshold (occupancy %d)"
        occ;
    if fired = 1 then begin
      expect
        (Logger.occupancy lg < Cycles.logger_fifo_threshold)
        "FIFOs not drained below threshold after overload";
      expect
        (perf.Perf.overload_cycles >= Cycles.overload_suspend)
        "overload suspended fewer than %d cycles" Cycles.overload_suspend
    end
  done

(* Deterministic companion: saturating the logger must actually overload
   it (the property above is vacuous at tiny sizes). *)
let test_overload_fires () =
  let clock = ref 0 in
  let perf = Perf.create () in
  let mem = Physmem.create ~frames:8 in
  let bus = Bus.create perf in
  let lg = Logger.create ~clock mem bus perf in
  Logger.load_pmt lg ~page:0 ~log_index:0;
  Logger.set_log_entry lg ~index:0 ~mode:Logger.Normal ~addr:Addr.page_size;
  Logger.set_fault_handler lg (fun _ ->
      Logger.set_log_entry lg ~index:0 ~mode:Logger.Normal
        ~addr:Addr.page_size;
      Logger.Fixed);
  for i = 1 to 2000 do
    Logger.snoop lg ~paddr:(4 * (i mod 1024)) ~vaddr:0 ~size:4 ~value:i
  done;
  Alcotest.(check bool) "overload fired" true (perf.Perf.overloads > 0)

(* {1 Bus arbiter fairness}

   Under the deterministic round-robin scheduler every CPU issues one
   transaction per round, so no transaction ever waits behind more than
   [cpus - 1] others plus one round of clock skew: the arbitration wait
   is bounded by a constant independent of the run length, every CPU is
   granted every round, and (with several CPUs) every wait cycle is spent
   behind a different CPU's transaction, i.e. it is all contention. *)

let prop_bus_fairness rng size =
  let cpus = 2 + Sm.int rng ~bound:3 in
  let max_cycles = 32 in
  let max_compute = 64 in
  let perf = Perf.create () in
  let bus = Bus.create ~cpus perf in
  let clocks = Array.make cpus 0 in
  for _ = 1 to size do
    (* the round-robin scheduler advances the CPUs in lockstep: one
       compute burst per round, then each CPU's bus transaction in turn *)
    let compute = Sm.int rng ~bound:max_compute in
    for cpu = 0 to cpus - 1 do
      Bus.set_active bus cpu;
      let now = clocks.(cpu) + compute in
      let cycles = 1 + Sm.int rng ~bound:max_cycles in
      let fin = Bus.access bus ~track:Cpu ~now ~cycles in
      let wait = fin - cycles - now in
      expect (wait >= 0) "transaction finished early (wait %d)" wait;
      let bound = ((cpus - 1) * max_cycles) + max_compute in
      expect (wait <= bound) "cpu %d starved: waited %d > %d cycles" cpu wait
        bound;
      clocks.(cpu) <- fin
    done
  done;
  let waits = ref 0 in
  for cpu = 0 to cpus - 1 do
    expect
      (Bus.grants bus ~cpu = size)
      "cpu %d granted %d of %d transactions" cpu
      (Bus.grants bus ~cpu)
      size;
    waits := !waits + Bus.wait_cycles bus ~cpu
  done;
  expect
    (Bus.contention_cycles bus = !waits)
    "round-robin wait %d not all cross-CPU (contention %d)" !waits
    (Bus.contention_cycles bus)

(* {1 WAL checksum round-trip and torn-tail truncation}

   Random transaction histories (some committed, some left open) must
   recover to exactly the committed prefix applied in append order; a
   torn final record must be detected, truncated and never replayed. *)

let words = 64

let random_history rng ~size =
  (* returns (entries in append order, committed image) *)
  let committed = Bytes.make (words * 4) '\000' in
  let staged = Bytes.copy committed in
  let entries = ref [] in
  let ntxns = 1 + Sm.int rng ~bound:(max 1 (size / 16)) in
  for txn = 1 to ntxns do
    Bytes.blit committed 0 staged 0 (Bytes.length committed);
    for _ = 1 to 1 + Sm.int rng ~bound:4 do
      let off = 4 * Sm.int rng ~bound:(words - 2) in
      let len = 4 * (1 + Sm.int rng ~bound:2) in
      let payload =
        Bytes.init len (fun _ -> Char.chr (Sm.int rng ~bound:256))
      in
      Bytes.blit payload 0 staged off len;
      entries := Lvm_rvm.Ramdisk.Data { txn; off; bytes = payload } :: !entries
    done;
    if Sm.bool rng then begin
      entries := Lvm_rvm.Ramdisk.Commit { txn } :: !entries;
      Bytes.blit staged 0 committed 0 (Bytes.length staged)
    end
  done;
  (List.rev !entries, committed)

let prop_wal rng size =
  let k = Lvm_vm.Kernel.create ~frames:64 () in
  let rd = Lvm_rvm.Ramdisk.create k ~size:(words * 4) in
  let entries, committed = random_history rng ~size in
  List.iter (Lvm_rvm.Ramdisk.wal_append rd) entries;
  let image, report = Lvm_rvm.Ramdisk.recover rd in
  expect (report.Lvm_rvm.Ramdisk.torn = None) "intact log scanned as torn";
  expect
    (report.Lvm_rvm.Ramdisk.truncated_bytes = 0)
    "intact log lost %d bytes" report.Lvm_rvm.Ramdisk.truncated_bytes;
  expect
    (report.Lvm_rvm.Ramdisk.scanned = List.length entries)
    "scanned %d of %d records" report.Lvm_rvm.Ramdisk.scanned
    (List.length entries);
  expect (Bytes.equal image committed) "recovered image differs from model";
  (* Now tear the next append and crash. Any prefix of a record fails to
     parse (short header, short payload or checksum mismatch), so
     recovery must truncate the tail and land back on the same state. *)
  let keep = 1 + Sm.int rng ~bound:23 in
  Lvm_machine.Machine.set_fault_plan (Lvm_vm.Kernel.machine k)
    (Some
       (Lvm_fault.Plan.create
          [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Ramdisk_write;
              trigger = Lvm_fault.Plan.At_count 1;
              fault = Lvm_fault.Fault.Torn_write { keep } } ]));
  let torn_entry =
    Lvm_rvm.Ramdisk.Data
      { txn = 1000; off = 0; bytes = Bytes.make 8 '\xFF' }
  in
  (match Lvm_rvm.Ramdisk.wal_append rd torn_entry with
  | () -> failwith "torn write did not crash"
  | exception Lvm_fault.Fault.Crashed _ -> ());
  Lvm_machine.Machine.set_fault_plan (Lvm_vm.Kernel.machine k) None;
  let image', report' = Lvm_rvm.Ramdisk.recover rd in
  expect (report'.Lvm_rvm.Ramdisk.torn <> None) "torn tail not detected";
  expect
    (report'.Lvm_rvm.Ramdisk.truncated_bytes > 0)
    "torn tail not truncated";
  expect (Bytes.equal image' committed)
    "torn record leaked into the recovered image";
  (* recovery physically repaired the log: a second recovery is clean *)
  let image'', report'' = Lvm_rvm.Ramdisk.recover rd in
  expect (report''.Lvm_rvm.Ramdisk.torn = None) "repaired log still torn";
  expect (Bytes.equal image'' committed) "second recovery differs"

(* {1 Extent-ring round-trip}

   A log stream that crosses several extent seams must round-trip
   through [Log_reader.fold] — every record, in order, transparently
   across extent boundaries — and the ring accounting must agree with
   the stream's geometry. One-page extents put a seam at every page
   crossing, the worst case. *)

let prop_extent_ring rng size =
  let page = Addr.page_size in
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in
  let seg = Lvm_vm.Kernel.create_segment k ~size:page in
  let region = Lvm_vm.Kernel.create_region k seg in
  let log = Lvm_log.create ~extent_pages:1 k ~size:(4 * page) in
  let ls = Lvm_log.segment log in
  Lvm_vm.Kernel.set_region_log k region (Some ls);
  let base = Lvm_vm.Kernel.bind k sp region in
  let per_extent = page / Log_record.bytes in
  (* spans at least three of the ring's four extents, never overflows *)
  let n =
    (2 * per_extent) + 1
    + Sm.int rng ~bound:(min (2 * per_extent) (max 1 (8 * size)))
  in
  let expected = ref [] in
  for _ = 1 to n do
    let off = 4 * Sm.int rng ~bound:(page / 4) in
    let v = Int64.to_int (Int64.logand (Sm.next_u64 rng) 0xFFFFFFFFL) in
    Lvm_vm.Kernel.write_word k sp (base + off) v;
    expected := v :: !expected
  done;
  let expected = List.rev !expected in
  let count, got =
    Lvm_log.sync log;
    Lvm.Log_reader.fold k ls ~init:(0, []) ~f:(fun (c, acc) ~off r ->
        expect (off = c * Log_record.bytes) "record %d at offset %d" c off;
        (c + 1, r.Log_record.value :: acc))
  in
  expect (count = n) "fold saw %d of %d records" count n;
  expect (List.rev got = expected) "folded values differ from the stream";
  let s = Lvm_log.stats log in
  expect (s.Lvm_log.extents = 4) "ring has %d extents" s.Lvm_log.extents;
  let crossings = ((n * Log_record.bytes) - 1) / page in
  expect
    (s.Lvm_log.switches = crossings)
    "%d extent switches, geometry says %d" s.Lvm_log.switches crossings;
  expect
    (s.Lvm_log.write_pos = n * Log_record.bytes)
    "write_pos %d after %d records" s.Lvm_log.write_pos n

(* {1 Zipf sampler vs its own theory curve}

   The sampler's empirical frequency-rank curve must match the exact
   pmf it was built from, for whatever (n, theta) the case draws —
   uniform (theta 0) through heavily skewed — and a seed must replay
   the identical sample stream. *)

module Wl = Lvm_store.Workload

let prop_zipf rng size =
  let n = 2 + (size mod 62) in
  let theta = [| 0.0; 0.5; 0.99; 1.2; 1.5 |].(Sm.int rng ~bound:5) in
  let z = Wl.Zipf.create ~n ~theta in
  (* the pmf is a distribution: sums to 1, non-increasing in rank *)
  let mass = ref 0.0 in
  for r = 0 to n - 1 do
    let p = Wl.Zipf.pmf z r in
    expect (p > 0.0) "rank %d has zero mass" r;
    if r > 0 then
      expect
        (p <= Wl.Zipf.pmf z (r - 1) +. 1e-12)
        "pmf increases at rank %d (theta %.2f)" r theta;
    mass := !mass +. p
  done;
  expect (abs_float (!mass -. 1.0) < 1e-9) "pmf sums to %.12f" !mass;
  (* empirical frequencies track the pmf *)
  let samples = 4000 in
  let sample_seed = Int64.to_int (Sm.next_u64 rng) land 0xFFFFFF in
  let counts = Array.make n 0 in
  let s1 = Sm.create ~seed:sample_seed in
  for _ = 1 to samples do
    let r = Wl.Zipf.sample z s1 in
    expect (r >= 0 && r < n) "sample %d out of range" r;
    counts.(r) <- counts.(r) + 1
  done;
  for r = 0 to n - 1 do
    let p = Wl.Zipf.pmf z r in
    let emp = float_of_int counts.(r) /. float_of_int samples in
    let tol =
      (5.0 *. sqrt (p *. (1.0 -. p) /. float_of_int samples)) +. 0.005
    in
    expect
      (abs_float (emp -. p) <= tol)
      "rank %d: empirical %.4f vs pmf %.4f (n=%d theta=%.2f)" r emp p n theta
  done;
  (* determinism: the same seed replays the same stream *)
  let s2 = Sm.create ~seed:sample_seed in
  let replay = Array.make n 0 in
  for _ = 1 to samples do
    let r = Wl.Zipf.sample z s2 in
    replay.(r) <- replay.(r) + 1
  done;
  expect (replay = counts) "same seed, different sample stream"

(* {1 Split-then-merge round-trip}

   Move a random subset of shard 0's buckets to another shard and back:
   every key must read its pre-split value after both the split and the
   merge, the routing table must show exactly the moved buckets away
   (then none), and no key may resolve to a shard outside the table —
   one owner per bucket, always. *)

module St = Lvm_store.Store

let read_ok st key =
  match St.read st key with
  | Ok v -> v
  | Error e -> failwith (Lvm.Lvm_error.to_string e)

let route_invariant st ~label =
  let shards = (St.config st).St.Config.shards in
  let route = St.route_table st in
  Array.iteri
    (fun b s ->
      expect (s >= 0 && s < shards) "%s: bucket %d routed to shard %d" label
        b s)
    route;
  let keys = (St.config st).St.Config.keys in
  for key = 0 to keys - 1 do
    expect
      (St.shard_of_key st key = route.(St.bucket_of_key st key))
      "%s: key %d owned outside its bucket's route" label key
  done

let prop_split_roundtrip rng size =
  let shards = 2 + Sm.int rng ~bound:3 in
  let keys = shards * 8 in
  let st =
    St.create
      { St.Config.default with shards; keys; log_pages = 8; compute = 40 }
  in
  (* seed every key with a distinct value, a few keys per transaction *)
  let value key = 0x1000 + (key * 7) + (size mod 97) in
  let rec seed_keys key =
    if key < keys then begin
      let batch = min 8 (keys - key) in
      let writes = List.init batch (fun i -> (key + i, value (key + i))) in
      (match St.exec st ~writes with
      | Ok () -> ()
      | Error e -> failwith (Lvm.Lvm_error.to_string e));
      seed_keys (key + batch)
    end
  in
  seed_keys 0;
  let to_ = 1 + Sm.int rng ~bound:(shards - 1) in
  let owned = St.shard_buckets st 0 in
  (* a random non-empty strict subset of shard 0's buckets *)
  let picked =
    List.filter (fun _ -> Sm.bool rng) owned
  in
  let picked =
    match picked with
    | [] -> [ List.hd owned ]
    | l when List.length l = List.length owned -> List.tl l
    | l -> l
  in
  St.move st ~from_:0 ~to_ ~batch:(1 + Sm.int rng ~bound:8) picked;
  route_invariant st ~label:"post-split";
  List.iter
    (fun b ->
      expect (St.owner_of_bucket st b = to_) "bucket %d did not move" b)
    picked;
  for key = 0 to keys - 1 do
    expect
      (read_ok st key = value key)
      "post-split key %d: got %d want %d" key (read_ok st key) (value key)
  done;
  St.move st ~from_:to_ ~to_:0 ~batch:(1 + Sm.int rng ~bound:8) picked;
  route_invariant st ~label:"post-merge";
  Array.iteri
    (fun b s ->
      expect (s = St.default_owner st b) "bucket %d not home after merge" b)
    (St.route_table st);
  for key = 0 to keys - 1 do
    expect
      (read_ok st key = value key)
      "post-merge key %d: got %d want %d" key (read_ok st key) (value key)
  done

let prop name ?max_size ?cases:c p =
  let shown = match c with None -> cases | Some c -> c in
  Alcotest.test_case (Printf.sprintf "%s (%d cases)" name shown) `Quick
    (fun () -> check ?max_size ?cases:c name p)

let suites =
  [
    ( "prop",
      [
        prop "log_record round-trip" prop_log_record;
        prop "fifo vs model" prop_fifo;
        prop "logger overload threshold" ~max_size:128 prop_logger_overload;
        prop "bus arbiter fairness" prop_bus_fairness;
        prop "wal round-trip + torn tail" ~max_size:128 prop_wal;
        prop "extent ring fold round-trip" ~max_size:64 prop_extent_ring;
        Alcotest.test_case "saturation overloads" `Quick test_overload_fires;
      ] );
    ( "hotshard.prop",
      [
        prop "zipf frequency-rank curve" ~max_size:128
          ~cases:(min cases 200) prop_zipf;
        prop "split-then-merge round-trip" ~max_size:64 ~cases:(min cases 48)
          prop_split_roundtrip;
      ] );
  ]
