(* Failure-atomic snapshots ([Lvm_fams]): unit tests for the snapshot
   API and its error surface, the torn-snapshot crash sweeps, and a
   property test that interleaved snapshot / plain-write / recover
   sequences land on prefix-consistent states. *)

open Lvm_vm
module Fams = Lvm_fams
module Sm = Lvm_fault.Splitmix

let check = Alcotest.(check int)

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.fail (what ^ ": " ^ Lvm.Lvm_error.to_string e)

let boot () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  (k, sp)

let map_default ?(size = 256) ?(group = 1) k sp =
  ok "map"
    (Fams.map { Fams.Config.default with log_pages = 4; group } k sp ~size)

let words f =
  Array.init
    (Fams.size f / 4)
    (fun i -> ok "read" (Fams.read_word f ~off:(i * 4)))

(* {1 Unit tests} *)

let test_snapshot_basic () =
  let k, sp = boot () in
  let f = map_default k sp in
  ok "write" (Fams.write_word f ~off:0 11);
  ok "write" (Fams.write_word f ~off:4 22);
  ok "write" (Fams.write_word f ~off:64 33);
  let r = ok "snapshot" (Fams.snapshot f) in
  check "snapshot id" 1 r.Fams.snap;
  Alcotest.(check bool) "forced at group 1" true r.Fams.forced;
  Alcotest.(check bool) "has spans" true (r.Fams.spans > 0);
  Alcotest.(check bool) "logged records" true (r.Fams.log_records > 0);
  check "read back" 11 (ok "read" (Fams.read_word f ~off:0));
  check "snapshots taken" 1 (Fams.snapshots f)

let test_snapshot_atomic_vs_crash () =
  let k, sp = boot () in
  let f = map_default k sp in
  ok "write" (Fams.write_word f ~off:0 1);
  ok "write" (Fams.write_word f ~off:4 2);
  ignore (ok "snapshot" (Fams.snapshot f));
  (* plain writes after the boundary: visible in the working view,
     never durable until the next snapshot *)
  ok "write" (Fams.write_word f ~off:0 9);
  ok "write" (Fams.write_word f ~off:8 9);
  check "working view" 9 (ok "read" (Fams.read_word f ~off:0));
  ignore (ok "recover" (Fams.recover f));
  check "boundary word 0" 1 (ok "read" (Fams.read_word f ~off:0));
  check "boundary word 1" 2 (ok "read" (Fams.read_word f ~off:4));
  check "unsnapshotted write rolled back" 0
    (ok "read" (Fams.read_word f ~off:8));
  (* the region stays usable; snapshot ids stay monotonic *)
  ok "write" (Fams.write_word f ~off:8 5);
  let r = ok "snapshot" (Fams.snapshot f) in
  check "monotonic snap id" 2 r.Fams.snap;
  ignore (ok "recover" (Fams.recover f));
  check "second epoch durable" 5 (ok "read" (Fams.read_word f ~off:8))

let test_empty_snapshot () =
  let k, sp = boot () in
  let f = map_default k sp in
  let r = ok "snapshot" (Fams.snapshot f) in
  check "no spans" 0 r.Fams.spans;
  check "no bytes" 0 r.Fams.bytes;
  Alcotest.(check bool) "still forced" true r.Fams.forced;
  ignore (ok "recover" (Fams.recover f));
  check "still zero" 0 (ok "read" (Fams.read_word f ~off:0))

let test_span_coalescing_and_seal () =
  let k, sp = boot () in
  let f = map_default k sp in
  (* contiguous words land in one line-coalesced span *)
  for i = 0 to 7 do
    ok "write" (Fams.write_word f ~off:(i * 4) (i + 1))
  done;
  let r = ok "snapshot" (Fams.snapshot f) in
  check "one coalesced span" 1 r.Fams.spans;
  Alcotest.(check bool) "span covers the words" true (r.Fams.bytes >= 32);
  (* the snapshot sealed the hardware log: the whole span was truncated
     and the logger re-armed at the front *)
  check "log sealed" 0 (Lvm_log.length (Fams.log f));
  let stats = Lvm_log.stats (Fams.log f) in
  check "write_pos rearmed" 0 stats.Lvm_log.write_pos

let test_error_surface () =
  let k, sp = boot () in
  let f = map_default k sp in
  (match Fams.read_word f ~off:4096 with
  | Error (Lvm.Lvm_error.Vm (Error.Out_of_segment _)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Vm Out_of_segment");
  (match Fams.map Fams.Config.default k sp ~size:3 with
  | Error (Lvm.Lvm_error.Vm (Error.Invalid _)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Vm Invalid");
  (match Fams.map { Fams.Config.default with group = 0 } k sp ~size:256 with
  | Error (Lvm.Lvm_error.Vm (Error.Out_of_range _)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Vm Out_of_range");
  (* the store's refusals are plain [Lvm_error] constructors now — one
     scheme end to end, same rendering the per-module printer always
     produced *)
  Alcotest.(check string)
    "store error string" "overloaded(shard 3)"
    (Lvm.Lvm_error.to_string (Lvm.Lvm_error.Overloaded { shard = 3 }));
  Alcotest.(check string)
    "snapshot error string" "snapshot unavailable (ts 9, readable [2, 7])"
    (Lvm.Lvm_error.to_string
       (Lvm.Lvm_error.Snapshot_unavailable { ts = 9; floor = 2; frontier = 7 }))

let test_backpressure () =
  let k, sp = boot () in
  (* one-page log, no headroom: enough plain writes must surface the
     typed exhaustion as a result, before any record is absorbed *)
  let f =
    ok "map"
      (Fams.map
         { Fams.Config.log_pages = 1; max_log_pages = Some 1; group = 1 }
         k sp ~size:8192)
  in
  let rec drive i =
    if i >= 8192 / 4 then Alcotest.fail "backpressure never engaged"
    else
      match Fams.write_word f ~off:(i * 4) i with
      | Ok () -> drive (i + 1)
      | Error (Lvm.Lvm_error.Vm (Error.Log_exhausted _)) -> i
      | Error e ->
        Alcotest.fail ("unexpected error: " ^ Lvm.Lvm_error.to_string e)
  in
  let accepted = drive 0 in
  Alcotest.(check bool) "some writes accepted" true (accepted > 0);
  (* a snapshot drains the log; writing resumes *)
  ignore (ok "snapshot" (Fams.snapshot f));
  ok "write resumes" (Fams.write_word f ~off:0 7);
  check "resumed write visible" 7 (ok "read" (Fams.read_word f ~off:0))

let test_group_commit () =
  let k, sp = boot () in
  let f = map_default ~group:2 k sp in
  ok "write" (Fams.write_word f ~off:0 1);
  let r1 = ok "snapshot" (Fams.snapshot f) in
  Alcotest.(check bool) "first boundary unforced" false r1.Fams.forced;
  check "one pending" 1 (Fams.pending_snapshots f);
  ok "write" (Fams.write_word f ~off:4 2);
  let r2 = ok "snapshot" (Fams.snapshot f) in
  Alcotest.(check bool) "batch boundary forced" true r2.Fams.forced;
  check "batch drained" 0 (Fams.pending_snapshots f);
  ignore (ok "recover" (Fams.recover f));
  check "both boundaries durable" 1 (ok "read" (Fams.read_word f ~off:0));
  check "both boundaries durable (2)" 2 (ok "read" (Fams.read_word f ~off:4));
  (* an unforced boundary rolls back on crash *)
  ok "write" (Fams.write_word f ~off:8 3);
  let r3 = ok "snapshot" (Fams.snapshot f) in
  Alcotest.(check bool) "third boundary unforced" false r3.Fams.forced;
  ignore (ok "recover" (Fams.recover f));
  check "unforced boundary rolled back" 0
    (ok "read" (Fams.read_word f ~off:8));
  (* flush makes the tail durable *)
  ok "write" (Fams.write_word f ~off:8 4);
  ignore (ok "snapshot" (Fams.snapshot f));
  ok "flush" (Fams.flush f);
  ignore (ok "recover" (Fams.recover f));
  check "flushed boundary durable" 4 (ok "read" (Fams.read_word f ~off:8))

(* Satellite: [Log_reader.fold]'s per-page translation cache and captured
   length must go stale-proof when the fold's own callback truncates the
   log (the segment's layout generation bumps on every re-arm). *)
let test_fold_generation_invalidation () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let region = Kernel.create_region k seg in
  let log = Lvm_log.create k ~size:4096 in
  Kernel.set_region_log k region (Some (Lvm_log.segment log));
  let base = Kernel.bind k sp region in
  for i = 0 to 15 do
    Kernel.write_word k sp (base + (i * 4)) (i + 1)
  done;
  check "records logged" 16 (Lvm.Log_reader.record_count k (Lvm_log.segment log));
  (* truncate the whole log from inside the fold after the first record:
     the remaining walk must observe the new (empty) layout, not the
     captured pre-truncation length *)
  let visited =
    Lvm.Log_reader.fold k (Lvm_log.segment log) ~init:0 ~f:(fun n ~off:_ _ ->
        if n = 0 then ignore (Lvm_log.seal log);
        n + 1)
  in
  check "fold stopped at the new layout" 1 visited;
  check "log empty after mid-fold seal" 0
    (Lvm.Log_reader.record_count k (Lvm_log.segment log))

(* {1 Crash sweeps} *)

let sweep_ok ?(expect_torn = true) name (o : Lvm_tpc.Crash_sweep.outcome) =
  Alcotest.(check (list string)) (name ^ " invariants") [] o.failures;
  Alcotest.(check bool) (name ^ " crashed some runs") true (o.crashed > 0);
  (* Under group commit a torn tail is usually unforced, so the volatile
     tail discards it before the scan can even see the tear — recovery is
     still correct, but no torn-tail event fires. *)
  if expect_torn then
    Alcotest.(check bool) (name ^ " detected torn tails") true (o.torn > 0)

let test_sweep_single () =
  sweep_ok "single"
    (Lvm_tpc.Crash_sweep.run_fams ~seed:7 ~snaps:8 ~writes:6 ~points:50
       ~torn_points:12 ~force_points:6 ())

let test_sweep_group () =
  sweep_ok ~expect_torn:false "group4"
    (Lvm_tpc.Crash_sweep.run_fams ~seed:11 ~snaps:8 ~writes:6 ~points:30
       ~torn_points:10 ~force_points:5 ~group:4 ())

let test_sweep_regions () =
  sweep_ok "regions2"
    (Lvm_tpc.Crash_sweep.run_fams ~seed:13 ~snaps:6 ~writes:5 ~points:30
       ~torn_points:10 ~force_points:5 ~regions:2 ())

let test_sweep_deterministic () =
  let run () =
    Lvm_tpc.Crash_sweep.run_fams ~seed:5 ~snaps:5 ~writes:4 ~points:12
      ~torn_points:6 ~force_points:3 ~group:2 ~regions:2 ()
  in
  let a = run () and b = run () in
  Alcotest.(check string) "traces bit-identical" a.trace b.trace

(* {1 Property: prefix-consistent recovery}

   Interleave plain writes, snapshots and crash-recoveries at random
   (seeded splitmix stream, like test_prop's harness). The model tracks
   the boundary sequence; a recovery must land exactly on the newest
   {e forced} boundary — never a mixture, never an unforced suffix. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let prop_cases = env_int "LVM_PROP_CASES" 120
let suite_seed = env_int "LVM_TEST_SEED" 0x5eed

let expect cond fmt = Printf.ksprintf (fun s -> if not cond then failwith s) fmt

let prop_prefix_consistent rng size =
  let nwords = 16 in
  let group = 1 + Sm.int rng ~bound:3 in
  let k, sp = boot () in
  let f = map_default ~size:(nwords * 4) ~group k sp in
  let current = Array.make nwords 0 in
  (* newest first; index 0 = boundary [completed] *)
  let boundaries = ref [ Array.make nwords 0 ] in
  let completed = ref 0 in
  let verify_against expected what =
    let actual = words f in
    Array.iteri
      (fun i v ->
        expect (v = expected.(i)) "%s: word %d got %d expected %d" what i v
          expected.(i))
      actual
  in
  for _ = 1 to size do
    match Sm.int rng ~bound:8 with
    | 0 | 1 | 2 | 3 | 4 ->
      let i = Sm.int rng ~bound:nwords in
      let v = Sm.int rng ~bound:0xFFFF in
      (match Fams.write_word f ~off:(i * 4) v with
      | Ok () -> current.(i) <- v
      | Error e -> failwith ("write: " ^ Lvm.Lvm_error.to_string e))
    | 5 | 6 -> (
      match Fams.snapshot f with
      | Ok _ ->
        boundaries := Array.copy current :: !boundaries;
        incr completed
      | Error e -> failwith ("snapshot: " ^ Lvm.Lvm_error.to_string e))
    | _ ->
      (* crash: unforced boundaries and the working suffix die; the
         recovered state is exactly the newest forced boundary *)
      let pending = Fams.pending_snapshots f in
      let forced = !completed - pending in
      (match Fams.recover f with
      | Ok _ -> ()
      | Error e -> failwith ("recover: " ^ Lvm.Lvm_error.to_string e));
      let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
      boundaries := drop pending !boundaries;
      completed := forced;
      let expected = List.hd !boundaries in
      verify_against expected "post-recovery";
      Array.blit expected 0 current 0 nwords
  done;
  (* final: flush, crash, and the last boundary must hold in full *)
  (match Fams.flush f with
  | Ok () -> ()
  | Error e -> failwith ("flush: " ^ Lvm.Lvm_error.to_string e));
  (match Fams.recover f with
  | Ok _ -> ()
  | Error e -> failwith ("recover: " ^ Lvm.Lvm_error.to_string e));
  verify_against (List.hd !boundaries) "final"

let prop_check ?(max_size = 48) name prop =
  let failing = ref None in
  (try
     for case = 0 to prop_cases - 1 do
       let case_seed = (suite_seed * 1_000_003) + case in
       let size = 1 + Sm.int (Sm.create ~seed:case_seed) ~bound:max_size in
       let fails sz =
         match prop (Sm.create ~seed:((case_seed * 2) + 1)) sz with
         | () -> None
         | exception e -> Some (Printexc.to_string e)
       in
       match fails size with
       | None -> ()
       | Some msg ->
         let rec shrink sz msg =
           if sz <= 1 then (sz, msg)
           else
             match fails (sz / 2) with
             | Some msg' -> shrink (sz / 2) msg'
             | None -> (sz, msg)
         in
         failing := Some (case, case_seed, shrink size msg);
         raise Exit
     done
   with Exit -> ());
  match !failing with
  | None -> ()
  | Some (case, case_seed, (sz, msg)) ->
    Alcotest.fail
      (Printf.sprintf
         "%s: case %d failed at size %d: %s\n\
          reproduce with LVM_TEST_SEED=%d (case seed %d)"
         name case sz msg suite_seed case_seed)

let test_prop_prefix_consistent () =
  prop_check "fams prefix-consistent recovery" prop_prefix_consistent

let suites =
  [
    ( "fams",
      [
        Alcotest.test_case "snapshot basics" `Quick test_snapshot_basic;
        Alcotest.test_case "snapshot atomic vs crash" `Quick
          test_snapshot_atomic_vs_crash;
        Alcotest.test_case "empty snapshot" `Quick test_empty_snapshot;
        Alcotest.test_case "span coalescing + log seal" `Quick
          test_span_coalescing_and_seal;
        Alcotest.test_case "unified error surface" `Quick test_error_surface;
        Alcotest.test_case "backpressure" `Quick test_backpressure;
        Alcotest.test_case "group commit" `Quick test_group_commit;
        Alcotest.test_case "fold survives mid-fold truncation" `Quick
          test_fold_generation_invalidation;
      ] );
    ( "fams.crash",
      [
        Alcotest.test_case "torn-snapshot sweep" `Quick test_sweep_single;
        Alcotest.test_case "torn-snapshot sweep group 4" `Quick
          test_sweep_group;
        Alcotest.test_case "torn-snapshot sweep 2 regions" `Quick
          test_sweep_regions;
        Alcotest.test_case "sweep deterministic" `Quick
          test_sweep_deterministic;
        Alcotest.test_case "prefix-consistent recovery (prop)" `Quick
          test_prop_prefix_consistent;
      ] );
  ]
