(* Driver for the crash-sweep CI gate (`dune build @crash`).

   Runs the fixed-seed crash sweep, fails on any invariant violation,
   then runs the identical sweep a second time and requires the two
   recovery traces to be byte-identical — the determinism guarantee of
   the fault plan engine.

   Usage: crash_runner [points] [txns] [cpus] [group]
   (or crash_runner --cpus N / --group N, keeping the other defaults). *)

let () =
  let rec parse pos cpus group = function
    | [] -> (List.rev pos, cpus, group)
    | "--cpus" :: v :: rest -> parse pos (Some (int_of_string v)) group rest
    | "--group" :: v :: rest -> parse pos cpus (Some (int_of_string v)) rest
    | a :: rest -> parse (a :: pos) cpus group rest
  in
  let positional, cpus_flag, group_flag =
    parse [] None None (List.tl (Array.to_list Sys.argv))
  in
  let arg i default =
    match List.nth_opt positional i with
    | Some v -> int_of_string v
    | None -> default
  in
  let points = arg 0 200 in
  let txns = arg 1 12 in
  let cpus = match cpus_flag with Some v -> v | None -> arg 2 1 in
  let group = match group_flag with Some v -> v | None -> arg 3 1 in
  let o = Lvm_tpc.Crash_sweep.run ~seed:42 ~points ~txns ~cpus ~group () in
  Printf.printf
    "crash sweep (%d cpu%s, group %d): %d points (%d crashed, %d completed, \
     %d torn tails), %d failures\n"
    cpus
    (if cpus = 1 then "" else "s")
    group
    o.Lvm_tpc.Crash_sweep.points o.Lvm_tpc.Crash_sweep.crashed
    o.Lvm_tpc.Crash_sweep.completed o.Lvm_tpc.Crash_sweep.torn
    (List.length o.Lvm_tpc.Crash_sweep.failures);
  List.iter (Printf.printf "FAIL: %s\n") o.Lvm_tpc.Crash_sweep.failures;
  if o.Lvm_tpc.Crash_sweep.failures <> [] then exit 1;
  if o.Lvm_tpc.Crash_sweep.crashed = 0 then begin
    print_endline "FAIL: no crash point actually fired";
    exit 1
  end;
  (* Under group commit the torn bytes land in the volatile WAL tail and
     are dropped wholesale before the scan, so no torn tail is visible. *)
  if group = 1 && o.Lvm_tpc.Crash_sweep.torn = 0 then begin
    print_endline "FAIL: no torn tail was ever detected";
    exit 1
  end;
  let o2 = Lvm_tpc.Crash_sweep.run ~seed:42 ~points ~txns ~cpus ~group () in
  if o.Lvm_tpc.Crash_sweep.trace <> o2.Lvm_tpc.Crash_sweep.trace then begin
    print_endline "FAIL: two identical sweeps produced different traces";
    exit 1
  end;
  print_endline "determinism: two sweeps byte-identical"
