(* Edge-case and robustness tests across layers: sub-word logged writes,
   multi-log interleaving, on-chip stalls, explicit bindings, region
   windows into segments, log slot exhaustion, anti-message ordering,
   timed log reads, and RVM/RLVM coexistence. *)

open Lvm_machine
open Lvm_vm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot ?hw ?log_entries () =
  let k = Kernel.create ?hw ?log_entries () in
  let sp = Kernel.create_space k in
  (k, sp)

let logged ?(pages = 8) ?(size = 8192) k =
  let seg = Kernel.create_segment k ~size in
  let region = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(pages * Addr.page_size) in
  Kernel.set_region_log k region (Some ls);
  (seg, region, ls)

(* {1 Sub-word logged writes} *)

let test_subword_logged_writes () =
  let k, sp = boot () in
  let _, region, ls = logged k in
  let base = Kernel.bind k sp region in
  Kernel.write k sp ~vaddr:(base + 0x11) ~size:1 0xAB;
  Kernel.write k sp ~vaddr:(base + 0x22) ~size:2 0xBEEF;
  Kernel.write k sp ~vaddr:(base + 0x30) ~size:4 0xDEADBEEF;
  let records = Lvm.Log_reader.to_list k ls in
  Alcotest.(check (list int)) "sizes recorded" [ 1; 2; 4 ]
    (List.map (fun r -> r.Log_record.size) records);
  Alcotest.(check (list int)) "values recorded" [ 0xAB; 0xBEEF; 0xDEADBEEF ]
    (List.map (fun r -> r.Log_record.value) records);
  check "byte read back" 0xAB (Kernel.read k sp ~vaddr:(base + 0x11) ~size:1);
  check "half read back" 0xBEEF
    (Kernel.read k sp ~vaddr:(base + 0x22) ~size:2)

let test_byte_write_within_word () =
  (* a logged byte write must not clobber its word's other bytes *)
  let k, sp = boot () in
  let _, region, _ = logged k in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp base 0x11223344;
  Kernel.write k sp ~vaddr:(base + 1) ~size:1 0xFF;
  check "merged word" 0x1122FF44 (Kernel.read_word k sp base)

(* {1 Multiple logs interleaved} *)

let test_two_logs_interleaved () =
  let k, sp = boot () in
  let _, r1, ls1 = logged k in
  let _, r2, ls2 = logged k in
  let b1 = Kernel.bind k sp r1 in
  let b2 = Kernel.bind k sp r2 in
  for i = 0 to 19 do
    if i mod 2 = 0 then Kernel.write_word k sp (b1 + (i * 4)) i
    else Kernel.write_word k sp (b2 + (i * 4)) i
  done;
  Alcotest.(check (list int)) "log 1 has the evens" [ 0; 2; 4; 6; 8; 10; 12;
                                                      14; 16; 18 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls1));
  Alcotest.(check (list int)) "log 2 has the odds" [ 1; 3; 5; 7; 9; 11; 13;
                                                     15; 17; 19 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls2))

let test_direct_slot_eviction_refaults () =
  (* direct-mapped logs with more pages than log-table slots must keep
     working through PMT-miss reactivation *)
  let k, sp = boot ~log_entries:2 () in
  let size = 4 * Addr.page_size in
  let seg = Kernel.create_segment k ~size in
  let region = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment ~mode:Logger.Direct_mapped k ~size in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  for p = 0 to 3 do
    Kernel.write_word k sp (base + (p * Addr.page_size) + 0x10) (p + 1)
  done;
  (* revisit the first page after its slot was evicted *)
  Kernel.write_word k sp (base + 0x20) 99;
  for p = 0 to 3 do
    check
      (Printf.sprintf "mirror page %d" p)
      (p + 1)
      (Kernel.seg_read_raw k ls ~off:((p * Addr.page_size) + 0x10) ~size:4)
  done;
  check "revisited page mirrored" 99 (Kernel.seg_read_raw k ls ~off:0x20
                                        ~size:4)

(* {1 On-chip stall behaviour} *)

let test_onchip_stall_bounds_occupancy () =
  let k, sp = boot ~hw:Logger.On_chip () in
  let _, region, _ = logged ~pages:64 k in
  let base = Kernel.bind k sp region in
  let logger = Machine.logger (Kernel.machine k) in
  for i = 0 to 499 do
    Kernel.write_word k sp (base + (i * 4 mod 4096)) i;
    check_bool "occupancy bounded by the write buffer" true
      (Logger.occupancy logger <= 8)
  done;
  check "no overload interrupts" 0 (Kernel.perf k).Perf.overloads

(* {1 Regions and bindings} *)

let test_region_window_into_segment () =
  (* a region exposing only the middle page of a 3-page segment *)
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:(3 * Addr.page_size) in
  let region = Kernel.create_region ~seg_offset:Addr.page_size
      ~size:Addr.page_size k seg
  in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp (base + 8) 77;
  check "lands in segment page 1" 77
    (Kernel.seg_read_raw k seg ~off:(Addr.page_size + 8) ~size:4);
  check_bool "cannot reach page 2" true
    (try
       ignore (Kernel.read_word k sp (base + Addr.page_size));
       false
     with Error.Lvm_error (Error.Segmentation_fault _) -> true)

let test_logged_window_only_logs_window () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:(2 * Addr.page_size) in
  let window = Kernel.create_region ~seg_offset:Addr.page_size
      ~size:Addr.page_size k seg
  in
  let whole = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(4 * Addr.page_size) in
  Kernel.set_region_log k window (Some ls);
  let wb = Kernel.bind k sp window in
  let ab = Kernel.bind k sp whole in
  Kernel.write_word k sp (wb + 4) 1 (* via the logged window *);
  Kernel.write_word k sp (ab + 4) 2 (* page 0 via the unlogged region *);
  check "only the window write logged" 1 (Lvm.Log_reader.record_count k ls)

let test_explicit_bind_address () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp ~vaddr:0x4000_0000 region in
  check "bound where asked" 0x4000_0000 base;
  Kernel.write_word k sp 0x4000_0010 5;
  check "works at explicit address" 5 (Kernel.read_word k sp 0x4000_0010)

let test_rebind_after_unbind_keeps_data () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let region = Kernel.create_region k seg in
  let b1 = Kernel.bind k sp region in
  Kernel.write_word k sp (b1 + 4) 123;
  Kernel.unbind k sp region;
  let b2 = Kernel.bind k sp ~vaddr:0x5000_0000 region in
  check "data survives rebinding" 123 (Kernel.read_word k sp (b2 + 4))

(* {1 Timed log reads} *)

let test_timed_log_read_charges () =
  let k, sp = boot () in
  let _, region, ls = logged k in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp base 1;
  Kernel.compute k 500;
  let t0 = Kernel.time k in
  ignore (Lvm.Log_reader.read_at_timed k ls ~off:0);
  let timed = Kernel.time k - t0 in
  let t1 = Kernel.time k in
  ignore (Lvm.Log_reader.read_at k ls ~off:0);
  let untimed = Kernel.time k - t1 in
  check "untimed read is free" 0 untimed;
  check_bool "timed read charges the cache model" true (timed > 0)

(* {1 Anti-message before positive (out-of-order delivery)} *)

let test_anti_before_positive_annihilates () =
  let open Lvm_sim in
  let app =
    {
      Scheduler.n_objects = 2;
      object_words = 4;
      init_word = (fun ~obj:_ ~word:_ -> 0);
      handle = (fun ctx ~payload -> ctx.Scheduler.write 1 payload);
    }
  in
  let uid = ref 100 in
  let s =
    Scheduler.create ~id:0 ~n_schedulers:1
      ~strategy:State_saving.Lvm_based ~app
      ~fresh_uid:(fun () -> incr uid; !uid)
      ()
  in
  let ev = { Event.time = 10; dst = 0; payload = 5; src = 1; send_time = 1;
             uid = 1 } in
  (* the negative copy arrives first *)
  Scheduler.receive s (Event.anti ev);
  check_bool "queue still empty" true (Scheduler.queue_empty s);
  (* then the positive: they must annihilate *)
  Scheduler.receive s (Event.positive ev);
  check_bool "annihilated on arrival" true (Scheduler.queue_empty s);
  check "annihilation counted" 1 (Scheduler.stats s).Scheduler.annihilations

let test_anti_for_queued_event () =
  let open Lvm_sim in
  let app =
    {
      Scheduler.n_objects = 1;
      object_words = 4;
      init_word = (fun ~obj:_ ~word:_ -> 0);
      handle = (fun _ ~payload:_ -> ());
    }
  in
  let s =
    Scheduler.create ~id:0 ~n_schedulers:1
      ~strategy:State_saving.Copy_based ~app
      ~fresh_uid:(fun () -> 0)
      ()
  in
  let ev = { Event.time = 5; dst = 0; payload = 1; src = 0; send_time = 1;
             uid = 42 } in
  Scheduler.receive s (Event.positive ev);
  check_bool "queued" true (not (Scheduler.queue_empty s));
  Scheduler.receive s (Event.anti ev);
  check_bool "annihilated from queue" true (Scheduler.queue_empty s)

(* {1 RVM and RLVM coexistence} *)

let test_rvm_rlvm_share_kernel () =
  let k, sp = boot () in
  let rvm = Lvm_rvm.Rvm.make Lvm_rvm.Rvm.Config.default k sp ~size:4096 in
  let rlvm = Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:4096 in
  Lvm_rvm.Rvm.begin_txn rvm;
  Lvm_rvm.Rlvm.begin_txn rlvm;
  Lvm_rvm.Rvm.set_range rvm ~off:0 ~len:4;
  Lvm_rvm.Rvm.write_word rvm ~off:0 1;
  Lvm_rvm.Rlvm.write_word rlvm ~off:0 2;
  Lvm_rvm.Rvm.commit rvm;
  Lvm_rvm.Rlvm.commit rlvm;
  Lvm_rvm.Rvm.crash_and_recover rvm;
  Lvm_rvm.Rlvm.crash_and_recover rlvm;
  check "rvm state independent" 1 (Lvm_rvm.Rvm.read_word rvm ~off:0);
  check "rlvm state independent" 2 (Lvm_rvm.Rlvm.read_word rlvm ~off:0)

(* {1 Log segment growth} *)

let test_log_grows_across_many_pages () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:(64 * 1024) in
  let region = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(2 * Addr.page_size) in
  let log = Lvm_log.of_segment k ls in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  let n = 2000 in
  for i = 0 to n - 1 do
    (* extend ahead of the logger, as the paper prescribes *)
    if Lvm_log.room log < Addr.page_size then Lvm_log.extend log ~pages:4;
    Kernel.write_word k sp (base + (i * 4 mod 32768)) i
  done;
  check "every record retained" n (Lvm.Log_reader.record_count k ls);
  let r = Lvm.Log_reader.read_at k ls ~off:((n - 1) * Log_record.bytes) in
  check "last record" (n - 1) r.Log_record.value;
  check "no records lost" 0 (Kernel.perf k).Perf.log_records_lost

(* {1 Perf counter coherence} *)

let test_perf_records_match_reader () =
  let k, sp = boot () in
  let _, region, ls = logged ~pages:16 k in
  let base = Kernel.bind k sp region in
  for i = 0 to 299 do
    Kernel.write_word k sp (base + (i * 4 mod 8192)) i
  done;
  Kernel.sync_log k ls;
  check "perf count equals parsed count" (Kernel.perf k).Perf.log_records
    (Lvm.Log_reader.record_count k ls)

let suites =
  [
    ( "edge.subword",
      [
        Alcotest.test_case "sizes logged" `Quick test_subword_logged_writes;
        Alcotest.test_case "byte within word" `Quick
          test_byte_write_within_word;
      ] );
    ( "edge.multi-log",
      [
        Alcotest.test_case "two logs interleaved" `Quick
          test_two_logs_interleaved;
        Alcotest.test_case "direct slot eviction" `Quick
          test_direct_slot_eviction_refaults;
      ] );
    ( "edge.on-chip",
      [
        Alcotest.test_case "stall bounds occupancy" `Quick
          test_onchip_stall_bounds_occupancy;
      ] );
    ( "edge.regions",
      [
        Alcotest.test_case "window into segment" `Quick
          test_region_window_into_segment;
        Alcotest.test_case "logged window" `Quick
          test_logged_window_only_logs_window;
        Alcotest.test_case "explicit bind address" `Quick
          test_explicit_bind_address;
        Alcotest.test_case "rebind keeps data" `Quick
          test_rebind_after_unbind_keeps_data;
      ] );
    ( "edge.log-reader",
      [ Alcotest.test_case "timed read charges" `Quick
          test_timed_log_read_charges ] );
    ( "edge.timewarp",
      [
        Alcotest.test_case "anti before positive" `Quick
          test_anti_before_positive_annihilates;
        Alcotest.test_case "anti for queued event" `Quick
          test_anti_for_queued_event;
      ] );
    ( "edge.rvm",
      [ Alcotest.test_case "rvm+rlvm share kernel" `Quick
          test_rvm_rlvm_share_kernel ] );
    ( "edge.log-growth",
      [
        Alcotest.test_case "grows across pages" `Quick
          test_log_grows_across_many_pages;
        Alcotest.test_case "perf matches reader" `Quick
          test_perf_records_match_reader;
      ] );
  ]

(* {1 Per-process logs of a shared segment (Sections 2.1, 3.1.2)} *)

let test_per_process_logs_shared_segment () =
  (* two processes map one database segment, each logging to its own log;
     context switches unload the logger tables between them *)
  let k = Kernel.create () in
  let db = Kernel.create_segment k ~size:8192 in
  let mk_process () =
    let space = Kernel.create_space k in
    let region = Kernel.create_region k db in
    let ls = Kernel.create_log_segment k ~size:(4 * Addr.page_size) in
    Kernel.set_region_log k region (Some ls);
    let base = Kernel.bind k space region in
    (space, base, ls)
  in
  let sp_a, base_a, ls_a = mk_process () in
  let sp_b, base_b, ls_b = mk_process () in
  (* interleave the two processes over several switches *)
  Kernel.context_switch k sp_a;
  Kernel.write_word k sp_a (base_a + 0) 100;
  Kernel.write_word k sp_a (base_a + 4) 101;
  Kernel.context_switch k sp_b;
  Kernel.write_word k sp_b (base_b + 8) 200;
  Kernel.context_switch k sp_a;
  Kernel.write_word k sp_a (base_a + 12) 102;
  Kernel.context_switch k sp_b;
  Kernel.write_word k sp_b (base_b + 16) 201;
  Alcotest.(check (list int)) "process A's log has only A's writes"
    [ 100; 101; 102 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls_a));
  Alcotest.(check (list int)) "process B's log has only B's writes"
    [ 200; 201 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls_b));
  (* both processes see the same shared data *)
  check "shared data visible to A" 201 (Kernel.read_word k sp_a (base_a + 16));
  check "shared data visible to B" 100 (Kernel.read_word k sp_b (base_b + 0))

let test_per_process_logs_on_chip () =
  (* the on-chip design flushes its TLB-resident log state on switch *)
  let k = Kernel.create ~hw:Logger.On_chip () in
  let db = Kernel.create_segment k ~size:4096 in
  let mk_process () =
    let space = Kernel.create_space k in
    let region = Kernel.create_region k db in
    let ls = Kernel.create_log_segment k ~size:(4 * Addr.page_size) in
    Kernel.set_region_log k region (Some ls);
    let base = Kernel.bind k space region in
    (space, base, ls)
  in
  let sp_a, base_a, ls_a = mk_process () in
  let sp_b, base_b, ls_b = mk_process () in
  Kernel.context_switch k sp_a;
  Kernel.write_word k sp_a base_a 1;
  Kernel.context_switch k sp_b;
  Kernel.write_word k sp_b base_b 2;
  Kernel.context_switch k sp_a;
  Kernel.write_word k sp_a (base_a + 4) 3;
  Alcotest.(check (list int)) "A's log" [ 1; 3 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls_a));
  Alcotest.(check (list int)) "B's log" [ 2 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls_b))

let test_context_switch_charged () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let t0 = Kernel.time k in
  Kernel.context_switch k sp;
  check "switch cost" Cycles.context_switch (Kernel.time k - t0)

let process_suite =
  ( "edge.per-process-logs",
    [
      Alcotest.test_case "shared segment, two processes" `Quick
        test_per_process_logs_shared_segment;
      Alcotest.test_case "on-chip TLB flush" `Quick
        test_per_process_logs_on_chip;
      Alcotest.test_case "switch cost charged" `Quick
        test_context_switch_charged;
    ] )

let suites = suites @ [ process_suite ]

(* {1 On-chip hardware end-to-end} *)

let test_timewarp_on_chip_matches_prototype () =
  let open Lvm_sim in
  let run hw =
    let app = Phold.app ~objects:10 ~seed:19 () in
    let engine =
      Timewarp.create ~hw ~n_schedulers:3 ~strategy:State_saving.Lvm_based
        ~app ()
    in
    Phold.inject_population engine ~objects:10 ~population:6 ~seed:19;
    ignore (Timewarp.run engine ~end_time:200);
    Timewarp.state_vector engine
  in
  Alcotest.(check (array int)) "on-chip hw commits the same execution"
    (run Logger.Prototype) (run Logger.On_chip)

let test_rlvm_on_chip_kernel () =
  let k = Kernel.create ~hw:Logger.On_chip () in
  let sp = Kernel.create_space k in
  let r = Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:4096 in
  Lvm_rvm.Rlvm.begin_txn r;
  Lvm_rvm.Rlvm.write_word r ~off:0 77;
  Lvm_rvm.Rlvm.commit r;
  Lvm_rvm.Rlvm.crash_and_recover r;
  check "recoverable memory over on-chip logging" 77
    (Lvm_rvm.Rlvm.read_word r ~off:0)

let onchip_e2e_suite =
  ( "edge.on-chip-e2e",
    [
      Alcotest.test_case "timewarp matches prototype" `Quick
        test_timewarp_on_chip_matches_prototype;
      Alcotest.test_case "rlvm on on-chip kernel" `Quick
        test_rlvm_on_chip_kernel;
    ] )

let suites = suites @ [ onchip_e2e_suite ]

(* {1 Kernel address translation helpers} *)

let test_find_mapping () =
  let k = Kernel.create () in
  let sp1 = Kernel.create_space k in
  let sp2 = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:8192 in
  let r1 = Kernel.create_region ~seg_offset:4096 ~size:4096 k seg in
  let b1 = Kernel.bind k sp1 r1 in
  (match Kernel.find_mapping k ~vaddr:(b1 + 8) with
  | Some (owner, off) ->
    check "segment found" (Segment.id seg) (Segment.id owner);
    check "offset includes region window" (4096 + 8) off
  | None -> Alcotest.fail "mapping not found");
  check_bool "unmapped address" true
    (Kernel.find_mapping k ~vaddr:0xDEAD000 = None);
  ignore sp2

(* {1 Scheduler CULT threshold} *)

let test_scheduler_defers_cult () =
  let open Lvm_sim in
  let app =
    {
      Scheduler.n_objects = 1;
      object_words = 4;
      init_word = (fun ~obj:_ ~word:_ -> 0);
      handle = (fun ctx ~payload -> ctx.Scheduler.write 1 payload);
    }
  in
  let uid = ref 0 in
  let s =
    Scheduler.create ~id:0 ~n_schedulers:1 ~strategy:State_saving.Lvm_based
      ~app ~fresh_uid:(fun () -> incr uid; !uid) ()
  in
  (* a few events, then fossil-collect: CULT is deferred (log below the
     threshold), so the log is NOT truncated yet *)
  for i = 1 to 5 do
    Scheduler.enqueue s
      { Event.time = i; dst = 0; payload = i; src = -1; send_time = 0;
        uid = 1000 + i }
  done;
  while Scheduler.step s ~horizon:10 do () done;
  check "five processed" 5 (Scheduler.stats s).Scheduler.events_processed;
  Scheduler.fossil_collect s ~gvt:6;
  check "entries committed" 5 (Scheduler.stats s).Scheduler.events_committed;
  check "state survives deferred CULT" 5 (Scheduler.read_state s ~obj:0 ~word:1)

(* {1 Conservative engine validation} *)

let test_conservative_inject_validation () =
  let open Lvm_sim in
  let app = Phold.app ~objects:3 ~seed:1 () in
  let e = Conservative.create ~n_schedulers:1 ~app () in
  Alcotest.check_raises "unknown object"
    (Invalid_argument "Conservative.inject: unknown object") (fun () ->
      Conservative.inject e ~time:1 ~dst:5 ~payload:0)

(* {1 Event queue ordering property} *)

let prop_queue_sorted =
  QCheck.Test.make ~name:"event queue yields sorted order" ~count:100
    QCheck.(
      list_of_size (Gen.int_range 0 40)
        (pair (int_bound 50) (int_bound 1000)))
    (fun entries ->
      let open Lvm_sim in
      let q =
        List.fold_left
          (fun q (time, uid) ->
            Event_queue.add q
              { Event.time; dst = 0; payload = 0; src = 0; send_time = 0;
                uid })
          Event_queue.empty entries
      in
      let out = Event_queue.to_list q in
      let sorted = List.sort Event.compare out in
      out = sorted)

let misc_suite =
  ( "edge.misc",
    [
      Alcotest.test_case "find_mapping" `Quick test_find_mapping;
      Alcotest.test_case "scheduler defers CULT" `Quick
        test_scheduler_defers_cult;
      Alcotest.test_case "conservative inject validation" `Quick
        test_conservative_inject_validation;
      QCheck_alcotest.to_alcotest prop_queue_sorted;
    ] )

let suites = suites @ [ misc_suite ]
