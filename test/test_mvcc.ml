(* Tests for log-derived MVCC snapshot reads: the incremental log
   applier ([Log_reader.fold_from]), the store's versioned snapshot
   surface ([Store.Snapshot]), 2PC atomicity at the consistent cut,
   route pinning across concurrent shard moves, the read-heavy workload
   modes, and a splitmix-seeded prefix-consistency property over random
   interleavings of writes, 2PC transactions, moves, snapshots and
   recovery. *)

open Lvm_machine
open Lvm_vm
module Store = Lvm_store.Store
module Workload = Lvm_store.Workload
module Sm = Lvm_fault.Splitmix

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let no_pace ~cpu:_ = ()

let exec_ok st ?detach writes =
  match Store.exec st ?detach ~writes with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e)

let snap_read s key =
  match Store.Snapshot.read s key with
  | Ok v -> v
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e)

let acquire st =
  match Store.Snapshot.acquire st with
  | Ok s -> s
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e)

let make ?(shards = 2) ?(keys = 32) () =
  Store.create { Store.Config.default with shards; keys; compute = 40 }

(* {1 The incremental log applier} *)

(* A little logged region whose write stream the applier tails. *)
let applier_fixture () =
  let page = Addr.page_size in
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:page in
  let region = Kernel.create_region k seg in
  let log = Lvm_log.create ~extent_pages:1 k ~size:(4 * page) in
  let ls = Lvm_log.segment log in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  (k, sp, log, ls, base)

let test_fold_from () =
  let k, sp, log, ls, base = applier_fixture () in
  for i = 0 to 9 do
    Kernel.write_word k sp (base + (4 * i)) (100 + i)
  done;
  Lvm_log.sync log;
  let all, last =
    Lvm.Log_reader.fold_from k ls ~ts:0 ~init:[] ~f:(fun acc ~off:_ r ->
        r :: acc)
  in
  check "fold_from 0 sees everything" 10 (List.length all);
  let max_ts =
    List.fold_left (fun m r -> max m r.Log_record.timestamp) 0 all
  in
  check "returned frontier is the max timestamp" max_ts last;
  (* resuming from the frontier finds nothing and keeps the frontier *)
  let none, last' =
    Lvm.Log_reader.fold_from k ls ~ts:last ~init:[] ~f:(fun acc ~off:_ r ->
        r :: acc)
  in
  check "nothing newer than the frontier" 0 (List.length none);
  check "frontier unchanged on an empty tick" last last';
  (* records appended later are exactly the delta *)
  Kernel.write_word k sp base 999;
  Kernel.write_word k sp (base + 4) 888;
  Lvm_log.sync log;
  let fresh, last'' =
    Lvm.Log_reader.fold_from k ls ~ts:last ~init:[] ~f:(fun acc ~off:_ r ->
        r :: acc)
  in
  check "only the delta is revisited" 2 (List.length fresh);
  check_bool "frontier advanced" true (last'' > last);
  (* a mid-stream resume point: strictly-greater filtering *)
  let some_ts = (List.nth (List.rev all) 4).Log_record.timestamp in
  let tail, _ =
    Lvm.Log_reader.fold_from k ls ~ts:some_ts ~init:0 ~f:(fun n ~off:_ r ->
        if r.Log_record.timestamp <= some_ts then
          Alcotest.fail "fold_from visited a record at or below ts";
        n + 1)
  in
  check_bool "resumed mid-stream" true (tail >= 7)

let test_applier_incremental () =
  let k, sp, log, ls, base = applier_fixture () in
  let a = Lvm_mvcc.Applier.create k ls in
  Kernel.write_word k sp base 1;
  Kernel.write_word k sp (base + 4) 2;
  Lvm_log.sync log;
  check "first tick applies both records" 2 (Lvm_mvcc.Applier.tick a);
  check "an idle tick applies nothing" 0 (Lvm_mvcc.Applier.tick a);
  (* learn the stream's record addresses and stamps *)
  let recs =
    List.rev (Lvm.Log_reader.fold k ls ~init:[] ~f:(fun acc ~off:_ r ->
        r :: acc))
  in
  let r0 = List.nth recs 0 in
  (match Lvm_mvcc.Applier.value a ~addr:r0.Log_record.addr with
  | Some v -> check "applied value" 1 v
  | None -> Alcotest.fail "applier lost the first record");
  (* overwrite the first word: the applier only walks the delta, and
     version history answers as-of reads below the rewrite *)
  Kernel.write_word k sp base 7;
  Lvm_log.sync log;
  check "second tick applies only the rewrite" 1 (Lvm_mvcc.Applier.tick a);
  (match Lvm_mvcc.Applier.value a ~addr:r0.Log_record.addr with
  | Some v -> check "latest version wins" 7 v
  | None -> Alcotest.fail "applier lost the rewrite");
  (match
     Lvm_mvcc.Applier.value_as_of a ~addr:r0.Log_record.addr
       ~ts:r0.Log_record.timestamp
   with
  | Some v -> check "as-of read below the rewrite" 1 v
  | None -> Alcotest.fail "as-of read found nothing");
  check_bool "frontier is monotone" true (Lvm_mvcc.Applier.last_ts a > 0)

(* {1 Snapshot basics} *)

let test_snapshot_basics () =
  let st = make () in
  (* before the view attaches, read takes the worker path *)
  check_bool "mvcc not attached yet" false (Store.mvcc_attached st);
  (match Store.read st 0 with
  | Ok v -> check "worker-path read" 0 v
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  exec_ok st [ (0, 11); (1, 22) ];
  let s1 = acquire st in
  check_bool "first acquire attached the view" true (Store.mvcc_attached st);
  check "snapshot sees committed key 0" 11 (snap_read s1 0);
  check "snapshot sees committed key 1" 22 (snap_read s1 1);
  check "untouched key reads the base" 0 (snap_read s1 5);
  (* later commits are invisible to the held snapshot *)
  exec_ok st [ (0, 33) ];
  check "held snapshot is immutable" 11 (snap_read s1 0);
  (match Store.read st 0 with
  | Ok v -> check "Store.read is the latest snapshot" 33 v
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "deprecated wrapper unwraps" 33
    ((Store.read_exn [@alert "-deprecated"]) st 0);
  (match Store.read st 99 with
  | Error (Lvm.Lvm_error.Invalid_key { key }) -> check "typed key error" 99 key
  | _ -> Alcotest.fail "expected Invalid_key");
  (* time travel back to the first snapshot's timestamp *)
  let ts1 = Store.Snapshot.ts s1 in
  (match Store.Snapshot.as_of st ~ts:ts1 with
  | Ok s ->
    check "as-of read at the old cut" 11 (snap_read s 0);
    Store.Snapshot.release s
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  (match Store.Snapshot.as_of st ~ts:(Store.last_ts st + 5) with
  | Error (Lvm.Lvm_error.Snapshot_unavailable { ts; floor; frontier }) ->
    check "refused ts echoed" (Store.last_ts st + 5) ts;
    check_bool "readable window is sane" true (floor <= frontier)
  | _ -> Alcotest.fail "expected Snapshot_unavailable above the cut");
  Store.Snapshot.release s1;
  (match Store.Snapshot.read s1 0 with
  | Error (Lvm.Lvm_error.Snapshot_unavailable _) -> ()
  | _ -> Alcotest.fail "released snapshot must refuse reads")

(* {1 2PC atomicity at the cut} *)

(* A cross-shard transaction whose phase-2 commit is captured but not
   yet run is decided-but-in-flight: the consistent cut must exclude it
   wholly — even the home participant's already-committed slice — and
   include it wholly once the detached branch lands. *)
let test_2pc_cut_atomicity () =
  let st = make () in
  exec_ok st [ (4, 1); (7, 2) ];
  let s0 = acquire st in
  check "pre-txn key 4" 1 (snap_read s0 4);
  Store.Snapshot.release s0;
  let captured = ref [] in
  exec_ok st ~detach:(fun ~shard:_ f -> captured := f :: !captured)
    [ (4, 91); (7, 92) ];
  check "one branch captured" 1 (List.length !captured);
  let mid = acquire st in
  check "in-flight txn invisible on the home shard" 1 (snap_read mid 4);
  check "in-flight txn invisible on the participant" 2 (snap_read mid 7);
  List.iter (fun f -> f ~pace:no_pace) !captured;
  Store.flush st;
  let post = acquire st in
  check "landed txn visible on the home shard" 91 (snap_read post 4);
  check "landed txn visible on the participant" 92 (snap_read post 7);
  (* the mid-flight snapshot still excludes it: immutability *)
  check "mid snapshot still excludes the txn" 1 (snap_read mid 4);
  Store.Snapshot.release mid;
  Store.Snapshot.release post

(* {1 Route pinning across a concurrent split} *)

let test_split_concurrent_snapshot () =
  let st = make () in
  exec_ok st [ (0, 100); (2, 102); (1, 201) ];
  let before = acquire st in
  let owned = Store.shard_buckets st 0 in
  let half = (List.length owned + 1) / 2 in
  let picked = List.filteri (fun i _ -> i < half) owned in
  check_bool "key 0's bucket moves" true (List.mem 0 picked);
  Store.move st ~from_:0 ~to_:1 ~batch:2 picked;
  (* overwrite a moved key under the new routing *)
  exec_ok st [ (0, 999) ];
  let after = acquire st in
  check "pinned snapshot reads through the old route" 100
    (snap_read before 0);
  check "pinned snapshot: unmoved key" 102 (snap_read before 2);
  check "fresh snapshot reads through the new route" 999 (snap_read after 0);
  check "fresh snapshot: moved-but-unwritten key" 102 (snap_read after 2);
  (* time travel below the cutover also resolves the old owner *)
  (match Store.Snapshot.as_of st ~ts:(Store.Snapshot.ts before) with
  | Ok s ->
    check "as-of below the cutover" 100 (snap_read s 0);
    Store.Snapshot.release s
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  Store.Snapshot.release before;
  Store.Snapshot.release after

(* {1 Read-heavy workload modes} *)

let test_workload_read_modes () =
  let run mode readers =
    let st = make ~shards:2 ~keys:64 () in
    Workload.run st
      { Workload.default with
        txns = 200; cross_pct = 0; writes_per_txn = 2;
        read_pct = 50; read_mode = mode; readers }
  in
  let w = run Workload.Worker 1 in
  check_bool "worker mode served reads" true (w.Workload.reads > 0);
  check "every op accounted once (worker)" 200
    (w.Workload.executed + w.Workload.reads + w.Workload.shed
   + w.Workload.failed + w.Workload.dropped);
  let s = run Workload.Snapshot 2 in
  check "snapshot mode serves the same reads" w.Workload.reads
    s.Workload.reads;
  check "every op accounted once (snapshot)" 200
    (s.Workload.executed + s.Workload.reads + s.Workload.shed
   + s.Workload.failed + s.Workload.dropped);
  (* same seed, same run: both modes are deterministic *)
  let s' = run Workload.Snapshot 2 in
  check "snapshot mode deterministic (wall)" s.Workload.wall_cycles
    s'.Workload.wall_cycles;
  check "snapshot mode deterministic (reads)" s.Workload.reads
    s'.Workload.reads;
  let w' = run Workload.Worker 1 in
  check "worker mode deterministic (wall)" w.Workload.wall_cycles
    w'.Workload.wall_cycles

(* {1 Prefix-consistency property}

   Random interleavings of local writes, 2PC transactions (with the
   phase-2 branch captured, a mid-flight snapshot probed, then the
   branch released), snapshot acquires, as-of time travel, and a shard
   move — every snapshot must equal the committed prefix at its
   timestamp, exactly. After the run, double recovery must invalidate
   every live snapshot and leave fresh snapshots re-derivable. *)

let expect cond fmt = Printf.ksprintf (fun s -> if not cond then failwith s) fmt

let prop_snapshot_prefix rng size =
  let shards = 2 + Sm.int rng ~bound:2 in
  let keys = shards * 8 in
  let st =
    Store.create { Store.Config.default with shards; keys; compute = 40 }
  in
  (* attach the view while quiescent *)
  Store.Snapshot.release (acquire st);
  let model = Array.make keys 0 in
  let hist = ref [ (Store.last_ts st, Array.copy model) ] in
  let live = ref [] in
  let moved = ref false in
  let check_snap label snap expected =
    Array.iteri
      (fun key want ->
        match Store.Snapshot.read snap key with
        | Ok got ->
          expect (got = want) "%s: key %d got %d want %d (ts %d)" label key
            got want (Store.Snapshot.ts snap)
        | Error e -> failwith (label ^ ": " ^ Lvm.Lvm_error.to_string e))
      expected
  in
  let commit writes =
    List.iter (fun (key, v) -> model.(key) <- v) writes;
    hist := (Store.last_ts st, Array.copy model) :: !hist
  in
  let exec writes =
    match Store.exec st ~writes with
    | Ok () -> commit writes
    | Error e -> failwith (Lvm.Lvm_error.to_string e)
  in
  let ops = 16 + min 48 size in
  for _ = 1 to ops do
    match Sm.int rng ~bound:100 with
    | r when r < 35 ->
      (* a local-ish transaction: 1-3 random keys *)
      let n = 1 + Sm.int rng ~bound:3 in
      exec
        (List.init n (fun _ ->
             (Sm.int rng ~bound:keys, 1 + Sm.int rng ~bound:0xFFFFF)))
    | r when r < 55 ->
      (* a 2PC transaction across two shards, phase 2 captured: the cut
         must exclude it until the branch lands *)
      let k1 = Sm.int rng ~bound:keys in
      let k2 =
        let rec find k =
          if Store.shard_of_key st k <> Store.shard_of_key st k1 then k
          else find ((k + 1) mod keys)
        in
        find (Sm.int rng ~bound:keys)
      in
      let writes =
        [ (k1, 1 + Sm.int rng ~bound:0xFFFFF);
          (k2, 1 + Sm.int rng ~bound:0xFFFFF) ]
      in
      let captured = ref [] in
      (match
         Store.exec st
           ~detach:(fun ~shard:_ f -> captured := f :: !captured)
           ~writes
       with
      | Ok () ->
        let mid = acquire st in
        check_snap "mid-2PC snapshot" mid model;
        Store.Snapshot.release mid;
        List.iter (fun f -> f ~pace:no_pace) !captured;
        Store.flush st;
        commit writes
      | Error e -> failwith (Lvm.Lvm_error.to_string e))
    | r when r < 70 ->
      (* acquire and hold: it pins the committed prefix as of now *)
      let snap = acquire st in
      live := (snap, Array.copy model) :: !live
    | r when r < 85 -> (
      (* as-of time travel to a random committed prefix *)
      let ts, expected =
        List.nth !hist (Sm.int rng ~bound:(List.length !hist))
      in
      match Store.Snapshot.as_of st ~ts with
      | Ok snap ->
        check_snap "as-of snapshot" snap expected;
        Store.Snapshot.release snap
      | Error e -> failwith ("as-of: " ^ Lvm.Lvm_error.to_string e))
    | r when r < 92 ->
      (* a split (or the merge sending it home), concurrent with every
         held snapshot — route pinning keeps them valid *)
      if !moved then begin
        let displaced =
          List.filter
            (fun b -> Store.owner_of_bucket st b <> Store.default_owner st b)
            (List.init (Store.buckets st) Fun.id)
        in
        List.iter
          (fun b ->
            Store.move st ~from_:(Store.owner_of_bucket st b)
              ~to_:(Store.default_owner st b) ~batch:4 [ b ])
          displaced;
        moved := false
      end
      else begin
        let owned = Store.shard_buckets st 0 in
        let half = (List.length owned + 1) / 2 in
        Store.move st ~from_:0 ~to_:1 ~batch:4
          (List.filteri (fun i _ -> i < half) owned);
        moved := true
      end;
      List.iter (fun (snap, expected) -> check_snap "post-move" snap expected)
        !live
    | _ ->
      (* validate every held snapshot against its pinned prefix *)
      List.iter
        (fun (snap, expected) -> check_snap "held snapshot" snap expected)
        !live
  done;
  List.iter (fun (snap, expected) -> check_snap "final" snap expected) !live;
  (* double recovery: old snapshots die, fresh ones re-derive *)
  ignore (Store.recover st);
  ignore (Store.recover st);
  List.iter
    (fun (snap, _) ->
      match Store.Snapshot.read snap 0 with
      | Error (Lvm.Lvm_error.Snapshot_unavailable _) -> ()
      | Ok _ | Error _ -> failwith "recovery left a stale snapshot readable")
    !live;
  let fresh = acquire st in
  check_snap "post-recovery snapshot" fresh model;
  Store.Snapshot.release fresh

(* the same splitmix-driven runner test_prop uses, inlined *)
let run_prop ?(cases = 60) ?(max_size = 64) name prop =
  let suite_seed = 0x5eed in
  for case = 0 to cases - 1 do
    let case_seed = (suite_seed * 1_000_003) + case in
    let size = 1 + Sm.int (Sm.create ~seed:case_seed) ~bound:max_size in
    match prop (Sm.create ~seed:(case_seed * 2 + 1)) size with
    | () -> ()
    | exception e ->
      Alcotest.fail
        (Printf.sprintf "%s: case %d (seed %d, size %d): %s" name case
           case_seed size (Printexc.to_string e))
  done

let test_snapshot_prefix_prop () =
  run_prop "snapshot prefix consistency" prop_snapshot_prefix

let suites =
  [ ( "mvcc",
      [ Alcotest.test_case "fold_from resumes from a timestamp" `Quick
          test_fold_from;
        Alcotest.test_case "incremental applier" `Quick
          test_applier_incremental;
        Alcotest.test_case "snapshot basics + result-typed reads" `Quick
          test_snapshot_basics;
        Alcotest.test_case "2pc atomicity at the cut" `Quick
          test_2pc_cut_atomicity;
        Alcotest.test_case "split-concurrent snapshots" `Quick
          test_split_concurrent_snapshot;
        Alcotest.test_case "workload read modes" `Quick
          test_workload_read_modes ] );
    ( "mvcc.prop",
      [ Alcotest.test_case "snapshot prefix consistency" `Slow
          test_snapshot_prefix_prop ] ) ]
