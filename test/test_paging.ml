(* Tests for demand paging (backed segments, eviction, reclaim under
   memory pressure) and for mapping log segments into address spaces. *)

open Lvm_machine
open Lvm_vm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot ?frames () =
  let k = Kernel.create ?frames () in
  let sp = Kernel.create_space k in
  (k, sp)

(* {1 Backing store} *)

let test_backing_store_basics () =
  let b = Backing_store.create ~size:5000 in
  check "rounded to pages" 8192 (Backing_store.size b);
  check "pages" 2 (Backing_store.pages b);
  Backing_store.write_word b ~off:100 0xFEED;
  check "word roundtrip" 0xFEED (Backing_store.read_word b ~off:100);
  let page = Backing_store.read_page b ~page:0 in
  check "page carries the word" 0xFEED
    (Int32.to_int (Bytes.get_int32_le page 100));
  Alcotest.check_raises "page bounds"
    (Invalid_argument "Backing_store: page out of range") (fun () ->
      ignore (Backing_store.read_page b ~page:2))

(* {1 Demand paging} *)

let test_backed_segment_demand_load () =
  let k, sp = boot () in
  let store = Backing_store.create ~size:8192 in
  Backing_store.write_word store ~off:16 0xAA;
  Backing_store.write_word store ~off:4096 0xBB;
  let seg = Kernel.create_segment ~backing:store k ~size:8192 in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp region in
  check "page 0 loaded from store" 0xAA (Kernel.read_word k sp (base + 16));
  check "page 1 loaded from store" 0xBB (Kernel.read_word k sp (base + 4096))

let test_page_in_charged () =
  let k, sp = boot () in
  let store = Backing_store.create ~size:4096 in
  let seg = Kernel.create_segment ~backing:store k ~size:4096 in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp region in
  let t0 = Kernel.time k in
  ignore (Kernel.read_word k sp base);
  check_bool "fault includes paging I/O" true
    (Kernel.time k - t0 >= Cycles.page_fault + Cycles.page_in)

let test_evict_and_refault () =
  let k, sp = boot () in
  let store = Backing_store.create ~size:4096 in
  let seg = Kernel.create_segment ~backing:store k ~size:4096 in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp (base + 8) 777;
  let free_before = Physmem.frames_free (Machine.mem (Kernel.machine k)) in
  Kernel.evict_page k seg ~page:0;
  check "frame released" (free_before + 1)
    (Physmem.frames_free (Machine.mem (Kernel.machine k)));
  check "store holds the data" 777 (Backing_store.read_word store ~off:8);
  (* the next access faults the page back in transparently *)
  check "refault restores" 777 (Kernel.read_word k sp (base + 8));
  Kernel.write_word k sp (base + 8) 778;
  check "writable after refault" 778 (Kernel.read_word k sp (base + 8))

let test_sync_segment () =
  let k, sp = boot () in
  let store = Backing_store.create ~size:8192 in
  let seg = Kernel.create_segment ~backing:store k ~size:8192 in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp base 1;
  Kernel.write_word k sp (base + 4096) 2;
  check "store stale before sync" 0 (Backing_store.read_word store ~off:0);
  Kernel.sync_segment k seg;
  check "page 0 synced" 1 (Backing_store.read_word store ~off:0);
  check "page 1 synced" 2 (Backing_store.read_word store ~off:4096)

let test_persistence_across_kernels () =
  (* the mapped-file pattern: a store written by one kernel instance is
     mapped by a fresh one *)
  let store = Backing_store.create ~size:4096 in
  let () =
    let k, sp = boot () in
    let seg = Kernel.create_segment ~backing:store k ~size:4096 in
    let region = Kernel.create_region k seg in
    let base = Kernel.bind k sp region in
    Kernel.write_word k sp (base + 12) 4242;
    Kernel.sync_segment k seg
  in
  let k2, sp2 = boot () in
  let seg2 = Kernel.create_segment ~backing:store k2 ~size:4096 in
  let region2 = Kernel.create_region k2 seg2 in
  let base2 = Kernel.bind k2 sp2 region2 in
  check "data visible in the new kernel" 4242
    (Kernel.read_word k2 sp2 (base2 + 12))

let test_reclaim_under_memory_pressure () =
  (* a machine with very few frames: touching more backed pages than fit
     must transparently page out and keep working *)
  let k, sp = boot ~frames:24 () in
  let pages = 40 in
  let store = Backing_store.create ~size:(pages * Addr.page_size) in
  let seg =
    Kernel.create_segment ~backing:store k ~size:(pages * Addr.page_size)
  in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp region in
  for p = 0 to pages - 1 do
    Kernel.write_word k sp (base + (p * Addr.page_size)) (p + 1)
  done;
  (* every page readable afterwards, through refaults *)
  let ok = ref true in
  for p = 0 to pages - 1 do
    if Kernel.read_word k sp (base + (p * Addr.page_size)) <> p + 1 then
      ok := false
  done;
  check_bool "all pages survive paging" true !ok

let test_unbacked_eviction_rejected () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp base 1;
  Alcotest.check_raises "no backing"
    (Error.Lvm_error
       (Error.No_backing_store
          { op = "evict_page"; segment = Segment.id seg }))
    (fun () -> Kernel.evict_page k seg ~page:0)

let test_logged_pages_not_reclaimed () =
  (* logged segments are pinned: reclaim must not touch them *)
  let k, sp = boot ~frames:20 () in
  let store = Backing_store.create ~size:4096 in
  let logged_store = Backing_store.create ~size:4096 in
  let lseg = Kernel.create_segment ~backing:logged_store k ~size:4096 in
  let lregion = Kernel.create_region k lseg in
  let ls = Kernel.create_log_segment k ~size:(2 * Addr.page_size) in
  Kernel.set_region_log k lregion (Some ls);
  let lbase = Kernel.bind k sp lregion in
  Kernel.write_word k sp lbase 7 (* logged write; page must stay put *);
  (* churn plain backed pages to force reclaim *)
  let pages = 24 in
  let seg =
    Kernel.create_segment ~backing:store
      k ~size:4096
  in
  ignore seg;
  let big_store = Backing_store.create ~size:(pages * Addr.page_size) in
  let big =
    Kernel.create_segment ~backing:big_store k
      ~size:(pages * Addr.page_size)
  in
  let bregion = Kernel.create_region k big in
  let bbase = Kernel.bind k sp bregion in
  for p = 0 to pages - 1 do
    Kernel.write_word k sp (bbase + (p * Addr.page_size)) p
  done;
  (* the logged page was never evicted: write again without a page fault *)
  let faults = (Kernel.perf k).Perf.page_faults in
  Kernel.write_word k sp lbase 8;
  check "no refault on the logged page" faults (Kernel.perf k).Perf.page_faults;
  check "log intact" 2 (Lvm.Log_reader.record_count k ls)

(* {1 Mapping log segments (Section 2.1)} *)

let test_log_mapped_into_space () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let region = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(4 * Addr.page_size) in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  Kernel.write_word k sp (base + 8) 0xAAA;
  Kernel.write_word k sp (base + 12) 0xBBB;
  (* a (different) reader maps the log and parses records itself *)
  let reader_space = Kernel.create_space k in
  let log_base = Lvm.Log_reader.map k reader_space ls in
  let r0 = Lvm.Log_reader.read_mapped k reader_space ~base:log_base ~off:0 in
  let r1 =
    Lvm.Log_reader.read_mapped k reader_space ~base:log_base
      ~off:Log_record.bytes
  in
  check "first record value" 0xAAA r0.Log_record.value;
  check "second record value" 0xBBB r1.Log_record.value;
  check_bool "timestamps ordered" true
    (r0.Log_record.timestamp <= r1.Log_record.timestamp)

let test_log_map_rejects_std_segment () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  Alcotest.check_raises "not a log"
    (Invalid_argument "Log_reader.map: not a log segment") (fun () ->
      ignore (Lvm.Log_reader.map k sp seg))

let suites =
  [
    ( "paging.store",
      [ Alcotest.test_case "basics" `Quick test_backing_store_basics ] );
    ( "paging.demand",
      [
        Alcotest.test_case "demand load" `Quick
          test_backed_segment_demand_load;
        Alcotest.test_case "page-in charged" `Quick test_page_in_charged;
        Alcotest.test_case "evict and refault" `Quick test_evict_and_refault;
        Alcotest.test_case "sync segment" `Quick test_sync_segment;
        Alcotest.test_case "persistence across kernels" `Quick
          test_persistence_across_kernels;
        Alcotest.test_case "reclaim under pressure" `Quick
          test_reclaim_under_memory_pressure;
        Alcotest.test_case "unbacked eviction rejected" `Quick
          test_unbacked_eviction_rejected;
        Alcotest.test_case "logged pages pinned" `Quick
          test_logged_pages_not_reclaimed;
      ] );
    ( "paging.log-mapping",
      [
        Alcotest.test_case "log mapped into space" `Quick
          test_log_mapped_into_space;
        Alcotest.test_case "rejects std segment" `Quick
          test_log_map_rejects_std_segment;
      ] );
  ]
