(* Tests for the sharded transactional store: local and cross-shard
   (two-phase-commit) execution, in-doubt recovery, backpressure, the
   workload driver's scheduling invariants and the shard-scaling
   figure. *)

module Store = Lvm_store.Store
module Workload = Lvm_store.Workload

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The result-typed read, unwrapped: any refusal here is a test bug. *)
let read st key =
  match Store.read st key with
  | Ok v -> v
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e)

let make ?(shards = 2) ?(keys = 32) ?(admission = Store.Config.Queue) () =
  Store.create
    { Store.Config.default with shards; keys; admission; compute = 40 }

(* {1 Local and cross-shard transactions} *)

let test_local_txns () =
  let st = make () in
  (match Store.exec st ~writes:[ (0, 11); (2, 13) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  (match Store.exec st ~writes:[ (1, 17) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "key 0" 11 (read st 0);
  check "key 2" 13 (read st 2);
  check "key 1" 17 (read st 1);
  check "untouched key" 0 (read st 3)

let test_cross_txn () =
  let st = make () in
  (* Keys 4 and 7 live on different shards: a two-phase commit. *)
  check "distinct shards" 1
    (abs (Store.shard_of_key st 4 - Store.shard_of_key st 7));
  (match Store.exec st ~writes:[ (4, 44); (7, 77) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "shard-a key" 44 (read st 4);
  check "shard-b key" 77 (read st 7)

let test_empty_and_invalid () =
  let st = make () in
  check_bool "empty writes ok" true (Store.exec st ~writes:[] = Ok ());
  (match Store.exec st ~writes:[ (99, 1) ] with
  | Error (Lvm.Lvm_error.Invalid_key { key }) -> check "bad key reported" 99 key
  | _ -> Alcotest.fail "expected Invalid_key");
  let too_many = List.init 40 (fun i -> (i mod 8, i)) in
  (match Store.exec st ~writes:too_many with
  | Error (Lvm.Lvm_error.Txn_too_large { writes; limit }) ->
    check "size reported" 40 writes;
    check "limit reported" 32 limit
  | _ -> Alcotest.fail "expected Txn_too_large");
  check "failed txns left no trace" 0 (read st 3)

(* {1 Crash recovery} *)

(* An in-doubt cross-shard transaction: capture the detached phase-2
   commit instead of running it, so the decision is durable but one
   participant never applied — then crash. Recovery must roll the whole
   transaction forward from the coordinator intent. *)
let test_in_doubt_roll_forward () =
  let st = make () in
  let captured = ref [] in
  (match
     Store.exec st
       ~detach:(fun ~shard:_ f -> captured := f :: !captured)
       ~writes:[ (4, 91); (7, 92) ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "one phase-2 branch captured" 1 (List.length !captured);
  (* Crash: volatile state is lost, the captured commit never runs. *)
  let report = Store.recover st in
  (match report.Store.redone with
  | [ (_, n) ] -> check "redone writes" 2 n
  | _ -> Alcotest.fail "expected an in-doubt transaction to roll forward");
  check "home slice" 91 (read st 4);
  check "in-doubt slice" 92 (read st 7);
  (* Idempotence: a second recovery finds nothing to redo. *)
  let report2 = Store.recover st in
  check_bool "second recovery redoes nothing" true (report2.Store.redone = []);
  check "home slice stable" 91 (read st 4);
  check "in-doubt slice stable" 92 (read st 7)

(* Two cross-shard transactions on disjoint shard sets, both in their
   decide->retire window at the crash (each one's detached phase-2
   captured, never run). The coordinator must keep both intents live —
   per-gid slots, neither decide overwriting the other, neither retire
   zeroing the other — and recovery must roll BOTH forward. *)
let test_two_in_doubt_roll_forward () =
  let st = make ~shards:4 () in
  let captured = ref [] in
  let detach ~shard:_ f = captured := f :: !captured in
  (* Keys 0,1 -> shards 0,1; keys 2,3 -> shards 2,3. *)
  (match Store.exec st ~detach ~writes:[ (0, 10); (1, 11) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  (match Store.exec st ~detach ~writes:[ (2, 20); (3, 21) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "two phase-2 branches captured" 2 (List.length !captured);
  let report = Store.recover st in
  check "both in-doubt transactions rolled forward" 2
    (List.length report.Store.redone);
  check "txn A home slice" 10 (read st 0);
  check "txn A in-doubt slice" 11 (read st 1);
  check "txn B home slice" 20 (read st 2);
  check "txn B in-doubt slice" 21 (read st 3);
  let report2 = Store.recover st in
  check "second recovery redoes nothing" 0 (List.length report2.Store.redone)

let test_recover_clean () =
  let st = make () in
  (match Store.exec st ~writes:[ (0, 5); (1, 6) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  let report = Store.recover st in
  check_bool "nothing in doubt" true (report.Store.redone = []);
  check "shard 0 durable" 5 (read st 0);
  check "shard 1 durable" 6 (read st 1)

(* {1 Backpressure} *)

(* Force the log-exhaustion path with a fault plan: the next log-segment
   page crossing behaves as if no pages were left, so the transaction's
   redo records are absorbed and commit must refuse — surfaced as a
   typed [Overloaded], never an exception, and aborted cleanly. The
   transaction is big enough (hundreds of logged stores) to actually
   cross a log page. *)
let test_overloaded () =
  let st =
    Store.create
      { Store.Config.default with
        shards = 2; keys = 1024; max_txn_writes = 300; compute = 40 }
  in
  let m = Lvm_vm.Kernel.machine (Store.kernel st) in
  let plan =
    Lvm_fault.Plan.create
      [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Log_segment;
          trigger = Lvm_fault.Plan.Every 1;
          fault = Lvm_fault.Fault.Log_exhaust } ]
  in
  Lvm_machine.Machine.set_fault_plan m (Some plan);
  (* 280 writes, all on shard 0. *)
  let big = List.init 280 (fun i -> (2 * i, i + 1)) in
  (match Store.exec st ~writes:big with
  | Error (Lvm.Lvm_error.Overloaded { shard }) -> check "overloaded shard" 0 shard
  | Ok () -> Alcotest.fail "expected Overloaded, got Ok"
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "aborted txn left no trace" 0 (read st 0);
  Lvm_machine.Machine.set_fault_plan m None;
  (match Store.exec st ~writes:[ (0, 123) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "store recovered after backpressure" 123 (read st 0)

(* {1 Workload driver} *)

let run_spec ~shards ~txns () =
  let st =
    Store.create { Store.Config.default with shards; keys = 1024 }
  in
  Workload.run st { Workload.default with txns }

let test_workload_basic () =
  let r = run_spec ~shards:4 ~txns:60 () in
  check "all txns executed" 60 (r.Workload.executed + r.Workload.shed);
  check_bool "cross-shard txns ran" true (r.Workload.cross > 0);
  check "nothing shed at this load" 0 r.Workload.shed;
  let homes =
    Array.fold_left (fun acc (s : Workload.shard_stat) -> acc + s.txns) 0
      r.Workload.per_shard
  in
  check "per-shard counts sum to executed" r.Workload.executed homes

let test_workload_deterministic () =
  let r1 = run_spec ~shards:4 ~txns:40 () in
  let r2 = run_spec ~shards:4 ~txns:40 () in
  check "wall cycles reproduce" r1.Workload.wall_cycles
    r2.Workload.wall_cycles;
  check "executed reproduces" r1.Workload.executed r2.Workload.executed;
  check "cross reproduces" r1.Workload.cross r2.Workload.cross

(* The tentpole figure: four shards must buy at least twice the
   single-shard transaction throughput on the same mix (the committed
   BENCH_5.json point uses 200 transactions; this is the same check at
   test-sized load). *)
let test_workload_scaling () =
  let r1 = run_spec ~shards:1 ~txns:200 () in
  let r4 = run_spec ~shards:4 ~txns:200 () in
  check_bool
    (Printf.sprintf "4-shard %.0f vs 1-shard %.0f cycles/txn: >= 2x"
       r4.Workload.cycles_per_txn r1.Workload.cycles_per_txn)
    true
    (r4.Workload.cycles_per_txn *. 2.0 <= r1.Workload.cycles_per_txn)

(* {1 Crash sweep over the sharded store} *)

let test_store_sweep () =
  let sweep () =
    Lvm_tpc.Crash_sweep.run ~seed:5 ~txns:6 ~points:40 ~torn_points:8
      ~shards:2 ()
  in
  let o = sweep () in
  Alcotest.(check (list string)) "no atomicity violations" [] o.failures;
  check_bool "every point ran" true (o.points >= 48);
  let o2 = sweep () in
  Alcotest.(check string) "sweep deterministic" o.trace o2.trace

(* {1 Hot-shard survival: moves, admission, skew} *)

(* The move lifecycle stepwise, with writes landing in every window:
   during the copy (dirty-tracked, old owner), during the drain (typed
   [Moved] refusal), and after the cutover (new owner). The moved key's
   latest committed value must win. *)
let test_move_lifecycle () =
  let st = make ~shards:2 ~keys:16 () in
  for key = 0 to 15 do
    match Store.exec st ~writes:[ (key, 100 + key) ] with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e)
  done;
  (* key 0 lives in bucket 0, owned by shard 0 *)
  check "key 0 starts on shard 0" 0 (Store.shard_of_key st 0);
  Store.move_begin st ~from_:0 ~to_:1 [ 0; 2 ];
  check "two keys to copy" 2 (Store.move_remaining st);
  let remaining = Store.move_copy_step st ~batch:1 in
  check "one key copied" 1 remaining;
  (* a write during the copy keeps landing on the old owner, dirty *)
  (match Store.exec st ~writes:[ (0, 777) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "copy-phase write visible" 777 (read st 0);
  check_bool "write dirtied the moved key" true
    (Store.move_dirty_count st >= 1);
  Store.move_enter_drain st;
  check_bool "draining" true (Store.move_draining st);
  (* the handoff window: a moved-key write is refused, typed *)
  (match Store.exec st ~writes:[ (0, 888) ] with
  | Error (Lvm.Lvm_error.Moved { key; shard }) ->
    check "moved key reported" 0 key;
    check "new owner reported" 1 shard
  | Ok () -> Alcotest.fail "draining move accepted a moved-key write"
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  (match Store.blocked_by_move st [ (0, 1) ] with
  | Some (key, shard) ->
    check "blocked key" 0 key;
    check "blocked target" 1 shard
  | None -> Alcotest.fail "blocked_by_move missed the handoff window");
  check_bool "unmoved keys unaffected" true
    (Store.blocked_by_move st [ (1, 1) ] = None);
  Store.move_drain st;
  check "drain copied everything" 0 (Store.move_remaining st);
  check "drain flushed the dirty set" 0 (Store.move_dirty_count st);
  Store.move_cutover st;
  Store.move_retire st;
  check_bool "move over" true (Store.active_move st = None);
  check "key 0 rerouted" 1 (Store.shard_of_key st 0);
  check "dirty value survived the handoff" 777 (read st 0);
  check "companion key moved too" 102 (read st 2);
  (* post-move writes land on the new owner *)
  (match Store.exec st ~writes:[ (0, 999) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "post-move write" 999 (read st 0)

(* An aborted move changes nothing: ownership, values, and a later
   successful move still works. *)
let test_move_abort () =
  let st = make ~shards:2 ~keys:16 () in
  (match Store.exec st ~writes:[ (0, 5) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  Store.move_begin st ~from_:0 ~to_:1 [ 0 ];
  ignore (Store.move_copy_step st ~batch:8);
  Store.move_abort st;
  check "abort kept ownership" 0 (Store.shard_of_key st 0);
  check "abort kept the value" 5 (read st 0);
  Store.move st ~from_:0 ~to_:1 [ 0 ];
  check "retry after abort moves" 1 (Store.shard_of_key st 0);
  check "value follows" 5 (read st 0)

(* The token-bucket gate: burst admits, the next immediate transaction
   sheds with the typed [Shed] — no log room or intent slot consumed —
   and tokens refill with CPU time. *)
let test_admission_shed () =
  let st =
    Store.create
      { Store.Config.default with
        shards = 2; keys = 16; compute = 40;
        admission_rate = 0.01; admission_burst = 1 }
  in
  (match Store.exec st ~writes:[ (0, 1) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  (match Store.exec st ~writes:[ (0, 2) ] with
  | Error (Lvm.Lvm_error.Shed { shard }) -> check "shedding shard" 0 shard
  | Ok () -> Alcotest.fail "expected the token bucket to shed"
  | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
  check "shed txn left no trace" 1 (read st 0);
  (* backing off (shard-CPU time passing) refills the bucket *)
  let k = Store.kernel st in
  let rec wait tries =
    if tries = 0 then Alcotest.fail "the gate never refilled"
    else
      match Store.exec st ~writes:[ (0, 3) ] with
      | Ok () -> ()
      | Error (Lvm.Lvm_error.Shed _) ->
        Lvm_vm.Kernel.set_cpu k 0;
        Lvm_vm.Kernel.compute k 10_000;
        wait (tries - 1)
      | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e)
  in
  wait 100;
  check "refilled and admitted" 3 (read st 0)

(* Workload-level shed accounting: a tight admission rate sheds some of
   a closed-loop run, every transaction accounted exactly once. *)
let test_workload_shed_accounting () =
  let st =
    Store.create
      { Store.Config.default with
        shards = 2; keys = 64; compute = 40;
        admission_rate = 0.01; admission_burst = 2 }
  in
  let r =
    Workload.run st
      { Workload.default with txns = 60; cross_pct = 0; retries = 1 }
  in
  check_bool "the gate shed something" true (r.Workload.shed > 0);
  check "every txn accounted once" 60
    (r.Workload.executed + r.Workload.shed + r.Workload.failed
   + r.Workload.dropped)

(* Retry-budget exhaustion surfaces in [failed] — never silently, never
   as success, never as shed. A fault plan exhausts the log on every
   page crossing; transactions bigger than a log page cross on every
   attempt, so each one hits [Overloaded] until its budget runs out. *)
let test_failed_counter () =
  let st =
    Store.create
      { Store.Config.default with
        shards = 2; keys = 1024; compute = 40; max_txn_writes = 300 }
  in
  let m = Lvm_vm.Kernel.machine (Store.kernel st) in
  let plan =
    Lvm_fault.Plan.create
      [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Log_segment;
          trigger = Lvm_fault.Plan.Every 1;
          fault = Lvm_fault.Fault.Log_exhaust } ]
  in
  Lvm_machine.Machine.set_fault_plan m (Some plan);
  let r =
    Workload.run st
      { Workload.default with
        txns = 6; cross_pct = 0; writes_per_txn = 280; retries = 2 }
  in
  Lvm_machine.Machine.set_fault_plan m None;
  check "every txn exhausted its retry budget" 6 r.Workload.failed;
  check "failed never counted as shed" 0 r.Workload.shed;
  check "failed never counted as executed" 0 r.Workload.executed;
  check "each failure burned its whole retry budget" 12 r.Workload.requeued

(* Zipfian closed-loop run with dynamic splitting: the skew piles onto
   shard 0, the splitter fires, the driver completes the move mid-run,
   and every transaction is still accounted exactly once. *)
let test_zipf_split_workload () =
  let st =
    Store.create { Store.Config.default with shards = 4; keys = 1024 }
  in
  let r =
    Workload.run st
      { Workload.default with
        txns = 300;
        dist = Workload.Zipfian { theta = 1.2 };
        split =
          Some
            { Workload.default_split with
              check_every = 24; batch = 16; max_moves = 4 }
      }
  in
  check_bool "at least one split completed" true (r.Workload.splits >= 1);
  check "every txn accounted once" 300
    (r.Workload.executed + r.Workload.shed + r.Workload.failed
   + r.Workload.dropped);
  (* the route actually changed: some bucket left its default owner,
     or a later merge sent it home again — either way moves happened *)
  check_bool "split moved buckets off the hot shard" true
    (r.Workload.splits + r.Workload.merges >= 1)

(* The same skewed run must reproduce byte-for-byte: splits, moved-key
   requeues and all. *)
let test_zipf_split_deterministic () =
  let go () =
    let st =
      Store.create { Store.Config.default with shards = 4; keys = 1024 }
    in
    Workload.run st
      { Workload.default with
        txns = 200;
        dist = Workload.Zipfian { theta = 1.2 };
        split =
          Some
            { Workload.default_split with
              check_every = 24; batch = 16; max_moves = 4 }
      }
  in
  let r1 = go () and r2 = go () in
  check "wall cycles reproduce" r1.Workload.wall_cycles r2.Workload.wall_cycles;
  check "executed reproduces" r1.Workload.executed r2.Workload.executed;
  check "splits reproduce" r1.Workload.splits r2.Workload.splits;
  check "merges reproduce" r1.Workload.merges r2.Workload.merges;
  check "moved requeues reproduce" r1.Workload.moved r2.Workload.moved

(* Open-loop bursty arrivals with a bounded front door: drops are
   counted, accounting still exact. *)
let test_open_loop_bursty () =
  let st =
    Store.create { Store.Config.default with shards = 2; keys = 64 }
  in
  let r =
    Workload.run st
      { Workload.default with
        txns = 120; cross_pct = 0;
        arrival =
          Workload.Open
            { mean_gap = 20000; burst_every = 16; burst_len = 8;
              burst_gap = 1000 };
        queue_cap = Some 4 }
  in
  check "every arrival accounted once" 120
    (r.Workload.executed + r.Workload.shed + r.Workload.failed
   + r.Workload.dropped);
  check_bool "bursts overflowed the front door" true
    (r.Workload.dropped > 0);
  check_bool "most of the load still executed" true
    (r.Workload.executed > 60)

(* {1 Split-cutover crash sweep} *)

let test_split_sweep () =
  let sweep () =
    Lvm_tpc.Crash_sweep.run_split ~seed:5 ~points:24 ~torn_points:4
      ~cutover_points:2 ~shards:2 ()
  in
  let o = sweep () in
  Alcotest.(check (list string)) "no split-protocol violations" [] o.failures;
  check "every point ran" 30 o.points;
  let o2 = sweep () in
  Alcotest.(check string) "split sweep deterministic" o.trace o2.trace

let suites =
  [ ( "store",
      [ Alcotest.test_case "local transactions" `Quick test_local_txns;
        Alcotest.test_case "cross-shard 2pc" `Quick test_cross_txn;
        Alcotest.test_case "validation" `Quick test_empty_and_invalid;
        Alcotest.test_case "clean recovery" `Quick test_recover_clean;
        Alcotest.test_case "in-doubt roll-forward" `Quick
          test_in_doubt_roll_forward;
        Alcotest.test_case "two concurrent in-doubt roll-forward" `Quick
          test_two_in_doubt_roll_forward;
        Alcotest.test_case "backpressure overloaded" `Quick test_overloaded ] );
    ( "store.workload",
      [ Alcotest.test_case "closed loop" `Quick test_workload_basic;
        Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
        Alcotest.test_case "4-shard >= 2x scaling" `Slow test_workload_scaling ]
    );
    ( "store.crash",
      [ Alcotest.test_case "sharded sweep" `Slow test_store_sweep ] );
    ( "hotshard",
      [ Alcotest.test_case "move lifecycle windows" `Quick test_move_lifecycle;
        Alcotest.test_case "move abort" `Quick test_move_abort;
        Alcotest.test_case "token-bucket shed" `Quick test_admission_shed;
        Alcotest.test_case "workload shed accounting" `Quick
          test_workload_shed_accounting;
        Alcotest.test_case "retry exhaustion counts as failed" `Quick
          test_failed_counter;
        Alcotest.test_case "zipfian + dynamic split" `Slow
          test_zipf_split_workload;
        Alcotest.test_case "zipfian split deterministic" `Slow
          test_zipf_split_deterministic;
        Alcotest.test_case "open-loop bursty arrivals" `Quick
          test_open_loop_bursty ] );
    ( "hotshard.crash",
      [ Alcotest.test_case "split-cutover sweep" `Slow test_split_sweep ] ) ]
