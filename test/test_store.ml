(* Tests for the sharded transactional store: local and cross-shard
   (two-phase-commit) execution, in-doubt recovery, backpressure, the
   workload driver's scheduling invariants and the shard-scaling
   figure. *)

module Store = Lvm_store.Store
module Workload = Lvm_store.Workload

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let make ?(shards = 2) ?(keys = 32) ?(admission = Store.Config.Queue) () =
  Store.create
    { Store.Config.default with shards; keys; admission; compute = 40 }

(* {1 Local and cross-shard transactions} *)

let test_local_txns () =
  let st = make () in
  (match Store.exec st ~writes:[ (0, 11); (2, 13) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  (match Store.exec st ~writes:[ (1, 17) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  check "key 0" 11 (Store.read st 0);
  check "key 2" 13 (Store.read st 2);
  check "key 1" 17 (Store.read st 1);
  check "untouched key" 0 (Store.read st 3)

let test_cross_txn () =
  let st = make () in
  (* Keys 4 and 7 live on different shards: a two-phase commit. *)
  check "distinct shards" 1
    (abs (Store.shard_of_key st 4 - Store.shard_of_key st 7));
  (match Store.exec st ~writes:[ (4, 44); (7, 77) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  check "shard-a key" 44 (Store.read st 4);
  check "shard-b key" 77 (Store.read st 7)

let test_empty_and_invalid () =
  let st = make () in
  check_bool "empty writes ok" true (Store.exec st ~writes:[] = Ok ());
  (match Store.exec st ~writes:[ (99, 1) ] with
  | Error (Store.Invalid_key { key }) -> check "bad key reported" 99 key
  | _ -> Alcotest.fail "expected Invalid_key");
  let too_many = List.init 40 (fun i -> (i mod 8, i)) in
  (match Store.exec st ~writes:too_many with
  | Error (Store.Txn_too_large { writes; limit }) ->
    check "size reported" 40 writes;
    check "limit reported" 32 limit
  | _ -> Alcotest.fail "expected Txn_too_large");
  check "failed txns left no trace" 0 (Store.read st 3)

(* {1 Crash recovery} *)

(* An in-doubt cross-shard transaction: capture the detached phase-2
   commit instead of running it, so the decision is durable but one
   participant never applied — then crash. Recovery must roll the whole
   transaction forward from the coordinator intent. *)
let test_in_doubt_roll_forward () =
  let st = make () in
  let captured = ref [] in
  (match
     Store.exec st
       ~detach:(fun ~shard:_ f -> captured := f :: !captured)
       ~writes:[ (4, 91); (7, 92) ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  check "one phase-2 branch captured" 1 (List.length !captured);
  (* Crash: volatile state is lost, the captured commit never runs. *)
  let report = Store.recover st in
  (match report.Store.redone with
  | [ (_, n) ] -> check "redone writes" 2 n
  | _ -> Alcotest.fail "expected an in-doubt transaction to roll forward");
  check "home slice" 91 (Store.read st 4);
  check "in-doubt slice" 92 (Store.read st 7);
  (* Idempotence: a second recovery finds nothing to redo. *)
  let report2 = Store.recover st in
  check_bool "second recovery redoes nothing" true (report2.Store.redone = []);
  check "home slice stable" 91 (Store.read st 4);
  check "in-doubt slice stable" 92 (Store.read st 7)

(* Two cross-shard transactions on disjoint shard sets, both in their
   decide->retire window at the crash (each one's detached phase-2
   captured, never run). The coordinator must keep both intents live —
   per-gid slots, neither decide overwriting the other, neither retire
   zeroing the other — and recovery must roll BOTH forward. *)
let test_two_in_doubt_roll_forward () =
  let st = make ~shards:4 () in
  let captured = ref [] in
  let detach ~shard:_ f = captured := f :: !captured in
  (* Keys 0,1 -> shards 0,1; keys 2,3 -> shards 2,3. *)
  (match Store.exec st ~detach ~writes:[ (0, 10); (1, 11) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  (match Store.exec st ~detach ~writes:[ (2, 20); (3, 21) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  check "two phase-2 branches captured" 2 (List.length !captured);
  let report = Store.recover st in
  check "both in-doubt transactions rolled forward" 2
    (List.length report.Store.redone);
  check "txn A home slice" 10 (Store.read st 0);
  check "txn A in-doubt slice" 11 (Store.read st 1);
  check "txn B home slice" 20 (Store.read st 2);
  check "txn B in-doubt slice" 21 (Store.read st 3);
  let report2 = Store.recover st in
  check "second recovery redoes nothing" 0 (List.length report2.Store.redone)

let test_recover_clean () =
  let st = make () in
  (match Store.exec st ~writes:[ (0, 5); (1, 6) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  let report = Store.recover st in
  check_bool "nothing in doubt" true (report.Store.redone = []);
  check "shard 0 durable" 5 (Store.read st 0);
  check "shard 1 durable" 6 (Store.read st 1)

(* {1 Backpressure} *)

(* Force the log-exhaustion path with a fault plan: the next log-segment
   page crossing behaves as if no pages were left, so the transaction's
   redo records are absorbed and commit must refuse — surfaced as a
   typed [Overloaded], never an exception, and aborted cleanly. The
   transaction is big enough (hundreds of logged stores) to actually
   cross a log page. *)
let test_overloaded () =
  let st =
    Store.create
      { Store.Config.default with
        shards = 2; keys = 1024; max_txn_writes = 300; compute = 40 }
  in
  let m = Lvm_vm.Kernel.machine (Store.kernel st) in
  let plan =
    Lvm_fault.Plan.create
      [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Log_segment;
          trigger = Lvm_fault.Plan.Every 1;
          fault = Lvm_fault.Fault.Log_exhaust } ]
  in
  Lvm_machine.Machine.set_fault_plan m (Some plan);
  (* 280 writes, all on shard 0. *)
  let big = List.init 280 (fun i -> (2 * i, i + 1)) in
  (match Store.exec st ~writes:big with
  | Error (Store.Overloaded { shard }) -> check "overloaded shard" 0 shard
  | Ok () -> Alcotest.fail "expected Overloaded, got Ok"
  | Error e -> Alcotest.fail (Store.error_to_string e));
  check "aborted txn left no trace" 0 (Store.read st 0);
  Lvm_machine.Machine.set_fault_plan m None;
  (match Store.exec st ~writes:[ (0, 123) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_to_string e));
  check "store recovered after backpressure" 123 (Store.read st 0)

(* {1 Workload driver} *)

let run_spec ~shards ~txns () =
  let st =
    Store.create { Store.Config.default with shards; keys = 1024 }
  in
  Workload.run st { Workload.default with txns }

let test_workload_basic () =
  let r = run_spec ~shards:4 ~txns:60 () in
  check "all txns executed" 60 (r.Workload.executed + r.Workload.shed);
  check_bool "cross-shard txns ran" true (r.Workload.cross > 0);
  check "nothing shed at this load" 0 r.Workload.shed;
  let homes =
    Array.fold_left (fun acc (s : Workload.shard_stat) -> acc + s.txns) 0
      r.Workload.per_shard
  in
  check "per-shard counts sum to executed" r.Workload.executed homes

let test_workload_deterministic () =
  let r1 = run_spec ~shards:4 ~txns:40 () in
  let r2 = run_spec ~shards:4 ~txns:40 () in
  check "wall cycles reproduce" r1.Workload.wall_cycles
    r2.Workload.wall_cycles;
  check "executed reproduces" r1.Workload.executed r2.Workload.executed;
  check "cross reproduces" r1.Workload.cross r2.Workload.cross

(* The tentpole figure: four shards must buy at least twice the
   single-shard transaction throughput on the same mix (the committed
   BENCH_5.json point uses 200 transactions; this is the same check at
   test-sized load). *)
let test_workload_scaling () =
  let r1 = run_spec ~shards:1 ~txns:200 () in
  let r4 = run_spec ~shards:4 ~txns:200 () in
  check_bool
    (Printf.sprintf "4-shard %.0f vs 1-shard %.0f cycles/txn: >= 2x"
       r4.Workload.cycles_per_txn r1.Workload.cycles_per_txn)
    true
    (r4.Workload.cycles_per_txn *. 2.0 <= r1.Workload.cycles_per_txn)

(* {1 Crash sweep over the sharded store} *)

let test_store_sweep () =
  let sweep () =
    Lvm_tpc.Crash_sweep.run ~seed:5 ~txns:6 ~points:40 ~torn_points:8
      ~shards:2 ()
  in
  let o = sweep () in
  Alcotest.(check (list string)) "no atomicity violations" [] o.failures;
  check_bool "every point ran" true (o.points >= 48);
  let o2 = sweep () in
  Alcotest.(check string) "sweep deterministic" o.trace o2.trace

let suites =
  [ ( "store",
      [ Alcotest.test_case "local transactions" `Quick test_local_txns;
        Alcotest.test_case "cross-shard 2pc" `Quick test_cross_txn;
        Alcotest.test_case "validation" `Quick test_empty_and_invalid;
        Alcotest.test_case "clean recovery" `Quick test_recover_clean;
        Alcotest.test_case "in-doubt roll-forward" `Quick
          test_in_doubt_roll_forward;
        Alcotest.test_case "two concurrent in-doubt roll-forward" `Quick
          test_two_in_doubt_roll_forward;
        Alcotest.test_case "backpressure overloaded" `Quick test_overloaded ] );
    ( "store.workload",
      [ Alcotest.test_case "closed loop" `Quick test_workload_basic;
        Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
        Alcotest.test_case "4-shard >= 2x scaling" `Slow test_workload_scaling ]
    );
    ( "store.crash",
      [ Alcotest.test_case "sharded sweep" `Slow test_store_sweep ] ) ]
