(* Soak tests: longer randomized end-to-end runs exercising the whole
   stack at once (marked Slow; they still finish in seconds).

   Every random choice derives from [LVM_TEST_SEED] (deterministic
   default 77) through the repository's own splitmix64 stream — the
   global [Random] state is never consulted — so a failure is replayed
   exactly by exporting the seed it prints. *)

open Lvm_sim
module Sm = Lvm_fault.Splitmix

let seed =
  match Sys.getenv_opt "LVM_TEST_SEED" with
  | Some v -> ( try int_of_string v with _ -> 77)
  | None -> 77

(* Announce the seed on any failure, then let Alcotest report it. *)
let with_seed f () =
  try f () with e ->
    Printf.eprintf "soak failure: reproduce with LVM_TEST_SEED=%d\n%!" seed;
    raise e

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_timewarp_soak () =
  (* a long mixed run: heavy optimism, both workloads, LVM saving, many
     CULTs, log recycling — everything must stay equivalent *)
  let app = Phold.app ~objects:20 ~object_words:16 ~seed () in
  let run n =
    let e = Timewarp.create ~n_schedulers:n
        ~strategy:State_saving.Lvm_based ~app () in
    Phold.inject_population e ~objects:20 ~population:14 ~seed;
    let r = Timewarp.run e ~end_time:1500 in
    (Timewarp.state_vector e, r)
  in
  let s1, r1 = run 1 in
  let s5, r5 = run 5 in
  Alcotest.(check (array int)) "5-way equals sequential after 1500 vt" s1 s5;
  check "same commits" r1.Timewarp.total_events_committed
    r5.Timewarp.total_events_committed;
  check_bool "thousands of events" true
    (r1.Timewarp.total_events_committed > 900);
  check_bool "plenty of rollbacks survived" true
    (r5.Timewarp.total_rollbacks > 50)

let test_queueing_soak () =
  let app = Queueing.app ~stations:12 ~seed:(seed + 1) in
  let run n =
    let e = Timewarp.create ~n_schedulers:n
        ~strategy:State_saving.Copy_based ~app () in
    Queueing.inject_customers e ~stations:12 ~customers:10 ~seed:(seed + 1);
    ignore (Timewarp.run e ~end_time:1200);
    Timewarp.state_vector e
  in
  Alcotest.(check (array int)) "4-way equals sequential" (run 1) (run 4)

let test_rlvm_soak () =
  (* hundreds of transactions with periodic crashes *)
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in
  let r = Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:8192 in
  let model = Array.make 2048 0 in
  let rng = Sm.create ~seed:(seed + 2) in
  for txn = 1 to 400 do
    Lvm_rvm.Rlvm.begin_txn r;
    let writes = 1 + Sm.int rng ~bound:5 in
    let staged = ref [] in
    for _ = 1 to writes do
      let w = Sm.int rng ~bound:2048 in
      let v = Sm.int rng ~bound:100000 in
      Lvm_rvm.Rlvm.write_word r ~off:(w * 4) v;
      staged := (w, v) :: !staged
    done;
    (match Sm.int rng ~bound:3 with
    | 0 -> Lvm_rvm.Rlvm.abort r
    | 1 | _ ->
      Lvm_rvm.Rlvm.commit r;
      List.iter (fun (w, v) -> model.(w) <- v) (List.rev !staged));
    if txn mod 50 = 0 then Lvm_rvm.Rlvm.crash_and_recover r
  done;
  Lvm_rvm.Rlvm.crash_and_recover r;
  let ok = ref true in
  for w = 0 to 2047 do
    if Lvm_rvm.Rlvm.read_word r ~off:(w * 4) <> model.(w) then ok := false
  done;
  check_bool "400-txn soak state matches the model" true !ok

let suites =
  [
    ( "soak",
      [
        Alcotest.test_case "timewarp phold 1500vt" `Slow
          (with_seed test_timewarp_soak);
        Alcotest.test_case "timewarp queueing 1200vt" `Slow
          (with_seed test_queueing_soak);
        Alcotest.test_case "rlvm 400 txns with crashes" `Slow
          (with_seed test_rlvm_soak);
      ] );
  ]
