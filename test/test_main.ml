(* Aggregate test runner: each [Test_*] module exports its suites. *)

let () =
  Alcotest.run "lvm"
    (Test_machine.suites @ Test_vm.suites @ Test_sim.suites @ Test_rvm.suites
   @ Test_tools.suites @ Test_experiments.suites @ Test_extensions.suites @ Test_edge.suites @ Test_api.suites @ Test_paging.suites @ Test_validation.suites @ Test_obs.suites @ Test_fault.suites @ Test_repl.suites @ Test_store.suites @ Test_fams.suites @ Test_determinism.suites @ Test_prop.suites @ Test_logdiet.suites @ Test_mvcc.suites
   @ Test_soak.suites)
