(* Tests for recoverable memory: the RVM set_range baseline, RLVM over
   logged virtual memory, crash recovery, and the TPC-A workload. *)

open Lvm_rvm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot () =
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in
  (k, sp)

(* {1 Ramdisk} *)

let test_ramdisk_wal_and_truncate () =
  let k, _ = boot () in
  let d = Ramdisk.create k ~size:4096 in
  let bytes v = let b = Bytes.create 4 in Bytes.set_int32_le b 0
                  (Int32.of_int v); b in
  Ramdisk.wal_append d (Ramdisk.Data { txn = 1; off = 0; bytes = bytes 7 });
  Ramdisk.wal_append d (Ramdisk.Commit { txn = 1 });
  Ramdisk.wal_append d (Ramdisk.Data { txn = 2; off = 4; bytes = bytes 9 });
  (* txn 2 never commits *)
  let img = Ramdisk.recovered_image d in
  check "committed applied" 7 (Int32.to_int (Bytes.get_int32_le img 0));
  check "uncommitted ignored" 0 (Int32.to_int (Bytes.get_int32_le img 4));
  Ramdisk.truncate d;
  check "uncommitted survives truncation" 1 (Ramdisk.entry_count d);
  check "image updated" 7
    (Int32.to_int (Bytes.get_int32_le (Ramdisk.image_read d ~off:0 ~len:4) 0))

let test_ramdisk_bounds () =
  let k, _ = boot () in
  let d = Ramdisk.create k ~size:4096 in
  Alcotest.check_raises "entry outside image"
    (Lvm_vm.Error.Lvm_error
       (Lvm_vm.Error.Out_of_range
          { op = "Ramdisk.wal_append"; what = "offset"; value = 4094 }))
    (fun () ->
      Ramdisk.wal_append d
        (Ramdisk.Data { txn = 1; off = 4094; bytes = Bytes.create 4 }))

(* {1 RVM} *)

let test_rvm_commit_persists () =
  let k, sp = boot () in
  let r = Rvm.make Rvm.Config.default k sp ~size:8192 in
  Rvm.begin_txn r;
  Rvm.set_range r ~off:0 ~len:8;
  Rvm.write_word r ~off:0 11;
  Rvm.write_word r ~off:4 22;
  Rvm.commit r;
  Rvm.crash_and_recover r;
  check "word0 recovered" 11 (Rvm.read_word r ~off:0);
  check "word1 recovered" 22 (Rvm.read_word r ~off:4)

let test_rvm_abort_restores () =
  let k, sp = boot () in
  let r = Rvm.make Rvm.Config.default k sp ~size:4096 in
  Rvm.begin_txn r;
  Rvm.set_range r ~off:0 ~len:4;
  Rvm.write_word r ~off:0 5;
  Rvm.commit r;
  Rvm.begin_txn r;
  Rvm.set_range r ~off:0 ~len:4;
  Rvm.write_word r ~off:0 99;
  check "sees uncommitted" 99 (Rvm.read_word r ~off:0);
  Rvm.abort r;
  check "old value restored" 5 (Rvm.read_word r ~off:0)

let test_rvm_crash_discards_uncommitted () =
  let k, sp = boot () in
  let r = Rvm.make Rvm.Config.default k sp ~size:4096 in
  Rvm.begin_txn r;
  Rvm.set_range r ~off:0 ~len:4;
  Rvm.write_word r ~off:0 41;
  Rvm.commit r;
  Rvm.begin_txn r;
  Rvm.set_range r ~off:0 ~len:4;
  Rvm.write_word r ~off:0 999;
  Rvm.crash_and_recover r;
  check "uncommitted lost" 41 (Rvm.read_word r ~off:0);
  check_bool "no open transaction" false (Rvm.in_txn r)

let test_rvm_unannotated_write_rejected () =
  let k, sp = boot () in
  let r = Rvm.make Rvm.Config.default k sp ~size:4096 in
  Rvm.begin_txn r;
  check_bool "unannotated write raises" true
    (try
       Rvm.write_word r ~off:16 1;
       false
     with Rvm.Unannotated_write { off } -> off = 16)

let test_rvm_missed_annotation_corrupts () =
  (* The classic Coda RVM bug (Section 2.5): in non-strict mode a missed
     set_range "commits" but the write is not recovered after a crash. *)
  let k, sp = boot () in
  let r = Rvm.make { Rvm.Config.strict = false } k sp ~size:4096 in
  Rvm.begin_txn r;
  Rvm.set_range r ~off:0 ~len:4;
  Rvm.write_word r ~off:0 1;
  Rvm.write_word r ~off:4 2 (* annotation forgotten *);
  Rvm.commit r;
  check "both visible in memory" 2 (Rvm.read_word r ~off:4);
  Rvm.crash_and_recover r;
  check "annotated write survives" 1 (Rvm.read_word r ~off:0);
  check "missed annotation silently lost" 0 (Rvm.read_word r ~off:4)

let test_rvm_txn_discipline () =
  let k, sp = boot () in
  let r = Rvm.make Rvm.Config.default k sp ~size:4096 in
  Alcotest.check_raises "set_range outside txn" Rvm.No_transaction (fun () ->
      Rvm.set_range r ~off:0 ~len:4);
  Rvm.begin_txn r;
  Alcotest.check_raises "nested txn" Rvm.Transaction_open (fun () ->
      Rvm.begin_txn r)

let test_rvm_wal_truncation_under_load () =
  let k, sp = boot () in
  let r = Rvm.make Rvm.Config.default k sp ~size:8192 in
  for i = 0 to 199 do
    Rvm.begin_txn r;
    Rvm.set_range r ~off:(i * 8 mod 4096) ~len:8;
    Rvm.write_word r ~off:(i * 8 mod 4096) i;
    Rvm.commit r
  done;
  check_bool "wal stays bounded" true
    (Ramdisk.wal_bytes (Rvm.disk r) <= Rvm_costs.truncate_threshold_bytes);
  Rvm.crash_and_recover r;
  check "latest committed state" 199 (Rvm.read_word r ~off:(199 * 8 mod 4096))

(* {1 RLVM} *)

let test_rlvm_commit_persists () =
  let k, sp = boot () in
  let r = Rlvm.make Rlvm.Config.default k sp ~size:8192 in
  Rlvm.begin_txn r;
  Rlvm.write_word r ~off:0 11;
  Rlvm.write_word r ~off:4 22;
  Rlvm.commit r;
  Rlvm.crash_and_recover r;
  check "word0 recovered" 11 (Rlvm.read_word r ~off:0);
  check "word1 recovered" 22 (Rlvm.read_word r ~off:4)

let test_rlvm_abort_restores () =
  let k, sp = boot () in
  let r = Rlvm.make Rlvm.Config.default k sp ~size:4096 in
  Rlvm.begin_txn r;
  Rlvm.write_word r ~off:8 5;
  Rlvm.commit r;
  Rlvm.begin_txn r;
  Rlvm.write_word r ~off:8 99;
  Rlvm.write_word r ~off:12 100;
  check "sees uncommitted" 99 (Rlvm.read_word r ~off:8);
  Rlvm.abort r;
  check "committed value restored" 5 (Rlvm.read_word r ~off:8);
  check "other write undone" 0 (Rlvm.read_word r ~off:12)

let test_rlvm_crash_discards_uncommitted () =
  let k, sp = boot () in
  let r = Rlvm.make Rlvm.Config.default k sp ~size:4096 in
  Rlvm.begin_txn r;
  Rlvm.write_word r ~off:0 41;
  Rlvm.commit r;
  Rlvm.begin_txn r;
  Rlvm.write_word r ~off:0 999;
  Rlvm.crash_and_recover r;
  check "uncommitted lost" 41 (Rlvm.read_word r ~off:0)

let test_rlvm_no_annotations_needed () =
  (* every write inside a transaction is recovered — no set_range *)
  let k, sp = boot () in
  let r = Rlvm.make Rlvm.Config.default k sp ~size:4096 in
  Rlvm.begin_txn r;
  for i = 0 to 63 do
    Rlvm.write_word r ~off:(i * 4) (i * i)
  done;
  Rlvm.commit r;
  Rlvm.crash_and_recover r;
  let ok = ref true in
  for i = 0 to 63 do
    if Rlvm.read_word r ~off:(i * 4) <> i * i then ok := false
  done;
  check_bool "all 64 unannotated writes recovered" true !ok

let test_rlvm_write_outside_txn_rejected () =
  let k, sp = boot () in
  let r = Rlvm.make Rlvm.Config.default k sp ~size:4096 in
  Alcotest.check_raises "write outside txn" Rlvm.No_transaction (fun () ->
      Rlvm.write_word r ~off:0 1)

let test_rlvm_repeated_writes_ordered () =
  (* multiple writes to one location: the last committed value wins after
     recovery (records replay in order) *)
  let k, sp = boot () in
  let r = Rlvm.make Rlvm.Config.default k sp ~size:4096 in
  Rlvm.begin_txn r;
  Rlvm.write_word r ~off:0 1;
  Rlvm.write_word r ~off:0 2;
  Rlvm.write_word r ~off:0 3;
  Rlvm.commit r;
  Rlvm.crash_and_recover r;
  check "last write wins" 3 (Rlvm.read_word r ~off:0)

let prop_rvm_rlvm_equivalent =
  (* Both implementations expose the same transactional semantics: after
     a random interleaving of committed/aborted transactions and a crash,
     they agree word for word. *)
  let words = 32 in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (pair (list_size (int_range 0 6)
                 (pair (int_bound (words - 1)) (int_bound 999)))
           bool))
  in
  let print txns =
    String.concat " | "
      (List.map
         (fun (ws, commit) ->
           Printf.sprintf "%s:%b"
             (String.concat ","
                (List.map (fun (w, v) -> Printf.sprintf "%d=%d" w v) ws))
             commit)
         txns)
  in
  QCheck.Test.make ~name:"rvm and rlvm agree after crash" ~count:40
    (QCheck.make ~print gen) (fun txns ->
      let k, sp = boot () in
      let rvm = Rvm.make Rvm.Config.default k sp ~size:(words * 4) in
      let rlvm = Rlvm.make Rlvm.Config.default k sp ~size:(words * 4) in
      List.iter
        (fun (ws, commit) ->
          Rvm.begin_txn rvm;
          Rlvm.begin_txn rlvm;
          List.iter
            (fun (w, v) ->
              Rvm.set_range rvm ~off:(w * 4) ~len:4;
              Rvm.write_word rvm ~off:(w * 4) v;
              Rlvm.write_word rlvm ~off:(w * 4) v)
            ws;
          if commit then begin
            Rvm.commit rvm;
            Rlvm.commit rlvm
          end
          else begin
            Rvm.abort rvm;
            Rlvm.abort rlvm
          end)
        txns;
      Rvm.crash_and_recover rvm;
      Rlvm.crash_and_recover rlvm;
      let ok = ref true in
      for w = 0 to words - 1 do
        if Rvm.read_word rvm ~off:(w * 4) <> Rlvm.read_word rlvm ~off:(w * 4)
        then ok := false
      done;
      !ok)

(* {1 Performance shape (Table 3)} *)

let test_single_write_costs () =
  let k, sp = boot () in
  let rvm = Rvm.make Rvm.Config.default k sp ~size:8192 in
  Rvm.begin_txn rvm;
  Rvm.set_range rvm ~off:0 ~len:4;
  Rvm.write_word rvm ~off:0 1;
  let t0 = Lvm_vm.Kernel.time k in
  Rvm.set_range rvm ~off:4 ~len:4;
  Rvm.write_word rvm ~off:4 2;
  let rvm_cost = Lvm_vm.Kernel.time k - t0 in
  Rvm.commit rvm;
  let rlvm = Rlvm.make Rlvm.Config.default k sp ~size:8192 in
  Rlvm.begin_txn rlvm;
  Rlvm.write_word rlvm ~off:0 1;
  Lvm_vm.Kernel.compute k 200;
  let t1 = Lvm_vm.Kernel.time k in
  Rlvm.write_word rlvm ~off:4 2;
  let rlvm_cost = Lvm_vm.Kernel.time k - t1 in
  Rlvm.commit rlvm;
  check "rvm single write = 3515 cycles" 3515 rvm_cost;
  check "rlvm single write = 16 cycles" 16 rlvm_cost

(* {1 TPC-A} *)

let tpc_fixture () =
  let k, sp = boot () in
  let bank =
    Lvm_tpc.Bank.layout ~branches:2 ~tellers:20 ~accounts:100 ~history:128
  in
  (k, sp, bank, Lvm_tpc.Bank.segment_bytes bank)

let test_tpca_invariants_rvm () =
  let k, sp, bank, size = tpc_fixture () in
  let store = Lvm_tpc.Tpca.rvm_store (Rvm.make Rvm.Config.default k sp ~size) in
  Lvm_tpc.Tpca.setup store bank;
  let r = Lvm_tpc.Tpca.run store bank ~txns:100 in
  check "txns" 100 r.Lvm_tpc.Tpca.txns;
  check_bool "balances consistent" true
    (Lvm_tpc.Tpca.balance_invariant store bank)

let test_tpca_invariants_rlvm () =
  let k, sp, bank, size = tpc_fixture () in
  let store = Lvm_tpc.Tpca.rlvm_store (Rlvm.make Rlvm.Config.default k sp ~size) in
  Lvm_tpc.Tpca.setup store bank;
  ignore (Lvm_tpc.Tpca.run store bank ~txns:100);
  check_bool "balances consistent" true
    (Lvm_tpc.Tpca.balance_invariant store bank)

let test_tpca_same_results_both_stores () =
  let k, sp, bank, size = tpc_fixture () in
  let s_rvm = Lvm_tpc.Tpca.rvm_store (Rvm.make Rvm.Config.default k sp ~size) in
  let s_rlvm = Lvm_tpc.Tpca.rlvm_store (Rlvm.make Rlvm.Config.default k sp ~size) in
  Lvm_tpc.Tpca.setup s_rvm bank;
  Lvm_tpc.Tpca.setup s_rlvm bank;
  ignore (Lvm_tpc.Tpca.run ~seed:3 s_rvm bank ~txns:80);
  ignore (Lvm_tpc.Tpca.run ~seed:3 s_rlvm bank ~txns:80);
  check "identical final balance" (Lvm_tpc.Tpca.total_balance s_rvm bank)
    (Lvm_tpc.Tpca.total_balance s_rlvm bank)

let test_tpca_rlvm_faster () =
  let k, sp, bank, size = tpc_fixture () in
  let s_rvm = Lvm_tpc.Tpca.rvm_store (Rvm.make Rvm.Config.default k sp ~size) in
  let s_rlvm = Lvm_tpc.Tpca.rlvm_store (Rlvm.make Rlvm.Config.default k sp ~size) in
  Lvm_tpc.Tpca.setup s_rvm bank;
  Lvm_tpc.Tpca.setup s_rlvm bank;
  let r_rvm = Lvm_tpc.Tpca.run s_rvm bank ~txns:150 in
  let r_rlvm = Lvm_tpc.Tpca.run s_rlvm bank ~txns:150 in
  let ratio = r_rlvm.Lvm_tpc.Tpca.tps /. r_rvm.Lvm_tpc.Tpca.tps in
  check_bool
    (Printf.sprintf "RLVM/RVM tps ratio %.2f in paper band [1.15,1.55]" ratio)
    true
    (ratio > 1.15 && ratio < 1.55)

let test_tpca_survives_crash () =
  let k, sp, bank, size = tpc_fixture () in
  let rlvm = Rlvm.make Rlvm.Config.default k sp ~size in
  let store = Lvm_tpc.Tpca.rlvm_store rlvm in
  Lvm_tpc.Tpca.setup store bank;
  ignore (Lvm_tpc.Tpca.run store bank ~txns:60);
  let before = Lvm_tpc.Tpca.total_balance store bank in
  Rlvm.crash_and_recover rlvm;
  check "balances durable across crash" before
    (Lvm_tpc.Tpca.total_balance store bank);
  check_bool "invariant holds after recovery" true
    (Lvm_tpc.Tpca.balance_invariant store bank)

let suites =
  [
    ( "rvm.ramdisk",
      [
        Alcotest.test_case "wal and truncate" `Quick
          test_ramdisk_wal_and_truncate;
        Alcotest.test_case "bounds" `Quick test_ramdisk_bounds;
      ] );
    ( "rvm.rvm",
      [
        Alcotest.test_case "commit persists" `Quick test_rvm_commit_persists;
        Alcotest.test_case "abort restores" `Quick test_rvm_abort_restores;
        Alcotest.test_case "crash discards uncommitted" `Quick
          test_rvm_crash_discards_uncommitted;
        Alcotest.test_case "unannotated write rejected" `Quick
          test_rvm_unannotated_write_rejected;
        Alcotest.test_case "missed annotation corrupts" `Quick
          test_rvm_missed_annotation_corrupts;
        Alcotest.test_case "transaction discipline" `Quick
          test_rvm_txn_discipline;
        Alcotest.test_case "wal truncation under load" `Quick
          test_rvm_wal_truncation_under_load;
      ] );
    ( "rvm.rlvm",
      [
        Alcotest.test_case "commit persists" `Quick test_rlvm_commit_persists;
        Alcotest.test_case "abort restores" `Quick test_rlvm_abort_restores;
        Alcotest.test_case "crash discards uncommitted" `Quick
          test_rlvm_crash_discards_uncommitted;
        Alcotest.test_case "no annotations needed" `Quick
          test_rlvm_no_annotations_needed;
        Alcotest.test_case "write outside txn rejected" `Quick
          test_rlvm_write_outside_txn_rejected;
        Alcotest.test_case "repeated writes ordered" `Quick
          test_rlvm_repeated_writes_ordered;
        QCheck_alcotest.to_alcotest prop_rvm_rlvm_equivalent;
      ] );
    ( "rvm.table3",
      [ Alcotest.test_case "single write costs" `Quick test_single_write_costs
      ] );
    ( "rvm.tpca",
      [
        Alcotest.test_case "invariants (rvm)" `Quick test_tpca_invariants_rvm;
        Alcotest.test_case "invariants (rlvm)" `Quick
          test_tpca_invariants_rlvm;
        Alcotest.test_case "same results both stores" `Quick
          test_tpca_same_results_both_stores;
        Alcotest.test_case "rlvm faster" `Quick test_tpca_rlvm_faster;
        Alcotest.test_case "survives crash" `Quick test_tpca_survives_crash;
      ] );
  ]

(* {1 Crash-point injection} *)

(* Property: crash after any prefix of committed transactions recovers
   exactly the state those transactions produced — for both stores. *)
let prop_crash_point_recovery =
  let words = 16 in
  let gen =
    QCheck.Gen.(
      let* txns =
        list_size (int_range 1 8)
          (list_size (int_range 1 4)
             (pair (int_bound (words - 1)) (int_bound 999)))
      in
      let* crash_after = int_bound (List.length txns) in
      return (txns, crash_after))
  in
  let print (txns, crash_after) =
    Printf.sprintf "crash_after=%d txns=%d" crash_after (List.length txns)
  in
  QCheck.Test.make ~name:"crash after k commits recovers k commits" ~count:30
    (QCheck.make ~print gen) (fun (txns, crash_after) ->
      let k, sp = boot () in
      let rvm = Rvm.make Rvm.Config.default k sp ~size:(words * 4) in
      let rlvm = Rlvm.make Rlvm.Config.default k sp ~size:(words * 4) in
      let expect = Array.make words 0 in
      List.iteri
        (fun i writes ->
          if i < crash_after then begin
            Rvm.begin_txn rvm;
            Rlvm.begin_txn rlvm;
            List.iter
              (fun (w, v) ->
                Rvm.set_range rvm ~off:(w * 4) ~len:4;
                Rvm.write_word rvm ~off:(w * 4) v;
                Rlvm.write_word rlvm ~off:(w * 4) v;
                expect.(w) <- v)
              writes;
            Rvm.commit rvm;
            Rlvm.commit rlvm
          end
          else if i = crash_after then begin
            (* an in-flight transaction dies with the machine *)
            Rvm.begin_txn rvm;
            Rlvm.begin_txn rlvm;
            List.iter
              (fun (w, v) ->
                Rvm.set_range rvm ~off:(w * 4) ~len:4;
                Rvm.write_word rvm ~off:(w * 4) (v + 1);
                Rlvm.write_word rlvm ~off:(w * 4) (v + 1))
              writes
          end)
        txns;
      Rvm.crash_and_recover rvm;
      Rlvm.crash_and_recover rlvm;
      let ok = ref true in
      Array.iteri
        (fun w v ->
          if Rvm.read_word rvm ~off:(w * 4) <> v then ok := false;
          if Rlvm.read_word rlvm ~off:(w * 4) <> v then ok := false)
        expect;
      !ok)

let crash_suite =
  ("rvm.crash-injection", [ QCheck_alcotest.to_alcotest prop_crash_point_recovery ])

let suites = suites @ [ crash_suite ]
