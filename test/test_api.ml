(* Tests for the public API facade (the paper's Table 1 shapes), global
   logging invariants as qcheck properties, and coverage of the smaller
   utility functions. *)

open Lvm_machine

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 The Table 1 facade} *)

let test_api_section_2_2_sequence () =
  (* the exact code sequence of Section 2.2 *)
  let k = Lvm.Api.create Lvm.Api.Config.default in
  let space = Lvm.Api.address_space k in
  let seg_a = Lvm.Api.std_segment k ~size:8192 in
  let reg_r = Lvm.Api.std_region k seg_a in
  let ls = Lvm.Api.log_segment k in
  Lvm.Api.log k reg_r ls;
  let base = Lvm.Api.bind k space reg_r in
  Lvm.Api.write_word k space ~vaddr:(base + 16) 42;
  check "write readable" 42 (Lvm.Api.read_word k space ~vaddr:(base + 16));
  check "write logged" 1 (Lvm.Log_reader.record_count k ls)

let test_api_source_segment_and_reset () =
  let k = Lvm.Api.create Lvm.Api.Config.default in
  let space = Lvm.Api.address_space k in
  let working = Lvm.Api.std_segment k ~size:4096 in
  let ckpt = Lvm.Api.std_segment k ~size:4096 in
  let reg = Lvm.Api.std_region k working in
  Lvm.Api.source_segment k ~dst:working ~src:ckpt;
  let base = Lvm.Api.bind k space reg in
  Lvm.Api.write_word k space ~vaddr:base 7;
  Lvm.Api.reset_deferred_copy k space ~start:base ~len:4096;
  check "reset restored source" 0 (Lvm.Api.read_word k space ~vaddr:base)

let test_api_unlog_and_set_logging () =
  let k = Lvm.Api.create Lvm.Api.Config.default in
  let space = Lvm.Api.address_space k in
  let seg = Lvm.Api.std_segment k ~size:4096 in
  let reg = Lvm.Api.std_region k seg in
  let ls = Lvm.Api.log_segment k in
  Lvm.Api.log k reg ls;
  let base = Lvm.Api.bind k space reg in
  Lvm.Api.write_word k space ~vaddr:base 1;
  Lvm.Api.set_logging k reg false;
  Lvm.Api.write_word k space ~vaddr:base 2;
  Lvm.Api.set_logging k reg true;
  Lvm.Api.unlog k reg;
  Lvm.Api.write_word k space ~vaddr:base 3;
  check "only the enabled-and-logged write" 1
    (Lvm.Log_reader.record_count k ls)

let test_api_manager_hook () =
  let k = Lvm.Api.create Lvm.Api.Config.default in
  let space = Lvm.Api.address_space k in
  let filled = ref 0 in
  let seg =
    Lvm.Api.std_segment ~manager:(fun _ _ -> incr filled) k ~size:8192
  in
  let reg = Lvm.Api.std_region k seg in
  let base = Lvm.Api.bind k space reg in
  ignore (Lvm.Api.read k space ~vaddr:base ~size:4);
  ignore (Lvm.Api.read k space ~vaddr:(base + 4096) ~size:4);
  check "manager called per page" 2 !filled

let test_api_compute_and_time () =
  let k = Lvm.Api.create Lvm.Api.Config.default in
  let t0 = Lvm.Api.time k in
  Lvm.Api.compute k 123;
  check "compute advances time" (t0 + 123) (Lvm.Api.time k)

(* {1 Global logging invariants (properties)} *)

(* Totality and order: every write to a logged region appears in the log
   exactly once, in program order, with the right value. *)
let prop_log_totality =
  QCheck.Test.make ~name:"log records = writes, in order" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 1 120)
        (pair (int_bound 511) (int_bound 0xFFFF)))
    (fun writes ->
      let k = Lvm.Api.create Lvm.Api.Config.default in
      let space = Lvm.Api.address_space k in
      let seg = Lvm.Api.std_segment k ~size:4096 in
      let reg = Lvm.Api.std_region k seg in
      let ls = Lvm.Api.log_segment k ~size:(16 * Addr.page_size) in
      Lvm.Api.log k reg ls;
      let base = Lvm.Api.bind k space reg in
      List.iter
        (fun (w, v) -> Lvm.Api.write_word k space ~vaddr:(base + (w * 4)) v)
        writes;
      let logged =
        List.map
          (fun (r : Log_record.t) ->
            match Lvm.Log_reader.locate k r with
            | Some (_, off) -> (off / 4, r.Log_record.value)
            | None -> (-1, -1))
          (Lvm.Log_reader.to_list k ls)
      in
      logged = writes)

(* Replaying the log onto the initial state reconstructs the final
   state (the foundation of every LVM use case). *)
let prop_log_replay_reconstructs =
  QCheck.Test.make ~name:"log replay reconstructs final state" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 1 80)
        (pair (int_bound 255) (int_bound 0xFFFF)))
    (fun writes ->
      let k = Lvm.Api.create Lvm.Api.Config.default in
      let space = Lvm.Api.address_space k in
      let seg = Lvm.Api.std_segment k ~size:4096 in
      let reg = Lvm.Api.std_region k seg in
      let ls = Lvm.Api.log_segment k ~size:(16 * Addr.page_size) in
      Lvm.Api.log k reg ls;
      let base = Lvm.Api.bind k space reg in
      List.iter
        (fun (w, v) -> Lvm.Api.write_word k space ~vaddr:(base + (w * 4)) v)
        writes;
      let replayed = Array.make 256 0 in
      Lvm.Log_reader.iter k ls ~f:(fun ~off:_ r ->
          match Lvm.Log_reader.locate k r with
          | Some (_, off) -> replayed.(off / 4) <- r.Log_record.value
          | None -> ());
      let ok = ref true in
      for w = 0 to 255 do
        if Lvm.Api.read_word k space ~vaddr:(base + (w * 4)) <> replayed.(w) then
          ok := false
      done;
      !ok)

(* Timestamps are non-decreasing in log order. *)
let prop_log_timestamps_monotone =
  QCheck.Test.make ~name:"log timestamps non-decreasing" ~count:30
    QCheck.(
      list_of_size (Gen.int_range 2 60) (pair (int_bound 100) (int_bound 50)))
    (fun ops ->
      let k = Lvm.Api.create Lvm.Api.Config.default in
      let space = Lvm.Api.address_space k in
      let seg = Lvm.Api.std_segment k ~size:4096 in
      let reg = Lvm.Api.std_region k seg in
      let ls = Lvm.Api.log_segment k in
      Lvm.Api.log k reg ls;
      let base = Lvm.Api.bind k space reg in
      List.iter
        (fun (w, c) ->
          Lvm.Api.compute k c;
          Lvm.Api.write_word k space ~vaddr:(base + (w mod 256 * 4)) w)
        ops;
      let ts =
        List.map
          (fun (r : Log_record.t) -> r.Log_record.timestamp)
          (Lvm.Log_reader.to_list k ls)
      in
      List.sort compare ts = ts)

(* {1 Small utilities} *)

let test_addr_pp () =
  Alcotest.(check string) "hex print" "0x1a2b"
    (Format.asprintf "%a" Addr.pp 0x1a2b)

let test_perf_reset_and_copy () =
  let p = Perf.create () in
  p.Perf.log_records <- 5;
  let q = Perf.copy p in
  Perf.reset p;
  check "reset clears" 0 p.Perf.log_records;
  check "copy unaffected" 5 q.Perf.log_records;
  check_bool "pp renders" true
    (String.length (Format.asprintf "%a" Perf.pp q) > 10)

let test_physmem_byte_blits () =
  let m = Physmem.create ~frames:1 in
  let buf = Bytes.of_string "hello world!" in
  Physmem.blit_of_bytes m buf ~pos:0 ~dst:64 ~len:12;
  let out = Bytes.create 12 in
  Physmem.blit_to_bytes m ~src:64 out ~pos:0 ~len:12;
  Alcotest.(check string) "roundtrip" "hello world!" (Bytes.to_string out)

let test_bcopy_validation () =
  let m = Machine.create ~frames:4 () in
  Alcotest.check_raises "unaligned length"
    (Invalid_argument
       "Machine.bcopy: length must be a multiple of the word size")
    (fun () -> Machine.bcopy m ~src:0 ~dst:64 ~len:7)

let test_state_saving_strings () =
  Alcotest.(check string) "copy" "copy-based"
    (Lvm_sim.State_saving.to_string Lvm_sim.State_saving.Copy_based);
  Alcotest.(check string) "lvm" "lvm"
    (Lvm_sim.State_saving.to_string Lvm_sim.State_saving.Lvm_based);
  Alcotest.(check string) "pp" "page-protect"
    (Format.asprintf "%a" Lvm_sim.State_saving.pp
       Lvm_sim.State_saving.Page_protect)

let test_experiments_registry () =
  check_bool "all ids distinct" true
    (let ids =
       List.map
         (fun e -> e.Lvm_experiments.Experiments.id)
         Lvm_experiments.Experiments.all
     in
     List.sort_uniq compare ids = List.sort compare ids);
  check_bool "find hits" true
    (Lvm_experiments.Experiments.find "table2" <> None);
  check_bool "find misses" true
    (Lvm_experiments.Experiments.find "nope" = None);
  check "thirteen experiments" 13
    (List.length Lvm_experiments.Experiments.all);
  check_bool "multicpu registered" true
    (Lvm_experiments.Experiments.find "multicpu" <> None)

let test_report_table_alignment () =
  let out =
    Format.asprintf "%t" (fun ppf ->
        Lvm_experiments.Report.table ppf ~header:[ "a"; "bb" ]
          [ [ "xxx"; "y" ]; [ "z" ] ])
  in
  check_bool "renders all rows" true
    (String.split_on_char '\n' out |> List.length >= 4)

let test_bank_layout_offsets () =
  let b = Lvm_tpc.Bank.layout ~branches:2 ~tellers:4 ~accounts:8 ~history:16
  in
  check "segment size" ((2 + 4 + 8 + 16) * 16) (Lvm_tpc.Bank.segment_bytes b);
  check "branch 0 balance" 4 (Lvm_tpc.Bank.branch_balance_off b 0);
  check "teller 0 balance" (2 * 16 + 4) (Lvm_tpc.Bank.teller_balance_off b 0);
  check "account 0 balance" ((2 + 4) * 16 + 4)
    (Lvm_tpc.Bank.account_balance_off b 0);
  check "history wraps" (Lvm_tpc.Bank.history_off b 0)
    (Lvm_tpc.Bank.history_off b 16);
  check "teller striping" 1 (Lvm_tpc.Bank.teller_branch b 1)

let test_address_trace_write_rate () =
  let k = Lvm.Api.create Lvm.Api.Config.default in
  let space = Lvm.Api.address_space k in
  let seg = Lvm.Api.std_segment k ~size:4096 in
  let reg = Lvm.Api.std_region k seg in
  let ls = Lvm.Api.log_segment k in
  Lvm.Api.log k reg ls;
  let base = Lvm.Api.bind k space reg in
  check_bool "no rate for empty trace" true
    (Lvm_tools.Address_trace.write_rate k ls = None);
  Lvm.Api.write_word k space ~vaddr:base 1;
  Lvm.Api.compute k 4000;
  Lvm.Api.write_word k space ~vaddr:base 2;
  (match Lvm_tools.Address_trace.write_rate k ls with
  | Some rate -> check_bool "plausible rate" true (rate > 0. && rate < 10.)
  | None -> Alcotest.fail "expected a rate")

let test_watchpoint_empty_log () =
  let k = Lvm.Api.create Lvm.Api.Config.default in
  let space = Lvm.Api.address_space k in
  let seg = Lvm.Api.std_segment k ~size:4096 in
  let reg = Lvm.Api.std_region k seg in
  let ls = Lvm.Api.log_segment k in
  Lvm.Api.log k reg ls;
  ignore (Lvm.Api.bind k space reg);
  ignore space;
  Alcotest.(check int) "no hits in empty log" 0
    (List.length (Lvm_tools.Watchpoint.hits k ~log:ls ~watched:seg ~off:0
                    ~len:4096))

let test_rvm_abort_overlapping_ranges () =
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in
  let r = Lvm_rvm.Rvm.make Lvm_rvm.Rvm.Config.default k sp ~size:4096 in
  Lvm_rvm.Rvm.begin_txn r;
  Lvm_rvm.Rvm.set_range r ~off:0 ~len:8;
  Lvm_rvm.Rvm.write_word r ~off:0 1;
  Lvm_rvm.Rvm.write_word r ~off:4 2;
  (* second overlapping range saves the already-modified values *)
  Lvm_rvm.Rvm.set_range r ~off:4 ~len:8;
  Lvm_rvm.Rvm.write_word r ~off:4 3;
  Lvm_rvm.Rvm.write_word r ~off:8 4;
  Lvm_rvm.Rvm.abort r;
  check "word 0 restored" 0 (Lvm_rvm.Rvm.read_word r ~off:0);
  check "word 1 restored" 0 (Lvm_rvm.Rvm.read_word r ~off:4);
  check "word 2 restored" 0 (Lvm_rvm.Rvm.read_word r ~off:8)

let suites =
  [
    ( "api.table1",
      [
        Alcotest.test_case "section 2.2 sequence" `Quick
          test_api_section_2_2_sequence;
        Alcotest.test_case "source segment + reset" `Quick
          test_api_source_segment_and_reset;
        Alcotest.test_case "unlog / set_logging" `Quick
          test_api_unlog_and_set_logging;
        Alcotest.test_case "manager hook" `Quick test_api_manager_hook;
        Alcotest.test_case "compute and time" `Quick test_api_compute_and_time;
      ] );
    ( "api.invariants",
      [
        QCheck_alcotest.to_alcotest prop_log_totality;
        QCheck_alcotest.to_alcotest prop_log_replay_reconstructs;
        QCheck_alcotest.to_alcotest prop_log_timestamps_monotone;
      ] );
    ( "api.utilities",
      [
        Alcotest.test_case "addr pp" `Quick test_addr_pp;
        Alcotest.test_case "perf reset/copy" `Quick test_perf_reset_and_copy;
        Alcotest.test_case "physmem byte blits" `Quick
          test_physmem_byte_blits;
        Alcotest.test_case "bcopy validation" `Quick test_bcopy_validation;
        Alcotest.test_case "state-saving strings" `Quick
          test_state_saving_strings;
        Alcotest.test_case "experiments registry" `Quick
          test_experiments_registry;
        Alcotest.test_case "report table" `Quick test_report_table_alignment;
        Alcotest.test_case "bank layout" `Quick test_bank_layout_offsets;
        Alcotest.test_case "address trace rate" `Quick
          test_address_trace_write_rate;
        Alcotest.test_case "watchpoint empty log" `Quick
          test_watchpoint_empty_log;
        Alcotest.test_case "rvm overlapping ranges" `Quick
          test_rvm_abort_overlapping_ranges;
      ] );
  ]
