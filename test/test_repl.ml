open Lvm_vm
module Repl = Lvm_repl
module Fault = Lvm_fault.Fault
module Plan = Lvm_fault.Plan

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let cfg ?(replicas = 2) ?obs () =
  { Repl.Config.default with replicas; obs }

let value j idx = ((j * 97) + (idx * 13) + 5) land 0xFFFFFF

let txn cl j =
  let keys = Repl.keys cl in
  let writes = [ (j mod keys, value j 0); ((j * 7 + 3) mod keys, value j 1) ]
  in
  (match Repl.exec cl ~writes with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("exec: " ^ Lvm.Lvm_error.to_string e));
  writes

let run_txns ?(gap = 3) cl ~model n =
  for j = 0 to n - 1 do
    List.iter (fun (k, v) -> model.(k) <- v) (txn cl j);
    Repl.step ~ticks:gap cl
  done

let expect_standby cl i ~model ~what =
  for key = 0 to Repl.keys cl - 1 do
    if Repl.replica_read cl i key <> model.(key) then
      Alcotest.failf "%s: replica %d key %d: got %d want %d" what i key
        (Repl.replica_read cl i key)
        model.(key)
  done

(* {1 Streaming} *)

let test_basic_streaming () =
  let cl = Repl.create (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 8;
  check_bool "converges" true (Repl.sync cl);
  expect_standby cl 0 ~model ~what:"replica 0";
  expect_standby cl 1 ~model ~what:"replica 1";
  let s = Repl.stats cl in
  check "no failover" 1 s.Repl.s_epoch;
  check_bool "frames flowed" true (s.Repl.frames_sent > 0);
  check_bool "acks flowed" true (s.Repl.acks > 0);
  check "nothing dropped without a plan" 0 s.Repl.frames_dropped;
  (* replicas answer reads without ever executing a transaction *)
  check "replica serves committed value" model.(3) (Repl.replica_read cl 0 3)

let test_tail_shipping () =
  (* group commit leaves a window of unforced WAL; the bounded tail
     ships it ahead of the force so standby lag stays small *)
  let cl = Repl.create { (cfg ()) with group = 4 } in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 6;
  check_bool "converges with unforced tail" true (Repl.sync cl);
  check_bool "tail was shipped" true (Repl.replica_applied cl 0 > 0)

(* {1 The low-water rule} *)

let drop_all_frames () =
  (* half-open link: primary->replica traffic is lost, acks/hellos
     still arrive, so the peers stay attached *)
  Plan.create
    [ { Plan.site = Fault.Net_frame; trigger = Plan.Every 1;
        fault = Fault.Net_drop } ]

let drop_everything () =
  Plan.create
    [ { Plan.site = Fault.Net_frame; trigger = Plan.Every 1;
        fault = Fault.Net_drop };
      { Plan.site = Fault.Net_ack; trigger = Plan.Every 1;
        fault = Fault.Net_drop } ]

(* One transaction charges ~40 cost-model WAL bytes; the RAM disk's
   truncation threshold is 12288, so a few hundred transactions are
   enough to make it want to recycle. *)
let gate_txns = 400

let test_ack_gated_recycling () =
  let cl = Repl.create (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  (* partition the data links: the replicas keep helloing over the
     intact ack links, so they stay attached — but can never ack *)
  Repl.set_net_plan cl (Some (drop_all_frames ()));
  run_txns ~gap:1 cl ~model gate_txns;
  let s = Repl.stats cl in
  check_bool "replicas still attached" true (Repl.replica_attached cl 0);
  check "unacked bytes are never recycled" 0 s.Repl.s_base;
  check_bool "the log grew far past the truncation threshold" true
    (s.Repl.s_stream_end > 12_288);
  (* heal; the replicas catch up and ack, freeing the gate *)
  Repl.set_net_plan cl None;
  check_bool "catch-up converges" true (Repl.sync cl);
  List.iter (fun (k, v) -> model.(k) <- v) (txn cl (gate_txns + 1));
  List.iter (fun (k, v) -> model.(k) <- v) (txn cl (gate_txns + 2));
  let s' = Repl.stats cl in
  check_bool "recycling resumed once acked" true (s'.Repl.s_base > 0);
  check_bool "still converges" true (Repl.sync cl)

let test_detach_frees_the_gate () =
  let cl = Repl.create (cfg ~replicas:1 ()) in
  let model = Array.make (Repl.keys cl) 0 in
  (* a full partition: the primary hears nothing at all *)
  Repl.set_net_plan cl (Some (drop_everything ()));
  run_txns ~gap:12 cl ~model 12;
  check_bool "silent replica detached" true
    (not (Repl.replica_attached cl 0));
  (* with the gate freed, the log recycles while partitioned *)
  for j = 12 to gate_txns do
    List.iter (fun (k, v) -> model.(k) <- v) (txn cl j)
  done;
  let s = Repl.stats cl in
  check_bool "detached replica cannot wedge recycling" true
    (s.Repl.s_base > 0);
  (* heal: its history starts before the recycled base, so it resyncs *)
  Repl.set_net_plan cl None;
  check_bool "resync converges" true (Repl.sync cl);
  check_bool "full-state resync used" true ((Repl.stats cl).Repl.resyncs >= 1);
  expect_standby cl 0 ~model ~what:"after resync"

(* {1 Faulty transport} *)

let test_drop_retransmit () =
  let plan =
    Plan.create ~seed:11
      [ { Plan.site = Fault.Net_frame; trigger = Plan.Every 3;
          fault = Fault.Net_drop } ]
  in
  let cl = Repl.create ~plan (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 10;
  check_bool "converges despite drops" true (Repl.sync cl);
  let s = Repl.stats cl in
  check_bool "drops happened" true (s.Repl.frames_dropped > 0);
  check_bool "retransmission covered the gaps" true (s.Repl.retransmits > 0);
  expect_standby cl 0 ~model ~what:"after drops";
  expect_standby cl 1 ~model ~what:"after drops"

let test_dup_reorder_idempotent () =
  let plan =
    Plan.create ~seed:13
      [ { Plan.site = Fault.Net_frame; trigger = Plan.Every 3;
          fault = Fault.Net_dup };
        { Plan.site = Fault.Net_frame; trigger = Plan.Every 4;
          fault = Fault.Net_reorder };
        { Plan.site = Fault.Net_ack; trigger = Plan.Every 5;
          fault = Fault.Net_dup } ]
  in
  let cl = Repl.create ~plan (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 10;
  check_bool "converges despite dup/reorder" true (Repl.sync cl);
  let s = Repl.stats cl in
  check_bool "dups happened" true (s.Repl.frames_duped > 0);
  check_bool "reorders happened" true (s.Repl.frames_reordered > 0);
  (* position-keyed application: duplicated and overtaken frames are
     dropped or re-acked, never applied twice *)
  expect_standby cl 0 ~model ~what:"after dup/reorder";
  expect_standby cl 1 ~model ~what:"after dup/reorder"

let test_delay_convergence () =
  let plan =
    Plan.create ~seed:17
      [ { Plan.site = Fault.Net_frame; trigger = Plan.Every 2;
          fault = Fault.Net_delay { ticks = 9 } } ]
  in
  let cl = Repl.create ~plan (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 8;
  check_bool "converges despite delays" true (Repl.sync cl);
  check_bool "delays happened" true ((Repl.stats cl).Repl.frames_delayed > 0)

(* {1 Failure detection and promotion} *)

let test_failure_detector_backoff () =
  let cl = Repl.create (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 4;
  check_bool "pre-kill convergence" true (Repl.sync cl);
  Repl.kill_primary cl;
  Repl.step ~ticks:250 cl;
  check_bool "detector noticed the silence" true
    (not (Repl.replica_connected cl 0));
  let hellos = (Repl.stats cl).Repl.hellos in
  check_bool "reconnect attempts made" true (hellos >= 2);
  (* capped exponential backoff: with timeout 12 and cap 8, 250 dead
     ticks admit only a handful of hellos per replica — far fewer than
     the ~20 an unthrottled detector would send *)
  check_bool "hellos backed off" true (hellos <= 12);
  check_bool "disconnects counted" true
    ((Repl.stats cl).Repl.disconnects >= 2)

let test_promotion_serves_committed_prefix () =
  let cl = Repl.create (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 6;
  check_bool "pre-kill convergence" true (Repl.sync cl);
  (* everything acked: the promoted replica must serve the full model *)
  Repl.kill_primary cl;
  Repl.step ~ticks:6 cl;
  let p = Repl.promote cl in
  check "epoch bumped" 2 Repl.(epoch cl);
  check "one promotion" 1 (Repl.stats cl).Repl.promotions;
  for key = 0 to Repl.keys cl - 1 do
    if Repl.read cl key <> model.(key) then
      Alcotest.failf "promoted primary key %d: got %d want %d" key
        (Repl.read cl key) model.(key)
  done;
  check_bool "failover time measured" true (p.Repl.failover_ticks > 0);
  (* double recovery is a no-op *)
  let before = Array.init (Repl.keys cl) (Repl.read cl) in
  Repl.rerecover cl;
  check_bool "second recovery idempotent" true
    (before = Array.init (Repl.keys cl) (Repl.read cl))

let test_promotion_drops_unacked_tail_consistently () =
  (* partition, commit more transactions nobody receives, kill: the
     promoted replica serves the last replicated prefix, and serves it
     atomically (never a torn transaction) *)
  let cl = Repl.create (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 5;
  check_bool "pre-partition convergence" true (Repl.sync cl);
  let replicated = Array.copy model in
  Repl.set_net_plan cl (Some (drop_all_frames ()));
  run_txns cl ~model 3 (* lost forever: the primary dies unreplicated *);
  Repl.kill_primary cl;
  Repl.set_net_plan cl None;
  Repl.step ~ticks:4 cl;
  ignore (Repl.promote cl);
  for key = 0 to Repl.keys cl - 1 do
    if Repl.read cl key <> replicated.(key) then
      Alcotest.failf "promoted primary key %d: got %d want %d (stale)" key
        (Repl.read cl key) replicated.(key)
  done

let test_failover_epoch_fencing_and_catchup () =
  let cl = Repl.create (cfg ~replicas:3 ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 6;
  check_bool "pre-kill convergence" true (Repl.sync cl);
  Repl.kill_primary cl;
  Repl.step ~ticks:4 cl;
  let p = Repl.promote cl in
  (* the new primary serves fresh transactions; the two surviving
     standbys re-attach (stale-epoch traffic fenced or resynced) and
     converge on the new stream *)
  let model2 = Array.copy model in
  for j = 100 to 104 do
    let writes = [ (j mod Repl.keys cl, value j 2) ] in
    (match Repl.exec cl ~writes with
    | Ok () -> List.iter (fun (k, v) -> model2.(k) <- v) writes
    | Error e -> Alcotest.fail (Lvm.Lvm_error.to_string e));
    Repl.step ~ticks:2 cl
  done;
  check_bool "survivors converge on the new primary" true (Repl.sync cl);
  for i = 0 to 2 do
    if Repl.promoted cl <> Some i then
      expect_standby cl i ~model:model2 ~what:"post-failover"
  done;
  check "epoch bumped" 2 p.Repl.new_epoch;
  check_bool "promoted replica excluded from standbys" true
    (Repl.promoted cl <> None)

let test_replica_restart_catchup () =
  let cl = Repl.create (cfg ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 6;
  check_bool "initial convergence" true (Repl.sync cl);
  Repl.kill_replica cl 1;
  run_txns cl ~model 4;
  Repl.restart_replica cl 1;
  check_bool "restart catch-up converges" true (Repl.sync cl);
  check_bool "restart re-attached via hello" true
    ((Repl.stats cl).Repl.hellos >= 1);
  expect_standby cl 1 ~model ~what:"after restart"

(* {1 Determinism and the sweep} *)

let test_deterministic_runs () =
  let drive () =
    let plan =
      Plan.create ~seed:99
        [ { Plan.site = Fault.Net_frame; trigger = Plan.With_probability 0.2;
            fault = Fault.Net_drop };
          { Plan.site = Fault.Net_ack; trigger = Plan.With_probability 0.1;
            fault = Fault.Net_dup } ]
    in
    let cl = Repl.create ~plan (cfg ()) in
    let model = Array.make (Repl.keys cl) 0 in
    run_txns cl ~model 8;
    ignore (Repl.sync cl);
    Repl.stats_to_string (Repl.stats cl)
  in
  check_str "same seed, byte-identical run" (drive ()) (drive ())

let test_sweep_smoke () =
  let o = Lvm_tpc.Crash_sweep.run_repl ~txns:6 ~kill_points:8 ~fault_only:2 ()
  in
  Alcotest.(check (list string)) "no replication invariant violations" []
    o.Lvm_tpc.Crash_sweep.failures;
  check "all schedules ran" 10 o.Lvm_tpc.Crash_sweep.points;
  check "kills killed" 8 o.Lvm_tpc.Crash_sweep.crashed;
  let o2 =
    Lvm_tpc.Crash_sweep.run_repl ~txns:6 ~kill_points:8 ~fault_only:2 ()
  in
  check_str "sweep deterministic" o.Lvm_tpc.Crash_sweep.trace
    o2.Lvm_tpc.Crash_sweep.trace

let test_config_validation () =
  let err name e f = Alcotest.check_raises name (Error.Lvm_error e) f in
  let range what value =
    Error.Out_of_range { op = "Repl.create"; what; value }
  in
  err "replicas" (range "replicas" 0) (fun () ->
      ignore (Repl.create { (cfg ()) with replicas = 0 }));
  err "frame_bytes" (range "frame_bytes" 0) (fun () ->
      ignore (Repl.create { (cfg ()) with frame_bytes = 0 }));
  err "tail_bytes" (range "tail_bytes" (-1)) (fun () ->
      ignore (Repl.create { (cfg ()) with tail_bytes = -1 }));
  err "timeout" (range "timeout" 0) (fun () ->
      ignore (Repl.create { (cfg ()) with timeout = 0 }));
  err "detach_after below timeout" (range "detach_after" 5) (fun () ->
      ignore (Repl.create { (cfg ()) with timeout = 12; detach_after = 5 }));
  err "size"
    (Error.Invalid
       { op = "Repl.create"; reason = "size must be a positive word multiple" })
    (fun () -> ignore (Repl.create { (cfg ()) with size = 30 }));
  (* invalid keys surface as typed results, not exceptions *)
  let cl = Repl.create (cfg ()) in
  (match Repl.exec cl ~writes:[ (Repl.keys cl, 1) ] with
  | Error (Lvm.Lvm_error.Invalid_key { key }) -> check "key" (Repl.keys cl) key
  | _ -> Alcotest.fail "expected Invalid_key")

let test_obs_counters () =
  let obs = Lvm_obs.Ctx.create () in
  let cl = Repl.create (cfg ~obs ()) in
  let model = Array.make (Repl.keys cl) 0 in
  run_txns cl ~model 4;
  ignore (Repl.sync cl);
  let snap = Lvm_obs.Ctx.snapshot obs in
  check_bool "repl.frames_sent in shared ctx" true
    (Lvm_obs.Snapshot.get snap "repl.frames_sent" > 0);
  check_bool "repl.acks in shared ctx" true
    (Lvm_obs.Snapshot.get snap "repl.acks" > 0);
  check_bool "lag histogram populated" true
    (List.exists
       (fun h -> Lvm_obs.Histogram.name h = "repl.lag_bytes"
                 && Lvm_obs.Histogram.count h > 0)
       (Lvm_obs.Ctx.histograms obs))

(* {1 Satellite: log-seal edge cases}

   [Lvm_log.seal] under the extent ring: sealing an empty active extent
   (and hence sealing twice in one epoch) is a guaranteed no-op with
   defined stats. *)

let boot_log () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let page = Lvm_machine.Addr.page_size in
  let seg = Kernel.create_segment k ~size:page in
  let region = Kernel.create_region k seg in
  let log = Lvm_log.create ~extent_pages:1 k ~size:(4 * page) in
  Kernel.set_region_log k region (Some (Lvm_log.segment log));
  let base = Kernel.bind k sp region in
  (k, sp, base, log)

let test_seal_empty_noop () =
  let _, _, _, log = boot_log () in
  let before = Lvm_log.stats log in
  check "empty seal returns 0" 0 (Lvm_log.seal log);
  let after = Lvm_log.stats log in
  check "no extents recycled" before.Lvm_log.recycled_total
    after.Lvm_log.recycled_total;
  check "write_pos unchanged" before.Lvm_log.write_pos
    after.Lvm_log.write_pos;
  check "truncation lag unchanged" before.Lvm_log.truncation_lag
    after.Lvm_log.truncation_lag

let test_seal_double_noop () =
  let k, sp, base, log = boot_log () in
  for i = 0 to 63 do
    Kernel.write_word k sp (base + (i * 4)) (i + 1)
  done;
  let sealed = Lvm_log.seal log in
  check_bool "first seal recycles the records" true (sealed > 0);
  check "ring re-armed at the front" 0 (Lvm_log.stats log).Lvm_log.write_pos;
  let before = Lvm_log.stats log in
  (* second seal in the same epoch: nothing new was written *)
  check "double seal is a no-op" 0 (Lvm_log.seal log);
  check_bool "stats unchanged by double seal" true
    (Lvm_log.stats log = before);
  (* the ring is still consistent: a new epoch's records seal again *)
  for i = 0 to 63 do
    Kernel.write_word k sp (base + (i * 4)) (i + 100)
  done;
  check_bool "next epoch seals" true (Lvm_log.seal log > 0)

let test_seal_no_recycle_churn () =
  (* a seal-heavy caller (snapshot loop) must not leak extents: seal
     after every small batch, ring capacity never shrinks *)
  let k, sp, base, log = boot_log () in
  for epoch = 0 to 19 do
    for i = 0 to 7 do
      Kernel.write_word k sp (base + (i * 4)) ((epoch * 100) + i)
    done;
    ignore (Lvm_log.seal log);
    ignore (Lvm_log.seal log) (* idempotent mid-loop double seal *)
  done;
  let s = Lvm_log.stats log in
  check "every extent accounted" s.Lvm_log.extents
    (s.Lvm_log.active + s.Lvm_log.sealed + s.Lvm_log.truncatable
   + s.Lvm_log.recycled);
  check "ring empty after final seal" 0 s.Lvm_log.write_pos

let suites =
  [
    ( "repl",
      [
        Alcotest.test_case "basic streaming" `Quick test_basic_streaming;
        Alcotest.test_case "unforced tail shipped" `Quick test_tail_shipping;
        Alcotest.test_case "ack-gated recycling" `Quick
          test_ack_gated_recycling;
        Alcotest.test_case "detach frees the gate" `Quick
          test_detach_frees_the_gate;
        Alcotest.test_case "drop and retransmit" `Quick test_drop_retransmit;
        Alcotest.test_case "dup/reorder idempotent" `Quick
          test_dup_reorder_idempotent;
        Alcotest.test_case "delay convergence" `Quick test_delay_convergence;
        Alcotest.test_case "failure detector backoff" `Quick
          test_failure_detector_backoff;
        Alcotest.test_case "promotion serves committed prefix" `Quick
          test_promotion_serves_committed_prefix;
        Alcotest.test_case "promotion drops unreplicated tail" `Quick
          test_promotion_drops_unacked_tail_consistently;
        Alcotest.test_case "failover fencing and catch-up" `Quick
          test_failover_epoch_fencing_and_catchup;
        Alcotest.test_case "replica restart catch-up" `Quick
          test_replica_restart_catchup;
        Alcotest.test_case "deterministic runs" `Quick test_deterministic_runs;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "obs counters" `Quick test_obs_counters;
        Alcotest.test_case "failover sweep smoke" `Slow test_sweep_smoke;
      ] );
    ( "repl.seal",
      [
        Alcotest.test_case "empty seal no-op" `Quick test_seal_empty_noop;
        Alcotest.test_case "double seal no-op" `Quick test_seal_double_noop;
        Alcotest.test_case "seal-heavy loop keeps the ring" `Quick
          test_seal_no_recycle_churn;
      ] );
  ]
