(* Tests for the VM system software: segments, regions, address spaces,
   fault handling, logging control, log extension, deferred copy and
   write protection. *)

open Lvm_machine
open Lvm_vm

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Segment} *)

let test_segment_basics () =
  let s = Segment.make ~id:1 ~kind:Segment.Std ~size:5000 in
  check "size rounded to pages" 8192 (Segment.size s);
  check "pages" 2 (Segment.pages s);
  Alcotest.(check (option int)) "no frame" None (Segment.frame_of_page s 0);
  Segment.set_frame s ~page:0 ~frame:7;
  Alcotest.(check (option int)) "frame set" (Some 7)
    (Segment.frame_of_page s 0);
  Segment.grow s ~pages:3;
  check "grown" 5 (Segment.pages s);
  Alcotest.(check (option int)) "old frame kept" (Some 7)
    (Segment.frame_of_page s 0)

let test_segment_log_state_guard () =
  let s = Segment.make ~id:1 ~kind:Segment.Std ~size:4096 in
  Alcotest.check_raises "std segment has no write_pos"
    (Error.Lvm_error (Error.Not_a_log_segment { op = "write_pos"; segment = 1 }))
    (fun () -> ignore (Segment.write_pos s))

(* {1 Region} *)

let test_region_validation () =
  let s = Segment.make ~id:1 ~kind:Segment.Std ~size:8192 in
  Alcotest.check_raises "offset alignment"
    (Error.Lvm_error
       (Error.Invalid
          { op = "Region.make"; reason = "segment offset must be page-aligned" }))
    (fun () -> ignore (Region.make ~id:2 ~segment:s ~seg_offset:100 ~size:4096));
  Alcotest.check_raises "exceeds segment"
    (Error.Lvm_error
       (Error.Invalid { op = "Region.make"; reason = "region exceeds segment" }))
    (fun () ->
      ignore (Region.make ~id:2 ~segment:s ~seg_offset:4096 ~size:8192));
  let r = Region.make ~id:2 ~segment:s ~seg_offset:4096 ~size:4096 in
  check "seg page of vaddr" 1
    (Region.seg_page_of_vaddr r ~base:0x10000 ~vaddr:0x10123)

let test_region_logging_switch () =
  let s = Segment.make ~id:1 ~kind:Segment.Std ~size:4096 in
  let r = Region.make ~id:2 ~segment:s ~seg_offset:0 ~size:4096 in
  check_bool "not logged without log" false (Region.is_logged r);
  let ls = Segment.make ~id:3 ~kind:Segment.Log ~size:4096 in
  Region.set_log r (Some ls);
  check_bool "logged" true (Region.is_logged r);
  Region.set_logging_enabled r false;
  check_bool "disabled" false (Region.is_logged r)

(* {1 Address space} *)

let test_space_bind_alloc () =
  let sp = Address_space.make ~id:1 in
  let seg = Segment.make ~id:1 ~kind:Segment.Std ~size:8192 in
  let r1 = Region.make ~id:2 ~segment:seg ~seg_offset:0 ~size:4096 in
  let r2 = Region.make ~id:3 ~segment:seg ~seg_offset:4096 ~size:4096 in
  let b1 = Address_space.bind sp r1 ~vaddr:None in
  let b2 = Address_space.bind sp r2 ~vaddr:None in
  check_bool "distinct bases" true (b1 <> b2);
  check_bool "gap between regions" true (abs (b2 - b1) >= 8192);
  Alcotest.(check (option int)) "find r1"
    (Some b1)
    (Option.map fst (Address_space.find_region sp ~vaddr:(b1 + 100)));
  Alcotest.(check (option int)) "find r2"
    (Some b2)
    (Option.map fst (Address_space.find_region sp ~vaddr:(b2 + 4000)))

let test_space_bind_overlap_rejected () =
  let sp = Address_space.make ~id:1 in
  let seg = Segment.make ~id:1 ~kind:Segment.Std ~size:8192 in
  let r1 = Region.make ~id:2 ~segment:seg ~seg_offset:0 ~size:8192 in
  let r2 = Region.make ~id:3 ~segment:seg ~seg_offset:0 ~size:8192 in
  ignore (Address_space.bind sp r1 ~vaddr:(Some 0x2000_0000));
  Alcotest.check_raises "overlap"
    (Error.Lvm_error
       (Error.Invalid
          { op = "Address_space.bind"; reason = "overlapping binding" }))
    (fun () -> ignore (Address_space.bind sp r2 ~vaddr:(Some 0x2000_1000)));
  Alcotest.check_raises "double bind"
    (Error.Lvm_error
       (Error.Invalid
          { op = "Address_space.bind"; reason = "region is already bound" }))
    (fun () -> ignore (Address_space.bind sp r1 ~vaddr:None))

let test_space_unbind () =
  let sp = Address_space.make ~id:1 in
  let seg = Segment.make ~id:1 ~kind:Segment.Std ~size:4096 in
  let r = Region.make ~id:2 ~segment:seg ~seg_offset:0 ~size:4096 in
  let b = Address_space.bind sp r ~vaddr:None in
  Address_space.install sp ~vpage:(Addr.page_number b)
    { Address_space.frame = 1; write_through = false; logged = false;
      protected_ = false; dirty = false; region = r; seg_page = 0 };
  Address_space.unbind sp r;
  Alcotest.(check (option int)) "region gone" None
    (Option.map fst (Address_space.find_region sp ~vaddr:b));
  check_bool "pte gone" true
    (Address_space.lookup sp ~vpage:(Addr.page_number b) = None);
  (* can rebind after unbind *)
  ignore (Address_space.bind sp r ~vaddr:None)

(* {1 Kernel: basic access} *)

let boot ?hw ?log_entries () =
  let k = Kernel.create ?hw ?log_entries () in
  let sp = Kernel.create_space k in
  (k, sp)

let test_kernel_rw_roundtrip () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:8192 in
  let r = Kernel.create_region k seg in
  let base = Kernel.bind k sp r in
  Kernel.write_word k sp (base + 0x10) 0xABCD;
  check "read back" 0xABCD (Kernel.read_word k sp (base + 0x10));
  Kernel.write k sp ~vaddr:(base + 0x20) ~size:1 0x5A;
  check "byte read back" 0x5A (Kernel.read k sp ~vaddr:(base + 0x20) ~size:1);
  check "page faults taken" 1 (Kernel.perf k).Perf.page_faults;
  (* second page still unfaulted *)
  check "other page zero" 0 (Kernel.read_word k sp (base + 4096));
  check "two page faults now" 2 (Kernel.perf k).Perf.page_faults

let test_kernel_segv () =
  let k, sp = boot () in
  check_bool "segv raised" true
    (try
       ignore (Kernel.read_word k sp 0x666000);
       false
     with Error.Lvm_error (Error.Segmentation_fault _) -> true)

let test_kernel_unaligned_rejected () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let r = Kernel.create_region k seg in
  let base = Kernel.bind k sp r in
  Alcotest.check_raises "unaligned word"
    (Error.Lvm_error (Error.Unaligned_access { vaddr = base + 2; size = 4 }))
    (fun () -> ignore (Kernel.read k sp ~vaddr:(base + 2) ~size:4))

let test_kernel_manager_fill () =
  let k, sp = boot () in
  let filled = ref [] in
  let manager seg page =
    filled := page :: !filled;
    (* page-fill hook writes a recognizable pattern *)
    Kernel.seg_write_raw k seg ~off:(page * Addr.page_size) ~size:4 0xF11ED
  in
  let seg = Kernel.create_segment ~manager k ~size:8192 in
  let r = Kernel.create_region k seg in
  let base = Kernel.bind k sp r in
  check "manager content" 0xF11ED (Kernel.read_word k sp base);
  Alcotest.(check (list int)) "pages filled on demand" [ 0 ] !filled

let test_kernel_shared_segment_two_spaces () =
  let k = Kernel.create () in
  let sp1 = Kernel.create_space k in
  let sp2 = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:4096 in
  let r1 = Kernel.create_region k seg in
  let r2 = Kernel.create_region k seg in
  let b1 = Kernel.bind k sp1 r1 in
  let b2 = Kernel.bind k sp2 r2 in
  Kernel.write_word k sp1 (b1 + 8) 77;
  check "visible through other space" 77 (Kernel.read_word k sp2 (b2 + 8))

(* {1 Kernel: logging} *)

let logged_fixture ?hw ?log_entries ?(log_pages = 4) () =
  let k, sp = boot ?hw ?log_entries () in
  let seg = Kernel.create_segment k ~size:8192 in
  let r = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(log_pages * Addr.page_size) in
  Kernel.set_region_log k r (Some ls);
  let base = Kernel.bind k sp r in
  (k, sp, seg, r, ls, base)

let test_logged_region_records () =
  let k, sp, _seg, _r, ls, base = logged_fixture () in
  Kernel.write_word k sp (base + 0x10) 11;
  Kernel.write_word k sp (base + 0x14) 22;
  Kernel.write_word k sp (base + 0x10) 33;
  check "three records" 3 (Lvm.Log_reader.record_count k ls);
  let records = Lvm.Log_reader.to_list k ls in
  Alcotest.(check (list int)) "values in order" [ 11; 22; 33 ]
    (List.map (fun r -> r.Log_record.value) records);
  (* timestamps are monotonic *)
  let ts = List.map (fun r -> r.Log_record.timestamp) records in
  check_bool "timestamps nondecreasing" true (List.sort compare ts = ts)

let test_logged_records_locate () =
  let k, sp, seg, _r, ls, base = logged_fixture () in
  Kernel.write_word k sp (base + 0x123 * 4) 99;
  match Lvm.Log_reader.to_list k ls with
  | [ r ] -> (
    match Lvm.Log_reader.locate k r with
    | Some (owner, off) ->
      check "owner segment" (Segment.id seg) (Segment.id owner);
      check "offset" (0x123 * 4) off
    | None -> Alcotest.fail "locate failed")
  | records ->
    Alcotest.failf "expected one record, got %d" (List.length records)

let test_log_page_crossing_extends () =
  let k, sp, _seg, _r, ls, base = logged_fixture ~log_pages:4 () in
  (* 256 records fill one log page; write 600 to cross two boundaries *)
  for i = 0 to 599 do
    Kernel.write_word k sp (base + (i mod 1024 * 4)) i
  done;
  check "all records kept" 600 (Lvm.Log_reader.record_count k ls);
  check "log-addr faults serviced" 2
    (Kernel.perf k).Perf.logging_faults_log_addr;
  let r = Lvm.Log_reader.read_at k ls ~off:(599 * 16) in
  check "last record value" 599 r.Log_record.value

let test_log_capacity_absorbs_then_extends () =
  let k, sp, _seg, _r, ls, base = logged_fixture ~log_pages:1 () in
  let per_page = Addr.page_size / Log_record.bytes in
  for i = 0 to per_page + 49 do
    Kernel.write_word k sp base i
  done;
  Kernel.sync_log k ls;
  check_bool "absorbing after capacity" true (Segment.absorbing ls);
  check "only one page of records" per_page
    (Lvm.Log_reader.record_count k ls);
  check_bool "crossings counted" true (Segment.absorbed_crossings ls >= 1);
  (* extending resumes logging into the segment *)
  Lvm_log.extend (Lvm_log.of_segment k ls) ~pages:2;
  check_bool "no longer absorbing" false (Segment.absorbing ls);
  Kernel.write_word k sp base 4242;
  let n = Lvm.Log_reader.record_count k ls in
  check "record after extension" (per_page + 1) n;
  let r = Lvm.Log_reader.read_at k ls ~off:((n - 1) * 16) in
  check "extension record value" 4242 r.Log_record.value

let test_logging_disable_enable () =
  let k, sp, _seg, _r, ls, base = logged_fixture () in
  let region = _r in
  Kernel.write_word k sp base 1;
  Kernel.set_logging_enabled k region false;
  Kernel.write_word k sp base 2;
  Kernel.write_word k sp base 3;
  Kernel.set_logging_enabled k region true;
  Kernel.write_word k sp base 4;
  Alcotest.(check (list int)) "only enabled writes logged" [ 1; 4 ]
    (List.map
       (fun r -> r.Log_record.value)
       (Lvm.Log_reader.to_list k ls));
  check "data has final value" 4 (Kernel.read_word k sp base)

let test_attach_log_after_faulting () =
  (* A debugger attaches logging to an already-running region
     (Section 2.2): pages already resident must switch to logged mode. *)
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:4096 in
  let r = Kernel.create_region k seg in
  let base = Kernel.bind k sp r in
  Kernel.write_word k sp base 1 (* unlogged; faults the page in *);
  let ls = Kernel.create_log_segment k ~size:(4 * Addr.page_size) in
  Kernel.set_region_log k r (Some ls);
  Kernel.write_word k sp base 2;
  Alcotest.(check (list int)) "only post-attach writes" [ 2 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls))

let test_log_slot_eviction () =
  (* More active logs than log-table slots: the kernel must evict and
     reactivate transparently without losing records. *)
  let k, sp = boot ~log_entries:2 () in
  let mk () =
    let seg = Kernel.create_segment k ~size:4096 in
    let r = Kernel.create_region k seg in
    let ls = Kernel.create_log_segment k ~size:(2 * Addr.page_size) in
    Kernel.set_region_log k r (Some ls);
    let base = Kernel.bind k sp r in
    (base, ls)
  in
  let fixtures = List.init 3 (fun _ -> mk ()) in
  for round = 0 to 9 do
    List.iter (fun (base, _) -> Kernel.write_word k sp base round) fixtures
  done;
  List.iter
    (fun (_, ls) ->
      check "each log has all its records" 10
        (Lvm.Log_reader.record_count k ls))
    fixtures

let test_per_region_logs_on_chip () =
  (* Section 4.6: with on-chip logging, two regions over the same segment
     can have distinct logs (per-region logging). *)
  let k, sp = boot ~hw:Logger.On_chip () in
  let seg = Kernel.create_segment k ~size:4096 in
  let r1 = Kernel.create_region k seg in
  let r2 = Kernel.create_region k seg in
  let ls1 = Kernel.create_log_segment k ~size:(2 * Addr.page_size) in
  let ls2 = Kernel.create_log_segment k ~size:(2 * Addr.page_size) in
  Kernel.set_region_log k r1 (Some ls1);
  Kernel.set_region_log k r2 (Some ls2);
  let b1 = Kernel.bind k sp r1 in
  let b2 = Kernel.bind k sp r2 in
  Kernel.write_word k sp (b1 + 4) 111;
  Kernel.write_word k sp (b2 + 8) 222;
  Kernel.write_word k sp (b1 + 12) 333;
  Alcotest.(check (list int)) "r1's log" [ 111; 333 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls1));
  Alcotest.(check (list int)) "r2's log" [ 222 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls2));
  (* on-chip records carry virtual addresses *)
  (match Lvm.Log_reader.to_list k ls1 with
  | r :: _ -> check "virtual address logged" (b1 + 4) r.Log_record.addr
  | [] -> Alcotest.fail "no record")

let test_truncate_log_prefix () =
  let k, sp, _seg, _r, ls, base = logged_fixture () in
  for i = 0 to 9 do
    Kernel.write_word k sp (base + (i * 4)) (i * 10)
  done;
  Lvm_log.truncate (Lvm_log.of_segment k ls)
    ~keep_from:(6 * Log_record.bytes);
  check "four records kept" 4 (Lvm.Log_reader.record_count k ls);
  Alcotest.(check (list int)) "kept tail compacted" [ 60; 70; 80; 90 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls));
  (* logging continues after truncation *)
  Kernel.write_word k sp base 12345;
  check "record after truncate" 5 (Lvm.Log_reader.record_count k ls)

let test_truncate_log_suffix () =
  let k, sp, _seg, _r, ls, base = logged_fixture () in
  for i = 0 to 9 do
    Kernel.write_word k sp (base + (i * 4)) i
  done;
  Lvm_log.truncate_suffix (Lvm_log.of_segment k ls)
    ~new_end:(3 * Log_record.bytes);
  Alcotest.(check (list int)) "prefix kept" [ 0; 1; 2 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls));
  Kernel.write_word k sp base 555;
  Alcotest.(check (list int)) "appends after the cut" [ 0; 1; 2; 555 ]
    (List.map (fun r -> r.Log_record.value) (Lvm.Log_reader.to_list k ls))

(* {1 Kernel: deferred copy} *)

let dc_fixture () =
  let k, sp = boot () in
  let working = Kernel.create_segment k ~size:8192 in
  let ckpt = Kernel.create_segment k ~size:8192 in
  (* initialize the checkpoint *)
  for w = 0 to 2047 do
    Kernel.seg_write_raw k ckpt ~off:(w * 4) ~size:4 (w + 1000)
  done;
  Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
  let r = Kernel.create_region k working in
  let base = Kernel.bind k sp r in
  (k, sp, working, ckpt, r, base)

let test_dc_read_through () =
  let k, sp, _, _, _, base = dc_fixture () in
  check "reads source" 1000 (Kernel.read_word k sp base);
  check "reads source high" (2047 + 1000)
    (Kernel.read_word k sp (base + (2047 * 4)))

let test_dc_write_then_reset () =
  let k, sp, _w, _c, r, base = dc_fixture () in
  Kernel.write_word k sp (base + 40) 7;
  check "sees write" 7 (Kernel.read_word k sp (base + 40));
  check "source unchanged elsewhere" 1011 (Kernel.read_word k sp (base + 44));
  Kernel.reset_deferred_copy k sp ~start:base ~len:(Region.size r);
  check "back to source" 1010 (Kernel.read_word k sp (base + 40))

let test_dc_reset_cost_scales_with_dirty () =
  let k, sp, _w, _c, r, base = dc_fixture () in
  (* reset with one dirty page *)
  Kernel.write_word k sp base 1;
  let t0 = Kernel.time k in
  Kernel.reset_deferred_copy k sp ~start:base ~len:(Region.size r);
  let one_dirty = Kernel.time k - t0 in
  (* reset with both pages dirty *)
  Kernel.write_word k sp base 1;
  Kernel.write_word k sp (base + 4096) 2;
  let t1 = Kernel.time k in
  Kernel.reset_deferred_copy k sp ~start:base ~len:(Region.size r);
  let two_dirty = Kernel.time k - t1 in
  (* reset with nothing dirty *)
  let t2 = Kernel.time k in
  Kernel.reset_deferred_copy k sp ~start:base ~len:(Region.size r);
  let clean = Kernel.time k - t2 in
  check_bool "clean reset cheapest" true (clean < one_dirty);
  check_bool "dirty pages add cost" true (one_dirty < two_dirty);
  (* the second reset scans one more resident page and sweeps one more
     dirty page *)
  check "per-dirty-page cost" (two_dirty - one_dirty)
    (Cycles.dc_reset_per_page
     + (Addr.lines_per_page * Cycles.dc_reset_per_dirty_line))

let test_dc_reset_segment () =
  let k, sp, working, _c, _r, base = dc_fixture () in
  Kernel.write_word k sp (base + 100 * 4) 5;
  Kernel.reset_deferred_segment k working;
  check "reset via segment" 1100 (Kernel.read_word k sp (base + (100 * 4)))

let test_dc_partial_line_merge_via_kernel () =
  let k, sp, _w, _c, _r, base = dc_fixture () in
  (* write one word of a line; neighbors must show checkpoint values *)
  Kernel.write_word k sp (base + 0x20) 9;
  check "written" 9 (Kernel.read_word k sp (base + 0x20));
  check "neighbor from checkpoint" (8 + 1 + 1000)
    (Kernel.read_word k sp (base + 0x24))

(* {1 Checkpoint / rollback / CULT} *)

(* A fully wired simulation-style fixture (Figure 3): logged working
   region whose deferred-copy source is a checkpoint segment. *)
let sim_fixture ?(words = 64) () =
  let k, sp = boot () in
  let size = Addr.align_up (words * 4) ~alignment:Addr.page_size in
  let working = Kernel.create_segment k ~size in
  let ckpt = Kernel.create_segment k ~size in
  for w = 0 to words - 1 do
    Kernel.seg_write_raw k ckpt ~off:(w * 4) ~size:4 (w * 2)
  done;
  Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
  let region = Kernel.create_region k working in
  let ls = Kernel.create_log_segment k ~size:(16 * Addr.page_size) in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  (k, sp, working, ckpt, region, ls, base)

let working_words k sp ~base ~words =
  List.init words (fun w -> Kernel.read_word k sp (base + (w * 4)))

let test_rollback_to_marker () =
  let k, sp, working, _ckpt, region, ls, base = sim_fixture () in
  (* writes tagged by log order; roll back to keep only the first two *)
  Kernel.write_word k sp (base + 0) 100;
  Kernel.write_word k sp (base + 4) 101;
  Kernel.write_word k sp (base + 8) 102;
  Kernel.write_word k sp (base + 0) 103;
  let kept = ref 0 in
  Lvm.Checkpoint.rollback k ~space:sp ~working ~working_region:region ~base
    ~log:ls
    ~upto:(fun _ ->
      incr kept;
      !kept <= 2);
  check "word0 from first write" 100 (Kernel.read_word k sp (base + 0));
  check "word1 from second write" 101 (Kernel.read_word k sp (base + 4));
  check "word2 rolled back to checkpoint" 4
    (Kernel.read_word k sp (base + 8));
  check "log truncated to prefix" 2 (Lvm.Log_reader.record_count k ls);
  (* logging resumes after rollback *)
  Kernel.write_word k sp (base + 12) 999;
  check "logging re-enabled" 3 (Lvm.Log_reader.record_count k ls)

let test_cult_folds_into_checkpoint () =
  let k, sp, working, ckpt, _region, ls, base = sim_fixture () in
  Kernel.write_word k sp (base + 0) 11;
  Kernel.write_word k sp (base + 20) 13;
  let applied = Lvm.Checkpoint.cult_all k ~working ~checkpoint:ckpt ~log:ls in
  check "records applied" 2 applied;
  check "log empty after cult" 0 (Lvm.Log_reader.record_count k ls);
  check "checkpoint updated word0" 11
    (Kernel.seg_read_raw k ckpt ~off:0 ~size:4);
  check "checkpoint updated word5" 13
    (Kernel.seg_read_raw k ckpt ~off:20 ~size:4);
  check "checkpoint untouched elsewhere" 8
    (Kernel.seg_read_raw k ckpt ~off:16 ~size:4)

let test_cult_then_rollback_loses_nothing () =
  let k, sp, working, ckpt, region, ls, base = sim_fixture () in
  Kernel.write_word k sp (base + 0) 21;
  Kernel.write_word k sp (base + 4) 22;
  ignore (Lvm.Checkpoint.cult_all k ~working ~checkpoint:ckpt ~log:ls);
  Kernel.write_word k sp (base + 8) 23;
  (* roll back discarding the post-CULT write *)
  Lvm.Checkpoint.rollback k ~space:sp ~working ~working_region:region ~base
    ~log:ls ~upto:(fun _ -> false);
  check "pre-CULT write survives" 21 (Kernel.read_word k sp (base + 0));
  check "pre-CULT write survives 2" 22 (Kernel.read_word k sp (base + 4));
  (* word 2's initial value was 2*2 = 4 *)
  check "post-CULT write rolled back" 4 (Kernel.read_word k sp (base + 8))

(* Property: rolling back after a random write burst reproduces exactly
   the state obtained by applying the kept prefix to the initial state. *)
let prop_rollback_equals_prefix_replay =
  let words = 32 in
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 40 in
      let* keep = int_range 0 n in
      let* writes =
        list_size (return n) (pair (int_bound (words - 1)) (int_bound 10_000))
      in
      return (writes, keep))
  in
  let print (writes, keep) =
    Printf.sprintf "keep=%d writes=[%s]" keep
      (String.concat ";"
         (List.map (fun (w, v) -> Printf.sprintf "%d:%d" w v) writes))
  in
  QCheck.Test.make ~name:"rollback = prefix replay" ~count:60
    (QCheck.make ~print gen) (fun (writes, keep) ->
      let k, sp, working, _ckpt, region, ls, base = sim_fixture ~words () in
      List.iter
        (fun (w, v) -> Kernel.write_word k sp (base + (w * 4)) v)
        writes;
      let seen = ref 0 in
      Lvm.Checkpoint.rollback k ~space:sp ~working ~working_region:region
        ~base ~log:ls
        ~upto:(fun _ ->
          incr seen;
          !seen <= keep);
      (* model: initial state then the kept prefix *)
      let expect = Array.init words (fun w -> w * 2) in
      List.iteri
        (fun i (w, v) -> if i < keep then expect.(w) <- v)
        writes;
      working_words k sp ~base ~words = Array.to_list expect)

(* {1 Write protection (page-protect baseline)} *)

let test_protect_fault_once_per_page () =
  let k, sp = boot () in
  let seg = Kernel.create_segment k ~size:8192 in
  let r = Kernel.create_region k seg in
  let base = Kernel.bind k sp r in
  let faults = ref [] in
  Kernel.set_protect_fault_handler k
    (Some (fun _sp _r ~vaddr -> faults := vaddr :: !faults));
  (* touch pages in, then protect *)
  Kernel.write_word k sp base 0;
  Kernel.write_word k sp (base + 4096) 0;
  Kernel.protect_region k r;
  let t0 = Kernel.time k in
  Kernel.write_word k sp (base + 8) 1;
  let fault_cost = Kernel.time k - t0 in
  check_bool "protect fault charged" true
    (fault_cost >= Cycles.write_protect_fault);
  Kernel.write_word k sp (base + 12) 2;
  Kernel.write_word k sp (base + 4096) 3;
  check "one fault per touched page" 2 (List.length !faults);
  check "perf counter" 2 (Kernel.perf k).Perf.write_protect_faults;
  check "writes landed" 1 (Kernel.read_word k sp (base + 8))

let suites =
  [
    ( "vm.segment",
      [
        Alcotest.test_case "basics" `Quick test_segment_basics;
        Alcotest.test_case "log-state guard" `Quick
          test_segment_log_state_guard;
      ] );
    ( "vm.region",
      [
        Alcotest.test_case "validation" `Quick test_region_validation;
        Alcotest.test_case "logging switch" `Quick test_region_logging_switch;
      ] );
    ( "vm.address-space",
      [
        Alcotest.test_case "bind allocation" `Quick test_space_bind_alloc;
        Alcotest.test_case "overlap rejected" `Quick
          test_space_bind_overlap_rejected;
        Alcotest.test_case "unbind" `Quick test_space_unbind;
      ] );
    ( "vm.kernel",
      [
        Alcotest.test_case "read-write roundtrip" `Quick
          test_kernel_rw_roundtrip;
        Alcotest.test_case "segmentation fault" `Quick test_kernel_segv;
        Alcotest.test_case "unaligned rejected" `Quick
          test_kernel_unaligned_rejected;
        Alcotest.test_case "manager fill hook" `Quick test_kernel_manager_fill;
        Alcotest.test_case "shared segment two spaces" `Quick
          test_kernel_shared_segment_two_spaces;
      ] );
    ( "vm.logging",
      [
        Alcotest.test_case "records for logged region" `Quick
          test_logged_region_records;
        Alcotest.test_case "locate record" `Quick test_logged_records_locate;
        Alcotest.test_case "page crossing" `Quick
          test_log_page_crossing_extends;
        Alcotest.test_case "absorb then extend" `Quick
          test_log_capacity_absorbs_then_extends;
        Alcotest.test_case "disable/enable" `Quick test_logging_disable_enable;
        Alcotest.test_case "attach log after faulting" `Quick
          test_attach_log_after_faulting;
        Alcotest.test_case "slot eviction" `Quick test_log_slot_eviction;
        Alcotest.test_case "per-region logs on-chip" `Quick
          test_per_region_logs_on_chip;
        Alcotest.test_case "truncate prefix" `Quick test_truncate_log_prefix;
        Alcotest.test_case "truncate suffix" `Quick test_truncate_log_suffix;
      ] );
    ( "vm.deferred-copy",
      [
        Alcotest.test_case "read through" `Quick test_dc_read_through;
        Alcotest.test_case "write then reset" `Quick test_dc_write_then_reset;
        Alcotest.test_case "reset cost scales with dirty" `Quick
          test_dc_reset_cost_scales_with_dirty;
        Alcotest.test_case "reset segment" `Quick test_dc_reset_segment;
        Alcotest.test_case "partial line merge" `Quick
          test_dc_partial_line_merge_via_kernel;
      ] );
    ( "vm.checkpoint",
      [
        Alcotest.test_case "rollback to marker" `Quick test_rollback_to_marker;
        Alcotest.test_case "cult folds into checkpoint" `Quick
          test_cult_folds_into_checkpoint;
        Alcotest.test_case "cult then rollback" `Quick
          test_cult_then_rollback_loses_nothing;
        QCheck_alcotest.to_alcotest prop_rollback_equals_prefix_replay;
      ] );
    ( "vm.protection",
      [
        Alcotest.test_case "fault once per page" `Quick
          test_protect_fault_once_per_page;
      ] );
  ]


(* {1 More log and deferred-copy properties} *)

(* Truncation keeps exactly the suffix, regardless of split point. *)
let prop_truncate_keeps_suffix =
  QCheck.Test.make ~name:"truncate_log keeps the suffix" ~count:40
    QCheck.(pair (list_of_size (Gen.int_range 1 60) (int_bound 9999))
              (int_bound 60))
    (fun (values, cut) ->
      let k, sp = boot () in
      let seg = Kernel.create_segment k ~size:4096 in
      let region = Kernel.create_region k seg in
      let ls = Kernel.create_log_segment k ~size:(8 * Addr.page_size) in
      Kernel.set_region_log k region (Some ls);
      let base = Kernel.bind k sp region in
      List.iteri (fun i v -> Kernel.write_word k sp (base + (i mod 256 * 4)) v)
        values;
      let cut = min cut (List.length values) in
      Lvm_log.truncate (Lvm_log.of_segment k ls)
        ~keep_from:(cut * Log_record.bytes);
      let kept =
        List.map (fun (r : Log_record.t) -> r.Log_record.value)
          (Lvm.Log_reader.to_list k ls)
      in
      kept = List.filteri (fun i _ -> i >= cut) values)

(* Reset after arbitrary writes always restores the checkpoint exactly. *)
let prop_reset_restores_source =
  QCheck.Test.make ~name:"reset restores checkpoint exactly" ~count:40
    QCheck.(list_of_size (Gen.int_range 0 80)
              (pair (int_bound 511) (int_bound 9999)))
    (fun writes ->
      let k, sp = boot () in
      let working = Kernel.create_segment k ~size:8192 in
      let ckpt = Kernel.create_segment k ~size:8192 in
      for w = 0 to 511 do
        Kernel.seg_write_raw k ckpt ~off:(w * 4) ~size:4 (w * 3)
      done;
      Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
      let region = Kernel.create_region k working in
      let base = Kernel.bind k sp region in
      List.iter (fun (w, v) -> Kernel.write_word k sp (base + (w * 4)) v)
        writes;
      Kernel.reset_deferred_copy k sp ~start:base ~len:8192;
      let ok = ref true in
      for w = 0 to 511 do
        if Kernel.read_word k sp (base + (w * 4)) <> w * 3 then ok := false
      done;
      !ok)

let property_suite =
  ( "vm.properties",
    [
      QCheck_alcotest.to_alcotest prop_truncate_keeps_suffix;
      QCheck_alcotest.to_alcotest prop_reset_restores_source;
    ] )

let suites = suites @ [ property_suite ]
