(* The logging-bandwidth diet: unit tests for the V1 record codec and the
   logger's coalescing buffer as seen end to end — stream headers, run
   formation, absorption counters, Rlvm/FAMS encoded-WAL commit and
   recovery, extent sealing of V1 streams — plus the property suite:
   codec round-trip with torn-tail truncation at every byte offset, and
   coalesced-vs-uncoalesced replay state identity over seeded
   interleavings. *)

open Lvm_machine
open Lvm_vm
module Sm = Lvm_fault.Splitmix

let check = Alcotest.(check int)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( try int_of_string v with _ -> default)
  | None -> default

let cases = env_int "LVM_PROP_CASES" 1000
let suite_seed = env_int "LVM_TEST_SEED" 0x5eed

let check_prop ?(max_size = 256) ?(cases = cases) name prop =
  let failing = ref None in
  (try
     for case = 0 to cases - 1 do
       let case_seed = (suite_seed * 1_000_003) + case in
       let size = 1 + Sm.int (Sm.create ~seed:case_seed) ~bound:max_size in
       let fails sz =
         match prop (Sm.create ~seed:(case_seed * 2 + 1)) sz with
         | () -> None
         | exception e -> Some (Printexc.to_string e)
       in
       match fails size with
       | None -> ()
       | Some msg ->
         let rec shrink sz msg =
           if sz <= 1 then (sz, msg)
           else
             match fails (sz / 2) with
             | Some msg' -> shrink (sz / 2) msg'
             | None -> (sz, msg)
         in
         failing := Some (case, case_seed, shrink size msg);
         raise Exit
     done
   with Exit -> ());
  match !failing with
  | None -> ()
  | Some (case, case_seed, (sz, msg)) ->
    Alcotest.fail
      (Printf.sprintf
         "%s: case %d failed at size %d: %s\n\
          reproduce with LVM_TEST_SEED=%d (case seed %d)"
         name case sz msg suite_seed case_seed)

let prop name ?max_size ?cases:c p =
  let shown = match c with None -> cases | Some c -> c in
  Alcotest.test_case (Printf.sprintf "%s (%d cases)" name shown) `Quick
    (fun () -> check_prop ?max_size ?cases:c name p)

let expect cond fmt = Printf.ksprintf (fun s -> if not cond then failwith s) fmt

(* A kernel with one logged region over a fresh segment. *)
let setup ?(codec = Log_record.V0) ?(coalesce_depth = 0) ?(log_pages = 16)
    ?(seg_pages = 1) () =
  let k = Kernel.create ~codec ~coalesce_depth () in
  let sp = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:(seg_pages * Addr.page_size) in
  let region = Kernel.create_region k seg in
  let log = Lvm_log.create k ~size:(log_pages * Addr.page_size) in
  let ls = Lvm_log.segment log in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  (k, sp, seg, log, ls, base)

let stream_bytes k ls =
  let len = Segment.write_pos ls in
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Kernel.seg_read_raw k ls ~off:i ~size:1))
  done;
  b

let counter k name =
  let snap = Kernel.snapshot k in
  if Lvm_obs.Snapshot.mem snap name then Lvm_obs.Snapshot.get snap name else 0

(* {1 Unit tests} *)

let test_stream_header_and_sniff () =
  let k, sp, _, log, ls, base = setup ~codec:Log_record.V1 () in
  Kernel.write_word k sp base 42;
  Kernel.sync_log k ls;
  Alcotest.(check bool)
    "stream_version v1" true
    (Lvm.Log_reader.stream_version k ls = Log_record.V1);
  let s = stream_bytes k ls in
  Alcotest.(check bool)
    "sniffs v1" true
    (Log_record.Codec.sniff_version s ~pos:0 ~len:(Bytes.length s)
     = Log_record.V1);
  check "one logical record" 1 (Lvm.Log_reader.record_count k ls);
  ignore log;
  (* and the default machine still writes the seed's bare v0 stream *)
  let k0, sp0, _, _, ls0, base0 = setup () in
  Kernel.write_word k0 sp0 base0 42;
  Kernel.sync_log k0 ls0;
  Alcotest.(check bool)
    "v0 by default" true
    (Lvm.Log_reader.stream_version k0 ls0 = Log_record.V0);
  check "16-byte stride" 0 (Segment.write_pos ls0 mod Log_record.bytes);
  let s0 = stream_bytes k0 ls0 in
  Alcotest.(check bool)
    "v0 never sniffs as v1" true
    (Log_record.Codec.sniff_version s0 ~pos:0 ~len:(Bytes.length s0)
     = Log_record.V0)

let test_coalesce_absorbs_rewrites () =
  let k, sp, _, _, ls, base = setup ~codec:Log_record.V1 ~coalesce_depth:8 () in
  for v = 1 to 20 do
    Kernel.write_word k sp base v
  done;
  Kernel.sync_log k ls;
  (* twenty stores to one word leave the buffer as a single record *)
  check "one record survives" 1 (Lvm.Log_reader.record_count k ls);
  check "absorbed" 19 (counter k "log.coalesce_absorbed");
  check "flushed" 1 (counter k "log.coalesce_flushed");
  let last = ref (-1) in
  Lvm.Log_reader.iter k ls ~f:(fun ~off:_ r -> last := r.Log_record.value);
  check "last value wins" 20 !last

let test_runs_form_on_flush () =
  let k, sp, _, _, ls, base =
    setup ~codec:Log_record.V1 ~coalesce_depth:16 ()
  in
  for i = 0 to 11 do
    Kernel.write_word k sp (base + (4 * i)) (100 + i)
  done;
  Kernel.sync_log k ls;
  check "all records decode" 12 (Lvm.Log_reader.record_count k ls);
  expect (counter k "log.records_run" >= 1) "expected a run record, got %d"
    (counter k "log.records_run");
  let logical = counter k "log.bytes_logical" in
  let encoded = counter k "log.bytes_encoded" in
  expect (encoded < logical) "run encoding should shrink: %d encoded / %d raw"
    encoded logical;
  (* the decoded stream carries the right values in order *)
  let values = ref [] in
  Lvm.Log_reader.iter k ls ~f:(fun ~off:_ r ->
      values := r.Log_record.value :: !values);
  Alcotest.(check (list int))
    "values" (List.init 12 (fun i -> 100 + i)) (List.rev !values)

let test_seal_and_rewrite_v1 () =
  let k, sp, _, log, ls, base =
    setup ~codec:Log_record.V1 ~coalesce_depth:4 ~log_pages:16 ()
  in
  for i = 0 to 63 do
    Lvm_log.reserve log ~bytes:Log_record.bytes ~max_pages:max_int;
    Kernel.write_word k sp (base + (4 * (i mod 256))) i
  done;
  let sealed = Lvm_log.seal log in
  expect (sealed > 0) "first seal sealed nothing";
  check "second seal is a no-op" 0 (Lvm_log.seal log);
  (* the re-armed stream opens with a fresh header and keeps decoding *)
  for i = 0 to 7 do
    Kernel.write_word k sp (base + (4 * i)) (1000 + i)
  done;
  Kernel.sync_log k ls;
  check "fresh epoch records" 8 (Lvm.Log_reader.record_count k ls);
  let s = stream_bytes k ls in
  Alcotest.(check bool)
    "fresh header" true
    (Log_record.Codec.starts_with_header s ~pos:0 ~len:(Bytes.length s))

let test_wal_mixed_formats_recover () =
  (* a WAL holding seed-format Data records next to kind-3 Encoded
     records recovers both, and an uncommitted encoded tail stays
     invisible *)
  let k = Kernel.create () in
  let disk = Lvm_rvm.Ramdisk.create k ~size:256 in
  Lvm_rvm.Ramdisk.wal_append disk
    (Lvm_rvm.Ramdisk.Data
       { txn = 1; off = 0; bytes = Bytes.of_string "\x11\x22\x33\x44" });
  Lvm_rvm.Ramdisk.wal_append disk (Lvm_rvm.Ramdisk.Commit { txn = 1 });
  let records =
    [ { Log_record.addr = 8; value = 0xAABB; size = 4; pre_image = false;
        timestamp = 2 };
      { Log_record.addr = 12; value = 0xCCDD; size = 4; pre_image = false;
        timestamp = 2 } ]
  in
  Lvm_rvm.Ramdisk.wal_append disk
    (Lvm_rvm.Ramdisk.Encoded
       { txn = 2; payload = Log_record.Codec.encode_stream records });
  Lvm_rvm.Ramdisk.wal_append disk (Lvm_rvm.Ramdisk.Commit { txn = 2 });
  Lvm_rvm.Ramdisk.wal_append disk
    (Lvm_rvm.Ramdisk.Encoded
       { txn = 3;
         payload =
           Log_record.Codec.encode_stream
             [ { Log_record.addr = 16; value = 99; size = 4;
                 pre_image = false; timestamp = 3 } ] });
  let image, rep = Lvm_rvm.Ramdisk.recover disk in
  check "both txns committed" 2 rep.Lvm_rvm.Ramdisk.committed;
  check "data record applied" 0x44332211
    (Int32.to_int (Bytes.get_int32_le image 0) land 0xFFFFFFFF);
  check "encoded word 1" 0xAABB (Int32.to_int (Bytes.get_int32_le image 8));
  check "encoded word 2" 0xCCDD (Int32.to_int (Bytes.get_int32_le image 12));
  check "uncommitted encoded txn invisible" 0
    (Int32.to_int (Bytes.get_int32_le image 16))

let test_rlvm_v1_commit_and_recover () =
  let run ~codec ~coalesce_depth =
    let k = Kernel.create ~codec ~coalesce_depth () in
    let sp = Kernel.create_space k in
    let r = Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:1024 in
    Lvm_rvm.Rlvm.begin_txn r;
    for i = 0 to 15 do
      Lvm_rvm.Rlvm.write_word r ~off:(4 * i) (i + 1)
    done;
    (* hot rewrites: only the last value should reach the WAL *)
    for v = 1 to 8 do
      Lvm_rvm.Rlvm.write_word r ~off:0 (1000 + v)
    done;
    Lvm_rvm.Rlvm.commit r;
    let wal = Lvm_rvm.Ramdisk.wal_bytes (Lvm_rvm.Rlvm.disk r) in
    Lvm_rvm.Rlvm.begin_txn r;
    Lvm_rvm.Rlvm.write_word r ~off:64 7777;
    Lvm_rvm.Rlvm.abort r;
    Lvm_rvm.Rlvm.crash_and_recover r;
    check "recovered hot word" 1008 (Lvm_rvm.Rlvm.read_word r ~off:0);
    for i = 1 to 15 do
      check "recovered word" (i + 1) (Lvm_rvm.Rlvm.read_word r ~off:(4 * i))
    done;
    check "aborted write invisible" 0 (Lvm_rvm.Rlvm.read_word r ~off:64);
    wal
  in
  let v0 = run ~codec:Log_record.V0 ~coalesce_depth:0 in
  let v1 = run ~codec:Log_record.V1 ~coalesce_depth:32 in
  expect (v1 < v0) "encoded WAL should be smaller: v1 %d vs v0 %d" v1 v0;
  expect
    (float_of_int v1 <= 0.7 *. float_of_int v0)
    "expected >= 30%% fewer WAL bytes per txn: v1 %d vs v0 %d" v1 v0

let test_fams_v1_snapshot_and_recover () =
  let ok what = function
    | Ok v -> v
    | Error e -> Alcotest.fail (what ^ ": " ^ Lvm.Lvm_error.to_string e)
  in
  let k = Kernel.create ~codec:Log_record.V1 ~coalesce_depth:16 () in
  let sp = Kernel.create_space k in
  let f =
    ok "map"
      (Lvm_fams.map
         { Lvm_fams.Config.default with log_pages = 8 }
         k sp ~size:512)
  in
  for i = 0 to 31 do
    ok "write" (Lvm_fams.write_word f ~off:(4 * i) (i * 3))
  done;
  let r1 = ok "snapshot" (Lvm_fams.snapshot f) in
  expect (r1.Lvm_fams.spans > 0) "snapshot saw no dirty spans";
  ok "write" (Lvm_fams.write_word f ~off:0 424242);
  let _r2 = ok "snapshot" (Lvm_fams.snapshot f) in
  ok "write" (Lvm_fams.write_word f ~off:4 555);
  (* the unsnapshotted write must roll back *)
  ignore (ok "recover" (Lvm_fams.recover f));
  check "rolled back to snapshot 2" 424242 (ok "read" (Lvm_fams.read_word f ~off:0));
  check "unsnapshotted write lost" 3 (ok "read" (Lvm_fams.read_word f ~off:4));
  for i = 2 to 31 do
    check "snapshot word" (i * 3) (ok "read" (Lvm_fams.read_word f ~off:(4 * i)))
  done

(* {1 Properties} *)

let mask_of_size = function 1 -> 0xFF | 2 -> 0xFFFF | _ -> 0xFFFFFFFF

(* Batches mixing the shapes the codec cares about: sequential same-page
   same-timestamp word clusters (runs), same-line rewrites (deltas), and
   arbitrary raw records (any size, pre-images included). *)
let random_batch rng n =
  let records = ref [] in
  let count = ref 0 in
  let ts = ref 1 in
  let push r = records := r :: !records; incr count in
  while !count < n do
    ts := !ts + Sm.int rng ~bound:3;
    let page = Sm.int rng ~bound:8 in
    match Sm.int rng ~bound:10 with
    | 0 | 1 | 2 | 3 ->
      (* a run-shaped cluster *)
      let k = 2 + Sm.int rng ~bound:(min 20 (n - !count + 1)) in
      let words = Addr.page_size / 4 in
      let w0 = Sm.int rng ~bound:(max 1 (words - k)) in
      for i = 0 to k - 1 do
        push
          { Log_record.addr = (page * Addr.page_size) + (4 * (w0 + i));
            value = Int64.to_int (Int64.logand (Sm.next_u64 rng) 0xFFFFFFFFL);
            size = 4; pre_image = false; timestamp = !ts }
      done
    | 4 | 5 ->
      (* a delta-shaped pair: two words in one 64-byte line, same ts *)
      let line = Sm.int rng ~bound:(Addr.page_size / 64) in
      let a = (page * Addr.page_size) + (64 * line) + (4 * Sm.int rng ~bound:16)
      and b =
        (page * Addr.page_size) + (64 * line) + (4 * Sm.int rng ~bound:16)
      in
      push
        { Log_record.addr = a; value = Sm.int rng ~bound:0x10000; size = 4;
          pre_image = false; timestamp = !ts };
      push
        { Log_record.addr = b; value = Sm.int rng ~bound:0x10000; size = 4;
          pre_image = false; timestamp = !ts }
    | _ ->
      let size = List.nth [ 1; 2; 4 ] (Sm.int rng ~bound:3) in
      push
        { Log_record.addr =
            (page * Addr.page_size) + (size * Sm.int rng ~bound:64);
          value =
            Int64.to_int (Int64.logand (Sm.next_u64 rng) 0xFFFFFFFFL)
            land mask_of_size size;
          size; pre_image = Sm.bool rng; timestamp = !ts }
  done;
  List.rev !records

let prop_codec_roundtrip rng size =
  let records = random_batch rng size in
  let s = Log_record.Codec.encode_stream records in
  let len = Bytes.length s in
  expect
    (Log_record.Codec.sniff_version s ~pos:0 ~len = Log_record.V1)
    "stream does not sniff as v1";
  let decoded, valid_end = Log_record.Codec.decode_fragment s ~pos:0 ~len in
  expect (valid_end = len) "intact stream truncated at %d/%d" valid_end len;
  expect
    (List.length decoded = List.length records)
    "decoded %d of %d records" (List.length decoded) (List.length records);
  List.iter2
    (fun a b ->
      expect (Log_record.equal a b) "record mismatch: %s vs %s"
        (Format.asprintf "%a" Log_record.pp a)
        (Format.asprintf "%a" Log_record.pp b))
    decoded records;
  (* torn-tail truncation at every byte offset: the decode fail-stops at
     a container boundary and yields an exact prefix *)
  let arr = Array.of_list records in
  for cut = 0 to len - 1 do
    let part = Bytes.sub s 0 cut in
    let rs, ve = Log_record.Codec.decode_fragment part ~pos:0 ~len:cut in
    expect (ve <= cut) "valid_end %d past the cut %d" ve cut;
    List.iteri
      (fun i r ->
        expect
          (i < Array.length arr && Log_record.equal r arr.(i))
          "cut %d: decoded record %d is not a prefix" cut i)
      rs
  done

(* Identical write/sync interleavings against a coalescing V1 machine and
   an uncoalescing one: replaying either log must reconstruct the same
   final bytes, which must also be what memory holds. *)
let prop_coalesced_replay_identity rng size =
  let mk ~coalesce_depth =
    setup ~codec:Log_record.V1 ~coalesce_depth ~log_pages:32 ()
  in
  let a = mk ~coalesce_depth:(1 + Sm.int rng ~bound:32) in
  let b = mk ~coalesce_depth:0 in
  let ops =
    List.init size (fun _ ->
        match Sm.int rng ~bound:20 with
        | 0 -> `Sync
        | 1 | 2 ->
          let sz = if Sm.bool rng then 1 else 2 in
          `Write
            ( sz * Sm.int rng ~bound:(Addr.page_size / sz),
              sz, Sm.int rng ~bound:(mask_of_size sz + 1) )
        | _ ->
          `Write
            ( 4 * Sm.int rng ~bound:(Addr.page_size / 4),
              4,
              Int64.to_int (Int64.logand (Sm.next_u64 rng) 0xFFFFFFFFL) ))
  in
  let apply (k, sp, _seg, log, ls, base) =
    List.iter
      (fun op ->
        Lvm_log.reserve log ~bytes:Log_record.bytes ~max_pages:max_int;
        match op with
        | `Sync -> Kernel.sync_log k ls
        | `Write (off, size, v) -> Kernel.write k sp ~vaddr:(base + off) ~size v)
      ops;
    Kernel.sync_log k ls
  in
  apply a;
  apply b;
  let replay (k, _sp, seg, _log, ls, _base) =
    let image = Bytes.make Addr.page_size '\000' in
    Lvm.Log_reader.iter k ls ~f:(fun ~off:_ r ->
        if not r.Log_record.pre_image then
          match Lvm.Log_reader.locate k r with
          | Some (s, off) when Segment.id s = Segment.id seg ->
            (match r.Log_record.size with
            | 1 -> Bytes.set_uint8 image off (r.Log_record.value land 0xFF)
            | 2 -> Bytes.set_uint16_le image off (r.Log_record.value land 0xFFFF)
            | _ -> Bytes.set_int32_le image off (Int32.of_int r.Log_record.value))
          | Some _ | None -> ());
    image
  in
  let ia = replay a and ib = replay b in
  expect (Bytes.equal ia ib) "coalesced replay diverged from uncoalesced";
  let (k, _, seg, _, _, _) = a in
  for off = 0 to Addr.page_size - 1 do
    let m = Kernel.seg_read_raw k seg ~off ~size:1 in
    expect
      (m = Char.code (Bytes.get ia off))
      "replayed byte %d is %d, memory holds %d" off
      (Char.code (Bytes.get ia off))
      m
  done;
  let (ka, _, _, _, lsa, _) = a and (kb, _, _, _, lsb, _) = b in
  expect
    (Lvm.Log_reader.record_count ka lsa <= Lvm.Log_reader.record_count kb lsb)
    "coalescing produced more records than not coalescing"

(* Seeded transaction interleavings (write / commit / abort / crash) on a
   coalescing V1 machine and on the seed's V0 machine land on identical
   committed states, tracked against a shadow model. *)
let prop_rlvm_interleaving_equiv rng size =
  let mk ~codec ~coalesce_depth =
    let k = Kernel.create ~codec ~coalesce_depth () in
    let sp = Kernel.create_space k in
    Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:256
  in
  let a = mk ~codec:Log_record.V1 ~coalesce_depth:(1 + Sm.int rng ~bound:24) in
  let b = mk ~codec:Log_record.V0 ~coalesce_depth:0 in
  let shadow = Array.make 64 0 in
  let txns = 1 + (size / 8) in
  for _ = 1 to txns do
    let writes =
      List.init
        (1 + Sm.int rng ~bound:12)
        (fun _ -> (Sm.int rng ~bound:64, Sm.int rng ~bound:0x1000000))
    in
    let outcome =
      match Sm.int rng ~bound:5 with 0 -> `Abort | 1 -> `Crash | _ -> `Commit
    in
    List.iter
      (fun r ->
        Lvm_rvm.Rlvm.begin_txn r;
        List.iter
          (fun (w, v) -> Lvm_rvm.Rlvm.write_word r ~off:(4 * w) v)
          writes;
        match outcome with
        | `Commit -> Lvm_rvm.Rlvm.commit r
        | `Abort -> Lvm_rvm.Rlvm.abort r
        | `Crash -> Lvm_rvm.Rlvm.crash_and_recover r)
      [ a; b ];
    if outcome = `Commit then
      List.iter (fun (w, v) -> shadow.(w) <- v) writes
  done;
  List.iter
    (fun r -> Lvm_rvm.Rlvm.crash_and_recover r)
    [ a; b ];
  for w = 0 to 63 do
    let va = Lvm_rvm.Rlvm.read_word a ~off:(4 * w)
    and vb = Lvm_rvm.Rlvm.read_word b ~off:(4 * w) in
    expect
      (va = shadow.(w) && vb = shadow.(w))
      "word %d: v1+coalesce %d, v0 %d, expected %d" w va vb shadow.(w)
  done

let suites =
  [
    ( "logdiet",
      [
        Alcotest.test_case "stream header + sniff" `Quick
          test_stream_header_and_sniff;
        Alcotest.test_case "coalescing absorbs rewrites" `Quick
          test_coalesce_absorbs_rewrites;
        Alcotest.test_case "runs form on flush" `Quick
          test_runs_form_on_flush;
        Alcotest.test_case "seal + rewrite v1 stream" `Quick
          test_seal_and_rewrite_v1;
        Alcotest.test_case "mixed-format WAL recovery" `Quick
          test_wal_mixed_formats_recover;
        Alcotest.test_case "rlvm encoded commit + recover" `Quick
          test_rlvm_v1_commit_and_recover;
        Alcotest.test_case "fams encoded snapshot + recover" `Quick
          test_fams_v1_snapshot_and_recover;
      ] );
    ( "logdiet.prop",
      [
        prop "codec round-trip + torn tail" ~max_size:24
          ~cases:(min cases 300) prop_codec_roundtrip;
        prop "coalesced replay identity" ~max_size:96 ~cases:(min cases 80)
          prop_coalesced_replay_identity;
        prop "rlvm interleaving equivalence" ~max_size:48
          ~cases:(min cases 40) prop_rlvm_interleaving_equiv;
      ] );
  ]
