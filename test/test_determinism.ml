(* Determinism: the simulated machine is a pure function of its inputs —
   identical runs produce identical cycle counts, log contents and final
   states. This is what makes the reproduction's numbers repeatable
   bit-for-bit. *)

open Lvm_sim

let check = Alcotest.(check int)

let test_synthetic_deterministic () =
  let p = { Synthetic.default_params with Synthetic.events = 500 } in
  let a = Synthetic.run p State_saving.Lvm_based in
  let b = Synthetic.run p State_saving.Lvm_based in
  check "identical cycles" a.Synthetic.cycles b.Synthetic.cycles;
  check "identical records" a.Synthetic.log_records b.Synthetic.log_records

let test_timewarp_deterministic () =
  let run () =
    let app = Phold.app ~objects:10 ~seed:5 () in
    let engine =
      Timewarp.create ~n_schedulers:3 ~strategy:State_saving.Lvm_based ~app ()
    in
    Phold.inject_population engine ~objects:10 ~population:7 ~seed:5;
    let r = Timewarp.run engine ~end_time:250 in
    (r, Timewarp.state_vector engine)
  in
  let r1, s1 = run () in
  let r2, s2 = run () in
  Alcotest.(check (array int)) "identical states" s1 s2;
  check "identical elapsed cycles" r1.Timewarp.elapsed_cycles
    r2.Timewarp.elapsed_cycles;
  check "identical rollbacks" r1.Timewarp.total_rollbacks
    r2.Timewarp.total_rollbacks

let test_tpca_deterministic () =
  let run () =
    let k = Lvm_vm.Kernel.create () in
    let sp = Lvm_vm.Kernel.create_space k in
    let bank =
      Lvm_tpc.Bank.layout ~branches:2 ~tellers:10 ~accounts:50 ~history:64
    in
    let store =
      Lvm_tpc.Tpca.rlvm_store
        (Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:(Lvm_tpc.Bank.segment_bytes bank))
    in
    Lvm_tpc.Tpca.setup store bank;
    let r = Lvm_tpc.Tpca.run ~seed:11 store bank ~txns:60 in
    (r.Lvm_tpc.Tpca.cycles, Lvm_tpc.Tpca.total_balance store bank)
  in
  let c1, b1 = run () in
  let c2, b2 = run () in
  check "identical cycles" c1 c2;
  check "identical balances" b1 b2

let test_logs_bit_identical () =
  let run () =
    let k = Lvm_vm.Kernel.create () in
    let sp = Lvm_vm.Kernel.create_space k in
    let seg = Lvm_vm.Kernel.create_segment k ~size:4096 in
    let region = Lvm_vm.Kernel.create_region k seg in
    let ls =
      Lvm_vm.Kernel.create_log_segment k
        ~size:(8 * Lvm_machine.Addr.page_size)
    in
    Lvm_vm.Kernel.set_region_log k region (Some ls);
    let base = Lvm_vm.Kernel.bind k sp region in
    for i = 0 to 99 do
      Lvm_vm.Kernel.compute k (i mod 7);
      Lvm_vm.Kernel.write_word k sp (base + (i * 4 mod 1024)) i
    done;
    List.map
      (Format.asprintf "%a" Lvm_machine.Log_record.pp)
      (Lvm.Log_reader.to_list k ls)
  in
  Alcotest.(check (list string)) "identical logs" (run ()) (run ())

(* The structured event trace is part of the deterministic surface too:
   same seed, same workload, byte-identical rendering. *)
let test_trace_bit_identical () =
  let run () =
    let app = Phold.app ~objects:8 ~seed:3 () in
    let (), collector =
      Lvm_obs.Collector.with_collector (fun () ->
          let engine =
            Timewarp.create ~n_schedulers:2 ~strategy:State_saving.Lvm_based
              ~app ()
          in
          Phold.inject_population engine ~objects:8 ~population:6 ~seed:3;
          ignore (Timewarp.run engine ~end_time:200))
    in
    List.map
      (Format.asprintf "%a" Lvm_obs.Trace.pp)
      (Lvm_obs.Collector.traces collector)
  in
  let t1 = run () and t2 = run () in
  Alcotest.(check (list string)) "identical traces" t1 t2;
  Alcotest.(check bool) "traces are non-trivial" true
    (List.exists (fun s -> String.length s > 0) t1)

(* Differential replay: the log is a complete record of every logged
   write, so replaying it through [Lvm.Log_reader] onto a pre-execution
   snapshot must reconstruct the final memory exactly — on one CPU and on
   four, where each CPU runs its own logged workload under the
   round-robin scheduler and the logger snoops them all. *)
let test_replay_reconstructs ~cpus () =
  let open Lvm_vm in
  let page = Lvm_machine.Addr.page_size in
  let seg_bytes = 2 * page in
  let words = seg_bytes / 4 in
  let k = Kernel.create ~cpus () in
  let per_cpu =
    Array.init cpus (fun cpu ->
        Kernel.set_cpu k cpu;
        let sp = Kernel.create_space k in
        let seg = Kernel.create_segment k ~size:seg_bytes in
        let region = Kernel.create_region k seg in
        let ls = Kernel.create_log_segment k ~size:(8 * page) in
        Kernel.set_region_log k region (Some ls);
        let base = Kernel.bind k sp region in
        (sp, seg, ls, base))
  in
  Kernel.set_cpu k 0;
  let snapshot seg =
    Array.init words (fun i -> Kernel.seg_read_raw k seg ~off:(i * 4) ~size:4)
  in
  let snaps = Array.map (fun (_, seg, _, _) -> snapshot seg) per_cpu in
  let iters = Array.make cpus 0 in
  let tasks =
    Array.init cpus (fun i () ->
        let sp, _, _, base = per_cpu.(i) in
        let n = iters.(i) in
        Kernel.compute k (n * (i + 3) mod 11);
        Kernel.write_word k sp
          (base + (n * 4 * (i + 1) mod seg_bytes))
          (((n * 97) + i) land 0xFFFFFFFF);
        iters.(i) <- n + 1;
        iters.(i) < 150)
  in
  Kernel.run_cpus k ~tasks;
  Array.iteri
    (fun i (_, seg, ls, _) ->
      let model = Array.copy snaps.(i) in
      Lvm.Log_reader.iter k ls ~f:(fun ~off:_ r ->
          if not r.Lvm_machine.Log_record.pre_image then begin
            Alcotest.(check int) "word-sized record" 4
              r.Lvm_machine.Log_record.size;
            match Lvm.Log_reader.locate k r with
            | Some (s, off) when s == seg ->
              model.(off / 4) <- r.Lvm_machine.Log_record.value
            | Some _ -> Alcotest.fail "record located to a foreign segment"
            | None -> Alcotest.fail "record did not locate"
          end);
      Alcotest.(check (array int))
        (Printf.sprintf "cpu %d replay reconstructs memory" i)
        (snapshot seg) model)
    per_cpu

(* The multi-CPU configuration is deterministic end to end: two
   identical 4-CPU shared-kernel runs produce byte-identical committed
   states and byte-identical structured event traces. *)
let test_timewarp_multicpu_deterministic () =
  let run () =
    let app = Phold.app ~objects:12 ~seed:9 () in
    let (states, elapsed), collector =
      Lvm_obs.Collector.with_collector (fun () ->
          let engine =
            Timewarp.create ~cpus:4 ~n_schedulers:4
              ~strategy:State_saving.Lvm_based ~app ()
          in
          Phold.inject_population engine ~objects:12 ~population:8 ~seed:9;
          let r = Timewarp.run engine ~end_time:250 in
          (Timewarp.state_vector engine, r.Timewarp.elapsed_cycles))
    in
    let traces =
      List.map
        (Format.asprintf "%a" Lvm_obs.Trace.pp)
        (Lvm_obs.Collector.traces collector)
    in
    (states, elapsed, traces)
  in
  let s1, e1, t1 = run () in
  let s2, e2, t2 = run () in
  Alcotest.(check (array int)) "identical states" s1 s2;
  check "identical elapsed cycles" e1 e2;
  Alcotest.(check (list string)) "identical traces" t1 t2

(* A log stream crossing several extent seams replays identically on a
   1-CPU and a 4-CPU boot: extent switches ride the same fault path on
   both, so the record stream (addresses, values, sizes — timestamps
   differ with the machine configuration), the replayed memory and the
   ring accounting all agree. *)
let extent_stream ~cpus =
  let open Lvm_vm in
  let page = Lvm_machine.Addr.page_size in
  let k = Kernel.create ~cpus () in
  let sp = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:page in
  let region = Kernel.create_region k seg in
  let log = Lvm_log.create ~extent_pages:1 k ~size:(4 * page) in
  let ls = Lvm_log.segment log in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  let snapshot () =
    Array.init (page / 4) (fun i ->
        Kernel.seg_read_raw k seg ~off:(i * 4) ~size:4)
  in
  let initial = snapshot () in
  let n = 900 (* 900 records span all four one-page extents: 3 seams *) in
  let iters = Array.make cpus 0 in
  let tasks =
    Array.init cpus (fun i () ->
        let j = iters.(i) in
        iters.(i) <- j + 1;
        (if i = 0 then
           Kernel.write_word k sp
             (base + (j * 28 mod page))
             (((j * 131) + 17) land 0xFFFFFFFF)
         else Kernel.compute k ((i + j) mod 5));
        iters.(i) < n)
  in
  Kernel.run_cpus k ~tasks;
  let records =
    List.rev
      (Lvm.Log_reader.fold k ls ~init:[] ~f:(fun acc ~off r ->
           let loc =
             match Lvm.Log_reader.locate k r with
             | Some (_, o) -> o
             | None -> -1
           in
           Printf.sprintf "off=%d loc=%d v=%d sz=%d pre=%b" off loc
             r.Lvm_machine.Log_record.value r.Lvm_machine.Log_record.size
             r.Lvm_machine.Log_record.pre_image
           :: acc))
  in
  let model = Array.copy initial in
  Lvm.Log_reader.iter k ls ~f:(fun ~off:_ r ->
      if not r.Lvm_machine.Log_record.pre_image then
        match Lvm.Log_reader.locate k r with
        | Some (s, off) when s == seg ->
          model.(off / 4) <- r.Lvm_machine.Log_record.value
        | Some _ | None -> Alcotest.fail "record did not locate");
  Alcotest.(check (array int))
    (Printf.sprintf "%d-cpu replay reconstructs memory" cpus)
    (snapshot ()) model;
  let s = Lvm_log.stats log in
  Alcotest.(check bool) "crossed at least three seams" true
    (s.Lvm_log.switches >= 3);
  (records, s.Lvm_log.switches)

let test_extent_replay_cpus () =
  let r1, sw1 = extent_stream ~cpus:1 in
  let r4, sw4 = extent_stream ~cpus:4 in
  check "same extent switches" sw1 sw4;
  Alcotest.(check (list string)) "identical record streams" r1 r4

(* TPC-A with negative balances: signed arithmetic must round-trip the
   32-bit storage *)
let test_tpca_negative_balances () =
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in
  let bank =
    Lvm_tpc.Bank.layout ~branches:1 ~tellers:2 ~accounts:4 ~history:8
  in
  let store =
    Lvm_tpc.Tpca.rvm_store
      (Lvm_rvm.Rvm.make Lvm_rvm.Rvm.Config.default k sp ~size:(Lvm_tpc.Bank.segment_bytes bank))
  in
  Lvm_tpc.Tpca.setup store bank;
  ignore (Lvm_tpc.Tpca.run ~seed:2 store bank ~txns:40);
  (* the invariant holds regardless of the total's sign *)
  Alcotest.(check bool) "balances consistent under negatives" true
    (Lvm_tpc.Tpca.balance_invariant store bank)

let suites =
  [
    ( "determinism",
      [
        Alcotest.test_case "synthetic" `Quick test_synthetic_deterministic;
        Alcotest.test_case "timewarp" `Quick test_timewarp_deterministic;
        Alcotest.test_case "tpc-a" `Quick test_tpca_deterministic;
        Alcotest.test_case "logs bit-identical" `Quick
          test_logs_bit_identical;
        Alcotest.test_case "traces bit-identical" `Quick
          test_trace_bit_identical;
        Alcotest.test_case "replay reconstructs memory (1 cpu)" `Quick
          (test_replay_reconstructs ~cpus:1);
        Alcotest.test_case "replay reconstructs memory (4 cpus)" `Quick
          (test_replay_reconstructs ~cpus:4);
        Alcotest.test_case "timewarp 4-cpu deterministic" `Quick
          test_timewarp_multicpu_deterministic;
        Alcotest.test_case "extent stream replays on 1 and 4 cpus" `Quick
          test_extent_replay_cpus;
        Alcotest.test_case "tpc-a negative balances" `Quick
          test_tpca_negative_balances;
      ] );
  ]
