(* Determinism: the simulated machine is a pure function of its inputs —
   identical runs produce identical cycle counts, log contents and final
   states. This is what makes the reproduction's numbers repeatable
   bit-for-bit. *)

open Lvm_sim

let check = Alcotest.(check int)

let test_synthetic_deterministic () =
  let p = { Synthetic.default_params with Synthetic.events = 500 } in
  let a = Synthetic.run p State_saving.Lvm_based in
  let b = Synthetic.run p State_saving.Lvm_based in
  check "identical cycles" a.Synthetic.cycles b.Synthetic.cycles;
  check "identical records" a.Synthetic.log_records b.Synthetic.log_records

let test_timewarp_deterministic () =
  let run () =
    let app = Phold.app ~objects:10 ~seed:5 () in
    let engine =
      Timewarp.create ~n_schedulers:3 ~strategy:State_saving.Lvm_based ~app ()
    in
    Phold.inject_population engine ~objects:10 ~population:7 ~seed:5;
    let r = Timewarp.run engine ~end_time:250 in
    (r, Timewarp.state_vector engine)
  in
  let r1, s1 = run () in
  let r2, s2 = run () in
  Alcotest.(check (array int)) "identical states" s1 s2;
  check "identical elapsed cycles" r1.Timewarp.elapsed_cycles
    r2.Timewarp.elapsed_cycles;
  check "identical rollbacks" r1.Timewarp.total_rollbacks
    r2.Timewarp.total_rollbacks

let test_tpca_deterministic () =
  let run () =
    let k = Lvm_vm.Kernel.create () in
    let sp = Lvm_vm.Kernel.create_space k in
    let bank =
      Lvm_tpc.Bank.layout ~branches:2 ~tellers:10 ~accounts:50 ~history:64
    in
    let store =
      Lvm_tpc.Tpca.rlvm_store
        (Lvm_rvm.Rlvm.create k sp ~size:(Lvm_tpc.Bank.segment_bytes bank))
    in
    Lvm_tpc.Tpca.setup store bank;
    let r = Lvm_tpc.Tpca.run ~seed:11 store bank ~txns:60 in
    (r.Lvm_tpc.Tpca.cycles, Lvm_tpc.Tpca.total_balance store bank)
  in
  let c1, b1 = run () in
  let c2, b2 = run () in
  check "identical cycles" c1 c2;
  check "identical balances" b1 b2

let test_logs_bit_identical () =
  let run () =
    let k = Lvm_vm.Kernel.create () in
    let sp = Lvm_vm.Kernel.create_space k in
    let seg = Lvm_vm.Kernel.create_segment k ~size:4096 in
    let region = Lvm_vm.Kernel.create_region k seg in
    let ls =
      Lvm_vm.Kernel.create_log_segment k
        ~size:(8 * Lvm_machine.Addr.page_size)
    in
    Lvm_vm.Kernel.set_region_log k region (Some ls);
    let base = Lvm_vm.Kernel.bind k sp region in
    for i = 0 to 99 do
      Lvm_vm.Kernel.compute k (i mod 7);
      Lvm_vm.Kernel.write_word k sp (base + (i * 4 mod 1024)) i
    done;
    List.map
      (Format.asprintf "%a" Lvm_machine.Log_record.pp)
      (Lvm.Log_reader.to_list k ls)
  in
  Alcotest.(check (list string)) "identical logs" (run ()) (run ())

(* The structured event trace is part of the deterministic surface too:
   same seed, same workload, byte-identical rendering. *)
let test_trace_bit_identical () =
  let run () =
    let app = Phold.app ~objects:8 ~seed:3 () in
    let (), collector =
      Lvm_obs.Collector.with_collector (fun () ->
          let engine =
            Timewarp.create ~n_schedulers:2 ~strategy:State_saving.Lvm_based
              ~app ()
          in
          Phold.inject_population engine ~objects:8 ~population:6 ~seed:3;
          ignore (Timewarp.run engine ~end_time:200))
    in
    List.map
      (Format.asprintf "%a" Lvm_obs.Trace.pp)
      (Lvm_obs.Collector.traces collector)
  in
  let t1 = run () and t2 = run () in
  Alcotest.(check (list string)) "identical traces" t1 t2;
  Alcotest.(check bool) "traces are non-trivial" true
    (List.exists (fun s -> String.length s > 0) t1)

(* TPC-A with negative balances: signed arithmetic must round-trip the
   32-bit storage *)
let test_tpca_negative_balances () =
  let k = Lvm_vm.Kernel.create () in
  let sp = Lvm_vm.Kernel.create_space k in
  let bank =
    Lvm_tpc.Bank.layout ~branches:1 ~tellers:2 ~accounts:4 ~history:8
  in
  let store =
    Lvm_tpc.Tpca.rvm_store
      (Lvm_rvm.Rvm.create k sp ~size:(Lvm_tpc.Bank.segment_bytes bank))
  in
  Lvm_tpc.Tpca.setup store bank;
  ignore (Lvm_tpc.Tpca.run ~seed:2 store bank ~txns:40);
  (* the invariant holds regardless of the total's sign *)
  Alcotest.(check bool) "balances consistent under negatives" true
    (Lvm_tpc.Tpca.balance_invariant store bank)

let suites =
  [
    ( "determinism",
      [
        Alcotest.test_case "synthetic" `Quick test_synthetic_deterministic;
        Alcotest.test_case "timewarp" `Quick test_timewarp_deterministic;
        Alcotest.test_case "tpc-a" `Quick test_tpca_deterministic;
        Alcotest.test_case "logs bit-identical" `Quick
          test_logs_bit_identical;
        Alcotest.test_case "traces bit-identical" `Quick
          test_trace_bit_identical;
        Alcotest.test_case "tpc-a negative balances" `Quick
          test_tpca_negative_balances;
      ] );
  ]
