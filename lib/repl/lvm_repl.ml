open Lvm_vm
module Ramdisk = Lvm_rvm.Ramdisk
module Rlvm = Lvm_rvm.Rlvm
module Fault = Lvm_fault.Fault
module Plan = Lvm_fault.Plan
module Lvm_error = Lvm.Lvm_error

(* Log-shipping replication with hot-standby promotion.

   The primary is an ordinary [Rlvm] machine; its durable WAL byte
   stream doubles as the replication stream. Positions are *logical*
   (cumulative) offsets: each node keeps [base], the logical offset of
   physical log byte 0, advanced by [Ramdisk.set_on_truncate] whenever
   the WAL is recycled, so the stream survives recycling. The primary
   ships whole WAL records — the forced ("sealed") prefix plus a
   bounded [tail_bytes] window of the still-unforced active tail — to
   each replica over a simulated faulty transport, driven by the seeded
   fault [Plan] at the [Net_frame]/[Net_ack] sites, so every schedule
   is deterministic and replayable.

   Replicas append frames verbatim to their own RAM disk and serve
   committed reads through the ordinary recovery path
   ([Ramdisk.recovered_image]) without touching the primary's commit
   path. Acks carry the replica's applied watermark; the primary's
   low-water rule — installed as the WAL's truncate gate — never lets
   the disk recycle bytes an attached replica has not acked. A
   heartbeat failure detector with capped exponential backoff drives
   replica reconnection (Hello) and primary go-back-N retransmission;
   a replica that fell behind a recycled stream, restarted, or lived
   through a failover is caught up with a full-state Resync frame.

   Promotion (harness-driven: the crash sweep kills the primary
   mid-stream) picks the standby with the highest applied watermark,
   folds its received log into its image — dropping any uncommitted
   tail, i.e. transactions of the dead primary that never committed —
   recovers its [Rlvm] from that state and bumps the cluster epoch.
   Epoch fencing discards stale in-flight frames, and surviving
   replicas re-attach to the new primary (resyncing when their history
   diverges). *)

module Config = struct
  type t = {
    size : int;  (** replicated segment bytes (keys = size/4 words) *)
    log_pages : int;
    group : int;  (** group-commit batch on the primary *)
    replicas : int;
    frame_bytes : int;  (** soft cap on a Data frame's payload *)
    tail_bytes : int;  (** unforced active-tail window shipped ahead *)
    latency : int;  (** transport delivery latency, ticks *)
    heartbeat_every : int;  (** primary heartbeat period, ticks *)
    timeout : int;  (** failure-detector / retransmit timeout, ticks *)
    backoff_cap : int;  (** max backoff multiplier *)
    detach_after : int;  (** primary detaches a silent replica, ticks *)
    obs : Lvm_obs.Ctx.t option;
  }

  let default =
    { size = 256; log_pages = 8; group = 1; replicas = 2; frame_bytes = 512;
      tail_bytes = 4096; latency = 1; heartbeat_every = 4; timeout = 12;
      backoff_cap = 8; detach_after = 96; obs = None }
end

module Frame = struct
  type t =
    | Data of { epoch : int; pos : int; payload : Bytes.t; forced : int }
        (** Whole WAL records at logical stream offset [pos]; [forced]
            is the primary's durable (sealed) watermark. *)
    | Heartbeat of { epoch : int; stream_end : int; forced : int }
    | Resync of { epoch : int; base : int; image : Bytes.t; log : Bytes.t }
        (** Full-state catch-up: replace image and log, restart the
            stream at [base + length log]. *)
    | Ack of { replica : int; epoch : int; upto : int }
    | Hello of { replica : int; epoch : int; from : int }

  let kind_name = function
    | Data _ -> "data"
    | Heartbeat _ -> "heartbeat"
    | Resync _ -> "resync"
    | Ack _ -> "ack"
    | Hello _ -> "hello"
end

(* {1 The faulty transport}

   One unidirectional link per (direction, replica): data links carry
   primary->replica frames ([Net_frame] site), ack links carry
   replica->primary frames ([Net_ack] site). Delivery is a priority
   queue on (deliver_at, order); faults injected by the plan at send
   time drop, delay, duplicate or reorder the frame. Iteration order
   over links and frames is fixed, so a fixed plan seed yields a
   byte-identical schedule. *)

module Transport = struct
  type packet = { deliver_at : int; order : int; frame : Frame.t }

  type t = {
    latency : int;
    mutable plan : Plan.t option;
    links : packet list ref array;
    mutable next_order : int;
    c_sent : Lvm_obs.Counter.counter;
    c_delivered : Lvm_obs.Counter.counter;
    c_dropped : Lvm_obs.Counter.counter;
    c_delayed : Lvm_obs.Counter.counter;
    c_duped : Lvm_obs.Counter.counter;
    c_reordered : Lvm_obs.Counter.counter;
  }

  let create ~obs ~latency ~links =
    let c name = Lvm_obs.Ctx.counter obs ("repl." ^ name) in
    { latency; plan = None;
      links = Array.init links (fun _ -> ref []);
      next_order = 0;
      c_sent = c "frames_sent"; c_delivered = c "frames_delivered";
      c_dropped = c "frames_dropped"; c_delayed = c "frames_delayed";
      c_duped = c "frames_duped"; c_reordered = c "frames_reordered" }

  let set_plan t p = t.plan <- p

  let enqueue t ~link ~deliver_at ?order frame =
    let order =
      match order with
      | Some o -> o
      | None ->
        let o = t.next_order in
        t.next_order <- o + 1;
        o
    in
    let q = t.links.(link) in
    q := { deliver_at; order; frame } :: !q

  let send t ~link ~site ~now frame =
    Lvm_obs.Counter.incr t.c_sent;
    let fault =
      match t.plan with
      | None -> None
      | Some p -> Plan.check p ~site ~cycle:now
    in
    let at = now + t.latency in
    match fault with
    | Some Fault.Net_drop ->
      (* also the interpretation of any non-transport kind scheduled at
         a transport site: the frame is lost *)
      Lvm_obs.Counter.incr t.c_dropped
    | Some (Fault.Net_delay { ticks }) ->
      Lvm_obs.Counter.incr t.c_delayed;
      enqueue t ~link ~deliver_at:(at + max 1 ticks) frame
    | Some Fault.Net_dup ->
      Lvm_obs.Counter.incr t.c_duped;
      enqueue t ~link ~deliver_at:at frame;
      enqueue t ~link ~deliver_at:at frame
    | Some Fault.Net_reorder -> (
      Lvm_obs.Counter.incr t.c_reordered;
      (* overtake everything still in flight on this link; with an
         empty pipe there is nothing to pass, so degrade to a one-tick
         delay (it may still swap with the next send) *)
      match !(t.links.(link)) with
      | [] -> enqueue t ~link ~deliver_at:(at + 1) frame
      | packets ->
        let min_at =
          List.fold_left (fun a p -> min a p.deliver_at) max_int packets
        in
        let min_order =
          List.fold_left (fun a p -> min a p.order) max_int packets
        in
        enqueue t ~link ~deliver_at:(min min_at at)
          ~order:(min_order - 1) frame)
    | Some _ -> Lvm_obs.Counter.incr t.c_dropped
    | None -> enqueue t ~link ~deliver_at:at frame

  (* Frames whose delivery time has come, in (deliver_at, order) order. *)
  let pop t ~link ~now =
    let q = t.links.(link) in
    let due, rest =
      List.partition (fun p -> p.deliver_at <= now) !q
    in
    q := rest;
    let due =
      List.sort
        (fun a b ->
          match compare a.deliver_at b.deliver_at with
          | 0 -> compare a.order b.order
          | c -> c)
        due
    in
    List.iter (fun _ -> Lvm_obs.Counter.incr t.c_delivered) due;
    List.map (fun p -> p.frame) due

  let flush t ~link = t.links.(link) := []
end

(* {1 Nodes}

   Every cluster member is a full machine: its own kernel, [Rlvm] and
   RAM disk. [base] is the logical stream offset of physical log byte 0
   of its disk, kept current across WAL recycling by the on-truncate
   observer. *)

type node = {
  nk : Kernel.t;
  nr : Rlvm.t;
  ndisk : Ramdisk.t;
  mutable nbase : int;
}

type peer = {
  (* primary-side replication state for one replica *)
  mutable attached : bool;
  mutable sent : int;  (* logical stream bytes shipped *)
  mutable acked : int;  (* logical stream bytes acked *)
  mutable last_tx : int;
  mutable last_rx : int;
  mutable last_progress : int;
  mutable backoff : int;
}

type replica = {
  id : int;
  rnode : node;
  mutable repoch : int;
  mutable alive : bool;
  mutable connected : bool;
  mutable last_heard : int;
  mutable next_hello : int;
  mutable rbackoff : int;
}

type t = {
  cfg : Config.t;
  obs : Lvm_obs.Ctx.t;
  net : Transport.t;
  replicas : replica array;
  mutable peers : peer array;
  mutable primary : node option;  (* None between a kill and a promote *)
  mutable promoted : int option;  (* replica currently serving as primary *)
  mutable epoch : int;
  mutable now : int;
  mutable killed_at : int option;
  c_retrans : Lvm_obs.Counter.counter;
  c_fenced : Lvm_obs.Counter.counter;
  c_acks : Lvm_obs.Counter.counter;
  c_heartbeats : Lvm_obs.Counter.counter;
  c_hellos : Lvm_obs.Counter.counter;
  c_resyncs : Lvm_obs.Counter.counter;
  c_disconnects : Lvm_obs.Counter.counter;
  c_detaches : Lvm_obs.Counter.counter;
  c_promotions : Lvm_obs.Counter.counter;
  g_stream_end : Lvm_obs.Counter.counter;
  g_min_acked : Lvm_obs.Counter.counter;
  g_lag : Lvm_obs.Counter.counter;
  h_lag : Lvm_obs.Histogram.t;
  h_failover : Lvm_obs.Histogram.t;
  h_retrans : Lvm_obs.Histogram.t;
}

let range op what value =
  Error.raise_ (Error.Out_of_range { op; what; value })

let data_link _t i = i
let ack_link t i = t.cfg.Config.replicas + i

let log_end_of n = n.nbase + Ramdisk.log_bytes n.ndisk
let forced_end_of n = n.nbase + Ramdisk.forced_bytes n.ndisk
let applied_of rep = log_end_of rep.rnode

(* The ship horizon: the sealed (forced) stream plus a bounded window
   of the active, still-unforced tail. *)
let ship_end_of t n =
  min (log_end_of n) (forced_end_of n + t.cfg.Config.tail_bytes)

let make_node t =
  let k = Kernel.create ~obs:t.obs () in
  let sp = Kernel.create_space k in
  let r =
    Rlvm.make
      { Rlvm.Config.log_pages = t.cfg.Config.log_pages;
        max_log_pages = None; group = t.cfg.Config.group }
      k sp ~size:t.cfg.Config.size
  in
  let n = { nk = k; nr = r; ndisk = Rlvm.disk r; nbase = 0 } in
  Ramdisk.set_on_truncate n.ndisk
    (Some (fun ~removed -> n.nbase <- n.nbase + removed));
  n

(* A standby is a live replica not currently serving as the primary. *)
let is_standby t rep = rep.alive && t.promoted <> Some rep.id

(* The low-water rule: recycling is allowed only once every attached
   standby has acked everything the log currently holds. *)
let install_gate t n =
  Ramdisk.set_truncate_gate n.ndisk
    (Some
       (fun () ->
         let log_end = log_end_of n in
         let ok = ref true in
         Array.iteri
           (fun i p ->
             if is_standby t t.replicas.(i) && p.attached
                && p.acked < log_end
             then ok := false)
           t.peers;
         !ok))

let fresh_peers t ~base =
  Array.init t.cfg.Config.replicas (fun _ ->
      { attached = false; sent = base; acked = base; last_tx = t.now;
        last_rx = t.now; last_progress = t.now; backoff = 1 })

let create ?plan (cfg : Config.t) =
  if cfg.Config.size <= 0 || cfg.Config.size mod 4 <> 0 then
    Error.raise_
      (Error.Invalid
         { op = "Repl.create";
           reason = "size must be a positive word multiple" });
  if cfg.Config.replicas < 1 then
    range "Repl.create" "replicas" cfg.Config.replicas;
  if cfg.Config.frame_bytes < 1 then
    range "Repl.create" "frame_bytes" cfg.Config.frame_bytes;
  if cfg.Config.tail_bytes < 0 then
    range "Repl.create" "tail_bytes" cfg.Config.tail_bytes;
  if cfg.Config.latency < 0 then
    range "Repl.create" "latency" cfg.Config.latency;
  if cfg.Config.heartbeat_every < 1 then
    range "Repl.create" "heartbeat_every" cfg.Config.heartbeat_every;
  if cfg.Config.timeout < 1 then
    range "Repl.create" "timeout" cfg.Config.timeout;
  if cfg.Config.backoff_cap < 1 then
    range "Repl.create" "backoff_cap" cfg.Config.backoff_cap;
  if cfg.Config.detach_after < cfg.Config.timeout then
    range "Repl.create" "detach_after" cfg.Config.detach_after;
  let obs =
    match cfg.Config.obs with Some o -> o | None -> Lvm_obs.Ctx.create ()
  in
  let net =
    Transport.create ~obs ~latency:cfg.Config.latency
      ~links:(2 * cfg.Config.replicas)
  in
  Transport.set_plan net plan;
  let c name = Lvm_obs.Ctx.counter obs ("repl." ^ name) in
  let h name =
    Lvm_obs.Ctx.histogram obs ~name:("repl." ^ name)
      ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:20)
  in
  let t =
    { cfg; obs; net;
      replicas = [||]; peers = [||]; primary = None; promoted = None;
      epoch = 1; now = 0; killed_at = None;
      c_retrans = c "retransmits"; c_fenced = c "frames_fenced";
      c_acks = c "acks"; c_heartbeats = c "heartbeats";
      c_hellos = c "hellos"; c_resyncs = c "resyncs";
      c_disconnects = c "disconnects"; c_detaches = c "detaches";
      c_promotions = c "promotions";
      g_stream_end = c "stream_end"; g_min_acked = c "min_acked";
      g_lag = c "lag_bytes";
      h_lag = h "lag_bytes"; h_failover = h "failover_ticks";
      h_retrans = h "retransmit_bytes" }
  in
  let replicas =
    Array.init cfg.Config.replicas (fun id ->
        { id; rnode = make_node t; repoch = t.epoch; alive = true;
          connected = true; last_heard = 0; next_hello = 0; rbackoff = 1 })
  in
  let t = { t with replicas } in
  let p = make_node t in
  t.primary <- Some p;
  t.peers <- fresh_peers t ~base:0;
  Array.iter (fun peer -> peer.attached <- true) t.peers;
  install_gate t p;
  t

let set_net_plan t plan = Transport.set_plan t.net plan
let obs t = t.obs
let epoch t = t.epoch
let now t = t.now
let promoted t = t.promoted
let has_primary t = t.primary <> None
let keys t = t.cfg.Config.size / 4

let primary_node t =
  match t.primary with
  | Some n -> n
  | None ->
    Error.raise_
      (Error.Invalid { op = "Repl.primary"; reason = "primary is dead" })

let primary_kernel t = (primary_node t).nk
let replica_kernel t i = t.replicas.(i).rnode.nk

(* {1 Serving} *)

let check_key t ~op key =
  if key < 0 || key >= keys t then range op "key" key

let exec t ~writes =
  match
    List.find_opt (fun (key, _) -> key < 0 || key >= keys t) writes
  with
  | Some (key, _) -> Error (Lvm_error.Invalid_key { key })
  | None ->
    Lvm_error.guard @@ fun () ->
    let p = primary_node t in
    Rlvm.begin_txn p.nr;
    List.iter (fun (key, v) -> Rlvm.write_word p.nr ~off:(key * 4) v) writes;
    Rlvm.commit p.nr

let read t key =
  check_key t ~op:"Repl.read" key;
  let p = primary_node t in
  Rlvm.read_word p.nr ~off:(key * 4)

(* Committed read off a standby: the recovered image, never the
   primary's commit path. *)
let replica_read t i key =
  check_key t ~op:"Repl.replica_read" key;
  let rep = t.replicas.(i) in
  let img = Ramdisk.recovered_image rep.rnode.ndisk in
  Int32.to_int (Bytes.get_int32_le img (key * 4)) land 0xFFFFFFFF

(* {1 The protocol pump} *)

let get32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

(* Physical end of the record starting at physical [pos]: WAL header is
   24 bytes with the payload length at +16 (see [Ramdisk]). *)
let record_end_phys disk ~pos =
  let hdr = Ramdisk.log_read disk ~off:pos ~len:24 in
  pos + 24 + get32 hdr 16

(* Largest record-aligned physical end in (start, limit], soft-capped
   at [frame_bytes] but always admitting at least one whole record. *)
let chunk_end_phys disk ~start ~limit ~frame_bytes =
  let soft = min limit (start + frame_bytes) in
  let rec go e =
    if e >= limit || e + 24 > limit then e
    else
      let ne = record_end_phys disk ~pos:e in
      if ne <= soft || (e = start && ne <= limit) then go ne else e
  in
  go start

let send_resync t rep ~link =
  let p = primary_node t in
  let image = Ramdisk.image_read p.ndisk ~off:0 ~len:t.cfg.Config.size in
  let limit = ship_end_of t p - p.nbase in
  let limit =
    (* never split a record: back down to a record boundary *)
    chunk_end_phys p.ndisk ~start:0 ~limit ~frame_bytes:limit
  in
  let log = Ramdisk.log_read p.ndisk ~off:0 ~len:limit in
  Lvm_obs.Counter.incr t.c_resyncs;
  Transport.send t.net ~link ~site:Fault.Net_frame ~now:t.now
    (Frame.Resync { epoch = t.epoch; base = p.nbase; image; log });
  let peer = t.peers.(rep.id) in
  peer.attached <- true;
  peer.sent <- p.nbase + limit;
  peer.last_tx <- t.now;
  peer.last_progress <- t.now

let primary_handle_ack t frame =
  match frame with
  | Frame.Ack { replica; epoch; upto } ->
    Lvm_obs.Counter.incr t.c_acks;
    if epoch <> t.epoch then Lvm_obs.Counter.incr t.c_fenced
    else begin
      let peer = t.peers.(replica) in
      peer.last_rx <- t.now;
      if peer.attached && upto > peer.acked then begin
        peer.acked <- upto;
        peer.last_progress <- t.now;
        peer.backoff <- 1
      end
    end
  | Frame.Hello { replica; epoch; from } ->
    let peer = t.peers.(replica) in
    peer.last_rx <- t.now;
    let p = primary_node t in
    let rep = t.replicas.(replica) in
    if epoch < t.epoch || from < p.nbase || from > log_end_of p then
      (* stale epoch, recycled-past bytes, or divergent history (a
         standby that outran a promoted primary): full resync *)
      send_resync t rep ~link:(data_link t replica)
    else begin
      peer.attached <- true;
      peer.sent <- from;
      peer.acked <- min peer.acked from;
      peer.last_progress <- t.now;
      peer.backoff <- 1
    end
  | Frame.Data _ | Frame.Heartbeat _ | Frame.Resync _ -> ()

let primary_tick t =
  match t.primary with
  | None -> ()
  | Some p ->
    let cfg = t.cfg in
    (* 1. drain ack links *)
    Array.iter
      (fun rep ->
        List.iter (primary_handle_ack t)
          (Transport.pop t.net ~link:(ack_link t rep.id) ~now:t.now))
      t.replicas;
    (* 2. recycle: the commit path can never truncate under the gate
       (its own fresh bytes are unacked by construction), so the WAL is
       recycled here, once the acks that free the low-water mark have
       been drained *)
    if Ramdisk.should_truncate p.ndisk then Ramdisk.truncate p.ndisk;
    (* 3. ship / heartbeat / retransmit per peer *)
    let ship_end = ship_end_of t p in
    Array.iter
      (fun rep ->
        let i = rep.id in
        let peer = t.peers.(i) in
        if t.promoted <> Some i then begin
          (* retransmit: no ack progress for a full (backed-off)
             timeout window — go back to the acked watermark *)
          if peer.attached && peer.acked < peer.sent
             && t.now - peer.last_progress
                > cfg.Config.timeout * peer.backoff
          then begin
            Lvm_obs.Counter.incr t.c_retrans;
            Lvm_obs.Histogram.observe t.h_retrans (peer.sent - peer.acked);
            peer.sent <- peer.acked;
            peer.backoff <- min (peer.backoff * 2) cfg.Config.backoff_cap;
            peer.last_progress <- t.now
          end;
          (* detach a replica that has been silent for long enough:
             its unacked bytes stop holding up WAL recycling, and it
             will resync when it comes back *)
          if peer.attached && t.now - peer.last_rx > cfg.Config.detach_after
          then begin
            peer.attached <- false;
            Lvm_obs.Counter.incr t.c_detaches
          end;
          if peer.attached && peer.sent < ship_end then begin
            let start = peer.sent - p.nbase in
            let stop =
              chunk_end_phys p.ndisk ~start ~limit:(ship_end - p.nbase)
                ~frame_bytes:cfg.Config.frame_bytes
            in
            if stop > start then begin
              let payload =
                Ramdisk.log_read p.ndisk ~off:start ~len:(stop - start)
              in
              if peer.acked = peer.sent then peer.last_progress <- t.now;
              Transport.send t.net ~link:(data_link t i)
                ~site:Fault.Net_frame ~now:t.now
                (Frame.Data
                   { epoch = t.epoch; pos = peer.sent; payload;
                     forced = forced_end_of p });
              peer.sent <- p.nbase + stop;
              peer.last_tx <- t.now
            end
          end
          else if peer.attached
                  && t.now - peer.last_tx >= cfg.Config.heartbeat_every
          then begin
            (* heartbeats go only to attached peers: a detached replica
               must win re-attachment with a Hello, so its detector has
               to keep firing — feeding it liveness would wedge both
               sides into a mutual wait *)
            Lvm_obs.Counter.incr t.c_heartbeats;
            Transport.send t.net ~link:(data_link t i)
              ~site:Fault.Net_frame ~now:t.now
              (Frame.Heartbeat
                 { epoch = t.epoch; stream_end = ship_end;
                   forced = forced_end_of p });
            peer.last_tx <- t.now
          end
        end)
      t.replicas;
    (* 4. gauges *)
    let min_acked =
      Array.to_list t.peers
      |> List.filteri (fun i _ -> is_standby t t.replicas.(i))
      |> List.filter (fun peer -> peer.attached)
      |> List.fold_left (fun acc peer -> min acc peer.acked) max_int
    in
    let min_acked = if min_acked = max_int then ship_end else min_acked in
    Lvm_obs.Counter.set t.g_stream_end ship_end;
    Lvm_obs.Counter.set t.g_min_acked min_acked;
    Lvm_obs.Counter.set t.g_lag (max 0 (ship_end - min_acked));
    Lvm_obs.Histogram.observe t.h_lag (max 0 (ship_end - min_acked))

let send_ack t rep =
  Transport.send t.net ~link:(ack_link t rep.id) ~site:Fault.Net_ack
    ~now:t.now
    (Frame.Ack
       { replica = rep.id; epoch = rep.repoch; upto = applied_of rep })

let replica_heard t rep =
  rep.last_heard <- t.now;
  rep.connected <- true;
  rep.rbackoff <- 1

(* A frame stamped with a newer epoch means a failover happened while
   we were not looking: adopt the epoch and re-attach through Hello so
   the new primary can resync us if our history diverged. *)
let adopt_epoch t rep epoch =
  rep.repoch <- epoch;
  rep.connected <- false;
  rep.next_hello <- t.now

let replica_handle t rep frame =
  match frame with
  | Frame.Data { epoch; pos; payload; forced = _ } ->
    if epoch < rep.repoch then Lvm_obs.Counter.incr t.c_fenced
    else if epoch > rep.repoch then adopt_epoch t rep epoch
    else begin
      replica_heard t rep;
      let applied = applied_of rep in
      if pos = applied then begin
        Ramdisk.log_append_raw rep.rnode.ndisk payload;
        (* replicas recycle their own copy of the stream independently
           (no gate: nothing downstream of a standby by default) *)
        if Ramdisk.should_truncate rep.rnode.ndisk then
          Ramdisk.truncate rep.rnode.ndisk
      end;
      (* duplicate (pos < applied) and gap (pos > applied) frames are
         dropped; the cumulative ack below tells the primary where we
         really are, and its timeout resends the missing window *)
      send_ack t rep
    end
  | Frame.Heartbeat { epoch; stream_end = _; forced = _ } ->
    if epoch < rep.repoch then Lvm_obs.Counter.incr t.c_fenced
    else if epoch > rep.repoch then adopt_epoch t rep epoch
    else begin
      replica_heard t rep;
      send_ack t rep
    end
  | Frame.Resync { epoch; base; image; log } ->
    if epoch < rep.repoch then Lvm_obs.Counter.incr t.c_fenced
    else begin
      rep.repoch <- epoch;
      replica_heard t rep;
      Ramdisk.load_state rep.rnode.ndisk ~image ~log;
      rep.rnode.nbase <- base;
      send_ack t rep
    end
  | Frame.Ack _ | Frame.Hello _ -> ()

let replica_tick t rep =
  if is_standby t rep then begin
    List.iter (replica_handle t rep)
      (Transport.pop t.net ~link:(data_link t rep.id) ~now:t.now);
    (* heartbeat failure detector *)
    if rep.connected && t.now - rep.last_heard > t.cfg.Config.timeout
    then begin
      rep.connected <- false;
      rep.rbackoff <- 1;
      rep.next_hello <- t.now;
      Lvm_obs.Counter.incr t.c_disconnects
    end;
    (* reconnect with capped exponential backoff *)
    if (not rep.connected) && t.now >= rep.next_hello then begin
      Lvm_obs.Counter.incr t.c_hellos;
      Transport.send t.net ~link:(ack_link t rep.id) ~site:Fault.Net_ack
        ~now:t.now
        (Frame.Hello
           { replica = rep.id; epoch = rep.repoch; from = applied_of rep });
      rep.next_hello <- t.now + (t.cfg.Config.timeout * rep.rbackoff);
      rep.rbackoff <- min (rep.rbackoff * 2) t.cfg.Config.backoff_cap
    end
  end

let tick t =
  primary_tick t;
  Array.iter (fun rep -> replica_tick t rep) t.replicas;
  t.now <- t.now + 1

let step ?(ticks = 1) t =
  if ticks < 0 then range "Repl.step" "ticks" ticks;
  for _ = 1 to ticks do tick t done

(* {1 Failure and promotion} *)

let kill_primary t =
  (match t.primary with
  | None -> Error.raise_ (Error.Invalid { op = "Repl.kill_primary";
                                          reason = "primary already dead" })
  | Some p -> Ramdisk.set_truncate_gate p.ndisk None);
  (match t.promoted with
  | Some i -> t.replicas.(i).alive <- false
  | None -> ());
  t.primary <- None;
  t.killed_at <- Some t.now

let kill_replica t i =
  if t.promoted = Some i then
    Error.raise_
      (Error.Invalid { op = "Repl.kill_replica";
                       reason = "replica is the serving primary" });
  t.replicas.(i).alive <- false

(* Restart = the replica process comes back with its disk intact and
   its volatile protocol state (epoch included) gone: it re-Hellos and
   the primary decides between fast catch-up and full resync. *)
let restart_replica t i =
  let rep = t.replicas.(i) in
  if t.promoted = Some i then
    Error.raise_
      (Error.Invalid { op = "Repl.restart_replica";
                       reason = "replica is the serving primary" });
  ignore (Ramdisk.recover rep.rnode.ndisk);
  rep.alive <- true;
  rep.repoch <- 0;
  rep.connected <- false;
  rep.rbackoff <- 1;
  rep.next_hello <- t.now;
  Transport.flush t.net ~link:(data_link t i)

type promotion = {
  new_primary : int;
  new_epoch : int;
  applied_bytes : int;  (** logical stream bytes the winner had applied *)
  folded_bytes : int;  (** received log bytes folded into its image *)
  failover_ticks : int;  (** ticks from the kill to serving *)
}

let promotion_to_string p =
  Printf.sprintf
    "promoted=%d epoch=%d applied=%d folded=%d failover_ticks=%d"
    p.new_primary p.new_epoch p.applied_bytes p.folded_bytes p.failover_ticks

let promote t =
  if t.primary <> None then
    Error.raise_
      (Error.Invalid { op = "Repl.promote";
                       reason = "primary is still serving" });
  let best = ref None in
  Array.iter
    (fun rep ->
      if rep.alive then
        match !best with
        | Some b when applied_of t.replicas.(b) >= applied_of rep -> ()
        | _ -> best := Some rep.id)
    t.replicas;
  match !best with
  | None ->
    Error.raise_
      (Error.Invalid { op = "Repl.promote"; reason = "no live replica" })
  | Some i ->
    let rep = t.replicas.(i) in
    let n = rep.rnode in
    t.epoch <- t.epoch + 1;
    rep.repoch <- t.epoch;
    let applied_bytes = applied_of rep in
    (* Fold the received stream into the image: committed transactions
       apply, the uncommitted tail — transactions of the dead primary
       that never committed — is dropped, so fresh transaction ids can
       never resurrect stale Data records. *)
    let folded = Ramdisk.log_bytes n.ndisk in
    let image = Ramdisk.recovered_image n.ndisk in
    Ramdisk.load_state n.ndisk ~image ~log:Bytes.empty;
    n.nbase <- n.nbase + folded;
    ignore (Rlvm.recover n.nr);
    t.promoted <- Some i;
    t.primary <- Some n;
    t.peers <- fresh_peers t ~base:n.nbase;
    install_gate t n;
    Lvm_obs.Counter.incr t.c_promotions;
    let failover_ticks =
      match t.killed_at with Some at -> t.now - at | None -> 0
    in
    Lvm_obs.Histogram.observe t.h_failover failover_ticks;
    t.killed_at <- None;
    { new_primary = i; new_epoch = t.epoch; applied_bytes;
      folded_bytes = folded; failover_ticks }

(* {1 Harness accessors} *)

let stream_end t = log_end_of (primary_node t)
let replica_applied t i = applied_of t.replicas.(i)
let replica_acked t i = t.peers.(i).acked
let replica_alive t i = t.replicas.(i).alive
let replica_attached t i = t.peers.(i).attached
let replica_connected t i = t.replicas.(i).connected

(* Re-run crash recovery on the serving primary; committed effects are
   durable and uncommitted ones invisible, so this must be a no-op
   between transactions (the sweep's double-recovery check). *)
let rerecover t = ignore (Rlvm.recover (primary_node t).nr)

(* {1 Convergence and stats} *)

let converged t =
  match t.primary with
  | None -> false
  | Some p ->
    let log_end = log_end_of p in
    Array.for_all
      (fun rep ->
        (not (is_standby t rep))
        || (applied_of rep = log_end && t.peers.(rep.id).acked = log_end))
      t.replicas

(* Pump the protocol until every live standby has applied and acked the
   whole stream, or [max_ticks] elapse. *)
let sync ?(max_ticks = 10_000) t =
  let rec go budget =
    if converged t then true
    else if budget = 0 then false
    else begin
      tick t;
      go (budget - 1)
    end
  in
  go max_ticks

type replica_stat = {
  rid : int;
  alive : bool;
  connected : bool;
  attached : bool;
  applied : int;
  acked : int;
  lag : int;
}

type stats = {
  s_epoch : int;
  s_now : int;
  s_primary : string;  (** ["p0"], ["r<i>"] after a failover, ["dead"] *)
  s_stream_end : int;
  s_base : int;
  s_min_acked : int;
  s_replicas : replica_stat array;
  frames_sent : int;
  frames_delivered : int;
  frames_dropped : int;
  frames_delayed : int;
  frames_duped : int;
  frames_reordered : int;
  retransmits : int;
  fenced : int;
  acks : int;
  heartbeats : int;
  hellos : int;
  resyncs : int;
  disconnects : int;
  detaches : int;
  promotions : int;
}

let stats t =
  let v c = Lvm_obs.Counter.value c in
  let stream_end, base =
    match t.primary with
    | Some p -> (ship_end_of t p, p.nbase)
    | None -> (0, 0)
  in
  let s_replicas =
    Array.map
      (fun rep ->
        let peer = t.peers.(rep.id) in
        { rid = rep.id; alive = rep.alive; connected = rep.connected;
          attached = peer.attached; applied = applied_of rep;
          acked = peer.acked;
          lag = max 0 (stream_end - peer.acked) })
      t.replicas
  in
  let min_acked =
    Array.fold_left
      (fun acc (s : replica_stat) ->
        if s.attached then min acc s.acked else acc)
      max_int s_replicas
  in
  { s_epoch = t.epoch; s_now = t.now;
    s_primary =
      (match (t.primary, t.promoted) with
      | None, _ -> "dead"
      | Some _, Some i -> Printf.sprintf "r%d" i
      | Some _, None -> "p0");
    s_stream_end = stream_end; s_base = base;
    s_min_acked = (if min_acked = max_int then stream_end else min_acked);
    s_replicas;
    frames_sent = v t.net.Transport.c_sent;
    frames_delivered = v t.net.Transport.c_delivered;
    frames_dropped = v t.net.Transport.c_dropped;
    frames_delayed = v t.net.Transport.c_delayed;
    frames_duped = v t.net.Transport.c_duped;
    frames_reordered = v t.net.Transport.c_reordered;
    retransmits = v t.c_retrans; fenced = v t.c_fenced; acks = v t.c_acks;
    heartbeats = v t.c_heartbeats; hellos = v t.c_hellos;
    resyncs = v t.c_resyncs; disconnects = v t.c_disconnects;
    detaches = v t.c_detaches; promotions = v t.c_promotions }

let stats_to_string s =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "epoch=%d now=%d primary=%s stream_end=%d base=%d min_acked=%d\n"
    s.s_epoch s.s_now s.s_primary s.s_stream_end s.s_base s.s_min_acked;
  Array.iter
    (fun r ->
      Printf.bprintf b
        "  replica %d: alive=%b connected=%b attached=%b applied=%d \
         acked=%d lag=%d\n"
        r.rid r.alive r.connected r.attached r.applied r.acked r.lag)
    s.s_replicas;
  Printf.bprintf b
    "  frames: sent=%d delivered=%d dropped=%d delayed=%d duped=%d \
     reordered=%d retransmits=%d fenced=%d\n"
    s.frames_sent s.frames_delivered s.frames_dropped s.frames_delayed
    s.frames_duped s.frames_reordered s.retransmits s.fenced;
  Printf.bprintf b
    "  control: acks=%d heartbeats=%d hellos=%d resyncs=%d disconnects=%d \
     detaches=%d promotions=%d\n"
    s.acks s.heartbeats s.hellos s.resyncs s.disconnects s.detaches
    s.promotions;
  Buffer.contents b
