(** Log-shipping replication with hot-standby promotion (beyond the
    paper; see [docs/REPLICATION.md]).

    A primary [Lvm_rvm.Rlvm] machine streams its durable WAL — the
    sealed (forced) prefix plus a bounded window of the active tail —
    to replica machines over a simulated faulty transport. Stream
    positions are cumulative logical offsets that survive WAL
    recycling: each node's base is advanced by
    [Lvm_rvm.Ramdisk.set_on_truncate] whenever its log is compacted.
    Replicas append whole records verbatim and serve committed reads
    through the ordinary recovery path ([Ramdisk.recovered_image]);
    they never touch the primary's commit path.

    Robustness machinery, all deterministic under a seeded
    {!Lvm_fault.Plan}:

    - the transport injects drop / delay / duplicate / reorder faults
      at the [Net_frame] and [Net_ack] sites;
    - the primary retransmits go-back-N from the acked watermark on
      ack-progress timeout, with capped exponential backoff;
    - replicas run a heartbeat failure detector and re-Hello with
      capped exponential backoff when the primary goes quiet;
    - the low-water rule: the primary's WAL truncate gate refuses to
      recycle bytes an attached replica has not acked, and a replica
      silent past [detach_after] is detached so it cannot wedge
      recycling forever (it resyncs on return);
    - {!promote} turns the furthest-ahead live standby into the serving
      primary — folding its received log into its image drops any
      uncommitted tail of the dead primary — and bumps the cluster
      epoch; epoch fencing discards stale in-flight frames and
      divergent or lagging peers are caught up with a full-state
      [Resync] frame.

    All [repl.*] counters and histograms live in the cluster's shared
    {!Lvm_obs.Ctx.t}. *)

module Config : sig
  type t = {
    size : int;  (** Replicated segment bytes; keys are [size / 4]. *)
    log_pages : int;  (** Per-node LVM log provision. *)
    group : int;  (** Primary group-commit batch size. *)
    replicas : int;
    frame_bytes : int;
        (** Soft cap on a Data frame payload; a single larger record
            still ships alone (frames always carry whole records). *)
    tail_bytes : int;
        (** How many unforced active-tail bytes ship ahead of the
            sealed prefix. *)
    latency : int;  (** Transport delivery latency, ticks. *)
    heartbeat_every : int;  (** Primary heartbeat period, ticks. *)
    timeout : int;
        (** Failure-detector and retransmission timeout, ticks. *)
    backoff_cap : int;  (** Maximum backoff multiplier. *)
    detach_after : int;
        (** Primary detaches a replica silent this long (must be at
            least [timeout]). *)
    obs : Lvm_obs.Ctx.t option;
        (** Observability context shared by every node and the
            transport (default: a fresh one). *)
  }

  val default : t
  (** [{ size = 256; log_pages = 8; group = 1; replicas = 2;
        frame_bytes = 512; tail_bytes = 4096; latency = 1;
        heartbeat_every = 4; timeout = 12; backoff_cap = 8;
        detach_after = 96; obs = None }] *)
end

(** Protocol frames (see [docs/REPLICATION.md] for the full rules). *)
module Frame : sig
  type t =
    | Data of { epoch : int; pos : int; payload : Bytes.t; forced : int }
        (** Whole WAL records at logical stream offset [pos]. *)
    | Heartbeat of { epoch : int; stream_end : int; forced : int }
    | Resync of { epoch : int; base : int; image : Bytes.t; log : Bytes.t }
        (** Full-state catch-up: replace image and log, restart the
            stream at [base + length log]. *)
    | Ack of { replica : int; epoch : int; upto : int }
        (** Cumulative: the replica holds every byte below [upto]. *)
    | Hello of { replica : int; epoch : int; from : int }
        (** (Re-)attach request: resume the stream at [from]. *)

  val kind_name : t -> string
end

type t

val create : ?plan:Lvm_fault.Plan.t -> Config.t -> t
(** Boot a cluster: one primary plus [Config.replicas] standbys, every
    peer attached and in sync at stream offset 0. [plan] drives the
    transport's fault sites (also settable later with
    {!set_net_plan}). Raises typed [Lvm_vm.Error.Lvm_error] on invalid
    configuration. *)

val set_net_plan : t -> Lvm_fault.Plan.t option -> unit

val obs : t -> Lvm_obs.Ctx.t
val epoch : t -> int
val now : t -> int

val keys : t -> int
val has_primary : t -> bool

val promoted : t -> int option
(** The replica currently serving as primary, after a failover. *)

val primary_kernel : t -> Lvm_vm.Kernel.t
(** Raises if the primary is dead. *)

val replica_kernel : t -> int -> Lvm_vm.Kernel.t

val exec :
  t -> writes:(int * int) list -> (unit, Lvm.Lvm_error.t) result
(** One transaction on the serving primary: write each [(key, value)]
    and commit. Does not pump the protocol — call {!tick}. *)

val read : t -> int -> int
(** Committed word on the serving primary. *)

val replica_read : t -> int -> int -> int
(** [replica_read t i key]: committed word as replica [i]'s recovery
    path reconstructs it — its answer if it were promoted now. *)

val tick : t -> unit
(** Advance the simulated network one tick: the primary drains acks,
    ships/retransmits/heartbeats, replicas apply delivered frames, run
    their failure detector, and ack. *)

val step : ?ticks:int -> t -> unit

val sync : ?max_ticks:int -> t -> bool
(** Pump {!tick} until every live standby has applied and acked the
    primary's whole stream, or [max_ticks] (default 10000) elapse;
    [true] on convergence. *)

val converged : t -> bool

(** {1 Failure and promotion} *)

val kill_primary : t -> unit
(** Fail-stop the serving primary (the original node, or a previously
    promoted replica). Its in-flight frames stay in the transport and
    are epoch-fenced after the next promotion. *)

val kill_replica : t -> int -> unit
val restart_replica : t -> int -> unit
(** The replica comes back with its disk intact but its volatile
    protocol state (epoch included) gone; it re-Hellos and the primary
    chooses fast catch-up or full resync. *)

type promotion = {
  new_primary : int;
  new_epoch : int;
  applied_bytes : int;  (** Logical stream bytes the winner had applied. *)
  folded_bytes : int;  (** Received log bytes folded into its image. *)
  failover_ticks : int;  (** Ticks from {!kill_primary} to serving. *)
}

val promote : t -> promotion
(** Promote the live standby with the highest applied watermark to
    serving primary: fold its received log into its image (committed
    transactions apply; the dead primary's uncommitted tail is
    dropped), recover its RVM from that state, bump the epoch and
    start fresh peer state for the remaining standbys. Raises if the
    primary is still alive or no live standby exists. *)

val promotion_to_string : promotion -> string

(** {1 Watermarks}

    Logical (cumulative) stream offsets, for harnesses and tests. *)

val stream_end : t -> int
(** The serving primary's log end. *)

val replica_applied : t -> int -> int
val replica_acked : t -> int -> int
val replica_alive : t -> int -> bool
val replica_attached : t -> int -> bool
val replica_connected : t -> int -> bool

val rerecover : t -> unit
(** Re-run crash recovery on the serving primary. Committed effects are
    durable and uncommitted ones invisible, so between transactions this
    must be a no-op — the crash sweep's double-recovery check. *)

(** {1 Stats} *)

type replica_stat = {
  rid : int;
  alive : bool;
  connected : bool;  (** Replica-side failure-detector view. *)
  attached : bool;  (** Primary-side: counted by the recycling gate. *)
  applied : int;
  acked : int;
  lag : int;
}

type stats = {
  s_epoch : int;
  s_now : int;
  s_primary : string;  (** ["p0"], ["r<i>"] after a failover, ["dead"]. *)
  s_stream_end : int;
  s_base : int;
  s_min_acked : int;
  s_replicas : replica_stat array;
  frames_sent : int;
  frames_delivered : int;
  frames_dropped : int;
  frames_delayed : int;
  frames_duped : int;
  frames_reordered : int;
  retransmits : int;
  fenced : int;
  acks : int;
  heartbeats : int;
  hellos : int;
  resyncs : int;
  disconnects : int;
  detaches : int;
  promotions : int;
}

val stats : t -> stats
val stats_to_string : stats -> string
