open Lvm_machine
open Lvm_vm

type protocol = Twin_diff | Log_based | Snooped

type release_stats = {
  words_sent : int;
  messages : int;
  release_cycles : int;
}

(* Wire model: per-message fixed overhead and per-word cost, charged to
   the producer. *)
let message_overhead = 400
let wire_per_word = 4

(* Twin/diff scan cost per word compared (load + compare). *)
let diff_scan_per_word = 3

type t = {
  k : Kernel.t;
  space : Address_space.t;
  protocol : protocol;
  seg : Segment.t; (* producer's shared segment *)
  region : Region.t;
  base : int;
  size : int;
  consumer : Segment.t; (* the remote replica *)
  twins : Segment.t; (* twin pages, one slot per segment page *)
  mutable twinned : int list; (* page indices twinned this section *)
  ls : Segment.t option;
}

let create k space ~size protocol =
  if size <= 0 || size mod Addr.word_size <> 0 then
    invalid_arg "Shared_segment.create: bad size";
  let seg = Kernel.create_segment k ~size in
  let region = Kernel.create_region k seg in
  let consumer = Kernel.create_segment k ~size in
  let twins = Kernel.create_segment k ~size in
  let ls =
    match protocol with
    | Log_based | Snooped ->
      let ls = Kernel.create_log_segment k ~size:(32 * Addr.page_size) in
      Kernel.set_region_log k region (Some ls);
      Some ls
    | Twin_diff -> None
  in
  let base = Kernel.bind k space region in
  let t =
    { k; space; protocol; seg; region; base; size; consumer; twins;
      twinned = []; ls }
  in
  (match protocol with
  | Snooped ->
    (* the consistency snoop: watch the logging bus traffic and mirror
       each update into the replica, off the producer's critical path *)
    let logger = Machine.logger (Kernel.machine k) in
    let previous = ref (fun ~paddr:_ ~vaddr:_ ~size:_ ~value:_ -> ()) in
    let observe ~paddr ~vaddr ~size ~value =
      !previous ~paddr ~vaddr ~size ~value;
      match Kernel.owner_of_frame k ~frame:(Addr.page_number paddr) with
      | Some (owner, page) when Segment.id owner = Segment.id t.seg ->
        let off = (page * Addr.page_size) + Addr.page_offset paddr in
        if off + size <= t.size then
          Kernel.seg_write_raw k t.consumer ~off ~size value
      | Some _ | None -> ()
    in
    Logger.set_snoop_observer logger (Some observe)
  | Twin_diff ->
    Kernel.set_protect_fault_handler k
      (Some
         (fun _sp r ~vaddr ->
           if Region.id r = Region.id region then begin
             (* first write this section: twin the page *)
             let page = (vaddr - t.base) / Addr.page_size in
             let src = Kernel.paddr_of t.k t.seg ~off:(page * Addr.page_size)
             in
             let dst =
               Kernel.paddr_of t.k t.twins ~off:(page * Addr.page_size)
             in
             Machine.bcopy (Kernel.machine t.k) ~src ~dst ~len:Addr.page_size;
             t.twinned <- page :: t.twinned
           end))
  | Log_based -> ());
  t

let protocol t = t.protocol

let acquire t =
  match t.protocol with
  | Twin_diff ->
    t.twinned <- [];
    Kernel.protect_region t.k t.region
  | Log_based | Snooped -> ()

let write_word t ~off v =
  if off < 0 || off + 4 > t.size then invalid_arg "Shared_segment.write_word";
  Kernel.write_word t.k t.space (t.base + off) v

let read_word t ~off =
  if off < 0 || off + 4 > t.size then invalid_arg "Shared_segment.read_word";
  Kernel.read_word t.k t.space (t.base + off)

(* Apply one word update to the consumer replica, charged as a remote
   cached write. *)
let apply_to_consumer t ~off ~size v =
  let paddr = Kernel.paddr_of t.k t.consumer ~off in
  Machine.write (Kernel.machine t.k) ~paddr ~size ~mode:Machine.Write_back
    ~logged:false v

let release_twin_diff t =
  let words_sent = ref 0 in
  let messages = ref 0 in
  List.iter
    (fun page ->
      incr messages;
      let page_off = page * Addr.page_size in
      Kernel.compute t.k (Addr.words_per_page * diff_scan_per_word);
      for w = 0 to Addr.words_per_page - 1 do
        let off = page_off + (w * Addr.word_size) in
        if off + 4 <= t.size then begin
          let current = Kernel.seg_read_raw t.k t.seg ~off ~size:4 in
          let twin = Kernel.seg_read_raw t.k t.twins ~off ~size:4 in
          if current <> twin then begin
            incr words_sent;
            apply_to_consumer t ~off ~size:4 current
          end
        end
      done)
    (List.rev t.twinned);
  Kernel.compute t.k
    ((!messages * message_overhead) + (!words_sent * wire_per_word));
  t.twinned <- [];
  (!words_sent, !messages)

let propagate_log t =
  let ls = Option.get t.ls in
  let words = ref 0 in
  let stop =
    Lvm.Checkpoint.roll_forward t.k ~log:ls ~from:0
      ~apply:(fun ~off:_ r ->
        (match
           if r.Log_record.pre_image then None
           else Lvm.Log_reader.locate t.k r
         with
        | Some (seg, off) when Segment.id seg = Segment.id t.seg ->
          incr words;
          apply_to_consumer t ~off ~size:r.Log_record.size
            r.Log_record.value
        | Some _ | None -> ());
        `Continue)
  in
  Lvm_log.truncate (Lvm_log.of_segment t.k ls) ~keep_from:stop;
  Kernel.compute t.k (message_overhead + (!words * wire_per_word));
  (!words, 1)

(* In snooped mode the replica is already current; release just retires
   the consumed log records (no copying needed). *)
let retire_log t =
  let ls = Option.get t.ls in
  let log = Lvm_log.of_segment t.k ls in
  Lvm_log.truncate log ~keep_from:(Lvm_log.length log);
  (0, 0)

let stream t =
  let t0 = Kernel.time t.k in
  let words_sent, messages =
    match t.protocol with
    | Twin_diff -> (0, 0) (* differences are only known at release *)
    | Log_based -> propagate_log t
    | Snooped -> retire_log t
  in
  { words_sent; messages; release_cycles = Kernel.time t.k - t0 }

let release t =
  let t0 = Kernel.time t.k in
  let words_sent, messages =
    match t.protocol with
    | Twin_diff -> release_twin_diff t
    | Log_based -> propagate_log t
    | Snooped -> retire_log t
  in
  { words_sent; messages; release_cycles = Kernel.time t.k - t0 }

let consumer_word t ~off = Kernel.seg_read_raw t.k t.consumer ~off ~size:4

let replica_consistent t =
  let rec go off =
    if off + 4 > t.size then true
    else if
      Kernel.seg_read_raw t.k t.seg ~off ~size:4
      <> Kernel.seg_read_raw t.k t.consumer ~off ~size:4
    then false
    else go (off + 4)
  in
  go 0
