(** Crash-sweep harness: crash-consistency testing for RLVM.

    Runs a deterministic TPC-A-style transactional workload over RLVM
    many times, each run under a fault plan that kills the machine at a
    different point — a sweep of instruction-stream crash points covering
    the whole run, plus a sweep of torn WAL writes — then recovers and
    checks the atomicity contract against a host-side model:

    - committed transactions are durable;
    - uncommitted writes are invisible;
    - a crash inside commit lands on exactly one side of the atomicity
      boundary (old state or new state, never a mixture);
    - recovery is idempotent (a second recovery reproduces the state);
    - a torn last WAL record is detected and truncated, never replayed.

    Everything is seeded: two sweeps with the same parameters produce
    byte-identical {!outcome.trace} strings, which the [@crash] CI alias
    checks. *)

type outcome = {
  points : int;  (** Total runs (crash points + torn-write points). *)
  crashed : int;  (** Runs in which the injected fault fired. *)
  completed : int;  (** Runs that finished the workload unharmed. *)
  torn : int;  (** Recoveries that detected and truncated a torn tail. *)
  failures : string list;  (** Invariant violations; empty = pass. *)
  trace : string;  (** Deterministic one-line-per-run log. *)
}

val run :
  ?seed:int -> ?txns:int -> ?points:int -> ?torn_points:int -> ?cpus:int ->
  ?group:int -> ?shards:int -> unit -> outcome
(** [run ()] sweeps [points] (default 200) evenly-spaced crash cycles
    over a [txns]-transaction workload (default 12), then [torn_points]
    (default 24) torn-write crashes at successive WAL appends with
    varying torn lengths. Each point builds a fresh machine with [cpus]
    processors (default 1; the workload itself runs on CPU 0 — the sweep
    checks that crash consistency holds on a multi-CPU boot too).

    [group] (default 1) enables group commit in the RLVM under test. A
    crash may then roll back commits whose batch was never forced; the
    checker accepts the last fully-forced state for crashed runs. With
    [group = 1] that extra acceptance is unreachable and the trace is
    byte-identical to the ungrouped sweep.

    [shards] (default 1) switches the subject from the single TPC-A
    store to an [Lvm_store] sharded store whose workload mixes
    single-shard and cross-shard (two-phase-commit) transactions with
    disjoint per-transaction key sets. The checker then enforces
    all-or-nothing across shards: a crashed run must recover to the
    committed prefix, plus the in-flight transaction either applied in
    full on every shard it touched or on none — a torn write landing
    between the two phases (e.g. tearing the coordinator's intent
    record) must roll the whole transaction back. [cpus] is ignored
    when [shards > 1]: the store boots one CPU per shard. *)

val run_fams :
  ?seed:int -> ?snaps:int -> ?writes:int -> ?points:int ->
  ?torn_points:int -> ?force_points:int -> ?group:int -> ?regions:int ->
  unit -> outcome
(** Torn-snapshot sweep over the failure-atomic snapshot API
    ([Lvm_fams]): a workload of [snaps] epochs — [writes] plain writes
    per region per epoch, then one region snapshots — swept with
    [points] (default 120) evenly-spaced crash cycles (crashes before,
    inside and after the snapshot's WAL phase), [torn_points] (default
    16) torn WAL writes (tearing data records and boundary records
    alike) and [force_points] (default 8) crashes injected inside the
    boundary's force itself. Each crashed run recovers every region
    (twice — replay must be idempotent) and checks prefix consistency:
    the recovered region equals a registered snapshot boundary no older
    than the last forced one, or the in-flight snapshot image when its
    boundary made it to disk — never a mixture, and never un-snapshotted
    plain writes. [group] (default 1) batches boundary forces; [regions]
    (default 1) maps several independently-snapshotting regions on one
    machine. *)

val run_repl :
  ?seed:int -> ?txns:int -> ?kill_points:int -> ?fault_only:int ->
  ?replicas:int -> ?post_txns:int -> unit -> outcome
(** Replication failover sweep over an [Lvm_repl] cluster. Every
    schedule gets its own seeded transport-fault plan (drop / delay /
    duplicate / reorder at the [Net_frame]/[Net_ack] sites, profile and
    PRNG seed rotating per schedule). [kill_points] (default 84)
    schedules fail-stop the primary a few ticks after transaction [k]
    committed — replication frames still in flight — drain the dead
    window, promote the furthest-ahead standby and check against the
    host-side model:

    - the promoted replica serves exactly the committed-transaction
      prefix its applied watermark covers (the dead primary's
      uncommitted tail is dropped, nothing is half-applied);
    - that prefix includes every transaction the primary had seen the
      winner acknowledge — no acked transaction is ever lost;
    - a second recovery on the promoted node changes nothing
      (idempotence: a re-sent unacked tail re-applies harmlessly);
    - the new primary serves [post_txns] more transactions and every
      surviving standby converges to it under the same faults.

    [fault_only] (default 16) schedules skip the kill and require the
    cluster to converge on the full workload despite the faults. In the
    {!outcome}, [crashed] counts kill schedules, [completed] fault-only
    schedules, and [torn] schedules that needed at least one full-state
    resync. Deterministic: same parameters, byte-identical [trace]. *)

val run_split :
  ?seed:int -> ?points:int -> ?torn_points:int -> ?cutover_points:int ->
  ?shards:int -> unit -> outcome
(** Split-cutover sweep over the sharded store's shard-move protocol.
    The scripted schedule interleaves seeded transactions with a full
    move lifecycle — split half of shard 0's buckets to shard 1
    (forced intent, incremental copy steps with transactions between
    them, a drain whose moved-key write must be refused with [Moved],
    the cutover, a transaction in the cutover-durable-but-unretired
    window, the retire) and then a merge sending the buckets home.
    [points] (default 90) evenly-spaced crash cycles cover the whole
    schedule — intent force, mid-copy, drain, cutover, the
    post-cutover pre-retire window, and the merge — [torn_points]
    (default 8) tear WAL appends (split-intent records included), and
    [cutover_points] (default 2) crash inside the
    {!Lvm_fault.Fault.Split_cutover} site itself (the split's and the
    merge's cutover force). Every crashed run recovers and checks:

    - every key reads its host-model value (a mid-copy crash must not
      expose the target's partial copy);
    - the routing table equals exactly the pre-move or the post-move
      table — never a mixture, so every bucket has one owner;
    - a second recovery reproduces both state and route (idempotence)
      and leaves no move active;
    - the store still commits: probe transactions on a moved and an
      unmoved bucket read back.

    Deterministic: same parameters, byte-identical [trace]. With the
    defaults the sweep runs 100 seeded schedules. *)
