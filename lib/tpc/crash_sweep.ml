open Lvm_vm

(* The harness crashes a transactional TPC-A-style workload at chosen
   points, recovers, and checks the atomicity contract against a pure
   model of the store kept on the host side:

   - outside a commit, the recovered state must equal the model exactly
     (uncommitted writes invisible);
   - during a commit, it must equal either the model or the model with
     the transaction's staged writes applied — the atomicity boundary —
     and nothing in between (committed writes durable, partial
     application forbidden). *)

type outcome = {
  points : int;
  crashed : int;
  completed : int;
  torn : int;
  failures : string list; (* invariant violations; empty = pass *)
  trace : string; (* deterministic per-run log, for byte-equality checks *)
}

let bank () = Bank.layout ~branches:2 ~tellers:4 ~accounts:32 ~history:16

type run_state = {
  r : Lvm_rvm.Rlvm.t;
  store : Tpca.store;
  model : int array; (* committed words, host-side truth *)
  forced : int array; (* words covered by a WAL force: crash-durable *)
  staged : (int * int) list ref; (* newest first; current txn's writes *)
  in_commit : bool ref;
}

let build ?cpus ?group () =
  let k = Kernel.create ?cpus () in
  let sp = Kernel.create_space k in
  let b = bank () in
  let size = Bank.segment_bytes b in
  let r =
    Lvm_rvm.Rlvm.make
      { Lvm_rvm.Rlvm.Config.default with
        group = Option.value group ~default:1 }
      k sp ~size
  in
  let base = Tpca.rlvm_store r in
  let model = Array.make (size / 4) 0 in
  let forced = Array.make (size / 4) 0 in
  let staged = ref [] in
  let in_commit = ref false in
  let apply_staged () =
    List.iter (fun (off, v) -> model.(off / 4) <- v) (List.rev !staged);
    staged := []
  in
  let store =
    {
      base with
      Tpca.begin_txn =
        (fun () ->
          staged := [];
          base.Tpca.begin_txn ());
      write_word =
        (fun ~off v ->
          staged := (off, v land 0xFFFFFFFF) :: !staged;
          base.Tpca.write_word ~off v);
      commit =
        (fun () ->
          in_commit := true;
          base.Tpca.commit ();
          in_commit := false;
          apply_staged ();
          (* Under group commit the WAL force trails the commit: only
             once the batcher has flushed is the committed state
             crash-durable. With group 1 every commit forces, so
             [forced] tracks [model] exactly. *)
          if Lvm_rvm.Rlvm.pending_commits r = 0 then
            Array.blit model 0 forced 0 (Array.length model));
    }
  in
  (b, { r; store; model; forced; staged; in_commit })

let run_workload b st ~seed ~txns =
  Tpca.setup st.store b;
  let rng = Random.State.make [| seed |] in
  for i = 0 to txns - 1 do
    Tpca.transaction st.store b ~rng ~history_slot:i
  done

(* Compare the store against the model, or (inside a commit) against the
   model with the staged transaction applied. After a crash under group
   commit, unforced batches legitimately roll back, so the last {e
   forced} state is acceptable too; with group 1 [forced] always equals
   [model] and the extra acceptance is unreachable, keeping the sweep's
   trace byte-identical to the ungrouped harness. *)
let check_state ?(crashed = false) st =
  let n = Array.length st.model in
  let actual = Array.init n (fun i -> Lvm_rvm.Rlvm.read_word st.r ~off:(i * 4)) in
  let plus_staged =
    let m = Array.copy st.model in
    List.iter (fun (off, v) -> m.(off / 4) <- v) (List.rev !(st.staged));
    m
  in
  if actual = st.model then Ok "committed"
  else if !(st.in_commit) && actual = plus_staged then Ok "committed+txn"
  else if crashed && actual = st.forced then Ok "forced"
  else
    let diff =
      let rec find i =
        if i = n then "?"
        else if actual.(i) <> st.model.(i)
                && (not !(st.in_commit) || actual.(i) <> plus_staged.(i))
                && (not crashed || actual.(i) <> st.forced.(i))
        then Printf.sprintf "word %d: got %d model %d" i actual.(i) st.model.(i)
        else find (i + 1)
      in
      find 0
    in
    Error diff

let machine_of st = Kernel.machine (Lvm_rvm.Rlvm.kernel st.r)

(* One run under one plan. Returns (trace line, failure option,
   crashed?, torn-tail-detected?). *)
let run_one ?cpus ?group ~label ~seed ~txns plan =
  let b, st = build ?cpus ?group () in
  Lvm_machine.Machine.set_fault_plan (machine_of st) (Some plan);
  match run_workload b st ~seed ~txns with
  | () -> (
    (* The harness's own verification reads must not trip a still-armed
       injection (e.g. a crash point past the workload's last boundary). *)
    Lvm_machine.Machine.set_fault_plan (machine_of st) None;
    match check_state st with
    | Ok _ -> (Printf.sprintf "%s completed state=ok\n" label, None, false, false)
    | Error d ->
      ( Printf.sprintf "%s completed state=FAIL %s\n" label d,
        Some (label ^ ": " ^ d), false, false ))
  | exception Lvm_fault.Fault.Crashed { cycle; site } -> (
    Lvm_machine.Machine.set_fault_plan (machine_of st) None;
    let report = Lvm_rvm.Rlvm.recover st.r in
    let torn = report.Lvm_rvm.Ramdisk.truncated_bytes > 0 in
    let base =
      Printf.sprintf "%s crashed cycle=%d site=%s in_commit=%b %s" label cycle
        (Lvm_fault.Fault.site_name site)
        !(st.in_commit)
        (Lvm_rvm.Ramdisk.recovery_to_string report)
    in
    (* Replay idempotence: a second recovery must land on the same state. *)
    let first = Array.init (Array.length st.model)
        (fun i -> Lvm_rvm.Rlvm.read_word st.r ~off:(i * 4)) in
    ignore (Lvm_rvm.Rlvm.recover st.r);
    let second = Array.init (Array.length st.model)
        (fun i -> Lvm_rvm.Rlvm.read_word st.r ~off:(i * 4)) in
    match check_state ~crashed:true st with
    | Ok which when first = second ->
      (Printf.sprintf "%s state=ok(%s)\n" base which, None, true, torn)
    | Ok _ ->
      ( Printf.sprintf "%s state=FAIL not idempotent\n" base,
        Some (label ^ ": recovery not idempotent"), true, torn )
    | Error d ->
      ( Printf.sprintf "%s state=FAIL %s\n" base d,
        Some (label ^ ": " ^ d), true, torn ))

let crash_plan ~at =
  Lvm_fault.Plan.create
    [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Cpu;
        trigger = Lvm_fault.Plan.At_cycle at;
        fault = Lvm_fault.Fault.Crash } ]

let torn_plan ~nth ~keep =
  Lvm_fault.Plan.create
    [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Ramdisk_write;
        trigger = Lvm_fault.Plan.At_count nth;
        fault = Lvm_fault.Fault.Torn_write { keep } } ]

(* {1 Sharded-store sweep}

   With [shards > 1] the subject is an [Lvm_store] sharded store: the
   workload mixes single-shard transactions with cross-shard two-phase
   commits (every third transaction), keys chosen so each transaction's
   writes are distinct words. The host-side model tracks committed
   transactions; the in-flight transaction's writes are the [staged]
   set, and a crashed run must recover to the model exactly, or to the
   model plus the whole staged set — all-or-nothing across every shard
   the transaction touched. Group commit is not swept here (the store
   runs with group 1), so the committed prefix is always durable. *)

module Store = Lvm_store.Store

type store_state = {
  st : Store.t;
  model : int array; (* committed key values, host-side truth *)
  staged : (int * int) list ref; (* the in-flight transaction's writes *)
}

let store_slots = 8 (* keys per shard *)

let build_store ~shards () =
  let st =
    Store.create
      { Store.Config.default with
        shards;
        keys = shards * store_slots;
        group = 1;
        log_pages = 4;
        compute = 40 }
  in
  { st; model = Array.make (shards * store_slots) 0; staged = ref [] }

(* Transaction [j] of the seeded workload: every third is cross-shard
   (two participants, two writes each), the rest single-shard (two
   writes). Slot indices 2j and 2j+1 keep each transaction's writes on
   distinct words. *)
let store_txn ~shards ~seed j =
  let value idx = ((seed * 31) + (j * 97) + (idx * 13) + 5) land 0xFFFFFF in
  let key s slot = s + (shards * (slot mod store_slots)) in
  let cross = shards > 1 && j mod 3 = 2 in
  if cross then
    let a = j mod shards and b = (j + 1) mod shards in
    [ (key a (2 * j), value 0); (key a ((2 * j) + 1), value 1);
      (key b (2 * j), value 2); (key b ((2 * j) + 1), value 3) ]
  else
    let s = j mod shards in
    [ (key s (2 * j), value 0); (key s ((2 * j) + 1), value 1) ]

let err = Lvm.Lvm_error.to_string

(* The sweep's probes want the bare word; a read refusal here is a
   harness bug, not a legal crash outcome. *)
let read_word st key =
  match Store.read st key with
  | Ok v -> v
  | Error e -> failwith ("crash sweep read: " ^ err e)

let run_store_workload ss ~shards ~seed ~txns =
  for j = 0 to txns - 1 do
    let writes = store_txn ~shards ~seed j in
    ss.staged := writes;
    (match Store.exec ss.st ~writes with
    | Ok () ->
      List.iter (fun (key, v) -> ss.model.(key) <- v) writes;
      ss.staged := []
    | Error e -> failwith ("store sweep exec: " ^ err e));
  done

let check_store_state ss =
  let n = Array.length ss.model in
  let actual = Array.init n (fun key -> read_word ss.st key) in
  let plus_staged =
    let m = Array.copy ss.model in
    List.iter (fun (key, v) -> m.(key) <- v) !(ss.staged);
    m
  in
  if actual = ss.model then Ok "committed"
  else if !(ss.staged) <> [] && actual = plus_staged then Ok "committed+txn"
  else
    let rec find k =
      if k = n then "?"
      else if actual.(k) <> ss.model.(k) && actual.(k) <> plus_staged.(k)
      then
        Printf.sprintf "key %d: got %d model %d staged %d" k actual.(k)
          ss.model.(k) plus_staged.(k)
      else find (k + 1)
    in
    Error (find 0)

let store_machine ss = Kernel.machine (Store.kernel ss.st)

let store_snapshot ss =
  Array.init (Array.length ss.model) (fun key -> read_word ss.st key)

let run_one_store ~shards ~label ~seed ~txns plan =
  let ss = build_store ~shards () in
  Lvm_machine.Machine.set_fault_plan (store_machine ss) (Some plan);
  match run_store_workload ss ~shards ~seed ~txns with
  | () -> (
    Lvm_machine.Machine.set_fault_plan (store_machine ss) None;
    match check_store_state ss with
    | Ok _ -> (Printf.sprintf "%s completed state=ok\n" label, None, false,
               false)
    | Error d ->
      ( Printf.sprintf "%s completed state=FAIL %s\n" label d,
        Some (label ^ ": " ^ d), false, false ))
  | exception Lvm_fault.Fault.Crashed { cycle; site } -> (
    Lvm_machine.Machine.set_fault_plan (store_machine ss) None;
    let report = Store.recover ss.st in
    let torn =
      report.Store.coordinator.Lvm_rvm.Ramdisk.truncated_bytes > 0
      || Array.exists
           (fun (r : Lvm_rvm.Ramdisk.recovery) -> r.truncated_bytes > 0)
           report.Store.shard_reports
    in
    let base =
      Printf.sprintf "%s crashed cycle=%d site=%s %s" label cycle
        (Lvm_fault.Fault.site_name site)
        (Store.recovery_to_string report)
    in
    (* Replay idempotence: a second recovery must land on the same
       state (the first one's roll-forward included). *)
    let first = store_snapshot ss in
    ignore (Store.recover ss.st);
    let second = store_snapshot ss in
    match check_store_state ss with
    | Ok which when first = second ->
      (Printf.sprintf "%s state=ok(%s)\n" base which, None, true, torn)
    | Ok _ ->
      ( Printf.sprintf "%s state=FAIL not idempotent\n" base,
        Some (label ^ ": recovery not idempotent"), true, torn )
    | Error d ->
      ( Printf.sprintf "%s state=FAIL %s\n" base d,
        Some (label ^ ": " ^ d), true, torn ))

let run_store_sweep ~seed ~txns ~points ~torn_points ~shards =
  let total =
    let ss = build_store ~shards () in
    run_store_workload ss ~shards ~seed ~txns;
    Kernel.max_time (Store.kernel ss.st)
  in
  let buf = Buffer.create 4096 in
  let failures = ref [] in
  let crashed = ref 0 and completed = ref 0 and torn = ref 0 in
  let record (line, failure, did_crash, did_torn) =
    Buffer.add_string buf line;
    (match failure with Some f -> failures := f :: !failures | None -> ());
    if did_crash then incr crashed else incr completed;
    if did_torn then incr torn
  in
  Buffer.add_string buf
    (Printf.sprintf
       "crashsweep seed=%d txns=%d total_cycles=%d shards=%d\n" seed txns
       total shards);
  for i = 0 to points - 1 do
    let at = 1 + (i * (total - 1) / max 1 (points - 1)) in
    record
      (run_one_store ~shards
         ~label:(Printf.sprintf "point=%d at=%d" i at) ~seed ~txns
         (crash_plan ~at))
  done;
  for j = 1 to torn_points do
    let keep = 1 + (j * 7 mod 23) in
    record
      (run_one_store ~shards
         ~label:(Printf.sprintf "torn=%d keep=%d" j keep)
         ~seed ~txns (torn_plan ~nth:j ~keep))
  done;
  {
    points = points + torn_points;
    crashed = !crashed;
    completed = !completed;
    torn = !torn;
    failures = List.rev !failures;
    trace = Buffer.contents buf;
  }

let run_single ?(seed = 42) ?(txns = 12) ?(points = 200) ?(torn_points = 24)
    ?cpus ?(group = 1) () =
  let group_opt = if group = 1 then None else Some group in
  (* Reference run: how long the whole workload takes with no faults. *)
  let total =
    let b, st = build ?cpus ?group:group_opt () in
    run_workload b st ~seed ~txns;
    Kernel.time (Lvm_rvm.Rlvm.kernel st.r)
  in
  let buf = Buffer.create 4096 in
  let failures = ref [] in
  let crashed = ref 0 and completed = ref 0 and torn = ref 0 in
  let record (line, failure, did_crash, did_torn) =
    Buffer.add_string buf line;
    (match failure with Some f -> failures := f :: !failures | None -> ());
    if did_crash then incr crashed else incr completed;
    if did_torn then incr torn
  in
  Buffer.add_string buf
    (Printf.sprintf "crashsweep seed=%d txns=%d total_cycles=%d%s\n" seed txns
       total
       (if group = 1 then "" else Printf.sprintf " group=%d" group));
  for i = 0 to points - 1 do
    let at = 1 + (i * (total - 1) / max 1 (points - 1)) in
    record
      (run_one ?cpus ?group:group_opt
         ~label:(Printf.sprintf "point=%d at=%d" i at) ~seed ~txns
         (crash_plan ~at))
  done;
  for j = 1 to torn_points do
    let keep = 1 + (j * 7 mod 23) in
    record
      (run_one ?cpus ?group:group_opt
         ~label:(Printf.sprintf "torn=%d keep=%d" j keep)
         ~seed ~txns (torn_plan ~nth:j ~keep))
  done;
  {
    points = points + torn_points;
    crashed = !crashed;
    completed = !completed;
    torn = !torn;
    failures = List.rev !failures;
    trace = Buffer.contents buf;
  }

let run ?(seed = 42) ?(txns = 12) ?(points = 200) ?(torn_points = 24) ?cpus
    ?(group = 1) ?(shards = 1) () =
  if shards > 1 then run_store_sweep ~seed ~txns ~points ~torn_points ~shards
  else run_single ?cpus ~seed ~txns ~points ~torn_points ~group ()

(* {1 Replication sweep}

   The subject is an [Lvm_repl] cluster: a primary streaming its WAL to
   hot standbys over the faulty transport, every schedule driven by a
   distinct seeded net-fault plan (drop/delay/duplicate/reorder at the
   [Net_frame]/[Net_ack] sites). Kill schedules fail-stop the primary
   after transaction [k] plus a few sub-ticks — frames still in flight —
   let the survivors drain, promote, and check prefix consistency
   against the host-side model:

   - the promoted replica serves exactly [models.(jstar)], where [jstar]
     is the last transaction whose stream bytes it had applied — committed
     transactions are never half-applied and the dead primary's
     uncommitted tail is dropped;
   - [j*] is at least the last transaction the primary had seen acked
     by that replica — nothing acknowledged is ever lost;
   - a second recovery on the promoted node is a no-op (idempotence:
     any re-sent unacked tail re-applies harmlessly);
   - the new primary then serves more transactions and every surviving
     standby converges to it (catch-up/resync under the same faults).

   Fault-only schedules skip the kill and check that the cluster
   converges to the full workload despite the transport faults. *)

module Repl = Lvm_repl

let repl_value ~seed ~j ~idx =
  ((seed * 31) + (j * 97) + (idx * 13) + 5) land 0xFFFFFF

let repl_writes ~keys ~seed j =
  [ (j mod keys, repl_value ~seed ~j ~idx:0);
    (((j * 7) + 3) mod keys, repl_value ~seed ~j ~idx:1) ]

(* Schedule [i]'s transport profile: every kind is represented across
   the sweep, probabilities rotate so no two schedules see the same
   fault stream, and the PRNG seed differs per schedule. *)
let repl_net_plan ~seed i =
  let open Lvm_fault in
  let p base k = base +. (float_of_int ((i * k) mod 5) /. 50.0) in
  let inj site trigger fault = { Plan.site; trigger; fault } in
  let frame = Fault.Net_frame and ack = Fault.Net_ack in
  let injections =
    match i mod 4 with
    | 0 ->
      (* drop-heavy *)
      [ inj frame (Plan.With_probability (p 0.15 3)) Fault.Net_drop;
        inj ack (Plan.With_probability (p 0.10 7)) Fault.Net_drop ]
    | 1 ->
      (* delay + duplicate *)
      [ inj frame
          (Plan.With_probability (p 0.15 5))
          (Fault.Net_delay { ticks = 2 + (i mod 4) });
        inj frame (Plan.With_probability (p 0.08 7)) Fault.Net_dup;
        inj ack
          (Plan.With_probability (p 0.10 11))
          (Fault.Net_delay { ticks = 1 + (i mod 3) }) ]
    | 2 ->
      (* reorder-heavy *)
      [ inj frame (Plan.With_probability (p 0.15 7)) Fault.Net_reorder;
        inj frame (Plan.With_probability (p 0.05 3)) Fault.Net_dup;
        inj ack (Plan.With_probability (p 0.08 5)) Fault.Net_reorder ]
    | _ ->
      (* everything at once *)
      [ inj frame (Plan.With_probability (p 0.08 3)) Fault.Net_drop;
        inj frame
          (Plan.With_probability (p 0.08 5))
          (Fault.Net_delay { ticks = 1 + (i mod 4) });
        inj frame (Plan.With_probability (p 0.05 7)) Fault.Net_dup;
        inj frame (Plan.With_probability (p 0.05 11)) Fault.Net_reorder;
        inj ack (Plan.With_probability (p 0.08 13)) Fault.Net_drop;
        inj ack (Plan.With_probability (p 0.05 17)) Fault.Net_dup ]
  in
  Plan.create ~seed:((seed * 1000) + i) injections

let repl_snapshot cl =
  Array.init (Repl.keys cl) (fun key -> Repl.read cl key)

(* One schedule. [kill = Some (k, s)]: fail-stop the primary [s] ticks
   after transaction [k] committed, promote, verify, then serve
   [post_txns] more transactions and require convergence. [kill = None]:
   run the whole workload and require convergence. Returns
   (trace line, failure option, killed?, resynced?). *)
let run_one_repl ~seed ~txns ~replicas ~post_txns ~gap ~label ~index kill =
  let plan = repl_net_plan ~seed index in
  let cl =
    Repl.create ~plan
      { Repl.Config.default with replicas; timeout = 8; heartbeat_every = 3 }
  in
  let keys = Repl.keys cl in
  let model = Array.make keys 0 in
  let models = Array.make (txns + 1) [||] in
  let ends = Array.make (txns + 1) 0 in
  models.(0) <- Array.copy model;
  ends.(0) <- Repl.stream_end cl;
  let fail = ref None in
  let note d = if !fail = None then fail := Some (label ^ ": " ^ d) in
  let run_txn j =
    (match Repl.exec cl ~writes:(repl_writes ~keys ~seed j) with
    | Ok () ->
      List.iter (fun (k, v) -> model.(k) <- v) (repl_writes ~keys ~seed j)
    | Error e -> note ("exec: " ^ Lvm.Lvm_error.to_string e));
    models.(j + 1) <- Array.copy model;
    ends.(j + 1) <- Repl.stream_end cl;
    Repl.step ~ticks:gap cl
  in
  let check_standbys ~what target =
    for i = 0 to replicas - 1 do
      if Repl.replica_alive cl i && Repl.promoted cl <> Some i then
        for key = 0 to keys - 1 do
          if Repl.replica_read cl i key <> target.(key) then
            note
              (Printf.sprintf "%s: replica %d key %d: got %d want %d" what i
                 key
                 (Repl.replica_read cl i key)
                 target.(key))
        done
    done
  in
  let finish ~resynced extra =
    let s = Repl.stats cl in
    let line =
      Printf.sprintf
        "%s %s epoch=%d sent=%d dropped=%d duped=%d reordered=%d \
         retrans=%d resyncs=%d fenced=%d state=%s\n"
        label extra s.Repl.s_epoch s.Repl.frames_sent s.Repl.frames_dropped
        s.Repl.frames_duped s.Repl.frames_reordered s.Repl.retransmits
        s.Repl.resyncs s.Repl.fenced
        (match !fail with None -> "ok" | Some _ -> "FAIL")
    in
    (line, !fail, kill <> None, resynced)
  in
  match kill with
  | None ->
    for j = 0 to txns - 1 do
      run_txn j
    done;
    if not (Repl.sync cl) then note "no convergence"
    else begin
      if repl_snapshot cl <> models.(txns) then note "primary state drifted";
      check_standbys ~what:"converged" model;
      if Repl.epoch cl <> 1 then note "unexpected failover"
    end;
    finish
      ~resynced:((Repl.stats cl).Repl.resyncs > 0)
      (Printf.sprintf "completed txns=%d" txns)
  | Some (k, s) ->
    for j = 0 to k do
      run_txn j
    done;
    Repl.step ~ticks:s cl;
    let committed = k + 1 in
    let acked_at_kill =
      Array.init replicas (fun i -> Repl.replica_acked cl i)
    in
    Repl.kill_primary cl;
    (* the dead window: in-flight frames drain, detectors fire *)
    Repl.step ~ticks:(4 + (index mod 5)) cl;
    let p = Repl.promote cl in
    let win = p.Repl.new_primary in
    let jstar =
      let rec go j =
        if j >= 0 && ends.(j) <= p.Repl.applied_bytes then j
        else if j < 0 then 0
        else go (j - 1)
      in
      go committed
    in
    let jack =
      let rec go j =
        if j >= 0 && ends.(j) <= acked_at_kill.(win) then j
        else if j < 0 then 0
        else go (j - 1)
      in
      go committed
    in
    if jstar < jack then
      note
        (Printf.sprintf "acked txn lost: applied prefix %d < acked prefix %d"
           jstar jack);
    let served = repl_snapshot cl in
    if served <> models.(jstar) then
      note
        (Printf.sprintf
           "promoted state is not the committed prefix %d (applied=%d)" jstar
           p.Repl.applied_bytes);
    (* double recovery must change nothing *)
    Repl.rerecover cl;
    if repl_snapshot cl <> served then note "second recovery not idempotent";
    (* life goes on: new primary serves, survivors converge *)
    let model2 = Array.copy models.(jstar) in
    for j = 0 to post_txns - 1 do
      let writes = repl_writes ~keys ~seed:(seed + 7919) (txns + j) in
      (match Repl.exec cl ~writes with
      | Ok () -> List.iter (fun (key, v) -> model2.(key) <- v) writes
      | Error e -> note ("post exec: " ^ Lvm.Lvm_error.to_string e));
      Repl.step ~ticks:gap cl
    done;
    if replicas > 1 then begin
      if not (Repl.sync cl) then note "no post-failover convergence"
      else check_standbys ~what:"post-failover" model2
    end;
    if repl_snapshot cl <> model2 then note "post-failover primary drifted";
    finish
      ~resynced:((Repl.stats cl).Repl.resyncs > 0)
      (Printf.sprintf "killed after=%d sub=%d promoted=%d jstar=%d \
                       failover_ticks=%d"
         k s win jstar p.Repl.failover_ticks)

let run_repl ?(seed = 42) ?(txns = 10) ?(kill_points = 84) ?(fault_only = 16)
    ?(replicas = 2) ?(post_txns = 3) () =
  let gap = 3 in
  let buf = Buffer.create 4096 in
  let failures = ref [] in
  let killed = ref 0 and completed = ref 0 and resynced = ref 0 in
  let record (line, failure, did_kill, did_resync) =
    Buffer.add_string buf line;
    (match failure with Some f -> failures := f :: !failures | None -> ());
    if did_kill then incr killed else incr completed;
    if did_resync then incr resynced
  in
  Buffer.add_string buf
    (Printf.sprintf
       "replsweep seed=%d txns=%d kill_points=%d fault_only=%d replicas=%d\n"
       seed txns kill_points fault_only replicas);
  for i = 0 to kill_points - 1 do
    let k = i mod txns in
    let s = i * 3 mod 7 in
    record
      (run_one_repl ~seed ~txns ~replicas ~post_txns ~gap
         ~label:(Printf.sprintf "kill=%d after=%d sub=%d" i k s)
         ~index:i
         (Some (k, s)))
  done;
  for i = 0 to fault_only - 1 do
    record
      (run_one_repl ~seed ~txns ~replicas ~post_txns ~gap
         ~label:(Printf.sprintf "faults=%d" i)
         ~index:(kill_points + i) None)
  done;
  {
    points = kill_points + fault_only;
    crashed = !killed;
    completed = !completed;
    torn = !resynced;
    failures = List.rev !failures;
    trace = Buffer.contents buf;
  }

(* {1 FAMS sweep}

   The subject is one or more [Lvm_fams] snapshot regions on one machine:
   plain writes accumulate, [snapshot] persists the modification set
   atomically. The host-side model per region is the sequence of boundary
   states (region content at each completed snapshot, starting from the
   all-zero state) plus the in-flight snapshot image while [snapshot] is
   executing. A crashed run must recover each region to exactly one of:

   - a registered boundary no older than the last {e forced} one (group
     commit may roll back unforced boundaries, never forced ones);
   - the in-flight image, when the crash landed inside [snapshot] and the
     boundary record made it to disk.

   Nothing else is acceptable — in particular, no state containing plain
   writes issued after the newest boundary (never made durable), and no
   mixture of two boundaries (torn snapshot). *)

module Fams = Lvm_fams

type fams_region = {
  f : Fams.t;
  current : int array; (* host model of the working view *)
  mutable boundaries : int array list; (* newest first; last = zeros *)
  mutable completed : int; (* snapshots registered *)
  mutable forced_idx : int; (* newest boundary known forced *)
  mutable in_flight : int array option; (* image [snapshot] is persisting *)
}

type fams_state = { fk : Kernel.t; rs : fams_region array }

let fams_words = 64
let fams_size = fams_words * 4

let fams_unwrap what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Lvm.Lvm_error.to_string e)

let build_fams ~group ~regions () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let rs =
    Array.init regions (fun _ ->
        let f =
          fams_unwrap "fams sweep map"
            (Fams.map
               { Fams.Config.default with log_pages = 4; group }
               k sp ~size:fams_size)
        in
        { f; current = Array.make fams_words 0;
          boundaries = [ Array.make fams_words 0 ];
          completed = 0; forced_idx = 0; in_flight = None })
  in
  { fk = k; rs }

let fams_value ~seed ~epoch ~region i =
  ((seed * 31) + (epoch * 97) + (region * 389) + (i * 13) + 5) land 0xFFFFFF

(* Epoch [e]: every region takes [writes] plain writes (distinct words
   per epoch, wrapping), then region [e mod regions] snapshots. Regions
   snapshot in turn, so with [regions > 1] a crash always finds some
   region with un-snapshotted writes. *)
let run_fams_workload fs ~seed ~snaps ~writes =
  let regions = Array.length fs.rs in
  for epoch = 0 to snaps - 1 do
    Array.iteri
      (fun ri r ->
        for w = 0 to writes - 1 do
          let i = ((epoch * writes) + w + (ri * 7)) mod fams_words in
          let v = fams_value ~seed ~epoch ~region:ri i in
          fams_unwrap "fams sweep write" (Fams.write_word r.f ~off:(i * 4) v);
          r.current.(i) <- v
        done)
      fs.rs;
    let r = fs.rs.(epoch mod regions) in
    r.in_flight <- Some (Array.copy r.current);
    let rep = fams_unwrap "fams sweep snapshot" (Fams.snapshot r.f) in
    r.boundaries <- Array.copy r.current :: r.boundaries;
    r.completed <- r.completed + 1;
    if rep.Fams.forced then r.forced_idx <- r.completed;
    r.in_flight <- None
  done

let fams_actual r =
  Array.init fams_words (fun i ->
      fams_unwrap "fams sweep read" (Fams.read_word r.f ~off:(i * 4)))

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let check_fams_region ~crashed ri r =
  let actual = fams_actual r in
  if not crashed then
    if actual = r.current then Ok "working"
    else Error (Printf.sprintf "region %d: completed run lost writes" ri)
  else
    let reachable = take (r.completed - r.forced_idx + 1) r.boundaries in
    if (match r.in_flight with Some a -> actual = a | None -> false) then
      Ok "in-flight"
    else
      match List.mapi (fun j b -> (r.completed - j, b)) reachable
            |> List.find_opt (fun (_, b) -> b = actual)
      with
      | Some (j, _) ->
        Ok (if j = r.completed then "boundary" else
              Printf.sprintf "boundary-%d" (r.completed - j))
      | None ->
        let newest = List.hd r.boundaries in
        let rec diff i =
          if i = fams_words then "?"
          else if actual.(i) <> newest.(i) then
            Printf.sprintf "word %d: got %d newest boundary %d" i actual.(i)
              newest.(i)
          else diff (i + 1)
        in
        Error
          (Printf.sprintf
             "region %d: not a reachable snapshot state (completed=%d \
              forced=%d): %s"
             ri r.completed r.forced_idx (diff 0))

let check_fams ~crashed fs =
  let results =
    Array.to_list (Array.mapi (check_fams_region ~crashed) fs.rs)
  in
  match List.find_opt (function Error _ -> true | Ok _ -> false) results with
  | Some (Error _ as e) -> e
  | _ ->
    Ok
      (String.concat ","
         (List.map (function Ok w -> w | Error _ -> "?") results))

let force_plan ~nth =
  Lvm_fault.Plan.create
    [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Ramdisk_force;
        trigger = Lvm_fault.Plan.At_count nth;
        fault = Lvm_fault.Fault.Crash } ]

let run_one_fams ~group ~regions ~label ~seed ~snaps ~writes plan =
  let fs = build_fams ~group ~regions () in
  let m = Kernel.machine fs.fk in
  Lvm_machine.Machine.set_fault_plan m (Some plan);
  match run_fams_workload fs ~seed ~snaps ~writes with
  | () -> (
    Lvm_machine.Machine.set_fault_plan m None;
    match check_fams ~crashed:false fs with
    | Ok _ -> (Printf.sprintf "%s completed state=ok\n" label, None, false,
               false)
    | Error d ->
      ( Printf.sprintf "%s completed state=FAIL %s\n" label d,
        Some (label ^ ": " ^ d), false, false ))
  | exception Lvm_fault.Fault.Crashed { cycle; site } -> (
    Lvm_machine.Machine.set_fault_plan m None;
    let torn = ref false in
    Array.iter
      (fun r ->
        let rep = fams_unwrap "fams sweep recover" (Fams.recover r.f) in
        if rep.Lvm_rvm.Ramdisk.truncated_bytes > 0 then torn := true)
      fs.rs;
    let base =
      Printf.sprintf "%s crashed cycle=%d site=%s completed=%s" label cycle
        (Lvm_fault.Fault.site_name site)
        (String.concat ","
           (Array.to_list
              (Array.map (fun r -> string_of_int r.completed) fs.rs)))
    in
    (* Replay idempotence: a second recovery must land on the same state. *)
    let first = Array.map fams_actual fs.rs in
    Array.iter
      (fun r -> ignore (fams_unwrap "fams sweep recover" (Fams.recover r.f)))
      fs.rs;
    let second = Array.map fams_actual fs.rs in
    match check_fams ~crashed:true fs with
    | Ok which when first = second ->
      (Printf.sprintf "%s state=ok(%s)\n" base which, None, true, !torn)
    | Ok _ ->
      ( Printf.sprintf "%s state=FAIL not idempotent\n" base,
        Some (label ^ ": recovery not idempotent"), true, !torn )
    | Error d ->
      ( Printf.sprintf "%s state=FAIL %s\n" base d,
        Some (label ^ ": " ^ d), true, !torn ))

let run_fams ?(seed = 42) ?(snaps = 10) ?(writes = 8) ?(points = 120)
    ?(torn_points = 16) ?(force_points = 8) ?(group = 1) ?(regions = 1) () =
  (* Reference run: how long the whole workload takes with no faults. *)
  let total =
    let fs = build_fams ~group ~regions () in
    run_fams_workload fs ~seed ~snaps ~writes;
    Kernel.time fs.fk
  in
  let buf = Buffer.create 4096 in
  let failures = ref [] in
  let crashed = ref 0 and completed = ref 0 and torn = ref 0 in
  let record (line, failure, did_crash, did_torn) =
    Buffer.add_string buf line;
    (match failure with Some f -> failures := f :: !failures | None -> ());
    if did_crash then incr crashed else incr completed;
    if did_torn then incr torn
  in
  Buffer.add_string buf
    (Printf.sprintf
       "famssweep seed=%d snaps=%d writes=%d total_cycles=%d group=%d \
        regions=%d\n"
       seed snaps writes total group regions);
  for i = 0 to points - 1 do
    let at = 1 + (i * (total - 1) / max 1 (points - 1)) in
    record
      (run_one_fams ~group ~regions
         ~label:(Printf.sprintf "point=%d at=%d" i at)
         ~seed ~snaps ~writes (crash_plan ~at))
  done;
  for j = 1 to torn_points do
    let keep = 1 + (j * 7 mod 23) in
    record
      (run_one_fams ~group ~regions
         ~label:(Printf.sprintf "torn=%d keep=%d" j keep)
         ~seed ~snaps ~writes (torn_plan ~nth:j ~keep))
  done;
  for j = 1 to force_points do
    record
      (run_one_fams ~group ~regions
         ~label:(Printf.sprintf "force=%d" j)
         ~seed ~snaps ~writes (force_plan ~nth:j))
  done;
  {
    points = points + torn_points + force_points;
    crashed = !crashed;
    completed = !completed;
    torn = !torn;
    failures = List.rev !failures;
    trace = Buffer.contents buf;
  }

(* {1 Split-cutover sweep}

   The subject is the sharded store again, but the scripted schedule
   interleaves ordinary transactions with a full shard-move lifecycle
   (split half of shard 0's buckets to shard 1, then merge them home):
   warm-up txns, [move_begin] (the forced split intent), incremental
   copy steps with txns between them (dirty-set tracking), a drain with
   a deliberate moved-key write (must be refused with [Moved]), the
   cutover, a txn in the cutover-durable-but-unretired window, the
   retire, more txns, then the merge. Crash points sweep the whole
   schedule plus the [Split_cutover] fault site itself, and every
   crashed run must recover to:

   - all keys readable with their host-model values (the usual
     atomicity contract — a mid-copy crash must not expose the target's
     partial copy);
   - a routing table that is exactly the pre-move or the post-move
     table, never a mixture — every bucket has exactly one owner;
   - an idempotent second recovery (state and route both);
   - a store that still commits: a probe transaction on a moved bucket
     and one on an unmoved bucket both read back. *)

(* The scripted schedule: returns the bucket set the split moves (the
   checker needs it to build the two legal routing tables). Transaction
   values come from [store_txn]; writes refused with [Moved] during the
   drain are deterministic skips, any other refusal is a harness bug. *)
let split_buckets ss =
  let owned = Store.shard_buckets ss.st 0 in
  let half = (List.length owned + 1) / 2 in
  List.filteri (fun i _ -> i < half) owned

let run_split_schedule ss ~shards ~seed =
  let j = ref 0 in
  let txn () =
    let writes = store_txn ~shards ~seed !j in
    incr j;
    ss.staged := writes;
    (match Store.exec ss.st ~writes with
    | Ok () -> List.iter (fun (key, v) -> ss.model.(key) <- v) writes
    | Error (Lvm.Lvm_error.Moved _) -> () (* handoff window: deterministic skip *)
    | Error e -> failwith ("split sweep exec: " ^ err e));
    ss.staged := []
  in
  for _ = 1 to 4 do txn () done;
  let buckets = split_buckets ss in
  Store.move_begin ss.st ~from_:0 ~to_:1 buckets;
  let remaining = ref 1 in
  while !remaining > 0 do
    remaining := Store.move_copy_step ss.st ~batch:1;
    txn ()
  done;
  Store.move_enter_drain ss.st;
  (* A write into the handoff window must be refused with [Moved]
     (keys = buckets here, so a bucket number is a key it contains). *)
  let mk = List.hd buckets in
  ss.staged := [ (mk, 0xABCDE) ];
  (match Store.exec ss.st ~writes:[ (mk, 0xABCDE) ] with
  | Error (Lvm.Lvm_error.Moved _) -> ()
  | Ok () -> failwith "split sweep: draining move accepted a moved-key write"
  | Error e ->
    failwith ("split sweep drain probe: " ^ err e));
  ss.staged := [];
  Store.move_drain ss.st;
  Store.move_cutover ss.st;
  txn (); (* cutover durable, intent not yet retired *)
  Store.move_retire ss.st;
  for _ = 1 to 3 do txn () done;
  (* calm again: merge the displaced buckets back home *)
  Store.move ss.st ~from_:1 ~to_:0 ~batch:1 buckets;
  for _ = 1 to 3 do txn () done;
  buckets

(* The two legal routing tables: default ownership, and default with
   the split's buckets on shard 1. Any recovered route must equal one
   of them exactly. *)
let split_legal_routes ss buckets =
  let r0 =
    Array.init (Store.buckets ss.st) (fun b -> Store.default_owner ss.st b)
  in
  let r1 = Array.copy r0 in
  List.iter (fun b -> r1.(b) <- 1) buckets;
  (r0, r1)

let split_route_check ss buckets =
  let r0, r1 = split_legal_routes ss buckets in
  let rt = Store.route_table ss.st in
  if rt = r0 then Ok "route=default"
  else if rt = r1 then Ok "route=split"
  else
    Error
      (Printf.sprintf "mixed route: %s"
         (String.concat ","
            (Array.to_list (Array.map string_of_int rt))))

(* Post-recovery liveness probe: one single-key transaction on a moved
   bucket and one on an unmoved key must both commit and read back. *)
let split_probe ss buckets =
  let probe key v =
    match Store.exec ss.st ~writes:[ (key, v) ] with
    | Ok () ->
      if read_word ss.st key <> v then
        Error (Printf.sprintf "probe key %d: wrote %d read %d" key v
                 (read_word ss.st key))
      else Ok ()
    | Error e ->
      Error (Printf.sprintf "probe key %d: %s" key (err e))
  in
  let moved = List.hd buckets in
  let unmoved =
    let n = Array.length ss.model in
    let rec go k = if List.mem (k mod Store.buckets ss.st) buckets
      then go (k + 1) else k in
    go 0 mod n
  in
  match probe moved 0x51A51 with
  | Error _ as e -> e
  | Ok () -> probe unmoved 0x51B52

let cutover_plan ~nth =
  Lvm_fault.Plan.create
    [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Split_cutover;
        trigger = Lvm_fault.Plan.At_count nth;
        fault = Lvm_fault.Fault.Crash } ]

let run_one_split ~shards ~label ~seed plan =
  let ss = build_store ~shards () in
  let buckets = split_buckets ss in
  Lvm_machine.Machine.set_fault_plan (store_machine ss) (Some plan);
  match run_split_schedule ss ~shards ~seed with
  | moved_buckets -> (
    Lvm_machine.Machine.set_fault_plan (store_machine ss) None;
    let state =
      match check_store_state ss with
      | Error _ as e -> e
      | Ok _ ->
        (* the merge sent everything home: only the default route is
           legal for a completed schedule *)
        let r0, _ = split_legal_routes ss moved_buckets in
        if Store.route_table ss.st = r0 then Ok "committed"
        else Error "completed run left a non-default route"
    in
    match state with
    | Ok _ -> (Printf.sprintf "%s completed state=ok\n" label, None, false,
               false)
    | Error d ->
      ( Printf.sprintf "%s completed state=FAIL %s\n" label d,
        Some (label ^ ": " ^ d), false, false ))
  | exception Lvm_fault.Fault.Crashed { cycle; site } -> (
    Lvm_machine.Machine.set_fault_plan (store_machine ss) None;
    let report = Store.recover ss.st in
    let torn =
      report.Store.coordinator.Lvm_rvm.Ramdisk.truncated_bytes > 0
      || Array.exists
           (fun (r : Lvm_rvm.Ramdisk.recovery) -> r.truncated_bytes > 0)
           report.Store.shard_reports
    in
    let base =
      Printf.sprintf "%s crashed cycle=%d site=%s %s" label cycle
        (Lvm_fault.Fault.site_name site)
        (Store.recovery_to_string report)
    in
    (* Replay idempotence: state and route both. *)
    let first = store_snapshot ss in
    let first_route = Store.route_table ss.st in
    ignore (Store.recover ss.st);
    let second = store_snapshot ss in
    let second_route = Store.route_table ss.st in
    let verdict =
      match check_store_state ss with
      | Error _ as e -> e
      | Ok which -> (
        if first <> second || first_route <> second_route then
          Error "recovery not idempotent"
        else if Store.active_move ss.st <> None then
          Error "recovery left a move active"
        else
          match split_route_check ss buckets with
          | Error _ as e -> e
          | Ok route -> (
            match split_probe ss buckets with
            | Error _ as e -> e
            | Ok () -> Ok (which ^ " " ^ route)))
    in
    match verdict with
    | Ok which ->
      (Printf.sprintf "%s state=ok(%s)\n" base which, None, true, torn)
    | Error d ->
      ( Printf.sprintf "%s state=FAIL %s\n" base d,
        Some (label ^ ": " ^ d), true, torn ))

let run_split ?(seed = 11) ?(points = 90) ?(torn_points = 8)
    ?(cutover_points = 2) ?(shards = 2) () =
  (* Reference run: how long the whole schedule takes with no faults. *)
  let total =
    let ss = build_store ~shards () in
    ignore (run_split_schedule ss ~shards ~seed);
    Kernel.max_time (Store.kernel ss.st)
  in
  let buf = Buffer.create 4096 in
  let failures = ref [] in
  let crashed = ref 0 and completed = ref 0 and torn = ref 0 in
  let record (line, failure, did_crash, did_torn) =
    Buffer.add_string buf line;
    (match failure with Some f -> failures := f :: !failures | None -> ());
    if did_crash then incr crashed else incr completed;
    if did_torn then incr torn
  in
  Buffer.add_string buf
    (Printf.sprintf "splitsweep seed=%d total_cycles=%d shards=%d\n" seed
       total shards);
  for i = 0 to points - 1 do
    let at = 1 + (i * (total - 1) / max 1 (points - 1)) in
    record
      (run_one_split ~shards
         ~label:(Printf.sprintf "point=%d at=%d" i at) ~seed (crash_plan ~at))
  done;
  for j = 1 to torn_points do
    let keep = 1 + (j * 7 mod 23) in
    record
      (run_one_split ~shards
         ~label:(Printf.sprintf "torn=%d keep=%d" j keep)
         ~seed (torn_plan ~nth:j ~keep))
  done;
  for n = 1 to cutover_points do
    record
      (run_one_split ~shards
         ~label:(Printf.sprintf "cutover=%d" n) ~seed (cutover_plan ~nth:n))
  done;
  {
    points = points + torn_points + cutover_points;
    crashed = !crashed;
    completed = !completed;
    torn = !torn;
    failures = List.rev !failures;
    trace = Buffer.contents buf;
  }
