(** The TPC-A debit-credit driver, runnable over RVM or RLVM (Table 3).

    Each transaction picks a teller and account, applies a random delta to
    the account, teller and branch balances, and appends a history entry —
    three four-byte recoverable updates plus a sixteen-byte record, the
    canonical "sequence of simple debit-credit operations". The store
    abstraction differs only in annotation: RVM requires [set_range]
    before each update, RLVM needs none. *)

type store = {
  begin_txn : unit -> unit;
  annotate : off:int -> len:int -> unit;
      (** [set_range] for RVM; a no-op for RLVM. *)
  read_word : off:int -> int;
  write_word : off:int -> int -> unit;
  commit : unit -> unit;
  kernel : Lvm_vm.Kernel.t;
}

val rvm_store : Lvm_rvm.Rvm.t -> store
val rlvm_store : Lvm_rvm.Rlvm.t -> store

type result = {
  txns : int;
  cycles : int;
  tps : float;  (** Throughput at the prototype's 25 MHz clock. *)
  cycles_per_txn : float;
}

val setup : store -> Bank.t -> unit
(** Zero balances in one setup transaction. *)

val transaction :
  store -> Bank.t -> rng:Random.State.t -> history_slot:int -> unit
(** One debit-credit transaction (begin, three balance updates, a history
    record, commit). Exposed for drivers — like the crash sweep — that
    need to interleave transactions with other work. *)

val run : ?seed:int -> store -> Bank.t -> txns:int -> result

val balance_invariant : store -> Bank.t -> bool
(** Sum of branch balances = sum of teller balances = sum of account
    balances (every delta is applied to one of each). *)

val total_balance : store -> Bank.t -> int
(** Sum of all account balances (signed). *)
