type t = (string * int) list

let of_alist l = l
let to_alist t = t

let get t name =
  match List.assoc_opt name t with Some v -> v | None -> 0

let mem t name = List.mem_assoc name t

let delta ~before ~after =
  let changed = List.map (fun (n, v) -> (n, v - get before n)) after in
  (* names that existed only before appear as negative deltas *)
  let vanished =
    List.filter_map
      (fun (n, v) -> if mem after n then None else Some (n, -v))
      before
  in
  changed @ vanished

let merge a b =
  let extra = List.filter (fun (n, _) -> not (mem a n)) b in
  List.map (fun (n, v) -> (n, v + get b n)) a @ extra

let total = List.fold_left (fun acc (_, v) -> acc + v) 0

let pp ppf t =
  let w =
    List.fold_left (fun m (n, _) -> max m (String.length n)) 0 t
  in
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "%-*s %d" w n v)
    t;
  Format.pp_close_box ppf ()
