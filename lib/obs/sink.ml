type format = Human | Json | Csv

let format_to_string = function
  | Human -> "human"
  | Json -> "json"
  | Csv -> "csv"

let format_of_string = function
  | "human" -> Some Human
  | "json" -> Some Json
  | "csv" -> Some Csv
  | _ -> None

let all_formats = [ Human; Json; Csv ]

(* {1 JSON plumbing (no external dependency)} *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) fields)
  ^ "}"

let json_arr elts = "[" ^ String.concat "," elts ^ "]"

let counters_json snap =
  json_obj
    (List.map
       (fun (n, v) -> (n, string_of_int v))
       (Snapshot.to_alist snap))

let histogram_json h =
  json_obj
    [
      ("name", json_str (Histogram.name h));
      ("count", string_of_int (Histogram.count h));
      ("sum", string_of_int (Histogram.sum h));
      ("max", string_of_int (Histogram.max_seen h));
      ( "buckets",
        json_arr
          (List.map
             (fun (le, c) ->
               json_obj
                 [
                   ( "le",
                     match le with
                     | Some le -> string_of_int le
                     | None -> json_str "inf" );
                   ("count", string_of_int c);
                 ])
             (Histogram.buckets h)) );
    ]

let entry_json (e : Trace.entry) =
  json_obj
    (("at", string_of_int e.at)
     :: ("ev", json_str (Event.label e.event))
     :: List.map (fun (k, v) -> (k, string_of_int v)) (Event.fields e.event))

let blob_json ?label ?(histograms = []) ?trace snap =
  json_obj
    ((match label with Some l -> [ ("label", json_str l) ] | None -> [])
    @ [ ("counters", counters_json snap) ]
    @ (match histograms with
      | [] -> []
      | hs -> [ ("histograms", json_arr (List.map histogram_json hs)) ])
    @
    match trace with
    | None -> []
    | Some t ->
      [
        ("trace_dropped", string_of_int (Trace.dropped t));
        ("trace", json_arr (List.map entry_json (Trace.entries t)));
      ])

(* {1 Emission} *)

let emit_human ppf ?label ?(histograms = []) ?trace snap =
  (match label with
  | Some l -> Format.fprintf ppf "-- %s --@." l
  | None -> ());
  Format.fprintf ppf "%a@." Snapshot.pp snap;
  List.iter
    (fun h -> if Histogram.count h > 0 then Format.fprintf ppf "%a@." Histogram.pp h)
    histograms;
  match trace with
  | None -> ()
  | Some t -> Format.fprintf ppf "%a@." Trace.pp t

let emit_csv ppf ?label ?(histograms = []) ?trace snap =
  let prefix = match label with Some l -> l | None -> "" in
  List.iter
    (fun (n, v) -> Format.fprintf ppf "counter,%s,%s,%d@." prefix n v)
    (Snapshot.to_alist snap);
  List.iter
    (fun h ->
      List.iter
        (fun (le, c) ->
          Format.fprintf ppf "histogram,%s,%s,%s,%d@." prefix
            (Histogram.name h)
            (match le with Some le -> string_of_int le | None -> "inf")
            c)
        (Histogram.buckets h))
    histograms;
  match trace with
  | None -> ()
  | Some t ->
    Trace.iter t ~f:(fun ~at ev ->
        Format.fprintf ppf "trace,%s,%d,%s,%s@." prefix at (Event.label ev)
          (String.concat ";"
             (List.map
                (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                (Event.fields ev))))

let emit ?label ?histograms ?trace format ppf snap =
  match format with
  | Human -> emit_human ppf ?label ?histograms ?trace snap
  | Json ->
    Format.fprintf ppf "%s@." (blob_json ?label ?histograms ?trace snap)
  | Csv -> emit_csv ppf ?label ?histograms ?trace snap

let emit_trace format ppf trace =
  match format with
  | Human -> Format.fprintf ppf "%a@." Trace.pp trace
  | Json ->
    (* JSON-lines: one event object per line *)
    List.iter
      (fun e -> Format.fprintf ppf "%s@." (entry_json e))
      (Trace.entries trace)
  | Csv ->
    Trace.iter trace ~f:(fun ~at ev ->
        Format.fprintf ppf "trace,,%d,%s,%s@." at (Event.label ev)
          (String.concat ";"
             (List.map
                (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                (Event.fields ev))))
