type entry = { at : int; event : Event.t }

type t = {
  buf : entry array;
  capacity : int;
  mutable next : int; (* slot for the next entry *)
  mutable total : int; (* entries ever recorded *)
}

let dummy = { at = 0; event = Event.Overload_enter { occupancy = 0 } }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity dummy; capacity; next = 0; total = 0 }

let capacity t = t.capacity

let record t ~at event =
  t.buf.(t.next) <- { at; event };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let length t = min t.total t.capacity
let total t = t.total
let dropped t = t.total - length t

(* Oldest first. *)
let entries t =
  let n = length t in
  let first = (t.next - n + t.capacity * 2) mod t.capacity in
  List.init n (fun i -> t.buf.((first + i) mod t.capacity))

let iter t ~f = List.iter (fun e -> f ~at:e.at e.event) (entries t)

let clear t =
  t.next <- 0;
  t.total <- 0

let pp_entry ppf e = Format.fprintf ppf "t=%-8d %a" e.at Event.pp e.event

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  if dropped t > 0 then
    Format.fprintf ppf "... %d earlier events dropped@ " (dropped t);
  List.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_entry ppf e)
    (entries t);
  Format.pp_close_box ppf ()
