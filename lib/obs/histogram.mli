(** Bounded histograms with fixed integer bucket boundaries.

    A histogram has a strictly increasing array of upper bounds plus one
    implicit overflow bucket; observing a value increments the first
    bucket whose bound is >= the value. Everything is integer arithmetic
    over a fixed layout, so rendering is deterministic and merging across
    machines is exact. *)

type t

val create : name:string -> bounds:int array -> t
(** Raises [Invalid_argument] on empty or non-increasing [bounds]. *)

val pow2_bounds : max_exp:int -> int array
(** [[|0; 1; 2; 4; ...; 2^max_exp|]] — the default shape for cycle and
    length distributions. *)

val observe : t -> int -> unit

val name : t -> string
val bounds : t -> int array
val counts : t -> int array
(** Bucket counts; one longer than {!bounds} (overflow last). *)

val count : t -> int
val sum : t -> int
val max_seen : t -> int
val mean : t -> float

val buckets : t -> (int option * int) list
(** (upper bound, count) pairs; [None] is the overflow bucket. *)

val mergeable : t -> t -> bool

val merge : t -> t -> t
(** Fresh histogram with summed counts; raises [Invalid_argument] unless
    {!mergeable}. *)

val pp : Format.formatter -> t -> unit
(** Header line plus one line per non-empty bucket. *)
