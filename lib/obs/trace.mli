(** A deterministic bounded ring of cycle-stamped {!Event} records.

    The ring keeps the most recent [capacity] events; older ones are
    dropped (and counted). Because events and cycle stamps are pure
    functions of the simulated machine's inputs, two runs with the same
    seed produce byte-identical traces — the determinism suite asserts
    exactly that. *)

type t

type entry = { at : int; event : Event.t }

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 entries. *)

val capacity : t -> int

val record : t -> at:int -> Event.t -> unit

val entries : t -> entry list
(** Retained entries, oldest first. *)

val iter : t -> f:(at:int -> Event.t -> unit) -> unit

val length : t -> int
(** Retained entries. *)

val total : t -> int
(** Entries ever recorded. *)

val dropped : t -> int
(** [total - length]. *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
