(** The per-machine observability context.

    One [Ctx.t] is shared by every component of a simulated machine (bus,
    caches, logger, VM kernel, simulation scheduler): it holds the event
    {!Trace} ring, the {!Counter} registry and the {!Histogram}s, and it
    knows how to assemble a full counter {!Snapshot} (registry counters
    plus any enrolled providers, such as the machine's hardware [Perf]
    record). Newly created contexts announce themselves to an attached
    {!Collector}, which is how the CLI aggregates metrics from machines
    created deep inside an experiment. *)

type t

val create : ?trace_capacity:int -> unit -> t

val trace : t -> Trace.t
val event : t -> at:int -> Event.t -> unit

val counter : t -> string -> Counter.counter
(** Find-or-create in the context's registry. *)

val histogram : t -> name:string -> bounds:int array -> Histogram.t
(** Find-or-create; an existing histogram keeps its original bounds. *)

val histograms : t -> Histogram.t list
(** Registration order. *)

val add_provider : t -> (unit -> (string * int) list) -> unit
(** Enroll an external counter source (e.g. the machine's perf record);
    providers are read first when building {!snapshot}. *)

val snapshot : t -> Snapshot.t

(**/**)

val on_create : (t -> unit) option ref
(** Internal hook used by {!Collector}. *)
