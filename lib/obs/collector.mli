(** Ambient aggregation of observability contexts.

    Experiments and benchmarks construct machines internally, out of the
    caller's reach. A collector, while attached, is notified of every
    {!Ctx} created and can afterwards merge their counters and
    histograms (and enumerate their traces) into one report — this is
    what backs [lvmctl --metrics] and [lvmctl trace]. Collectors nest:
    detaching restores the previously attached one. *)

type t

val attach : unit -> t
(** Start observing contexts created from now on. *)

val detach : t -> unit
(** Stop observing; restores the previously attached collector. *)

val with_collector : (unit -> 'a) -> 'a * t
(** [with_collector f] runs [f] under a fresh collector and returns its
    result together with the (detached) collector. *)

val ctxs : t -> Ctx.t list
(** Captured contexts, in creation order. *)

val snapshot : t -> Snapshot.t
(** Merged (summed) counters across all captured contexts. *)

val histograms : t -> Histogram.t list
(** Histograms merged by name across contexts. *)

val traces : t -> Trace.t list
