(** A registry of named monotonic counters.

    Every component of the stack registers its counters here by name
    (find-or-create, stable registration order), so a whole machine's
    counters can be enumerated into a {!Snapshot} without knowing who
    owns what. This registry is what subsumes the hardware's flat
    [Lvm_machine.Perf] record: the machine enrolls its perf counters as a
    snapshot provider and higher layers (kernel, simulation engine) add
    their own named counters alongside. *)

type counter
(** A single named counter. *)

type t
(** The registry. *)

val create : unit -> t

val counter : t -> string -> counter
(** Find or create the counter named [name]. Registration order is
    stable; repeated calls return the same counter. *)

val name : counter -> string
val value : counter -> int
val incr : counter -> unit

val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val set : counter -> int -> unit

val to_alist : t -> (string * int) list
(** All counters in registration order. *)

val reset : t -> unit
(** Zero every counter (registrations are kept). *)
