(** Pluggable output sinks for metrics and traces.

    Three formats render the same data:

    - [Human]: aligned counter columns, non-empty histogram buckets, a
      pretty-printed trace;
    - [Json]: a single JSON object
      [{"label", "counters", "histograms", "trace"}] on one line (the
      trace-only emitter produces JSON-lines, one event per line);
    - [Csv]: self-describing rows
      [kind,label,...] — [counter,<label>,<name>,<value>],
      [histogram,<label>,<name>,<le>,<count>],
      [trace,<label>,<at>,<event>,<k=v;...>].

    Everything is emitted from explicit snapshots, so output is
    deterministic. *)

type format = Human | Json | Csv

val format_to_string : format -> string
val format_of_string : string -> format option
val all_formats : format list

val emit :
  ?label:string ->
  ?histograms:Histogram.t list ->
  ?trace:Trace.t ->
  format ->
  Format.formatter ->
  Snapshot.t ->
  unit
(** Render a full metrics blob: counters, plus optional histograms and
    trace. *)

val emit_trace : format -> Format.formatter -> Trace.t -> unit
(** Render just a trace ([Json] yields JSON-lines). *)

val blob_json :
  ?label:string ->
  ?histograms:Histogram.t list ->
  ?trace:Trace.t ->
  Snapshot.t ->
  string
(** The [Json] blob as a string (what benchmarks write to
    [BENCH_*.json] files). *)
