(** A point-in-time reading of a set of named counters.

    Snapshots are ordered association lists, so rendering them is
    deterministic. [delta] turns two snapshots taken around a workload
    into the workload's own counts — the idiom every experiment report
    uses:

    {[
      let before = Machine.snapshot m in
      run_workload ();
      let work = Snapshot.delta ~before ~after:(Machine.snapshot m) in
      assert (Snapshot.get work "log_records" = expected)
    ]} *)

type t

val of_alist : (string * int) list -> t
val to_alist : t -> (string * int) list

val get : t -> string -> int
(** Value of a named counter, 0 when absent. *)

val mem : t -> string -> bool

val delta : before:t -> after:t -> t
(** Pointwise [after - before] over the union of names, in [after]'s
    order. *)

val merge : t -> t -> t
(** Pointwise sum over the union of names (combining machines). *)

val total : t -> int

val pp : Format.formatter -> t -> unit
(** Aligned [name value] lines. *)
