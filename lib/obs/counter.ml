type counter = { name : string; mutable value : int }

type t = { mutable counters : counter list (* newest first *) }

let create () = { counters = [] }

let counter t name =
  match List.find_opt (fun c -> c.name = name) t.counters with
  | Some c -> c
  | None ->
    let c = { name; value = 0 } in
    t.counters <- c :: t.counters;
    c

let name c = c.name
let value c = c.value
let set c v = c.value <- v
let incr c = c.value <- c.value + 1

let add c n =
  if n < 0 then invalid_arg "Counter.add: negative increment";
  c.value <- c.value + n

let to_alist t = List.rev_map (fun c -> (c.name, c.value)) t.counters
let reset t = List.iter (fun c -> c.value <- 0) t.counters
