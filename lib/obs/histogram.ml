type t = {
  name : string;
  bounds : int array; (* strictly increasing upper bounds *)
  counts : int array; (* length bounds + 1; last bucket is overflow *)
  mutable n : int;
  mutable sum : int;
  mutable max_seen : int;
}

let create ~name ~bounds =
  if Array.length bounds = 0 then
    invalid_arg "Histogram.create: need at least one bound";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Histogram.create: bounds must be strictly increasing")
    bounds;
  {
    name;
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    n = 0;
    sum = 0;
    max_seen = min_int;
  }

(* Powers of two 1, 2, 4, ... 2^max_exp, with a leading 0 bucket. *)
let pow2_bounds ~max_exp =
  if max_exp < 0 || max_exp > 30 then
    invalid_arg "Histogram.pow2_bounds: max_exp out of range";
  Array.init (max_exp + 2) (fun i -> if i = 0 then 0 else 1 lsl (i - 1))

let bucket_of t v =
  let n = Array.length t.bounds in
  let rec find i = if i = n || v <= t.bounds.(i) then i else find (i + 1) in
  find 0

let observe t v =
  let b = bucket_of t v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.max_seen then t.max_seen <- v

let name t = t.name
let bounds t = Array.copy t.bounds
let counts t = Array.copy t.counts
let count t = t.n
let sum t = t.sum
let max_seen t = if t.n = 0 then 0 else t.max_seen
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

let buckets t =
  Array.to_list
    (Array.mapi
       (fun i c ->
         let le = if i < Array.length t.bounds then Some t.bounds.(i) else None
         in
         (le, c))
       t.counts)

(* Merge [src] into a fresh copy of [dst]; bounds must agree. *)
let merge a b =
  if a.name <> b.name || a.bounds <> b.bounds then
    invalid_arg "Histogram.merge: incompatible histograms";
  let m = create ~name:a.name ~bounds:a.bounds in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum + b.sum;
  m.max_seen <- max a.max_seen b.max_seen;
  m

let mergeable a b = a.name = b.name && a.bounds = b.bounds

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: n=%d sum=%d max=%d" t.name t.n t.sum
    (max_seen t);
  List.iter
    (fun (le, c) ->
      if c > 0 then
        match le with
        | Some le -> Format.fprintf ppf "@   <= %-6d %d" le c
        | None -> Format.fprintf ppf "@   >  %-6d %d" t.bounds.(Array.length t.bounds - 1) c)
    (buckets t);
  Format.fprintf ppf "@]"
