(** Structured trace events.

    One constructor per noteworthy occurrence in the simulated stack: VM
    faults, logger faults and overloads, DMA flushes, log maintenance,
    deferred-copy resets and the simulation engine's rollback/commit
    decisions. Events carry only integers so that rendering them is
    deterministic and cheap; the {!Trace} ring stamps each one with the
    machine cycle time at which it occurred. *)

type logging_fault_kind = Pmt_miss | Log_addr_invalid

type t =
  | Page_fault of { space : int; vaddr : int }
  | Protect_fault of { space : int; vaddr : int }
  | Logging_fault of { kind : logging_fault_kind; addr : int }
      (** [addr] is the faulting physical page address for PMT misses and
          the log-table index for log-address-invalid faults. *)
  | Overload_enter of { occupancy : int }
      (** The logger FIFO crossed its threshold; processes suspend. *)
  | Overload_exit of { suspended : int }
      (** Resumption after an overload; [suspended] is the cycles lost. *)
  | Dma_flush of { pending : int; drained_at : int }
      (** An explicit logger flush: [pending] records were still queued. *)
  | Log_extend of { segment : int; pages : int; total_pages : int }
  | Log_absorb of { segment : int }
  | Log_recycle of { segment : int; extents : int }
      (** The log ran off its end; records absorb into the default page. *)
  | Dc_reset of { pages : int; dirty : int }
      (** A deferred-copy reset over [pages] pages, [dirty] of them
          modified. *)
  | Rollback of { scheduler : int; target : int; undone : int }
  | Commit of { scheduler : int; gvt : int; events : int }
  | Fault_injected of { site : int; kind : int }
      (** A fault plan fired. [site] and [kind] are the stable integer
          codes from [Lvm_fault.Fault.site_code] / [kind_code]. *)
  | Wal_torn of { off : int; len : int }
      (** Recovery found a torn or corrupt write-ahead-log tail starting
          at byte [off] and truncated [len] bytes. *)
  | Recovery of { committed : int; replayed : int; truncated : int }
      (** A recoverable store finished crash recovery: [committed]
          transactions found durable, [replayed] redo records applied,
          [truncated] WAL bytes discarded as torn. *)

val label : t -> string
(** Stable snake_case name, used by every sink. *)

val fields : t -> (string * int) list
(** Payload as name/value pairs, in declaration order. *)

val pp : Format.formatter -> t -> unit
(** [label{k=v, ...}]. *)
