type t = {
  trace : Trace.t;
  counters : Counter.t;
  mutable histograms : Histogram.t list; (* newest first *)
  mutable providers : (unit -> (string * int) list) list; (* newest first *)
}

(* Set by Collector.attach so new contexts enroll themselves. *)
let on_create : (t -> unit) option ref = ref None

let create ?trace_capacity () =
  let t =
    {
      trace = Trace.create ?capacity:trace_capacity ();
      counters = Counter.create ();
      histograms = [];
      providers = [];
    }
  in
  (match !on_create with None -> () | Some f -> f t);
  t

let trace t = t.trace
let event t ~at ev = Trace.record t.trace ~at ev
let counter t name = Counter.counter t.counters name

let histogram t ~name ~bounds =
  match List.find_opt (fun h -> Histogram.name h = name) t.histograms with
  | Some h -> h
  | None ->
    let h = Histogram.create ~name ~bounds in
    t.histograms <- h :: t.histograms;
    h

let histograms t = List.rev t.histograms

let add_provider t f = t.providers <- f :: t.providers

let snapshot t =
  Snapshot.of_alist
    (List.concat_map (fun f -> f ()) (List.rev t.providers)
    @ Counter.to_alist t.counters)
