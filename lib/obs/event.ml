type logging_fault_kind = Pmt_miss | Log_addr_invalid

type t =
  | Page_fault of { space : int; vaddr : int }
  | Protect_fault of { space : int; vaddr : int }
  | Logging_fault of { kind : logging_fault_kind; addr : int }
  | Overload_enter of { occupancy : int }
  | Overload_exit of { suspended : int }
  | Dma_flush of { pending : int; drained_at : int }
  | Log_extend of { segment : int; pages : int; total_pages : int }
  | Log_absorb of { segment : int }
  | Log_recycle of { segment : int; extents : int }
  | Dc_reset of { pages : int; dirty : int }
  | Rollback of { scheduler : int; target : int; undone : int }
  | Commit of { scheduler : int; gvt : int; events : int }
  | Fault_injected of { site : int; kind : int }
  | Wal_torn of { off : int; len : int }
  | Recovery of { committed : int; replayed : int; truncated : int }

let label = function
  | Page_fault _ -> "page_fault"
  | Protect_fault _ -> "protect_fault"
  | Logging_fault { kind = Pmt_miss; _ } -> "logging_fault_pmt"
  | Logging_fault { kind = Log_addr_invalid; _ } -> "logging_fault_log_addr"
  | Overload_enter _ -> "overload_enter"
  | Overload_exit _ -> "overload_exit"
  | Dma_flush _ -> "dma_flush"
  | Log_extend _ -> "log_extend"
  | Log_absorb _ -> "log_absorb"
  | Log_recycle _ -> "log_recycle"
  | Dc_reset _ -> "dc_reset"
  | Rollback _ -> "rollback"
  | Commit _ -> "commit"
  | Fault_injected _ -> "fault_injected"
  | Wal_torn _ -> "wal_torn"
  | Recovery _ -> "recovery"

let fields = function
  | Page_fault { space; vaddr } | Protect_fault { space; vaddr } ->
    [ ("space", space); ("vaddr", vaddr) ]
  | Logging_fault { kind = _; addr } -> [ ("addr", addr) ]
  | Overload_enter { occupancy } -> [ ("occupancy", occupancy) ]
  | Overload_exit { suspended } -> [ ("suspended", suspended) ]
  | Dma_flush { pending; drained_at } ->
    [ ("pending", pending); ("drained_at", drained_at) ]
  | Log_extend { segment; pages; total_pages } ->
    [ ("segment", segment); ("pages", pages); ("total_pages", total_pages) ]
  | Log_absorb { segment } -> [ ("segment", segment) ]
  | Log_recycle { segment; extents } ->
    [ ("segment", segment); ("extents", extents) ]
  | Dc_reset { pages; dirty } -> [ ("pages", pages); ("dirty", dirty) ]
  | Rollback { scheduler; target; undone } ->
    [ ("scheduler", scheduler); ("target", target); ("undone", undone) ]
  | Commit { scheduler; gvt; events } ->
    [ ("scheduler", scheduler); ("gvt", gvt); ("events", events) ]
  | Fault_injected { site; kind } -> [ ("site", site); ("kind", kind) ]
  | Wal_torn { off; len } -> [ ("off", off); ("len", len) ]
  | Recovery { committed; replayed; truncated } ->
    [ ("committed", committed); ("replayed", replayed);
      ("truncated", truncated) ]

let pp ppf t =
  Format.fprintf ppf "%s{%s}" (label t)
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (fields t)))
