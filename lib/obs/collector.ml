type t = {
  mutable ctxs : Ctx.t list; (* newest first *)
  previous : (Ctx.t -> unit) option;
}

let attach () =
  let c = { ctxs = []; previous = !Ctx.on_create } in
  let note ctx =
    c.ctxs <- ctx :: c.ctxs;
    match c.previous with None -> () | Some f -> f ctx
  in
  Ctx.on_create := Some note;
  c

let detach t = Ctx.on_create := t.previous
let ctxs t = List.rev t.ctxs

let snapshot t =
  List.fold_left
    (fun acc ctx -> Snapshot.merge acc (Ctx.snapshot ctx))
    (Snapshot.of_alist []) (ctxs t)

(* Histograms with the same name and bounds (one per machine) merge into
   one; the result keeps first-seen order. *)
let histograms t =
  let all = List.concat_map Ctx.histograms (ctxs t) in
  List.fold_left
    (fun acc h ->
      let rec merge_in = function
        | [] -> [ h ]
        | h' :: rest when Histogram.mergeable h' h ->
          Histogram.merge h' h :: rest
        | h' :: rest -> h' :: merge_in rest
      in
      merge_in acc)
    [] all

let traces t = List.map Ctx.trace (ctxs t)

let with_collector f =
  let c = attach () in
  let result =
    try f ()
    with e ->
      detach c;
      raise e
  in
  detach c;
  (result, c)
