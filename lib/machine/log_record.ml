type t = {
  addr : int;
  value : int;
  size : int;
  timestamp : int;
  pre_image : bool;
}

let bytes = 16
let pre_image_flag = 0x100

let encode_bytes buf ~pos t =
  Bytes.set_int32_le buf pos (Int32.of_int (t.addr land 0xFFFFFFFF));
  Bytes.set_int32_le buf (pos + 4) (Int32.of_int (t.value land 0xFFFFFFFF));
  Bytes.set_int32_le buf (pos + 8)
    (Int32.of_int
       ((t.size land 0xFF) lor (if t.pre_image then pre_image_flag else 0)));
  Bytes.set_int32_le buf (pos + 12) (Int32.of_int (t.timestamp land 0xFFFFFFFF))

let decode_bytes buf ~pos =
  let word off = Int32.to_int (Bytes.get_int32_le buf (pos + off)) land 0xFFFFFFFF in
  let size_field = word 8 in
  { addr = word 0; value = word 4; size = size_field land 0xFF;
    timestamp = word 12; pre_image = size_field land pre_image_flag <> 0 }

let scratch = Bytes.create bytes

let encode_to mem ~paddr t =
  encode_bytes scratch ~pos:0 t;
  Physmem.blit_of_bytes mem scratch ~pos:0 ~dst:paddr ~len:bytes

let decode_from mem ~paddr =
  Physmem.blit_to_bytes mem ~src:paddr scratch ~pos:0 ~len:bytes;
  decode_bytes scratch ~pos:0

let equal a b =
  a.addr = b.addr && a.value = b.value && a.size = b.size
  && a.timestamp = b.timestamp && a.pre_image = b.pre_image

let pp ppf t =
  Format.fprintf ppf "{addr=0x%x value=0x%x size=%d ts=%d%s}" t.addr t.value
    t.size t.timestamp (if t.pre_image then " pre" else "")

(* {1 The versioned record codec}

   V0 is the seed wire format above: bare 16-byte records back to back.
   V1 is a self-framing variable-length format: every record starts with
   a tag word naming its kind, so a stream can mix compact encodings and
   still be walked without out-of-band metadata. A V1 stream opens with
   an 8-byte version record (tag + magic) — the on-disk version tag that
   lets a reader tell the formats apart and keeps old logs recoverable. *)

type version = V0 | V1

let version_to_string = function V0 -> "v0" | V1 -> "v1"

module Codec = struct
  (* Tag word layout (word 0 of every V1 record):
     bits 0..2   kind (0 raw, 1 run, 2 delta, 3 version, 4 pad)
     bit  3      pre-image flag
     bits 4..6   access size in bytes (1, 2 or 4)
     bits 8..31  kind-specific argument:
       run      value count (2..255), bits 8..15
       delta    word index within the 64-byte line, bits 8..11
       version  format version number, bits 8..15
       pad      total pad length in bytes, bits 8..23 *)

  let kind_raw = 0
  let kind_run = 1
  let kind_delta = 2
  let kind_version = 3
  let kind_pad = 4

  let magic = 0x4C564331 (* "LVC1" *)
  let header_bytes = 8
  let max_run = 255
  let line_bytes = 64

  (* Worst case a pad record has to burn before a fresh page: the emitter
     splits runs at page boundaries, so the largest unit that must fit
     whole is a 16-byte raw record plus the 4-byte pad tag itself. *)
  let max_pad_bytes = 20

  let tag ~kind ~size ~pre_image ~arg =
    kind lor (if pre_image then 8 else 0) lor ((size land 7) lsl 4)
    lor (arg lsl 8)

  let tag_kind w = w land 7
  let tag_pre w = w land 8 <> 0
  let tag_size w = (w lsr 4) land 7
  let tag_arg w = (w lsr 8) land 0xFFFFFF

  let get32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF
  let set32 b pos v = Bytes.set_int32_le b pos (Int32.of_int v)

  (* Upper bound on the encoded size of [writes] logical records,
     including the stream header and page-boundary pads — the planning
     figure for log-room reservation while records sit in the coalescing
     buffer. *)
  let worst_case_bytes ~writes =
    let raw = writes * bytes in
    header_bytes + raw + (max_pad_bytes * ((raw / Addr.page_size) + 2))

  (* {2 Grouping}

     The encoder works in groups, each one physical record: a run of
     sequential same-page word writes sharing a timestamp, a word-diff
     against the previous logical record's cache line, or a lone raw
     record. Groups never reference anything outside the batch, and a
     delta only ever names the logical record immediately before it, so
     append-ordered streams decode with one record of look-behind. *)

  type group =
    | G_raw of t
    | G_run of t list (* >= 2, sequential word addrs, same page, same ts *)
    | G_delta of t (* same 64-byte line as the previous logical record *)

  let group_records (g : group) =
    match g with G_raw r -> [ r ] | G_run rs -> rs | G_delta r -> [ r ]

  let runnable (r : t) = r.size = 4 && not r.pre_image

  let extends_run (prev : t) (r : t) =
    runnable r && r.addr = prev.addr + 4 && r.timestamp = prev.timestamp
    && Addr.page_number r.addr = Addr.page_number prev.addr

  let delta_of (prev : t) (r : t) =
    runnable r && r.timestamp = prev.timestamp
    && r.addr / line_bytes = prev.addr / line_bytes

  let group_batch records =
    let rec go groups prev = function
      | [] -> List.rev groups
      | r :: rest when not (runnable r) -> go (G_raw r :: groups) (Some r) rest
      | r :: rest ->
        (* collect the longest run starting at [r] *)
        let rec run acc last = function
          | x :: more
            when extends_run last x && List.length acc < max_run ->
            run (x :: acc) x more
          | more -> (List.rev acc, last, more)
        in
        let members, last, rest' = run [ r ] r rest in
        if List.length members >= 2 then
          go (G_run members :: groups) (Some last) rest'
        else begin
          match prev with
          | Some p when delta_of p r -> go (G_delta r :: groups) (Some r) rest
          | Some _ | None -> go (G_raw r :: groups) (Some r) rest
        end
    in
    go [] None records

  (* {2 Physical record encoding} *)

  let group_bytes = function
    | G_raw _ -> bytes
    | G_run rs -> 12 + (4 * List.length rs)
    | G_delta _ -> 8

  let encode_group g =
    let b = Bytes.create (group_bytes g) in
    (match g with
    | G_raw r ->
      set32 b 0
        (tag ~kind:kind_raw ~size:r.size ~pre_image:r.pre_image ~arg:0);
      set32 b 4 (r.addr land 0xFFFFFFFF);
      set32 b 8 (r.value land 0xFFFFFFFF);
      set32 b 12 (r.timestamp land 0xFFFFFFFF)
    | G_run rs ->
      let first = List.hd rs in
      set32 b 0
        (tag ~kind:kind_run ~size:4 ~pre_image:false ~arg:(List.length rs));
      set32 b 4 (first.addr land 0xFFFFFFFF);
      set32 b 8 (first.timestamp land 0xFFFFFFFF);
      List.iteri (fun i r -> set32 b (12 + (4 * i)) (r.value land 0xFFFFFFFF)) rs
    | G_delta r ->
      let widx = Addr.page_offset r.addr mod line_bytes / 4 in
      set32 b 0 (tag ~kind:kind_delta ~size:4 ~pre_image:false ~arg:widx);
      set32 b 4 (r.value land 0xFFFFFFFF));
    b

  let encode_version_header () =
    let b = Bytes.create header_bytes in
    set32 b 0 (tag ~kind:kind_version ~size:0 ~pre_image:false ~arg:1);
    set32 b 4 magic;
    b

  let encode_pad ~len =
    if len < 4 || len mod 4 <> 0 then invalid_arg "Codec.encode_pad";
    let b = Bytes.make len '\000' in
    set32 b 0 (tag ~kind:kind_pad ~size:0 ~pre_image:false ~arg:len);
    b

  (* Encode a whole batch into one contiguous stream fragment (no page
     constraints — the WAL payload / compaction shape). *)
  let encode_fragment records =
    let groups = group_batch records in
    let len = List.fold_left (fun a g -> a + group_bytes g) 0 groups in
    let b = Bytes.create len in
    let pos = ref 0 in
    List.iter
      (fun g ->
        let e = encode_group g in
        Bytes.blit e 0 b !pos (Bytes.length e);
        pos := !pos + Bytes.length e)
      groups;
    b

  (* A fresh stream: version header, then the fragment. *)
  let encode_stream records =
    Bytes.cat (encode_version_header ()) (encode_fragment records)

  (* {2 Decoding}

     [scan] walks a V1 stream fragment, calling [f ~off ~next records]
     once per physical record ([records] is empty for version and pad
     records) and returning the byte offset of the first record that does
     not parse — the torn-tail truncation point. The walk fail-stops: a
     short tail, a bad kind, a run count under 2 or a delta with no
     predecessor all end the scan without raising. *)

  let physical_length b ~pos ~len w =
    let need n = if pos + n <= len then Some n else None in
    match tag_kind w with
    | k when k = kind_raw -> need bytes
    | k when k = kind_run ->
      let n = tag_arg w land 0xFF in
      if n < 2 then None else need (12 + (4 * n))
    | k when k = kind_delta -> need 8
    | k when k = kind_version -> need header_bytes
    | k when k = kind_pad ->
      let l = tag_arg w in
      if l < 4 || l mod 4 <> 0 then None else need l
    | _ -> ignore b; None

  let scan ?prev b ~pos ~len ~f =
    let prev = ref prev in
    let rec go pos =
      if pos >= len then pos
      else if len - pos < 4 then pos
      else
        let w = get32 b pos in
        match physical_length b ~pos ~len w with
        | None -> pos
        | Some plen ->
          let next = pos + plen in
          let records =
            match tag_kind w with
            | k when k = kind_raw ->
              Some
                [ { addr = get32 b (pos + 4); value = get32 b (pos + 8);
                    size = tag_size w; timestamp = get32 b (pos + 12);
                    pre_image = tag_pre w } ]
            | k when k = kind_run ->
              let n = tag_arg w land 0xFF in
              let addr = get32 b (pos + 4) in
              let ts = get32 b (pos + 8) in
              Some
                (List.init n (fun i ->
                     { addr = addr + (4 * i); value = get32 b (pos + 12 + (4 * i));
                       size = 4; timestamp = ts; pre_image = false }))
            | k when k = kind_delta -> (
              match !prev with
              | None -> None (* dangling diff: unreadable, fail-stop *)
              | Some (p : t) ->
                let widx = tag_arg w land 0xF in
                Some
                  [ { addr = (p.addr / line_bytes * line_bytes) + (4 * widx);
                      value = get32 b (pos + 4); size = 4;
                      timestamp = p.timestamp; pre_image = false } ])
            | k when k = kind_version || k = kind_pad -> Some []
            | _ -> None
          in
          (match records with
          | None -> pos
          | Some rs ->
            (match rs with [] -> () | _ -> prev := Some (List.nth rs (List.length rs - 1)));
            f ~off:pos ~next rs;
            go next)
    in
    go pos

  (* Decode every logical record of a fragment; [valid_end] < [len] means
     the tail was torn. *)
  let decode_fragment ?prev b ~pos ~len =
    let acc = ref [] in
    let valid_end =
      scan ?prev b ~pos ~len ~f:(fun ~off:_ ~next:_ rs ->
          List.iter (fun r -> acc := r :: !acc) rs)
    in
    (List.rev !acc, valid_end)

  (* Does the stream open with a V1 version record? The probe requires
     both the version tag word and the magic, so a V0 stream — whose
     first word is an arbitrary data address — is never misread. *)
  let starts_with_header b ~pos ~len =
    len - pos >= header_bytes
    && tag_kind (get32 b pos) = kind_version
    && tag_arg (get32 b pos) land 0xFF = 1
    && get32 b (pos + 4) = magic

  let sniff_version b ~pos ~len =
    if starts_with_header b ~pos ~len then V1 else V0
end
