(** The 16-byte log record wire format produced by the logger hardware.

    A record holds the data address written, the value written there, the
    size of the write, and a timestamp from the logger's 6.25 MHz counter
    (Section 3.1). Records are DMA'ed into log segment pages back to back,
    earlier writes at lower offsets, so user code reads logs by parsing
    this format straight out of memory. *)

type t = {
  addr : int;  (** Data address written. Physical in the prototype logger;
                   virtual with on-chip logging (Section 4.6). *)
  value : int;  (** Value written (low [8 * size] bits significant). *)
  size : int;  (** Write size in bytes: 1, 2 or 4. *)
  timestamp : int;  (** 6.25 MHz counter value, i.e. CPU cycles / 4. *)
  pre_image : bool;
      (** Section 4.6's optional extension: when the on-chip logger is
          configured to record "the memory data before the write", each
          store emits a flagged pre-image record (carrying the old value)
          immediately before the ordinary record. Pre-images enable
          constant-time reverse execution; every state-reconstruction
          reader must skip them. Encoded as bit 8 of the size word. *)
}

val bytes : int
(** Size of an encoded record (16). *)

val encode_to : Physmem.t -> paddr:int -> t -> unit
(** Store the record at physical address [paddr]. *)

val decode_from : Physmem.t -> paddr:int -> t
(** Parse the record at physical address [paddr]. *)

val encode_bytes : Bytes.t -> pos:int -> t -> unit
val decode_bytes : Bytes.t -> pos:int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 The versioned record codec}

    [V0] is the wire format above: bare 16-byte records back to back,
    exactly what the prototype hardware DMAs. [V1] is a self-framing
    variable-length format built from the same logical records: a tag
    word names each record's kind, runs of sequential word writes share
    one header, and a word-diff against the previous record's cache line
    shrinks to 8 bytes. A V1 stream opens with an 8-byte version record,
    the explicit on-disk tag that keeps old logs recoverable (see
    docs/LOGGING.md, "Record formats"). *)

type version = V0 | V1

val version_to_string : version -> string

module Codec : sig
  val magic : int
  (** Word 1 of the version record ("LVC1"). *)

  val header_bytes : int
  (** Size of the version record a V1 stream opens with (8). *)

  val max_run : int
  (** Longest run one record can carry (255 values). *)

  val max_pad_bytes : int
  (** Largest pad a page boundary can cost (the emitter splits runs). *)

  val worst_case_bytes : writes:int -> int
  (** Reservation bound: encoded size of [writes] logical records in the
      worst case, version header and page pads included. *)

  (** One physical record: a lone record, a run of >= 2 sequential word
      writes sharing a timestamp, or a line diff against the previous
      logical record. *)
  type group = G_raw of t | G_run of t list | G_delta of t

  val group_records : group -> t list
  val group_batch : t list -> group list
  (** Greedy grouping; deltas only ever reference the logical record
      immediately before them in the batch. *)

  val group_bytes : group -> int
  val encode_group : group -> Bytes.t
  val encode_version_header : unit -> Bytes.t

  val encode_pad : len:int -> Bytes.t
  (** A pad record of [len] bytes (>= 4, word multiple): skipped by the
      decoder, emitted when the next record would straddle a page. *)

  val encode_fragment : t list -> Bytes.t
  (** Encode a batch as one contiguous stream fragment (no header). *)

  val encode_stream : t list -> Bytes.t
  (** Version header followed by the encoded batch. *)

  val scan :
    ?prev:t -> Bytes.t -> pos:int -> len:int ->
    f:(off:int -> next:int -> t list -> unit) -> int
  (** Walk a V1 fragment, calling [f] once per physical record with its
      decoded logical records (empty for version and pad records).
      Returns the offset of the first record that does not parse — the
      torn-tail truncation point ([= len] for an intact stream). Never
      raises: short tails, bad kinds and dangling diffs all fail-stop. *)

  val decode_fragment : ?prev:t -> Bytes.t -> pos:int -> len:int -> t list * int
  (** All logical records plus the valid end offset. *)

  val starts_with_header : Bytes.t -> pos:int -> len:int -> bool

  val sniff_version : Bytes.t -> pos:int -> len:int -> version
  (** [V1] iff the stream opens with a version record (tag and magic
      both checked, so a V0 stream is never misread). *)
end
