(** The hardware logger (Section 3.1).

    The logger snoops the system bus for write operations tagged as logged
    by the page mapping, translates each into a 16-byte log record, and
    DMAs the record into the current end of the associated log segment. Its
    state is:

    - a direct-mapped {e page mapping table} (PMT) keyed by physical page
      number — tag is the upper bits, index the lower [pmt_bits] bits —
      mapping pages to log table indices;
    - a {e log table} whose entries hold the physical address at which the
      next record of each log is to be written (marked invalid when the
      address crosses a page boundary);
    - write and record FIFOs (819 entries, overload threshold 512).

    A missing PMT entry or an invalid log table entry raises a {e logging
    fault} serviced by the kernel through the registered handler. FIFO
    occupancy above the threshold raises the {e overload interrupt}: the
    kernel suspends the writing processes until the FIFOs drain, a penalty
    of tens of thousands of cycles (Section 4.5.3).

    Two hardware models are provided: [Prototype] (the ParaDiGM bus
    logger: physical addresses in records, FIFO overload interrupts) and
    [On_chip] (Section 4.6: logging in the CPU's VM unit — virtual
    addresses in records and back-pressure stalls instead of overload
    interrupts). *)

type hw = Prototype | On_chip

type mode =
  | Normal  (** Sequential 16-byte records. *)
  | Direct_mapped
      (** The value is written at the same page offset in the log page as
          in the data page (mapped-I/O output, Section 2.6). *)
  | Indexed
      (** A bare stream of 4-byte data values, no address or timestamp
          (streamed device output, Section 2.6). *)

type fault =
  | Pmt_miss of { paddr : int }
      (** No valid PMT entry covers the written page. The address is the
          one the table is keyed by: physical in [Prototype] mode, virtual
          in [On_chip] mode. *)
  | Log_addr_invalid of { log_index : int }
      (** The log table entry is invalid, typically because the log
          address just crossed a page boundary. *)

type fault_outcome =
  | Fixed  (** Tables repaired; the logger retries the record. *)
  | Drop  (** Cannot be repaired; the record is discarded and counted. *)

type t

val create :
  ?obs:Lvm_obs.Ctx.t -> ?hw:hw -> ?record_old_values:bool ->
  ?codec:Log_record.version -> ?coalesce_depth:int ->
  ?pmt_bits:int -> ?log_entries:int ->
  clock:int ref -> Physmem.t -> Bus.t -> Perf.t -> t
(** [create ~clock mem bus perf] builds a logger sharing the machine's CPU
    [clock] (faults and overloads advance it). [obs] is the machine's
    observability context: the logger traces logging faults, overload
    enter/exit and flushes, and feeds the ["logger.fifo_occupancy"]
    histogram at each admitted write. [pmt_bits] defaults to 15
    (32768 entries, 5-bit tags for a 1 GB physical space); [log_entries]
    defaults to 64. [record_old_values] enables Section 4.6's optional
    pre-image records (on-chip hardware only): each store emits a flagged
    record carrying the overwritten value before the ordinary record,
    doubling the logging traffic but enabling constant-time undo.

    [codec] selects the wire format of [Normal]-mode log streams:
    [Log_record.V0] (the default, the bare 16-byte records of the
    prototype) or [Log_record.V1] (the versioned codec — runs, deltas and
    pads; DMA and FIFO cost scale with the encoded size). [coalesce_depth]
    (default 0 = off) enables a [depth]-word associative coalescing buffer
    in front of the FIFOs: repeated full-word writes to the same word are
    absorbed in place and the buffer drains in first-touch order when full
    or at a hard log sync ({!flush_coalesced}). Coalescing is incompatible
    with [record_old_values] (absorbed stores would lose their
    pre-images). With both features off, the datapath is exactly the
    seed's. Metrics [log.coalesce_*], [log.records_*] and [log.bytes_*]
    are registered only when a feature is on, so the default metrics
    snapshot is unchanged. *)

val hw : t -> hw
val records_old_values : t -> bool

val codec : t -> Log_record.version
val coalesce_depth : t -> int

val coalesce_pending : t -> int
(** Writes currently parked in the coalescing buffer. *)

val pending_log_bytes_bound : t -> int
(** Worst-case log bytes the coalescing buffer can still emit (version
    header and page pads included under [V1]) — the log-lifecycle layer
    adds this to its room reservations. *)

val flush_coalesced : t -> unit
(** Drain the coalescing buffer into the log in first-touch order. Called
    by the kernel on every hard log sync (commit/force/snapshot
    boundaries). A no-op when the buffer is empty. *)

val discard_coalesced : t -> unit
(** Drop buffered writes without logging them — the abort path, where the
    log tail is about to be truncated anyway. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val set_fault_handler : t -> (fault -> fault_outcome) -> unit
(** Install the kernel's logging-fault handler. The default handler drops. *)

val set_clock : t -> int ref -> unit
(** Repoint the logger at another CPU's clock. On a multi-CPU machine the
    logger snoops every processor's write-through traffic, but an overload
    interrupt suspends only the {e writing} process (Section 3.2) — so the
    machine points the logger at the active CPU's clock before each
    access. Single-CPU machines never call this. *)

val set_snoop_observer :
  t -> (paddr:int -> vaddr:int -> size:int -> value:int -> unit) option ->
  unit
(** Attach a second bus snoop that observes every logged write the logger
    services — the interprocessor consistency mechanism of Section 2.6:
    "the bus overhead for logging provides interprocessor consistency
    with no additional overhead; the consistency snoop simply monitors
    the logging bus traffic." The observer runs at zero cost to the
    writing processor. *)

val set_fault_plan : t -> Lvm_fault.Plan.t option -> unit
(** Attach (or clear) a fault plan. The logger consults it at two sites:
    [Logger_admit] on each Prototype-mode FIFO admission ([Fifo_overrun]
    forces the overload interrupt regardless of occupancy) and [Log_dma]
    when a record is about to be formed and DMA-ed ([Dma_fail] loses the
    record, counted in [Perf.log_records_lost]). A [Crash] at either site
    raises [Lvm_fault.Fault.Crashed]. [Machine.set_fault_plan] installs
    the plan here automatically. *)

(** {1 Kernel (privileged) table operations} *)

val load_pmt : t -> page:int -> log_index:int -> unit
(** Load the PMT entry for physical page [page], evicting whatever entry
    shared its slot. *)

val pmt_lookup : t -> page:int -> int option
(** Current log index for [page], if its PMT entry is present and valid. *)

val invalidate_pmt : t -> page:int -> unit

val set_log_entry : t -> index:int -> mode:mode -> addr:int -> unit
(** Make log table entry [index] valid, writing its next record at
    physical address [addr]. *)

val retarget_log_entry : t -> index:int -> addr:int -> unit
(** Re-point a log table entry at a new next-record address without
    touching its mode — how the log-lifecycle layer switches the logger
    onto the next extent of a ring (the entry's mode was fixed when the
    log segment was first armed). Marks the entry valid. *)

val invalidate_log_entry : t -> index:int -> unit

val log_entry : t -> index:int -> (mode * int) option
(** Mode and next-record address of a valid entry. *)

val log_entries : t -> int

(** {1 Datapath} *)

val snoop :
  ?old_value:int -> t -> paddr:int -> vaddr:int -> size:int -> value:int ->
  unit
(** Observe a logged write on the bus: check FIFO pressure (overload
    interrupt or on-chip stall, possibly advancing the shared clock) and
    run the entry through the pipeline, booking its DMA on the bus's
    low-priority track. The machine calls this from its write path when
    the page mapping asserts the "logged" bus signal. *)

val advance : t -> now:int -> unit
(** Historical synchronization point; entries are serviced eagerly at
    snoop time (the DMA track never delays the CPU), so this is a no-op. *)

val complete_pending : t -> unit
(** Synchronize with the pipeline before software reads the log tables.
    A no-op under eager servicing; kept as the kernel's ordering point. *)

val busy : t -> bool
(** Whether the logger is still draining records at the current clock. *)

val occupancy : t -> int
(** FIFO occupancy as of the current clock (for tests and benches). *)

val drained_at : t -> int
(** Cycle at which the FIFOs will be empty absent new writes. *)

val flush : t -> unit
(** Advance the clock until the FIFOs are empty (used by benches between
    measurements so overload state does not leak across runs). *)
