(** Performance counters maintained by the simulated machine.

    Every hardware component increments these as it charges cycles, so the
    benches can report both elapsed cycles and event counts (log records
    emitted, overloads taken, faults serviced, ...). *)

type t = {
  mutable bus_busy_cycles : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l1_write_backs : int;
  mutable write_throughs : int;
  mutable log_records : int;
  mutable log_records_lost : int;
  mutable logging_faults_pmt : int;
  mutable logging_faults_log_addr : int;
  mutable overloads : int;
  mutable overload_cycles : int;
  mutable page_faults : int;
  mutable write_protect_faults : int;
  mutable dc_resets : int;
  mutable dc_pages_scanned : int;
  mutable dc_pages_dirty : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val to_alist : t -> (string * int) list
(** All counters as name/value pairs, in declaration order. This is how
    the perf record enrolls as an [Lvm_obs.Ctx] snapshot provider. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump of all counters. *)
