(** The assembled simulated machine: CPU clocks, physical memory, system
    bus, first-level caches, second-level deferred-copy support and the
    logger.

    This is the hardware layer that the VM system software ([Lvm_vm])
    drives. All accesses here are physical; virtual address translation and
    fault handling live above. Execution is sequential: [compute] burns
    cycles, [read]/[write] charge the cache and bus model and perform the
    access against physical memory, and logged writes are snooped by the
    logger as a side effect of appearing on the bus.

    The machine models 1–N processor boards on the shared bus (the
    paper's ParaDiGM prototype carries four 68040s). Each CPU has a
    private clock and first-level cache; memory, the bus, the
    deferred-copy cache and the logger are shared. Exactly one CPU is
    {e active} at a time ([set_cpu]); the deterministic round-robin
    scheduler in [Lvm_vm.Kernel] interleaves them. Write-through traffic
    from any CPU is snooped both by the logger and by the other CPUs'
    caches (write-invalidate, Section 2.6), and a logger FIFO overload
    suspends only the CPU that issued the write. With [cpus = 1]
    (the default) behaviour is identical to the original
    single-processor machine. *)

type t

type write_mode =
  | Write_back  (** Normal copy-back cached page. *)
  | Write_through
      (** Page in write-through mode so writes are visible on the bus
          (required for logged pages, Section 3.2). *)

val create :
  ?obs:Lvm_obs.Ctx.t -> ?hw:Logger.hw -> ?record_old_values:bool ->
  ?codec:Log_record.version -> ?coalesce_depth:int ->
  ?frames:int -> ?log_entries:int -> ?cpus:int -> unit -> t
(** [create ()] builds a machine with [frames] physical page frames
    (default 4096, i.e. 16 MB) and the given logging hardware model
    (default [Prototype]). [record_old_values] enables the on-chip
    pre-image records of Section 4.6. [codec] and [coalesce_depth] select
    the log record wire format and the logger's write-coalescing buffer
    depth (see {!Logger.create}); both default to off, the seed datapath. [obs] is the observability context
    shared by every component (default: a fresh one, announced to any
    attached [Lvm_obs.Collector]); the perf record is enrolled in it as a
    snapshot provider. [cpus] (default 1) is the number of processor
    boards; multi-CPU machines additionally enroll a provider publishing
    [cpu.cycles{cpu=<i>}], [cpu.bus_wait_cycles{cpu=<i>}],
    [cpu.bus_grants{cpu=<i>}] and [bus.contention_cycles], plus the
    [l1.snoop_invalidations] counter — none of which exist on a
    single-CPU machine, keeping its snapshots bit-identical to before. *)

val mem : t -> Physmem.t
val logger : t -> Logger.t
val deferred : t -> Deferred_cache.t
val bus : t -> Bus.t
val perf : t -> Perf.t

val obs : t -> Lvm_obs.Ctx.t
(** The machine's observability context: trace ring, counters and
    histograms fed by every component. *)

val snapshot : t -> Lvm_obs.Snapshot.t
(** Point-in-time view of all counters (perf record included). *)

val clock : t -> int ref
(** The {e active} CPU's clock. *)

val time : t -> int
(** Current cycle count of the active CPU. *)

(** {1 Processors} *)

val cpus : t -> int
val current_cpu : t -> int

val set_cpu : t -> int -> unit
(** Make CPU [i] the active processor: subsequent [compute]/[read]/[write]
    charge its clock and private cache, its transactions own the bus
    arbiter's grant accounting, and logger overloads suspend it. Raises
    [Invalid_argument] when out of range. Costless — scheduling overhead
    is charged by the kernel's scheduler, not here. *)

val cpu_time : t -> cpu:int -> int
(** CPU [i]'s private clock. *)

val max_time : t -> int
(** The latest of all CPU clocks — wall-clock completion time of a
    multi-CPU phase. Equals [time] on a single-CPU machine at all times. *)

val bus_contention_cycles : t -> int
(** Total cycles CPUs spent waiting behind a {e different} CPU's bus
    transaction (always 0 with one CPU). *)

val l1_invalidate_page : t -> page:int -> unit
(** Drop every line of the physical page from {e all} CPUs' first-level
    caches (page remap/eviction must not leave stale lines anywhere). *)

val l1 : t -> L1_cache.t
(** The active CPU's first-level cache. *)

val set_fault_plan : t -> Lvm_fault.Plan.t option -> unit
(** Attach (or clear) a deterministic fault plan ({!Lvm_fault.Plan}). The
    plan is wired to the machine's observability context (every injection
    traces a [Fault_injected] event) and forwarded to the logger for its
    [Logger_admit]/[Log_dma] sites. The machine itself consults the plan
    at every instruction-stream boundary — each [compute], [read] and
    [write] — so a [Crash] injection at the [Cpu] site raises
    {!Lvm_fault.Fault.Crashed} at the first boundary its trigger fires. *)

val fault_plan : t -> Lvm_fault.Plan.t option

val fault_check : t -> site:Lvm_fault.Fault.site -> Lvm_fault.Fault.kind option
(** Consult the installed plan at an externally-owned fault site (the RAM
    disk's write paths, the kernel's log-segment provisioning), at the
    current cycle. [Crash] raises {!Lvm_fault.Fault.Crashed}; any other
    fired kind is returned for the caller to interpret. [None] when no
    plan is installed or nothing fires. *)

val compute : t -> int -> unit
(** Burn the given number of CPU cycles (event processing work). *)

val read : t -> paddr:int -> size:int -> int
(** Read [size] bytes at [paddr], charging first-level cache timing and
    resolving deferred-copy source redirection. *)

val write :
  t -> paddr:int -> ?vaddr:int -> size:int -> mode:write_mode ->
  logged:bool -> int -> unit
(** Write [size] bytes at [paddr]. Logged writes must use [Write_through]
    (the kernel guarantees this; it is enforced here) and are snooped by
    the logger, with [vaddr] recorded when the hardware logs virtual
    addresses. *)

val bcopy : t -> src:int -> dst:int -> len:int -> unit
(** Kernel word-copy loop between physical ranges, charged at its
    amortized per-word cost. Reads honor deferred-copy redirection and
    writes update line-modified state; the copy itself is not logged
    (it is the checkpoint-restore baseline, Section 4.4). [len] must be a
    multiple of the word size. *)

val dc_map : t -> dst_page:int -> src_addr:int -> unit
val dc_unmap : t -> dst_page:int -> unit

val dc_reset_page : t -> dst_page:int -> unit
(** Reset one destination page to its source (Section 3.3): charge the
    dirty-bit check, and if the page was dirty also the per-line
    source-address reset, invalidating its first-level lines. *)

val dc_page_dirty : t -> dst_page:int -> bool

val read_raw : t -> paddr:int -> size:int -> int
(** Uncharged, un-redirected physical read (for checkers and debuggers). *)

val write_raw : t -> paddr:int -> size:int -> int -> unit
(** Uncharged raw physical write that still updates deferred-copy line
    state (used to initialize segments without perturbing timing). *)
