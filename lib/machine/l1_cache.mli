(** First-level data cache timing model.

    An 8-kilobyte direct-mapped, physically-tagged cache with 16-byte
    lines, matching the 68040's split I/D cache (Section 4.1; we model the
    data side only). The cache determines the cycle cost of each access:

    - read or write-back-mode write hit: 1 cycle;
    - miss: line fill over the bus, plus a victim write-back if dirty;
    - write-through-mode write: 6 cycles total (5 on the bus), no allocate;
      the data is pushed onto the bus where the logger can snoop it.

    Data contents are not stored here — physical memory is always kept
    current by the machine — so this module tracks only tags and charges
    cycles. [access] returns the new CPU local time. *)

type t

val create : ?obs:Lvm_obs.Ctx.t -> Bus.t -> Perf.t -> t
(** [?obs] is the machine's observability context (the cache feeds the
    ["l1.write_run"] histogram of consecutive write-through run lengths);
    when omitted a private one is created. *)

val lines : t -> int

val read : t -> now:int -> paddr:int -> int
(** Charge a read of any size within one line at [paddr]; returns the CPU
    time after the access. *)

val write_back_mode_write : t -> now:int -> paddr:int -> int
(** Charge a write to a copy-back page. Allocates on miss. *)

val write_through : t -> now:int -> paddr:int -> int
(** Charge a word (or smaller) write to a write-through page. The line is
    updated if present but never allocated; the write always appears on
    the bus. *)

val invalidate_page : t -> page:int -> unit
(** Drop every line of the given physical page without write-back (used by
    [reset_deferred_copy]). Charges no cycles; the caller accounts for the
    invalidation sweep. *)

val invalidate_line : t -> paddr:int -> bool
(** Drop the single line holding [paddr] if resident, without write-back;
    returns whether a line was dropped. This is the write-invalidate snoop
    action: when another CPU's write-through for this address appears on
    the bus, stale copies in other first-level caches are invalidated
    (Section 2.6 — the same bus traffic the logger snoops keeps the
    processors consistent). Charges no cycles; the snoop rides the
    already-charged bus transaction. *)

val invalidate_all : t -> unit

val contains_line : t -> paddr:int -> bool
(** Whether the line holding [paddr] is resident (for tests). *)
