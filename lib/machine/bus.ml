type track = Cpu | Dma

(* The CPU side of the bus is one serial resource shared by every
   processor; [cpu_free] is when it next frees. The arbiter services
   requests in arrival order — under the deterministic round-robin
   scheduler the CPUs interleave one step at a time, so arrival order IS
   round-robin order and no processor can be granted twice while another
   has an earlier pending request. Per-CPU grant and wait accounting
   makes the fairness observable, and waits incurred while another CPU
   held the bus are separated out as cross-CPU contention. *)
type t = {
  n_cpus : int;
  mutable active : int; (* CPU issuing the current transaction *)
  mutable cpu_free : int;
  mutable dma_free : int;
  mutable last_owner : int; (* CPU granted the previous transaction *)
  grants : int array;
  waits : int array; (* per-CPU arbitration wait cycles *)
  mutable contention : int; (* waits while another CPU held the bus *)
  perf : Perf.t;
  wait_hist : Lvm_obs.Histogram.t;
}

let create ?obs ?(cpus = 1) perf =
  if cpus <= 0 then invalid_arg "Bus.create: cpus must be positive";
  let obs = match obs with Some o -> o | None -> Lvm_obs.Ctx.create () in
  {
    n_cpus = cpus;
    active = 0;
    cpu_free = 0;
    dma_free = 0;
    last_owner = -1;
    grants = Array.make cpus 0;
    waits = Array.make cpus 0;
    contention = 0;
    perf;
    wait_hist =
      Lvm_obs.Ctx.histogram obs ~name:"bus.wait_cycles"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:12);
  }

let cpus t = t.n_cpus

let set_active t cpu =
  if cpu < 0 || cpu >= t.n_cpus then invalid_arg "Bus.set_active: bad cpu";
  t.active <- cpu

let active t = t.active

let access t ~track ~now ~cycles =
  if cycles < 0 then invalid_arg "Bus.access: negative cycles";
  match track with
  | Dma ->
    let start = if now > t.dma_free then now else t.dma_free in
    Lvm_obs.Histogram.observe t.wait_hist (start - now);
    let finish = start + cycles in
    t.dma_free <- finish;
    t.perf.Perf.bus_busy_cycles <- t.perf.Perf.bus_busy_cycles + cycles;
    finish
  | Cpu ->
    let start = if now > t.cpu_free then now else t.cpu_free in
    let wait = start - now in
    Lvm_obs.Histogram.observe t.wait_hist wait;
    if wait > 0 then begin
      t.waits.(t.active) <- t.waits.(t.active) + wait;
      if t.last_owner >= 0 && t.last_owner <> t.active then
        t.contention <- t.contention + wait
    end;
    t.grants.(t.active) <- t.grants.(t.active) + 1;
    t.last_owner <- t.active;
    let finish = start + cycles in
    t.cpu_free <- finish;
    t.perf.Perf.bus_busy_cycles <- t.perf.Perf.bus_busy_cycles + cycles;
    finish

let free_at t ~track = match track with Cpu -> t.cpu_free | Dma -> t.dma_free
let grants t ~cpu = t.grants.(cpu)
let wait_cycles t ~cpu = t.waits.(cpu)
let contention_cycles t = t.contention

let reset t =
  t.cpu_free <- 0;
  t.dma_free <- 0;
  t.last_owner <- -1;
  Array.fill t.grants 0 t.n_cpus 0;
  Array.fill t.waits 0 t.n_cpus 0;
  t.contention <- 0
