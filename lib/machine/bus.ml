type track = Cpu | Dma

type t = {
  mutable cpu_free : int;
  mutable dma_free : int;
  perf : Perf.t;
  wait_hist : Lvm_obs.Histogram.t;
}

let create ?obs perf =
  let obs = match obs with Some o -> o | None -> Lvm_obs.Ctx.create () in
  {
    cpu_free = 0;
    dma_free = 0;
    perf;
    wait_hist =
      Lvm_obs.Ctx.histogram obs ~name:"bus.wait_cycles"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:12);
  }

let access t ~track ~now ~cycles =
  if cycles < 0 then invalid_arg "Bus.access: negative cycles";
  let free = match track with Cpu -> t.cpu_free | Dma -> t.dma_free in
  let start = if now > free then now else free in
  Lvm_obs.Histogram.observe t.wait_hist (start - now);
  let finish = start + cycles in
  (match track with
  | Cpu -> t.cpu_free <- finish
  | Dma -> t.dma_free <- finish);
  t.perf.Perf.bus_busy_cycles <- t.perf.Perf.bus_busy_cycles + cycles;
  finish

let free_at t ~track = match track with Cpu -> t.cpu_free | Dma -> t.dma_free

let reset t =
  t.cpu_free <- 0;
  t.dma_free <- 0
