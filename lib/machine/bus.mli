(** The shared system bus.

    The processor is the high-priority bus master; the logger's record DMA
    is the lowest-priority master and yields to CPU traffic. We model this
    as two serialized tracks — CPU transactions (write-throughs, fills,
    write-backs) never wait for logger DMA, while the logger's drain rate
    is bounded by its own pipeline and DMA slot. This is what lets the
    processor outrun the logger and fill its FIFOs (Figures 11 and 12);
    the residual arbitration interference a burst of logged writes sees is
    charged separately by the machine ({!Cycles.wt_logger_interference}).

    Each track is a simple serial resource: a request at [now] begins when
    the track frees and occupies it for [cycles]. *)

type track =
  | Cpu  (** Processor-initiated transactions. *)
  | Dma  (** Logger record DMA (low priority). *)

type t

val create : ?obs:Lvm_obs.Ctx.t -> Perf.t -> t
(** [?obs] is the machine's observability context; when omitted a private
    one is created (standalone use in tests). *)

val access : t -> track:track -> now:int -> cycles:int -> int
(** Book [cycles] on the track at or after [now]; returns the completion
    time. Records total bus occupancy in the perf counters and the
    arbitration wait in the ["bus.wait_cycles"] histogram. *)

val free_at : t -> track:track -> int
val reset : t -> unit
