(** The shared system bus.

    The processors are the high-priority bus masters; the logger's record
    DMA is the lowest-priority master and yields to CPU traffic. We model
    this as two serialized tracks — CPU transactions (write-throughs,
    fills, write-backs) never wait for logger DMA, while the logger's
    drain rate is bounded by its own pipeline and DMA slot. This is what
    lets the processors outrun the logger and fill its FIFOs (Figures 11
    and 12); the residual arbitration interference a burst of logged
    writes sees is charged separately by the machine
    ({!Cycles.wt_logger_interference}).

    Each track is a simple serial resource: a request at [now] begins when
    the track frees and occupies it for [cycles].

    With several CPUs (the paper's ParaDiGM prototype hangs up to four
    processor boards off one bus), the CPU track is shared by all of them
    and arbitrated in arrival order. Under the deterministic round-robin
    CPU scheduler, arrival order is round-robin order, so no processor
    can starve; per-CPU grant/wait counters make this observable, and
    wait cycles spent behind a {e different} CPU's transaction accumulate
    as cross-CPU contention — the quantity the multi-CPU experiment
    sweeps. With one CPU, contention is always zero and timing is
    identical to the original single-cursor model. *)

type track =
  | Cpu  (** Processor-initiated transactions. *)
  | Dma  (** Logger record DMA (low priority). *)

type t

val create : ?obs:Lvm_obs.Ctx.t -> ?cpus:int -> Perf.t -> t
(** [?obs] is the machine's observability context; when omitted a private
    one is created (standalone use in tests). [?cpus] (default 1) is how
    many processors share the CPU track. *)

val cpus : t -> int

val set_active : t -> int -> unit
(** Declare which CPU issues subsequent [Cpu]-track transactions.
    Raises [Invalid_argument] if out of range. *)

val active : t -> int

val access : t -> track:track -> now:int -> cycles:int -> int
(** Book [cycles] on the track at or after [now]; returns the completion
    time. Records total bus occupancy in the perf counters and the
    arbitration wait in the ["bus.wait_cycles"] histogram. *)

val free_at : t -> track:track -> int

val grants : t -> cpu:int -> int
(** CPU-track transactions granted to [cpu]. *)

val wait_cycles : t -> cpu:int -> int
(** Total arbitration wait cycles [cpu] has spent on the CPU track. *)

val contention_cycles : t -> int
(** Wait cycles spent behind a transaction of a {e different} CPU —
    always zero on a single-CPU bus. *)

val reset : t -> unit
