(** Second-level cache support for deferred copy (Section 3.3).

    The prototype's 4 MB second-level cache associates a source address with
    each cache line of a deferred-copy destination page: reads of a line not
    yet written are satisfied from the source, writes go to the destination
    and re-point the line at itself. [reset] re-points every line of a page
    back at the source and invalidates modified lines, so a logical copy
    costs no copying.

    This module keeps, per mapped destination physical page, the source
    physical address and a 256-bit "line modified" set plus a page dirty
    bit. Data always lives in physical memory: when a line is first
    modified, the 16 source bytes are brought into the destination frame so
    that partial-line writes merge correctly, exactly as the hardware loads
    the line from the source page before updating it. *)

type t

val create : ?obs:Lvm_obs.Ctx.t -> Physmem.t -> Perf.t -> t
(** [?obs] is the machine's observability context (the cache feeds the
    ["dc.dirty_lines"] histogram of modified-line counts at reset); when
    omitted a private one is created. *)

val map : t -> dst_page:int -> src_addr:int -> unit
(** Declare physical page [dst_page] a deferred-copy destination whose
    line [i] is initialized from [src_addr + 16 * i]. [src_addr] must be
    line-aligned. Remapping an already-mapped page resets its state. *)

val unmap : t -> dst_page:int -> unit
val is_mapped : t -> dst_page:int -> bool

val page_dirty : t -> dst_page:int -> bool
(** The per-page dirty bit the reset optimization checks: true once any
    line of the page has been modified since the map or last reset. *)

val resolve_read : t -> paddr:int -> int
(** [resolve_read t ~paddr] is the physical address actually holding the
    current datum for [paddr]: [paddr] itself if the page is unmapped or
    the line has been modified, otherwise the corresponding source
    address. *)

val note_write : t -> paddr:int -> unit
(** Record that [paddr]'s line is being written. On the first write to a
    line this copies the 16 source bytes into the destination frame. Call
    before performing the store. No-op on unmapped pages. *)

val reset_page : t -> dst_page:int -> was_dirty:bool ref -> int
(** Clear the modified set and the dirty bit of [dst_page], returning the
    cycle cost: the per-page dirty check plus, if the page was dirty, the
    per-line source-address reset and invalidation sweep. Sets [was_dirty]
    so the caller can also invalidate first-level lines. *)

val modified_lines : t -> dst_page:int -> int list
(** Line indices of destination frame [dst_page] written since it was
    mapped (or last reset), ascending; empty when the frame is not a
    deferred-copy destination. The modification set a failure-atomic
    snapshot must persist. *)

val mapped_pages : t -> int list
(** Destination pages currently mapped (ascending, for tests). *)
