type hw = Prototype | On_chip
type mode = Normal | Direct_mapped | Indexed

type fault =
  | Pmt_miss of { paddr : int }
  | Log_addr_invalid of { log_index : int }

type fault_outcome = Fixed | Drop

type pmt_entry = { mutable p_valid : bool; mutable tag : int;
                   mutable log_index : int }

type log_entry = { mutable l_valid : bool; mutable l_mode : mode;
                   mutable next_addr : int }

(* A snooped write entering the logger pipeline. *)
type raw = {
  w_paddr : int;
  w_vaddr : int;
  w_size : int;
  w_value : int;
  w_arrival : int;
  w_timestamp : int;
  w_pre_image : bool;
}

type t = {
  hw : hw;
  record_old_values : bool;
  pmt : pmt_entry array;
  pmt_bits : int;
  table : log_entry array;
  fifo : Fifo.t; (* snooped entries awaiting DMA completion *)
  onchip_buffer : int;
  mutable clock : int ref;
    (* the issuing CPU's clock — overloads suspend that CPU; the machine
       repoints this when it switches CPUs *)
  mem : Physmem.t;
  bus : Bus.t;
  perf : Perf.t;
  obs : Lvm_obs.Ctx.t;
  fifo_hist : Lvm_obs.Histogram.t;
  mutable free_at : int; (* logger pipeline availability *)
  mutable enabled : bool;
  mutable on_fault : fault -> fault_outcome;
  mutable snoop_observer :
    (paddr:int -> vaddr:int -> size:int -> value:int -> unit) option;
  mutable fault_plan : Lvm_fault.Plan.t option;
}

let create ?obs ?(hw = Prototype) ?(record_old_values = false)
    ?(pmt_bits = 15) ?(log_entries = 64) ~clock mem bus perf =
  let obs = match obs with Some o -> o | None -> Lvm_obs.Ctx.create () in
  if pmt_bits < 2 || pmt_bits > 20 then invalid_arg "Logger.create: pmt_bits";
  if log_entries <= 0 then invalid_arg "Logger.create: log_entries";
  if record_old_values && hw <> On_chip then
    invalid_arg "Logger.create: old-value records need on-chip logging";
  {
    hw;
    record_old_values;
    pmt =
      Array.init (1 lsl pmt_bits) (fun _ ->
          { p_valid = false; tag = 0; log_index = 0 });
    pmt_bits;
    table =
      Array.init log_entries (fun _ ->
          { l_valid = false; l_mode = Normal; next_addr = 0 });
    fifo = Fifo.create ~capacity:Cycles.logger_fifo_capacity;
    onchip_buffer = 8;
    clock;
    mem;
    bus;
    perf;
    obs;
    fifo_hist =
      Lvm_obs.Ctx.histogram obs ~name:"logger.fifo_occupancy"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:10);
    free_at = 0;
    enabled = true;
    on_fault = (fun _ -> Drop);
    snoop_observer = None;
    fault_plan = None;
  }

let hw t = t.hw
let records_old_values t = t.record_old_values
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let set_fault_handler t f = t.on_fault <- f
let set_clock t clock = t.clock <- clock
let set_snoop_observer t f = t.snoop_observer <- f
let set_fault_plan t p = t.fault_plan <- p

let fault_check t ~site ~cycle =
  match t.fault_plan with
  | None -> None
  | Some plan -> Lvm_fault.Plan.check_crash plan ~site ~cycle
let log_entries t = Array.length t.table
let slot t page = page land ((1 lsl t.pmt_bits) - 1)
let tag_of t page = page lsr t.pmt_bits

let load_pmt t ~page ~log_index =
  if log_index < 0 || log_index >= Array.length t.table then
    invalid_arg "Logger.load_pmt: bad log index";
  let e = t.pmt.(slot t page) in
  e.p_valid <- true;
  e.tag <- tag_of t page;
  e.log_index <- log_index

let pmt_lookup t ~page =
  let e = t.pmt.(slot t page) in
  if e.p_valid && e.tag = tag_of t page then Some e.log_index else None

let invalidate_pmt t ~page =
  let e = t.pmt.(slot t page) in
  if e.p_valid && e.tag = tag_of t page then e.p_valid <- false

let set_log_entry t ~index ~mode ~addr =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Logger.set_log_entry: bad index";
  let e = t.table.(index) in
  e.l_valid <- true;
  e.l_mode <- mode;
  e.next_addr <- addr

let retarget_log_entry t ~index ~addr =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Logger.retarget_log_entry: bad index";
  let e = t.table.(index) in
  e.l_valid <- true;
  e.next_addr <- addr

let invalidate_log_entry t ~index =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Logger.invalidate_log_entry: bad index";
  t.table.(index).l_valid <- false

let log_entry t ~index =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Logger.log_entry: bad index";
  let e = t.table.(index) in
  if e.l_valid then Some (e.l_mode, e.next_addr) else None

(* Field a logging fault: the logger suspends while the kernel repairs its
   tables, which costs CPU time. *)
let fault t f =
  (match f with
  | Pmt_miss { paddr } ->
    t.perf.Perf.logging_faults_pmt <- t.perf.Perf.logging_faults_pmt + 1;
    Lvm_obs.Ctx.event t.obs ~at:!(t.clock)
      (Lvm_obs.Event.Logging_fault
         { kind = Lvm_obs.Event.Pmt_miss; addr = paddr })
  | Log_addr_invalid { log_index } ->
    t.perf.Perf.logging_faults_log_addr <-
      t.perf.Perf.logging_faults_log_addr + 1;
    Lvm_obs.Ctx.event t.obs ~at:!(t.clock)
      (Lvm_obs.Event.Logging_fault
         { kind = Lvm_obs.Event.Log_addr_invalid; addr = log_index }));
  t.clock := !(t.clock) + Cycles.logging_fault;
  t.on_fault f

(* Emit the record bytes at [addr] and advance the log table entry,
   invalidating it on page crossing. *)
let emit t entry ~record_addr ~paddr ~vaddr ~size ~value ~timestamp
    ~pre_image =
  let logged_addr = match t.hw with Prototype -> paddr | On_chip -> vaddr in
  match entry.l_mode with
  | Normal ->
    Log_record.encode_to t.mem ~paddr:record_addr
      { Log_record.addr = logged_addr; value; size; timestamp; pre_image };
    entry.next_addr <- record_addr + Log_record.bytes;
    if Addr.page_offset entry.next_addr = 0 then entry.l_valid <- false
  | Direct_mapped ->
    let off = Addr.page_offset paddr in
    Physmem.write_sized t.mem (Addr.page_base record_addr + off) ~size value
  | Indexed ->
    Physmem.write_word t.mem record_addr value;
    entry.next_addr <- record_addr + Addr.word_size;
    if Addr.page_offset entry.next_addr = 0 then entry.l_valid <- false

(* Run one write FIFO entry through the logger pipeline: table lookups and
   record formation, then the DMA whose final cycles occupy the bus. *)
let rec service_one t (w : raw) ~attempts =
  if attempts > 4 then
    t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + 1
  else
    (* The prototype's page mapping table is keyed by physical page; the
       on-chip design (Section 4.6) keys its TLB-resident log descriptors
       by virtual page, which is what makes per-region logs possible. *)
    let key = match t.hw with Prototype -> w.w_paddr | On_chip -> w.w_vaddr in
    let page = Addr.page_number key in
    match pmt_lookup t ~page with
    | None -> begin
      match fault t (Pmt_miss { paddr = key }) with
      | Drop ->
        t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + 1
      | Fixed -> service_one t w ~attempts:(attempts + 1)
    end
    | Some log_index ->
      let entry = t.table.(log_index) in
      if not entry.l_valid then begin
        match fault t (Log_addr_invalid { log_index }) with
        | Drop ->
          t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + 1
        | Fixed -> service_one t w ~attempts:(attempts + 1)
      end
      else begin
        match fault_check t ~site:Lvm_fault.Fault.Log_dma ~cycle:!(t.clock) with
        | Some Lvm_fault.Fault.Dma_fail ->
          (* The record DMA fails in flight: the record is lost, exactly
             like an unrepairable logging fault. *)
          t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + 1
        | Some _ | None ->
        emit t entry ~record_addr:entry.next_addr ~paddr:w.w_paddr
          ~vaddr:w.w_vaddr ~size:w.w_size ~value:w.w_value
          ~timestamp:w.w_timestamp ~pre_image:w.w_pre_image;
        let start = max w.w_arrival t.free_at in
        let lookup_done = start + Cycles.logger_lookup in
        let dma_internal =
          Cycles.log_record_dma_total - Cycles.log_record_dma_bus
        in
        let bus_done =
          Bus.access t.bus ~track:Bus.Dma ~now:(lookup_done + dma_internal)
            ~cycles:Cycles.log_record_dma_bus
        in
        t.free_at <- bus_done;
        Fifo.push t.fifo ~drain_time:bus_done;
        t.perf.Perf.log_records <- t.perf.Perf.log_records + 1;
        match t.snoop_observer with
        | Some observe when not w.w_pre_image ->
          observe ~paddr:w.w_paddr ~vaddr:w.w_vaddr ~size:w.w_size
            ~value:w.w_value
        | Some _ | None -> ()
      end

(* Entries are serviced eagerly at snoop time: the logger's DMA runs on
   its own low-priority bus track, so its future completion times never
   delay CPU transactions and can be booked immediately. [advance] and
   [complete_pending] remain as synchronization points in the interface
   but have nothing left to do. *)
let advance _t ~now:_ = ()
let complete_pending _t = ()

let occupancy_at t ~now = Fifo.occupancy t.fifo ~now
let occupancy t = occupancy_at t ~now:!(t.clock)
let drained_at t = max !(t.clock) (Fifo.last_drain_time t.fifo)

let flush t =
  let pending = occupancy_at t ~now:!(t.clock) in
  let target = Fifo.last_drain_time t.fifo in
  if pending > 0 then
    Lvm_obs.Ctx.event t.obs ~at:!(t.clock)
      (Lvm_obs.Event.Dma_flush { pending; drained_at = max !(t.clock) target });
  if target > !(t.clock) then t.clock := target;
  Fifo.drain_until t.fifo ~now:!(t.clock)

let busy t = occupancy_at t ~now:!(t.clock) > 0

(* Check FIFO pressure at [arrival]. In Prototype mode, crossing the
   threshold raises the overload interrupt: processes are suspended until
   the FIFOs drain, then pay the kernel suspend/resume overhead. In
   On_chip mode the processor simply stalls when its small write buffer of
   pending records is full. *)
let admit t ~arrival =
  match t.hw with
  | Prototype ->
    let occupancy = occupancy_at t ~now:arrival in
    Lvm_obs.Histogram.observe t.fifo_hist occupancy;
    let forced =
      match fault_check t ~site:Lvm_fault.Fault.Logger_admit ~cycle:arrival with
      | Some Lvm_fault.Fault.Fifo_overrun -> true
      | Some _ | None -> false
    in
    if forced || occupancy >= Cycles.logger_fifo_threshold then begin
      t.perf.Perf.overloads <- t.perf.Perf.overloads + 1;
      Lvm_obs.Ctx.event t.obs ~at:arrival
        (Lvm_obs.Event.Overload_enter { occupancy });
      let drained = max arrival (Fifo.last_drain_time t.fifo) in
      let resume = drained + Cycles.overload_suspend in
      t.perf.Perf.overload_cycles <-
        t.perf.Perf.overload_cycles + (resume - arrival);
      t.clock := max !(t.clock) resume;
      Lvm_obs.Ctx.event t.obs ~at:resume
        (Lvm_obs.Event.Overload_exit { suspended = resume - arrival });
      Fifo.drain_until t.fifo ~now:!(t.clock)
    end
  | On_chip ->
    Lvm_obs.Histogram.observe t.fifo_hist (occupancy_at t ~now:!(t.clock));
    if occupancy_at t ~now:!(t.clock) >= t.onchip_buffer then begin
      while Fifo.occupancy t.fifo ~now:!(t.clock) >= t.onchip_buffer do
        match Fifo.head_drain_time t.fifo with
        | None -> ()
        | Some d -> t.clock := max !(t.clock) d
      done
    end

let snoop ?old_value t ~paddr ~vaddr ~size ~value =
  if t.enabled then begin
    (* pre-image first, so readers see old value then new value *)
    (match (t.record_old_values, old_value) with
    | true, Some old ->
      let arrival = !(t.clock) in
      admit t ~arrival;
      let arrival = max arrival !(t.clock) in
      service_one t
        {
          w_paddr = paddr;
          w_vaddr = vaddr;
          w_size = size;
          w_value = old;
          w_arrival = arrival;
          w_timestamp = arrival / Cycles.timestamp_divider;
          w_pre_image = true;
        }
        ~attempts:0
    | (true | false), _ -> ());
    let arrival = !(t.clock) in
    admit t ~arrival;
    let arrival = max arrival !(t.clock) in
    service_one t
      {
        w_paddr = paddr;
        w_vaddr = vaddr;
        w_size = size;
        w_value = value;
        w_arrival = arrival;
        w_timestamp = arrival / Cycles.timestamp_divider;
        w_pre_image = false;
      }
      ~attempts:0
  end
