type hw = Prototype | On_chip
type mode = Normal | Direct_mapped | Indexed

type fault =
  | Pmt_miss of { paddr : int }
  | Log_addr_invalid of { log_index : int }

type fault_outcome = Fixed | Drop

type pmt_entry = { mutable p_valid : bool; mutable tag : int;
                   mutable log_index : int }

type log_entry = { mutable l_valid : bool; mutable l_mode : mode;
                   mutable next_addr : int }

(* A snooped write entering the logger pipeline. *)
type raw = {
  w_paddr : int;
  w_vaddr : int;
  w_size : int;
  w_value : int;
  w_arrival : int;
  w_timestamp : int;
  w_pre_image : bool;
}

(* Codec / coalescing metrics, registered only when either feature is
   enabled so the default configuration's metrics snapshot stays
   byte-identical to the seed. *)
type diet_stats = {
  s_absorbed : Lvm_obs.Counter.counter; (* writes merged in the buffer *)
  s_flushed : Lvm_obs.Counter.counter; (* records leaving the buffer *)
  s_raw : Lvm_obs.Counter.counter;
  s_run : Lvm_obs.Counter.counter;
  s_delta : Lvm_obs.Counter.counter;
  s_pad : Lvm_obs.Counter.counter;
  s_logical_bytes : Lvm_obs.Counter.counter; (* 16 B per logical record *)
  s_encoded_bytes : Lvm_obs.Counter.counter; (* stream bytes, pads included *)
}

type t = {
  hw : hw;
  record_old_values : bool;
  codec : Log_record.version;
  coalesce_depth : int;
  co_tbl : (int, raw) Hashtbl.t; (* word paddr -> last write, last-wins *)
  co_order : int Queue.t; (* first-touch drain order *)
  stats : diet_stats option;
  pmt : pmt_entry array;
  pmt_bits : int;
  table : log_entry array;
  fifo : Fifo.t; (* snooped entries awaiting DMA completion *)
  onchip_buffer : int;
  mutable clock : int ref;
    (* the issuing CPU's clock — overloads suspend that CPU; the machine
       repoints this when it switches CPUs *)
  mem : Physmem.t;
  bus : Bus.t;
  perf : Perf.t;
  obs : Lvm_obs.Ctx.t;
  fifo_hist : Lvm_obs.Histogram.t;
  mutable free_at : int; (* logger pipeline availability *)
  mutable enabled : bool;
  mutable on_fault : fault -> fault_outcome;
  mutable snoop_observer :
    (paddr:int -> vaddr:int -> size:int -> value:int -> unit) option;
  mutable fault_plan : Lvm_fault.Plan.t option;
}

let create ?obs ?(hw = Prototype) ?(record_old_values = false)
    ?(codec = Log_record.V0) ?(coalesce_depth = 0) ?(pmt_bits = 15)
    ?(log_entries = 64) ~clock mem bus perf =
  let obs = match obs with Some o -> o | None -> Lvm_obs.Ctx.create () in
  if pmt_bits < 2 || pmt_bits > 20 then invalid_arg "Logger.create: pmt_bits";
  if log_entries <= 0 then invalid_arg "Logger.create: log_entries";
  if record_old_values && hw <> On_chip then
    invalid_arg "Logger.create: old-value records need on-chip logging";
  if coalesce_depth < 0 then invalid_arg "Logger.create: coalesce_depth";
  if coalesce_depth > 0 && record_old_values then
    invalid_arg
      "Logger.create: coalescing absorbs writes, old-value records need \
       every store";
  let stats =
    if codec = Log_record.V1 || coalesce_depth > 0 then
      let c name = Lvm_obs.Ctx.counter obs ("log." ^ name) in
      Some
        {
          s_absorbed = c "coalesce_absorbed";
          s_flushed = c "coalesce_flushed";
          s_raw = c "records_raw";
          s_run = c "records_run";
          s_delta = c "records_delta";
          s_pad = c "records_pad";
          s_logical_bytes = c "bytes_logical";
          s_encoded_bytes = c "bytes_encoded";
        }
    else None
  in
  {
    hw;
    record_old_values;
    codec;
    coalesce_depth;
    co_tbl = Hashtbl.create 64;
    co_order = Queue.create ();
    stats;
    pmt =
      Array.init (1 lsl pmt_bits) (fun _ ->
          { p_valid = false; tag = 0; log_index = 0 });
    pmt_bits;
    table =
      Array.init log_entries (fun _ ->
          { l_valid = false; l_mode = Normal; next_addr = 0 });
    fifo = Fifo.create ~capacity:Cycles.logger_fifo_capacity;
    onchip_buffer = 8;
    clock;
    mem;
    bus;
    perf;
    obs;
    fifo_hist =
      Lvm_obs.Ctx.histogram obs ~name:"logger.fifo_occupancy"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:10);
    free_at = 0;
    enabled = true;
    on_fault = (fun _ -> Drop);
    snoop_observer = None;
    fault_plan = None;
  }

let hw t = t.hw
let records_old_values t = t.record_old_values
let codec t = t.codec
let coalesce_depth t = t.coalesce_depth
let coalesce_pending t = Queue.length t.co_order
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let set_fault_handler t f = t.on_fault <- f
let set_clock t clock = t.clock <- clock
let set_snoop_observer t f = t.snoop_observer <- f
let set_fault_plan t p = t.fault_plan <- p

(* Worst-case log bytes still owed by the coalescing buffer: the
   log-lifecycle layer adds this to its reservations so a deferred flush
   can never land past the end of the segment. *)
let pending_log_bytes_bound t =
  let pending = Queue.length t.co_order in
  match t.codec with
  | Log_record.V0 -> pending * Log_record.bytes
  | Log_record.V1 -> Log_record.Codec.worst_case_bytes ~writes:pending

let fault_check t ~site ~cycle =
  match t.fault_plan with
  | None -> None
  | Some plan -> Lvm_fault.Plan.check_crash plan ~site ~cycle
let log_entries t = Array.length t.table
let slot t page = page land ((1 lsl t.pmt_bits) - 1)
let tag_of t page = page lsr t.pmt_bits

let load_pmt t ~page ~log_index =
  if log_index < 0 || log_index >= Array.length t.table then
    invalid_arg "Logger.load_pmt: bad log index";
  let e = t.pmt.(slot t page) in
  e.p_valid <- true;
  e.tag <- tag_of t page;
  e.log_index <- log_index

let pmt_lookup t ~page =
  let e = t.pmt.(slot t page) in
  if e.p_valid && e.tag = tag_of t page then Some e.log_index else None

let invalidate_pmt t ~page =
  let e = t.pmt.(slot t page) in
  if e.p_valid && e.tag = tag_of t page then e.p_valid <- false

let set_log_entry t ~index ~mode ~addr =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Logger.set_log_entry: bad index";
  let e = t.table.(index) in
  e.l_valid <- true;
  e.l_mode <- mode;
  e.next_addr <- addr

let retarget_log_entry t ~index ~addr =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Logger.retarget_log_entry: bad index";
  let e = t.table.(index) in
  e.l_valid <- true;
  e.next_addr <- addr

let invalidate_log_entry t ~index =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Logger.invalidate_log_entry: bad index";
  t.table.(index).l_valid <- false

let log_entry t ~index =
  if index < 0 || index >= Array.length t.table then
    invalid_arg "Logger.log_entry: bad index";
  let e = t.table.(index) in
  if e.l_valid then Some (e.l_mode, e.next_addr) else None

(* Field a logging fault: the logger suspends while the kernel repairs its
   tables, which costs CPU time. *)
let fault t f =
  (match f with
  | Pmt_miss { paddr } ->
    t.perf.Perf.logging_faults_pmt <- t.perf.Perf.logging_faults_pmt + 1;
    Lvm_obs.Ctx.event t.obs ~at:!(t.clock)
      (Lvm_obs.Event.Logging_fault
         { kind = Lvm_obs.Event.Pmt_miss; addr = paddr })
  | Log_addr_invalid { log_index } ->
    t.perf.Perf.logging_faults_log_addr <-
      t.perf.Perf.logging_faults_log_addr + 1;
    Lvm_obs.Ctx.event t.obs ~at:!(t.clock)
      (Lvm_obs.Event.Logging_fault
         { kind = Lvm_obs.Event.Log_addr_invalid; addr = log_index }));
  t.clock := !(t.clock) + Cycles.logging_fault;
  t.on_fault f

(* Emit the record bytes at [addr] and advance the log table entry,
   invalidating it on page crossing. *)
let emit t entry ~record_addr ~paddr ~vaddr ~size ~value ~timestamp
    ~pre_image =
  let logged_addr = match t.hw with Prototype -> paddr | On_chip -> vaddr in
  match entry.l_mode with
  | Normal ->
    Log_record.encode_to t.mem ~paddr:record_addr
      { Log_record.addr = logged_addr; value; size; timestamp; pre_image };
    entry.next_addr <- record_addr + Log_record.bytes;
    if Addr.page_offset entry.next_addr = 0 then entry.l_valid <- false
  | Direct_mapped ->
    let off = Addr.page_offset paddr in
    Physmem.write_sized t.mem (Addr.page_base record_addr + off) ~size value
  | Indexed ->
    Physmem.write_word t.mem record_addr value;
    entry.next_addr <- record_addr + Addr.word_size;
    if Addr.page_offset entry.next_addr = 0 then entry.l_valid <- false

(* Run one write FIFO entry through the logger pipeline: table lookups and
   record formation, then the DMA whose final cycles occupy the bus. *)
let rec service_one t (w : raw) ~attempts =
  if attempts > 4 then
    t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + 1
  else
    (* The prototype's page mapping table is keyed by physical page; the
       on-chip design (Section 4.6) keys its TLB-resident log descriptors
       by virtual page, which is what makes per-region logs possible. *)
    let key = match t.hw with Prototype -> w.w_paddr | On_chip -> w.w_vaddr in
    let page = Addr.page_number key in
    match pmt_lookup t ~page with
    | None -> begin
      match fault t (Pmt_miss { paddr = key }) with
      | Drop ->
        t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + 1
      | Fixed -> service_one t w ~attempts:(attempts + 1)
    end
    | Some log_index ->
      let entry = t.table.(log_index) in
      if not entry.l_valid then begin
        match fault t (Log_addr_invalid { log_index }) with
        | Drop ->
          t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + 1
        | Fixed -> service_one t w ~attempts:(attempts + 1)
      end
      else begin
        match fault_check t ~site:Lvm_fault.Fault.Log_dma ~cycle:!(t.clock) with
        | Some Lvm_fault.Fault.Dma_fail ->
          (* The record DMA fails in flight: the record is lost, exactly
             like an unrepairable logging fault. *)
          t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + 1
        | Some _ | None ->
        emit t entry ~record_addr:entry.next_addr ~paddr:w.w_paddr
          ~vaddr:w.w_vaddr ~size:w.w_size ~value:w.w_value
          ~timestamp:w.w_timestamp ~pre_image:w.w_pre_image;
        let start = max w.w_arrival t.free_at in
        let lookup_done = start + Cycles.logger_lookup in
        let dma_internal =
          Cycles.log_record_dma_total - Cycles.log_record_dma_bus
        in
        let bus_done =
          Bus.access t.bus ~track:Bus.Dma ~now:(lookup_done + dma_internal)
            ~cycles:Cycles.log_record_dma_bus
        in
        t.free_at <- bus_done;
        Fifo.push t.fifo ~drain_time:bus_done;
        t.perf.Perf.log_records <- t.perf.Perf.log_records + 1;
        match t.snoop_observer with
        | Some observe when not w.w_pre_image ->
          observe ~paddr:w.w_paddr ~vaddr:w.w_vaddr ~size:w.w_size
            ~value:w.w_value
        | Some _ | None -> ()
      end

(* Entries are serviced eagerly at snoop time: the logger's DMA runs on
   its own low-priority bus track, so its future completion times never
   delay CPU transactions and can be booked immediately. [advance] and
   [complete_pending] remain as synchronization points in the interface
   but have nothing left to do. *)
let advance _t ~now:_ = ()
let complete_pending _t = ()

let occupancy_at t ~now = Fifo.occupancy t.fifo ~now
let occupancy t = occupancy_at t ~now:!(t.clock)
let drained_at t = max !(t.clock) (Fifo.last_drain_time t.fifo)

let flush t =
  let pending = occupancy_at t ~now:!(t.clock) in
  let target = Fifo.last_drain_time t.fifo in
  if pending > 0 then
    Lvm_obs.Ctx.event t.obs ~at:!(t.clock)
      (Lvm_obs.Event.Dma_flush { pending; drained_at = max !(t.clock) target });
  if target > !(t.clock) then t.clock := target;
  Fifo.drain_until t.fifo ~now:!(t.clock)

let busy t = occupancy_at t ~now:!(t.clock) > 0

(* Check FIFO pressure at [arrival]. In Prototype mode, crossing the
   threshold raises the overload interrupt: processes are suspended until
   the FIFOs drain, then pay the kernel suspend/resume overhead. In
   On_chip mode the processor simply stalls when its small write buffer of
   pending records is full. *)
let admit t ~arrival =
  match t.hw with
  | Prototype ->
    let occupancy = occupancy_at t ~now:arrival in
    Lvm_obs.Histogram.observe t.fifo_hist occupancy;
    let forced =
      match fault_check t ~site:Lvm_fault.Fault.Logger_admit ~cycle:arrival with
      | Some Lvm_fault.Fault.Fifo_overrun -> true
      | Some _ | None -> false
    in
    if forced || occupancy >= Cycles.logger_fifo_threshold then begin
      t.perf.Perf.overloads <- t.perf.Perf.overloads + 1;
      Lvm_obs.Ctx.event t.obs ~at:arrival
        (Lvm_obs.Event.Overload_enter { occupancy });
      let drained = max arrival (Fifo.last_drain_time t.fifo) in
      let resume = drained + Cycles.overload_suspend in
      t.perf.Perf.overload_cycles <-
        t.perf.Perf.overload_cycles + (resume - arrival);
      t.clock := max !(t.clock) resume;
      Lvm_obs.Ctx.event t.obs ~at:resume
        (Lvm_obs.Event.Overload_exit { suspended = resume - arrival });
      Fifo.drain_until t.fifo ~now:!(t.clock)
    end
  | On_chip ->
    Lvm_obs.Histogram.observe t.fifo_hist (occupancy_at t ~now:!(t.clock));
    if occupancy_at t ~now:!(t.clock) >= t.onchip_buffer then begin
      while Fifo.occupancy t.fifo ~now:!(t.clock) >= t.onchip_buffer do
        match Fifo.head_drain_time t.fifo with
        | None -> ()
        | Some d -> t.clock := max !(t.clock) d
      done
    end

(* {1 The V1 encoded datapath}

   Under the V1 codec the logger forms variable-length physical records:
   runs of sequential word writes share one header, a word-diff against
   the previous record's cache line shrinks to 8 bytes, and pads keep
   records from straddling page boundaries (the page-grain re-arm
   machinery — [Log_addr_invalid] faults — is unchanged). DMA cost
   scales with the encoded size: a physical record of [len] bytes books
   [ceil(len/16)] 16-byte DMA units on the bus and occupies that many
   FIFO slots, which is exactly where the bandwidth diet pays off. *)

let record_of_raw t (w : raw) =
  let logged_addr =
    match t.hw with Prototype -> w.w_paddr | On_chip -> w.w_vaddr
  in
  { Log_record.addr = logged_addr; value = w.w_value; size = w.w_size;
    timestamp = w.w_timestamp; pre_image = w.w_pre_image }

let lose t n =
  t.perf.Perf.log_records_lost <- t.perf.Perf.log_records_lost + n

let note_group t (g : Log_record.Codec.group) =
  match t.stats with
  | None -> ()
  | Some s ->
    let n = List.length (Log_record.Codec.group_records g) in
    Lvm_obs.Counter.add s.s_logical_bytes (n * Log_record.bytes);
    Lvm_obs.Counter.add s.s_encoded_bytes (Log_record.Codec.group_bytes g);
    (match g with
    | Log_record.Codec.G_raw _ -> Lvm_obs.Counter.incr s.s_raw
    | Log_record.Codec.G_run _ -> Lvm_obs.Counter.incr s.s_run
    | Log_record.Codec.G_delta _ -> Lvm_obs.Counter.incr s.s_delta)

let note_pad t ~len =
  match t.stats with
  | None -> ()
  | Some s ->
    Lvm_obs.Counter.incr s.s_pad;
    Lvm_obs.Counter.add s.s_encoded_bytes len

(* Emit one physical record at the log entry's current address, splitting
   runs (or padding) so no record straddles a page. Returns whether the
   whole group made it into the stream. *)
let rec emit_phys t ~log_index (g : Log_record.Codec.group) ~attempts =
  let n = List.length (Log_record.Codec.group_records g) in
  if attempts > 4 then begin
    lose t n;
    false
  end
  else
    let entry = t.table.(log_index) in
    if not entry.l_valid then begin
      match fault t (Log_addr_invalid { log_index }) with
      | Drop ->
        lose t n;
        false
      | Fixed -> emit_phys t ~log_index g ~attempts:(attempts + 1)
    end
    else begin
      let addr = entry.next_addr in
      let remaining = Addr.page_size - Addr.page_offset addr in
      let glen = Log_record.Codec.group_bytes g in
      if glen > remaining then begin
        match g with
        | Log_record.Codec.G_run rs when remaining >= 12 + 8 ->
          (* split the run at the page boundary *)
          let k = (remaining - 12) / 4 in
          let rec take i = function
            | x :: rest when i > 0 ->
              let a, b = take (i - 1) rest in
              (x :: a, b)
            | rest -> ([], rest)
          in
          let first, rest = take k rs in
          let ok1 = emit_phys t ~log_index (Log_record.Codec.G_run first)
              ~attempts
          in
          let g' =
            match rest with
            | [ r ] -> Log_record.Codec.G_raw r
            | rs -> Log_record.Codec.G_run rs
          in
          let ok2 = emit_phys t ~log_index g' ~attempts:0 in
          ok1 && ok2
        | _ ->
          (* pad out the page; the entry invalidates at the boundary and
             the retry faults into the kernel to arm the next page *)
          let pad = Log_record.Codec.encode_pad ~len:remaining in
          Physmem.blit_of_bytes t.mem pad ~pos:0 ~dst:addr ~len:remaining;
          note_pad t ~len:remaining;
          entry.next_addr <- addr + remaining;
          entry.l_valid <- false;
          emit_phys t ~log_index g ~attempts
      end
      else begin
        let arrival = !(t.clock) in
        admit t ~arrival;
        let arrival = max arrival !(t.clock) in
        match fault_check t ~site:Lvm_fault.Fault.Log_dma ~cycle:!(t.clock) with
        | Some Lvm_fault.Fault.Dma_fail ->
          (* the whole physical record is lost in flight *)
          lose t n;
          false
        | Some _ | None ->
          let b = Log_record.Codec.encode_group g in
          Physmem.blit_of_bytes t.mem b ~pos:0 ~dst:addr ~len:glen;
          entry.next_addr <- addr + glen;
          if Addr.page_offset entry.next_addr = 0 then entry.l_valid <- false;
          let units = (glen + Log_record.bytes - 1) / Log_record.bytes in
          let start = max arrival t.free_at in
          let lookup_done = start + Cycles.logger_lookup in
          let dma_internal =
            Cycles.log_record_dma_total - Cycles.log_record_dma_bus
          in
          let bus_done =
            Bus.access t.bus ~track:Bus.Dma ~now:(lookup_done + dma_internal)
              ~cycles:(units * Cycles.log_record_dma_bus)
          in
          t.free_at <- bus_done;
          for _ = 1 to units do
            Fifo.push t.fifo ~drain_time:bus_done
          done;
          t.perf.Perf.log_records <- t.perf.Perf.log_records + units;
          note_group t g;
          true
      end
    end

(* Resolve a snooped write to its log table index, faulting the kernel in
   for PMT misses exactly as the V0 pipeline does. *)
let rec resolve_index t (w : raw) ~attempts =
  if attempts > 4 then begin
    lose t 1;
    None
  end
  else
    let key = match t.hw with Prototype -> w.w_paddr | On_chip -> w.w_vaddr in
    match pmt_lookup t ~page:(Addr.page_number key) with
    | Some log_index -> Some log_index
    | None -> begin
      match fault t (Pmt_miss { paddr = key }) with
      | Drop ->
        lose t 1;
        None
      | Fixed -> resolve_index t w ~attempts:(attempts + 1)
    end

(* Service a batch of writes through the encoded pipeline: resolve each
   one, group consecutive same-log Normal-mode writes into compact
   physical records, and emit. Non-[Normal] log entries (mapped and
   streamed device output) keep the bare V0 datapath — their streams
   carry no headers and no framing. *)
let service_batch t raws =
  let resolved =
    List.filter_map
      (fun w ->
        match resolve_index t w ~attempts:0 with
        | None -> None
        | Some i -> Some (i, w))
      raws
  in
  (* split into runs of consecutive writes to the same log *)
  let segments =
    List.fold_left
      (fun acc (i, w) ->
        match acc with
        | (j, ws) :: rest when j = i -> (j, w :: ws) :: rest
        | _ -> (i, [ w ]) :: acc)
      [] resolved
    |> List.rev_map (fun (i, ws) -> (i, List.rev ws))
  in
  List.iter
    (fun (log_index, seg) ->
      match t.table.(log_index).l_mode with
      | Direct_mapped | Indexed ->
        List.iter
          (fun w ->
            let arrival = !(t.clock) in
            admit t ~arrival;
            service_one t
              { w with w_arrival = max arrival !(t.clock) }
              ~attempts:0)
          seg
      | Normal ->
        let records = List.map (record_of_raw t) seg in
        let groups = Log_record.Codec.group_batch records in
        let rest = ref seg in
        List.iter
          (fun g ->
            let n = List.length (Log_record.Codec.group_records g) in
            let rec take i = function
              | x :: more when i > 0 ->
                let a, b = take (i - 1) more in
                (x :: a, b)
              | more -> ([], more)
            in
            let mine, more = take n !rest in
            rest := more;
            if emit_phys t ~log_index g ~attempts:0 then
              match t.snoop_observer with
              | None -> ()
              | Some observe ->
                List.iter
                  (fun w ->
                    if not w.w_pre_image then
                      observe ~paddr:w.w_paddr ~vaddr:w.w_vaddr
                        ~size:w.w_size ~value:w.w_value)
                  mine)
          groups)
    segments

(* {1 The coalescing buffer}

   A small associative buffer in front of the FIFOs (the in-cache-line
   logging idea): full-word writes park here and repeated writes to the
   same word are absorbed in place, last value wins. The buffer drains in
   first-touch order on commit/force/snapshot boundaries (the kernel's
   hard log sync) or when it fills. Only whole-word writes coalesce —
   sub-word writes would have to merge across overlapping extents to
   stay order-independent, so they flush the buffer and take the
   uncoalesced path. *)

let coalescible (w : raw) =
  w.w_size = Addr.word_size && w.w_paddr land (Addr.word_size - 1) = 0
  && not w.w_pre_image

let flush_coalesced t =
  if Queue.length t.co_order > 0 then begin
    let raws =
      Queue.fold
        (fun acc paddr ->
          match Hashtbl.find_opt t.co_tbl paddr with
          | Some w -> w :: acc
          | None -> acc)
        [] t.co_order
      |> List.rev
    in
    Queue.clear t.co_order;
    Hashtbl.reset t.co_tbl;
    (match t.stats with
    | Some s -> Lvm_obs.Counter.add s.s_flushed (List.length raws)
    | None -> ());
    (* Records leave the buffer now, so they are stamped now — a drain
       shares one timestamp (like a cache-line writeback), which is also
       what lets sequential buffered words collapse into runs. *)
    match t.codec with
    | Log_record.V1 ->
      let now = !(t.clock) in
      let ts = now / Cycles.timestamp_divider in
      service_batch t
        (List.map (fun w -> { w with w_arrival = now; w_timestamp = ts }) raws)
    | Log_record.V0 ->
      List.iter
        (fun w ->
          let arrival = !(t.clock) in
          admit t ~arrival;
          let arrival = max arrival !(t.clock) in
          service_one t
            { w with
              w_arrival = arrival;
              w_timestamp = arrival / Cycles.timestamp_divider }
            ~attempts:0)
        raws
  end

let discard_coalesced t =
  Queue.clear t.co_order;
  Hashtbl.reset t.co_tbl

let coalesce_insert t (w : raw) =
  (if Hashtbl.mem t.co_tbl w.w_paddr then begin
     match t.stats with
     | Some s -> Lvm_obs.Counter.incr s.s_absorbed
     | None -> ()
   end
   else Queue.push w.w_paddr t.co_order);
  Hashtbl.replace t.co_tbl w.w_paddr w;
  if Queue.length t.co_order >= t.coalesce_depth then flush_coalesced t

let snoop ?old_value t ~paddr ~vaddr ~size ~value =
  if t.enabled then begin
    (* pre-image first, so readers see old value then new value *)
    (match (t.record_old_values, old_value) with
    | true, Some old ->
      let arrival = !(t.clock) in
      admit t ~arrival;
      let arrival = max arrival !(t.clock) in
      service_one t
        {
          w_paddr = paddr;
          w_vaddr = vaddr;
          w_size = size;
          w_value = old;
          w_arrival = arrival;
          w_timestamp = arrival / Cycles.timestamp_divider;
          w_pre_image = true;
        }
        ~attempts:0
    | (true | false), _ -> ());
    let raw_at arrival =
      {
        w_paddr = paddr;
        w_vaddr = vaddr;
        w_size = size;
        w_value = value;
        w_arrival = arrival;
        w_timestamp = arrival / Cycles.timestamp_divider;
        w_pre_image = false;
      }
    in
    if t.coalesce_depth > 0 && coalescible (raw_at !(t.clock)) then
      coalesce_insert t (raw_at !(t.clock))
    else begin
      (* an uncoalescible write must not overtake buffered ones *)
      if Queue.length t.co_order > 0 then flush_coalesced t;
      match t.codec with
      | Log_record.V1 -> service_batch t [ raw_at !(t.clock) ]
      | Log_record.V0 ->
        let arrival = !(t.clock) in
        admit t ~arrival;
        let arrival = max arrival !(t.clock) in
        service_one t (raw_at arrival) ~attempts:0
    end
  end
