type t = {
  tags : int array; (* -1 = invalid, else line_number *)
  dirty : bool array;
  mask : int;
  bus : Bus.t;
  perf : Perf.t;
  run_hist : Lvm_obs.Histogram.t;
  mutable write_run : int; (* consecutive write-throughs so far *)
}

let size_bytes = 8 * 1024
let n_lines = size_bytes / Addr.line_size

let create ?obs bus perf =
  let obs = match obs with Some o -> o | None -> Lvm_obs.Ctx.create () in
  { tags = Array.make n_lines (-1); dirty = Array.make n_lines false;
    mask = n_lines - 1; bus; perf;
    run_hist =
      Lvm_obs.Ctx.histogram obs ~name:"l1.write_run"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:12);
    write_run = 0 }

(* A run of consecutive write-throughs ends at any other access; its
   length is what the overload analysis (Figure 11) cares about. *)
let end_write_run t =
  if t.write_run > 0 then begin
    Lvm_obs.Histogram.observe t.run_hist t.write_run;
    t.write_run <- 0
  end

let lines _ = n_lines
let slot t paddr = Addr.line_number paddr land t.mask

(* A CPU bus transaction: [total] CPU cycles of which the last [bus]
   cycles occupy the bus; the CPU stalls further if the bus is busy. *)
let bus_op t ~now ~total ~bus =
  let request = now + (total - bus) in
  let finish = Bus.access t.bus ~track:Bus.Cpu ~now:request ~cycles:bus in
  let natural = now + total in
  if finish > natural then finish else natural

let evict t ~now idx =
  if t.tags.(idx) >= 0 && t.dirty.(idx) then begin
    t.perf.Perf.l1_write_backs <- t.perf.Perf.l1_write_backs + 1;
    t.dirty.(idx) <- false;
    bus_op t ~now ~total:Cycles.cache_block_write_total
      ~bus:Cycles.cache_block_write_bus
  end
  else now

let fill t ~now idx line =
  let now = evict t ~now idx in
  t.tags.(idx) <- line;
  t.dirty.(idx) <- false;
  bus_op t ~now ~total:Cycles.l1_fill_total ~bus:Cycles.l1_fill_bus

let read t ~now ~paddr =
  end_write_run t;
  let idx = slot t paddr in
  let line = Addr.line_number paddr in
  if t.tags.(idx) = line then begin
    t.perf.Perf.l1_hits <- t.perf.Perf.l1_hits + 1;
    now + Cycles.l1_hit
  end
  else begin
    t.perf.Perf.l1_misses <- t.perf.Perf.l1_misses + 1;
    fill t ~now idx line + Cycles.l1_hit
  end

let write_back_mode_write t ~now ~paddr =
  end_write_run t;
  let idx = slot t paddr in
  let line = Addr.line_number paddr in
  if t.tags.(idx) = line then begin
    t.perf.Perf.l1_hits <- t.perf.Perf.l1_hits + 1;
    t.dirty.(idx) <- true;
    now + Cycles.l1_hit
  end
  else begin
    t.perf.Perf.l1_misses <- t.perf.Perf.l1_misses + 1;
    let now = fill t ~now idx line in
    t.dirty.(idx) <- true;
    now + Cycles.l1_hit
  end

let write_through t ~now ~paddr =
  ignore (slot t paddr);
  t.write_run <- t.write_run + 1;
  t.perf.Perf.write_throughs <- t.perf.Perf.write_throughs + 1;
  (* The line, if resident, is updated in place; it stays clean because the
     write also goes to memory. No allocation on miss. *)
  bus_op t ~now ~total:Cycles.word_write_through_total
    ~bus:Cycles.word_write_through_bus

let invalidate_page t ~page =
  let first = page * Addr.lines_per_page in
  let last = first + Addr.lines_per_page - 1 in
  for line = first to last do
    let idx = line land t.mask in
    if t.tags.(idx) = line then begin
      t.tags.(idx) <- -1;
      t.dirty.(idx) <- false
    end
  done

let invalidate_line t ~paddr =
  let idx = slot t paddr in
  let line = Addr.line_number paddr in
  if t.tags.(idx) = line then begin
    t.tags.(idx) <- -1;
    t.dirty.(idx) <- false;
    true
  end
  else false

let invalidate_all t =
  Array.fill t.tags 0 n_lines (-1);
  Array.fill t.dirty 0 n_lines false

let contains_line t ~paddr = t.tags.(slot t paddr) = Addr.line_number paddr
