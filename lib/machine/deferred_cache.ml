type page_state = {
  src_addr : int; (* source address of the page's first line *)
  modified : Bytes.t; (* one byte per line: 0 = from source, 1 = modified *)
  mutable dirty : bool;
}

type t = {
  pages : (int, page_state) Hashtbl.t; (* dst page number -> state *)
  mem : Physmem.t;
  perf : Perf.t;
  dirty_hist : Lvm_obs.Histogram.t;
}

let create ?obs mem perf =
  let obs = match obs with Some o -> o | None -> Lvm_obs.Ctx.create () in
  {
    pages = Hashtbl.create 64;
    mem;
    perf;
    dirty_hist =
      Lvm_obs.Ctx.histogram obs ~name:"dc.dirty_lines"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:8);
  }

let map t ~dst_page ~src_addr =
  if src_addr land (Addr.line_size - 1) <> 0 then
    invalid_arg "Deferred_cache.map: source address must be line-aligned";
  Hashtbl.replace t.pages dst_page
    { src_addr; modified = Bytes.make Addr.lines_per_page '\000';
      dirty = false }

let unmap t ~dst_page = Hashtbl.remove t.pages dst_page
let is_mapped t ~dst_page = Hashtbl.mem t.pages dst_page

let page_dirty t ~dst_page =
  match Hashtbl.find_opt t.pages dst_page with
  | None -> false
  | Some st -> st.dirty

let line_index paddr = Addr.page_offset paddr / Addr.line_size

let resolve_read t ~paddr =
  match Hashtbl.find_opt t.pages (Addr.page_number paddr) with
  | None -> paddr
  | Some st ->
    let li = line_index paddr in
    if Bytes.get st.modified li <> '\000' then paddr
    else st.src_addr + (li * Addr.line_size) + (paddr land (Addr.line_size - 1))

let note_write t ~paddr =
  match Hashtbl.find_opt t.pages (Addr.page_number paddr) with
  | None -> ()
  | Some st ->
    let li = line_index paddr in
    if Bytes.get st.modified li = '\000' then begin
      (* First write to this line: load it from the source so partial
         writes merge with the checkpointed bytes. *)
      let dst_line = Addr.line_base paddr in
      let src_line = st.src_addr + (li * Addr.line_size) in
      Physmem.blit t.mem ~src:src_line ~dst:dst_line ~len:Addr.line_size;
      Bytes.set st.modified li '\001';
      st.dirty <- true
    end

let reset_page t ~dst_page ~was_dirty =
  t.perf.Perf.dc_pages_scanned <- t.perf.Perf.dc_pages_scanned + 1;
  match Hashtbl.find_opt t.pages dst_page with
  | None ->
    was_dirty := false;
    Cycles.dc_reset_per_page
  | Some st ->
    was_dirty := st.dirty;
    if st.dirty then begin
      t.perf.Perf.dc_pages_dirty <- t.perf.Perf.dc_pages_dirty + 1;
      let dirty_lines = ref 0 in
      Bytes.iter
        (fun c -> if c <> '\000' then incr dirty_lines)
        st.modified;
      Lvm_obs.Histogram.observe t.dirty_hist !dirty_lines;
      Bytes.fill st.modified 0 Addr.lines_per_page '\000';
      st.dirty <- false;
      Cycles.dc_reset_per_page
      + (Addr.lines_per_page * Cycles.dc_reset_per_dirty_line)
    end
    else Cycles.dc_reset_per_page

let modified_lines t ~dst_page =
  match Hashtbl.find_opt t.pages dst_page with
  | None -> []
  | Some st ->
    let lines = ref [] in
    for li = Addr.lines_per_page - 1 downto 0 do
      if Bytes.get st.modified li <> '\000' then lines := li :: !lines
    done;
    !lines

let mapped_pages t =
  Hashtbl.fold (fun pn _ acc -> pn :: acc) t.pages [] |> List.sort compare
