type write_mode = Write_back | Write_through

(* Each processor board carries its own clock and private first-level
   cache; everything else — physical memory, the bus, the second-level
   deferred-copy cache and the logger — is shared (Section 4.1's ParaDiGM
   configuration). The machine is still sequential: one CPU is "active"
   at a time and the deterministic scheduler above interleaves them. *)
type cpu_state = { clk : int ref; l1 : L1_cache.t }

type t = {
  mem : Physmem.t;
  bus : Bus.t;
  cpu : cpu_state array;
  mutable cur : int;
  deferred : Deferred_cache.t;
  logger : Logger.t;
  perf : Perf.t;
  obs : Lvm_obs.Ctx.t;
  snoop_invalidations : Lvm_obs.Counter.counter option;
    (* registered only on multi-CPU machines, so single-CPU snapshots are
       unchanged *)
  mutable fault : Lvm_fault.Plan.t option;
}

let create ?obs ?(hw = Logger.Prototype) ?record_old_values ?codec
    ?coalesce_depth ?(frames = 4096) ?(log_entries = 64) ?(cpus = 1) () =
  if cpus <= 0 then invalid_arg "Machine.create: cpus must be positive";
  let obs = match obs with Some o -> o | None -> Lvm_obs.Ctx.create () in
  let perf = Perf.create () in
  Lvm_obs.Ctx.add_provider obs (fun () -> Perf.to_alist perf);
  let mem = Physmem.create ~frames in
  let bus = Bus.create ~obs ~cpus perf in
  (* component creation order fixes observability registration order;
     keep it as it always was (logger, deferred cache, then L1s) so
     single-CPU snapshots stay byte-identical *)
  let clocks = Array.init cpus (fun _ -> ref 0) in
  let logger =
    Logger.create ~obs ~hw ?record_old_values ?codec ?coalesce_depth
      ~log_entries ~clock:clocks.(0) mem bus perf
  in
  let deferred = Deferred_cache.create ~obs mem perf in
  let cpu =
    Array.init cpus (fun i ->
        { clk = clocks.(i); l1 = L1_cache.create ~obs bus perf })
  in
  let t =
    {
      mem;
      bus;
      cpu;
      cur = 0;
      deferred;
      logger;
      perf;
      obs;
      snoop_invalidations =
        (if cpus > 1 then Some (Lvm_obs.Ctx.counter obs "l1.snoop_invalidations")
         else None);
      fault = None;
    }
  in
  if cpus > 1 then
    Lvm_obs.Ctx.add_provider obs (fun () ->
        ("bus.contention_cycles", Bus.contention_cycles bus)
        :: List.concat
             (List.init cpus (fun i ->
                  [
                    (Printf.sprintf "cpu.cycles{cpu=%d}" i, !(cpu.(i).clk));
                    ( Printf.sprintf "cpu.bus_wait_cycles{cpu=%d}" i,
                      Bus.wait_cycles bus ~cpu:i );
                    ( Printf.sprintf "cpu.bus_grants{cpu=%d}" i,
                      Bus.grants bus ~cpu:i );
                  ])));
  t

let mem t = t.mem
let logger t = t.logger
let deferred t = t.deferred
let l1 t = t.cpu.(t.cur).l1
let bus t = t.bus
let perf t = t.perf
let obs t = t.obs
let snapshot t = Lvm_obs.Ctx.snapshot t.obs
let clock t = t.cpu.(t.cur).clk
let time t = !(t.cpu.(t.cur).clk)

let cpus t = Array.length t.cpu
let current_cpu t = t.cur

let set_cpu t cpu =
  if cpu < 0 || cpu >= Array.length t.cpu then
    invalid_arg "Machine.set_cpu: bad cpu";
  if cpu <> t.cur then begin
    t.cur <- cpu;
    Bus.set_active t.bus cpu;
    Logger.set_clock t.logger t.cpu.(cpu).clk
  end

let cpu_time t ~cpu =
  if cpu < 0 || cpu >= Array.length t.cpu then
    invalid_arg "Machine.cpu_time: bad cpu";
  !(t.cpu.(cpu).clk)

let max_time t =
  Array.fold_left (fun acc c -> max acc !(c.clk)) 0 t.cpu

let bus_contention_cycles t = Bus.contention_cycles t.bus

let l1_invalidate_page t ~page =
  Array.iter (fun c -> L1_cache.invalidate_page c.l1 ~page) t.cpu

let set_fault_plan t plan =
  t.fault <- plan;
  Logger.set_fault_plan t.logger plan;
  match plan with
  | Some p -> Lvm_fault.Plan.set_obs p t.obs
  | None -> ()

let fault_plan t = t.fault

let fault_check t ~site =
  match t.fault with
  | None -> None
  | Some plan -> Lvm_fault.Plan.check_crash plan ~site ~cycle:(time t)

(* Instruction-stream crash boundary: every compute/read/write consults
   the plan, so [Plan.crash_at n] dies at the first boundary at or after
   cycle [n]. Only [Crash] is meaningful at the Cpu site. *)
let cpu_boundary t = ignore (fault_check t ~site:Lvm_fault.Fault.Cpu)

let compute t cycles =
  if cycles < 0 then invalid_arg "Machine.compute: negative cycles";
  let clock = t.cpu.(t.cur).clk in
  clock := !clock + cycles;
  cpu_boundary t

let read t ~paddr ~size =
  cpu_boundary t;
  let c = t.cpu.(t.cur) in
  c.clk := L1_cache.read c.l1 ~now:!(c.clk) ~paddr;
  let actual = Deferred_cache.resolve_read t.deferred ~paddr in
  Physmem.read_sized t.mem actual ~size

(* Write-invalidate snoop (Section 2.6): a write-through appears on the
   bus, so every other CPU's cache drops any stale copy of the line. The
   snoop rides the bus transaction already charged to the writer; it
   costs the other processors nothing. *)
let snoop_invalidate t ~paddr =
  match t.snoop_invalidations with
  | None -> ()
  | Some counter ->
    for i = 0 to Array.length t.cpu - 1 do
      if i <> t.cur && L1_cache.invalidate_line t.cpu.(i).l1 ~paddr then
        Lvm_obs.Counter.incr counter
    done

let write t ~paddr ?vaddr ~size ~mode ~logged value =
  cpu_boundary t;
  let vaddr = match vaddr with Some v -> v | None -> paddr in
  (match (mode, logged) with
  | Write_back, true ->
    invalid_arg "Machine.write: logged pages must be write-through"
  | (Write_back | Write_through), _ -> ());
  let c = t.cpu.(t.cur) in
  (* A logged write issued while the logger is still draining earlier
     records pays bus-arbitration interference: this is what makes bursts
     of logged writes cost more per write (Figure 10). *)
  if logged && Logger.busy t.logger then
    c.clk := !(c.clk) + Cycles.wt_logger_interference;
  (* pre-image capture (Section 4.6 option): the old value is available
     for free during the store on the hardware side *)
  let old_value =
    if logged && Logger.records_old_values t.logger then
      Some (Physmem.read_sized t.mem paddr ~size)
    else None
  in
  (match mode with
  | Write_through ->
    c.clk := L1_cache.write_through c.l1 ~now:!(c.clk) ~paddr;
    snoop_invalidate t ~paddr
  | Write_back ->
    c.clk := L1_cache.write_back_mode_write c.l1 ~now:!(c.clk) ~paddr);
  Deferred_cache.note_write t.deferred ~paddr;
  Physmem.write_sized t.mem paddr ~size value;
  if logged then Logger.snoop ?old_value t.logger ~paddr ~vaddr ~size ~value

let bcopy t ~src ~dst ~len =
  if len < 0 || len mod Addr.word_size <> 0 then
    invalid_arg "Machine.bcopy: length must be a multiple of the word size";
  let words = len / Addr.word_size in
  compute t (Cycles.bcopy_base + (words * Cycles.bcopy_per_word));
  for i = 0 to words - 1 do
    let s = src + (i * Addr.word_size) and d = dst + (i * Addr.word_size) in
    let actual = Deferred_cache.resolve_read t.deferred ~paddr:s in
    let v = Physmem.read_word t.mem actual in
    Deferred_cache.note_write t.deferred ~paddr:d;
    Physmem.write_word t.mem d v
  done

let dc_map t ~dst_page ~src_addr =
  Deferred_cache.map t.deferred ~dst_page ~src_addr

let dc_unmap t ~dst_page = Deferred_cache.unmap t.deferred ~dst_page

let dc_reset_page t ~dst_page =
  let was_dirty = ref false in
  let cost = Deferred_cache.reset_page t.deferred ~dst_page ~was_dirty in
  if !was_dirty then l1_invalidate_page t ~page:dst_page;
  compute t cost

let dc_page_dirty t ~dst_page = Deferred_cache.page_dirty t.deferred ~dst_page

let read_raw t ~paddr ~size = Physmem.read_sized t.mem paddr ~size

let write_raw t ~paddr ~size value =
  Deferred_cache.note_write t.deferred ~paddr;
  Physmem.write_sized t.mem paddr ~size value
