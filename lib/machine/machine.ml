type write_mode = Write_back | Write_through

type t = {
  mem : Physmem.t;
  bus : Bus.t;
  l1 : L1_cache.t;
  deferred : Deferred_cache.t;
  logger : Logger.t;
  perf : Perf.t;
  obs : Lvm_obs.Ctx.t;
  clock : int ref;
  mutable fault : Lvm_fault.Plan.t option;
}

let create ?obs ?(hw = Logger.Prototype) ?record_old_values ?(frames = 4096)
    ?(log_entries = 64) () =
  let obs = match obs with Some o -> o | None -> Lvm_obs.Ctx.create () in
  let perf = Perf.create () in
  Lvm_obs.Ctx.add_provider obs (fun () -> Perf.to_alist perf);
  let mem = Physmem.create ~frames in
  let bus = Bus.create ~obs perf in
  let clock = ref 0 in
  {
    mem;
    bus;
    l1 = L1_cache.create ~obs bus perf;
    deferred = Deferred_cache.create ~obs mem perf;
    logger = Logger.create ~obs ~hw ?record_old_values ~log_entries ~clock mem
        bus perf;
    perf;
    obs;
    clock;
    fault = None;
  }

let mem t = t.mem
let logger t = t.logger
let deferred t = t.deferred
let l1 t = t.l1
let bus t = t.bus
let perf t = t.perf
let obs t = t.obs
let snapshot t = Lvm_obs.Ctx.snapshot t.obs
let clock t = t.clock
let time t = !(t.clock)

let set_fault_plan t plan =
  t.fault <- plan;
  Logger.set_fault_plan t.logger plan;
  match plan with
  | Some p -> Lvm_fault.Plan.set_obs p t.obs
  | None -> ()

let fault_plan t = t.fault

let fault_check t ~site =
  match t.fault with
  | None -> None
  | Some plan -> Lvm_fault.Plan.check_crash plan ~site ~cycle:!(t.clock)

(* Instruction-stream crash boundary: every compute/read/write consults
   the plan, so [Plan.crash_at n] dies at the first boundary at or after
   cycle [n]. Only [Crash] is meaningful at the Cpu site. *)
let cpu_boundary t = ignore (fault_check t ~site:Lvm_fault.Fault.Cpu)

let compute t cycles =
  if cycles < 0 then invalid_arg "Machine.compute: negative cycles";
  t.clock := !(t.clock) + cycles;
  cpu_boundary t

let read t ~paddr ~size =
  cpu_boundary t;
  t.clock := L1_cache.read t.l1 ~now:!(t.clock) ~paddr;
  let actual = Deferred_cache.resolve_read t.deferred ~paddr in
  Physmem.read_sized t.mem actual ~size

let write t ~paddr ?vaddr ~size ~mode ~logged value =
  cpu_boundary t;
  let vaddr = match vaddr with Some v -> v | None -> paddr in
  (match (mode, logged) with
  | Write_back, true ->
    invalid_arg "Machine.write: logged pages must be write-through"
  | (Write_back | Write_through), _ -> ());
  (* A logged write issued while the logger is still draining earlier
     records pays bus-arbitration interference: this is what makes bursts
     of logged writes cost more per write (Figure 10). *)
  if logged && Logger.busy t.logger then
    t.clock := !(t.clock) + Cycles.wt_logger_interference;
  (* pre-image capture (Section 4.6 option): the old value is available
     for free during the store on the hardware side *)
  let old_value =
    if logged && Logger.records_old_values t.logger then
      Some (Physmem.read_sized t.mem paddr ~size)
    else None
  in
  (match mode with
  | Write_through ->
    t.clock := L1_cache.write_through t.l1 ~now:!(t.clock) ~paddr
  | Write_back ->
    t.clock := L1_cache.write_back_mode_write t.l1 ~now:!(t.clock) ~paddr);
  Deferred_cache.note_write t.deferred ~paddr;
  Physmem.write_sized t.mem paddr ~size value;
  if logged then Logger.snoop ?old_value t.logger ~paddr ~vaddr ~size ~value

let bcopy t ~src ~dst ~len =
  if len < 0 || len mod Addr.word_size <> 0 then
    invalid_arg "Machine.bcopy: length must be a multiple of the word size";
  let words = len / Addr.word_size in
  compute t (Cycles.bcopy_base + (words * Cycles.bcopy_per_word));
  for i = 0 to words - 1 do
    let s = src + (i * Addr.word_size) and d = dst + (i * Addr.word_size) in
    let actual = Deferred_cache.resolve_read t.deferred ~paddr:s in
    let v = Physmem.read_word t.mem actual in
    Deferred_cache.note_write t.deferred ~paddr:d;
    Physmem.write_word t.mem d v
  done

let dc_map t ~dst_page ~src_addr =
  Deferred_cache.map t.deferred ~dst_page ~src_addr

let dc_unmap t ~dst_page = Deferred_cache.unmap t.deferred ~dst_page

let dc_reset_page t ~dst_page =
  let was_dirty = ref false in
  let cost = Deferred_cache.reset_page t.deferred ~dst_page ~was_dirty in
  if !was_dirty then L1_cache.invalidate_page t.l1 ~page:dst_page;
  compute t cost

let dc_page_dirty t ~dst_page = Deferred_cache.page_dirty t.deferred ~dst_page

let read_raw t ~paddr ~size = Physmem.read_sized t.mem paddr ~size

let write_raw t ~paddr ~size value =
  Deferred_cache.note_write t.deferred ~paddr;
  Physmem.write_sized t.mem paddr ~size value
