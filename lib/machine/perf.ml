type t = {
  mutable bus_busy_cycles : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l1_write_backs : int;
  mutable write_throughs : int;
  mutable log_records : int;
  mutable log_records_lost : int;
  mutable logging_faults_pmt : int;
  mutable logging_faults_log_addr : int;
  mutable overloads : int;
  mutable overload_cycles : int;
  mutable page_faults : int;
  mutable write_protect_faults : int;
  mutable dc_resets : int;
  mutable dc_pages_scanned : int;
  mutable dc_pages_dirty : int;
}

let create () =
  {
    bus_busy_cycles = 0;
    l1_hits = 0;
    l1_misses = 0;
    l1_write_backs = 0;
    write_throughs = 0;
    log_records = 0;
    log_records_lost = 0;
    logging_faults_pmt = 0;
    logging_faults_log_addr = 0;
    overloads = 0;
    overload_cycles = 0;
    page_faults = 0;
    write_protect_faults = 0;
    dc_resets = 0;
    dc_pages_scanned = 0;
    dc_pages_dirty = 0;
  }

let reset t =
  t.bus_busy_cycles <- 0;
  t.l1_hits <- 0;
  t.l1_misses <- 0;
  t.l1_write_backs <- 0;
  t.write_throughs <- 0;
  t.log_records <- 0;
  t.log_records_lost <- 0;
  t.logging_faults_pmt <- 0;
  t.logging_faults_log_addr <- 0;
  t.overloads <- 0;
  t.overload_cycles <- 0;
  t.page_faults <- 0;
  t.write_protect_faults <- 0;
  t.dc_resets <- 0;
  t.dc_pages_scanned <- 0;
  t.dc_pages_dirty <- 0

let copy t = { t with bus_busy_cycles = t.bus_busy_cycles }

let to_alist t =
  [
    ("bus_busy_cycles", t.bus_busy_cycles);
    ("l1_hits", t.l1_hits);
    ("l1_misses", t.l1_misses);
    ("l1_write_backs", t.l1_write_backs);
    ("write_throughs", t.write_throughs);
    ("log_records", t.log_records);
    ("log_records_lost", t.log_records_lost);
    ("logging_faults_pmt", t.logging_faults_pmt);
    ("logging_faults_log_addr", t.logging_faults_log_addr);
    ("overloads", t.overloads);
    ("overload_cycles", t.overload_cycles);
    ("page_faults", t.page_faults);
    ("write_protect_faults", t.write_protect_faults);
    ("dc_resets", t.dc_resets);
    ("dc_pages_scanned", t.dc_pages_scanned);
    ("dc_pages_dirty", t.dc_pages_dirty);
  ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>bus_busy_cycles=%d@ l1_hits=%d l1_misses=%d l1_write_backs=%d@ \
     write_throughs=%d@ log_records=%d lost=%d@ logging_faults pmt=%d \
     log_addr=%d@ overloads=%d overload_cycles=%d@ page_faults=%d \
     write_protect_faults=%d@ dc_resets=%d dc_pages scanned=%d dirty=%d@]"
    t.bus_busy_cycles t.l1_hits t.l1_misses t.l1_write_backs t.write_throughs
    t.log_records t.log_records_lost t.logging_faults_pmt
    t.logging_faults_log_addr t.overloads t.overload_cycles t.page_faults
    t.write_protect_faults t.dc_resets t.dc_pages_scanned t.dc_pages_dirty
