type t = {
  id : string;
  description : string;
  run : quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { id = "table2"; description = "Table 2: basic machine performance";
      run = Exp_table2.run };
    { id = "table3"; description = "Table 3: RVM vs RLVM, TPC-A";
      run = Exp_table3.run };
    { id = "fig7";
      description = "Figure 7: LVM vs copy-based checkpointing";
      run = Exp_fig7.run };
    { id = "fig8"; description = "Figure 8: effect of writes per event";
      run = Exp_fig8.run };
    { id = "fig9"; description = "Figure 9: resetDeferredCopy vs bcopy";
      run = Exp_fig9.run };
    { id = "fig10"; description = "Figure 10: CPU cost of logged writes";
      run = Exp_fig10.run };
    { id = "fig11-12";
      description = "Figures 11-12: overload cost and frequency";
      run = Exp_fig11.run };
    { id = "onchip";
      description = "Ablation A: prototype vs on-chip logging (Sec 4.6)";
      run = Exp_onchip.run };
    { id = "state-saving";
      description = "Ablation B: copy vs page-protect vs LVM (Sec 5.1)";
      run = Exp_pageprot.run };
    { id = "consistency";
      description = "Ablation C: log-based consistency vs twin/diff (Sec 2.6)";
      run = Exp_consistency.run };
    { id = "timewarp";
      description = "Ablation D: TimeWarp end-to-end, LVM vs copy saving";
      run = Exp_timewarp.run };
    { id = "checkpoint";
      description =
        "Ablation E: rollback primitives (bcopy/deferred-copy/Li-Appel)";
      run = Exp_checkpoint.run };
    { id = "multicpu";
      description = "Multi-CPU: bus contention and logger overload, 1-4 CPUs";
      run = Exp_multicpu.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?(quick = false) ppf =
  List.iter (fun e -> e.run ~quick ppf) all
