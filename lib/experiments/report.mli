(** Formatting helpers for the experiment reports: section banners,
    aligned tables, and paper-vs-measured comparison rows. *)

val section : Format.formatter -> string -> unit
val subsection : Format.formatter -> string -> unit

val table : Format.formatter -> header:string list -> string list list -> unit
(** Render rows under a header with aligned columns. *)

val paper_row : label:string -> paper:string -> measured:string -> string list
(** A three-column comparison row for {!table} with header
    [["quantity"; "paper"; "measured"]]. *)

val comparison :
  Format.formatter -> (string * string * string) list -> unit
(** A full paper-vs-measured table from (label, paper, measured) rows. *)

val note : Format.formatter -> string -> unit

val fi : int -> string
val ff : ?decimals:int -> float -> string

val metrics :
  ?label:string -> Format.formatter -> format:Lvm_obs.Sink.format option ->
  Lvm_obs.Collector.t -> unit
(** Emit the collector's merged counters and histograms in the requested
    sink format; [format = None] emits nothing (metrics not requested). *)

val with_metrics :
  ?label:string -> Format.formatter -> format:Lvm_obs.Sink.format option ->
  (unit -> 'a) -> 'a
(** Run a workload under an ambient {!Lvm_obs.Collector} and emit its
    metrics afterwards. Every machine the workload creates is captured. *)
