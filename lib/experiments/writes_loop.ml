open Lvm_machine
open Lvm_vm

type result = {
  iterations : int;
  cycles : int;
  overloads : int;
  overload_cycles : int;
  bus_contention : int;
}

let seg_bytes = 256 * 1024
let log_pages = 128

(* The original single-processor loop, kept as its own code path so its
   sequence of kernel calls — and hence every calibrated number derived
   from it (Table 2/3, Figures 10-12) — is bit-identical to before the
   machine grew multiple CPUs. *)
let run_single ?hw ~iterations ~c ~unlogged ~logged () =
  let k = Kernel.create ?hw ~frames:512 () in
  let sp = Kernel.create_space k in
  (* unlogged target *)
  let useg = Kernel.create_segment k ~size:seg_bytes in
  let uregion = Kernel.create_region k useg in
  let ubase = Kernel.bind k sp uregion in
  (* logged target *)
  let lseg = Kernel.create_segment k ~size:seg_bytes in
  let lregion = Kernel.create_region k lseg in
  let ls = Kernel.create_log_segment k ~size:(log_pages * Addr.page_size) in
  Kernel.set_region_log k lregion (Some ls);
  let lbase = Kernel.bind k sp lregion in
  (* fault all pages in ahead of the measurement *)
  for p = 0 to (seg_bytes / Addr.page_size) - 1 do
    ignore (Kernel.read_word k sp (ubase + (p * Addr.page_size)));
    ignore (Kernel.read_word k sp (lbase + (p * Addr.page_size)))
  done;
  Logger.flush (Machine.logger (Kernel.machine k));
  let perf = Kernel.perf k in
  Perf.reset perf;
  let upos = ref 0 and lpos = ref 0 in
  let recycle_at = (log_pages - 8) * Addr.page_size in
  let records = ref 0 in
  let t0 = Kernel.time k in
  for i = 0 to iterations - 1 do
    Kernel.compute k c;
    for _ = 1 to unlogged do
      Kernel.write_word k sp (ubase + !upos) i;
      upos := (!upos + Addr.word_size) mod seg_bytes
    done;
    for _ = 1 to logged do
      Kernel.write_word k sp (lbase + !lpos) i;
      lpos := (!lpos + Addr.word_size) mod seg_bytes;
      incr records
    done;
    if !records * Log_record.bytes >= recycle_at then begin
      Lvm_log.truncate_suffix (Lvm_log.of_segment k ls) ~new_end:0;
      records := 0
    end
  done;
  let cycles = Kernel.time k - t0 in
  Logger.complete_pending (Machine.logger (Kernel.machine k));
  {
    iterations;
    cycles;
    overloads = perf.Perf.overloads;
    overload_cycles = perf.Perf.overload_cycles;
    bus_contention = 0;
  }

(* Per-CPU loop state for the multi-processor run. *)
type cpu_loop = {
  sp : Address_space.t;
  ubase : int;
  lbase : int;
  ls : Segment.t;
  mutable upos : int;
  mutable lpos : int;
  mutable records : int;
  mutable done_iters : int;
}

(* N processors each run the same per-CPU workload (so the per-CPU write
   rate matches the single-CPU run at the same [c]) against their own
   segments and their own logs, interleaved one iteration at a time by
   the deterministic scheduler. They share the bus and the logger:
   elapsed time is the latest CPU clock, and the contention the sweep
   reports is the cycles CPUs spent waiting behind each other's bus
   transactions. *)
let run_multi ?hw ~cpus ~iterations ~c ~unlogged ~logged () =
  let k = Kernel.create ?hw ~frames:(512 * cpus) ~cpus () in
  let machine = Kernel.machine k in
  let states =
    Array.init cpus (fun cpu ->
        Kernel.set_cpu k cpu;
        let sp = Kernel.create_space k in
        let useg = Kernel.create_segment k ~size:seg_bytes in
        let uregion = Kernel.create_region k useg in
        let ubase = Kernel.bind k sp uregion in
        let lseg = Kernel.create_segment k ~size:seg_bytes in
        let lregion = Kernel.create_region k lseg in
        let ls =
          Kernel.create_log_segment k ~size:(log_pages * Addr.page_size)
        in
        Kernel.set_region_log k lregion (Some ls);
        let lbase = Kernel.bind k sp lregion in
        for p = 0 to (seg_bytes / Addr.page_size) - 1 do
          ignore (Kernel.read_word k sp (ubase + (p * Addr.page_size)));
          ignore (Kernel.read_word k sp (lbase + (p * Addr.page_size)))
        done;
        { sp; ubase; lbase; ls; upos = 0; lpos = 0; records = 0;
          done_iters = 0 })
  in
  Kernel.set_cpu k 0;
  Logger.flush (Machine.logger machine);
  let perf = Kernel.perf k in
  Perf.reset perf;
  let contention0 = Machine.bus_contention_cycles machine in
  let t0 = Array.init cpus (fun cpu -> Kernel.cpu_time k ~cpu) in
  let recycle_at = (log_pages - 8) * Addr.page_size in
  let one_iteration st =
    let i = st.done_iters in
    Kernel.compute k c;
    for _ = 1 to unlogged do
      Kernel.write_word k st.sp (st.ubase + st.upos) i;
      st.upos <- (st.upos + Addr.word_size) mod seg_bytes
    done;
    for _ = 1 to logged do
      Kernel.write_word k st.sp (st.lbase + st.lpos) i;
      st.lpos <- (st.lpos + Addr.word_size) mod seg_bytes;
      st.records <- st.records + 1
    done;
    if st.records * Log_record.bytes >= recycle_at then begin
      Lvm_log.truncate_suffix (Lvm_log.of_segment k st.ls) ~new_end:0;
      st.records <- 0
    end;
    st.done_iters <- i + 1;
    st.done_iters < iterations
  in
  Kernel.run_cpus k ~tasks:(Array.map (fun st () -> one_iteration st) states);
  let cycles =
    let worst = ref 0 in
    for cpu = 0 to cpus - 1 do
      worst := max !worst (Kernel.cpu_time k ~cpu - t0.(cpu))
    done;
    !worst
  in
  Logger.complete_pending (Machine.logger machine);
  {
    iterations;
    cycles;
    overloads = perf.Perf.overloads;
    overload_cycles = perf.Perf.overload_cycles;
    bus_contention = Machine.bus_contention_cycles machine - contention0;
  }

let run ?hw ?(cpus = 1) ~iterations ~c ~unlogged ~logged () =
  if cpus <= 0 then invalid_arg "Writes_loop.run: cpus must be positive";
  if cpus = 1 then run_single ?hw ~iterations ~c ~unlogged ~logged ()
  else run_multi ?hw ~cpus ~iterations ~c ~unlogged ~logged ()

let per_write r ~c ~writes_per_iter =
  float_of_int (r.cycles - (c * r.iterations))
  /. float_of_int (r.iterations * writes_per_iter)

let per_iteration r = float_of_int r.cycles /. float_of_int r.iterations
