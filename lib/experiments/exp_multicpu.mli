(** Multi-CPU sweep: the shared-bus dynamics the paper's 4-processor
    ParaDiGM prototype exhibits but a single simulated CPU cannot —
    bus-contention cycles growing with processor count, and the logger
    FIFO overload (Figures 11-12) setting in at a {e lower per-CPU}
    write rate when four write streams share one logger. *)

type point = {
  cpus : int;
  per_iter : float;  (** Elapsed cycles per iteration (parallel time). *)
  bus_contention : int;
  overloads : int;
  overload_cycles : int;
}

val sweep :
  ?iterations:int -> ?c:int -> ?max_cpus:int -> unit -> point list
(** One point per CPU count, 1 to [max_cpus] (default 4), at a fixed
    compute gap [c] (default 30) per logged write. *)

val overload_onset_c : ?iterations:int -> cpus:int -> unit -> int option
(** Smallest compute gap (searched in steps of 5) at which the run
    completes without an overload interrupt; [None] if overload persists
    past c = 640. *)

val run : quick:bool -> Format.formatter -> unit
