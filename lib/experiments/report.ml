let section ppf title =
  let bar = String.make (String.length title + 4) '=' in
  Format.fprintf ppf "@.%s@.= %s =@.%s@." bar title bar

let subsection ppf title = Format.fprintf ppf "@.-- %s --@." title

let table ppf ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c w ->
        let cell = Option.value ~default:"" (List.nth_opt row c) in
        Format.fprintf ppf "%s%s  " cell
          (String.make (max 0 (w - String.length cell)) ' '))
      widths;
    Format.fprintf ppf "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let paper_row ~label ~paper ~measured = [ label; paper; measured ]

let comparison ppf rows =
  table ppf
    ~header:[ "quantity"; "paper"; "measured" ]
    (List.map (fun (l, p, m) -> paper_row ~label:l ~paper:p ~measured:m) rows)

let note ppf s = Format.fprintf ppf "note: %s@." s
let fi = string_of_int
let ff ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let metrics ?label ppf ~format collector =
  Lvm_tools.Metrics.emit ?label ~format ppf collector

let with_metrics ?label ppf ~format f =
  Lvm_tools.Metrics.with_ambient ?label ~format ppf f
