(** The Section 4.5.1 test methodology, shared by Figures 10-12 and the
    on-chip ablation: run iterations of

    + perform [c] compute cycles,
    + perform [unlogged] normal write operations,
    + perform [logged] logged write operations,

    with write addresses increasing so accesses hit in the second-level
    cache but not generally in the first-level. The log is recycled out of
    band (the kernel resets the write position when the segment nears its
    end), standing in for asynchronous CULT, so measurements reflect
    steady-state logging cost only. *)

type result = {
  iterations : int;
  cycles : int;
      (** Total elapsed cycles including compute. With several CPUs,
          the latest processor clock (per-CPU iteration counts are
          equal, so this is the parallel completion time). *)
  overloads : int;
  overload_cycles : int;
  bus_contention : int;
      (** Cycles CPUs spent waiting behind a different CPU's bus
          transaction; 0 on one CPU. *)
}

val run :
  ?hw:Lvm_machine.Logger.hw -> ?cpus:int -> iterations:int -> c:int ->
  unlogged:int -> logged:int -> unit -> result
(** With [cpus > 1] (default 1), {e each} CPU runs the full iteration
    loop against its own segments and log, so the per-CPU write rate
    matches the single-CPU run at the same [c] while all processors
    contend for the one bus and logger. The single-CPU path is exactly
    the original loop. *)

val per_write : result -> c:int -> writes_per_iter:int -> float
(** Cycles per write with the compute time subtracted out. *)

val per_iteration : result -> float
