open Lvm_vm
open Lvm_rvm

type results = {
  rvm_single_write : int;
  rlvm_single_write : int;
  rvm_tps : float;
  rlvm_tps : float;
  rvm_in_txn_fraction : float;
  rlvm_in_txn_fraction : float;
}

let single_writes () =
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let rvm = Rvm.make Rvm.Config.default k sp ~size:8192 in
  Rvm.begin_txn rvm;
  Rvm.set_range rvm ~off:0 ~len:4;
  Rvm.write_word rvm ~off:0 1 (* warm the page *);
  let t0 = Kernel.time k in
  Rvm.set_range rvm ~off:4 ~len:4;
  Rvm.write_word rvm ~off:4 2;
  let rvm_cost = Kernel.time k - t0 in
  Rvm.commit rvm;
  let rlvm = Rlvm.make Rlvm.Config.default k sp ~size:8192 in
  Rlvm.begin_txn rlvm;
  Rlvm.write_word rlvm ~off:0 1;
  Kernel.compute k 200;
  let t1 = Kernel.time k in
  Rlvm.write_word rlvm ~off:4 2;
  let rlvm_cost = Kernel.time k - t1 in
  Rlvm.commit rlvm;
  (rvm_cost, rlvm_cost)

(* Instrumented TPC-A run: separate the in-transaction time from commit
   and truncation by timing each phase through a wrapped store. *)
let tpca_with_split store bank ~txns =
  let k = store.Lvm_tpc.Tpca.kernel in
  let in_txn = ref 0 in
  let begin_time = ref 0 in
  let wrapped =
    {
      store with
      Lvm_tpc.Tpca.begin_txn =
        (fun () ->
          store.Lvm_tpc.Tpca.begin_txn ();
          begin_time := Kernel.time k);
      commit =
        (fun () ->
          in_txn := !in_txn + (Kernel.time k - !begin_time);
          store.Lvm_tpc.Tpca.commit ());
    }
  in
  Lvm_tpc.Tpca.setup store bank;
  let r = Lvm_tpc.Tpca.run wrapped bank ~txns in
  (r, float_of_int !in_txn /. float_of_int r.Lvm_tpc.Tpca.cycles)

let measure ?(txns = 500) () =
  let rvm_single_write, rlvm_single_write = single_writes () in
  let bank =
    Lvm_tpc.Bank.layout ~branches:4 ~tellers:40 ~accounts:400 ~history:256
  in
  let size = Lvm_tpc.Bank.segment_bytes bank in
  let k = Kernel.create () in
  let sp = Kernel.create_space k in
  let r_rvm, f_rvm =
    tpca_with_split (Lvm_tpc.Tpca.rvm_store (Rvm.make Rvm.Config.default k sp ~size)) bank
      ~txns
  in
  let r_rlvm, f_rlvm =
    tpca_with_split (Lvm_tpc.Tpca.rlvm_store (Rlvm.make Rlvm.Config.default k sp ~size)) bank
      ~txns
  in
  {
    rvm_single_write;
    rlvm_single_write;
    rvm_tps = r_rvm.Lvm_tpc.Tpca.tps;
    rlvm_tps = r_rlvm.Lvm_tpc.Tpca.tps;
    rvm_in_txn_fraction = f_rvm;
    rlvm_in_txn_fraction = f_rlvm;
  }

let run ~quick ppf =
  Report.section ppf "Table 3: RVM versus RLVM";
  let r = measure ~txns:(if quick then 150 else 500) () in
  Report.comparison ppf
    [
      ("Single write (RVM)", "3515 cycles",
       Report.fi r.rvm_single_write ^ " cycles");
      ("Single write (RLVM)", "16 cycles",
       Report.fi r.rlvm_single_write ^ " cycles");
      ( "RVM/RLVM write ratio", "~220x",
        Report.ff ~decimals:0
          (float_of_int r.rvm_single_write
           /. float_of_int r.rlvm_single_write)
        ^ "x" );
      ("TPC-A (RVM)", "418 trans/sec", Report.ff ~decimals:0 r.rvm_tps);
      ("TPC-A (RLVM)", "552 trans/sec", Report.ff ~decimals:0 r.rlvm_tps);
      ( "RVM in-transaction time", "~25%",
        Report.ff ~decimals:1 (100. *. r.rvm_in_txn_fraction) ^ "%" );
      ( "RLVM in-transaction time", "<1%",
        Report.ff ~decimals:1 (100. *. r.rlvm_in_txn_fraction) ^ "%" );
    ];
  Report.note ppf
    "commit and log truncation dominate both systems; LVM removes only \
     the in-transaction logging cost, as the paper reports."
