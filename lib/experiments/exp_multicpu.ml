type point = {
  cpus : int;
  per_iter : float;
  bus_contention : int;
  overloads : int;
  overload_cycles : int;
}

(* A moderate compute gap: enough that one CPU alone never overloads the
   logger FIFO, low enough that four write streams together push the
   shared logger toward its drain limit — the regime where bus and
   logger contention are visible. *)
let default_c = 30

let sweep ?(iterations = 10_000) ?(c = default_c) ?(max_cpus = 4) () =
  List.map
    (fun cpus ->
      let r = Writes_loop.run ~cpus ~iterations ~c ~unlogged:0 ~logged:1 () in
      {
        cpus;
        per_iter = Writes_loop.per_iteration r;
        bus_contention = r.Writes_loop.bus_contention;
        overloads = r.Writes_loop.overloads;
        overload_cycles = r.Writes_loop.overload_cycles;
      })
    (List.init max_cpus (fun i -> i + 1))

(* Smallest compute gap at which a full run sees no overload interrupt —
   the Figure 11/12 "overload avoided from c" point. More CPUs share one
   logger, so the gap must be larger (the per-CPU write rate lower)
   before overload stops: onset at a lower per-CPU write rate. *)
let overload_onset_c ?(iterations = 10_000) ~cpus () =
  let rec search c =
    if c > 640 then None
    else
      let r = Writes_loop.run ~cpus ~iterations ~c ~unlogged:0 ~logged:1 () in
      if r.Writes_loop.overloads = 0 then Some c else search (c + 5)
  in
  search 0

let run ~quick ppf =
  let iterations = if quick then 2_000 else 10_000 in
  let points = sweep ~iterations () in
  Report.section ppf "Multi-CPU: shared-bus contention (1-4 CPUs)";
  Report.table ppf
    ~header:
      [ "cpus"; "cycles/iter"; "bus contention (cyc)"; "overloads";
        "overload cycles" ]
    (List.map
       (fun p ->
         [ Report.fi p.cpus; Report.ff p.per_iter; Report.fi p.bus_contention;
           Report.fi p.overloads; Report.fi p.overload_cycles ])
       points);
  Report.note ppf
    "each CPU runs the same per-CPU write loop; contention is time spent \
     waiting behind another CPU's bus transaction";
  Report.section ppf "Multi-CPU: logger overload onset";
  let onset cpus = overload_onset_c ~iterations ~cpus () in
  let show = function Some c -> Report.fi c | None -> "> 640" in
  Report.table ppf
    ~header:[ "cpus"; "overload avoided from c =" ]
    [ [ "1"; show (onset 1) ]; [ "4"; show (onset 4) ] ];
  Report.note ppf
    "4 CPUs share one logger, so overload persists to a larger compute \
     gap (i.e. a lower per-CPU write rate) than with 1 CPU"
