(** Load-aware split/merge policy for the sharded store.

    The splitter watches {!Store}'s per-bucket committed-write counters
    and the driver's per-shard queue depths, folds them into per-shard
    load EWMAs (published as [store.shard<i>.load] gauges), and advises
    when to move buckets:

    - {b Split}: when the hottest shard's load exceeds [imbalance]
      times the fleet average, peel its hottest buckets off to the
      coldest shard — enough of the round's write traffic to bring
      the hot shard down to the fleet average, but never so much that
      the recipient would rise above it (so the hotspot cannot simply
      relocate), capped at [max_buckets] and never the shard's last
      bucket.
    - {b Merge}: when the fleet is balanced (hottest under
      [merge_below] times the average) and earlier splits left buckets
      away from their default owners, send one displaced group home,
      shrinking routing entropy.

    The splitter only advises; the driver (see {!Workload}) owns the
    move lifecycle and runs the copy incrementally between
    transactions. Deterministic: same store history and advise
    cadence, same advice. *)

module Config : sig
  type t = {
    min_delta : int;
        (** Ignore rounds with less total write traffic than this. *)
    imbalance : float;  (** Split when [max_load >= imbalance * avg]. *)
    merge_below : float;
        (** Merge displaced buckets home when
            [max_load <= merge_below * avg]. *)
    max_buckets : int;  (** Buckets per move, at most. *)
    queue_weight : float;  (** Load contribution per queued txn. *)
    alpha : float;  (** EWMA weight of the newest load sample. *)
  }

  val default : t
  (** [{ min_delta = 32; imbalance = 1.6; merge_below = 1.15;
        max_buckets = 8; queue_weight = 4.; alpha = 0.5 }]. *)
end

type advice =
  | Split of { from_ : int; to_ : int; buckets : int list }
  | Merge of { from_ : int; to_ : int; buckets : int list }
  | Steady

type t

val create : ?config:Config.t -> Store.t -> t

val load : t -> int -> float
(** The shard's current load EWMA (as of the last {!advise}). *)

val advise : ?queue_depths:int array -> t -> advice
(** Fold the latest load sample into the EWMAs and advise. Returns
    [Steady] while a move is already active. *)
