open Lvm_vm
module Splitmix = Lvm_fault.Splitmix

(* {1 Zipfian sampler} *)

module Zipf = struct
  type t = { n : int; theta : float; cdf : float array }

  let create ~n ~theta =
    if n < 1 then
      Error.raise_ (Error.Out_of_range { op = "Zipf.create"; what = "n"; value = n });
    if not (Float.is_finite theta) || theta < 0.0 then
      Error.raise_
        (Error.Out_of_range { op = "Zipf.create"; what = "theta"; value = 0 });
    (* Exact CDF over the ranks: O(n) to build, O(log n) to sample, any
       theta >= 0 (0 degenerates to uniform). *)
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for r = 0 to n - 1 do
      acc := !acc +. (1.0 /. (float_of_int (r + 1) ** theta));
      cdf.(r) <- !acc
    done;
    let total = !acc in
    for r = 0 to n - 1 do
      cdf.(r) <- cdf.(r) /. total
    done;
    { n; theta; cdf }

  let n t = t.n
  let theta t = t.theta

  let pmf t r =
    if r < 0 || r >= t.n then
      Error.raise_ (Error.Out_of_range { op = "Zipf.pmf"; what = "rank"; value = r });
    if r = 0 then t.cdf.(0) else t.cdf.(r) -. t.cdf.(r - 1)

  let sample t rng =
    let u = Splitmix.unit_float rng in
    (* Smallest rank whose CDF exceeds the draw. *)
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if u < t.cdf.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
end

(* Rank -> key, owner-major: the hottest [buckets_per_shard] ranks land
   on distinct buckets of shard 0, the next batch on shard 1's buckets,
   and so on, wrapping round the keyspace. A skewed rank distribution
   therefore concentrates on the low shards — the hot-shard scenario a
   split must fix — while still spreading within the hot shard's
   buckets, so a split can actually peel load off. A bijection of
   [0, keys) when [shards * buckets_per_shard] divides [keys]. *)
let clustered_key ~shards ~buckets_per_shard ~keys rank =
  let buckets = shards * buckets_per_shard in
  let i = rank mod buckets in
  let bucket = ((i mod buckets_per_shard) * shards) + (i / buckets_per_shard) in
  (bucket + (buckets * (rank / buckets))) mod keys

(* {1 The spec} *)

type dist =
  | Uniform
  | Zipfian of { theta : float }
  | Hot of { pct : int; hot_keys : int }

type arrival =
  | Closed
  | Open of {
      mean_gap : int;
      burst_every : int;
      burst_len : int;
      burst_gap : int;
    }

type split_spec = {
  check_every : int;
  batch : int;
  max_moves : int;
  advisor : Splitter.Config.t;
}

let default_split =
  { check_every = 32; batch = 32; max_moves = 8;
    advisor = Splitter.Config.default }

type read_mode = Worker | Snapshot

type spec = {
  txns : int;
  cross_pct : int;
  writes_per_txn : int;
  seed : int;
  retries : int;
  dist : dist;
  arrival : arrival;
  queue_cap : int option;
  split : split_spec option;
  read_pct : int;
  read_mode : read_mode;
  readers : int;
}

let default =
  { txns = 400; cross_pct = 20; writes_per_txn = 4; seed = 7; retries = 2;
    dist = Uniform; arrival = Closed; queue_cap = None; split = None;
    read_pct = 0; read_mode = Worker; readers = 1 }

type shard_stat = { txns : int; cycles : int }

type result = {
  executed : int;
  reads : int;
  cross : int;
  shed : int;
  failed : int;
  requeued : int;
  moved : int;
  dropped : int;
  splits : int;
  merges : int;
  wall_cycles : int;
  cycles_per_txn : float;
  per_shard : shard_stat array;
}

type entry = {
  writes : (int * int) list;
  reads : int list;
  is_cross : bool;
  mutable tries : int;
  arrive : int;
}

(* Keys living on shard [s] under the default route: s, s + shards, ... *)
let slot_count ~keys ~shards s = (keys - s + shards - 1) / shards

let key_on ~keys ~shards rng s =
  s + (shards * Splitmix.int rng ~bound:(slot_count ~keys ~shards s))

let generate store spec =
  let cfg = Store.config store in
  let shards = cfg.Store.Config.shards in
  let keys = cfg.Store.Config.keys in
  let bps = cfg.Store.Config.buckets_per_shard in
  let rng = Splitmix.create ~seed:spec.seed in
  let zipf =
    match spec.dist with
    | Zipfian { theta } -> Some (Zipf.create ~n:keys ~theta)
    | Uniform | Hot _ -> None
  in
  let value () = Splitmix.int rng ~bound:0x3FFFFFFF in
  let skewed_key () =
    match (spec.dist, zipf) with
    | Zipfian _, Some z ->
      clustered_key ~shards ~buckets_per_shard:bps ~keys (Zipf.sample z rng)
    | Hot { pct; hot_keys }, _ ->
      if Splitmix.int rng ~bound:100 < pct then
        clustered_key ~shards ~buckets_per_shard:bps ~keys
          (Splitmix.int rng ~bound:(max 1 hot_keys))
      else Splitmix.int rng ~bound:keys
    | _ -> assert false
  in
  let clock = ref 0 in
  let entries = ref [] in
  for i = 0 to spec.txns - 1 do
    (* Read-heavy mixes: [read_pct]% of the ops are single-key reads
       drawn from the same distribution. The draw happens only when
       [read_pct > 0], so pure-write specs keep the historical stream
       draw-for-draw. *)
    let is_read = spec.read_pct > 0 && Splitmix.int rng ~bound:100 < spec.read_pct in
    let writes, reads, is_cross =
      if is_read then begin
        let key =
          match spec.dist with
          | Uniform -> Splitmix.int rng ~bound:keys
          | Zipfian _ | Hot _ -> skewed_key ()
        in
        ([], [ key ], false)
      end
      else
      match spec.dist with
      | Uniform ->
        (* The seeded uniform mix, draw-for-draw the stream earlier
           versions produced: same seed, same transactions. *)
        let is_cross =
          shards > 1 && Splitmix.int rng ~bound:100 < spec.cross_pct
        in
        if is_cross then begin
          let a = Splitmix.int rng ~bound:shards in
          let b = (a + 1 + Splitmix.int rng ~bound:(shards - 1)) mod shards in
          let half = max 1 (spec.writes_per_txn / 2) in
          ( List.init half (fun _ -> (key_on ~keys ~shards rng a, value ()))
            @ List.init
                (max 1 (spec.writes_per_txn - half))
                (fun _ -> (key_on ~keys ~shards rng b, value ())),
            [], true )
        end
        else begin
          let s = Splitmix.int rng ~bound:shards in
          ( List.init
              (max 1 spec.writes_per_txn)
              (fun _ -> (key_on ~keys ~shards rng s, value ())),
            [], false )
        end
      | Zipfian _ | Hot _ ->
        (* Skewed mixes draw every key from the distribution; whether
           the transaction is cross-shard falls out of where the keys
           land ([cross_pct] does not apply). *)
        let ws = ref [] in
        for _ = 1 to max 1 spec.writes_per_txn do
          ws := (skewed_key (), value ()) :: !ws
        done;
        let ws = List.rev !ws in
        let owners =
          List.sort_uniq compare
            (List.map (fun (key, _) -> Store.shard_of_key store key) ws)
        in
        (ws, [], List.length owners > 1)
    in
    (match spec.arrival with
    | Closed -> ()
    | Open { mean_gap; burst_every; burst_len; burst_gap } ->
      (* Open-loop Poisson arrivals: exponential inter-arrival gaps,
         with the first [burst_len] arrivals of every [burst_every]
         stretch drawn at the (much smaller) burst gap — a periodic
         traffic spike. *)
      let in_burst =
        burst_every > 0 && burst_len > 0 && i mod burst_every < burst_len
      in
      let mean = max 1 (if in_burst then burst_gap else mean_gap) in
      let u = Splitmix.unit_float rng in
      let gap = int_of_float (-.float_of_int mean *. Float.log (1.0 -. u)) in
      clock := !clock + max 0 gap);
    entries := { writes; reads; is_cross; tries = 0; arrive = !clock } :: !entries
  done;
  Array.of_list (List.rev !entries)

(* {1 The scheduler}

   One coroutine per home shard, suspended at [Store.exec]'s pace
   points via an effect handler. Every scheduler step resumes the
   coroutine whose next operation runs on the lowest-clock CPU, so the
   shared bus sees accesses in timestamp order — at whole-transaction
   granularity (the old round-robin driver) the tens-of-kilocycle
   commit charge of the leading CPU lands on the bus cursor first and
   every other CPU's next access is billed the skew as phantom
   contention, which erases the scaling shards buy. *)

type _ Effect.t += Yield : int -> unit Effect.t
(** Performed by the store's [pace ~cpu] hook: suspend this transaction;
    its next operation runs on CPU [cpu]. *)

type outcome =
  | Suspended of int * (unit, outcome) Effect.Deep.continuation
  | Done of (unit, Lvm.Lvm_error.t) Stdlib.result

(* What an in-flight coroutine is doing: a whole transaction (carrying
   the shards whose claim it handed to detached phase-2 items — those
   are released by the phase-2 item, not by the transaction), or the
   detached phase-2 tail of a cross-shard transaction (it holds the
   claim on one participant shard until it completes). *)
type job = Txn of entry * int list ref | Phase2 of int

type task_state =
  | Idle
  | Running of job * int * (unit, outcome) Effect.Deep.continuation

let yield ~cpu = Effect.perform (Yield cpu)

(* Start a unit of work as a coroutine: runs until the first pace point
   (or to completion if it never paces). *)
let start_coroutine f =
  Effect.Deep.match_with f ()
    { Effect.Deep.retc = (fun r -> Done r);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield cpu ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                Suspended (cpu, k))
          | _ -> None) }

let keys_of_entry entry = List.map fst entry.writes @ entry.reads

(* Route-aware: a moved bucket changes which worker claims the key. *)
let shards_of_entry store entry =
  List.sort_uniq compare
    (List.map (Store.shard_of_key store) (keys_of_entry entry))

(* What a shard CPU burns per scheduler step while its next transaction
   waits for a shard a cross-shard transaction holds — 2PC blocking,
   priced as a busy-wait. *)
let blocked_spin_cycles = 200

(* The driver's view of the move lifecycle it is running: the store
   holds the protocol state, this is just which step comes next. *)
type mv = { mv_from : int; mv_to : int; mv_merge : bool }

type mv_stage =
  | Mv_none
  | Mv_begin of mv * int list
  | Mv_copy of mv
  | Mv_drain of mv
  | Mv_cut of mv

let run store spec =
  let k = Store.kernel store in
  let cfg = Store.config store in
  let shards = cfg.Store.Config.shards in
  let entries = generate store spec in
  let n_entries = Array.length entries in
  let next_arrival = ref 0 in
  let queues = Array.init shards (fun _ -> Queue.create ()) in
  let executed = ref 0 and cross = ref 0 and reads_done = ref 0 in
  let shed = ref 0 and failed = ref 0 and requeued = ref 0 in
  let moved = ref 0 and dropped = ref 0 in
  let splits = ref 0 and merges = ref 0 in
  (* Transactions refused with [Moved] (their keys are mid-handoff):
     parked until the cutover commits, then re-queued under the new
     route. *)
  let parked = ref [] in
  let txn_counts = Array.make shards 0 in
  let cpu0 = Array.init shards (fun i -> Kernel.cpu_time k ~cpu:i) in
  let wall0 = Kernel.max_time k in
  let states = Array.make shards Idle in
  (* A shard with a transaction in flight: in-flight transactions must
     never share a shard (two open RLVM transactions on one instance). *)
  let busy = Array.make shards false in
  (* Detached phase-2 work, queued for the participant shard's worker
     (at most one per shard — the shard is claimed throughout). *)
  let phase2s = Array.make shards [] in
  (* [detach] is called from inside [Store.exec] while its coroutine
     runs, so the scheduler installs the running transaction's detached
     set here before each resume. The set must be per-transaction, not
     per-shard: a completed phase-2 frees its shard for a new claimant,
     and the detaching transaction's own [finish] — which may come
     later — must still skip exactly the shards it handed off. *)
  let detached_of_current = ref (ref []) in
  let detach ~shard run =
    let d = !detached_of_current in
    d := shard :: !d;
    phase2s.(shard) <- phase2s.(shard) @ [ run ]
  in
  let home_of entry =
    List.fold_left
      (fun acc key -> min acc (Store.shard_of_key store key))
      (shards - 1) (keys_of_entry entry)
  in
  (* {2 Snapshot readers}

     In [Snapshot] read mode the reads never enter a shard queue: they
     drain through [readers] virtual reader tasks, each with its own
     clock, reading MVCC snapshots off the log — no shard CPU, no
     claim, no admission. A reader re-acquires its snapshot every
     [snap_batch] reads (staleness bound) and otherwise reads wait-free
     against the pinned version chains. Readers are throttled to the
     machine wall clock while transactions are still in flight so the
     interleaving is honest; whatever is left drains after the writes
     finish. *)
  let snapshot_reads = spec.read_mode = Snapshot && spec.read_pct > 0 in
  (* Attach the view now, while the store is quiescent — a mid-run
     first acquire could land between a 2PC decision and its phase-2
     commits, when attaching is refused. *)
  if snapshot_reads && not (Store.mvcc_attached store) then
    (match Store.Snapshot.acquire store with
    | Ok s -> Store.Snapshot.release s
    | Error _ -> ());
  let read_stream = Queue.create () in
  let n_readers = max 1 spec.readers in
  let reader_clock = Array.make n_readers wall0 in
  let reader_snap = Array.make n_readers None in
  let reader_count = Array.make n_readers 0 in
  (* A snapshot read bills the version-chain lookup plus the same
     per-request application compute a worker-served read pays — on the
     reader's own clock instead of the shard CPU. The comparison
     measures placement, not vanished work. *)
  let snap_read_cycles = 60 + cfg.Store.Config.compute in
  let snap_acquire_cycles = 200 and snap_batch = 64 in
  let min_reader () =
    let best = ref 0 in
    for r = 1 to n_readers - 1 do
      if reader_clock.(r) < reader_clock.(!best) then best := r
    done;
    !best
  in
  let reader_read key =
    let r = min_reader () in
    if reader_count.(r) mod snap_batch = 0 then begin
      (match reader_snap.(r) with
      | Some s -> Store.Snapshot.release s
      | None -> ());
      reader_clock.(r) <- reader_clock.(r) + snap_acquire_cycles;
      reader_snap.(r) <-
        (match Store.Snapshot.acquire store with
        | Ok s -> Some s
        | Error _ -> None)
    end;
    reader_clock.(r) <- reader_clock.(r) + snap_read_cycles;
    reader_count.(r) <- reader_count.(r) + 1;
    match reader_snap.(r) with
    | Some s -> (
      match Store.Snapshot.read s key with
      | Ok _ -> incr reads_done
      | Error _ -> incr failed)
    | None -> incr failed
  in
  let drain_reads ~final =
    while
      (not (Queue.is_empty read_stream))
      && (final || reader_clock.(min_reader ()) <= Kernel.max_time k)
    do
      reader_read (Queue.pop read_stream)
    done
  in
  let enqueue entry =
    if snapshot_reads && entry.writes = [] then
      List.iter (fun key -> Queue.add key read_stream) entry.reads
    else
      let h = home_of entry in
      match spec.queue_cap with
      | Some cap when Queue.length queues.(h) >= cap ->
        (* Front-door drop: the home worker's queue is over its cap. *)
        incr dropped
      | _ -> Queue.add entry queues.(h)
  in
  let transfer_arrivals () =
    let wall = Kernel.max_time k in
    while !next_arrival < n_entries && entries.(!next_arrival).arrive <= wall do
      enqueue entries.(!next_arrival);
      incr next_arrival
    done
  in
  (* {2 The split engine} *)
  let splitter =
    match spec.split with
    | Some sc -> Some (Splitter.create ~config:sc.advisor store)
    | None -> None
  in
  let stage = ref Mv_none in
  let moves_done = ref 0 in
  let completions = ref 0 in
  let maybe_advise () =
    match (splitter, spec.split) with
    | Some sp, Some scfg
      when !stage = Mv_none
           && !moves_done < scfg.max_moves
           && !completions >= scfg.check_every -> (
      completions := 0;
      match
        Splitter.advise sp ~queue_depths:(Array.map Queue.length queues)
      with
      | Splitter.Split { from_; to_; buckets } ->
        stage :=
          Mv_begin ({ mv_from = from_; mv_to = to_; mv_merge = false }, buckets)
      | Splitter.Merge { from_; to_; buckets } ->
        stage :=
          Mv_begin ({ mv_from = from_; mv_to = to_; mv_merge = true }, buckets)
      | Splitter.Steady -> ())
    | _ -> ()
  in
  let unpark () =
    let ps = List.rev !parked in
    parked := [];
    (* Re-queued, not re-admitted: they passed the front door once. *)
    List.iter (fun e -> Queue.add e queues.(home_of e)) ps
  in
  (* One move step, run inline between scheduler steps whenever both
     endpoint shards are free — the copy interleaves with transaction
     execution at batch granularity instead of stopping the world. *)
  let drive_move () =
    let free m = (not busy.(m.mv_from)) && not busy.(m.mv_to) in
    match !stage with
    | Mv_none -> ()
    | Mv_begin (m, buckets) when free m ->
      Store.move_begin store ~from_:m.mv_from ~to_:m.mv_to buckets;
      stage := Mv_copy m
    | Mv_copy m when free m -> (
      let scfg = Option.get spec.split in
      match Store.move_copy_step store ~batch:(max 1 scfg.batch) with
      | 0 ->
        Store.move_enter_drain store;
        stage := Mv_drain m
      | _ -> ()
      | exception Error.Lvm_error (Error.Log_exhausted _) ->
        (* Target log saturated: the cursor did not move; retry next
           round once the batcher drains. *)
        ())
    | Mv_drain m when free m ->
      Store.move_drain store;
      stage := Mv_cut m
    | Mv_cut m when free m ->
      Store.move_cutover store;
      Store.move_retire store;
      incr moves_done;
      if m.mv_merge then incr merges else incr splits;
      stage := Mv_none;
      (* The cutover changed the routing table: entries queued under
         the old route would otherwise drain serially behind a worker
         that no longer owns their keys — the split would move the
         data and none of the load. Re-deal every queue by the new
         table (FIFO order per queue preserved). *)
      let backlog =
        Array.map
          (fun q ->
            let l = List.of_seq (Queue.to_seq q) in
            Queue.clear q; l)
          queues
      in
      Array.iter
        (List.iter (fun e -> Queue.add e queues.(home_of e)))
        backlog;
      unpark ()
    | _ -> ()
  in
  let finish i job result =
    match job with
    | Phase2 s -> busy.(s) <- false
    | Txn (entry, detached) -> (
      List.iter
        (fun s -> if not (List.mem s !detached) then busy.(s) <- false)
        (shards_of_entry store entry);
      if entry.writes = [] then
        (* Worker-mode read-only entry: its reads were counted (or
           failed) one by one inside its coroutine. *)
        ()
      else
      match result with
      | Ok () ->
        incr executed;
        incr completions;
        txn_counts.(i) <- txn_counts.(i) + 1;
        if entry.is_cross then incr cross
      | Error (Lvm.Lvm_error.Moved _) ->
        (* The handoff window: park until the cutover commits. *)
        incr moved;
        parked := entry :: !parked
      | Error (Lvm.Lvm_error.Shed _) -> incr shed
      | Error (Lvm.Lvm_error.Overloaded _)
        when cfg.Store.Config.admission = Store.Config.Queue
             && entry.tries < spec.retries ->
        entry.tries <- entry.tries + 1;
        incr requeued;
        Queue.add entry queues.(home_of entry)
      | Error (Lvm.Lvm_error.Overloaded _)
        when cfg.Store.Config.admission = Store.Config.Shed ->
        incr shed
      | Error _ ->
        (* Retry budget exhausted (or a validation error): a distinct
           failure, never folded into the deliberate-shed count. *)
        incr failed)
  in
  let live i =
    states.(i) <> Idle || phase2s.(i) <> [] || not (Queue.is_empty queues.(i))
  in
  (* Scheduling key: the clock of the CPU the task's next operation
     runs on (its own CPU while idle). *)
  let next_cpu i =
    match states.(i) with Running (_, cpu, _) -> cpu | Idle -> i
  in
  let launch i job outcome =
    match outcome with
    | Suspended (cpu, cont) -> states.(i) <- Running (job, cpu, cont)
    | Done r -> finish i job r
  in
  let step i =
    match states.(i) with
    | Running (job, _, cont) -> (
      (match job with
      | Txn (_, detached) -> detached_of_current := detached
      | Phase2 _ -> ());
      match Effect.Deep.continue cont () with
      | Suspended (cpu, cont') -> states.(i) <- Running (job, cpu, cont')
      | Done r ->
        states.(i) <- Idle;
        finish i job r)
    | Idle -> (
      match phase2s.(i) with
      | run :: rest ->
        (* A decided cross-shard transaction's commit on this shard:
           always runnable — the shard claim came with it. *)
        phase2s.(i) <- rest;
        launch i (Phase2 i)
          (start_coroutine (fun () ->
               run ~pace:yield;
               Ok ()))
      | [] -> (
        let entry = Queue.peek queues.(i) in
        match Store.blocked_by_move store entry.writes with
        | Some _ ->
          (* This transaction's keys are draining to a new owner.
             Park it now — claiming shards and running it would only
             bounce off the store's [Moved] refusal. *)
          ignore (Queue.pop queues.(i));
          incr moved;
          parked := entry :: !parked
        | None ->
          let parts = shards_of_entry store entry in
          if List.exists (fun s -> busy.(s)) parts then begin
            (* A shard this transaction needs is held (by a cross-shard
               transaction, or this is a cross-shard transaction and a
               participant is mid-commit): spin until it frees up. *)
            Kernel.set_cpu k i;
            Kernel.compute k blocked_spin_cycles
          end
          else begin
            ignore (Queue.pop queues.(i));
            List.iter (fun s -> busy.(s) <- true) parts;
            let detached = ref [] in
            detached_of_current := detached;
            launch i
              (Txn (entry, detached))
              (start_coroutine (fun () ->
                   if entry.writes = [] then begin
                     (* Worker-mode read: scheduled like a transaction
                        and served by the owning shard's worker, so the
                        per-request application compute lands on the
                        shard CPU — the baseline the snapshot readers
                        are measured against. *)
                     List.iter
                       (fun key ->
                         let s = Store.shard_of_key store key in
                         yield ~cpu:s;
                         Kernel.set_cpu k s;
                         Kernel.compute k cfg.Store.Config.compute;
                         match Store.read store key with
                         | Ok _ -> incr reads_done
                         | Error _ -> incr failed)
                       entry.reads;
                     Ok ()
                   end
                   else Store.exec store ~pace:yield ~detach ~writes:entry.writes))
          end))
  in
  (* Lowest clock first; on ties an in-flight transaction beats an idle
     worker, and then the lowest index wins. The in-flight preference is
     load-bearing: a worker blocked on shard admission spins on the very
     CPU a parked cross-shard transaction is keyed on (the coordinator),
     so their keys stay tied forever — the spinner must lose the tie or
     the transaction holding the shard never runs again. *)
  let better i best =
    let ki = Kernel.cpu_time k ~cpu:(next_cpu i) in
    let kb = Kernel.cpu_time k ~cpu:(next_cpu best) in
    ki < kb
    || ki = kb
       && (match (states.(i), states.(best)) with
          | Running _, Idle -> true
          | _ -> false)
  in
  let rec loop stalled =
    transfer_arrivals ();
    maybe_advise ();
    drive_move ();
    drain_reads ~final:false;
    let best = ref (-1) in
    for i = 0 to shards - 1 do
      if live i && (!best < 0 || better i !best) then best := i
    done;
    if !best >= 0 then begin
      step !best;
      loop 0
    end
    else if !next_arrival < n_entries then begin
      (* Open-loop idle gap: nothing queued, nothing in flight — spin
         the next arrival's home CPU forward to its arrival time. *)
      let e = entries.(!next_arrival) in
      let h = home_of e in
      Kernel.set_cpu k h;
      let now = Kernel.cpu_time k ~cpu:h in
      if e.arrive > now then Kernel.compute k (e.arrive - now)
      else begin
        (* Another CPU's clock already covers the arrival. *)
        enqueue e;
        incr next_arrival
      end;
      loop 0
    end
    else if !stage <> Mv_none then begin
      (* Only the move is left; [drive_move] at the loop top advances
         it one step per round. A copy that cannot progress with the
         whole system idle never will. *)
      if stalled > 10_000 then
        failwith "Workload.run: shard move cannot make progress";
      loop (stalled + 1)
    end
    else if !parked <> [] then begin
      (* Defensive: parked entries with no move in flight (the move
         completed between checks). *)
      unpark ();
      loop 0
    end
    else ()
  in
  loop 0;
  Kernel.set_cpu k 0;
  Store.flush store;
  (* Whatever reads the wall-clock throttle held back drain now, on the
     reader clocks alone — the writes are done. *)
  drain_reads ~final:true;
  Array.iteri
    (fun r s ->
      match s with
      | Some s ->
        Store.Snapshot.release s;
        reader_snap.(r) <- None
      | None -> ())
    reader_snap;
  let max_reader = Array.fold_left max wall0 reader_clock in
  let wall = max (Kernel.max_time k) max_reader - wall0 in
  { executed = !executed;
    reads = !reads_done;
    cross = !cross;
    shed = !shed;
    failed = !failed;
    requeued = !requeued;
    moved = !moved;
    dropped = !dropped;
    splits = !splits;
    merges = !merges;
    wall_cycles = wall;
    cycles_per_txn = float_of_int wall /. float_of_int (max 1 !executed);
    per_shard =
      Array.init shards (fun i ->
          { txns = txn_counts.(i);
            cycles = Kernel.cpu_time k ~cpu:i - cpu0.(i) }) }
