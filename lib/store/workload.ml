open Lvm_vm

type spec = {
  txns : int;
  cross_pct : int;
  writes_per_txn : int;
  seed : int;
  retries : int;
}

let default =
  { txns = 400; cross_pct = 20; writes_per_txn = 4; seed = 7; retries = 2 }

type shard_stat = { txns : int; cycles : int }

type result = {
  executed : int;
  cross : int;
  shed : int;
  requeued : int;
  wall_cycles : int;
  cycles_per_txn : float;
  per_shard : shard_stat array;
}

type entry = {
  writes : (int * int) list;
  is_cross : bool;
  mutable tries : int;
}

(* Keys living on shard [s]: s, s + shards, s + 2*shards, ... *)
let slot_count ~keys ~shards s = (keys - s + shards - 1) / shards

let key_on ~keys ~shards rng s =
  s + (shards * Lvm_fault.Splitmix.int rng ~bound:(slot_count ~keys ~shards s))

let generate store spec =
  let cfg = Store.config store in
  let shards = cfg.Store.Config.shards in
  let keys = cfg.Store.Config.keys in
  let rng = Lvm_fault.Splitmix.create ~seed:spec.seed in
  let queues = Array.init shards (fun _ -> Queue.create ()) in
  for _ = 1 to spec.txns do
    let cross =
      shards > 1 && Lvm_fault.Splitmix.int rng ~bound:100 < spec.cross_pct
    in
    let value () = Lvm_fault.Splitmix.int rng ~bound:0x3FFFFFFF in
    if cross then begin
      let a = Lvm_fault.Splitmix.int rng ~bound:shards in
      let b = (a + 1 + Lvm_fault.Splitmix.int rng ~bound:(shards - 1))
              mod shards in
      let half = max 1 (spec.writes_per_txn / 2) in
      let writes =
        List.init half (fun _ -> (key_on ~keys ~shards rng a, value ()))
        @ List.init
            (max 1 (spec.writes_per_txn - half))
            (fun _ -> (key_on ~keys ~shards rng b, value ()))
      in
      Queue.add
        { writes; is_cross = true; tries = 0 }
        queues.(min a b)
    end
    else begin
      let s = Lvm_fault.Splitmix.int rng ~bound:shards in
      let writes =
        List.init
          (max 1 spec.writes_per_txn)
          (fun _ -> (key_on ~keys ~shards rng s, value ()))
      in
      Queue.add { writes; is_cross = false; tries = 0 } queues.(s)
    end
  done;
  queues

(* {1 The scheduler}

   One coroutine per home shard, suspended at [Store.exec]'s pace
   points via an effect handler. Every scheduler step resumes the
   coroutine whose next operation runs on the lowest-clock CPU, so the
   shared bus sees accesses in timestamp order — at whole-transaction
   granularity (the old round-robin driver) the tens-of-kilocycle
   commit charge of the leading CPU lands on the bus cursor first and
   every other CPU's next access is billed the skew as phantom
   contention, which erases the scaling shards buy. *)

type _ Effect.t += Yield : int -> unit Effect.t
(** Performed by the store's [pace ~cpu] hook: suspend this transaction;
    its next operation runs on CPU [cpu]. *)

type outcome =
  | Suspended of int * (unit, outcome) Effect.Deep.continuation
  | Done of (unit, Store.error) Stdlib.result

(* What an in-flight coroutine is doing: a whole transaction (carrying
   the shards whose claim it handed to detached phase-2 items — those
   are released by the phase-2 item, not by the transaction), or the
   detached phase-2 tail of a cross-shard transaction (it holds the
   claim on one participant shard until it completes). *)
type job = Txn of entry * int list ref | Phase2 of int

type task_state =
  | Idle
  | Running of job * int * (unit, outcome) Effect.Deep.continuation

let yield ~cpu = Effect.perform (Yield cpu)

(* Start a unit of work as a coroutine: runs until the first pace point
   (or to completion if it never paces). *)
let start_coroutine f =
  Effect.Deep.match_with f ()
    { Effect.Deep.retc = (fun r -> Done r);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield cpu ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                Suspended (cpu, k))
          | _ -> None) }

let shards_of_entry ~shards entry =
  List.sort_uniq compare (List.map (fun (key, _) -> key mod shards) entry.writes)

(* What a shard CPU burns per scheduler step while its next transaction
   waits for a shard a cross-shard transaction holds — 2PC blocking,
   priced as a busy-wait. *)
let blocked_spin_cycles = 200

let run store spec =
  let k = Store.kernel store in
  let cfg = Store.config store in
  let shards = cfg.Store.Config.shards in
  let queues = generate store spec in
  let executed = ref 0 and cross = ref 0 in
  let shed = ref 0 and requeued = ref 0 in
  let txn_counts = Array.make shards 0 in
  let cpu0 = Array.init shards (fun i -> Kernel.cpu_time k ~cpu:i) in
  let wall0 = Kernel.max_time k in
  let states = Array.make shards Idle in
  (* A shard with a transaction in flight: in-flight transactions must
     never share a shard (two open RLVM transactions on one instance). *)
  let busy = Array.make shards false in
  (* Detached phase-2 work, queued for the participant shard's worker
     (at most one per shard — the shard is claimed throughout). *)
  let phase2s = Array.make shards [] in
  (* [detach] is called from inside [Store.exec] while its coroutine
     runs, so the scheduler installs the running transaction's detached
     set here before each resume. The set must be per-transaction, not
     per-shard: a completed phase-2 frees its shard for a new claimant,
     and the detaching transaction's own [finish] — which may come
     later — must still skip exactly the shards it handed off. *)
  let detached_of_current = ref (ref []) in
  let detach ~shard run =
    let d = !detached_of_current in
    d := shard :: !d;
    phase2s.(shard) <- phase2s.(shard) @ [ run ]
  in
  let finish i job result =
    match job with
    | Phase2 s -> busy.(s) <- false
    | Txn (entry, detached) -> (
      List.iter
        (fun s -> if not (List.mem s !detached) then busy.(s) <- false)
        (shards_of_entry ~shards entry);
      match result with
      | Ok () ->
        incr executed;
        txn_counts.(i) <- txn_counts.(i) + 1;
        if entry.is_cross then incr cross
      | Error (Store.Overloaded _)
        when cfg.Store.Config.admission = Store.Config.Queue
             && entry.tries < spec.retries ->
        entry.tries <- entry.tries + 1;
        incr requeued;
        Queue.add entry queues.(i)
      | Error _ -> incr shed)
  in
  let live i =
    states.(i) <> Idle
    || phase2s.(i) <> []
    || not (Queue.is_empty queues.(i))
  in
  (* Scheduling key: the clock of the CPU the task's next operation
     runs on (its own CPU while idle). *)
  let next_cpu i = match states.(i) with
    | Running (_, cpu, _) -> cpu
    | Idle -> i
  in
  let launch i job outcome =
    match outcome with
    | Suspended (cpu, cont) -> states.(i) <- Running (job, cpu, cont)
    | Done r -> finish i job r
  in
  let step i =
    match states.(i) with
    | Running (job, _, cont) -> (
      (match job with
      | Txn (_, detached) -> detached_of_current := detached
      | Phase2 _ -> ());
      match Effect.Deep.continue cont () with
      | Suspended (cpu, cont') -> states.(i) <- Running (job, cpu, cont')
      | Done r ->
        states.(i) <- Idle;
        finish i job r)
    | Idle -> (
      match phase2s.(i) with
      | run :: rest ->
        (* A decided cross-shard transaction's commit on this shard:
           always runnable — the shard claim came with it. *)
        phase2s.(i) <- rest;
        launch i (Phase2 i)
          (start_coroutine (fun () -> run ~pace:yield; Ok ()))
      | [] ->
        let entry = Queue.peek queues.(i) in
        let parts = shards_of_entry ~shards entry in
        if List.exists (fun s -> busy.(s)) parts then begin
          (* A shard this transaction needs is held (by a cross-shard
             transaction, or this is a cross-shard transaction and a
             participant is mid-commit): spin until it frees up. *)
          Kernel.set_cpu k i;
          Kernel.compute k blocked_spin_cycles
        end
        else begin
          ignore (Queue.pop queues.(i));
          List.iter (fun s -> busy.(s) <- true) parts;
          let detached = ref [] in
          detached_of_current := detached;
          launch i (Txn (entry, detached))
            (start_coroutine (fun () ->
                 Store.exec store ~pace:yield ~detach ~writes:entry.writes))
        end)
  in
  (* Lowest clock first; on ties an in-flight transaction beats an idle
     worker, and then the lowest index wins. The in-flight preference is
     load-bearing: a worker blocked on shard admission spins on the very
     CPU a parked cross-shard transaction is keyed on (the coordinator),
     so their keys stay tied forever — the spinner must lose the tie or
     the transaction holding the shard never runs again. *)
  let better i best =
    let ki = Kernel.cpu_time k ~cpu:(next_cpu i) in
    let kb = Kernel.cpu_time k ~cpu:(next_cpu best) in
    ki < kb
    || ki = kb
       && (match (states.(i), states.(best)) with
          | Running _, Idle -> true
          | _ -> false)
  in
  let rec loop () =
    let best = ref (-1) in
    for i = 0 to shards - 1 do
      if live i && (!best < 0 || better i !best) then best := i
    done;
    if !best >= 0 then begin
      step !best;
      loop ()
    end
  in
  loop ();
  Kernel.set_cpu k 0;
  Store.flush store;
  let wall = Kernel.max_time k - wall0 in
  { executed = !executed;
    cross = !cross;
    shed = !shed;
    requeued = !requeued;
    wall_cycles = wall;
    cycles_per_txn = float_of_int wall /. float_of_int (max 1 !executed);
    per_shard =
      Array.init shards (fun i ->
          { txns = txn_counts.(i);
            cycles = Kernel.cpu_time k ~cpu:i - cpu0.(i) }) }
