(** A sharded, recoverable transactional store over RLVM.

    The keyspace is the dense integer range [0, keys); key [i] lives on
    shard [i mod shards], each shard an independent {!Lvm_rvm.Rlvm}
    instance with its own LVM log extent ring, RAM-disk write-ahead log
    and group-commit batcher. The machine boots one worker CPU per
    shard; a transaction's work is charged to the CPUs of the shards it
    touches, so disjoint transactions scale across shards.

    Transactions confined to one shard commit through that shard's WAL
    exactly as a plain RLVM transaction. Cross-shard transactions run a
    two-phase commit driven through the per-shard WALs plus a
    coordinator decision log (its own RAM disk): phase 1 opens a
    transaction on every participant and applies its writes; the
    decision point is the forced append of an intent record — the
    complete redo image of the transaction — to the coordinator log;
    phase 2 commits each participant and flushes its batcher, then a
    done marker retires the intent. The coordinator image holds one
    intent slot per shard, so several cross-shard transactions (on
    disjoint shard sets) may be between decision and retirement at
    once without clobbering each other's intents. Crash recovery
    ({!recover}) first recovers every shard, then scans every
    coordinator slot: each decided but not retired transaction is
    rolled forward by re-applying its intent writes as fresh committed
    transactions (absolute values, so the redo is idempotent); an
    intent that never became durable — torn or never appended — leaves
    every participant rolled back. Either way each transaction is
    all-or-nothing.

    Backpressure rides the typed {!Lvm_vm.Error.Log_exhausted} path: a
    transaction whose redo records cannot be made durable is cleanly
    aborted and reported as [Overloaded] instead of raising, so
    admission control (see {!Workload}) can shed or requeue it. *)

type t

(** Store configuration; override {!Config.default} with the
    functional-update syntax:

    {[
      let st = Store.create { Store.Config.default with shards = 4 }
    ]} *)
module Config : sig
  (** What to do with a transaction the log cannot absorb right now:
      drop it ([Shed]) or hand it back for retry ([Queue] — the
      workload driver requeues it with a retry budget). *)
  type admission = Shed | Queue

  type t = {
    shards : int;  (** Independent RLVM shards, one worker CPU each. *)
    keys : int;  (** Dense keyspace size; key [i] lives on shard
                     [i mod shards]. *)
    group : int;  (** Per-shard group-commit batch size. *)
    log_pages : int;  (** Per-shard LVM log provision, pages. *)
    max_log_pages : int option;
        (** Per-shard backpressure ceiling; [None] means
            [2 * log_pages]. *)
    admission : admission;
    max_txn_writes : int;
        (** Largest transaction accepted (bounds the coordinator's
            intent record). *)
    compute : int;
        (** Application compute cycles charged per transaction on the
            CPUs of the shards it touches — the work the shards
            parallelize. *)
    frames : int;  (** Physical memory frames for the machine. *)
    obs : Lvm_obs.Ctx.t option;
        (** Observability context to share (default: a fresh one). *)
  }

  val default : t
  (** [{ shards = 4; keys = 1024; group = 1; log_pages = 32;
        max_log_pages = None; admission = Queue; max_txn_writes = 32;
        compute = 400; frames = 4096; obs = None }]. *)
end

(** Why a transaction was not executed. *)
type error =
  | Overloaded of { shard : int }
      (** The shard's log could not make the transaction durable
          (typed [Log_exhausted] underneath); the transaction was
          cleanly aborted and may be retried. *)
  | Txn_too_large of { writes : int; limit : int }
  | Invalid_key of { key : int }

val to_error : error -> Lvm.Lvm_error.t
(** Inject into the unified error scheme of the result-typed APIs: the
    store's variants map onto {!Lvm.Lvm_error.t}'s constructors of the
    same names, so callers mixing the store with {!Lvm_fams} (or any
    [Lvm_error]-typed facility) match one type. *)

val error_to_string : error -> string
(** [to_error] composed with {!Lvm.Lvm_error.to_string} — same strings
    the per-module renderer always produced. *)

val create : Config.t -> t
(** Boot a machine with [Config.shards] CPUs and one RLVM shard per
    CPU, plus the coordinator decision log. Raises
    [Lvm_vm.Error.Lvm_error] ([Out_of_range]) on a non-positive shard,
    key or compute count, and [Log_capacity] if a shard's keyspace
    slice cannot fit its log provision. *)

val kernel : t -> Lvm_vm.Kernel.t
val config : t -> Config.t

val shard_of_key : t -> int -> int
(** [key mod shards]; raises nothing (validation happens in {!exec}). *)

val shard : t -> int -> Lvm_rvm.Rlvm.t
(** The shard's underlying RLVM instance (tests and the crash sweep). *)

val read : t -> int -> int
(** Committed-state read of one key, charged to its shard's CPU.
    Raises [Lvm_vm.Error.Lvm_error] ([Out_of_range]) if the key is
    outside [0, keys). *)

val exec :
  ?pace:(cpu:int -> unit) ->
  ?detach:(shard:int -> (pace:(cpu:int -> unit) -> unit) -> unit) ->
  t -> writes:(int * int) list -> (unit, error) result
(** Execute one transaction writing [(key, value)] pairs. All keys on
    one shard: a local RLVM transaction on that shard's CPU. Keys on
    several shards: a two-phase commit — the transaction is durable
    (all of it) once the coordinator intent is forced, and never
    partially. [Error] means the transaction left no trace.

    [pace ~cpu] is called between the transaction's operations (before
    each write, around each commit stage), with [cpu] the CPU the next
    operation will run on. The {!Workload} driver suspends the
    transaction there and yields to its scheduler, so concurrent
    transactions interleave at operation granularity — the grain the
    shared-bus timing model prices correctly — using [cpu]'s clock as
    the scheduling key. The store re-establishes its own CPU binding
    after every call, so [pace] may switch CPUs freely. Default: no-op.

    [detach ~shard f] hands a non-home participant's phase-2 commit to
    the driver once the decision is durable: [f ~pace] commits that
    participant's slice (and, on the last participant, retires the
    intent), pacing on [shard]'s CPU. A driver runs it as the shard
    worker's own work item so the home worker moves on immediately —
    presumed-commit 2PC with asynchronous acknowledgements. The shard
    stays claimed until [f] completes. Default: run [f] inline, which
    makes [exec] fully synchronous.

    Two in-flight transactions must never touch the same shard: a
    driver that paces concurrent transactions has to hold each one off
    until every shard it writes is free — including shards whose
    detached phase-2 is still running (see {!Workload}'s per-shard
    admission). *)

val flush : t -> unit
(** Force every shard's pending group-commit batch. *)

(** What {!recover} found. *)
type recovery = {
  shard_reports : Lvm_rvm.Ramdisk.recovery array;
  coordinator : Lvm_rvm.Ramdisk.recovery;
  redone : (int * int) list;
      (** [(gid, writes)] of every in-doubt cross-shard transaction
          that was rolled forward, in ascending gid order. *)
}

val recover : t -> recovery
(** Crash recovery: recover every shard from its WAL, then scan every
    slot of the coordinator decision log and roll each
    decided-but-unretired cross-shard transaction forward (ascending
    gid order). Idempotent. *)

val recovery_to_string : recovery -> string
(** Deterministic one-line summary (crash-sweep traces). *)
