(** A sharded, recoverable transactional store over RLVM.

    The keyspace is the dense integer range [0, keys); key [i] hashes
    to bucket [i mod buckets] (where [buckets = shards *
    buckets_per_shard]) and a routing table maps each bucket to its
    owning shard — initially [bucket mod shards], which makes the
    initial placement exactly the classic [key mod shards]. Each shard
    is an independent {!Lvm_rvm.Rlvm} instance with its own LVM log
    extent ring, RAM-disk write-ahead log and group-commit batcher,
    spanning the whole keyspace so a key's segment offset never depends
    on its owner. The machine boots one worker CPU per shard; a
    transaction's work is charged to the CPUs of the shards it touches,
    so disjoint transactions scale across shards.

    Transactions confined to one shard commit through that shard's WAL
    exactly as a plain RLVM transaction. Cross-shard transactions run a
    two-phase commit driven through the per-shard WALs plus a
    coordinator decision log (its own RAM disk): phase 1 opens a
    transaction on every participant and applies its writes; the
    decision point is the forced append of an intent record — the
    complete redo image of the transaction — to the coordinator log;
    phase 2 commits each participant and flushes its batcher, then a
    done marker retires the intent. The coordinator image holds one
    intent slot per shard, so several cross-shard transactions (on
    disjoint shard sets) may be between decision and retirement at
    once without clobbering each other's intents. Crash recovery
    ({!recover}) first recovers every shard, then scans every
    coordinator slot: each decided but not retired transaction is
    rolled forward by re-applying its intent writes as fresh committed
    transactions (absolute values, so the redo is idempotent); an
    intent that never became durable — torn or never appended — leaves
    every participant rolled back. Either way each transaction is
    all-or-nothing.

    {2 Hot-shard survival}

    Three mechanisms added for skewed and bursty workloads:

    - {b Shard moves} ({!move_begin} .. {!move_retire}): hand a set of
      buckets from one shard to another through a crash-safe
      three-phase protocol — a forced split intent, an incremental
      resumable copy (writes to moved keys keep landing on the old
      owner and are tracked in a dirty set), a drain that re-copies the
      dirty set while new moved-key transactions are refused with the
      typed [Moved] result, and finally one forced coordinator
      transaction that atomically flips the moved buckets' route words.
      A crash before the cutover recovers by abandoning the move; a
      crash after it recovers to the new route. Either way every key
      has exactly one owner.
    - {b Admission control}: an optional per-shard token bucket
      ([admission_rate] tokens per thousand shard-CPU cycles, burst
      [admission_burst]) gates the front door and sheds with the typed
      [Shed] result before overload can wedge the log-room
      backpressure path.
    - {b Load signals}: per-bucket committed-write counters
      ({!bucket_write_counts}) and per-shard commit-latency EWMAs
      ({!commit_latency_ewma}) feed the {!Splitter}'s split/merge
      policy and the driver's load-aware routing.

    Backpressure rides the typed {!Lvm_vm.Error.Log_exhausted} path: a
    transaction whose redo records cannot be made durable is cleanly
    aborted and reported as [Overloaded] instead of raising, so
    admission control (see {!Workload}) can shed or requeue it. *)

type t

(** Store configuration; override {!Config.default} with the
    functional-update syntax:

    {[
      let st = Store.create { Store.Config.default with shards = 4 }
    ]} *)
module Config : sig
  (** What to do with a transaction the log cannot absorb right now:
      drop it ([Shed]) or hand it back for retry ([Queue] — the
      workload driver requeues it with a retry budget). *)
  type admission = Shed | Queue

  type t = {
    shards : int;  (** Independent RLVM shards, one worker CPU each. *)
    keys : int;  (** Dense keyspace size; key [i] hashes to bucket
                     [i mod buckets]. *)
    group : int;  (** Per-shard group-commit batch size. *)
    log_pages : int;  (** Per-shard LVM log provision, pages. *)
    max_log_pages : int option;
        (** Per-shard backpressure ceiling; [None] means
            [2 * log_pages]. *)
    admission : admission;
    max_txn_writes : int;
        (** Largest transaction accepted (bounds the coordinator's
            intent record). *)
    compute : int;
        (** Application compute cycles charged per transaction on the
            CPUs of the shards it touches — the work the shards
            parallelize. *)
    frames : int;  (** Physical memory frames for the machine. *)
    buckets_per_shard : int;
        (** Routing granularity: the keyspace hashes into
            [shards * buckets_per_shard] buckets, the unit a shard
            move hands over. *)
    admission_rate : float;
        (** Token-bucket admission: tokens granted per thousand
            shard-CPU cycles. [0.] (the default) disables the gate. *)
    admission_burst : int;
        (** Token-bucket capacity (and initial fill). *)
    mvcc_history : int;
        (** Version history retained behind the MVCC cut for {!Snapshot.as_of}
            time travel, in commit timestamps (live snapshots always pin
            their own history). *)
    obs : Lvm_obs.Ctx.t option;
        (** Observability context to share (default: a fresh one). *)
  }

  val default : t
  (** [{ shards = 4; keys = 1024; group = 1; log_pages = 32;
        max_log_pages = None; admission = Queue; max_txn_writes = 32;
        compute = 400; frames = 4096; buckets_per_shard = 8;
        admission_rate = 0.; admission_burst = 8; mvcc_history = 1024;
        obs = None }]. *)
end

(** Why a transaction or read was not executed: the store speaks
    {!Lvm.Lvm_error.t} end to end. [Overloaded] means the shard's log
    could not make the transaction durable (typed [Log_exhausted]
    underneath, cleanly aborted, retryable); [Shed] is the token-bucket
    front door; [Moved] is a draining shard handoff (requeue);
    [Snapshot_unavailable] is an MVCC read outside the retained
    version-history window. The per-module [error] type and its
    [to_error] injection are gone — callers match [Lvm.Lvm_error.t]
    directly. *)

val error_to_string : Lvm.Lvm_error.t -> string
[@@deprecated "use Lvm.Lvm_error.to_string"]
(** Alias of {!Lvm.Lvm_error.to_string}, kept for one PR so existing
    renderer callsites keep compiling. *)

val create : Config.t -> t
(** Boot a machine with [Config.shards] CPUs and one RLVM shard per
    CPU, plus the coordinator decision log. Raises
    [Lvm_vm.Error.Lvm_error] ([Out_of_range]) on a non-positive shard,
    key or compute count, and [Log_capacity] if the keyspace cannot
    fit a shard's log provision. *)

val kernel : t -> Lvm_vm.Kernel.t
val config : t -> Config.t

(** {2 Routing} *)

val buckets : t -> int
(** [shards * buckets_per_shard]. *)

val bucket_of_key : t -> int -> int
(** [key mod buckets]; raises nothing (validation happens in {!exec}). *)

val shard_of_key : t -> int -> int
(** The key's current owner under the routing table. Initially
    [key mod shards]; shard moves change it. *)

val owner_of_bucket : t -> int -> int

val default_owner : t -> int -> int
(** [bucket mod shards] — the owner before any moves. *)

val route_table : t -> int array
(** A copy of the bucket->shard routing table. *)

val shard_buckets : t -> int -> int list
(** The buckets currently routed to a shard, ascending. *)

val shard : t -> int -> Lvm_rvm.Rlvm.t
(** The shard's underlying RLVM instance (tests and the crash sweep). *)

val read : t -> int -> (int, Lvm.Lvm_error.t) result
(** Read one key's committed value. With no MVCC view attached (the
    default), this is the worker-path read: charged to the owning
    shard's CPU, contending with its commit path. Once a view is
    attached (first {!Snapshot.acquire}), it becomes a latest-snapshot
    read — acquire at the current cut, read, release — served without
    touching a shard worker. [Error (Invalid_key _)] outside
    [0, keys). *)

val read_exn : t -> int -> int
[@@deprecated "use read (result-typed) or Snapshot.acquire + Snapshot.read"]
(** The old bare read surface, kept for one PR: {!read} with the
    raise-on-bad-key contract ([Lvm_vm.Error.Lvm_error]
    [Out_of_range]). *)

(** {2 Load signals} *)

val bucket_write_counts : t -> int array
(** Committed writes per bucket since creation (or the last
    {!recover}) — the splitter's skew signal. *)

val commit_latency_ewma : t -> int -> float
(** The shard's commit-latency EWMA in CPU cycles (1/8 sample
    weight). *)

(** {2 Shard moves (split / merge)} *)

val move_begin : t -> from_:int -> to_:int -> int list -> unit
(** Start moving the listed buckets (all currently owned by [from_])
    to [to_]: forces the split intent and enters the copy phase. At
    most one move may be active. Raises [Out_of_range] on an active
    move, bad shards, or a bucket not owned by [from_]. *)

val move_copy_step : t -> batch:int -> int
(** Copy up to [batch] moved keys to the target as one committed
    target-shard transaction, advancing the resumable cursor; returns
    the number of moved keys still uncopied. Raises [Log_exhausted]
    (after aborting cleanly, cursor unmoved) if the target's log
    cannot absorb the batch — back off and retry. *)

val move_enter_drain : t -> unit
(** Stop accepting transactions on moved keys (they get [Moved] and
    are requeued by the driver) so the dirty set stops growing. *)

val move_drain : t -> unit
(** Finish the copy: the uncopied tail plus every dirtied key,
    re-read from the source. After this the target holds every moved
    key's latest committed value. *)

val move_cutover : t -> unit
(** The decision point: one forced coordinator transaction atomically
    rewrites the moved buckets' route words and advances the intent
    state. Consults the {!Lvm_fault.Fault.Split_cutover} fault site
    just before forcing — the canonical split-protocol crash window.
    Raises [Out_of_range] if the copy is incomplete. *)

val move_retire : t -> unit
(** Clear the (already durable) cutover intent; unforced — a lost
    clear just makes recovery re-retire. Ends the move. *)

val move_abort : t -> unit
(** Cancel a move before its cutover: ownership never changed, the
    target's partial copy is unreachable garbage. *)

val move : t -> from_:int -> to_:int -> ?batch:int -> int list -> unit
(** The whole lifecycle in one synchronous call (tests, lvmctl):
    begin, copy to completion, drain, cut over, retire. *)

val active_move : t -> (int * int) option
(** [(from_, to_)] of the move in progress, if any. *)

val move_draining : t -> bool

val move_remaining : t -> int
(** Moved keys the copy cursor has not reached yet (0 if no move). *)

val move_dirty_count : t -> int
(** Moved keys written since the copy started and not yet re-copied. *)

val blocked_by_move : t -> (int * int) list -> (int * int) option
(** [(key, new_owner)] of the first write a draining move would refuse
    with [Moved], or [None]. Drivers consult this before claiming
    shards so a queued transaction that hit the handoff window
    requeues instead of spinning. *)

(** {2 Execution} *)

val exec :
  ?pace:(cpu:int -> unit) ->
  ?detach:(shard:int -> (pace:(cpu:int -> unit) -> unit) -> unit) ->
  t -> writes:(int * int) list -> (unit, Lvm.Lvm_error.t) result
(** Execute one transaction writing [(key, value)] pairs. All keys on
    one shard: a local RLVM transaction on that shard's CPU. Keys on
    several shards: a two-phase commit — the transaction is durable
    (all of it) once the coordinator intent is forced, and never
    partially. [Error] means the transaction left no trace.

    [pace ~cpu] is called between the transaction's operations (before
    each write, around each commit stage), with [cpu] the CPU the next
    operation will run on. The {!Workload} driver suspends the
    transaction there and yields to its scheduler, so concurrent
    transactions interleave at operation granularity — the grain the
    shared-bus timing model prices correctly — using [cpu]'s clock as
    the scheduling key. The store re-establishes its own CPU binding
    after every call, so [pace] may switch CPUs freely. Default: no-op.

    [detach ~shard f] hands a non-home participant's phase-2 commit to
    the driver once the decision is durable: [f ~pace] commits that
    participant's slice (and, on the last participant, retires the
    intent), pacing on [shard]'s CPU. A driver runs it as the shard
    worker's own work item so the home worker moves on immediately —
    presumed-commit 2PC with asynchronous acknowledgements. The shard
    stays claimed until [f] completes. Default: run [f] inline, which
    makes [exec] fully synchronous.

    Two in-flight transactions must never touch the same shard: a
    driver that paces concurrent transactions has to hold each one off
    until every shard it writes is free — including shards whose
    detached phase-2 is still running (see {!Workload}'s per-shard
    admission). *)

val flush : t -> unit
(** Force every shard's pending group-commit batch. *)

(** {2 Snapshot reads (MVCC)}

    The redesigned read surface (see [docs/MVCC.md]): multi-version
    snapshots derived from the per-shard WALs by an {!Lvm_mvcc.View}
    that rides along with the store. Every committed transaction is
    stamped with a global commit timestamp (cross-shard transactions
    carry one timestamp on every participant); a snapshot is a
    GVT-style consistent cut — the minimum of the per-shard applied
    frontiers — so it always equals some committed prefix, with 2PC
    transactions wholly visible or wholly invisible. Reads on an
    acquired snapshot are lock-free and wait-free, served from any CPU
    without touching a shard worker, and remain valid across concurrent
    shard split/merge (snapshots pin pre-cutover routing). *)

val last_ts : t -> int
(** The most recently allocated commit timestamp (0 before any commit)
    — an upper bound for {!Snapshot.as_of}. *)

val mvcc_attached : t -> bool
(** Whether the MVCC view is attached (first {!Snapshot.acquire} does
    it; until then {!read} uses the worker path). *)

module Snapshot : sig
  type store = t

  type t
  (** An acquired snapshot: an immutable timestamp plus the routing in
      effect at that timestamp. *)

  val acquire : store -> (t, Lvm.Lvm_error.t) result
  (** Snapshot at the current consistent cut. The first call attaches
      the MVCC view (flushing the WAL batches); it requires quiescence —
      [Error (Snapshot_unavailable _)] if a cross-shard transaction is
      mid-2PC at attach time (later acquires never fail). Never blocks
      writers. *)

  val as_of : store -> ts:int -> (t, Lvm.Lvm_error.t) result
  (** Time-travel snapshot at exactly [ts], replayed from the retained
      version history ([Config.mvcc_history] timestamps behind the
      cut); pins the routing that was in effect at [ts].
      [Error (Snapshot_unavailable _)] outside the readable window. *)

  val read : t -> int -> (int, Lvm.Lvm_error.t) result
  (** Wait-free versioned read of one key. [Error (Invalid_key _)]
      outside [0, keys); [Error (Snapshot_unavailable _)] on a released
      or recovery-invalidated snapshot. *)

  val release : t -> unit
  (** Allow version history behind this snapshot to be pruned. *)

  val ts : t -> int
end

(** {2 Crash recovery} *)

(** What recovery did about an in-flight shard move. *)
type split_recovery =
  | Split_aborted of { from_ : int; to_ : int }
      (** The crash hit before the cutover became durable: the move is
          abandoned, the route unchanged. *)
  | Split_completed of { from_ : int; to_ : int }
      (** The cutover was durable: the new route is live; recovery
          just retired the intent. *)

(** What {!recover} found. *)
type recovery = {
  shard_reports : Lvm_rvm.Ramdisk.recovery array;
  coordinator : Lvm_rvm.Ramdisk.recovery;
  redone : (int * int) list;
      (** [(gid, writes)] of every in-doubt cross-shard transaction
          that was rolled forward, in ascending gid order. *)
  split : split_recovery option;
}

val recover : t -> recovery
(** Crash recovery: recover every shard from its WAL, resolve any
    in-flight shard move (abandon before cutover, retire after), load
    the durable routing table, then scan every slot of the coordinator
    decision log and roll each decided-but-unretired cross-shard
    transaction forward (ascending gid order) under that route.
    Idempotent. *)

val recovery_to_string : recovery -> string
(** Deterministic one-line summary (crash-sweep traces). *)
