(** Workload driver for the sharded store: closed- or open-loop,
    uniform or skewed, with optional dynamic shard splitting.

    Generates a seeded transaction mix, queues each transaction on its
    home shard, and drives one worker task per shard CPU with a
    deterministic clock-ordered scheduler, so disjoint shards make
    progress in parallel. Each in-flight transaction is an
    effect-handler coroutine suspended at {!Store.exec}'s [pace]
    points: every scheduler step runs one store operation on the CPU
    whose clock is lowest, so bus traffic arrives in timestamp order —
    the shared-bus model's contract — and measured contention is
    genuine. Per-shard admission keeps two transactions from ever
    sharing a shard: a worker whose next transaction needs a shard a
    cross-shard transaction is holding spins (a small compute charge —
    the 2PC blocking cost) until it frees up.

    A cross-shard transaction's detached phase-2 commits (see
    {!Store.exec}'s [detach]) are queued as high-priority work items on
    each participant shard's own worker: once the decision is durable
    the home worker moves on, and the participants apply the commit in
    parallel — the shard claim travels with the work item and is
    released when it completes.

    {2 Skew, bursts and splits}

    - [dist] picks the key distribution: [Uniform] (the classic
      seeded mix, unchanged draw-for-draw), [Zipfian] (every key drawn
      from an exact Zipf CDF over the ranks, mapped owner-major by
      {!clustered_key} so the hot ranks pile onto shard 0), or [Hot]
      (a fixed percentage of writes over a small clustered hot set).
    - [arrival] picks the loop: [Closed] (a worker starts the next
      transaction the moment the previous finishes) or [Open]
      (exponential inter-arrival gaps with periodic bursts; the driver
      releases arrivals by simulated clock and [queue_cap] drops
      arrivals whose home queue is full).
    - [split] enables the {!Splitter}: every [check_every] commits the
      driver asks for advice and, on a [Split]/[Merge], runs the
      store's move lifecycle incrementally between transactions —
      [batch]-key copy steps whenever both endpoint shards are free, a
      drain, then the atomic cutover. Transactions that hit a draining
      key are requeued (counted in [moved]) and re-routed under the
      new table once the cutover commits.

    A transaction the store reports [Overloaded] is requeued (admission
    [Queue], up to [retries] times) or dropped (admission [Shed]).
    Exhausting the retry budget counts in [failed] — never in [shed],
    which only counts deliberate drops (admission policy or the
    token-bucket gate's typed [Shed]). *)

(** An exact Zipf(theta) sampler over ranks [0, n): O(n) to build,
    O(log n) per sample, deterministic from the caller's
    {!Lvm_fault.Splitmix} stream. Rank 0 is the hottest. *)
module Zipf : sig
  type t

  val create : n:int -> theta:float -> t
  (** Raises [Out_of_range] on [n < 1] or [theta < 0]; [theta = 0] is
      the uniform distribution. *)

  val n : t -> int
  val theta : t -> float

  val pmf : t -> int -> float
  (** The exact probability of a rank — the theory curve property
      tests compare empirical frequencies against. *)

  val sample : t -> Lvm_fault.Splitmix.t -> int
end

val clustered_key : shards:int -> buckets_per_shard:int -> keys:int -> int -> int
(** Owner-major rank->key mapping: ranks [0, buckets_per_shard) land
    on distinct buckets of shard 0 (under the default route), the next
    batch on shard 1, and so on, wrapping round the keyspace — so a
    skewed rank distribution makes shard 0 hot while remaining
    splittable. A bijection of [0, keys) when
    [shards * buckets_per_shard] divides [keys]. *)

type dist =
  | Uniform
  | Zipfian of { theta : float }
  | Hot of { pct : int; hot_keys : int }
      (** [pct]% of writes drawn uniformly from the first [hot_keys]
          clustered ranks; the rest uniform over the keyspace. *)

type arrival =
  | Closed
  | Open of {
      mean_gap : int;  (** Mean exponential inter-arrival gap, cycles. *)
      burst_every : int;  (** Period, in arrivals, of the spikes. *)
      burst_len : int;  (** Arrivals per spike. *)
      burst_gap : int;  (** Mean gap inside a spike. *)
    }

type split_spec = {
  check_every : int;  (** Commits between {!Splitter.advise} calls. *)
  batch : int;  (** Keys per incremental copy step. *)
  max_moves : int;  (** Split/merge budget for the run. *)
  advisor : Splitter.Config.t;
      (** Thresholds for the {!Splitter} the driver builds — lower
          [imbalance] splits more eagerly, [merge_below = 0.] pins
          displaced buckets for the whole run. *)
}

val default_split : split_spec
(** [{ check_every = 32; batch = 32; max_moves = 8;
      advisor = Splitter.Config.default }]. *)

(** How read operations are served (see [docs/MVCC.md]):
    - [Worker] — a read is scheduled like a transaction: it claims its
      owning shard and the shard worker's CPU executes it. The
      pre-MVCC baseline.
    - [Snapshot] — reads drain through [readers] virtual reader tasks
      with their own clocks, each reading an MVCC snapshot acquired
      from the store's log-derived view: no shard CPU, no claim, no
      admission. Readers re-acquire every 64 reads and are throttled
      to the machine wall clock while writes are in flight, so the
      interleaving is honest. Requires nothing of the caller — the
      driver attaches the view on entry. *)
type read_mode = Worker | Snapshot

type spec = {
  txns : int;  (** Operations to generate (writes and reads). *)
  cross_pct : int;  (** Percentage touching two shards (0–100);
                        [Uniform] only. *)
  writes_per_txn : int;
  seed : int;  (** Splitmix seed; same seed, same run. *)
  retries : int;  (** Requeue budget per transaction (admission
                      [Queue]). *)
  dist : dist;
  arrival : arrival;
  queue_cap : int option;
      (** Open-loop front door: drop an arrival whose home queue
          already holds this many transactions. *)
  split : split_spec option;  (** [Some _] enables dynamic splitting. *)
  read_pct : int;
      (** Percentage of the [txns] operations that are single-key
          reads, drawn from [dist]. [0] (the default) generates the
          historical pure-write stream draw-for-draw. *)
  read_mode : read_mode;  (** How those reads are served. *)
  readers : int;  (** Virtual reader tasks ([Snapshot] mode only). *)
}

val default : spec
(** [{ txns = 400; cross_pct = 20; writes_per_txn = 4; seed = 7;
      retries = 2; dist = Uniform; arrival = Closed; queue_cap = None;
      split = None; read_pct = 0; read_mode = Worker; readers = 1 }]
    — exactly the pre-split driver's behavior. *)

type shard_stat = {
  txns : int;  (** Transactions this shard was home for. *)
  cycles : int;  (** Cycles its CPU spent over the run. *)
}

type result = {
  executed : int;  (** Write transactions committed. *)
  reads : int;  (** Reads served (either mode). *)
  cross : int;
  shed : int;
      (** Deliberate drops: admission-[Shed] overload plus token-bucket
          [Shed] refusals. *)
  failed : int;
      (** Transactions whose retry budget ran out (admission [Queue]) —
          reported distinctly, never as success or shed. *)
  requeued : int;
  moved : int;
      (** Requeues caused by a shard move's handoff window ([Moved]). *)
  dropped : int;  (** Open-loop arrivals dropped by [queue_cap]. *)
  splits : int;  (** Shard splits the driver completed. *)
  merges : int;  (** Merges (displaced buckets sent home) completed. *)
  wall_cycles : int;  (** Wall-clock cycles of the whole run: the
                          latest clock delta over shard CPUs and
                          virtual readers. *)
  cycles_per_txn : float;  (** [wall_cycles / executed] — the
                               throughput figure shards improve. *)
  per_shard : shard_stat array;
}

val run : Store.t -> spec -> result
(** Generate, enqueue and execute the whole mix; deterministic for a
    given store configuration and spec. *)
