(** Closed-loop workload driver for the sharded store.

    Generates a seeded transaction mix (single-shard and cross-shard),
    queues each transaction on its home shard, and drives one worker
    task per shard CPU with a deterministic clock-ordered scheduler, so
    disjoint shards make progress in parallel. Each in-flight
    transaction is an effect-handler coroutine suspended at
    {!Store.exec}'s [pace] points: every scheduler step runs one store
    operation on the CPU whose clock is lowest, so bus traffic arrives
    in timestamp order — the shared-bus model's contract — and measured
    contention is genuine. Per-shard admission keeps two transactions
    from ever sharing a shard: a worker whose next transaction needs a
    shard a cross-shard transaction is holding spins (a small compute
    charge — the 2PC blocking cost) until it frees up.

    A cross-shard transaction's detached phase-2 commits (see
    {!Store.exec}'s [detach]) are queued as high-priority work items on
    each participant shard's own worker: once the decision is durable
    the home worker moves on, and the participants apply the commit in
    parallel — the shard claim travels with the work item and is
    released when it completes.

    A transaction the store reports [Overloaded] is requeued (admission
    [Queue], up to [retries] times) or dropped (admission [Shed]);
    either way the run completes and reports what was shed. *)

type spec = {
  txns : int;  (** Transactions to generate. *)
  cross_pct : int;  (** Percentage touching two shards (0–100). *)
  writes_per_txn : int;
  seed : int;  (** Splitmix seed; same seed, same run. *)
  retries : int;  (** Requeue budget per transaction (admission
                      [Queue]). *)
}

val default : spec
(** [{ txns = 400; cross_pct = 20; writes_per_txn = 4; seed = 7;
      retries = 2 }]. *)

type shard_stat = {
  txns : int;  (** Transactions this shard was home for. *)
  cycles : int;  (** Cycles its CPU spent over the run. *)
}

type result = {
  executed : int;
  cross : int;
  shed : int;
  requeued : int;
  wall_cycles : int;  (** Wall-clock cycles of the whole run: the
                          latest CPU clock delta. *)
  cycles_per_txn : float;  (** [wall_cycles / executed] — the
                               throughput figure shards improve. *)
  per_shard : shard_stat array;
}

val run : Store.t -> spec -> result
(** Generate, enqueue and execute the whole mix; deterministic for a
    given store configuration and spec. *)
