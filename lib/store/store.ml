open Lvm_vm
module Rlvm = Lvm_rvm.Rlvm
module Ramdisk = Lvm_rvm.Ramdisk

module Config = struct
  type admission = Shed | Queue

  type t = {
    shards : int;
    keys : int;
    group : int;
    log_pages : int;
    max_log_pages : int option;
    admission : admission;
    max_txn_writes : int;
    compute : int;
    frames : int;
    obs : Lvm_obs.Ctx.t option;
  }

  let default =
    { shards = 4; keys = 1024; group = 1; log_pages = 32;
      max_log_pages = None; admission = Queue; max_txn_writes = 32;
      compute = 400; frames = 4096; obs = None }
end

type error =
  | Overloaded of { shard : int }
  | Txn_too_large of { writes : int; limit : int }
  | Invalid_key of { key : int }

let to_error : error -> Lvm.Lvm_error.t = function
  | Overloaded { shard } -> Lvm.Lvm_error.Overloaded { shard }
  | Txn_too_large { writes; limit } ->
    Lvm.Lvm_error.Txn_too_large { writes; limit }
  | Invalid_key { key } -> Lvm.Lvm_error.Invalid_key { key }

let error_to_string e = Lvm.Lvm_error.to_string (to_error e)

type t = {
  k : Kernel.t;
  config : Config.t;
  shards : Rlvm.t array;
  coord : Ramdisk.t;
  (* One intent slot per shard in the coordinator image, [slot_busy.(i)]
     while slot [i] holds a decided-but-unretired intent. Every
     transaction in its decide->retire window holds a claim on at least
     one shard (each non-home participant stays claimed until its
     phase-2 commit completes, and the last participant retires), so at
     most [shards] transactions are ever in that window at once. *)
  slot_busy : bool array;
  txns_c : Lvm_obs.Counter.counter;
  cross_c : Lvm_obs.Counter.counter;
  redo_c : Lvm_obs.Counter.counter;
  overloaded_c : Lvm_obs.Counter.counter;
  shard_txns : Lvm_obs.Counter.counter array;
  commit_hist : Lvm_obs.Histogram.t;
  mutable next_gid : int;
}

let range op what value =
  Error.raise_ (Error.Out_of_range { op; what; value })

(* Coordinator intent slot: word 0 = state (1 decided, 0 retired),
   word 1 = gid, word 2 = write count, then (key, value) word pairs.
   The coordinator image holds one such slot per shard, so concurrent
   cross-shard transactions in their decide->retire windows keep
   disjoint intents — a decide never overwrites a live sibling, and a
   retire zeroes only its own slot's state word. One Data record
   carries a whole slot, so each intent is durable atomically (the WAL
   checksum truncates a torn prefix). *)
let intent_off_state = 0
let intent_off_gid = 4
let intent_off_count = 8
let intent_off_pairs = 12
let intent_size max_writes = intent_off_pairs + (8 * max_writes)

let set32 b off v = Bytes.set_int32_le b off (Int32.of_int (v land 0xFFFFFFFF))
let get32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let create (config : Config.t) =
  if config.Config.shards < 1 then
    range "Store.create" "shards" config.Config.shards;
  if config.Config.keys < config.Config.shards then
    range "Store.create" "keys" config.Config.keys;
  if config.Config.max_txn_writes < 1 then
    range "Store.create" "max_txn_writes" config.Config.max_txn_writes;
  if config.Config.compute < 0 then
    range "Store.create" "compute" config.Config.compute;
  (* Validate the whole config up front with typed errors: without these
     a nonsensical group/log_pages/frames surfaced as a late crash deep
     inside shard or kernel creation (or not until first use). *)
  if config.Config.group < 1 then
    range "Store.create" "group" config.Config.group;
  if config.Config.log_pages < 1 then
    range "Store.create" "log_pages" config.Config.log_pages;
  (match config.Config.max_log_pages with
  | Some m when m < config.Config.log_pages ->
    range "Store.create" "max_log_pages" m
  | Some _ | None -> ());
  if config.Config.frames < 1 then
    range "Store.create" "frames" config.Config.frames;
  let k =
    Lvm.Api.create
      { Lvm.Api.Config.default with
        cpus = config.Config.shards;
        frames = config.Config.frames;
        obs = config.Config.obs }
  in
  let slots =
    (config.Config.keys + config.Config.shards - 1) / config.Config.shards
  in
  let shards =
    Array.init config.Config.shards (fun s ->
        Kernel.set_cpu k s;
        let sp = Kernel.create_space k in
        Rlvm.make
          { Rlvm.Config.log_pages = config.Config.log_pages;
            max_log_pages = config.Config.max_log_pages;
            group = config.Config.group }
          k sp ~size:(slots * Lvm_machine.Addr.word_size))
  in
  Kernel.set_cpu k 0;
  let coord =
    Ramdisk.create k
      ~size:(config.Config.shards * intent_size config.Config.max_txn_writes)
  in
  let ctx = Kernel.obs k in
  { k; config; shards; coord;
    slot_busy = Array.make config.Config.shards false;
    txns_c = Lvm_obs.Ctx.counter ctx "store.txns";
    cross_c = Lvm_obs.Ctx.counter ctx "store.txns_cross";
    redo_c = Lvm_obs.Ctx.counter ctx "store.redo";
    overloaded_c = Lvm_obs.Ctx.counter ctx "store.overloaded";
    shard_txns =
      Array.init config.Config.shards (fun s ->
          Lvm_obs.Ctx.counter ctx (Printf.sprintf "store.shard%d.txns" s));
    commit_hist =
      Lvm_obs.Ctx.histogram ctx ~name:"store.commit_cycles"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:24);
    next_gid = 1 }

let kernel t = t.k
let config t = t.config
let shard_of_key t key = key mod t.config.Config.shards
let shard t s = t.shards.(s)
let off_of_key t key = key / t.config.Config.shards * Lvm_machine.Addr.word_size

let read t key =
  if key < 0 || key >= t.config.Config.keys then range "Store.read" "key" key;
  let s = shard_of_key t key in
  Kernel.set_cpu t.k s;
  Rlvm.read_word t.shards.(s) ~off:(off_of_key t key)

(* Group writes by owning shard, ascending shard order, original write
   order preserved within a shard (last write to a key wins). *)
let partition t writes =
  let by = Array.make t.config.Config.shards [] in
  List.iter
    (fun (key, v) ->
      let s = shard_of_key t key in
      by.(s) <- (key, v land 0xFFFFFFFF) :: by.(s))
    writes;
  Array.to_list (Array.mapi (fun s ws -> (s, List.rev ws)) by)
  |> List.filter (fun (_, ws) -> ws <> [])

let no_pace ~cpu:_ = ()

let apply_writes ?(sync = fun () -> ()) t r ws =
  List.iter
    (fun (key, v) ->
      sync ();
      Rlvm.write_word r ~off:(off_of_key t key) v)
    ws

(* {1 Single-shard commit} *)

let exec_local ~pace t s ws =
  (* Yield to the driver's scheduler between operations, then take the
     shard's CPU back (the scheduler runs other transactions' operations
     on other CPUs while we are suspended). *)
  let sync () =
    pace ~cpu:s;
    Kernel.set_cpu t.k s
  in
  sync ();
  let r = t.shards.(s) in
  match
    Kernel.compute t.k t.config.Config.compute;
    sync ();
    Rlvm.begin_txn r;
    apply_writes ~sync t r ws;
    sync ();
    Rlvm.commit ~pace:sync r
  with
  | () -> Ok ()
  | exception Error.Lvm_error (Error.Log_exhausted _) ->
    (* Backpressure: the shard's log cannot make this transaction
       durable. Abort cleanly and report it as admission-control
       pressure rather than failing. *)
    if Rlvm.in_txn r then Rlvm.abort r;
    Error (Overloaded { shard = s })

(* {1 Two-phase commit} *)

let intent_bytes gid pairs =
  let n = List.length pairs in
  let b = Bytes.make (intent_size n) '\000' in
  set32 b intent_off_state 1;
  set32 b intent_off_gid gid;
  set32 b intent_off_count n;
  List.iteri
    (fun i (key, v) ->
      set32 b (intent_off_pairs + (8 * i)) key;
      set32 b (intent_off_pairs + (8 * i) + 4) v)
    pairs;
  b

let slot_off t slot = slot * intent_size t.config.Config.max_txn_writes

(* Claim a free intent slot. The shard-claim discipline bounds
   concurrent decide->retire windows by the shard count (see
   [slot_busy]), so a driver that respects it never exhausts the
   slots. *)
let alloc_slot t =
  let n = Array.length t.slot_busy in
  let rec go i =
    if i >= n then range "Store.exec" "in-flight cross-shard txns" n
    else if t.slot_busy.(i) then go (i + 1)
    else begin
      t.slot_busy.(i) <- true;
      i
    end
  in
  go 0

(* The decision point: once this force returns, the transaction is
   committed in full — recovery rolls it forward from the intent. The
   coordinator log is a shared disk, not a CPU-pinned service: the
   decision runs on whatever CPU is driving the transaction (its home
   shard's worker; CPU 0 during recovery). *)
let decide t gid ~slot pairs =
  Ramdisk.wal_append t.coord
    (Ramdisk.Data
       { txn = gid; off = slot_off t slot; bytes = intent_bytes gid pairs });
  Ramdisk.wal_append t.coord (Ramdisk.Commit { txn = gid });
  Ramdisk.wal_force t.coord

(* Retire the intent (its slot's state word back to 0) and free the
   slot. [gid] is already in the coordinator log's committed set, so the
   marker needs no force of its own: if it is lost, recovery merely
   redoes the transaction, which is idempotent (absolute values). *)
let retire t gid ~slot ~force =
  Ramdisk.wal_append t.coord
    (Ramdisk.Data
       { txn = gid; off = slot_off t slot + intent_off_state;
         bytes = Bytes.make 4 '\000' });
  if force then Ramdisk.wal_force t.coord;
  if Ramdisk.should_truncate t.coord then Ramdisk.truncate t.coord;
  t.slot_busy.(slot) <- false

(* Phase-2 commit of one participant. The decision is already durable,
   so a commit that hits log exhaustion (its redo records were absorbed)
   must roll forward, never abort: reset the shard's log and re-apply
   the writes as a fresh transaction. *)
let commit_participant ~sync t s ws =
  sync s;
  let r = t.shards.(s) in
  let pace_here () = sync s in
  match Rlvm.commit ~pace:pace_here r with
  | () -> ()
  | exception Error.Lvm_error (Error.Log_exhausted _) ->
    if Rlvm.in_txn r then Rlvm.abort r;
    Lvm_obs.Counter.incr t.redo_c;
    Rlvm.begin_txn r;
    apply_writes ~sync:pace_here t r ws;
    Rlvm.commit ~pace:pace_here r

let exec_cross ~pace ~detach ~observe t parts writes =
  let gid = t.next_gid in
  t.next_gid <- gid + 1;
  let share = max 1 (t.config.Config.compute / List.length parts) in
  (* The transaction is one logical thread hopping between the
     participant CPUs and the coordinator, and its clock must be
     monotone across the hops: each stage happens after the previous one
     (the 2PC messages impose that order), so a hop onto a CPU whose
     local clock lags the thread advances it — the participant waits for
     the coordinator's message, not the other way round. Without this,
     the thread would issue timed accesses "in the past" after returning
     from a fast CPU to a slow one, which the shared-bus cursor would
     misprice as arbitration waits. [tt] is the thread's clock floor. *)
  let sync_with ~pace tt started s =
    if !started then
      tt :=
        max !tt (Kernel.cpu_time t.k ~cpu:(Kernel.current_cpu t.k));
    started := true;
    Kernel.set_cpu t.k s;
    let lag = !tt - Kernel.cpu_time t.k ~cpu:s in
    if lag > 0 then Kernel.compute t.k lag;
    pace ~cpu:s;
    Kernel.set_cpu t.k s
  in
  let tt = ref 0 in
  let started = ref false in
  let sync s = sync_with ~pace tt started s in
  (* Phase 1: open a transaction on every participant (ascending shard
     order), apply its slice of the writes. Nothing is durable yet. *)
  let rec phase1 = function
    | [] -> None
    | (s, ws) :: rest -> (
      sync s;
      let r = t.shards.(s) in
      match
        Kernel.compute t.k share;
        sync s;
        Rlvm.begin_txn r;
        apply_writes ~sync:(fun () -> sync s) t r ws
      with
      | () -> phase1 rest
      | exception Error.Lvm_error (Error.Log_exhausted _) -> Some s)
  in
  match phase1 parts with
  | Some s ->
    (* Pre-decision overload: abort every opened participant — the
       transaction leaves no trace anywhere. *)
    List.iter
      (fun (p, _) ->
        let r = t.shards.(p) in
        if Rlvm.in_txn r then begin
          Kernel.set_cpu t.k p;
          Rlvm.abort r
        end)
      parts;
    Error (Overloaded { shard = s })
  | None ->
    let home, home_ws, others =
      match parts with
      | (home, ws) :: others -> (home, ws, others)
      | [] -> assert false
    in
    (* Decide on the home worker's CPU (it drives the 2PC). Once the
       force returns the outcome is fixed, so the participants apply
       independently: the home slice commits on this thread, and every
       other participant's phase-2 commit is handed to [detach] — in the
       driver, that is the participant shard's own worker picking up the
       decision and applying it while the home worker moves on
       (presumed-commit 2PC with asynchronous acknowledgements). The
       last participant to finish retires the intent. Each detached
       branch gets its own thread-clock floored at the decision time:
       the branches are causally ordered after the decision but not
       after each other. *)
    let slot = alloc_slot t in
    sync home;
    decide t gid ~slot writes;
    let decided = max !tt (Kernel.cpu_time t.k ~cpu:home) in
    let remaining = ref (List.length parts) in
    (* Whichever participant commits last retires the intent — after
       every sibling's commit, so its clock is floored at the latest of
       their completion times. The commit-latency histogram is observed
       here too: with detached phase-2 branches the transaction is not
       complete when [exec] returns, only when the intent retires. *)
    let retire_if_last btt bsync s =
      decr remaining;
      if !remaining = 0 then begin
        List.iter
          (fun (p, _) -> btt := max !btt (Kernel.cpu_time t.k ~cpu:p))
          parts;
        bsync s;
        retire t gid ~slot ~force:false;
        observe ()
      end
    in
    List.iter
      (fun (s, ws) ->
        detach ~shard:s (fun ~pace ->
            let btt = ref decided in
            let bstarted = ref false in
            let bsync p = sync_with ~pace btt bstarted p in
            commit_participant ~sync:bsync t s ws;
            bsync s;
            Rlvm.flush_commits t.shards.(s);
            retire_if_last btt bsync s))
      others;
    commit_participant ~sync t home home_ws;
    sync home;
    Rlvm.flush_commits t.shards.(home);
    retire_if_last tt sync home;
    Ok ()

(* {1 The front door} *)

let validate t writes =
  let n = List.length writes in
  if n > t.config.Config.max_txn_writes then
    Some (Txn_too_large { writes = n; limit = t.config.Config.max_txn_writes })
  else
    match
      List.find_opt
        (fun (key, _) -> key < 0 || key >= t.config.Config.keys)
        writes
    with
    | Some (key, _) -> Some (Invalid_key { key })
    | None -> None

let exec ?(pace = no_pace) ?detach t ~writes =
  (* Without a driver-supplied [detach], detached phase-2 branches run
     inline, right here — the synchronous behavior (crash sweeps and
     direct callers see every commit applied before [exec] returns). *)
  let detach =
    match detach with Some d -> d | None -> fun ~shard:_ f -> f ~pace
  in
  match writes with
  | [] -> Ok ()
  | writes -> (
    match validate t writes with
    | Some e -> Error e
    | None ->
      let parts = partition t writes in
      let before =
        List.map (fun (c, _) -> (c, Kernel.cpu_time t.k ~cpu:c)) parts
      in
      (* Commit latency: CPU cycles burned on the participant shards
         between admission and completion. For a local transaction that
         is when [exec_local] returns; for a cross-shard transaction it
         is when the last participant retires the intent — possibly in
         a detached phase-2 branch, after [exec] has returned. *)
      let observe () =
        let cycles =
          List.fold_left
            (fun acc (c, t0) -> acc + (Kernel.cpu_time t.k ~cpu:c - t0))
            0 before
        in
        Lvm_obs.Histogram.observe t.commit_hist cycles
      in
      let result =
        match parts with
        | [ (s, ws) ] -> exec_local ~pace t s ws
        | parts -> exec_cross ~pace ~detach ~observe t parts writes
      in
      (match result with
      | Ok () ->
        Lvm_obs.Counter.incr t.txns_c;
        (match parts with
        | [ (s, _) ] ->
          observe ();
          Lvm_obs.Counter.incr t.shard_txns.(s)
        | (home, _) :: _ ->
          Lvm_obs.Counter.incr t.cross_c;
          Lvm_obs.Counter.incr t.shard_txns.(home)
        | [] -> ())
      | Error _ -> Lvm_obs.Counter.incr t.overloaded_c);
      result)

let flush t =
  Array.iteri
    (fun s r ->
      Kernel.set_cpu t.k s;
      Rlvm.flush_commits r)
    t.shards;
  Kernel.set_cpu t.k 0

(* {1 Crash recovery} *)

type recovery = {
  shard_reports : Ramdisk.recovery array;
  coordinator : Ramdisk.recovery;
  redone : (int * int) list;
}

let recover t =
  let shard_reports =
    Array.mapi
      (fun s r ->
        Kernel.set_cpu t.k s;
        Rlvm.recover r)
      t.shards
  in
  Kernel.set_cpu t.k 0;
  let image, coordinator = Ramdisk.recover t.coord in
  (* The crash lost every in-flight transaction; whatever slots they
     held are reconstructed from the recovered image alone. *)
  Array.fill t.slot_busy 0 (Array.length t.slot_busy) false;
  (* Every decided cross-shard transaction that never retired must roll
     forward. Concurrent in-flight transactions touch disjoint shards
     (the driver's claim discipline), so their redo sets are disjoint;
     replay in gid order anyway, for determinism. *)
  let decided = ref [] in
  for slot = Array.length t.slot_busy - 1 downto 0 do
    let base = slot_off t slot in
    if get32 image (base + intent_off_state) = 1 then begin
      let gid = get32 image (base + intent_off_gid) in
      let n = get32 image (base + intent_off_count) in
      let pairs =
        List.init n (fun i ->
            ( get32 image (base + intent_off_pairs + (8 * i)),
              get32 image (base + intent_off_pairs + (8 * i) + 4) ))
      in
      decided := (gid, slot, pairs) :: !decided
    end
  done;
  let decided =
    List.sort (fun (g1, _, _) (g2, _, _) -> compare g1 g2) !decided
  in
  let redone =
    List.map
      (fun (gid, slot, pairs) ->
        (* Redo as fresh committed transactions per participant —
           absolute values, so replaying over an already-applied shard
           is idempotent. *)
        List.iter
          (fun (s, ws) ->
            Kernel.set_cpu t.k s;
            let r = t.shards.(s) in
            Rlvm.begin_txn r;
            apply_writes t r ws;
            Rlvm.commit r;
            Rlvm.flush_commits r)
          (partition t pairs);
        Lvm_obs.Counter.incr t.redo_c;
        Kernel.set_cpu t.k 0;
        retire t gid ~slot ~force:true;
        (gid, List.length pairs))
      decided
  in
  Kernel.set_cpu t.k 0;
  { shard_reports; coordinator; redone }

let recovery_to_string r =
  let shards =
    String.concat "; "
      (Array.to_list
         (Array.mapi
            (fun s rep ->
              Printf.sprintf "shard%d %s" s (Ramdisk.recovery_to_string rep))
            r.shard_reports))
  in
  Printf.sprintf "%s | coord %s | redone=%s" shards
    (Ramdisk.recovery_to_string r.coordinator)
    (match r.redone with
    | [] -> "none"
    | l ->
      String.concat ","
        (List.map (fun (gid, n) -> Printf.sprintf "gid=%d writes=%d" gid n) l))
