open Lvm_vm
module Rlvm = Lvm_rvm.Rlvm
module Ramdisk = Lvm_rvm.Ramdisk

module Config = struct
  type admission = Shed | Queue

  type t = {
    shards : int;
    keys : int;
    group : int;
    log_pages : int;
    max_log_pages : int option;
    admission : admission;
    max_txn_writes : int;
    compute : int;
    frames : int;
    buckets_per_shard : int;
    admission_rate : float;
    admission_burst : int;
    mvcc_history : int;
    obs : Lvm_obs.Ctx.t option;
  }

  let default =
    { shards = 4; keys = 1024; group = 1; log_pages = 32;
      max_log_pages = None; admission = Queue; max_txn_writes = 32;
      compute = 400; frames = 4096; buckets_per_shard = 8;
      admission_rate = 0.0; admission_burst = 8; mvcc_history = 1024;
      obs = None }
end

(* The store's result-typed surface speaks {!Lvm.Lvm_error.t} directly
   (the per-module [error] type and its [to_error] injection are gone);
   this alias keeps the old renderer name compiling for one PR. *)
let error_to_string = Lvm.Lvm_error.to_string

(* {1 Shard moves (split / merge)}

   Ownership is bucket-granular: key [k] hashes to bucket [k mod
   buckets], and the routing table maps each bucket to its owning
   shard (default: [b mod shards]). A move hands a set of buckets from
   one shard to another through a crash-safe three-phase protocol:

   - [Copying]: a forced split-intent record marks the move in the
     coordinator log, then the moved keys are copied to the target in
     resumable batches (committed target-shard transactions); writes to
     already-routed-to-[from] moved keys keep landing on [from] and are
     tracked in a dirty set for re-copy.
   - [Draining]: new transactions touching a moved key are refused with
     the typed [Moved] result (the driver requeues them); the dirty set
     is re-copied so the target holds every moved key's latest value.
   - [Cut_over]: one forced coordinator transaction atomically rewrites
     the moved buckets' route words and advances the intent state — the
     decision point. After it, the route flip is durable; a final
     unforced retire clears the intent.

   Crash recovery inspects the intent: state [Copying] means ownership
   never changed, so the move is abandoned (the target's partial copy
   is unreachable garbage); state [Cut_over] means the route words are
   already durable in the same committed transaction, so recovery just
   retires the intent. Either way every key has exactly one owner. *)

type move_phase = Copying | Draining | Cut_over

type move = {
  m_from : int;
  m_to : int;
  m_mask : bool array; (* per bucket: part of this move? *)
  mutable m_cursor : int; (* next key index the copy will examine *)
  m_dirty : (int, unit) Hashtbl.t; (* moved keys written during the copy *)
  mutable m_phase : move_phase;
}

type gate = { mutable g_tokens : float; mutable g_last : int }

type t = {
  k : Kernel.t;
  config : Config.t;
  shards : Rlvm.t array;
  coord : Ramdisk.t;
  (* One intent slot per shard in the coordinator image, [slot_busy.(i)]
     while slot [i] holds a decided-but-unretired intent. Every
     transaction in its decide->retire window holds a claim on at least
     one shard (each non-home participant stays claimed until its
     phase-2 commit completes, and the last participant retires), so at
     most [shards] transactions are ever in that window at once. *)
  slot_busy : bool array;
  buckets : int;
  route : int array; (* bucket -> owning shard *)
  split_base : int; (* split-intent slot offset in the coordinator *)
  route_base : int; (* route-word array offset in the coordinator *)
  mutable active : move option;
  gates : gate array; (* per-shard token-bucket admission *)
  bucket_writes : int array; (* committed writes per bucket (load) *)
  lat_ewma : float array; (* per-shard commit-latency EWMA, cycles *)
  txns_c : Lvm_obs.Counter.counter;
  cross_c : Lvm_obs.Counter.counter;
  redo_c : Lvm_obs.Counter.counter;
  overloaded_c : Lvm_obs.Counter.counter;
  shed_c : Lvm_obs.Counter.counter;
  moved_c : Lvm_obs.Counter.counter;
  split_begun_c : Lvm_obs.Counter.counter;
  split_copied_c : Lvm_obs.Counter.counter;
  split_cutover_c : Lvm_obs.Counter.counter;
  split_aborted_c : Lvm_obs.Counter.counter;
  shard_txns : Lvm_obs.Counter.counter array;
  commit_hist : Lvm_obs.Histogram.t;
  mutable next_gid : int;
  (* {2 Commit timestamps (MVCC)}

     One global clock stamps every committed transaction; a cross-shard
     transaction draws its timestamp at the decision point and carries
     it on every participant, so any timestamp cut sees it wholly or
     not at all. [in_flight] maps a cross-shard timestamp to its
     not-yet-committed participant count: the watermark — the highest
     timestamp below which everything is decided and applied — is one
     below the oldest in-flight entry. *)
  mutable next_ts : int;
  in_flight : (int, int) Hashtbl.t;
  mutable mvcc : Lvm_mvcc.View.t option;
}

let range op what value =
  Error.raise_ (Error.Out_of_range { op; what; value })

(* Coordinator intent slot: word 0 = state (1 decided, 0 retired),
   word 1 = gid, word 2 = write count, then (key, value) word pairs.
   The coordinator image holds one such slot per shard, so concurrent
   cross-shard transactions in their decide->retire windows keep
   disjoint intents — a decide never overwrites a live sibling, and a
   retire zeroes only its own slot's state word. One Data record
   carries a whole slot, so each intent is durable atomically (the WAL
   checksum truncates a torn prefix).

   Past the intent slots the image holds the split-intent slot (state
   word: 0 idle / 1 copying / 2 cut over; from; to; bucket bitmap) and
   the route-word array — one word per bucket, 0 meaning the default
   owner [b mod shards] and [s + 1] meaning shard [s], so a freshly
   created store needs no initializing writes. *)
let intent_off_state = 0
let intent_off_gid = 4
let intent_off_count = 8
let intent_off_pairs = 12
let intent_size max_writes = intent_off_pairs + (8 * max_writes)

let split_state_copying = 1
let split_state_cutover = 2
let split_mask_words buckets = (buckets + 31) / 32
let split_slot_bytes buckets = 12 + (4 * split_mask_words buckets)

let set32 b off v = Bytes.set_int32_le b off (Int32.of_int (v land 0xFFFFFFFF))
let get32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let bytes32 v =
  let b = Bytes.make 4 '\000' in
  set32 b 0 v;
  b

let create (config : Config.t) =
  if config.Config.shards < 1 then
    range "Store.create" "shards" config.Config.shards;
  if config.Config.keys < config.Config.shards then
    range "Store.create" "keys" config.Config.keys;
  if config.Config.max_txn_writes < 1 then
    range "Store.create" "max_txn_writes" config.Config.max_txn_writes;
  if config.Config.compute < 0 then
    range "Store.create" "compute" config.Config.compute;
  (* Validate the whole config up front with typed errors: without these
     a nonsensical group/log_pages/frames surfaced as a late crash deep
     inside shard or kernel creation (or not until first use). *)
  if config.Config.group < 1 then
    range "Store.create" "group" config.Config.group;
  if config.Config.log_pages < 1 then
    range "Store.create" "log_pages" config.Config.log_pages;
  (match config.Config.max_log_pages with
  | Some m when m < config.Config.log_pages ->
    range "Store.create" "max_log_pages" m
  | Some _ | None -> ());
  if config.Config.frames < 1 then
    range "Store.create" "frames" config.Config.frames;
  if config.Config.buckets_per_shard < 1 then
    range "Store.create" "buckets_per_shard" config.Config.buckets_per_shard;
  if config.Config.admission_rate < 0.0 then
    range "Store.create" "admission_rate" 0;
  if config.Config.admission_burst < 1 then
    range "Store.create" "admission_burst" config.Config.admission_burst;
  let k =
    Lvm.Api.create
      { Lvm.Api.Config.default with
        cpus = config.Config.shards;
        frames = config.Config.frames;
        obs = config.Config.obs }
  in
  (* Every shard's segment spans the whole keyspace: a key's offset is
     owner-independent, so bucket handoffs never relocate data within a
     segment — the copy writes each key at the same offset it had. *)
  let shards =
    Array.init config.Config.shards (fun s ->
        Kernel.set_cpu k s;
        let sp = Kernel.create_space k in
        Rlvm.make
          { Rlvm.Config.log_pages = config.Config.log_pages;
            max_log_pages = config.Config.max_log_pages;
            group = config.Config.group }
          k sp ~size:(config.Config.keys * Lvm_machine.Addr.word_size))
  in
  Kernel.set_cpu k 0;
  let buckets = config.Config.shards * config.Config.buckets_per_shard in
  let split_base = config.Config.shards * intent_size config.Config.max_txn_writes in
  let route_base = split_base + split_slot_bytes buckets in
  let coord = Ramdisk.create k ~size:(route_base + (4 * buckets)) in
  let ctx = Kernel.obs k in
  { k; config; shards; coord;
    slot_busy = Array.make config.Config.shards false;
    buckets;
    route = Array.init buckets (fun b -> b mod config.Config.shards);
    split_base; route_base;
    active = None;
    gates =
      Array.init config.Config.shards (fun _ ->
          { g_tokens = float_of_int config.Config.admission_burst;
            g_last = 0 });
    bucket_writes = Array.make buckets 0;
    lat_ewma = Array.make config.Config.shards 0.0;
    txns_c = Lvm_obs.Ctx.counter ctx "store.txns";
    cross_c = Lvm_obs.Ctx.counter ctx "store.txns_cross";
    redo_c = Lvm_obs.Ctx.counter ctx "store.redo";
    overloaded_c = Lvm_obs.Ctx.counter ctx "store.overloaded";
    shed_c = Lvm_obs.Ctx.counter ctx "store.shed_admission";
    moved_c = Lvm_obs.Ctx.counter ctx "store.moved_requeues";
    split_begun_c = Lvm_obs.Ctx.counter ctx "store.split_begun";
    split_copied_c = Lvm_obs.Ctx.counter ctx "store.split_copied_keys";
    split_cutover_c = Lvm_obs.Ctx.counter ctx "store.split_cutovers";
    split_aborted_c = Lvm_obs.Ctx.counter ctx "store.split_aborted";
    shard_txns =
      Array.init config.Config.shards (fun s ->
          Lvm_obs.Ctx.counter ctx (Printf.sprintf "store.shard%d.txns" s));
    commit_hist =
      Lvm_obs.Ctx.histogram ctx ~name:"store.commit_cycles"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:24);
    next_gid = 1;
    next_ts = 1;
    in_flight = Hashtbl.create 17;
    mvcc = None }

let kernel t = t.k
let config t = t.config
let buckets t = t.buckets
let bucket_of_key t key = key mod t.buckets
let owner_of_bucket t b = t.route.(b)
let shard_of_key t key = t.route.(key mod t.buckets)
let default_owner t b = b mod t.config.Config.shards
let route_table t = Array.copy t.route
let shard t s = t.shards.(s)
let off_of_key _t key = key * Lvm_machine.Addr.word_size
let bucket_write_counts t = Array.copy t.bucket_writes
let commit_latency_ewma t s = t.lat_ewma.(s)

let shard_buckets t s =
  let acc = ref [] in
  for b = t.buckets - 1 downto 0 do
    if t.route.(b) = s then acc := b :: !acc
  done;
  !acc

(* {1 Commit timestamps} *)

let alloc_ts t =
  let ts = t.next_ts in
  t.next_ts <- ts + 1;
  ts

let last_ts t = t.next_ts - 1

let watermark t =
  let oldest =
    Hashtbl.fold (fun ts _ acc -> min acc ts) t.in_flight max_int
  in
  if oldest = max_int then t.next_ts - 1 else oldest - 1

let mvcc_event t e =
  match t.mvcc with None -> () | Some v -> Lvm_mvcc.View.event v e

(* Stamp shard [s]'s most recent rlvm transaction with [ts]. Ids are
   assigned at [begin_txn] and never reused, and the claim discipline
   admits one transaction per shard, so [last_txn_id] is exactly the
   transaction that just committed. *)
let note_commit t s ts =
  mvcc_event t
    (Lvm_mvcc.Commit { shard = s; txn = Rlvm.last_txn_id t.shards.(s); ts })

(* One participant of cross-shard timestamp [ts] finished its phase-2
   commit: stamp it and retire the in-flight entry on the last one,
   releasing the watermark. *)
let cross_done t ts s =
  note_commit t s ts;
  match Hashtbl.find_opt t.in_flight ts with
  | Some n when n <= 1 -> Hashtbl.remove t.in_flight ts
  | Some n -> Hashtbl.replace t.in_flight ts (n - 1)
  | None -> ()

(* {1 Reads} *)

(* Worker-path read: charged to the owning shard's CPU, contending with
   its commit path — the pre-MVCC behavior, and the baseline the
   [bench --mvcc] matrix measures snapshot reads against. *)
let worker_read t key =
  let s = shard_of_key t key in
  Kernel.set_cpu t.k s;
  Rlvm.read_word t.shards.(s) ~off:(off_of_key t key)

let read t key =
  if key < 0 || key >= t.config.Config.keys then
    Error (Lvm.Lvm_error.Invalid_key { key })
  else
    match t.mvcc with
    | None -> Ok (worker_read t key)
    | Some v ->
      (* Latest-snapshot read: acquire at the current cut, read, release.
         Never touches a shard worker CPU. *)
      let snap = Lvm_mvcc.acquire v in
      let r = Lvm_mvcc.read snap ~key in
      Lvm_mvcc.release snap;
      r

let read_exn t key =
  if key < 0 || key >= t.config.Config.keys then range "Store.read" "key" key;
  match read t key with
  | Ok v -> v
  | Error e ->
    Error.raise_
      (Error.Invalid
         { op = "Store.read_exn"; reason = Lvm.Lvm_error.to_string e })

(* Group writes by owning shard, ascending shard order, original write
   order preserved within a shard (last write to a key wins). *)
let partition t writes =
  let by = Array.make t.config.Config.shards [] in
  List.iter
    (fun (key, v) ->
      let s = shard_of_key t key in
      by.(s) <- (key, v land 0xFFFFFFFF) :: by.(s))
    writes;
  Array.to_list (Array.mapi (fun s ws -> (s, List.rev ws)) by)
  |> List.filter (fun (_, ws) -> ws <> [])

let no_pace ~cpu:_ = ()

let apply_writes ?(sync = fun () -> ()) t r ws =
  List.iter
    (fun (key, v) ->
      sync ();
      Rlvm.write_word r ~off:(off_of_key t key) v)
    ws

(* {1 Token-bucket admission}

   One bucket per shard, refilled from the shard CPU's own clock
   ([admission_rate] tokens per thousand cycles, capped at
   [admission_burst]). The gate sits in front of everything: a
   transaction it refuses costs no log room, no CPU charge, no 2PC
   slot — overload degrades to typed [Shed] results at the front door
   instead of wedging in the log-room backpressure path. *)

let admit t s =
  t.config.Config.admission_rate <= 0.0
  ||
  let g = t.gates.(s) in
  let now = Kernel.cpu_time t.k ~cpu:s in
  if now > g.g_last then begin
    g.g_tokens <-
      Float.min
        (float_of_int t.config.Config.admission_burst)
        (g.g_tokens
        +. float_of_int (now - g.g_last)
           *. t.config.Config.admission_rate /. 1000.0);
    g.g_last <- now
  end;
  if g.g_tokens >= 1.0 then begin
    g.g_tokens <- g.g_tokens -. 1.0;
    true
  end
  else false

(* {1 Single-shard commit} *)

let exec_local ~pace t s ws =
  (* Yield to the driver's scheduler between operations, then take the
     shard's CPU back (the scheduler runs other transactions' operations
     on other CPUs while we are suspended). *)
  let sync () =
    pace ~cpu:s;
    Kernel.set_cpu t.k s
  in
  sync ();
  let r = t.shards.(s) in
  match
    Kernel.compute t.k t.config.Config.compute;
    sync ();
    Rlvm.begin_txn r;
    apply_writes ~sync t r ws;
    sync ();
    Rlvm.commit ~pace:sync r
  with
  | () ->
    note_commit t s (alloc_ts t);
    Ok ()
  | exception Error.Lvm_error (Error.Log_exhausted _) ->
    (* Backpressure: the shard's log cannot make this transaction
       durable. Abort cleanly and report it as admission-control
       pressure rather than failing. *)
    if Rlvm.in_txn r then Rlvm.abort r;
    Error (Lvm.Lvm_error.Overloaded { shard = s })

(* {1 Two-phase commit} *)

let intent_bytes gid pairs =
  let n = List.length pairs in
  let b = Bytes.make (intent_size n) '\000' in
  set32 b intent_off_state 1;
  set32 b intent_off_gid gid;
  set32 b intent_off_count n;
  List.iteri
    (fun i (key, v) ->
      set32 b (intent_off_pairs + (8 * i)) key;
      set32 b (intent_off_pairs + (8 * i) + 4) v)
    pairs;
  b

let slot_off t slot = slot * intent_size t.config.Config.max_txn_writes

(* Claim a free intent slot. The shard-claim discipline bounds
   concurrent decide->retire windows by the shard count (see
   [slot_busy]), so a driver that respects it never exhausts the
   slots. *)
let alloc_slot t =
  let n = Array.length t.slot_busy in
  let rec go i =
    if i >= n then range "Store.exec" "in-flight cross-shard txns" n
    else if t.slot_busy.(i) then go (i + 1)
    else begin
      t.slot_busy.(i) <- true;
      i
    end
  in
  go 0

(* The decision point: once this force returns, the transaction is
   committed in full — recovery rolls it forward from the intent. The
   coordinator log is a shared disk, not a CPU-pinned service: the
   decision runs on whatever CPU is driving the transaction (its home
   shard's worker; CPU 0 during recovery). *)
let decide t gid ~slot pairs =
  Ramdisk.wal_append t.coord
    (Ramdisk.Data
       { txn = gid; off = slot_off t slot; bytes = intent_bytes gid pairs });
  Ramdisk.wal_append t.coord (Ramdisk.Commit { txn = gid });
  Ramdisk.wal_force t.coord

(* Retire the intent (its slot's state word back to 0) and free the
   slot. [gid] is already in the coordinator log's committed set, so the
   marker needs no force of its own: if it is lost, recovery merely
   redoes the transaction, which is idempotent (absolute values). *)
let retire t gid ~slot ~force =
  Ramdisk.wal_append t.coord
    (Ramdisk.Data
       { txn = gid; off = slot_off t slot + intent_off_state;
         bytes = Bytes.make 4 '\000' });
  if force then Ramdisk.wal_force t.coord;
  if Ramdisk.should_truncate t.coord then Ramdisk.truncate t.coord;
  t.slot_busy.(slot) <- false

(* One committed coordinator transaction over arbitrary image spans
   (the split protocol's records). All-or-nothing: the WAL replays Data
   records only at their Commit marker, so a crash mid-append loses the
   whole transaction, never a prefix of its effects. *)
let coord_txn t ~force datas =
  let gid = t.next_gid in
  t.next_gid <- gid + 1;
  List.iter
    (fun (off, bytes) ->
      Ramdisk.wal_append t.coord (Ramdisk.Data { txn = gid; off; bytes }))
    datas;
  Ramdisk.wal_append t.coord (Ramdisk.Commit { txn = gid });
  if force then Ramdisk.wal_force t.coord;
  if Ramdisk.should_truncate t.coord then Ramdisk.truncate t.coord

(* Phase-2 commit of one participant. The decision is already durable,
   so a commit that hits log exhaustion (its redo records were absorbed)
   must roll forward, never abort: reset the shard's log and re-apply
   the writes as a fresh transaction. *)
let commit_participant ~sync t s ws =
  sync s;
  let r = t.shards.(s) in
  let pace_here () = sync s in
  match Rlvm.commit ~pace:pace_here r with
  | () -> ()
  | exception Error.Lvm_error (Error.Log_exhausted _) ->
    if Rlvm.in_txn r then Rlvm.abort r;
    Lvm_obs.Counter.incr t.redo_c;
    Rlvm.begin_txn r;
    apply_writes ~sync:pace_here t r ws;
    Rlvm.commit ~pace:pace_here r

let exec_cross ~pace ~detach ~observe t parts writes =
  let gid = t.next_gid in
  t.next_gid <- gid + 1;
  let share = max 1 (t.config.Config.compute / List.length parts) in
  (* The transaction is one logical thread hopping between the
     participant CPUs and the coordinator, and its clock must be
     monotone across the hops: each stage happens after the previous one
     (the 2PC messages impose that order), so a hop onto a CPU whose
     local clock lags the thread advances it — the participant waits for
     the coordinator's message, not the other way round. Without this,
     the thread would issue timed accesses "in the past" after returning
     from a fast CPU to a slow one, which the shared-bus cursor would
     misprice as arbitration waits. [tt] is the thread's clock floor. *)
  let sync_with ~pace tt started s =
    if !started then
      tt :=
        max !tt (Kernel.cpu_time t.k ~cpu:(Kernel.current_cpu t.k));
    started := true;
    Kernel.set_cpu t.k s;
    let lag = !tt - Kernel.cpu_time t.k ~cpu:s in
    if lag > 0 then Kernel.compute t.k lag;
    pace ~cpu:s;
    Kernel.set_cpu t.k s
  in
  let tt = ref 0 in
  let started = ref false in
  let sync s = sync_with ~pace tt started s in
  (* Phase 1: open a transaction on every participant (ascending shard
     order), apply its slice of the writes. Nothing is durable yet. *)
  let rec phase1 = function
    | [] -> None
    | (s, ws) :: rest -> (
      sync s;
      let r = t.shards.(s) in
      match
        Kernel.compute t.k share;
        sync s;
        Rlvm.begin_txn r;
        apply_writes ~sync:(fun () -> sync s) t r ws
      with
      | () -> phase1 rest
      | exception Error.Lvm_error (Error.Log_exhausted _) -> Some s)
  in
  match phase1 parts with
  | Some s ->
    (* Pre-decision overload: abort every opened participant — the
       transaction leaves no trace anywhere. *)
    List.iter
      (fun (p, _) ->
        let r = t.shards.(p) in
        if Rlvm.in_txn r then begin
          Kernel.set_cpu t.k p;
          Rlvm.abort r
        end)
      parts;
    Error (Lvm.Lvm_error.Overloaded { shard = s })
  | None ->
    let home, home_ws, others =
      match parts with
      | (home, ws) :: others -> (home, ws, others)
      | [] -> assert false
    in
    (* Decide on the home worker's CPU (it drives the 2PC). Once the
       force returns the outcome is fixed, so the participants apply
       independently: the home slice commits on this thread, and every
       other participant's phase-2 commit is handed to [detach] — in the
       driver, that is the participant shard's own worker picking up the
       decision and applying it while the home worker moves on
       (presumed-commit 2PC with asynchronous acknowledgements). The
       last participant to finish retires the intent. Each detached
       branch gets its own thread-clock floored at the decision time:
       the branches are causally ordered after the decision but not
       after each other. *)
    let slot = alloc_slot t in
    sync home;
    decide t gid ~slot writes;
    (* The decision fixed the outcome, so the commit timestamp is drawn
       here — one timestamp for every participant. It stays in-flight
       (holding the MVCC watermark below it) until the last phase-2
       commit lands, so no cut can fall between two participants. *)
    let ts = alloc_ts t in
    Hashtbl.replace t.in_flight ts (List.length parts);
    let decided = max !tt (Kernel.cpu_time t.k ~cpu:home) in
    let remaining = ref (List.length parts) in
    (* Whichever participant commits last retires the intent — after
       every sibling's commit, so its clock is floored at the latest of
       their completion times. The commit-latency histogram is observed
       here too: with detached phase-2 branches the transaction is not
       complete when [exec] returns, only when the intent retires. *)
    let retire_if_last btt bsync s =
      decr remaining;
      if !remaining = 0 then begin
        List.iter
          (fun (p, _) -> btt := max !btt (Kernel.cpu_time t.k ~cpu:p))
          parts;
        bsync s;
        retire t gid ~slot ~force:false;
        observe ()
      end
    in
    List.iter
      (fun (s, ws) ->
        detach ~shard:s (fun ~pace ->
            let btt = ref decided in
            let bstarted = ref false in
            let bsync p = sync_with ~pace btt bstarted p in
            commit_participant ~sync:bsync t s ws;
            bsync s;
            Rlvm.flush_commits t.shards.(s);
            cross_done t ts s;
            retire_if_last btt bsync s))
      others;
    commit_participant ~sync t home home_ws;
    sync home;
    Rlvm.flush_commits t.shards.(home);
    cross_done t ts home;
    retire_if_last tt sync home;
    Ok ()

(* {1 Shard-move lifecycle} *)

let active_move t =
  match t.active with None -> None | Some mv -> Some (mv.m_from, mv.m_to)

let move_draining t =
  match t.active with Some { m_phase = Draining; _ } -> true | _ -> false

(* The first moved key a draining move would refuse, with its new
   owner. Drivers consult this before claiming shards so a queued
   transaction that hit the handoff window requeues instead of
   spinning. *)
let blocked_by_move t writes =
  match t.active with
  | Some ({ m_phase = Draining; _ } as mv) ->
    List.find_map
      (fun (key, _) ->
        if key >= 0 && key < t.config.Config.keys
           && mv.m_mask.(key mod t.buckets)
        then Some (key, mv.m_to)
        else None)
      writes
  | _ -> None

let require_move op t =
  match t.active with
  | Some mv -> mv
  | None -> range op "no active move" 0

let split_intent_bytes t ~from_ ~to_ mask =
  let b = Bytes.make (split_slot_bytes t.buckets) '\000' in
  set32 b 0 split_state_copying;
  set32 b 4 from_;
  set32 b 8 to_;
  Array.iteri
    (fun bucket m ->
      if m then begin
        let off = 12 + (4 * (bucket / 32)) in
        set32 b off (get32 b off lor (1 lsl (bucket mod 32)))
      end)
    mask;
  b

let move_begin t ~from_ ~to_ bucket_list =
  if t.active <> None then range "Store.move_begin" "concurrent move" 1;
  let shards = t.config.Config.shards in
  if from_ < 0 || from_ >= shards then range "Store.move_begin" "from" from_;
  if to_ < 0 || to_ >= shards then range "Store.move_begin" "to" to_;
  if from_ = to_ then range "Store.move_begin" "to = from" to_;
  if bucket_list = [] then range "Store.move_begin" "buckets" 0;
  List.iter
    (fun b ->
      if b < 0 || b >= t.buckets then range "Store.move_begin" "bucket" b;
      if t.route.(b) <> from_ then
        range "Store.move_begin" "bucket not owned by from" b)
    bucket_list;
  let mask = Array.make t.buckets false in
  List.iter (fun b -> mask.(b) <- true) bucket_list;
  (* The forced split intent: after this record is durable, a crash at
     any point before cutover recovers by abandoning the move. *)
  Kernel.set_cpu t.k to_;
  coord_txn t ~force:true
    [ (t.split_base, split_intent_bytes t ~from_ ~to_ mask) ];
  t.active <-
    Some
      { m_from = from_; m_to = to_; m_mask = mask; m_cursor = 0;
        m_dirty = Hashtbl.create 61; m_phase = Copying };
  Lvm_obs.Counter.incr t.split_begun_c

(* Copy a batch of key/value pairs into the target shard as one
   committed transaction. Raises [Log_exhausted] (after aborting
   cleanly) if the target's log cannot absorb the batch — the caller
   backs off and retries; the copy cursor only advances on success. *)
let copy_pairs t mv pairs =
  match pairs with
  | [] -> ()
  | pairs -> (
    Kernel.set_cpu t.k mv.m_to;
    let r = t.shards.(mv.m_to) in
    match
      Rlvm.begin_txn r;
      List.iter
        (fun (key, v) -> Rlvm.write_word r ~off:(off_of_key t key) v)
        pairs;
      Rlvm.commit r
    with
    | () ->
      Rlvm.flush_commits r;
      (* The copy batch is an ordinary stamped transaction on the target
         shard: post-cutover snapshots find the moved keys' values there
         at the copy timestamp, below the cutover's route flip. *)
      note_commit t mv.m_to (alloc_ts t);
      Lvm_obs.Counter.add t.split_copied_c (List.length pairs)
    | exception (Error.Lvm_error (Error.Log_exhausted _) as e) ->
      if Rlvm.in_txn r then Rlvm.abort r;
      raise e)

let move_remaining t =
  match t.active with
  | None -> 0
  | Some mv ->
    let n = ref 0 in
    for key = mv.m_cursor to t.config.Config.keys - 1 do
      if mv.m_mask.(key mod t.buckets) then incr n
    done;
    !n

let move_dirty_count t =
  match t.active with None -> 0 | Some mv -> Hashtbl.length mv.m_dirty

let move_copy_step t ~batch =
  if batch < 1 then range "Store.move_copy_step" "batch" batch;
  let mv = require_move "Store.move_copy_step" t in
  if mv.m_phase = Cut_over then
    range "Store.move_copy_step" "phase past copying" 0;
  let pairs = ref [] in
  let n = ref 0 in
  let key = ref mv.m_cursor in
  Kernel.set_cpu t.k mv.m_from;
  let from_r = t.shards.(mv.m_from) in
  while !n < batch && !key < t.config.Config.keys do
    if mv.m_mask.(!key mod t.buckets) then begin
      pairs := (!key, Rlvm.read_word from_r ~off:(off_of_key t !key)) :: !pairs;
      incr n
    end;
    incr key
  done;
  copy_pairs t mv (List.rev !pairs);
  mv.m_cursor <- !key;
  move_remaining t

let move_enter_drain t =
  let mv = require_move "Store.move_enter_drain" t in
  if mv.m_phase <> Copying then
    range "Store.move_enter_drain" "phase past copying" 0;
  mv.m_phase <- Draining

(* Finish the copy: any uncopied tail (the drain may be entered
   mid-copy) plus every dirtied key, re-read from the source so the
   target holds the latest committed values. New writes to moved keys
   are refused ([Moved]) while draining, so the dirty set only
   shrinks. *)
let move_drain t =
  let mv = require_move "Store.move_drain" t in
  if mv.m_phase <> Draining then range "Store.move_drain" "not draining" 0;
  while move_remaining t > 0 do
    ignore (move_copy_step t ~batch:64)
  done;
  let dirty =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) mv.m_dirty [])
  in
  let rec batches = function
    | [] -> ()
    | keys ->
      let rec take n acc = function
        | k :: rest when n > 0 -> take (n - 1) (k :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let chunk, rest = take 32 [] keys in
      Kernel.set_cpu t.k mv.m_from;
      let from_r = t.shards.(mv.m_from) in
      let pairs =
        List.map
          (fun key -> (key, Rlvm.read_word from_r ~off:(off_of_key t key)))
          chunk
      in
      copy_pairs t mv pairs;
      batches rest
  in
  batches dirty;
  Hashtbl.reset mv.m_dirty

let move_cutover t =
  let mv = require_move "Store.move_cutover" t in
  if mv.m_phase <> Draining then range "Store.move_cutover" "not draining" 0;
  let left = move_remaining t + Hashtbl.length mv.m_dirty in
  if left > 0 then range "Store.move_cutover" "copy incomplete" left;
  (* The canonical split-protocol crash window: copy complete on the
     target, route flip not yet durable. *)
  ignore
    (Lvm_machine.Machine.fault_check (Kernel.machine t.k)
       ~site:Lvm_fault.Fault.Split_cutover);
  (* One committed, forced coordinator transaction carries every moved
     bucket's route word plus the intent-state advance: the flip is
     all-or-nothing. *)
  let datas = ref [ (t.split_base, bytes32 split_state_cutover) ] in
  for b = t.buckets - 1 downto 0 do
    if mv.m_mask.(b) then
      datas := (t.route_base + (4 * b), bytes32 (mv.m_to + 1)) :: !datas
  done;
  Kernel.set_cpu t.k mv.m_to;
  coord_txn t ~force:true !datas;
  Array.iteri (fun b m -> if m then t.route.(b) <- mv.m_to) mv.m_mask;
  mv.m_phase <- Cut_over;
  (* The route flip gets its own timestamp: snapshots below it keep
     resolving moved keys through the pre-cutover routing. *)
  mvcc_event t
    (Lvm_mvcc.Route { ts = alloc_ts t; route = Array.copy t.route });
  Lvm_obs.Counter.incr t.split_cutover_c

(* Clear the intent. The cutover transaction is already durable, so the
   marker needs no force: if it is lost, recovery re-retires — same
   route, same result. *)
let move_retire t =
  let mv = require_move "Store.move_retire" t in
  if mv.m_phase <> Cut_over then range "Store.move_retire" "not cut over" 0;
  coord_txn t ~force:false [ (t.split_base, bytes32 0) ];
  t.active <- None

(* Cancel a move before its cutover: ownership never changed, so
   clearing the intent is enough — the target's partial copy is
   unreachable garbage that any later move of the same buckets simply
   overwrites. Unforced for the same reason as [move_retire]: a lost
   clear means recovery aborts the move again, idempotently. *)
let move_abort t =
  let mv = require_move "Store.move_abort" t in
  if mv.m_phase = Cut_over then range "Store.move_abort" "already cut over" 0;
  coord_txn t ~force:false [ (t.split_base, bytes32 0) ];
  t.active <- None;
  Lvm_obs.Counter.incr t.split_aborted_c

(* The whole lifecycle in one synchronous call, for direct callers
   (tests, lvmctl); concurrent drivers run the phases themselves so
   transactions interleave with the copy. *)
let move t ~from_ ~to_ ?(batch = 64) bucket_list =
  move_begin t ~from_ ~to_ bucket_list;
  while move_copy_step t ~batch > 0 do
    ()
  done;
  move_enter_drain t;
  move_drain t;
  move_cutover t;
  move_retire t

(* {1 The front door} *)

let validate t writes =
  let n = List.length writes in
  if n > t.config.Config.max_txn_writes then
    Some
      (Lvm.Lvm_error.Txn_too_large
         { writes = n; limit = t.config.Config.max_txn_writes })
  else
    match
      List.find_opt
        (fun (key, _) -> key < 0 || key >= t.config.Config.keys)
        writes
    with
    | Some (key, _) -> Some (Lvm.Lvm_error.Invalid_key { key })
    | None -> None

let exec ?(pace = no_pace) ?detach t ~writes =
  (* Without a driver-supplied [detach], detached phase-2 branches run
     inline, right here — the synchronous behavior (crash sweeps and
     direct callers see every commit applied before [exec] returns). *)
  let detach =
    match detach with Some d -> d | None -> fun ~shard:_ f -> f ~pace
  in
  match writes with
  | [] -> Ok ()
  | writes -> (
    match validate t writes with
    | Some e -> Error e
    | None -> (
      match blocked_by_move t writes with
      | Some (key, shard) ->
        (* A draining move owns this key's bucket: refuse before any
           state changes so the driver can requeue for the new owner. *)
        Lvm_obs.Counter.incr t.moved_c;
        Error (Lvm.Lvm_error.Moved { key; shard })
      | None ->
        let parts = partition t writes in
        let home = match parts with (s, _) :: _ -> s | [] -> 0 in
        if not (admit t home) then begin
          Lvm_obs.Counter.incr t.shed_c;
          Error (Lvm.Lvm_error.Shed { shard = home })
        end
        else begin
          let before =
            List.map (fun (c, _) -> (c, Kernel.cpu_time t.k ~cpu:c)) parts
          in
          let t0_home = Kernel.cpu_time t.k ~cpu:home in
          (* Commit latency: CPU cycles burned on the participant shards
             between admission and completion. For a local transaction
             that is when [exec_local] returns; for a cross-shard
             transaction it is when the last participant retires the
             intent — possibly in a detached phase-2 branch, after
             [exec] has returned. *)
          let observe () =
            let cycles =
              List.fold_left
                (fun acc (c, t0) -> acc + (Kernel.cpu_time t.k ~cpu:c - t0))
                0 before
            in
            Lvm_obs.Histogram.observe t.commit_hist cycles;
            (* Load-aware routing input: the home shard's commit-latency
               EWMA (1/8 weight per sample). *)
            t.lat_ewma.(home) <-
              (0.875 *. t.lat_ewma.(home))
              +. (0.125
                 *. float_of_int (Kernel.cpu_time t.k ~cpu:home - t0_home))
          in
          let result =
            match parts with
            | [ (s, ws) ] -> exec_local ~pace t s ws
            | parts -> exec_cross ~pace ~detach ~observe t parts writes
          in
          (match result with
          | Ok () ->
            List.iter
              (fun (key, _) ->
                let b = key mod t.buckets in
                t.bucket_writes.(b) <- t.bucket_writes.(b) + 1)
              writes;
            (* A committed write to a moved key during the copy phase
               lands on the old owner; remember it so the drain re-copies
               the latest value. *)
            (match t.active with
            | Some ({ m_phase = Copying; _ } as mv) ->
              List.iter
                (fun (key, _) ->
                  if mv.m_mask.(key mod t.buckets) then
                    Hashtbl.replace mv.m_dirty key ())
                writes
            | _ -> ());
            Lvm_obs.Counter.incr t.txns_c;
            (match parts with
            | [ (s, _) ] ->
              observe ();
              Lvm_obs.Counter.incr t.shard_txns.(s)
            | (home, _) :: _ ->
              Lvm_obs.Counter.incr t.cross_c;
              Lvm_obs.Counter.incr t.shard_txns.(home)
            | [] -> ())
          | Error _ -> Lvm_obs.Counter.incr t.overloaded_c);
          result
        end))

let flush t =
  Array.iteri
    (fun s r ->
      Kernel.set_cpu t.k s;
      Rlvm.flush_commits r)
    t.shards;
  Kernel.set_cpu t.k 0

(* {1 Crash recovery} *)

type split_recovery =
  | Split_aborted of { from_ : int; to_ : int }
  | Split_completed of { from_ : int; to_ : int }

type recovery = {
  shard_reports : Ramdisk.recovery array;
  coordinator : Ramdisk.recovery;
  redone : (int * int) list;
  split : split_recovery option;
}

let recover t =
  let shard_reports =
    Array.mapi
      (fun s r ->
        Kernel.set_cpu t.k s;
        Rlvm.recover r)
      t.shards
  in
  Kernel.set_cpu t.k 0;
  let image, coordinator = Ramdisk.recover t.coord in
  (* The crash lost every in-flight transaction; whatever slots they
     held are reconstructed from the recovered image alone. *)
  Array.fill t.slot_busy 0 (Array.length t.slot_busy) false;
  t.active <- None;
  Array.fill t.bucket_writes 0 t.buckets 0;
  (* Every in-flight cross-shard transaction died with the crash; the
     decided ones are re-stamped below as they roll forward. *)
  Hashtbl.reset t.in_flight;
  (* The split intent, if any. State [Copying]: the route never
     changed — abandon the move (the target's partial copy is
     unreachable). State [Cut_over]: the route words are durable in the
     same committed transaction as the state advance — just retire. *)
  let split =
    match get32 image t.split_base with
    | 0 -> None
    | st ->
      let from_ = get32 image (t.split_base + 4) in
      let to_ = get32 image (t.split_base + 8) in
      coord_txn t ~force:true [ (t.split_base, bytes32 0) ];
      if st = split_state_cutover then begin
        Lvm_obs.Counter.incr t.split_cutover_c;
        Some (Split_completed { from_; to_ })
      end
      else begin
        Lvm_obs.Counter.incr t.split_aborted_c;
        Some (Split_aborted { from_; to_ })
      end
  in
  (* Load the route before rolling 2PC intents forward: a decided
     transaction's writes partition under the durable route, which the
     cutover transaction (if it committed) has already flipped. *)
  for b = 0 to t.buckets - 1 do
    let w = get32 image (t.route_base + (4 * b)) in
    t.route.(b) <- (if w = 0 then b mod t.config.Config.shards else w - 1)
  done;
  (* Rebuild the MVCC view from the recovered images before rolling the
     in-doubt transactions forward: the roll-forward commits below are
     ordinary stamped transactions on top of the reset base, so fresh
     snapshots re-derive without seeing a partial redo. Outstanding
     snapshots are invalidated by the reset. *)
  mvcc_event t
    (Lvm_mvcc.Reset { ts = watermark t; route = Array.copy t.route });
  (* Every decided cross-shard transaction that never retired must roll
     forward. Concurrent in-flight transactions touch disjoint shards
     (the driver's claim discipline), so their redo sets are disjoint;
     replay in gid order anyway, for determinism. *)
  let decided = ref [] in
  for slot = Array.length t.slot_busy - 1 downto 0 do
    let base = slot_off t slot in
    if get32 image (base + intent_off_state) = 1 then begin
      let gid = get32 image (base + intent_off_gid) in
      let n = get32 image (base + intent_off_count) in
      let pairs =
        List.init n (fun i ->
            ( get32 image (base + intent_off_pairs + (8 * i)),
              get32 image (base + intent_off_pairs + (8 * i) + 4) ))
      in
      decided := (gid, slot, pairs) :: !decided
    end
  done;
  let decided =
    List.sort (fun (g1, _, _) (g2, _, _) -> compare g1 g2) !decided
  in
  let redone =
    List.map
      (fun (gid, slot, pairs) ->
        (* Redo as fresh committed transactions per participant —
           absolute values, so replaying over an already-applied shard
           is idempotent. *)
        let ts = alloc_ts t in
        List.iter
          (fun (s, ws) ->
            Kernel.set_cpu t.k s;
            let r = t.shards.(s) in
            Rlvm.begin_txn r;
            apply_writes t r ws;
            Rlvm.commit r;
            Rlvm.flush_commits r;
            (* every participant of the redo shares one timestamp, like
               the original transaction would have *)
            note_commit t s ts)
          (partition t pairs);
        Lvm_obs.Counter.incr t.redo_c;
        Kernel.set_cpu t.k 0;
        retire t gid ~slot ~force:true;
        (gid, List.length pairs))
      decided
  in
  Kernel.set_cpu t.k 0;
  (* Reset the admission gates: full buckets, clocks re-anchored at the
     post-recovery CPU times. *)
  Array.iteri
    (fun s g ->
      g.g_tokens <- float_of_int t.config.Config.admission_burst;
      g.g_last <- Kernel.cpu_time t.k ~cpu:s)
    t.gates;
  { shard_reports; coordinator; redone; split }

let recovery_to_string r =
  let shards =
    String.concat "; "
      (Array.to_list
         (Array.mapi
            (fun s rep ->
              Printf.sprintf "shard%d %s" s (Ramdisk.recovery_to_string rep))
            r.shard_reports))
  in
  let base =
    Printf.sprintf "%s | coord %s | redone=%s" shards
      (Ramdisk.recovery_to_string r.coordinator)
      (match r.redone with
      | [] -> "none"
      | l ->
        String.concat ","
          (List.map (fun (gid, n) -> Printf.sprintf "gid=%d writes=%d" gid n) l))
  in
  match r.split with
  | None -> base
  | Some (Split_aborted { from_; to_ }) ->
    base ^ Printf.sprintf " | split aborted %d->%d" from_ to_
  | Some (Split_completed { from_; to_ }) ->
    base ^ Printf.sprintf " | split completed %d->%d" from_ to_

(* {1 Snapshot reads}

   The MVCC view attaches lazily on the first acquire: the per-shard
   WAL batches are flushed and the view's base images are the disks'
   recovered state at the current watermark. Attachment requires
   quiescence — no cross-shard transaction between decision and its
   last phase-2 commit — because a partially-durable transaction would
   fold into the base below its timestamp. Once attached, the view rides
   along: every commit is stamped, cutovers emit route events, and
   crash recovery resets it in place. *)

let attach_view t =
  match t.mvcc with
  | Some v -> Ok v
  | None ->
    if Hashtbl.length t.in_flight > 0 then
      Error
        (Lvm.Lvm_error.Snapshot_unavailable
           { ts = last_ts t; floor = 0; frontier = watermark t })
    else begin
      flush t;
      let base_ts = watermark t in
      let v =
        Lvm_mvcc.View.attach
          { Lvm_mvcc.View.shards = t.config.Config.shards;
            keys = t.config.Config.keys;
            off_of_key = off_of_key t;
            bucket = bucket_of_key t;
            disk = (fun s -> Rlvm.disk t.shards.(s));
            watermark = (fun () -> watermark t);
            route = Array.copy t.route;
            obs = Kernel.obs t.k;
            history = t.config.Config.mvcc_history }
          ~base_ts
      in
      t.mvcc <- Some v;
      Ok v
    end

let mvcc_attached t = t.mvcc <> None

module Snapshot = struct
  type store = t
  type t = Lvm_mvcc.snapshot

  let acquire (st : store) =
    match attach_view st with
    | Ok v -> Ok (Lvm_mvcc.acquire v)
    | Error _ as e -> e

  let as_of (st : store) ~ts =
    match attach_view st with
    | Ok v -> Lvm_mvcc.as_of v ~ts
    | Error _ as e -> e

  let read s key = Lvm_mvcc.read s ~key
  let release = Lvm_mvcc.release
  let ts = Lvm_mvcc.snapshot_ts
end
